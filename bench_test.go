package repro_test

// The benchmark harness: one benchmark per experiment (each regenerates the
// corresponding paper claim at a bench-sized configuration and reports its
// headline metric), plus micro-benchmarks of the hot kernels (the symbolic
// executor, the square cache, profile construction, and the real
// algorithms).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benches report custom metrics (gap, slope, multiplies) via
// b.ReportMetric, so the paper's shapes are visible straight from the
// benchmark output.

import (
	"strconv"
	"testing"

	"repro/internal/adaptivity"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/engine"
	"repro/internal/fft"
	"repro/internal/gep"
	"repro/internal/matrix"
	"repro/internal/paging"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/smoothing"
	"repro/internal/sorting"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// benchConfig keeps the per-iteration cost of experiment benches moderate.
func benchConfig() core.Config {
	return core.Config{Seed: 20200715, Trials: 6, MaxK: 5}
}

// runExperiment runs one experiment per iteration and reports a metric
// extracted from its table.
func runExperiment(b *testing.B, id string, metric func(*core.Table) (string, float64)) {
	b.Helper()
	var last *core.Table
	for i := 0; i < b.N; i++ {
		t, err := core.Run(id, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if last != nil && metric != nil {
		name, v := metric(last)
		b.ReportMetric(v, name)
	}
}

func lastRowFloat(t *core.Table, col int) float64 {
	row := t.Rows[len(t.Rows)-1]
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		return -1
	}
	return v
}

// --- One benchmark per experiment (see DESIGN.md's experiment index) -------

func BenchmarkE1WorstCaseProfile(b *testing.B) {
	runExperiment(b, "E1", func(t *core.Table) (string, float64) {
		return "pot/n^1.5(max-k)", lastRowFloat(t, 5)
	})
}

func BenchmarkE2WorstCaseGap(b *testing.B) {
	runExperiment(b, "E2", func(t *core.Table) (string, float64) {
		return "rows", float64(len(t.Rows))
	})
}

func BenchmarkE3IIDSmoothing(b *testing.B) {
	runExperiment(b, "E3", func(t *core.Table) (string, float64) {
		return "gap(last)", lastRowFloat(t, 3)
	})
}

func BenchmarkE4Lemma3(b *testing.B) {
	runExperiment(b, "E4", func(t *core.Table) (string, float64) {
		// |q - p| on the last row.
		p := lastRowFloat(t, 3)
		q := lastRowFloat(t, 4)
		d := p - q
		if d < 0 {
			d = -d
		}
		return "|q-p|(last)", d
	})
}

func BenchmarkE5Recurrence(b *testing.B) {
	runExperiment(b, "E5", func(t *core.Table) (string, float64) {
		return "f·m_n/n^1.5(last)", lastRowFloat(t, 7)
	})
}

func BenchmarkE6SizePerturb(b *testing.B) {
	runExperiment(b, "E6", func(t *core.Table) (string, float64) {
		return "gap(last)", lastRowFloat(t, 3)
	})
}

func BenchmarkE7StartShift(b *testing.B) {
	runExperiment(b, "E7", func(t *core.Table) (string, float64) {
		return "gap(last)", lastRowFloat(t, 2)
	})
}

func BenchmarkE8OrderPerturb(b *testing.B) {
	runExperiment(b, "E8", func(t *core.Table) (string, float64) {
		return "aligned-gap(last)", lastRowFloat(t, 3)
	})
}

func BenchmarkE9ScanVsInPlace(b *testing.B) {
	runExperiment(b, "E9", func(t *core.Table) (string, float64) {
		return "inplace-multiplies(last)", lastRowFloat(t, 5)
	})
}

func BenchmarkE10NoCatchup(b *testing.B) {
	runExperiment(b, "E10", func(t *core.Table) (string, float64) {
		return "violations", lastRowFloat(t, 1)
	})
}

func BenchmarkE11DAMComplexity(b *testing.B) {
	runExperiment(b, "E11", func(t *core.Table) (string, float64) {
		return "LRU/OPT(last)", lastRowFloat(t, 3)
	})
}

func BenchmarkE12PolicyGap(b *testing.B) {
	runExperiment(b, "E12", func(t *core.Table) (string, float64) {
		// Last row is the square replay at max k: worst-case gap = k+1.
		return "square-wc-gap(last)", lastRowFloat(t, 3)
	})
}

func BenchmarkE13Smoothness(b *testing.B) {
	runExperiment(b, "E13", func(t *core.Table) (string, float64) {
		return "faults(last)", lastRowFloat(t, 3)
	})
}

// --- Kernel micro-benchmarks -------------------------------------------------

// BenchmarkExecStep measures the symbolic executor's per-box cost on a
// large problem with mixed box sizes.
func BenchmarkExecStep(b *testing.B) {
	spec := regular.MMScanSpec
	n := profile.Pow(4, 9)
	e, err := regular.NewExec(spec, n)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e.Done() {
			b.StopTimer()
			e.Reset()
			b.StartTimer()
		}
		e.Step(1 + rng.Int63n(256))
	}
}

// BenchmarkExecWorstCaseRun measures a full symbolic run of the canonical
// algorithm over M_{8,4}(4^6) — the E2 kernel.
func BenchmarkExecWorstCaseRun(b *testing.B) {
	n := profile.Pow(4, 6)
	wc, err := profile.WorstCase(8, 4, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := adaptivity.GapOnProfile(regular.MMScanSpec, n, wc)
		if err != nil {
			b.Fatal(err)
		}
		if g := res.Gap(); g < 6.999 || g > 7.001 {
			b.Fatalf("unexpected gap %v", g)
		}
	}
	b.ReportMetric(float64(wc.Len()), "boxes/run")
}

// BenchmarkSquareRun measures trace replay throughput through the
// square-semantics cache.
func BenchmarkSquareRun(b *testing.B) {
	tr, err := regular.SyntheticTrace(regular.MMScanSpec, profile.Pow(4, 5))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := profile.NewSliceSource(profile.MustNew([]int64{64}))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := paging.SquareRun(tr, src, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSquareStreamEmit measures the full streaming pipeline: the
// synthetic generator emitting straight into the square cache through the
// trace.Sink interface, with no materialized trace anywhere. Compare with
// BenchmarkSquareRun (materialize-then-replay) — the per-access kernel
// cost is the same, the Θ(T(n)) trace buffer is gone.
//
// The old-vs-new kernel comparisons (array-backed LRU/FIFO/OPT against the
// preserved map-backed oracles) live in internal/paging/bench_test.go,
// where the oracles are visible.
func BenchmarkSquareStreamEmit(b *testing.B) {
	spec := regular.MMScanSpec
	n := profile.Pow(4, 5)
	c := &trace.CountingSink{}
	if err := regular.EmitSynthetic(spec, n, c); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(c.Refs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := profile.NewSliceSource(profile.MustNew([]int64{64}))
		if err != nil {
			b.Fatal(err)
		}
		q := paging.NewSquareStream(src, 0)
		q.Reserve(n - 1)
		if err := regular.EmitSynthetic(spec, n, q); err != nil {
			b.Fatal(err)
		}
		if _, err := q.Finish(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(c.Refs)), "ns/access")
}

// BenchmarkLRUStreamEmit measures the generator→LRU streaming path used by
// mmtrace -stream -lru: emission and replay fused, no trace buffer.
func BenchmarkLRUStreamEmit(b *testing.B) {
	spec := regular.MMScanSpec
	n := profile.Pow(4, 5)
	c := &trace.CountingSink{}
	if err := regular.EmitSynthetic(spec, n, c); err != nil {
		b.Fatal(err)
	}
	l, err := paging.NewLRU(128)
	if err != nil {
		b.Fatal(err)
	}
	l.Reserve(c.MaxBlock)
	b.SetBytes(c.Refs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Clear()
		if err := regular.EmitSynthetic(spec, n, paging.CacheSink{Cache: l}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(c.Refs)), "ns/access")
}

// BenchmarkLRU measures the dynamic-capacity LRU on a synthetic trace.
func BenchmarkLRU(b *testing.B) {
	tr, err := regular.SyntheticTrace(regular.MMScanSpec, profile.Pow(4, 5))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paging.RunLRUFixed(tr, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorstCaseConstruction measures building M_{8,4}(4^6) (~300k
// boxes).
func BenchmarkWorstCaseConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := profile.WorstCase(8, 4, profile.Pow(4, 6)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShuffle measures the Fisher–Yates shuffle of a 300k-box profile.
func BenchmarkShuffle(b *testing.B) {
	wc, err := profile.WorstCase(8, 4, profile.Pow(4, 6))
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smoothing.Shuffle(wc, rng)
	}
}

// BenchmarkMulScan measures the real MM-Scan multiply (128×128).
func BenchmarkMulScan(b *testing.B) {
	src := xrand.New(3)
	x, err := matrix.NewRandom(128, src)
	if err != nil {
		b.Fatal(err)
	}
	y, err := matrix.NewRandom(128, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.MulScan(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMulInPlace measures the real MM-InPlace multiply (128×128).
func BenchmarkMulInPlace(b *testing.B) {
	src := xrand.New(3)
	x, err := matrix.NewRandom(128, src)
	if err != nil {
		b.Fatal(err)
	}
	y, err := matrix.NewRandom(128, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.MulInPlace(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoppingTimeEstimate measures one f(n) Monte-Carlo estimate —
// the E4/E5 kernel.
func BenchmarkStoppingTimeEstimate(b *testing.B) {
	dist, err := xrand.NewUniform(4, 64)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		st, err := adaptivity.EstimateStoppingTimes(regular.MMScanSpec, 1024, dist, uint64(i), 8)
		if err != nil {
			b.Fatal(err)
		}
		if st.F <= 0 {
			b.Fatal("degenerate estimate")
		}
	}
}

// BenchmarkGapOnDist measures a full Theorem-1 trial at n = 4^6.
func BenchmarkGapOnDist(b *testing.B) {
	dist, err := xrand.NewUniform(4, 64)
	if err != nil {
		b.Fatal(err)
	}
	var lastMean float64
	for i := 0; i < b.N; i++ {
		gaps, err := adaptivity.GapOnDist(regular.MMScanSpec, profile.Pow(4, 6), dist, uint64(i), 3)
		if err != nil {
			b.Fatal(err)
		}
		lastMean = stats.Summarize(gaps).Mean
	}
	b.ReportMetric(lastMean, "gap")
}

// --- Substrate micro-benchmarks ----------------------------------------------

// BenchmarkFloydWarshallRec measures the real in-place I-GEP recursion
// (128 vertices).
func BenchmarkFloydWarshallRec(b *testing.B) {
	src := xrand.New(4)
	g, err := gep.NewRandomGraph(128, 0.3, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := g.Clone()
		if err := gep.FloydWarshallRec(work); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLCSRecursive measures the boundary-passing quadrant LCS on
// 512-character strings.
func BenchmarkLCSRecursive(b *testing.B) {
	src := xrand.New(6)
	mk := func() string {
		buf := make([]byte, 512)
		for i := range buf {
			buf[i] = byte('a' + src.Intn(4))
		}
		return string(buf)
	}
	x, y := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dp.LCSLengthRecursive(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeSort measures the real two-way merge sort on 64k values.
func BenchmarkMergeSort(b *testing.B) {
	src := xrand.New(8)
	in := sorting.RandomSlice(1<<16, 1<<30, src)
	b.SetBytes(int64(len(in) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sorting.MergeSort(in)
	}
}

// BenchmarkFFT measures the radix-2 FFT on 4096 points.
func BenchmarkFFT(b *testing.B) {
	src := xrand.New(10)
	xs := make([]complex128, 4096)
	for i := range xs {
		xs[i] = complex(src.Float64(), src.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fft.Forward(xs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFIFO measures the dynamic-capacity FIFO on a synthetic trace.
func BenchmarkFIFO(b *testing.B) {
	tr, err := regular.SyntheticTrace(regular.MMScanSpec, profile.Pow(4, 5))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paging.RunFIFOFixed(tr, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOPT measures Belady OPT on the same trace.
func BenchmarkOPT(b *testing.B) {
	tr, err := regular.SyntheticTrace(regular.MMScanSpec, profile.Pow(4, 5))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(tr.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paging.RunOPTFixed(tr, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceStrassen measures Strassen trace generation (dim 128).
func BenchmarkTraceStrassen(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.TraceMulStrassen(128, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecSpreadScans measures the spread-scan executor on the
// tailored adversary workload shape (unit through mixed boxes).
func BenchmarkExecSpreadScans(b *testing.B) {
	n := profile.Pow(4, 6)
	rng := xrand.New(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := regular.NewExec(regular.MMScanSpec, n)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.SetSpreadScans(true); err != nil {
			b.Fatal(err)
		}
		for !e.Done() {
			e.Step(1 + rng.Int63n(512))
		}
	}
}

// BenchmarkEngineMap measures the engine's per-cell dispatch overhead on
// no-op cells — the fixed cost every Monte-Carlo fan-out pays.
func BenchmarkEngineMap(b *testing.B) {
	b.ReportAllocs()
	g := engine.NewGroup()
	for i := 0; i < b.N; i++ {
		if err := g.Map(256, func(_, _ int) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGapSampleFresh allocates a new executor per trial — the cost the
// engine's per-worker executor cache avoids.
func BenchmarkGapSampleFresh(b *testing.B) {
	b.ReportAllocs()
	n := profile.Pow(4, 5)
	uni, err := xrand.NewUniform(4, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adaptivity.GapSample(regular.MMScanSpec, n, uni, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGapSampleReused resets and reuses one executor across trials —
// the engine worker's steady state.
func BenchmarkGapSampleReused(b *testing.B) {
	b.ReportAllocs()
	n := profile.Pow(4, 5)
	uni, err := xrand.NewUniform(4, 64)
	if err != nil {
		b.Fatal(err)
	}
	e, err := regular.NewExec(regular.MMScanSpec, n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adaptivity.GapSampleExec(e, uni, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShuffleTo is BenchmarkShuffle without the per-trial profile
// clone: shuffle into a reused buffer.
func BenchmarkShuffleTo(b *testing.B) {
	wc, err := profile.WorstCase(8, 4, profile.Pow(4, 6))
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	var buf []int64
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = smoothing.ShuffleTo(buf, wc, rng)
	}
}
