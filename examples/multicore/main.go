// multicore plays out the paper's motivating scenario end to end: several
// processes share a cache under a winner-take-all allocator with periodic
// flushes (the residency-imbalance story the introduction cites). The
// simulator produces each process's raw allocation profile m(t); the
// inner-square reduction turns it into a square profile; and we measure
// how MM-Scan-shaped and MM-InPlace-shaped computations fare on it — plus
// what shuffling the squares (the paper's smoothing) does.
package main

import (
	"fmt"
	"log"

	"repro/internal/adaptivity"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/sharedcache"
	"repro/internal/smoothing"
	"repro/internal/xrand"
)

func main() {
	rng := xrand.New(7)
	n := profile.Pow(4, 6) // a 4096-block computation per process

	// Three tenants on a 2048-block shared cache; the "batch" job arrives
	// late and departs early, as batch jobs do.
	cfg := sharedcache.Config{
		CacheBlocks:  2048,
		Horizon:      1 << 21,
		Policy:       sharedcache.WinnerTakeAll,
		FlushPeriod:  8192,
		DemandJitter: 2,
		Processes: []sharedcache.Process{
			{Name: "service-a", Arrive: 0, Depart: 1 << 21, Demand: 1024},
			{Name: "service-b", Arrive: 0, Depart: 1 << 21, Demand: 768},
			{Name: "batch", Arrive: 1 << 19, Depart: 1 << 20, Demand: 2048},
		},
	}
	allocs, err := sharedcache.Simulate(cfg, rng)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("shared cache: %d blocks, policy %v, flush every %d I/Os\n\n",
		cfg.CacheBlocks, cfg.Policy, cfg.FlushPeriod)

	for _, a := range allocs {
		sq, err := profile.Squarize(a.M)
		if err != nil {
			log.Fatal(err)
		}
		scan, err := adaptivity.GapOnProfile(regular.MMScanSpec, n, sq)
		if err != nil {
			log.Fatal(err)
		}
		// MM-InPlace (c = 0) needs the ground-truth trace backend: its boxes
		// carry budget past the (absent) scans.
		src, err := profile.NewSliceSource(sq)
		if err != nil {
			log.Fatal(err)
		}
		inp, err := adaptivity.MeasureTrace(regular.MMInPlaceSpec, n, src, 0)
		if err != nil {
			log.Fatal(err)
		}
		// And the smoothed run: same squares, shuffled.
		shuf := smoothing.Shuffle(sq, rng)
		scanShuf, err := adaptivity.GapOnProfile(regular.MMScanSpec, n, shuf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %6d squares (max %4d): MM-Scan gap %5.2f | MM-InPlace gap %5.2f | MM-Scan on shuffled squares %5.2f\n",
			a.Process.Name, sq.Len(), sq.MaxBox(), scan.Gap(), inp.Gap(), scanShuf.Gap())
	}

	fmt.Println("\ncontention-shaped profiles are nowhere near the adversarial construction:")
	fmt.Println("both algorithms stay within a small constant of optimal, and shuffling")
	fmt.Println("changes little — the log gap needs the profile to track the recursion.")
}
