// smoothing shows the paper's headline dichotomy side by side: of four
// natural ways to randomise the adversarial profile, only i.i.d. box sizes
// (equivalently, shuffling when "significant events" occur) closes the
// logarithmic gap; size perturbation, start-time shifts, and box-order
// perturbation all leave it open.
package main

import (
	"fmt"
	"log"

	"repro/internal/adaptivity"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/smoothing"
	"repro/internal/stats"
	"repro/internal/xrand"
)

const trials = 8

func meanGap(spec regular.Spec, n int64, make func() (*profile.SquareProfile, error)) float64 {
	var gaps []float64
	for i := 0; i < trials; i++ {
		p, err := make()
		if err != nil {
			log.Fatal(err)
		}
		res, err := adaptivity.GapOnProfile(spec, n, p)
		if err != nil {
			log.Fatal(err)
		}
		gaps = append(gaps, res.Gap())
	}
	return stats.Summarize(gaps).Mean
}

func main() {
	spec := regular.MMScanSpec
	rng := xrand.New(2020)

	fmt.Println("mean efficiency gap of the (8,4,1) canonical algorithm (worst case = k+1):")
	fmt.Printf("%3s %8s %10s %10s %10s %10s %10s\n",
		"k", "n", "worst", "shuffled", "size-pert", "rotated", "order-pert")
	for k := 3; k <= 6; k++ {
		n := profile.Pow(4, k)
		wc, err := profile.WorstCase(8, 4, n)
		if err != nil {
			log.Fatal(err)
		}
		base, err := adaptivity.GapOnProfile(spec, n, wc)
		if err != nil {
			log.Fatal(err)
		}

		shuffled := meanGap(spec, n, func() (*profile.SquareProfile, error) {
			return smoothing.Shuffle(wc, rng), nil
		})
		perturbed := meanGap(spec, n, func() (*profile.SquareProfile, error) {
			return smoothing.PerturbSizes(wc, rng, 4)
		})
		rotated := meanGap(spec, n, func() (*profile.SquareProfile, error) {
			return smoothing.RandomRotation(wc, rng)
		})
		ordered := meanGap(spec, n, func() (*profile.SquareProfile, error) {
			return smoothing.OrderPerturbed(8, 4, n, rng)
		})

		fmt.Printf("%3d %8d %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			k, n, base.Gap(), shuffled, perturbed, rotated, ordered)
	}

	fmt.Println("\nthe box-order perturbation looks tame for the canonical end-scan algorithm,")
	fmt.Println("but the class-level witness — scans placed where the profile's boxes are —")
	fmt.Println("suffers the full gap with probability one:")
	for k := 3; k <= 6; k++ {
		n := profile.Pow(4, k)
		seed := uint64(k)
		p, err := smoothing.OrderPerturbedAligned(8, 4, n, seed)
		if err != nil {
			log.Fatal(err)
		}
		e, err := regular.NewExecWithPolicy(spec, n, smoothing.AlignedScanPolicy(8, seed))
		if err != nil {
			log.Fatal(err)
		}
		if err := e.SetStrictScans(true); err != nil {
			log.Fatal(err)
		}
		src, err := profile.NewSliceSource(p)
		if err != nil {
			log.Fatal(err)
		}
		var pot float64
		for !e.Done() {
			box := src.Next()
			pot += spec.BoundedPotential(box, n)
			e.Step(box)
		}
		fmt.Printf("  k=%d: aligned witness gap %.2f (= k+1 = %d)\n", k, pot/spec.Potential(n), k+1)
	}
}
