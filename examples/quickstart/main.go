// Quickstart: the paper's story in thirty lines.
//
// We run the canonical (8,4,1)-regular algorithm (MM-Scan's shape) on a
// problem of n = 4^6 blocks, twice: against its adversarial worst-case
// memory profile M_{8,4}(n), and against the same boxes randomly shuffled.
// The "gap" printed is Σ min(n,|□|)^{3/2} / n^{3/2} — the cache-adaptive
// efficiency criterion: ~1 is perfect, log_4(n)+1 is the worst case.
package main

import (
	"fmt"
	"log"

	"repro/internal/adaptivity"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/smoothing"
	"repro/internal/xrand"
)

func main() {
	spec := regular.MMScanSpec // (8,4,1): a > b, c = 1 — in the log gap
	n := profile.Pow(4, 6)     // problem size in blocks

	worst, err := profile.WorstCase(8, 4, n)
	if err != nil {
		log.Fatal(err)
	}
	onWorst, err := adaptivity.GapOnProfile(spec, n, worst)
	if err != nil {
		log.Fatal(err)
	}

	shuffled := smoothing.Shuffle(worst, xrand.New(42))
	onShuffled, err := adaptivity.GapOnProfile(spec, n, shuffled)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("problem size n = %d blocks (%v)\n", n, spec)
	fmt.Printf("adversarial profile: gap = %.2f (theory: log_4 n + 1 = %d)\n",
		onWorst.Gap(), profile.Log(n, 4)+1)
	fmt.Printf("same boxes, shuffled: gap = %.2f (theory: O(1) in expectation)\n",
		onShuffled.Gap())
}
