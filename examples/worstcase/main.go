// worstcase reconstructs Section 3 of the paper: what a bad memory profile
// for MM-Scan looks like, why it costs a log factor, and how MM-InPlace —
// the (8,4,0) variant — sails through the very same profile.
package main

import (
	"fmt"
	"log"

	"repro/internal/adaptivity"
	"repro/internal/matrix"
	"repro/internal/paging"
	"repro/internal/profile"
	"repro/internal/regular"
)

func main() {
	// Part 1: the recursive structure of M_{8,4}(n) (Figure 1). The profile
	// for a problem of size n is eight copies of the profile for n/4
	// followed by one box of size n: large cache arrives exactly when
	// MM-Scan is doing a scan and cannot exploit it.
	fmt.Println("Figure 1: box-size histogram of M_{8,4}(4^k)")
	for k := 2; k <= 6; k++ {
		n := profile.Pow(4, k)
		wc, err := profile.WorstCase(8, 4, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%d: %d boxes, histogram %v\n", k, wc.Len(), wc.SizeHistogram())
	}

	// Part 2: the log gap. MM-Scan's progress criterion on M_{8,4}(n) is
	// exactly log_4(n)+1 — each level of the recursion wastes one n^{3/2}
	// of potential on a scan.
	fmt.Println("\nTheorem 2: MM-Scan's gap on its worst-case profile")
	spec := regular.MMScanSpec
	for k := 2; k <= 7; k++ {
		n := profile.Pow(4, k)
		wc, err := profile.WorstCase(8, 4, n)
		if err != nil {
			log.Fatal(err)
		}
		res, err := adaptivity.GapOnProfile(spec, n, wc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=4^%d: gap %.2f (= log_4 n + 1)\n", k, res.Gap())
	}

	// Part 3: the same profile, two real algorithms. Block traces of actual
	// matrix multiplications replayed against the square-semantics cache:
	// MM-Scan completes exactly one multiply, MM-InPlace completes
	// Ω(log(N/B)) of them.
	fmt.Println("\nMM-Scan vs MM-InPlace: multiplies completed within the profile (B = 8 words/block)")
	const bw = 8
	for _, dim := range []int{32, 64, 128, 256} {
		wc, err := matrix.WorstCaseProfile(dim, bw)
		if err != nil {
			log.Fatal(err)
		}
		scanTr, err := matrix.TraceMulScan(dim, bw)
		if err != nil {
			log.Fatal(err)
		}
		inpTr, err := matrix.TraceMulInPlace(dim, bw)
		if err != nil {
			log.Fatal(err)
		}
		repScan, err := matrix.RepeatTraceFresh(scanTr, 16)
		if err != nil {
			log.Fatal(err)
		}
		endScan, err := paging.SquareRunFrom(repScan, 0, wc.Boxes())
		if err != nil {
			log.Fatal(err)
		}
		repInp, err := matrix.RepeatTraceFresh(inpTr, 16)
		if err != nil {
			log.Fatal(err)
		}
		endInp, err := paging.SquareRunFrom(repInp, 0, wc.Boxes())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  dim=%4d: MM-Scan %d, MM-InPlace %d\n",
			dim, endScan/scanTr.Len(), endInp/inpTr.Len())
	}
}
