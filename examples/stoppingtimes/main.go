// stoppingtimes tours the machinery behind the paper's main proof: the
// expected number of boxes f(n) an (8,4,1)-regular algorithm needs under
// i.i.d. box sizes, its scan-free sibling f'(n), and Lemma 3's pretty
// identity q = p = Pr[|□| >= n]·f(n/4).
package main

import (
	"fmt"
	"log"

	"repro/internal/adaptivity"
	"repro/internal/regular"
	"repro/internal/xrand"
)

func main() {
	spec := regular.MMScanSpec
	dist, err := xrand.NewTwoPoint(4, 1024, 0.03)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Σ = %s, algorithm %v\n\n", dist.Name(), spec)

	fmt.Println("stopping times (Monte Carlo, 4000 trials):")
	fmt.Printf("%8s %12s %12s %14s\n", "n", "f(n)", "f'(n)", "f·m_n/n^1.5")
	for _, n := range []int64{16, 64, 256, 1024} {
		st, err := adaptivity.EstimateStoppingTimes(spec, n, dist, 1, 4000)
		if err != nil {
			log.Fatal(err)
		}
		mn := dist.MeanBoundedPow(n, spec.Exponent())
		norm := st.F * mn / spec.Potential(n)
		fmt.Printf("%8d %12.2f %12.2f %14.3f\n", n, st.F, st.FPrime, norm)
	}
	fmt.Println("\nEquation 3: the right column bounded ⇔ cache-adaptive in expectation.")

	fmt.Println("\nLemma 3 at n = 256:")
	res, err := adaptivity.CheckLemma3(spec, 256, dist, 2, 6000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  f(n/4)                 = %.3f\n", res.FChild)
	fmt.Printf("  p = Pr[|□|>=n]·f(n/4)  = %.3f\n", res.P)
	fmt.Printf("  q (measured)           = %.3f ± %.3f\n", res.Q, res.QSE)
	fmt.Printf("  f'(n) formula          = %.3f\n", res.SubBoxesFormula)
	fmt.Printf("  f'(n) measured         = %.3f\n", res.SubBoxesMeasured)
	fmt.Println("\nq = p exactly (the martingale argument), and the geometric-series")
	fmt.Println("formula Σ (1-p)^{i-1} f(n/4) predicts f' to within sampling noise.")
}
