package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/service"
)

// TestDaemonHelper is not a test: it is the daemon half of the kill/restart
// smoke below, re-executing this test binary as a real cadaptived process so
// SIGKILL hits an actual journal-backed server, not an in-process stand-in.
func TestDaemonHelper(t *testing.T) {
	args := os.Getenv("CADAPTIVED_TEST_DAEMON_ARGS")
	if args == "" {
		t.Skip("helper process for TestDaemonKillRestartResume")
	}
	cfg, err := parseFlags(strings.Split(args, "\x1f"))
	if err != nil {
		t.Fatalf("helper flags: %v", err)
	}
	if err := run(cfg); err != nil {
		t.Fatalf("helper run: %v", err)
	}
}

// startDaemon launches the helper daemon on a fresh port against dir and
// waits for /healthz; extra appends daemon flags (e.g. chaos latency).
func startDaemon(t *testing.T, dir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	// Grab a free port, then hand it to the child. The tiny close-to-bind
	// window is acceptable for a test on a loopback interface.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	args := append([]string{"-addr", addr, "-jobs-dir", dir, "-cache", "0", "-cache-bytes", "0"}, extra...)
	cmd := exec.Command(os.Args[0], "-test.run", "^TestDaemonHelper$", "-test.v=false")
	cmd.Env = append(os.Environ(), "CADAPTIVED_TEST_DAEMON_ARGS="+strings.Join(args, "\x1f"))
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	for deadline := time.Now().Add(10 * time.Second); ; {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("daemon at %s never became healthy: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonKillRestartResume is the end-to-end durability smoke: SIGKILL a
// real cadaptived mid-job — no shutdown path, no flushes beyond the
// journal's own per-record fsync — restart it on the same -jobs-dir, and the
// job must finish completely, recomputing only the cells the kill destroyed.
func TestDaemonKillRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon subprocesses")
	}
	dir := t.TempDir()
	const cells = 6

	// Chaos latency on jobs.cell paces the job (~100ms per cell attempt) so
	// the kill lands mid-flight with some cells journaled and some not.
	cmd, base := startDaemon(t, dir, "-chaos-spec", "jobs.cell:latency:1:100ms")
	c := service.NewClient(base)
	st, err := c.SubmitJob(context.Background(), jobs.Spec{
		Experiments: []string{"E1"},
		SeedStart:   1, SeedCount: cells,
		Trials:  2,
		MaxKMin: 4, MaxKMax: 4,
	})
	if err != nil {
		cmd.Process.Kill()
		t.Fatalf("submit: %v", err)
	}

	// Kill the instant some — but not all — cells are durably complete.
	var before *jobs.Status
	for deadline := time.Now().Add(10 * time.Second); ; {
		before, err = c.Job(context.Background(), st.ID, false)
		if err == nil && before.Completed >= 2 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("job never reached 2 completed cells (last: %+v, err: %v)", before, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if before.Completed >= cells {
		cmd.Process.Kill()
		t.Fatalf("job finished before the kill (%+v); the smoke proved nothing", before)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no handlers, no drain
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart on the same journal dir, full speed. The restored job must run
	// to full completion without a fresh submission.
	cmd2, base2 := startDaemon(t, dir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	c2 := service.NewClient(base2)
	wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	after, err := c2.WaitJob(wctx, st.ID)
	if err != nil {
		t.Fatalf("resumed job: %v", err)
	}
	if after.Status != jobs.JobCompleted || after.Completed != cells {
		t.Fatalf("resumed job finished %+v, want %d/%d completed", after, cells, cells)
	}

	// The journal must have spared the pre-kill cells: the restarted server's
	// run path sees only the missing ones (status polls don't touch it).
	resp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Service struct {
			Requests int64 `json:"requests"`
		} `json:"service"`
	}
	if err := jsonDecode(resp, &m); err != nil {
		t.Fatal(err)
	}
	if reran := m.Service.Requests; reran < 1 || reran > int64(cells-before.Completed) {
		t.Errorf("restarted server ran %d cells, want 1..%d (journal had >= %d of %d cells)",
			reran, cells-before.Completed, before.Completed, cells)
	}
}

func jsonDecode(resp *http.Response, v any) error {
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
