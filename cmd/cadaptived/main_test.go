package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/paging"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opts.Addr != ":8344" || cfg.opts.CacheEntries != 512 || cfg.opts.CacheBytes != 64<<20 {
		t.Errorf("defaults: addr=%q entries=%d bytes=%d", cfg.opts.Addr, cfg.opts.CacheEntries, cfg.opts.CacheBytes)
	}
	if cfg.opts.CacheShards != 0 || cfg.opts.CachePolicy != "lru" {
		t.Errorf("defaults: shards=%d (want 0 = auto) policy=%q (want lru)", cfg.opts.CacheShards, cfg.opts.CachePolicy)
	}
	if cfg.opts.CacheTTL != 0 || cfg.opts.CacheSWR != 0 {
		t.Errorf("defaults: ttl=%v swr=%v, want 0", cfg.opts.CacheTTL, cfg.opts.CacheSWR)
	}
	if cfg.drain != 2*time.Minute || cfg.opts.RunTimeout != 60*time.Second {
		t.Errorf("defaults: drain=%v timeout=%v", cfg.drain, cfg.opts.RunTimeout)
	}
}

func TestParseFlagsCacheOff(t *testing.T) {
	// Flag-level 0 means "caching disabled" and maps to the Options-level
	// negative opt-in (Options' zero value must keep meaning "default").
	cfg, err := parseFlags([]string{"-cache", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opts.CacheEntries != -1 {
		t.Errorf("-cache 0 => CacheEntries %d, want -1", cfg.opts.CacheEntries)
	}
	if cfg, err = parseFlags([]string{"-cache-bytes", "0"}); err != nil {
		t.Fatal(err)
	} else if cfg.opts.CacheBytes != -1 {
		t.Errorf("-cache-bytes 0 => CacheBytes %d, want -1", cfg.opts.CacheBytes)
	}
}

func TestParseFlagsCacheKnobs(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-cache-shards", "8", "-cache-policy", "fifo",
		"-cache-ttl", "1h", "-cache-swr", "10m",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opts.CacheShards != 8 || cfg.opts.CachePolicy != "fifo" {
		t.Errorf("shards=%d policy=%q", cfg.opts.CacheShards, cfg.opts.CachePolicy)
	}
	if cfg.opts.CacheTTL != time.Hour || cfg.opts.CacheSWR != 10*time.Minute {
		t.Errorf("ttl=%v swr=%v", cfg.opts.CacheTTL, cfg.opts.CacheSWR)
	}
}

func TestParseFlagsJobs(t *testing.T) {
	cfg, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opts.JobsDir != "" || cfg.opts.MaxJobs != 8 || cfg.opts.JobRetries != 3 {
		t.Errorf("jobs defaults: dir=%q max=%d retries=%d, want \"\"/8/3",
			cfg.opts.JobsDir, cfg.opts.MaxJobs, cfg.opts.JobRetries)
	}
	cfg, err = parseFlags([]string{"-jobs-dir", "/var/lib/cadaptived", "-jobs-max", "2", "-job-retries", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.opts.JobsDir != "/var/lib/cadaptived" || cfg.opts.MaxJobs != 2 || cfg.opts.JobRetries != 5 {
		t.Errorf("jobs flags: dir=%q max=%d retries=%d", cfg.opts.JobsDir, cfg.opts.MaxJobs, cfg.opts.JobRetries)
	}
}

func TestParseFlagsRejects(t *testing.T) {
	cases := []struct {
		args []string
		want string // substring of the error
	}{
		{[]string{"-cache", "-1"}, "-cache"},
		{[]string{"-cache-bytes", "-1"}, "-cache-bytes"},
		{[]string{"-cache-shards", "-1"}, "-cache-shards"},
		{[]string{"-cache-ttl", "-1s"}, "-cache-ttl"},
		{[]string{"-cache-swr", "-1s"}, "-cache-swr"},
		{[]string{"-cache-swr", "1s"}, "without -cache-ttl"},
		{[]string{"-cache-policy", "clock-pro"}, "-cache-policy"},
		{[]string{"-workers", "-1"}, "-workers"},
		{[]string{"-chaos-seed", "7"}, "without -chaos-spec"},
		{[]string{"-jobs-max", "0"}, "-jobs-max"},
		{[]string{"-job-retries", "0"}, "-job-retries"},
		{[]string{"stray"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		_, err := parseFlags(tc.args)
		if err == nil {
			t.Errorf("parseFlags(%v): accepted, want error", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseFlags(%v): error %q does not mention %q", tc.args, err, tc.want)
		}
	}
}

// TestParseFlagsCachePolicy: every registered policy name must be accepted
// at parse time, and an unknown name must be rejected with the registry
// listed so the typo is self-diagnosing.
func TestParseFlagsCachePolicy(t *testing.T) {
	for _, name := range paging.PolicyNames() {
		cfg, err := parseFlags([]string{"-cache-policy", name})
		if err != nil {
			t.Fatalf("-cache-policy %s rejected: %v", name, err)
		}
		if cfg.opts.CachePolicy != name {
			t.Errorf("-cache-policy %s => Options.CachePolicy %q", name, cfg.opts.CachePolicy)
		}
	}
	_, err := parseFlags([]string{"-cache-policy", "clock-pro"})
	if err == nil {
		t.Fatal("-cache-policy clock-pro accepted")
	}
	for _, name := range paging.PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered policy %q", err, name)
		}
	}
}
