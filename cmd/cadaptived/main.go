// Command cadaptived serves the reproduction's experiments over HTTP: the
// long-running counterpart to the cadaptive CLI, backed by the same
// core.RunContext entry point, with a content-addressed result cache in
// front of the engine.
//
// Usage:
//
//	cadaptived -addr :8344 -workers 8 -cache 512 -max-runs 2 -timeout 60s
//
// Endpoints:
//
//	POST /v1/run          run (or replay) an experiment: {"experiment":"E3","config":{"seed":1,"trials":20,"max_k":7}}
//	GET  /v1/experiments  list experiments and ablations (mirrors -list)
//	GET  /healthz         liveness
//	GET  /metrics         cache hit/miss/coalesce counters, run counts, engine utilisation
//
// SIGINT/SIGTERM trigger graceful shutdown: the listener closes immediately,
// in-flight runs drain (bounded by -drain), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cadaptived:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8344", "listen address")
		workers = flag.Int("workers", 0, "engine worker bound (0 = GOMAXPROCS); results do not depend on it")
		cache   = flag.Int("cache", 512, "result-cache capacity in entries")
		maxRuns = flag.Int("max-runs", 2, "maximum concurrent experiment runs (each fans out on the engine internally)")
		timeout = flag.Duration("timeout", 60*time.Second, "per-run timeout, threaded into the engine as context cancellation")
		drain   = flag.Duration("drain", 2*time.Minute, "graceful-shutdown drain budget for in-flight runs")
	)
	flag.Parse()

	if *workers < 0 {
		return fmt.Errorf("-workers %d < 0", *workers)
	}
	engine.SetSharedWorkers(*workers)

	srv, err := service.New(service.Options{
		Addr:              *addr,
		CacheEntries:      *cache,
		MaxConcurrentRuns: *maxRuns,
		RunTimeout:        *timeout,
	})
	if err != nil {
		return err
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("cadaptived: listening on %s (workers=%d, cache=%d, max-runs=%d, timeout=%v)",
			*addr, engine.Shared().Workers(), *cache, *maxRuns, *timeout)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case sig := <-sigc:
		log.Printf("cadaptived: %v, draining in-flight runs (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("cadaptived: drained, bye")
		return nil
	}
}
