// Command cadaptived serves the reproduction's experiments over HTTP: the
// long-running counterpart to the cadaptive CLI, backed by the same
// core.RunContext entry point, with a sharded, content-addressed result
// cache in front of the engine.
//
// Usage:
//
//	cadaptived -addr :8344 -workers 8 -cache 512 -cache-bytes 67108864 -max-runs 2 -timeout 60s
//
// Endpoints:
//
//	POST   /v1/run          run (or replay) an experiment: {"experiment":"E3","config":{"seed":1,"trials":20,"max_k":7}}
//	GET    /v1/experiments  list experiments and ablations (mirrors -list)
//	POST   /v1/jobs         submit a batch job: {"experiments":["E1"],"seed_start":1,"seed_count":8,"maxk_min":4,"maxk_max":7}
//	GET    /v1/jobs         list jobs; GET /v1/jobs/{id} streams progress + completed tables (?tables=0 for counts only)
//	DELETE /v1/jobs/{id}    cancel a job (journal-recorded)
//	GET    /healthz         liveness + queue depth + active job count
//	GET    /metrics         per-shard cache counters, run counts, engine utilisation, jobs ledger
//
// Batch jobs journal one fsync'd record per completed cell into
// -jobs-dir/jobs.journal; restarting with the same -jobs-dir resumes
// interrupted jobs, recomputing only the cells the crash destroyed. With no
// -jobs-dir, jobs run volatile. -jobs-max bounds active jobs, -job-retries
// the per-cell attempt budget before a cell is poisoned and its job
// degrades to "partial".
//
// The cache is bounded two ways — entries (-cache) and bytes (-cache-bytes,
// the sum of body lengths); either set to 0 disables storing entirely while
// keeping singleflight de-duplication. It is split over -cache-shards
// independent shards (0 = auto-size from GOMAXPROCS), each running the
// -cache-policy eviction kernel — any registered paging policy ("lru",
// "fifo", "arc", "2q", …; see paging.PolicyNames), rejected at parse time
// if unknown. -cache-ttl caps replay
// age (0 = never expire; sound, results are pure functions of the key), and
// -cache-swr serves a stale body for that much longer while one background
// refresh recomputes it.
//
// SIGINT/SIGTERM trigger graceful shutdown: the listener closes immediately,
// /healthz flips to 503 "draining", in-flight runs drain (bounded by
// -drain), then the process exits.
//
// Chaos mode injects seed-deterministic faults at the named points the
// binary already executes through (engine.cell, service.handler,
// service.run, service.cache), for rehearsing the failure model end to end:
//
//	cadaptived -chaos-seed 42 -chaos-spec 'engine.cell:panic:0.01,service.run:error:0.05'
//
// The same seed and spec replay the same per-point fault sequences.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/paging"
	"repro/internal/service"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "cadaptived:", err)
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "cadaptived:", err)
		os.Exit(1)
	}
}

// daemonConfig is the parsed command line: the service options plus the
// daemon-level knobs that never reach service.New.
type daemonConfig struct {
	opts      service.Options
	workers   int
	drain     time.Duration
	chaosSeed uint64
	chaosSpec string
}

// parseFlags turns argv into a daemonConfig, translating flag conventions
// into Options conventions: flags spell "caching off" as 0 (and reject
// negatives), Options spells it as a negative (because its zero value must
// keep meaning "default").
func parseFlags(args []string) (daemonConfig, error) {
	fs := flag.NewFlagSet("cadaptived", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8344", "listen address")
		workers     = fs.Int("workers", 0, "engine worker bound (0 = GOMAXPROCS); results do not depend on it")
		cache       = fs.Int("cache", 512, "result-cache entry bound (0 = caching disabled)")
		cacheBytes  = fs.Int64("cache-bytes", 64<<20, "result-cache bytes bound, the sum of cached body lengths (0 = caching disabled)")
		cacheShards = fs.Int("cache-shards", 0, "cache shard count, rounded up to a power of two (0 = auto: 4×GOMAXPROCS)")
		cachePolicy = fs.String("cache-policy", "lru", "per-shard eviction policy: one of "+strings.Join(paging.PolicyNames(), ", "))
		cacheTTL    = fs.Duration("cache-ttl", 0, "cached-result time-to-live (0 = never expire)")
		cacheSWR    = fs.Duration("cache-swr", 0, "stale-while-revalidate window past -cache-ttl (0 = off; requires -cache-ttl)")
		maxRuns     = fs.Int("max-runs", 2, "maximum concurrent experiment runs (each fans out on the engine internally)")
		timeout     = fs.Duration("timeout", 60*time.Second, "per-run timeout, threaded into the engine as context cancellation (negative = unbounded)")
		jobsDir     = fs.String("jobs-dir", "", "batch-jobs journal directory (empty = volatile jobs, no crash resume)")
		jobsMax     = fs.Int("jobs-max", 8, "maximum concurrently active batch jobs; submissions beyond it are shed 503")
		jobRetries  = fs.Int("job-retries", 3, "per-cell attempt budget before the cell is poisoned and its job degrades to partial")
		drain       = fs.Duration("drain", 2*time.Minute, "graceful-shutdown drain budget for in-flight runs")
		chaosSeed   = fs.Uint64("chaos-seed", 0, "seed for deterministic fault injection (used with -chaos-spec)")
		chaosSpec   = fs.String("chaos-spec", "", "fault spec, e.g. 'engine.cell:panic:0.01,service.run:error:0.05,service.cache:latency:0.1:50ms'; empty = chaos off")
	)
	if err := fs.Parse(args); err != nil {
		return daemonConfig{}, err
	}
	if fs.NArg() > 0 {
		return daemonConfig{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *workers < 0 {
		return daemonConfig{}, fmt.Errorf("-workers %d < 0", *workers)
	}
	switch {
	case *cache < 0:
		return daemonConfig{}, fmt.Errorf("-cache %d < 0 (disable caching with -cache 0)", *cache)
	case *cacheBytes < 0:
		return daemonConfig{}, fmt.Errorf("-cache-bytes %d < 0 (disable caching with -cache-bytes 0)", *cacheBytes)
	case *cacheShards < 0:
		return daemonConfig{}, fmt.Errorf("-cache-shards %d < 0 (0 = auto)", *cacheShards)
	case *cacheTTL < 0:
		return daemonConfig{}, fmt.Errorf("-cache-ttl %v < 0 (0 = never expire)", *cacheTTL)
	case *cacheSWR < 0:
		return daemonConfig{}, fmt.Errorf("-cache-swr %v < 0", *cacheSWR)
	case *cacheSWR > 0 && *cacheTTL == 0:
		return daemonConfig{}, errors.New("-cache-swr without -cache-ttl: a stale window needs an expiry to be stale past")
	}
	if !paging.HasPolicy(*cachePolicy) {
		return daemonConfig{}, fmt.Errorf("-cache-policy %q is not a registered eviction policy (have %v)", *cachePolicy, paging.PolicyNames())
	}
	if *chaosSpec == "" && *chaosSeed != 0 {
		return daemonConfig{}, errors.New("-chaos-seed without -chaos-spec does nothing; give a spec or drop the seed")
	}
	if *jobsMax < 1 {
		return daemonConfig{}, fmt.Errorf("-jobs-max %d < 1", *jobsMax)
	}
	if *jobRetries < 1 {
		return daemonConfig{}, fmt.Errorf("-job-retries %d < 1", *jobRetries)
	}

	opts := service.Options{
		Addr:              *addr,
		CacheEntries:      *cache,
		CacheBytes:        *cacheBytes,
		CacheShards:       *cacheShards,
		CachePolicy:       *cachePolicy,
		CacheTTL:          *cacheTTL,
		CacheSWR:          *cacheSWR,
		MaxConcurrentRuns: *maxRuns,
		RunTimeout:        *timeout,
		JobsDir:           *jobsDir,
		MaxJobs:           *jobsMax,
		JobRetries:        *jobRetries,
	}
	// 0 means "off" at the flag level but "default" at the Options level;
	// the Options opt-in for off is negative.
	if *cache == 0 {
		opts.CacheEntries = -1
	}
	if *cacheBytes == 0 {
		opts.CacheBytes = -1
	}
	return daemonConfig{
		opts:      opts,
		workers:   *workers,
		drain:     *drain,
		chaosSeed: *chaosSeed,
		chaosSpec: *chaosSpec,
	}, nil
}

func run(cfg daemonConfig) error {
	engine.SetSharedWorkers(cfg.workers)

	if cfg.chaosSpec != "" {
		inj, err := fault.Enable(cfg.chaosSeed, cfg.chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos-spec: %w", err)
		}
		defer fault.Disable()
		var armed []string
		for _, st := range inj.Stats() {
			armed = append(armed, st.Point)
		}
		log.Printf("cadaptived: CHAOS MODE armed (seed=%d, points=%v, spec=%q) — injected faults are deliberate",
			cfg.chaosSeed, armed, cfg.chaosSpec)
	}

	srv, err := service.New(cfg.opts)
	if err != nil {
		return err
	}

	errc := make(chan error, 1)
	go func() {
		// A panic escaping this goroutine would kill the process without
		// running main's shutdown path; surface it as a server error instead
		// (errc is buffered, so the send cannot block).
		defer func() {
			if r := recover(); r != nil {
				errc <- fmt.Errorf("listener goroutine panicked: %v", r)
			}
		}()
		log.Printf("cadaptived: listening on %s (workers=%d, cache=%d entries/%d bytes/%d shards/%s, max-runs=%d, timeout=%v)",
			cfg.opts.Addr, engine.Shared().Workers(), cfg.opts.CacheEntries, cfg.opts.CacheBytes,
			cfg.opts.CacheShards, cfg.opts.CachePolicy, cfg.opts.MaxConcurrentRuns, cfg.opts.RunTimeout)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case sig := <-sigc:
		log.Printf("cadaptived: %v, draining in-flight runs (budget %v)", sig, cfg.drain)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("cadaptived: drained, bye")
		return nil
	}
}
