// Command cadaptived serves the reproduction's experiments over HTTP: the
// long-running counterpart to the cadaptive CLI, backed by the same
// core.RunContext entry point, with a content-addressed result cache in
// front of the engine.
//
// Usage:
//
//	cadaptived -addr :8344 -workers 8 -cache 512 -max-runs 2 -timeout 60s
//
// Endpoints:
//
//	POST /v1/run          run (or replay) an experiment: {"experiment":"E3","config":{"seed":1,"trials":20,"max_k":7}}
//	GET  /v1/experiments  list experiments and ablations (mirrors -list)
//	GET  /healthz         liveness
//	GET  /metrics         cache hit/miss/coalesce counters, run counts, engine utilisation
//
// SIGINT/SIGTERM trigger graceful shutdown: the listener closes immediately,
// /healthz flips to 503 "draining", in-flight runs drain (bounded by
// -drain), then the process exits.
//
// Chaos mode injects seed-deterministic faults at the named points the
// binary already executes through (engine.cell, service.handler,
// service.run, service.cache), for rehearsing the failure model end to end:
//
//	cadaptived -chaos-seed 42 -chaos-spec 'engine.cell:panic:0.01,service.run:error:0.05'
//
// The same seed and spec replay the same per-point fault sequences.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cadaptived:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8344", "listen address")
		workers   = flag.Int("workers", 0, "engine worker bound (0 = GOMAXPROCS); results do not depend on it")
		cache     = flag.Int("cache", 512, "result-cache capacity in entries")
		maxRuns   = flag.Int("max-runs", 2, "maximum concurrent experiment runs (each fans out on the engine internally)")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-run timeout, threaded into the engine as context cancellation (negative = unbounded)")
		drain     = flag.Duration("drain", 2*time.Minute, "graceful-shutdown drain budget for in-flight runs")
		chaosSeed = flag.Uint64("chaos-seed", 0, "seed for deterministic fault injection (used with -chaos-spec)")
		chaosSpec = flag.String("chaos-spec", "", "fault spec, e.g. 'engine.cell:panic:0.01,service.run:error:0.05,service.cache:latency:0.1:50ms'; empty = chaos off")
	)
	flag.Parse()

	if *workers < 0 {
		return fmt.Errorf("-workers %d < 0", *workers)
	}
	engine.SetSharedWorkers(*workers)

	if *chaosSpec != "" {
		inj, err := fault.Enable(*chaosSeed, *chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos-spec: %w", err)
		}
		defer fault.Disable()
		var armed []string
		for _, st := range inj.Stats() {
			armed = append(armed, st.Point)
		}
		log.Printf("cadaptived: CHAOS MODE armed (seed=%d, points=%v, spec=%q) — injected faults are deliberate",
			*chaosSeed, armed, *chaosSpec)
	} else if *chaosSeed != 0 {
		return errors.New("-chaos-seed without -chaos-spec does nothing; give a spec or drop the seed")
	}

	srv, err := service.New(service.Options{
		Addr:              *addr,
		CacheEntries:      *cache,
		MaxConcurrentRuns: *maxRuns,
		RunTimeout:        *timeout,
	})
	if err != nil {
		return err
	}

	errc := make(chan error, 1)
	go func() {
		// A panic escaping this goroutine would kill the process without
		// running main's shutdown path; surface it as a server error instead
		// (errc is buffered, so the send cannot block).
		defer func() {
			if r := recover(); r != nil {
				errc <- fmt.Errorf("listener goroutine panicked: %v", r)
			}
		}()
		log.Printf("cadaptived: listening on %s (workers=%d, cache=%d, max-runs=%d, timeout=%v)",
			*addr, engine.Shared().Workers(), *cache, *maxRuns, *timeout)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case sig := <-sigc:
		log.Printf("cadaptived: %v, draining in-flight runs (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("cadaptived: drained, bye")
		return nil
	}
}
