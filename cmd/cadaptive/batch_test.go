package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/service"
)

// newBatchServer starts an in-process cadaptived for the batch-mode tests.
func newBatchServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := service.New(service.Options{Addr: "127.0.0.1:0", MaxConcurrentRuns: 2, CacheEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// TestBatchMatchesLocal is the batch-mode contract: `-batch` submits the
// grid as one job and prints every cell's table in canonical cell order,
// each byte-identical to the table an in-process run of that cell produces.
func TestBatchMatchesLocal(t *testing.T) {
	srv := newBatchServer(t)

	var got bytes.Buffer
	err := run([]string{
		"-batch", "-server", srv.URL,
		"-exp", "E1", "-seed", "7", "-seeds", "2", "-trials", "2",
		"-maxk-min", "4", "-maxk", "5",
	}, &got, fixedClock)
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	out := got.String()

	if !strings.Contains(out, "4 cells") {
		t.Errorf("batch header does not report the 2-seed × 2-maxk grid:\n%s", out)
	}
	if !strings.Contains(out, "completed: 4/4 completed, 0 poisoned, 0 cancelled") {
		t.Errorf("batch summary missing or not fully completed:\n%s", out)
	}
	// Canonical cell order is seed-major, then maxk; the tables must appear
	// in exactly that order with exactly the local bytes.
	rest := out
	for _, cell := range []struct {
		seed uint64
		maxk int
	}{{7, 4}, {7, 5}, {8, 4}, {8, 5}} {
		tb, err := core.RunContext(context.Background(), "E1", core.Config{Seed: cell.seed, Trials: 2, MaxK: cell.maxk})
		if err != nil {
			t.Fatal(err)
		}
		want := tb.Format()
		i := strings.Index(rest, want)
		if i < 0 {
			t.Fatalf("batch output missing (or out of order) table for seed=%d maxk=%d:\n%s", cell.seed, cell.maxk, out)
		}
		rest = rest[i+len(want):]
	}
}

// TestBatchAttach covers -job: attaching to an existing job prints the same
// tables a fresh -batch submission would, without submitting anything new.
func TestBatchAttach(t *testing.T) {
	srv := newBatchServer(t)

	var first bytes.Buffer
	args := []string{"-batch", "-server", srv.URL, "-exp", "E1", "-seed", "7", "-trials", "2", "-maxk", "4"}
	if err := run(args, &first, fixedClock); err != nil {
		t.Fatalf("batch run: %v", err)
	}
	// The submission printed "job <id>: ..." first; attach to that ID.
	var id string
	if _, err := fmt.Sscanf(first.String(), "job %s ", &id); err != nil {
		t.Fatalf("cannot parse job id from %q: %v", first.String(), err)
	}
	id = strings.TrimSuffix(id, ":")

	var attached bytes.Buffer
	if err := run([]string{"-job", id, "-server", srv.URL, "-exp", "E1", "-seed", "7", "-trials", "2", "-maxk", "4"}, &attached, fixedClock); err != nil {
		t.Fatalf("attach run: %v", err)
	}
	// The first header line reports progress at submission/attach time (0
	// completed vs already done); everything after it must match exactly.
	stripHeader := func(s string) string {
		if i := strings.IndexByte(s, '\n'); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	if stripHeader(attached.String()) != stripHeader(first.String()) {
		t.Errorf("-job %s output differs from the original -batch run:\n--- attached ---\n%s\n--- batch ---\n%s",
			id, attached.String(), first.String())
	}
}

// TestBatchFlagErrors covers the batch-mode flag combinations that must be
// rejected before anything reaches a server.
func TestBatchFlagErrors(t *testing.T) {
	srv := newBatchServer(t)
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-batch", "-exp", "E1"}, "need -server"},
		{[]string{"-job", "j1"}, "need -server"},
		{[]string{"-batch", "-job", "j1", "-server", srv.URL}, "pick one"},
		{[]string{"-batch", "-server", srv.URL, "-format", "json"}, "-format text or tsv"},
	} {
		var buf bytes.Buffer
		err := run(tc.args, &buf, fixedClock)
		if err == nil {
			t.Errorf("args %v accepted, want error", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("args %v: error %q does not mention %q", tc.args, err, tc.want)
		}
	}
}

// TestBatchPartialStillPrints pins graceful degradation at the CLI: a job
// whose cells poison still reports each poisoned cell per line and exits
// non-zero naming the degraded terminal status.
func TestBatchPartialStillPrints(t *testing.T) {
	// Arm a certain jobs.cell fault, so every attempt fails and the single
	// cell exhausts its retry budget and poisons — the job degrades to
	// "partial" for real, through the real retry path.
	if _, err := fault.Enable(7, "jobs.cell:error:1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	srv := newBatchServer(t)

	var buf bytes.Buffer
	err := run([]string{"-batch", "-server", srv.URL, "-exp", "E1", "-seed", "7", "-trials", "2", "-maxk", "4"}, &buf, fixedClock)
	if err == nil {
		t.Fatal("fully-poisoned job exited zero; want a degraded exit")
	}
	if !strings.Contains(err.Error(), "partial") {
		t.Errorf("degraded exit %q does not name the partial terminal status", err)
	}
	if out := buf.String(); !strings.Contains(out, "poisoned after") {
		t.Errorf("batch output does not report the poisoned cell:\n%s", out)
	}
}
