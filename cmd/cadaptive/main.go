// Command cadaptive runs the paper-reproduction experiments E1–E11 and the
// ablations A1–A7, and prints their tables.
//
// Usage:
//
//	cadaptive -list
//	cadaptive -exp E3 -seed 1 -trials 20 -maxk 7
//	cadaptive -exp all -workers 8
//	cadaptive -exp E3 -format json > BENCH_baseline.json
//
// Every run is deterministic in (-seed, -trials, -maxk) — and only those:
// table contents are byte-identical for any -workers value. EXPERIMENTS.md
// was generated with the defaults.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, time.Now); err != nil {
		fmt.Fprintln(os.Stderr, "cadaptive:", err)
		os.Exit(1)
	}
}

// flagForField maps a ConfigError's field to the CLI flag that sets it.
var flagForField = map[string]string{
	"Trials": "-trials",
	"MaxK":   "-maxk",
}

// run is the whole CLI behind main: flags in, formatted tables out on
// stdout. It takes its arguments, output stream and clock explicitly so
// the end-to-end golden test can execute the real CLI path in-process with
// a fixed timestamp — internal/core never reads the wall clock itself
// (enforced by cadaptivelint's notime check), so the injected now is the
// only source of GeneratedAt and wall times.
func run(args []string, stdout io.Writer, now func() time.Time) error {
	def := core.DefaultConfig()
	fs := flag.NewFlagSet("cadaptive", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment ID (E1..E11, A1..A7) or \"all\"")
		seed    = fs.Uint64("seed", def.Seed, "random seed (all experiments are deterministic in it)")
		trials  = fs.Int("trials", def.Trials, "Monte-Carlo trials per measurement")
		maxK    = fs.Int("maxk", def.MaxK, "largest problem-size exponent (n up to 4^maxk)")
		workers = fs.Int("workers", 0, "engine worker bound (0 = GOMAXPROCS); results do not depend on it")
		list    = fs.Bool("list", false, "list experiments and ablations, then exit")
		timing  = fs.Bool("time", false, "print per-experiment wall time and engine utilisation")
		format  = fs.String("format", "text", "output format: text | tsv | json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range core.Experiments() {
			fmt.Fprintf(stdout, "%-4s %-40s %s\n", e.ID, e.Source, e.Summary)
		}
		return nil
	}

	if *format != "text" && *format != "tsv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text, tsv or json)", *format)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers %d < 0", *workers)
	}
	engine.SetSharedWorkers(*workers)

	cfg := core.Config{Seed: *seed, Trials: *trials, MaxK: *maxK}
	if err := cfg.Validate(); err != nil {
		var ce *core.ConfigError
		if errors.As(err, &ce) {
			if f, ok := flagForField[ce.Field]; ok {
				return fmt.Errorf("%s: %w", f, err)
			}
		}
		return err
	}

	// The CLI and the cadaptived service share core.RunContext /
	// RunAllContext as their only run entry points, so the two front-ends
	// cannot drift apart in what a given (experiment, config, seed) means.
	ctx := context.Background()
	start := now()
	var tables []*core.Table
	if *exp == "all" {
		all, err := core.RunAllContext(ctx, cfg)
		if err != nil {
			return err
		}
		tables = all
	} else {
		t, err := core.RunContext(ctx, *exp, cfg)
		if err != nil {
			return err
		}
		tables = []*core.Table{t}
	}
	end := now()
	wall := end.Sub(start)

	if *format == "json" {
		buf, err := core.NewSnapshot(cfg, tables, wall, end).MarshalIndentJSON()
		if err != nil {
			return err
		}
		_, err = stdout.Write(buf)
		return err
	}
	for _, t := range tables {
		if *format == "tsv" {
			fmt.Fprintln(stdout, t.FormatTSV())
		} else {
			fmt.Fprintln(stdout, t.Format())
		}
		if *timing {
			m := t.Metrics
			fmt.Fprintf(stdout, "[%s took %.1fs: %d cells on <=%d workers, utilisation %.0f%%]\n",
				t.ID, m.WallSeconds, m.Cells, m.Workers, m.Utilisation*100)
		}
	}
	if *timing {
		fmt.Fprintf(stdout, "[total %.1fs]\n", wall.Seconds())
	}
	return nil
}
