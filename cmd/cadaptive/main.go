// Command cadaptive runs the paper-reproduction experiments E1–E11 and the
// ablations A1–A7, and prints their tables.
//
// Usage:
//
//	cadaptive -list
//	cadaptive -exp E3 -seed 1 -trials 20 -maxk 7
//	cadaptive -exp all -workers 8
//	cadaptive -exp E3 -format json > BENCH_baseline.json
//	cadaptive -server http://127.0.0.1:8344 -exp E3
//
// With -server the experiments execute on a cadaptived instance instead of
// in-process: requests go through the retrying service client (capped
// backoff, Retry-After aware), and the output is formatted identically —
// determinism makes a remote table byte-for-byte the table a local run
// would have produced.
//
// Every run is deterministic in (-seed, -trials, -maxk) — and only those:
// table contents are byte-identical for any -workers value. EXPERIMENTS.md
// was generated with the defaults.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, time.Now); err != nil {
		fmt.Fprintln(os.Stderr, "cadaptive:", err)
		os.Exit(1)
	}
}

// flagForField maps a ConfigError's field to the CLI flag that sets it.
var flagForField = map[string]string{
	"Trials": "-trials",
	"MaxK":   "-maxk",
}

// run is the whole CLI behind main: flags in, formatted tables out on
// stdout. It takes its arguments, output stream and clock explicitly so
// the end-to-end golden test can execute the real CLI path in-process with
// a fixed timestamp — internal/core never reads the wall clock itself
// (enforced by cadaptivelint's notime check), so the injected now is the
// only source of GeneratedAt and wall times.
func run(args []string, stdout io.Writer, now func() time.Time) error {
	def := core.DefaultConfig()
	fs := flag.NewFlagSet("cadaptive", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment ID (E1..E11, A1..A7) or \"all\"")
		seed    = fs.Uint64("seed", def.Seed, "random seed (all experiments are deterministic in it)")
		trials  = fs.Int("trials", def.Trials, "Monte-Carlo trials per measurement")
		maxK    = fs.Int("maxk", def.MaxK, "largest problem-size exponent (n up to 4^maxk)")
		workers = fs.Int("workers", 0, "engine worker bound (0 = GOMAXPROCS); results do not depend on it")
		list    = fs.Bool("list", false, "list experiments and ablations, then exit")
		timing  = fs.Bool("time", false, "print per-experiment wall time and engine utilisation")
		format  = fs.String("format", "text", "output format: text | tsv | json")
		server  = fs.String("server", "", "cadaptived base URL; run remotely instead of in-process")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		rows, err := listExperiments(*server)
		if err != nil {
			return err
		}
		for _, e := range rows {
			fmt.Fprintf(stdout, "%-4s %-40s %s\n", e.ID, e.Source, e.Summary)
		}
		return nil
	}

	if *format != "text" && *format != "tsv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text, tsv or json)", *format)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers %d < 0", *workers)
	}
	if *server == "" {
		engine.SetSharedWorkers(*workers)
	} else if *workers != 0 {
		return errors.New("-workers applies to in-process runs; the server chose its own worker bound at startup")
	}

	cfg := core.Config{Seed: *seed, Trials: *trials, MaxK: *maxK}
	if err := cfg.Validate(); err != nil {
		var ce *core.ConfigError
		if errors.As(err, &ce) {
			if f, ok := flagForField[ce.Field]; ok {
				return fmt.Errorf("%s: %w", f, err)
			}
		}
		return err
	}

	// The CLI and the cadaptived service share core.RunContext /
	// RunAllContext as their only run entry points, so the two front-ends
	// cannot drift apart in what a given (experiment, config, seed) means —
	// and in remote mode the server funnels into the same entry points, so
	// the tables below are byte-identical either way.
	ctx := context.Background()
	start := now()
	var tables []*core.Table
	var err error
	if *server != "" {
		tables, err = runRemote(ctx, *server, *exp, cfg)
	} else if *exp == "all" {
		tables, err = core.RunAllContext(ctx, cfg)
	} else {
		var t *core.Table
		if t, err = core.RunContext(ctx, *exp, cfg); err == nil {
			tables = []*core.Table{t}
		}
	}
	if err != nil {
		return err
	}
	end := now()
	wall := end.Sub(start)

	if *format == "json" {
		buf, err := core.NewSnapshot(cfg, tables, wall, end).MarshalIndentJSON()
		if err != nil {
			return err
		}
		_, err = stdout.Write(buf)
		return err
	}
	for _, t := range tables {
		if *format == "tsv" {
			fmt.Fprintln(stdout, t.FormatTSV())
		} else {
			fmt.Fprintln(stdout, t.Format())
		}
		if *timing {
			m := t.Metrics
			fmt.Fprintf(stdout, "[%s took %.1fs: %d cells on <=%d workers, utilisation %.0f%%]\n",
				t.ID, m.WallSeconds, m.Cells, m.Workers, m.Utilisation*100)
		}
	}
	if *timing {
		fmt.Fprintf(stdout, "[total %.1fs]\n", wall.Seconds())
	}
	return nil
}

// listExperiments resolves the -list rows: the local registry, or the
// server's /v1/experiments when -server is set (the two agree by
// construction, but asking the server verifies it is reachable).
func listExperiments(server string) ([]service.ExperimentInfo, error) {
	if server == "" {
		exps := core.Experiments()
		out := make([]service.ExperimentInfo, len(exps))
		for i, e := range exps {
			out[i] = service.ExperimentInfo{ID: e.ID, Source: e.Source, Summary: e.Summary}
		}
		return out, nil
	}
	return service.NewClient(server).Experiments(context.Background())
}

// runRemote executes exp (or "all", in registry order) on a cadaptived
// instance and reconstructs the tables from the returned JSON bodies.
func runRemote(ctx context.Context, server, exp string, cfg core.Config) ([]*core.Table, error) {
	c := service.NewClient(server)
	c.Seed = cfg.Seed // replayable retry jitter, same spirit as the runs
	ids := []string{exp}
	if exp == "all" {
		infos, err := c.Experiments(ctx)
		if err != nil {
			return nil, fmt.Errorf("listing experiments on %s: %w", server, err)
		}
		ids = ids[:0]
		for _, e := range infos {
			ids = append(ids, e.ID)
		}
	}
	tables := make([]*core.Table, 0, len(ids))
	for _, id := range ids {
		resp, err := c.Run(ctx, id, cfg)
		if err != nil {
			return nil, fmt.Errorf("running %s on %s: %w", id, server, err)
		}
		var t core.Table
		if err := json.Unmarshal(resp.Table, &t); err != nil {
			return nil, fmt.Errorf("decoding %s table from %s: %w", id, server, err)
		}
		tables = append(tables, &t)
	}
	return tables, nil
}
