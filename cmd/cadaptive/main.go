// Command cadaptive runs the paper-reproduction experiments E1–E11 and
// prints their tables.
//
// Usage:
//
//	cadaptive -list
//	cadaptive -exp E3 -seed 1 -trials 20 -maxk 7
//	cadaptive -exp all
//
// Every run is deterministic in (-seed, -trials, -maxk); EXPERIMENTS.md was
// generated with the defaults.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cadaptive:", err)
		os.Exit(1)
	}
}

func run() error {
	def := core.DefaultConfig()
	var (
		exp    = flag.String("exp", "all", "experiment ID (E1..E11) or \"all\"")
		seed   = flag.Uint64("seed", def.Seed, "random seed (all experiments are deterministic in it)")
		trials = flag.Int("trials", def.Trials, "Monte-Carlo trials per measurement")
		maxK   = flag.Int("maxk", def.MaxK, "largest problem-size exponent (n up to 4^maxk)")
		list   = flag.Bool("list", false, "list experiments and exit")
		timing = flag.Bool("time", false, "print per-experiment wall time")
		format = flag.String("format", "text", "output format: text | tsv")
	)
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-4s %-40s %s\n", e.ID, e.Source, e.Summary)
		}
		return nil
	}

	if *format != "text" && *format != "tsv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	cfg := core.Config{Seed: *seed, Trials: *trials, MaxK: *maxK}
	runOne := func(id string) error {
		start := time.Now()
		t, err := core.Run(id, cfg)
		if err != nil {
			return err
		}
		if *format == "tsv" {
			fmt.Println(t.FormatTSV())
		} else {
			fmt.Println(t.Format())
		}
		if *timing {
			fmt.Printf("[%s took %.1fs]\n", id, time.Since(start).Seconds())
		}
		return nil
	}

	if *exp == "all" {
		for _, e := range core.Experiments() {
			if err := runOne(e.ID); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*exp)
}
