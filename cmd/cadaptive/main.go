// Command cadaptive runs the paper-reproduction experiments E1–E11 and the
// ablations A1–A7, and prints their tables.
//
// Usage:
//
//	cadaptive -list
//	cadaptive -exp E3 -seed 1 -trials 20 -maxk 7
//	cadaptive -exp all -workers 8
//	cadaptive -exp E3 -format json > BENCH_baseline.json
//
// Every run is deterministic in (-seed, -trials, -maxk) — and only those:
// table contents are byte-identical for any -workers value. EXPERIMENTS.md
// was generated with the defaults.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cadaptive:", err)
		os.Exit(1)
	}
}

// flagForField maps a ConfigError's field to the CLI flag that sets it.
var flagForField = map[string]string{
	"Trials": "-trials",
	"MaxK":   "-maxk",
}

func run() error {
	def := core.DefaultConfig()
	var (
		exp     = flag.String("exp", "all", "experiment ID (E1..E11, A1..A7) or \"all\"")
		seed    = flag.Uint64("seed", def.Seed, "random seed (all experiments are deterministic in it)")
		trials  = flag.Int("trials", def.Trials, "Monte-Carlo trials per measurement")
		maxK    = flag.Int("maxk", def.MaxK, "largest problem-size exponent (n up to 4^maxk)")
		workers = flag.Int("workers", 0, "engine worker bound (0 = GOMAXPROCS); results do not depend on it")
		list    = flag.Bool("list", false, "list experiments and ablations, then exit")
		timing  = flag.Bool("time", false, "print per-experiment wall time and engine utilisation")
		format  = flag.String("format", "text", "output format: text | tsv | json")
	)
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-4s %-40s %s\n", e.ID, e.Source, e.Summary)
		}
		return nil
	}

	if *format != "text" && *format != "tsv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text, tsv or json)", *format)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers %d < 0", *workers)
	}
	engine.SetSharedWorkers(*workers)

	cfg := core.Config{Seed: *seed, Trials: *trials, MaxK: *maxK}
	if err := cfg.Validate(); err != nil {
		var ce *core.ConfigError
		if errors.As(err, &ce) {
			if f, ok := flagForField[ce.Field]; ok {
				return fmt.Errorf("%s: %w", f, err)
			}
		}
		return err
	}

	start := time.Now()
	var tables []*core.Table
	if *exp == "all" {
		all, err := core.RunAll(cfg)
		if err != nil {
			return err
		}
		tables = all
	} else {
		t, err := core.Run(*exp, cfg)
		if err != nil {
			return err
		}
		tables = []*core.Table{t}
	}
	wall := time.Since(start)

	if *format == "json" {
		buf, err := core.NewSnapshot(cfg, tables, wall).MarshalIndentJSON()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(buf)
		return err
	}
	for _, t := range tables {
		if *format == "tsv" {
			fmt.Println(t.FormatTSV())
		} else {
			fmt.Println(t.Format())
		}
		if *timing {
			m := t.Metrics
			fmt.Printf("[%s took %.1fs: %d cells on <=%d workers, utilisation %.0f%%]\n",
				t.ID, m.WallSeconds, m.Cells, m.Workers, m.Utilisation*100)
		}
	}
	if *timing {
		fmt.Printf("[total %.1fs]\n", wall.Seconds())
	}
	return nil
}
