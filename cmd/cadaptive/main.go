// Command cadaptive runs the paper-reproduction experiments E1–E13 and the
// ablations A1–A7, and prints their tables.
//
// Usage:
//
//	cadaptive -list
//	cadaptive -exp E3 -seed 1 -trials 20 -maxk 7
//	cadaptive -exp all -workers 8
//	cadaptive -exp E3 -format json > BENCH_baseline.json
//	cadaptive -server http://127.0.0.1:8344 -exp E3
//	cadaptive -server http://127.0.0.1:8344 -batch -exp E1 -seeds 8 -maxk-min 4 -maxk 7
//	cadaptive -server http://127.0.0.1:8344 -job j1
//
// With -server the experiments execute on a cadaptived instance instead of
// in-process: requests go through the retrying service client (capped
// backoff, Retry-After aware), and the output is formatted identically —
// determinism makes a remote table byte-for-byte the table a local run
// would have produced.
//
// -batch submits the (experiment × seed range × maxk sweep) grid as one
// durable server-side job, waits for it, and prints every completed cell's
// table; a job that degrades to "partial" still prints its completed tables
// before the command fails. -job attaches to an existing job instead of
// submitting — after a server restart, attaching to the same ID resumes
// waiting on the journal-recovered job.
//
// Every run is deterministic in (-seed, -trials, -maxk) — and only those:
// table contents are byte-identical for any -workers value. EXPERIMENTS.md
// was generated with the defaults.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, time.Now); err != nil {
		fmt.Fprintln(os.Stderr, "cadaptive:", err)
		os.Exit(1)
	}
}

// flagForField maps a ConfigError's field to the CLI flag that sets it.
var flagForField = map[string]string{
	"Trials": "-trials",
	"MaxK":   "-maxk",
}

// run is the whole CLI behind main: flags in, formatted tables out on
// stdout. It takes its arguments, output stream and clock explicitly so
// the end-to-end golden test can execute the real CLI path in-process with
// a fixed timestamp — internal/core never reads the wall clock itself
// (enforced by cadaptivelint's notime check), so the injected now is the
// only source of GeneratedAt and wall times.
func run(args []string, stdout io.Writer, now func() time.Time) error {
	def := core.DefaultConfig()
	fs := flag.NewFlagSet("cadaptive", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment ID (E1..E13, A1..A7) or \"all\"")
		seed    = fs.Uint64("seed", def.Seed, "random seed (all experiments are deterministic in it)")
		trials  = fs.Int("trials", def.Trials, "Monte-Carlo trials per measurement")
		maxK    = fs.Int("maxk", def.MaxK, "largest problem-size exponent (n up to 4^maxk)")
		workers = fs.Int("workers", 0, "engine worker bound (0 = GOMAXPROCS); results do not depend on it")
		list    = fs.Bool("list", false, "list experiments and ablations, then exit")
		timing  = fs.Bool("time", false, "print per-experiment wall time and engine utilisation")
		format  = fs.String("format", "text", "output format: text | tsv | json")
		server  = fs.String("server", "", "cadaptived base URL; run remotely instead of in-process")
		batch   = fs.Bool("batch", false, "submit a durable batch job to -server instead of running cells one by one")
		seeds   = fs.Int("seeds", 1, "batch mode: number of consecutive seeds starting at -seed")
		maxkMin = fs.Int("maxk-min", 0, "batch mode: sweep maxk from this up to -maxk (0 = just -maxk)")
		jobID   = fs.String("job", "", "attach to an existing batch job on -server (resume waiting after a restart)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		rows, err := listExperiments(*server)
		if err != nil {
			return err
		}
		for _, e := range rows {
			fmt.Fprintf(stdout, "%-4s %-40s %s\n", e.ID, e.Source, e.Summary)
		}
		return nil
	}

	if *format != "text" && *format != "tsv" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text, tsv or json)", *format)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers %d < 0", *workers)
	}
	if *server == "" {
		engine.SetSharedWorkers(*workers)
	} else if *workers != 0 {
		return errors.New("-workers applies to in-process runs; the server chose its own worker bound at startup")
	}

	cfg := core.Config{Seed: *seed, Trials: *trials, MaxK: *maxK}
	if err := cfg.Validate(); err != nil {
		var ce *core.ConfigError
		if errors.As(err, &ce) {
			if f, ok := flagForField[ce.Field]; ok {
				return fmt.Errorf("%s: %w", f, err)
			}
		}
		return err
	}

	if *batch || *jobID != "" {
		if *server == "" {
			return errors.New("-batch and -job need -server: jobs live on a cadaptived instance")
		}
		if *batch && *jobID != "" {
			return errors.New("-batch submits a new job and -job attaches to an existing one; pick one")
		}
		if *format == "json" {
			return errors.New("batch mode prints per-cell tables; use -format text or tsv")
		}
		return runBatch(context.Background(), stdout, batchArgs{
			server: *server, exp: *exp, cfg: cfg,
			seeds: *seeds, maxkMin: *maxkMin, jobID: *jobID, tsv: *format == "tsv",
		})
	}

	// The CLI and the cadaptived service share core.RunContext /
	// RunAllContext as their only run entry points, so the two front-ends
	// cannot drift apart in what a given (experiment, config, seed) means —
	// and in remote mode the server funnels into the same entry points, so
	// the tables below are byte-identical either way.
	ctx := context.Background()
	start := now()
	var tables []*core.Table
	var err error
	if *server != "" {
		tables, err = runRemote(ctx, *server, *exp, cfg)
	} else if *exp == "all" {
		tables, err = core.RunAllContext(ctx, cfg)
	} else {
		var t *core.Table
		if t, err = core.RunContext(ctx, *exp, cfg); err == nil {
			tables = []*core.Table{t}
		}
	}
	if err != nil {
		return err
	}
	end := now()
	wall := end.Sub(start)

	if *format == "json" {
		buf, err := core.NewSnapshot(cfg, tables, wall, end).MarshalIndentJSON()
		if err != nil {
			return err
		}
		_, err = stdout.Write(buf)
		return err
	}
	for _, t := range tables {
		if *format == "tsv" {
			fmt.Fprintln(stdout, t.FormatTSV())
		} else {
			fmt.Fprintln(stdout, t.Format())
		}
		if *timing {
			m := t.Metrics
			fmt.Fprintf(stdout, "[%s took %.1fs: %d cells on <=%d workers, utilisation %.0f%%]\n",
				t.ID, m.WallSeconds, m.Cells, m.Workers, m.Utilisation*100)
		}
	}
	if *timing {
		fmt.Fprintf(stdout, "[total %.1fs]\n", wall.Seconds())
	}
	return nil
}

// listExperiments resolves the -list rows: the local registry, or the
// server's /v1/experiments when -server is set (the two agree by
// construction, but asking the server verifies it is reachable).
func listExperiments(server string) ([]service.ExperimentInfo, error) {
	if server == "" {
		exps := core.Experiments()
		out := make([]service.ExperimentInfo, len(exps))
		for i, e := range exps {
			out[i] = service.ExperimentInfo{ID: e.ID, Source: e.Source, Summary: e.Summary}
		}
		return out, nil
	}
	return service.NewClient(server).Experiments(context.Background())
}

// batchArgs is runBatch's bundle of the batch-relevant flags.
type batchArgs struct {
	server  string
	exp     string
	cfg     core.Config
	seeds   int
	maxkMin int
	jobID   string
	tsv     bool
}

// runBatch submits (or attaches to) a server-side batch job, waits for it
// to leave "running", and prints every completed cell's table in the job's
// canonical cell order. Poisoned cells are reported per cell and degrade
// the exit status — after the good tables have printed, because partial
// results are the point of graceful degradation.
func runBatch(ctx context.Context, stdout io.Writer, a batchArgs) error {
	c := service.NewClient(a.server)
	c.Seed = a.cfg.Seed // replayable retry jitter, same spirit as the runs

	var st *jobs.Status
	var err error
	if a.jobID != "" {
		st, err = c.Job(ctx, a.jobID, false)
		if err != nil {
			return fmt.Errorf("attaching to job %s on %s: %w", a.jobID, a.server, err)
		}
	} else {
		exps := []string{a.exp}
		if a.exp == "all" {
			infos, lerr := c.Experiments(ctx)
			if lerr != nil {
				return fmt.Errorf("listing experiments on %s: %w", a.server, lerr)
			}
			exps = exps[:0]
			for _, e := range infos {
				exps = append(exps, e.ID)
			}
		}
		maxkMax := a.cfg.MaxK
		maxkMin := a.maxkMin
		if maxkMin == 0 {
			maxkMin = maxkMax
		}
		st, err = c.SubmitJob(ctx, jobs.Spec{
			Experiments: exps,
			SeedStart:   a.cfg.Seed,
			SeedCount:   a.seeds,
			Trials:      a.cfg.Trials,
			MaxKMin:     maxkMin,
			MaxKMax:     maxkMax,
		})
		if err != nil {
			return fmt.Errorf("submitting job to %s: %w", a.server, err)
		}
	}
	fmt.Fprintf(stdout, "job %s: %d cells (%d completed) on %s\n", st.ID, st.Total, st.Completed, a.server)

	// WaitJob and Job return (nil, err) on failure and reassign st, so hold
	// the ID in a local — dereferencing st in the error branches would panic.
	id := st.ID
	if st.Status == jobs.JobRunning {
		if st, err = c.WaitJob(ctx, id); err != nil {
			return fmt.Errorf("waiting for job %s: %w", id, err)
		}
	}
	// One final fetch with tables: WaitJob polls without them.
	st, err = c.Job(ctx, id, true)
	if err != nil {
		return fmt.Errorf("fetching job %s tables: %w", id, err)
	}
	fmt.Fprintf(stdout, "job %s %s: %d/%d completed, %d poisoned, %d cancelled\n",
		st.ID, st.Status, st.Completed, st.Total, st.Poisoned, st.Cancelled)
	for _, cell := range st.Cells {
		switch cell.State {
		case "done":
			var t core.Table
			if err := json.Unmarshal(cell.Table, &t); err != nil {
				return fmt.Errorf("decoding %s table (seed=%d maxk=%d): %w", cell.Experiment, cell.Seed, cell.MaxK, err)
			}
			if a.tsv {
				fmt.Fprintln(stdout, t.FormatTSV())
			} else {
				fmt.Fprintln(stdout, t.Format())
			}
		case "poisoned":
			fmt.Fprintf(stdout, "[%s seed=%d maxk=%d poisoned after %d attempts: %s]\n",
				cell.Experiment, cell.Seed, cell.MaxK, cell.Attempts, cell.Error)
		}
	}
	if st.Status != jobs.JobCompleted {
		return fmt.Errorf("job %s ended %s (%d/%d cells completed)", st.ID, st.Status, st.Completed, st.Total)
	}
	return nil
}

// runRemote executes exp (or "all", in registry order) on a cadaptived
// instance and reconstructs the tables from the returned JSON bodies.
func runRemote(ctx context.Context, server, exp string, cfg core.Config) ([]*core.Table, error) {
	c := service.NewClient(server)
	c.Seed = cfg.Seed // replayable retry jitter, same spirit as the runs
	ids := []string{exp}
	if exp == "all" {
		infos, err := c.Experiments(ctx)
		if err != nil {
			return nil, fmt.Errorf("listing experiments on %s: %w", server, err)
		}
		ids = ids[:0]
		for _, e := range infos {
			ids = append(ids, e.ID)
		}
	}
	tables := make([]*core.Table, 0, len(ids))
	for _, id := range ids {
		resp, err := c.Run(ctx, id, cfg)
		if err != nil {
			return nil, fmt.Errorf("running %s on %s: %w", id, server, err)
		}
		var t core.Table
		if err := json.Unmarshal(resp.Table, &t); err != nil {
			return nil, fmt.Errorf("decoding %s table from %s: %w", id, server, err)
		}
		tables = append(tables, &t)
	}
	return tables, nil
}
