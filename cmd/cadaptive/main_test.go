package main

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

// fixedClock is the injected test clock: every call returns the same
// instant, so GeneratedAt and wall times are fully deterministic without
// normalization tricks.
func fixedClock() time.Time {
	return time.Date(2020, 7, 15, 12, 0, 0, 0, time.UTC)
}

var update = flag.Bool("update", false, "rewrite golden files from the current output")

// smokeArgs is the cheap deterministic configuration the golden file was
// generated with (E1 is pure construction: no Monte-Carlo, milliseconds).
var smokeArgs = []string{"-exp", "E1", "-seed", "7", "-trials", "2", "-maxk", "4", "-format", "json"}

// normalizeSnapshot zeroes the run-dependent parts — timestamp, wall times,
// engine metrics — leaving exactly the deterministic content the schema
// promises.
func normalizeSnapshot(t *testing.T, raw []byte) []byte {
	t.Helper()
	snap, err := core.ParseSnapshot(raw)
	if err != nil {
		t.Fatalf("CLI JSON output is not a valid snapshot: %v", err)
	}
	snap.GeneratedAt = ""
	snap.TotalWallSeconds = 0
	for _, tb := range snap.Experiments {
		tb.Metrics = core.Metrics{}
	}
	out, err := snap.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGoldenJSONOutput runs the real CLI path end to end (`cadaptive -exp
// E1 -format json`) and byte-compares the metrics-stripped snapshot against
// a committed golden file. Any drift in the JSON schema — renamed fields,
// changed formatting, a schema-version bump without regenerating goldens —
// fails loudly here.
func TestGoldenJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(smokeArgs, &buf, fixedClock); err != nil {
		t.Fatal(err)
	}
	// The clock is injected, so even the pre-normalization timestamp is
	// deterministic: core.NewSnapshot never reads the wall clock itself.
	if raw, err := core.ParseSnapshot(buf.Bytes()); err != nil {
		t.Fatal(err)
	} else if raw.GeneratedAt != "2020-07-15T12:00:00Z" {
		t.Errorf("GeneratedAt %q, want the injected fixed clock", raw.GeneratedAt)
	}
	got := normalizeSnapshot(t, buf.Bytes())

	golden := filepath.Join("testdata", "golden_e1.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/cadaptive -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON snapshot drifted from %s:\n--- got ---\n%s\n--- want ---\n%s\n(intentional schema changes: bump core.SnapshotSchemaVersion and regenerate with -update)",
			golden, got, want)
	}
}

// TestGoldenJSONStableAcrossRuns guards the premise of the golden file (and
// of the service's result cache): two runs with the same config produce
// byte-identical normalized snapshots.
func TestGoldenJSONStableAcrossRuns(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(smokeArgs, &a, fixedClock); err != nil {
		t.Fatal(err)
	}
	if err := run(smokeArgs, &b, fixedClock); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normalizeSnapshot(t, a.Bytes()), normalizeSnapshot(t, b.Bytes())) {
		t.Error("same config, different normalized snapshots")
	}
}

// TestListOutput covers the -list path through the injected writer.
func TestListOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf, fixedClock); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(core.Experiments()) {
		t.Fatalf("-list printed %d lines, want %d", len(lines), len(core.Experiments()))
	}
	for _, id := range []string{"E1", "E11", "A7"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

// TestBadFlagsError covers the error paths that must not reach a run.
func TestBadFlagsError(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "E1", "-format", "xml"},
		{"-exp", "E1", "-workers", "-1"},
		{"-exp", "nope"},
		{"-exp", "E1", "-trials", "0"},
		{"-exp", "E1", "-maxk", "99"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf, fixedClock); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRemoteMatchesLocal is the remote-mode contract: `-server URL` output
// is byte-identical to the in-process run for the same config and format,
// because the server funnels into the same core.RunContext entry point.
func TestRemoteMatchesLocal(t *testing.T) {
	s, err := service.New(service.Options{Addr: "127.0.0.1:0", MaxConcurrentRuns: 2, CacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for _, format := range []string{"text", "tsv", "json"} {
		local, remote := new(bytes.Buffer), new(bytes.Buffer)
		base := []string{"-exp", "E1", "-seed", "7", "-trials", "2", "-maxk", "4", "-format", format}
		if err := run(base, local, fixedClock); err != nil {
			t.Fatalf("local %s: %v", format, err)
		}
		if err := run(append(base, "-server", srv.URL), remote, fixedClock); err != nil {
			t.Fatalf("remote %s: %v", format, err)
		}
		got, want := remote.Bytes(), local.Bytes()
		if format == "json" {
			// Engine metrics are measured on whichever side ran the cells;
			// compare the deterministic content the schema promises.
			got, want = normalizeSnapshot(t, got), normalizeSnapshot(t, want)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("remote %s output differs from local:\n--- remote ---\n%s\n--- local ---\n%s", format, got, want)
		}
	}
}

// TestRemoteList covers `-list -server URL` and the -workers rejection.
func TestRemoteList(t *testing.T) {
	s, err := service.New(service.Options{Addr: "127.0.0.1:0", MaxConcurrentRuns: 2, CacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	localList, remoteList := new(bytes.Buffer), new(bytes.Buffer)
	if err := run([]string{"-list"}, localList, fixedClock); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-list", "-server", srv.URL}, remoteList, fixedClock); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localList.Bytes(), remoteList.Bytes()) {
		t.Errorf("remote -list differs from local:\n%s\nvs\n%s", remoteList, localList)
	}

	var buf bytes.Buffer
	if err := run([]string{"-exp", "E1", "-server", srv.URL, "-workers", "4"}, &buf, fixedClock); err == nil {
		t.Error("-workers with -server accepted; it cannot apply remotely")
	}
}

// TestConfigErrorNamesFlag keeps the ConfigError → flag attribution.
func TestConfigErrorNamesFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "E1", "-trials", "0"}, &buf, fixedClock)
	if err == nil || !strings.Contains(err.Error(), "-trials") {
		t.Errorf("error %v does not name the -trials flag", err)
	}
	err = run([]string{"-exp", "E1", "-maxk", "3"}, &buf, fixedClock)
	if err == nil || !strings.Contains(err.Error(), "-maxk") {
		t.Errorf("error %v does not name the -maxk flag", err)
	}
}
