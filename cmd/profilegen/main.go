// Command profilegen generates and inspects memory profiles.
//
// Usage:
//
//	profilegen -type worstcase -a 8 -b 4 -n 1024            # Figure 1's profile
//	profilegen -type worstcase -a 8 -b 4 -n 1024 -render    # ASCII skyline
//	profilegen -type shuffled -a 8 -b 4 -n 1024 -seed 7     # randomly shuffled
//	profilegen -type orderperturbed -a 8 -b 4 -n 1024       # the S4 smoothing
//	profilegen -type sawtooth -min 16 -max 512 -period 600 -len 3000
//	profilegen -type walk -min 16 -max 512 -step 8 -len 3000 -seed 7
//
// Raw (non-square) profiles are squared with the inner-square reduction
// before printing. Output is one box size per line (TSV: index, size),
// plus a summary on stderr; -render draws the profile instead.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/profile"
	"repro/internal/smoothing"
	"repro/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "profilegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		typ    = flag.String("type", "worstcase", "worstcase | shuffled | orderperturbed | sawtooth | walk | constant")
		a      = flag.Int64("a", 8, "recursion fan-out a")
		b      = flag.Int64("b", 4, "shrink factor b")
		n      = flag.Int64("n", 1024, "problem size (power of b) for recursive profiles")
		minM   = flag.Int64("min", 16, "min size (raw profiles)")
		maxM   = flag.Int64("max", 512, "max size (raw profiles)")
		period = flag.Int("period", 600, "sawtooth period (I/Os)")
		step   = flag.Int64("step", 8, "random-walk step")
		length = flag.Int("len", 3000, "raw profile length (I/Os)")
		seed   = flag.Uint64("seed", 1, "seed for randomised profiles")
		render = flag.Bool("render", false, "draw an ASCII skyline instead of printing boxes")
		limit  = flag.Int("limit", 1<<20, "refuse to print profiles with more boxes than this")
	)
	flag.Parse()

	rng := xrand.New(*seed)
	var p *profile.SquareProfile
	var err error
	switch *typ {
	case "worstcase":
		p, err = profile.WorstCase(*a, *b, *n)
	case "shuffled":
		p, err = profile.WorstCase(*a, *b, *n)
		if err == nil {
			p = smoothing.Shuffle(p, rng)
		}
	case "orderperturbed":
		p, err = smoothing.OrderPerturbed(*a, *b, *n, rng)
	case "sawtooth":
		var raw []int64
		raw, err = profile.Sawtooth(*minM, *maxM, *period, *length)
		if err == nil {
			p, err = profile.Squarize(raw)
		}
	case "walk":
		var raw []int64
		raw, err = profile.RandomWalk(rng, (*minM+*maxM)/2, *minM, *maxM, *step, *length)
		if err == nil {
			p, err = profile.Squarize(raw)
		}
	case "constant":
		var raw []int64
		raw, err = profile.Constant(*maxM, *length)
		if err == nil {
			p, err = profile.Squarize(raw)
		}
	default:
		return fmt.Errorf("unknown profile type %q", *typ)
	}
	if err != nil {
		return err
	}
	if p.Len() > *limit {
		return fmt.Errorf("profile has %d boxes; raise -limit to print it", p.Len())
	}

	fmt.Fprintf(os.Stderr, "%s  histogram=%v\n", p, compactHistogram(p))
	if *render {
		return renderSkyline(p, 100, 20)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := 0; i < p.Len(); i++ {
		fmt.Fprintf(w, "%d\t%d\n", i, p.Box(i))
	}
	return nil
}

func compactHistogram(p *profile.SquareProfile) string {
	h := p.SizeHistogram()
	sizes := make([]int64, 0, len(h))
	for s := range h {
		sizes = append(sizes, s) //lint:ignore maporder sizes is sorted immediately below
	}
	for i := 0; i < len(sizes); i++ {
		for j := i + 1; j < len(sizes); j++ {
			if sizes[j] < sizes[i] {
				sizes[i], sizes[j] = sizes[j], sizes[i]
			}
		}
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, s := range sizes {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d:%d", s, h[s])
	}
	sb.WriteByte('}')
	return sb.String()
}

// renderSkyline draws the profile as an ASCII step function: time on the
// x-axis (compressed into cols columns), box height on the y-axis.
func renderSkyline(p *profile.SquareProfile, cols, rows int) error {
	total := p.Duration()
	if total == 0 {
		return fmt.Errorf("empty profile")
	}
	maxBox := p.MaxBox()
	// Height of the profile at each of the cols sample points.
	heights := make([]int64, cols)
	var t int64
	bi := 0
	var consumed int64
	for c := 0; c < cols; c++ {
		target := total * int64(c) / int64(cols)
		for bi < p.Len() && consumed+p.Box(bi) <= target {
			consumed += p.Box(bi)
			bi++
		}
		if bi < p.Len() {
			heights[c] = p.Box(bi)
		}
		_ = t
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for r := rows; r >= 1; r-- {
		threshold := maxBox * int64(r) / int64(rows)
		for c := 0; c < cols; c++ {
			if heights[c] >= threshold {
				out.WriteByte('#')
			} else {
				out.WriteByte(' ')
			}
		}
		out.WriteByte('\n')
	}
	fmt.Fprintf(out, "%s\n", strings.Repeat("-", cols))
	fmt.Fprintf(out, "duration %d I/Os, max box %d, %d boxes\n", total, maxBox, p.Len())
	return nil
}
