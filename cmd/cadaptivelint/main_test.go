package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// miniModule is a self-contained module with one clean and one dirty
// package, so CLI tests exercise the real load-lint-report path without
// re-type-checking the whole repository.
func miniModule(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestListChecks(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-list"}, &buf)
	if code != 0 || err != nil {
		t.Fatalf("-list: code %d, err %v", code, err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := len(lint.Analyzers()); len(lines) != want {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), want, out)
	}
	for _, name := range []string{"norand", "notime", "errcheck", "maporder", "mutexcopy"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q", name)
		}
	}
}

func TestDirtyModuleFindings(t *testing.T) {
	root := miniModule(t)
	var buf bytes.Buffer
	code, err := run([]string{"-root", root, "-format", "text", root + "/..."}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d on a dirty module, want 1\n%s", code, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"dirty/dirty.go",
		"norand: import of math/rand",
		"errcheck: result of fmt.Sscanf discarded",
		"2 finding(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "clean.go") {
		t.Errorf("clean package produced findings:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	root := miniModule(t)
	var buf bytes.Buffer
	code, err := run([]string{"-root", root, "-format", "json", root + "/..."}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	var rep jsonReport
	if jerr := json.Unmarshal(buf.Bytes(), &rep); jerr != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", jerr, buf.String())
	}
	if len(rep.Diagnostics) != 2 {
		t.Fatalf("%d diagnostics in JSON, want 2: %+v", len(rep.Diagnostics), rep.Diagnostics)
	}
	checks := map[string]bool{}
	for _, d := range rep.Diagnostics {
		checks[d.Check] = true
		if d.File != "dirty/dirty.go" {
			t.Errorf("diagnostic file %q, want module-relative dirty/dirty.go", d.File)
		}
		if d.Line == 0 || d.Column == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
	if !checks["norand"] || !checks["errcheck"] {
		t.Errorf("JSON diagnostics missing a check: %+v", rep.Diagnostics)
	}
	// Both the dirty package's annotated Sscanf and the clean package's
	// annotated append must surface as suppressions, not findings.
	if len(rep.Suppressed) != 2 {
		t.Errorf("%d suppressed entries, want 2: %+v", len(rep.Suppressed), rep.Suppressed)
	}
}

func TestChecksSubsetAndCleanExit(t *testing.T) {
	root := miniModule(t)

	// Only mutexcopy: the dirty package has no lock copies, so the module
	// is clean under that subset.
	var buf bytes.Buffer
	code, err := run([]string{"-root", root, "-checks", "mutexcopy", root + "/..."}, &buf)
	if code != 0 || err != nil {
		t.Fatalf("mutexcopy-only: code %d, err %v\n%s", code, err, buf.String())
	}

	// The clean package alone exits 0 under every check.
	buf.Reset()
	code, err = run([]string{"-root", root, root + "/clean"}, &buf)
	if code != 0 || err != nil {
		t.Fatalf("clean package: code %d, err %v\n%s", code, err, buf.String())
	}
}

func TestUsageErrors(t *testing.T) {
	root := miniModule(t)
	for _, args := range [][]string{
		{"-format", "xml"},
		{"-checks", "nope"},
		{"-root", root, root + "/no/such/dir"},
	} {
		var buf bytes.Buffer
		code, err := run(args, &buf)
		if code != 2 || err == nil {
			t.Errorf("args %v: code %d, err %v; want code 2 with an error", args, code, err)
		}
	}
}
