package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// update regenerates the golden JSON snapshot:
//
//	go test ./cmd/cadaptivelint -run TestJSONGolden -update
var update = flag.Bool("update", false, "rewrite golden files instead of comparing")

// miniModule is a self-contained module with one clean and one dirty
// package, so CLI tests exercise the real load-lint-report path without
// re-type-checking the whole repository.
func miniModule(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestListChecks(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-list"}, &buf)
	if code != 0 || err != nil {
		t.Fatalf("-list: code %d, err %v", code, err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := len(lint.Analyzers()); len(lines) != want {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), want, out)
	}
	for _, name := range []string{"norand", "notime", "errcheck", "maporder", "mutexcopy"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q", name)
		}
	}
}

func TestDirtyModuleFindings(t *testing.T) {
	root := miniModule(t)
	var buf bytes.Buffer
	code, err := run([]string{"-root", root, "-format", "text", root + "/..."}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d on a dirty module, want 1\n%s", code, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"dirty/dirty.go",
		"norand: import of math/rand",
		"errcheck: result of fmt.Sscanf discarded",
		"guarded/guarded.go",
		"lockguard: n is guarded by \"mu\"",
		"hotpath: allocation on hot path hot: new",
		"4 finding(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "clean.go") {
		t.Errorf("clean package produced findings:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	root := miniModule(t)
	var buf bytes.Buffer
	code, err := run([]string{"-root", root, "-format", "json", root + "/..."}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	var rep jsonReport
	if jerr := json.Unmarshal(buf.Bytes(), &rep); jerr != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", jerr, buf.String())
	}
	if rep.Schema != jsonSchema {
		t.Errorf("schema %q, want %q", rep.Schema, jsonSchema)
	}
	if len(rep.Diagnostics) != 4 {
		t.Fatalf("%d diagnostics in JSON, want 4: %+v", len(rep.Diagnostics), rep.Diagnostics)
	}
	checks := map[string]bool{}
	for _, d := range rep.Diagnostics {
		checks[d.Check] = true
		if d.File != "dirty/dirty.go" && d.File != "guarded/guarded.go" {
			t.Errorf("diagnostic file %q, want module-relative dirty/dirty.go or guarded/guarded.go", d.File)
		}
		if d.Line == 0 || d.Column == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
	for _, name := range []string{"norand", "errcheck", "lockguard", "hotpath"} {
		if !checks[name] {
			t.Errorf("JSON diagnostics missing check %q: %+v", name, rep.Diagnostics)
		}
	}
	// The dirty package's annotated Sscanf, the clean package's annotated
	// append, and the guarded package's lockguard + hotpath suppressions
	// must all surface as suppressions, not findings.
	if len(rep.Suppressed) != 4 {
		t.Errorf("%d suppressed entries, want 4: %+v", len(rep.Suppressed), rep.Suppressed)
	}
}

// TestJSONGolden snapshots the entire -format json report over the mini
// module. The output is schema-versioned and deterministically ordered
// (packages in dependency-then-path order, diagnostics sorted by
// file/line/col/check/message), so the golden bytes must be stable across
// runs, machines, and -workers. Regenerate with -update after a deliberate
// schema or fixture change.
func TestJSONGolden(t *testing.T) {
	root := miniModule(t)
	var buf bytes.Buffer
	code, err := run([]string{"-root", root, "-format", "json", root + "/..."}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (the fixture module is dirty on purpose)", code)
	}

	golden := filepath.Join("testdata", "golden_lint.json")
	if *update {
		if werr := os.WriteFile(golden, buf.Bytes(), 0o644); werr != nil {
			t.Fatal(werr)
		}
	}
	want, rerr := os.ReadFile(golden)
	if rerr != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", rerr)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON report drifted from golden snapshot.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is deliberate, regenerate with -update (and bump jsonSchema if the shape changed).",
			buf.Bytes(), want)
	}

	// A second run must be byte-identical — the determinism claim itself.
	var again bytes.Buffer
	if code2, err2 := run([]string{"-root", root, "-format", "json", root + "/..."}, &again); code2 != 1 || err2 != nil {
		t.Fatalf("second run: code %d, err %v", code2, err2)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two identical invocations produced different JSON bytes")
	}
}

func TestChecksSubsetAndCleanExit(t *testing.T) {
	root := miniModule(t)

	// Only mutexcopy: the dirty package has no lock copies, so the module
	// is clean under that subset.
	var buf bytes.Buffer
	code, err := run([]string{"-root", root, "-checks", "mutexcopy", root + "/..."}, &buf)
	if code != 0 || err != nil {
		t.Fatalf("mutexcopy-only: code %d, err %v\n%s", code, err, buf.String())
	}

	// The clean package alone exits 0 under every check.
	buf.Reset()
	code, err = run([]string{"-root", root, root + "/clean"}, &buf)
	if code != 0 || err != nil {
		t.Fatalf("clean package: code %d, err %v\n%s", code, err, buf.String())
	}
}

func TestUsageErrors(t *testing.T) {
	root := miniModule(t)
	for _, args := range [][]string{
		{"-format", "xml"},
		{"-checks", "nope"},
		{"-root", root, root + "/no/such/dir"},
	} {
		var buf bytes.Buffer
		code, err := run(args, &buf)
		if code != 2 || err == nil {
			t.Errorf("args %v: code %d, err %v; want code 2 with an error", args, code, err)
		}
	}
}
