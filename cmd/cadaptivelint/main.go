// Command cadaptivelint runs this repository's determinism and hygiene
// checks (internal/lint) over the module and exits nonzero on findings.
// It is a CI gate: scripts/ci.sh fails if any invariant regresses.
//
// Usage:
//
//	cadaptivelint [-checks errcheck,norand] [-format text|json] [packages]
//	cadaptivelint ./...
//	cadaptivelint -list
//
// Package patterns are module-relative ("./...", "./internal/core",
// "./internal/..."); the default is ./... . Exit status is 0 when clean,
// 1 on findings, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cadaptivelint:", err)
	}
	os.Exit(code)
}

// jsonSchema versions the -format json output. Bump it on any change to
// jsonReport/jsonDiagnostic shape or field semantics; consumers (and the
// golden snapshot test) key off it.
const jsonSchema = "cadaptivelint/2"

// jsonReport is the -format json output schema.
type jsonReport struct {
	Schema      string           `json:"schema"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Suppressed  []jsonDiagnostic `json:"suppressed"`
}

// jsonDiagnostic flattens a lint.Diagnostic for machine consumption.
type jsonDiagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// run is the whole CLI behind main, with its output stream injected so
// tests can execute the real path in-process. It returns the process exit
// code; err carries the message for stderr when the code is nonzero for a
// reason other than findings.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("cadaptivelint", flag.ContinueOnError)
	var (
		format = fs.String("format", "text", "output format: text | json")
		checks = fs.String("checks", "", "comma-separated subset of checks to run (default all)")
		list   = fs.Bool("list", false, "list available checks, then exit")
		root   = fs.String("root", "", "module root (default: locate go.mod upwards from the working directory)")
	)
	if err := fs.Parse(args); err != nil {
		return 2, nil // flag package already printed the message
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	if *format != "text" && *format != "json" {
		return 2, fmt.Errorf("unknown format %q (want text or json)", *format)
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		return 2, err
	}

	modRoot := *root
	if modRoot == "" {
		modRoot, err = findModuleRoot()
		if err != nil {
			return 2, err
		}
	}
	// Cached: repeated invocations in one process (tests, future multi-root
	// drivers) re-use the type-checked tree instead of re-loading it per
	// invocation path.
	mod, err := lint.LoadModuleCached(modRoot)
	if err != nil {
		return 2, err
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected, err := selectPackages(mod, patterns)
	if err != nil {
		return 2, err
	}

	scopes := lint.DefaultScopes()
	var report jsonReport
	findings := 0
	for _, pkg := range selected {
		res := lint.RunPackage(pkg, analyzers, scopes)
		findings += len(res.Diagnostics)
		if *format == "json" {
			report.Diagnostics = append(report.Diagnostics, toJSON(modRoot, res.Diagnostics)...)
			report.Suppressed = append(report.Suppressed, toJSON(modRoot, res.Suppressed)...)
			continue
		}
		for _, d := range res.Diagnostics {
			rel := d
			rel.Pos.Filename = relPath(modRoot, d.Pos.Filename)
			fmt.Fprintln(stdout, rel.String())
		}
	}

	if *format == "json" {
		report.Schema = jsonSchema
		if report.Diagnostics == nil {
			report.Diagnostics = []jsonDiagnostic{}
		}
		if report.Suppressed == nil {
			report.Suppressed = []jsonDiagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return 2, err
		}
	}
	if findings > 0 {
		if *format == "text" {
			fmt.Fprintf(stdout, "%d finding(s)\n", findings)
		}
		return 1, nil
	}
	return 0, nil
}

func toJSON(root string, ds []lint.Diagnostic) []jsonDiagnostic {
	out := make([]jsonDiagnostic, len(ds))
	for i, d := range ds {
		out[i] = jsonDiagnostic{
			Check:   d.Check,
			File:    relPath(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Message: d.Message,
		}
	}
	return out
}

// relPath renders file relative to the module root when possible, for
// stable output regardless of where the module is checked out.
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

// selectAnalyzers resolves the -checks flag against the registry.
func selectAnalyzers(flagValue string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if flagValue == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(flagValue, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(all))
			for _, a := range all {
				known = append(known, a.Name)
			}
			return nil, fmt.Errorf("unknown check %q (have %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// selectPackages filters the module's packages by CLI patterns: "./..."
// (everything), "./dir/..." (subtree) or "./dir" (exact). Patterns are
// resolved against the working directory, so running from a subdirectory
// restricts to that subtree naturally.
func selectPackages(mod *lint.Module, patterns []string) ([]*lint.Package, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	type rule struct {
		rel     string
		subtree bool
	}
	var rules []rule
	for _, pat := range patterns {
		subtree := false
		if strings.HasSuffix(pat, "/...") {
			subtree = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			subtree = true
			pat = "."
		}
		abs := pat
		if !filepath.IsAbs(pat) {
			abs = filepath.Join(cwd, pat)
		}
		rel, err := filepath.Rel(mod.Root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q is outside the module", pat)
		}
		if rel == "." {
			rel = ""
		}
		rules = append(rules, rule{rel: filepath.ToSlash(rel), subtree: subtree})
	}
	var out []*lint.Package
	seen := map[string]bool{}
	for _, pkg := range mod.Pkgs {
		for _, r := range rules {
			match := pkg.Rel == r.rel || (r.subtree && (r.rel == "" || strings.HasPrefix(pkg.Rel, r.rel+"/")))
			if match && !seen[pkg.Rel] {
				seen[pkg.Rel] = true
				out = append(out, pkg)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("patterns %v matched no packages", patterns)
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
