// Package guarded gives the mini module annotation-driven violations: one
// lockguard and one hotpath finding survive, and one of each is
// suppressed, so the JSON golden snapshot pins the full schema for the
// flow-aware checks.
package guarded

import "sync"

type box struct {
	mu sync.Mutex
	//lint:guardedby mu
	n int
}

func (b *box) bump() {
	b.n++ // lockguard: no lock held
}

func (b *box) read() int {
	return b.n //lint:ignore lockguard fixture suppression, read is demo-racy on purpose
}

//lint:hotpath
func hot() *box {
	return new(box) // hotpath: definite allocation
}

//lint:hotpath
func warm() []int {
	//lint:ignore hotpath fixture suppression, one-time warm-up allocation
	return make([]int, 8)
}
