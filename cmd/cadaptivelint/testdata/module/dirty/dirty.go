// Package dirty violates norand and errcheck; the CLI must report both
// and honour the one suppression.
package dirty

import (
	"fmt"
	"math/rand"
)

// Parse swallows a scan error and leans on the global generator.
func Parse(s string) int {
	var n int
	fmt.Sscanf(s, "%d", &n)
	//lint:ignore errcheck the fallback value is fine in this demo
	fmt.Sscanf(s, "%x", &n)
	return n + rand.Int()
}
