module example/mini

go 1.22
