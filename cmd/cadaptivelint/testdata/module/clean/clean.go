// Package clean is free of findings; the CLI must exit 0 on it.
package clean

import (
	"fmt"
	"sort"
)

// Join renders m deterministically: keys are collected, sorted, then
// formatted in sorted order.
func Join(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		//lint:ignore maporder keys is sorted before any order-sensitive use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d;", k, m[k])
	}
	return out
}
