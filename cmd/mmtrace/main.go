// Command mmtrace generates matrix-multiply block traces and replays them
// against caches.
//
// Usage:
//
//	mmtrace -alg scan -dim 128 -block 8 -stats          # trace statistics
//	mmtrace -alg inplace -dim 128 -lru 256              # DAM misses at fixed M
//	mmtrace -alg inplace -dim 128 -lru 256 -policy arc  # same replay, ARC kernel
//	mmtrace -alg scan -dim 256 -profile p.tsv -policy 2q # profile replay, live kernel
//	mmtrace -alg scan -dim 128 -worstcase -reps 16      # multiplies under Fig-1 profile
//	mmtrace -alg scan -dim 1024 -stream -worstcase      # same, streaming (no materialized trace)
//	mmtrace -alg scan -dim 1024 -worstcase -workers 4   # sharded square-partitioned replay
//
// With -stream the trace is regenerated into each consumer instead of
// being built once in memory, so sizes whose materialized trace would not
// fit stream fine (the -opt replay is the one consumer that inherently
// needs the full trace and refuses -stream).
//
// -policy selects the replacement kernel: any registered paging policy
// (see paging.PolicyNames) for the -lru fixed-capacity replay, plus
// "square" (the default cleared-cache square semantics) or "opt"
// (clairvoyant Belady replay) for the -profile replay. Unknown names are
// rejected with the accepted list.
//
// -workers bounds the engine pool the -worstcase and -profile replays
// shard onto (square-partitioned replay, DESIGN.md): the replay splits at
// square boundaries, each shard re-streams its slice against a profile
// source forked at its starting box, and the merged result is identical
// to the serial replay at any worker count. Live-kernel profile replays
// (-policy with a registry name) are inherently serial — the kernel
// carries residency across box boundaries, so there is no square boundary
// to fork at; they ignore -workers.
//
// This is the substrate behind experiments E9 and E11.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dp"
	"repro/internal/engine"
	"repro/internal/gep"
	"repro/internal/matrix"
	"repro/internal/paging"
	"repro/internal/profile"
	"repro/internal/sorting"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mmtrace:", err)
		os.Exit(1)
	}
}

// distinctSink counts references, leaves, and distinct blocks without
// storing the trace.
type distinctSink struct {
	trace.CountingSink
	seen     []bool
	distinct int64
}

func (d *distinctSink) Access(block int64) {
	d.CountingSink.Access(block)
	for block >= int64(len(d.seen)) {
		d.seen = append(d.seen, make([]bool, len(d.seen)+1024)...)
	}
	if !d.seen[block] {
		d.seen[block] = true
		d.distinct++
	}
}

func (d *distinctSink) AccessRange(lo, count int64) {
	for i := int64(0); i < count; i++ {
		d.Access(lo + i)
	}
}

func run() error {
	var (
		alg       = flag.String("alg", "scan", "scan | inplace | strassen | fwscan | fwinplace | lcs | mergesort")
		dim       = flag.Int("dim", 128, "matrix dimension (power of two)")
		block     = flag.Int64("block", 8, "words per block")
		stats     = flag.Bool("stats", false, "print trace statistics")
		lru       = flag.Int64("lru", 0, "replay under a fixed-capacity cache with this many blocks (kernel chosen by -policy, default lru)")
		policy    = flag.String("policy", "", "replacement policy for the -lru and -profile replays (\"\" = lru / square respectively); one of "+strings.Join(paging.ReplayNames(), ", "))
		opt       = flag.Bool("opt", false, "also replay under Belady OPT (with -lru; needs a materialized trace)")
		worstcase = flag.Bool("worstcase", false, "count multiplies completed within the Figure-1 profile")
		reps      = flag.Int("reps", 16, "repetitions for -worstcase")
		profPath  = flag.String("profile", "", "replay the trace against a TSV square profile (e.g. from profilegen)")
		stream    = flag.Bool("stream", false, "stream the trace into each consumer instead of materializing it")
		workers   = flag.Int("workers", 0, "worker bound for parallel square-partitioned replay (-worstcase, -profile); <1 = all cores, 1 = serial")
	)
	flag.Parse()
	engine.SetSharedWorkers(*workers)

	// Validate -policy up front so a typo fails before any trace is built.
	if *policy != "" && !paging.HasPolicy(*policy) &&
		*policy != paging.SquareReplayName && *policy != paging.OPTReplayName {
		return fmt.Errorf("-policy %q is not an accepted replay policy (have %v)", *policy, paging.ReplayNames())
	}

	var emit func(trace.Sink) error
	switch *alg {
	case "scan":
		emit = func(s trace.Sink) error { return matrix.EmitMulScan(*dim, *block, s) }
	case "inplace":
		emit = func(s trace.Sink) error { return matrix.EmitMulInPlace(*dim, *block, s) }
	case "strassen":
		emit = func(s trace.Sink) error { return matrix.EmitMulStrassen(*dim, *block, s) }
	case "fwscan":
		emit = func(s trace.Sink) error { return gep.EmitFWScan(*dim, *block, s) }
	case "fwinplace":
		emit = func(s trace.Sink) error { return gep.EmitFWInPlace(*dim, *block, s) }
	case "lcs":
		emit = func(s trace.Sink) error { return dp.EmitLCS(*dim, *block, s) }
	case "mergesort":
		emit = func(s trace.Sink) error { return sorting.EmitMergeSort(*dim, *block, s) }
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}

	// Without -stream, materialize once and reuse the trace for every
	// consumer, exactly as before.
	var tr *trace.Trace
	if !*stream {
		b := &trace.Builder{}
		if err := emit(b); err != nil {
			return err
		}
		tr = b.Build()
	}
	// measure streams one emission through a counting sink; with a
	// materialized trace it reads the stored summary instead.
	measure := func() (refs, leaves, maxBlock int64, err error) {
		if tr != nil {
			return int64(tr.Len()), tr.Leaves(), tr.MaxBlock(), nil
		}
		c := &trace.CountingSink{}
		if err := emit(c); err != nil {
			return 0, 0, 0, err
		}
		return c.Refs, c.Leaves, c.MaxBlock, nil
	}

	did := false
	if *stats {
		fmt.Printf("algorithm=%s dim=%d B=%d\n", *alg, *dim, *block)
		if tr != nil {
			fmt.Printf("references=%d distinct-blocks=%d base-cases=%d\n",
				tr.Len(), tr.DistinctBlocks(), tr.Leaves())
		} else {
			d := &distinctSink{}
			if err := emit(d); err != nil {
				return err
			}
			fmt.Printf("references=%d distinct-blocks=%d base-cases=%d\n",
				d.Refs, d.distinct, d.Leaves)
		}
		did = true
	}
	if *lru > 0 {
		name := *policy
		if name == "" {
			name = "lru"
		}
		if name == paging.SquareReplayName {
			return fmt.Errorf("-policy square is the cleared-cache profile replay; it has no fixed-capacity form (use -profile)")
		}
		refs, _, _, err := measure()
		if err != nil {
			return err
		}
		var misses int64
		if name == paging.OPTReplayName {
			if tr == nil {
				return fmt.Errorf("-policy opt needs the full trace for the next-use precomputation; drop -stream")
			}
			misses, err = paging.RunOPTFixed(tr, *lru)
			if err != nil {
				return err
			}
		} else {
			p, err := paging.NewReplacementPolicy(name, *lru)
			if err != nil {
				return err
			}
			if tr != nil {
				p.Reserve(tr.MaxBlock())
				trace.Replay(tr, paging.CacheSink{Cache: p})
			} else if err := emit(paging.CacheSink{Cache: p}); err != nil {
				return err
			}
			misses = p.Misses()
		}
		label := strings.ToUpper(name)
		fmt.Printf("%s(M=%d blocks): %d misses (%.1f%% of references)\n",
			label, *lru, misses, 100*float64(misses)/float64(refs))
		if *opt && name != paging.OPTReplayName {
			if tr == nil {
				return fmt.Errorf("-opt needs the full trace for the next-use precomputation; drop -stream")
			}
			om, err := paging.RunOPTFixed(tr, *lru)
			if err != nil {
				return err
			}
			fmt.Printf("OPT(M=%d blocks): %d misses (%s/OPT = %.2f)\n", *lru, om, label, float64(misses)/float64(om))
		}
		did = true
	}
	if *worstcase {
		// The matrix algorithms stream their worst-case profile (dim-4096
		// scale profiles are never materialized); the others materialize the
		// profile and stream it through a cycling source. Either way the
		// source is forkable, so the replay shards across squares on the
		// engine pool when workers allow — output is identical to the serial
		// replay at any worker count.
		var (
			boxSrc   profile.ForkableSource
			nBoxes   int64
			duration int64
			err      error
		)
		switch *alg {
		case "scan", "inplace", "strassen":
			boxSrc, nBoxes, duration, err = matrix.WorstCaseBoxStream(*dim, *block)
		case "fwscan", "fwinplace", "mergesort":
			var wc *profile.SquareProfile
			if *alg == "mergesort" {
				wc, err = sorting.WorstCaseProfile(*dim, *block)
			} else {
				wc, err = gep.WorstCaseProfile(*dim, *block)
			}
			if err == nil {
				nBoxes, duration = int64(wc.Len()), wc.Duration()
				boxSrc, err = profile.NewSliceSource(wc)
			}
		default:
			return fmt.Errorf("-worstcase has no matched profile for %q", *alg)
		}
		if err != nil {
			return err
		}
		refs, _, maxBlock, err := measure()
		if err != nil {
			return err
		}
		var served int64
		if tr != nil {
			served, err = paging.ServedRepeatParallel(tr, boxSrc, nBoxes, *reps, maxBlock+1, 0)
		} else {
			served, err = paging.ServedEmitRepeatParallel(emit, refs, maxBlock, boxSrc, nBoxes, *reps, maxBlock+1, 0)
		}
		if err != nil {
			return err
		}
		fmt.Printf("worst-case profile: %d boxes, %d I/Os; %s completed %d multiplies\n",
			nBoxes, duration, *alg, served/refs)
		did = true
	}
	if *profPath != "" {
		pf, err := os.Open(*profPath)
		if err != nil {
			return err
		}
		prof, err := profile.ReadTSV(pf)
		pf.Close()
		if err != nil {
			return err
		}
		if prof.Len() == 0 {
			return fmt.Errorf("profile %s is empty", *profPath)
		}
		src, err := profile.NewSliceSource(prof)
		if err != nil {
			return err
		}
		name := *policy
		if name == "" {
			name = paging.SquareReplayName
		}
		var st []paging.BoxStat
		switch {
		case name == paging.SquareReplayName && tr != nil:
			st, err = paging.SquareRunParallel(tr, src, 0, 0)
		case name == paging.SquareReplayName:
			refs, _, maxBlock, merr := measure()
			if merr != nil {
				return merr
			}
			st, err = paging.SquareEmitParallel(emit, refs, maxBlock, src, 0, 0)
		case tr != nil:
			// Live kernels and the clairvoyant replay are serial: residency
			// carries across box boundaries, so there is no square boundary
			// to shard at.
			st, err = paging.PolicyRun(name, tr, src, 0)
		case name == paging.OPTReplayName:
			return fmt.Errorf("-policy opt needs the full trace for the next-use precomputation; drop -stream")
		default:
			p, perr := paging.NewReplacementPolicy(name, 1)
			if perr != nil {
				return perr
			}
			_, _, maxBlock, merr := measure()
			if merr != nil {
				return merr
			}
			q := paging.NewPolicyStream(p, src, 0)
			q.Reserve(maxBlock)
			if err := emit(q); err != nil {
				return err
			}
			st, err = q.Finish()
		}
		if err != nil {
			return err
		}
		fmt.Printf("custom profile %s (%d boxes, cycled as needed) under %s:\n", *profPath, prof.Len(), name)
		fmt.Printf("boxes used=%d IOs=%d base-cases completed=%d\n",
			len(st), paging.TotalIOs(st), paging.TotalLeaves(st))
		did = true
	}
	if !did {
		return fmt.Errorf("nothing to do: pass -stats, -lru, -worstcase, or -profile")
	}
	return nil
}
