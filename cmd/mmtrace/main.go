// Command mmtrace generates matrix-multiply block traces and replays them
// against caches.
//
// Usage:
//
//	mmtrace -alg scan -dim 128 -block 8 -stats          # trace statistics
//	mmtrace -alg inplace -dim 128 -lru 256              # DAM misses at fixed M
//	mmtrace -alg scan -dim 128 -worstcase -reps 16      # multiplies under Fig-1 profile
//
// This is the substrate behind experiments E9 and E11.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dp"
	"repro/internal/gep"
	"repro/internal/matrix"
	"repro/internal/paging"
	"repro/internal/profile"
	"repro/internal/sorting"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mmtrace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		alg       = flag.String("alg", "scan", "scan | inplace | strassen | fwscan | fwinplace | lcs | mergesort")
		dim       = flag.Int("dim", 128, "matrix dimension (power of two)")
		block     = flag.Int64("block", 8, "words per block")
		stats     = flag.Bool("stats", false, "print trace statistics")
		lru       = flag.Int64("lru", 0, "replay under fixed-capacity LRU with this many blocks")
		opt       = flag.Bool("opt", false, "also replay under Belady OPT (with -lru)")
		worstcase = flag.Bool("worstcase", false, "count multiplies completed within the Figure-1 profile")
		reps      = flag.Int("reps", 16, "repetitions for -worstcase")
		profPath  = flag.String("profile", "", "replay the trace against a TSV square profile (e.g. from profilegen)")
	)
	flag.Parse()

	var tr *trace.Trace
	var err error
	switch *alg {
	case "scan":
		tr, err = matrix.TraceMulScan(*dim, *block)
	case "inplace":
		tr, err = matrix.TraceMulInPlace(*dim, *block)
	case "strassen":
		tr, err = matrix.TraceMulStrassen(*dim, *block)
	case "fwscan":
		tr, err = gep.TraceFWScan(*dim, *block)
	case "fwinplace":
		tr, err = gep.TraceFWInPlace(*dim, *block)
	case "lcs":
		tr, err = dp.TraceLCS(*dim, *block)
	case "mergesort":
		tr, err = sorting.TraceMergeSort(*dim, *block)
	default:
		return fmt.Errorf("unknown algorithm %q", *alg)
	}
	if err != nil {
		return err
	}

	did := false
	if *stats {
		fmt.Printf("algorithm=%s dim=%d B=%d\n", *alg, *dim, *block)
		fmt.Printf("references=%d distinct-blocks=%d base-cases=%d\n",
			tr.Len(), tr.DistinctBlocks(), tr.Leaves())
		did = true
	}
	if *lru > 0 {
		misses, err := paging.RunLRUFixed(tr, *lru)
		if err != nil {
			return err
		}
		fmt.Printf("LRU(M=%d blocks): %d misses (%.1f%% of references)\n",
			*lru, misses, 100*float64(misses)/float64(tr.Len()))
		if *opt {
			om, err := paging.RunOPTFixed(tr, *lru)
			if err != nil {
				return err
			}
			fmt.Printf("OPT(M=%d blocks): %d misses (LRU/OPT = %.2f)\n", *lru, om, float64(misses)/float64(om))
		}
		did = true
	}
	if *worstcase {
		var wc *profile.SquareProfile
		switch *alg {
		case "scan", "inplace", "strassen":
			wc, err = matrix.WorstCaseProfile(*dim, *block)
		case "fwscan", "fwinplace":
			wc, err = gep.WorstCaseProfile(*dim, *block)
		case "mergesort":
			wc, err = sorting.WorstCaseProfile(*dim, *block)
		default:
			return fmt.Errorf("-worstcase has no matched profile for %q", *alg)
		}
		if err != nil {
			return err
		}
		rep, err := matrix.RepeatTraceFresh(tr, *reps)
		if err != nil {
			return err
		}
		end, err := paging.SquareRunFrom(rep, 0, wc.Boxes())
		if err != nil {
			return err
		}
		fmt.Printf("worst-case profile: %d boxes, %d I/Os; %s completed %d multiplies\n",
			wc.Len(), wc.Duration(), *alg, end/tr.Len())
		did = true
	}
	if *profPath != "" {
		f, err := os.Open(*profPath)
		if err != nil {
			return err
		}
		prof, err := profile.ReadTSV(f)
		f.Close()
		if err != nil {
			return err
		}
		if prof.Len() == 0 {
			return fmt.Errorf("profile %s is empty", *profPath)
		}
		src, err := profile.NewSliceSource(prof)
		if err != nil {
			return err
		}
		stats, err := paging.SquareRun(tr, src, 0)
		if err != nil {
			return err
		}
		fmt.Printf("custom profile %s (%d boxes, cycled as needed):\n", *profPath, prof.Len())
		fmt.Printf("boxes used=%d IOs=%d base-cases completed=%d\n",
			len(stats), paging.TotalIOs(stats), paging.TotalLeaves(stats))
		did = true
	}
	if !did {
		return fmt.Errorf("nothing to do: pass -stats, -lru, -worstcase, or -profile")
	}
	return nil
}
