#!/bin/sh
# CI gate: vet, build, full test suite, then a race-detector pass over the
# concurrency-sensitive packages (the engine and everything that fans out on
# it), including the worker-count determinism test. Run from the repo root:
#
#   ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (short) =="
go test -race -short \
    ./internal/engine/ \
    ./internal/adaptivity/ \
    ./internal/core/ \
    -run 'TestMap|TestNested|TestShared|TestGroup|TestTrialsDeterministicAcrossWorkers|TestRunAllDeterministicAcrossWorkers'

echo "CI OK"
