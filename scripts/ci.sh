#!/bin/sh
# CI gate: formatting, vet, the cadaptivelint determinism checks, build, the
# full test suite (shuffled), then a race-detector pass over the
# concurrency-sensitive packages (the engine and everything that fans out on
# it), including the worker-count determinism test. Run from the repo root:
#
#   ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== cadaptivelint =="
# Zero findings repo-wide is the gate: the annotation-driven lockguard and
# hotpath contracts (see DESIGN.md "Concurrency & allocation contracts")
# fail the build alongside the six structural checks.
go run ./cmd/cadaptivelint ./...

echo "== hotpath/alloc consistency =="
# Every //lint:hotpath annotation must be backed by an AllocsPerRun test
# (//allocguard marker), and no marker may outlive its annotation.
go test -count=1 -run 'TestHotpathAllocConsistency' ./internal/lint/

echo "== go build =="
go build ./...

echo "== go test =="
# -shuffle=on randomizes test order within each package, so tests that
# secretly depend on a sibling's side effects fail here instead of later.
go test -shuffle=on ./...

echo "== go test -race (short) =="
go test -race -short \
    ./internal/engine/ \
    ./internal/adaptivity/ \
    ./internal/core/ \
    -run 'TestMap|TestNested|TestShared|TestGroup|TestTrialsDeterministicAcrossWorkers|TestRunAllDeterministicAcrossWorkers'

echo "== go test -race (service + paging properties) =="
go test -race -short \
    ./internal/service/ \
    ./internal/paging/ \
    -run 'TestService|TestCache|TestLRU|TestFIFO|TestOPT|TestHitsPlusMisses|TestShrink|TestClient'

echo "== go test -race (fault injection) =="
go test -race -short ./internal/fault/

echo "== go test -race (sharded result cache) =="
# The sharded cache under concurrency: singleflight per shard, the
# stale-while-revalidate background refresh, the differential replay against
# the single-mutex oracle, and the eviction-policy adapters.
go test -race -short \
    ./internal/service/ \
    -run 'TestCacheDifferential|TestCacheBytesBound|TestCacheTTL|TestCacheSWR|TestCacheShardRouting|TestCacheDisabled|TestServiceTablesIdenticalAcrossShardCounts' \
    -count=1

echo "== go test -race (policy registry + adaptive kernels) =="
# The ReplacementPolicy registry end to end: ARC/2Q differential oracles,
# the live-kernel box replay (PolicyStream/PolicyRun/OPTRunBoxes), the
# registry-name plumbing through MeasureTracePolicy, and the reference
# conformance suite over every registered policy.
go test -race -short \
    ./internal/paging/ \
    ./internal/adaptivity/ \
    -run 'TestARC|Test2Q|TestTwoQ|TestPolicy|TestOPTRunBoxes|TestMeasureTracePolicy' \
    -count=1

echo "== go test -race (parallel square replay) =="
# The sharded replay paths: plan/execute determinism at explicit shard and
# worker counts, the ledger-merge equivalence, and the finisher early-stop
# regressions, all race-checked since shards share the engine pool.
go test -race -short \
    ./internal/paging/ \
    ./internal/adaptivity/ \
    -run 'TestSquareRunParallel|TestSquareEmitParallel|TestServedRepeat|TestServedEmitRepeat|TestSrcFinisher|TestReplayRangeHalts|TestReplayRepeatHalts|TestDefaultShards|TestMeasureTrace'

echo "== chaos smoke =="
# The deterministic fault storm: concurrent clients against a real server
# with every injection point armed at a fixed seed. Asserts process
# survival, no deadlock, valid statuses, metrics conservation, and
# post-retry result identity with a fault-free run. Under -race so the
# fault paths (panic containment, queue shedding) are also race-checked.
go test -race -count=1 -run 'TestChaos' ./internal/service/

echo "== go test -race (durable batch jobs) =="
# The jobs layer end to end under the race detector: scheduler fairness,
# retry/poison accounting, journal replay, manager kill/resume, and the
# service-level jobs API including resume across server instances.
go test -race -count=1 -run 'TestJob|TestJournal|TestSpec|TestRetry|TestTransient|TestCancel|TestSubmit|TestWeighted|TestKillRestartResume|TestResume|TestRestore|TestSchedulerFaults|TestServiceJobs|TestServiceHealthz' \
    ./internal/jobs/ \
    ./internal/service/

echo "== kill-and-restart smoke =="
# The durability claim, end to end: SIGKILL a real cadaptived mid-job (no
# shutdown path runs), restart it on the same -jobs-dir, and assert the job
# completes while only the journal-missing cells recompute.
go test -race -count=1 -run 'TestDaemonKillRestartResume' ./cmd/cadaptived/

echo "== go test -race (shared cache + smoothing) =="
go test -race -short \
    ./internal/sharedcache/ \
    ./internal/smoothing/

echo "== bench smoke =="
# One iteration of every benchmark so the bench harness can't bit-rot:
# this compiles and executes each bench body (including the paging
# kernel-vs-oracle replay benches and the streaming-pipeline benches)
# without measuring anything.
go test -run=NONE -bench=. -benchtime=1x ./...

echo "== fuzz smoke =="
# Five seconds per fuzz target: enough to exercise the mutator on the
# checked-in corpora without stalling CI. -run '^$' skips the unit tests
# (already covered above) so only the fuzzing engine runs.
go test -run '^$' -fuzz '^FuzzParseID$' -fuzztime 5s ./internal/core/
go test -run '^$' -fuzz '^FuzzReadTSV$' -fuzztime 5s ./internal/profile/
go test -run '^$' -fuzz '^FuzzParseIgnoreDirective$' -fuzztime 5s ./internal/lint/
go test -run '^$' -fuzz '^FuzzParseAnnotation$' -fuzztime 5s ./internal/lint/
go test -run '^$' -fuzz '^FuzzKernelsMatchOracles$' -fuzztime 5s ./internal/paging/
go test -run '^$' -fuzz '^FuzzAdaptivePoliciesMatchOracles$' -fuzztime 5s ./internal/paging/
go test -run '^$' -fuzz '^FuzzParallelMatchesSerial$' -fuzztime 5s ./internal/paging/
go test -run '^$' -fuzz '^FuzzShardRouting$' -fuzztime 5s ./internal/service/
go test -run '^$' -fuzz '^FuzzJournalReplay$' -fuzztime 5s ./internal/jobs/

echo "CI OK"
