#!/bin/sh
# CI gate: vet, build, full test suite, then a race-detector pass over the
# concurrency-sensitive packages (the engine and everything that fans out on
# it), including the worker-count determinism test. Run from the repo root:
#
#   ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (short) =="
go test -race -short \
    ./internal/engine/ \
    ./internal/adaptivity/ \
    ./internal/core/ \
    -run 'TestMap|TestNested|TestShared|TestGroup|TestTrialsDeterministicAcrossWorkers|TestRunAllDeterministicAcrossWorkers'

echo "== go test -race (service + paging properties) =="
go test -race -short \
    ./internal/service/ \
    ./internal/paging/ \
    -run 'TestService|TestCache|TestLRU|TestOPT|TestHitsPlusMisses|TestShrink'

echo "== fuzz smoke =="
# Five seconds per fuzz target: enough to exercise the mutator on the
# checked-in corpora without stalling CI. -run '^$' skips the unit tests
# (already covered above) so only the fuzzing engine runs.
go test -run '^$' -fuzz '^FuzzParseID$' -fuzztime 5s ./internal/core/
go test -run '^$' -fuzz '^FuzzReadTSV$' -fuzztime 5s ./internal/profile/

echo "CI OK"
