package core

import (
	"fmt"

	"repro/internal/adaptivity"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/smoothing"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// This file implements the smoothing experiments: E3 (Theorem 1 — i.i.d.
// box sizes close the gap) and E6–E8 (the three weaker smoothings that
// fail).

func init() {
	register(Experiment{
		ID:      "E3",
		Source:  "Theorem 1 / Theorem 3",
		Summary: "i.i.d. box sizes from arbitrary distributions (and literal shuffles of the adversary's boxes) make (8,4,1) cache-adaptive in expectation",
		Run:     runE3,
	})
	register(Experiment{
		ID:      "E6",
		Source:  "Robustness: box-size perturbations",
		Summary: "Multiplying each worst-case box by an i.i.d. factor in [1,t] leaves the profile worst-case in expectation",
		Run:     runE6,
	})
	register(Experiment{
		ID:      "E7",
		Source:  "Robustness: start-time perturbations",
		Summary: "A random cyclic start time leaves the expected gap logarithmic",
		Run:     runE7,
	})
	register(Experiment{
		ID:      "E8",
		Source:  "Robustness: box-order perturbations",
		Summary: "Placing each level's box after a random recursive instance remains worst-case (with prob. 1 for the aligned (a,b,1) witness)",
		Run:     runE8,
	})
}

// gapCurve collects mean gaps for k = kMin..kMax and fits the slope.
type gapCurve struct {
	ks    []float64
	means []float64
	cis   []float64
}

func (g *gapCurve) add(k int, gaps []float64) {
	s := stats.Summarize(gaps)
	g.ks = append(g.ks, float64(k))
	g.means = append(g.means, s.Mean)
	g.cis = append(g.cis, s.CI95())
}

func (g *gapCurve) slope() (stats.Fit, error) { return stats.LinearFit(g.ks, g.means) }

func runE3(cfg Config) (*Table, error) {
	spec := regular.MMScanSpec
	nMax := profile.Pow(4, cfg.MaxK)

	uni, err := xrand.NewUniform(4, 64)
	if err != nil {
		return nil, err
	}
	pl, err := xrand.NewPowerLaw(4, cfg.MaxK, 0.75)
	if err != nil {
		return nil, err
	}
	tp, err := xrand.NewTwoPoint(4, nMax, 0.01)
	if err != nil {
		return nil, err
	}
	wcd, err := xrand.WorstCaseBoxDist(8, 4, nMax)
	if err != nil {
		return nil, err
	}
	dists := []xrand.Dist{uni, pl, tp, wcd}

	t := &Table{
		ID:     "E3",
		Title:  "Theorem 1: expected gap under i.i.d. box sizes (and literal shuffles)",
		Header: []string{"distribution", "k", "n", "mean gap", "ci95", "worst-case gap"},
	}
	var notes []string
	rng := xrand.New(cfg.Seed)
	for _, d := range dists {
		var curve gapCurve
		for k := 3; k <= cfg.MaxK; k++ {
			n := profile.Pow(4, k)
			gaps, err := adaptivity.GapOnDist(spec, n, d, rng.Uint64(), cfg.Trials)
			if err != nil {
				return nil, err
			}
			curve.add(k, gaps)
			s := stats.Summarize(gaps)
			t.AddRow(d.Name(), k, n, s.Mean, s.CI95(), fmt.Sprintf("%d", k+1))
		}
		fit, err := curve.slope()
		if err != nil {
			return nil, err
		}
		notes = append(notes, fmt.Sprintf("%s: slope %+.3f/level (worst case: +1.0)", d.Name(), fit.Beta))
	}

	// Literal shuffle of the adversary's own boxes.
	var curve gapCurve
	for k := 3; k <= cfg.MaxK; k++ {
		n := profile.Pow(4, k)
		wc, err := profile.WorstCase(8, 4, n)
		if err != nil {
			return nil, err
		}
		var gaps []float64
		trials := cfg.Trials
		if k >= 7 && trials > 8 {
			trials = 8 // shuffling multi-million-box profiles is memory-heavy
		}
		for trial := 0; trial < trials; trial++ {
			sh := smoothing.Shuffle(wc, rng)
			res, err := adaptivity.GapOnProfile(spec, n, sh)
			if err != nil {
				return nil, err
			}
			gaps = append(gaps, res.Gap())
		}
		curve.add(k, gaps)
		s := stats.Summarize(gaps)
		t.AddRow("shuffle(M_{8,4})", k, n, s.Mean, s.CI95(), fmt.Sprintf("%d", k+1))
	}
	fit, err := curve.slope()
	if err != nil {
		return nil, err
	}
	notes = append(notes, fmt.Sprintf("shuffle(M_{8,4}): slope %+.3f/level", fit.Beta))
	t.Note = joinNotes(notes)
	return t, nil
}

func runE6(cfg Config) (*Table, error) {
	spec := regular.MMScanSpec
	t := &Table{
		ID:     "E6",
		Title:  "Box-size perturbation |□|·X, X ~ U{1..t}: gap keeps growing",
		Header: []string{"t", "k", "n", "mean gap", "ci95", "t<=sqrt(n)"},
	}
	rng := xrand.New(cfg.Seed ^ 0xe6)
	var notes []string
	for _, tf := range []int64{2, 4, 16} {
		// The paper's condition is t <= √n, i.e. k >= 2·log_4(t); only
		// those sizes enter the slope fit.
		minValidK := 0
		for p := int64(1); p < tf; p *= 2 {
			minValidK++
		}
		var curve gapCurve
		for k := 3; k <= cfg.MaxK; k++ {
			n := profile.Pow(4, k)
			wc, err := profile.WorstCase(8, 4, n)
			if err != nil {
				return nil, err
			}
			var gaps []float64
			trials := cfg.Trials
			if k >= 7 && trials > 8 {
				trials = 8
			}
			for trial := 0; trial < trials; trial++ {
				pp, err := smoothing.PerturbSizes(wc, rng, tf)
				if err != nil {
					return nil, err
				}
				res, err := adaptivity.GapOnProfile(spec, n, pp)
				if err != nil {
					return nil, err
				}
				gaps = append(gaps, res.Gap())
			}
			if k >= minValidK {
				curve.add(k, gaps)
			}
			s := stats.Summarize(gaps)
			valid := "yes"
			if k < minValidK {
				valid = "no (t>√n)"
			}
			t.AddRow(tf, k, n, s.Mean, s.CI95(), valid)
		}
		if len(curve.ks) < 2 {
			notes = append(notes, fmt.Sprintf("t=%d: too few t<=√n sizes at this MaxK for a slope fit", tf))
			continue
		}
		fit, err := curve.slope()
		if err != nil {
			return nil, err
		}
		notes = append(notes, fmt.Sprintf("t=%d: slope %+.3f/level over the t<=√n sizes (worst case: +1.0; any persistent positive slope = still worst-case in expectation)", tf, fit.Beta))
	}
	t.Note = joinNotes(notes)
	return t, nil
}

func runE7(cfg Config) (*Table, error) {
	spec := regular.MMScanSpec
	t := &Table{
		ID:     "E7",
		Title:  "Start-time perturbation (random cyclic shift): expected gap stays logarithmic",
		Header: []string{"k", "n", "mean gap", "ci95", "min", "max", "worst-case gap"},
	}
	rng := xrand.New(cfg.Seed ^ 0xe7)
	var curve gapCurve
	for k := 3; k <= cfg.MaxK; k++ {
		n := profile.Pow(4, k)
		wc, err := profile.WorstCase(8, 4, n)
		if err != nil {
			return nil, err
		}
		var gaps []float64
		trials := cfg.Trials
		if k >= 7 && trials > 8 {
			trials = 8
		}
		for trial := 0; trial < trials; trial++ {
			rp, err := smoothing.RandomRotation(wc, rng)
			if err != nil {
				return nil, err
			}
			res, err := adaptivity.GapOnProfile(spec, n, rp)
			if err != nil {
				return nil, err
			}
			gaps = append(gaps, res.Gap())
		}
		curve.add(k, gaps)
		s := stats.Summarize(gaps)
		t.AddRow(k, n, s.Mean, s.CI95(), s.Min, s.Max, fmt.Sprintf("%d", k+1))
	}
	fit, err := curve.slope()
	if err != nil {
		return nil, err
	}
	t.Note = fmt.Sprintf("slope %+.3f/level: the expected gap keeps growing — random start times do not smooth the adversary.", fit.Beta)
	return t, nil
}

func runE8(cfg Config) (*Table, error) {
	spec := regular.MMScanSpec
	t := &Table{
		ID:     "E8",
		Title:  "Box-order perturbation: canonical algorithm vs the aligned (a,b,1)-regular witness",
		Header: []string{"k", "n", "canonical mean gap", "aligned gap (every seed)", "full gap"},
	}
	rng := xrand.New(cfg.Seed ^ 0xe8)
	for k := 2; k <= cfg.MaxK-1; k++ {
		n := profile.Pow(4, k)

		// Canonical end-scan algorithm on randomly order-perturbed profiles.
		var gaps []float64
		trials := cfg.Trials
		if k >= 6 && trials > 8 {
			trials = 8
		}
		for trial := 0; trial < trials; trial++ {
			op, err := smoothing.OrderPerturbed(8, 4, n, rng)
			if err != nil {
				return nil, err
			}
			res, err := adaptivity.GapOnProfile(spec, n, op)
			if err != nil {
				return nil, err
			}
			gaps = append(gaps, res.Gap())
		}
		canonical := stats.Summarize(gaps).Mean

		// Aligned witness: same profile family, scan placement matching the
		// box placement, strict scans. Gap is k+1 exactly for every seed.
		alignedGaps := make([]float64, 0, 4)
		for s := uint64(0); s < 4; s++ {
			seed := cfg.Seed + s
			p, err := smoothing.OrderPerturbedAligned(8, 4, n, seed)
			if err != nil {
				return nil, err
			}
			e, err := regular.NewExecWithPolicy(spec, n, smoothing.AlignedScanPolicy(8, seed))
			if err != nil {
				return nil, err
			}
			if err := e.SetStrictScans(true); err != nil {
				return nil, err
			}
			src, err := profile.NewSliceSource(p)
			if err != nil {
				return nil, err
			}
			var pot float64
			for !e.Done() {
				box := src.Next()
				pot += spec.BoundedPotential(box, n)
				e.Step(box)
			}
			alignedGaps = append(alignedGaps, pot/spec.Potential(n))
		}
		al := stats.Summarize(alignedGaps)
		if al.Min != al.Max {
			return nil, fmt.Errorf("E8: aligned gap varied across seeds at k=%d: %v", k, alignedGaps)
		}
		t.AddRow(k, n, canonical, al.Mean, fmt.Sprintf("%d", k+1))
	}
	t.Note = "the aligned witness — an (a,b,1)-regular algorithm whose scan placement matches the profile's box placement (allowed by Definition 2) — suffers the full log gap with probability one; the canonical end-scan algorithm drifts ahead and extracts more, which is why the worst-case claim is class-level."
	return t, nil
}
