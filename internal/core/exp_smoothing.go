package core

import (
	"fmt"

	"repro/internal/adaptivity"
	"repro/internal/engine"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/smoothing"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// This file implements the smoothing experiments: E3 (Theorem 1 — i.i.d.
// box sizes close the gap) and E6–E8 (the three weaker smoothings that
// fail). E3, E6 and E7 fan their Monte-Carlo cells out on the engine with
// per-cell xrand.Split seeds, so their tables are identical for any worker
// count; E8's trials are few and cheap enough to stay serial.

func init() {
	register(Experiment{
		ID:      "E3",
		Source:  "Theorem 1 / Theorem 3",
		Summary: "i.i.d. box sizes from arbitrary distributions (and literal shuffles of the adversary's boxes) make (8,4,1) cache-adaptive in expectation",
		Run:     runE3,
	})
	register(Experiment{
		ID:      "E6",
		Source:  "Robustness: box-size perturbations",
		Summary: "Multiplying each worst-case box by an i.i.d. factor in [1,t] leaves the profile worst-case in expectation",
		Run:     runE6,
	})
	register(Experiment{
		ID:      "E7",
		Source:  "Robustness: start-time perturbations",
		Summary: "A random cyclic start time leaves the expected gap logarithmic",
		Run:     runE7,
	})
	register(Experiment{
		ID:      "E8",
		Source:  "Robustness: box-order perturbations",
		Summary: "Placing each level's box after a random recursive instance remains worst-case (with prob. 1 for the aligned (a,b,1) witness)",
		Run:     runE8,
	})
}

// gapCurve collects mean gaps for k = kMin..kMax and fits the slope.
type gapCurve struct {
	ks    []float64
	means []float64
	cis   []float64
}

func (g *gapCurve) add(k int, gaps []float64) {
	s := stats.Summarize(gaps)
	g.ks = append(g.ks, float64(k))
	g.means = append(g.means, s.Mean)
	g.cis = append(g.cis, s.CI95())
}

func (g *gapCurve) slope() (stats.Fit, error) { return stats.LinearFit(g.ks, g.means) }

// trimmedTrials caps the Monte-Carlo repetitions for the largest profile
// sizes (k >= fromK), where materialised worst-case profiles have millions
// of boxes and per-trial perturbation copies get memory-heavy.
func trimmedTrials(trials, k, fromK int) int {
	if k >= fromK && trials > 8 {
		return 8
	}
	return trials
}

// worstCases materialises the M_{8,4}(4^k) worst-case profile for each
// k = kMin..kMax once, up front and serially; the engine workers then share
// them read-only.
func worstCases(kMin, kMax int) (map[int]*profile.SquareProfile, error) {
	wcs := make(map[int]*profile.SquareProfile, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		wc, err := profile.WorstCase(8, 4, profile.Pow(4, k))
		if err != nil {
			return nil, err
		}
		wcs[k] = wc
	}
	return wcs, nil
}

func runE3(cfg Config) (*Table, error) {
	cfg = clampMaterializedK(cfg)
	spec := regular.MMScanSpec
	nMax := profile.Pow(4, cfg.MaxK)

	uni, err := xrand.NewUniform(4, 64)
	if err != nil {
		return nil, err
	}
	pl, err := xrand.NewPowerLaw(4, cfg.MaxK, 0.75)
	if err != nil {
		return nil, err
	}
	tp, err := xrand.NewTwoPoint(4, nMax, 0.01)
	if err != nil {
		return nil, err
	}
	wcd, err := xrand.WorstCaseBoxDist(8, 4, nMax)
	if err != nil {
		return nil, err
	}
	dists := []xrand.Dist{uni, pl, tp, wcd}

	t := &Table{
		ID:     "E3",
		Title:  "Theorem 1: expected gap under i.i.d. box sizes (and literal shuffles)",
		Header: []string{"distribution", "k", "n", "mean gap", "ci95", "worst-case gap"},
	}
	g := engine.NewGroup().WithContext(cfg.Context())
	workers := newWorkerStates(g)

	// i.i.d. part: one engine cell per (distribution, size, trial), laid out
	// row-major so each (distribution, k) group is a contiguous run of
	// cfg.Trials results.
	type iidCell struct{ d, k, trial int }
	var cells []iidCell
	for d := range dists {
		for k := 3; k <= cfg.MaxK; k++ {
			for trial := 0; trial < cfg.Trials; trial++ {
				cells = append(cells, iidCell{d, k, trial})
			}
		}
	}
	gaps := make([]float64, len(cells))
	if err := g.Map(len(cells), func(i, w int) error {
		c := cells[i]
		e, err := workers[w].exec(spec, profile.Pow(4, c.k))
		if err != nil {
			return err
		}
		seed := xrand.Split(cfg.Seed, "E3", int64(c.d), int64(c.k), int64(c.trial))
		gap, err := adaptivity.GapSampleExec(e, dists[c.d], seed)
		if err != nil {
			return err
		}
		gaps[i] = gap
		return nil
	}); err != nil {
		return nil, err
	}
	var notes []string
	idx := 0
	for _, d := range dists {
		var curve gapCurve
		for k := 3; k <= cfg.MaxK; k++ {
			kGaps := gaps[idx : idx+cfg.Trials]
			idx += cfg.Trials
			curve.add(k, kGaps)
			s := stats.Summarize(kGaps)
			t.AddRow(d.Name(), k, profile.Pow(4, k), s.Mean, s.CI95(), fmt.Sprintf("%d", k+1))
		}
		fit, err := curve.slope()
		if err != nil {
			return nil, err
		}
		notes = append(notes, fmt.Sprintf("%s: slope %+.3f/level (worst case: +1.0)", d.Name(), fit.Beta))
	}

	// Literal shuffle of the adversary's own boxes: the worst-case profiles
	// are shared read-only; each cell shuffles into its worker's buffer.
	wcs, err := worstCases(3, cfg.MaxK)
	if err != nil {
		return nil, err
	}
	type shCell struct{ k, trial int }
	var shCells []shCell
	for k := 3; k <= cfg.MaxK; k++ {
		for trial := 0; trial < trimmedTrials(cfg.Trials, k, 7); trial++ {
			shCells = append(shCells, shCell{k, trial})
		}
	}
	shGaps := make([]float64, len(shCells))
	if err := g.Map(len(shCells), func(i, w int) error {
		c := shCells[i]
		ws := workers[w]
		e, err := ws.exec(spec, profile.Pow(4, c.k))
		if err != nil {
			return err
		}
		rng := xrand.New(xrand.Split(cfg.Seed, "E3/shuffle", int64(c.k), int64(c.trial)))
		ws.buf = smoothing.ShuffleTo(ws.buf, wcs[c.k], rng)
		res, err := ws.gapOnBoxes(e, ws.buf)
		if err != nil {
			return err
		}
		shGaps[i] = res.Gap()
		return nil
	}); err != nil {
		return nil, err
	}
	var curve gapCurve
	idx = 0
	for k := 3; k <= cfg.MaxK; k++ {
		trials := trimmedTrials(cfg.Trials, k, 7)
		kGaps := shGaps[idx : idx+trials]
		idx += trials
		curve.add(k, kGaps)
		s := stats.Summarize(kGaps)
		t.AddRow("shuffle(M_{8,4})", k, profile.Pow(4, k), s.Mean, s.CI95(), fmt.Sprintf("%d", k+1))
	}
	fit, err := curve.slope()
	if err != nil {
		return nil, err
	}
	notes = append(notes, fmt.Sprintf("shuffle(M_{8,4}): slope %+.3f/level", fit.Beta))
	t.Note = joinNotes(notes)
	finishMetrics(t, g)
	return t, nil
}

func runE6(cfg Config) (*Table, error) {
	cfg = clampMaterializedK(cfg)
	spec := regular.MMScanSpec
	t := &Table{
		ID:     "E6",
		Title:  "Box-size perturbation |□|·X, X ~ U{1..t}: gap keeps growing",
		Header: []string{"t", "k", "n", "mean gap", "ci95", "t<=sqrt(n)"},
	}
	factors := []int64{2, 4, 16}
	wcs, err := worstCases(3, cfg.MaxK)
	if err != nil {
		return nil, err
	}

	g := engine.NewGroup().WithContext(cfg.Context())
	workers := newWorkerStates(g)
	type cell struct {
		tf       int64
		k, trial int
	}
	var cells []cell
	for _, tf := range factors {
		for k := 3; k <= cfg.MaxK; k++ {
			for trial := 0; trial < trimmedTrials(cfg.Trials, k, 7); trial++ {
				cells = append(cells, cell{tf, k, trial})
			}
		}
	}
	gaps := make([]float64, len(cells))
	if err := g.Map(len(cells), func(i, w int) error {
		c := cells[i]
		ws := workers[w]
		e, err := ws.exec(spec, profile.Pow(4, c.k))
		if err != nil {
			return err
		}
		rng := xrand.New(xrand.Split(cfg.Seed, "E6", c.tf, int64(c.k), int64(c.trial)))
		ws.buf, err = smoothing.PerturbSizesTo(ws.buf, wcs[c.k], rng, c.tf)
		if err != nil {
			return err
		}
		res, err := ws.gapOnBoxes(e, ws.buf)
		if err != nil {
			return err
		}
		gaps[i] = res.Gap()
		return nil
	}); err != nil {
		return nil, err
	}

	var notes []string
	idx := 0
	for _, tf := range factors {
		// The paper's condition is t <= √n, i.e. k >= 2·log_4(t); only
		// those sizes enter the slope fit.
		minValidK := 0
		for p := int64(1); p < tf; p *= 2 {
			minValidK++
		}
		var curve gapCurve
		for k := 3; k <= cfg.MaxK; k++ {
			trials := trimmedTrials(cfg.Trials, k, 7)
			kGaps := gaps[idx : idx+trials]
			idx += trials
			if k >= minValidK {
				curve.add(k, kGaps)
			}
			s := stats.Summarize(kGaps)
			valid := "yes"
			if k < minValidK {
				valid = "no (t>√n)"
			}
			t.AddRow(tf, k, profile.Pow(4, k), s.Mean, s.CI95(), valid)
		}
		if len(curve.ks) < 2 {
			notes = append(notes, fmt.Sprintf("t=%d: too few t<=√n sizes at this MaxK for a slope fit", tf))
			continue
		}
		fit, err := curve.slope()
		if err != nil {
			return nil, err
		}
		notes = append(notes, fmt.Sprintf("t=%d: slope %+.3f/level over the t<=√n sizes (worst case: +1.0; any persistent positive slope = still worst-case in expectation)", tf, fit.Beta))
	}
	t.Note = joinNotes(notes)
	finishMetrics(t, g)
	return t, nil
}

func runE7(cfg Config) (*Table, error) {
	cfg = clampMaterializedK(cfg)
	spec := regular.MMScanSpec
	t := &Table{
		ID:     "E7",
		Title:  "Start-time perturbation (random cyclic shift): expected gap stays logarithmic",
		Header: []string{"k", "n", "mean gap", "ci95", "min", "max", "worst-case gap"},
	}
	wcs, err := worstCases(3, cfg.MaxK)
	if err != nil {
		return nil, err
	}

	g := engine.NewGroup().WithContext(cfg.Context())
	workers := newWorkerStates(g)
	type cell struct{ k, trial int }
	var cells []cell
	for k := 3; k <= cfg.MaxK; k++ {
		for trial := 0; trial < trimmedTrials(cfg.Trials, k, 7); trial++ {
			cells = append(cells, cell{k, trial})
		}
	}
	gaps := make([]float64, len(cells))
	if err := g.Map(len(cells), func(i, w int) error {
		c := cells[i]
		ws := workers[w]
		e, err := ws.exec(spec, profile.Pow(4, c.k))
		if err != nil {
			return err
		}
		rng := xrand.New(xrand.Split(cfg.Seed, "E7", int64(c.k), int64(c.trial)))
		ws.buf, err = smoothing.RandomRotationTo(ws.buf, wcs[c.k], rng)
		if err != nil {
			return err
		}
		res, err := ws.gapOnBoxes(e, ws.buf)
		if err != nil {
			return err
		}
		gaps[i] = res.Gap()
		return nil
	}); err != nil {
		return nil, err
	}

	var curve gapCurve
	idx := 0
	for k := 3; k <= cfg.MaxK; k++ {
		trials := trimmedTrials(cfg.Trials, k, 7)
		kGaps := gaps[idx : idx+trials]
		idx += trials
		curve.add(k, kGaps)
		s := stats.Summarize(kGaps)
		t.AddRow(k, profile.Pow(4, k), s.Mean, s.CI95(), s.Min, s.Max, fmt.Sprintf("%d", k+1))
	}
	fit, err := curve.slope()
	if err != nil {
		return nil, err
	}
	t.Note = fmt.Sprintf("slope %+.3f/level: the expected gap keeps growing — random start times do not smooth the adversary.", fit.Beta)
	finishMetrics(t, g)
	return t, nil
}

func runE8(cfg Config) (*Table, error) {
	cfg = clampMaterializedK(cfg)
	spec := regular.MMScanSpec
	t := &Table{
		ID:     "E8",
		Title:  "Box-order perturbation: canonical algorithm vs the aligned (a,b,1)-regular witness",
		Header: []string{"k", "n", "canonical mean gap", "aligned gap (every seed)", "full gap"},
	}
	rng := xrand.New(cfg.Seed ^ 0xe8)
	for k := 2; k <= cfg.MaxK-1; k++ {
		n := profile.Pow(4, k)

		// Canonical end-scan algorithm on randomly order-perturbed profiles.
		var gaps []float64
		trials := cfg.Trials
		if k >= 6 && trials > 8 {
			trials = 8
		}
		for trial := 0; trial < trials; trial++ {
			op, err := smoothing.OrderPerturbed(8, 4, n, rng)
			if err != nil {
				return nil, err
			}
			res, err := adaptivity.GapOnProfile(spec, n, op)
			if err != nil {
				return nil, err
			}
			gaps = append(gaps, res.Gap())
		}
		canonical := stats.Summarize(gaps).Mean

		// Aligned witness: same profile family, scan placement matching the
		// box placement, strict scans. Gap is k+1 exactly for every seed.
		alignedGaps := make([]float64, 0, 4)
		for s := uint64(0); s < 4; s++ {
			seed := cfg.Seed + s
			p, err := smoothing.OrderPerturbedAligned(8, 4, n, seed)
			if err != nil {
				return nil, err
			}
			e, err := regular.NewExecWithPolicy(spec, n, smoothing.AlignedScanPolicy(8, seed))
			if err != nil {
				return nil, err
			}
			if err := e.SetStrictScans(true); err != nil {
				return nil, err
			}
			src, err := profile.NewSliceSource(p)
			if err != nil {
				return nil, err
			}
			var pot float64
			for !e.Done() {
				box := src.Next()
				pot += spec.BoundedPotential(box, n)
				e.Step(box)
			}
			alignedGaps = append(alignedGaps, pot/spec.Potential(n))
		}
		al := stats.Summarize(alignedGaps)
		if al.Min != al.Max {
			return nil, fmt.Errorf("E8: aligned gap varied across seeds at k=%d: %v", k, alignedGaps)
		}
		t.AddRow(k, n, canonical, al.Mean, fmt.Sprintf("%d", k+1))
	}
	t.Note = "the aligned witness — an (a,b,1)-regular algorithm whose scan placement matches the profile's box placement (allowed by Definition 2) — suffers the full log gap with probability one; the canonical end-scan algorithm drifts ahead and extracts more, which is why the worst-case claim is class-level."
	return t, nil
}
