package core

import (
	"repro/internal/adaptivity"
	"repro/internal/engine"
	"repro/internal/profile"
	"repro/internal/regular"
)

// Per-worker scratch for the Monte-Carlo runners: the engine hands every
// cell a stable worker index, and these states let a worker reuse its
// symbolic executors (one per problem size) and its box buffer across all
// the cells it executes, keeping the hot paths allocation-light.

type workerState struct {
	execs map[int64]*regular.Exec // keyed by problem size n
	buf   []int64                 // perturbed/shuffled profile scratch
	src   *profile.BoxesSource
}

// newWorkerStates allocates one scratch state per possible worker of g.
func newWorkerStates(g *engine.Group) []*workerState {
	ws := make([]*workerState, g.Workers())
	for i := range ws {
		ws[i] = &workerState{execs: map[int64]*regular.Exec{}}
	}
	return ws
}

// exec returns the worker's cached executor for (spec, n), creating it on
// first use. Callers within one experiment always pass the same spec, so
// keying by n alone is sound.
func (w *workerState) exec(spec regular.Spec, n int64) (*regular.Exec, error) {
	if e, ok := w.execs[n]; ok {
		return e, nil
	}
	e, err := regular.NewExec(spec, n)
	if err != nil {
		return nil, err
	}
	w.execs[n] = e
	return e, nil
}

// gapOnBoxes measures e's algorithm against the worker-owned box slice,
// reusing the worker's cycling source.
func (w *workerState) gapOnBoxes(e *regular.Exec, boxes []int64) (adaptivity.RunResult, error) {
	if w.src == nil {
		src, err := profile.NewBoxesSource(boxes)
		if err != nil {
			return adaptivity.RunResult{}, err
		}
		w.src = src
	}
	return adaptivity.GapOnBoxesExec(e, w.src, boxes)
}

// finishMetrics copies a group's execution accounting onto the table.
func finishMetrics(t *Table, g *engine.Group) {
	t.Metrics.Cells = g.Cells()
	t.Metrics.BusySeconds = g.Busy().Seconds()
}
