package core

import (
	"context"
	"errors"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
)

// testConfig keeps experiment tests fast; the committed EXPERIMENTS.md
// numbers use DefaultConfig.
func testConfig() Config {
	return Config{Seed: 7, Trials: 4, MaxK: 4}
}

func TestRegistryComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) != 20 {
		t.Fatalf("registered %d experiments, want 20 (E1..E13, A1..A7)", len(exps))
	}
	for i, e := range exps {
		var want string
		if i < 13 {
			want = "E" + strconv.Itoa(i+1)
		} else {
			want = "A" + strconv.Itoa(i-12)
		}
		if e.ID != want {
			t.Errorf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
		if e.Source == "" || e.Summary == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	for _, id := range []string{"E99", "A99", "E14", "A8"} {
		_, err := Run(id, testConfig())
		if err == nil {
			t.Fatalf("%s: unknown experiment accepted", id)
		}
		if !strings.Contains(err.Error(), "unknown experiment") {
			t.Errorf("%s: error %q does not say \"unknown experiment\"", id, err)
		}
	}
}

func TestRunMalformedID(t *testing.T) {
	// Regression: these used to be Sscanf-parsed with the error ignored, so
	// "Axe" fell through as A0 and produced a confusing lookup failure.
	for _, id := range []string{"Axe", "A", "E", "e3", "A07x", "E-1", "", "all"} {
		_, err := Run(id, testConfig())
		if err == nil {
			t.Fatalf("%q: malformed experiment ID accepted", id)
		}
		if !strings.Contains(err.Error(), "unknown experiment") {
			t.Errorf("%q: error %q does not say \"unknown experiment\"", id, err)
		}
	}
}

func TestParseID(t *testing.T) {
	for _, tc := range []struct {
		id   string
		kind byte
		n    int
		ok   bool
	}{
		{"E1", 'E', 1, true},
		{"E11", 'E', 11, true},
		{"A7", 'A', 7, true},
		{"A0", 0, 0, false},
		{"Axe", 0, 0, false},
		{"A", 0, 0, false},
		{"B3", 0, 0, false},
		{"", 0, 0, false},
	} {
		kind, n, err := ParseID(tc.id)
		if tc.ok != (err == nil) {
			t.Errorf("ParseID(%q): err = %v, want ok = %v", tc.id, err, tc.ok)
			continue
		}
		if tc.ok && (kind != tc.kind || n != tc.n) {
			t.Errorf("ParseID(%q) = (%c, %d), want (%c, %d)", tc.id, kind, n, tc.kind, tc.n)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		mutate func(*Config)
		field  string
	}{
		{func(c *Config) { c.Trials = 0 }, "Trials"},
		{func(c *Config) { c.MaxK = 3 }, "MaxK"}, // E3's slope fit needs two sizes
		{func(c *Config) { c.MaxK = 15 }, "MaxK"},
	} {
		bad := testConfig()
		tc.mutate(&bad)
		_, err := Run("E1", bad)
		if err == nil {
			t.Fatalf("invalid %s accepted", tc.field)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%v is not a *ConfigError", err)
		}
		if ce.Field != tc.field {
			t.Errorf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// smallConfig is the cheapest legal configuration — used where the suite
// runs RunAll repeatedly (determinism, JSON round-trip), including under
// the race detector in scripts/ci.sh.
func smallConfig() Config {
	return Config{Seed: 7, Trials: 2, MaxK: 4}
}

func stripMetrics(tables []*Table) []*Table {
	out := make([]*Table, len(tables))
	for i, tb := range tables {
		cp := *tb
		cp.Metrics = Metrics{}
		out[i] = &cp
	}
	return out
}

// TestRunAllDeterministicAcrossWorkers is the engine's core guarantee: the
// tables a run produces — rows, notes, formatted text — are identical
// whether one worker or many execute the cells. Only Metrics may differ.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	defer engine.SetSharedWorkers(0)
	cfg := smallConfig()

	engine.SetSharedWorkers(1)
	serial, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	engine.SetSharedWorkers(4)
	parallel, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(parallel) {
		t.Fatalf("table count differs: %d vs %d", len(serial), len(parallel))
	}
	s, p := stripMetrics(serial), stripMetrics(parallel)
	for i := range s {
		if !reflect.DeepEqual(s[i], p[i]) {
			t.Errorf("%s: tables differ between 1 and 4 workers", serial[i].ID)
		}
		if got, want := p[i].Format(), s[i].Format(); got != want {
			t.Errorf("%s: formatted text differs between 1 and 4 workers:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s", serial[i].ID, want, got)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := smallConfig()
	tb, err := Run("E1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2020, 7, 15, 12, 0, 0, 0, time.UTC)
	snap := NewSnapshot(cfg, []*Table{tb}, 3*time.Second, at)
	if snap.SchemaVersion != SnapshotSchemaVersion {
		t.Fatalf("schema version %d", snap.SchemaVersion)
	}
	if snap.GeneratedAt != "2020-07-15T12:00:00Z" {
		t.Errorf("GeneratedAt %q not the injected timestamp", snap.GeneratedAt)
	}
	if zero := NewSnapshot(cfg, []*Table{tb}, 0, time.Time{}); zero.GeneratedAt != "" {
		t.Errorf("zero clock should omit GeneratedAt, got %q", zero.GeneratedAt)
	}
	buf, err := snap.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Config != cfg {
		t.Errorf("config round-trip: %+v != %+v", back.Config, cfg)
	}
	if len(back.Experiments) != 1 {
		t.Fatalf("%d experiments after round trip", len(back.Experiments))
	}
	if !reflect.DeepEqual(back.Experiments[0], tb) {
		t.Errorf("table did not survive the round trip:\n%+v\n%+v", back.Experiments[0], tb)
	}
	if got, want := back.Experiments[0].Format(), tb.Format(); got != want {
		t.Errorf("re-formatted table differs:\n%s\n%s", got, want)
	}

	// Version gating: a snapshot from a different schema must be rejected.
	old := strings.Replace(string(buf), "\"schema_version\": 1", "\"schema_version\": 99", 1)
	if _, err := ParseSnapshot([]byte(old)); err == nil {
		t.Error("foreign schema version accepted")
	}
	if _, err := ParseSnapshot([]byte("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestRunFillsMetrics(t *testing.T) {
	tb, err := Run("E3", smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := tb.Metrics
	if m.WallSeconds <= 0 {
		t.Errorf("WallSeconds = %g", m.WallSeconds)
	}
	if m.Workers < 1 {
		t.Errorf("Workers = %d", m.Workers)
	}
	if m.Cells <= 0 {
		t.Errorf("Cells = %d, want > 0 for an engine-backed experiment", m.Cells)
	}
	if m.BusySeconds <= 0 {
		t.Errorf("BusySeconds = %g", m.BusySeconds)
	}
	// Metrics must not leak into the deterministic text formats.
	for _, out := range []string{tb.Format(), tb.FormatTSV()} {
		if strings.Contains(out, "utilisation") || strings.Contains(out, "wall_seconds") {
			t.Errorf("metrics leaked into text output:\n%s", out)
		}
	}
}

func TestAllExperimentsRun(t *testing.T) {
	tables, err := RunAll(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 20 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", tb.ID)
		}
		if len(tb.Header) == 0 {
			t.Errorf("%s has no header", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: row width %d != header width %d", tb.ID, len(row), len(tb.Header))
			}
		}
		out := tb.Format()
		if !strings.Contains(out, tb.ID) || !strings.Contains(out, tb.Header[0]) {
			t.Errorf("%s: Format output missing pieces", tb.ID)
		}
	}
}

func TestE1ExactLogFactor(t *testing.T) {
	tb, err := Run("E1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Column 5 (pot/n^1.5) must equal column 6 (expected k+1).
	for _, row := range tb.Rows {
		got, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		want, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("k=%s: pot ratio %g != expected %g", row[0], got, want)
		}
	}
}

func TestE2DichotomyInNote(t *testing.T) {
	tb, err := Run("E2", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every family's measured class must match the theorem's.
	for _, clause := range strings.Split(tb.Note, " | ") {
		if !strings.Contains(clause, "->") {
			continue
		}
		parts := strings.SplitN(clause, "->", 2)
		tail := parts[1] // " Θ(log n) (theorem: Θ(log n))"
		var measured, expected string
		if i := strings.Index(tail, "(theorem:"); i >= 0 {
			measured = strings.TrimSpace(tail[:i])
			expected = strings.TrimSpace(strings.TrimSuffix(tail[i+len("(theorem:"):], ")"))
		}
		if measured == "" || expected == "" {
			t.Fatalf("unparseable note clause: %q", clause)
		}
		if measured != expected {
			t.Errorf("dichotomy mismatch: %q", clause)
		}
	}
}

func TestE8AlignedGapIsExact(t *testing.T) {
	tb, err := Run("E8", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		aligned, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		full, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if aligned != full {
			t.Errorf("k=%s: aligned gap %g != full gap %g", row[0], aligned, full)
		}
	}
}

func TestE9ScanAlwaysOne(t *testing.T) {
	tb, err := Run("E9", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, row := range tb.Rows {
		if row[4] != "1" {
			t.Errorf("dim=%s: MM-Scan completed %s multiplies, want 1", row[0], row[4])
		}
		inp, err := strconv.Atoi(row[5])
		if err != nil {
			t.Fatal(err)
		}
		if inp < prev {
			t.Errorf("dim=%s: MM-InPlace count %d decreased from %d", row[0], inp, prev)
		}
		prev = inp
	}
}

func TestE10NoViolations(t *testing.T) {
	tb, err := Run("E10", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][1] != "0" {
		t.Errorf("No-Catch-up violations: %s", tb.Rows[0][1])
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tb := &Table{ID: "X", Title: "t", Header: []string{"a", "bbbb"}}
	tb.AddRow("long-cell", 1)
	out := tb.Format()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("format too short: %q", out)
	}
	// Header and row lines must be aligned to the same width per column.
	if len(lines[1]) < len("long-cell") {
		t.Error("separator shorter than widest cell")
	}
}

func TestFormatTSV(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "b"}, Note: "hello"}
	tb.AddRow(1, 2.5)
	out := tb.FormatTSV()
	if !strings.Contains(out, "a\tb\n") || !strings.Contains(out, "1\t2.500\n") {
		t.Errorf("tsv output wrong: %q", out)
	}
	if !strings.Contains(out, "# note: hello") {
		t.Errorf("note missing: %q", out)
	}
}

func TestA3ThresholdSharp(t *testing.T) {
	tb, err := Run("A3", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Gap at the largest size per c: must be < 2.5 for c < 1 and exactly
	// k+1 at c = 1.
	byC := map[string][]float64{}
	var order []string
	for _, row := range tb.Rows {
		c := row[0]
		if _, seen := byC[c]; !seen {
			order = append(order, c)
		}
		g, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		byC[c] = append(byC[c], g)
	}
	for _, c := range order {
		gaps := byC[c]
		last := gaps[len(gaps)-1]
		if c == "1.00" {
			if last < 4 {
				t.Errorf("c=1: top gap %g, want the log gap", last)
			}
		} else if last > 2.5 {
			t.Errorf("c=%s: top gap %g, want < 2.5", c, last)
		}
	}
}

func TestA6SpreadSlopeMatchesPrediction(t *testing.T) {
	cfg := testConfig()
	cfg.MaxK = 6
	tb, err := Run("A6", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tailored-adversary column: consecutive differences must be near
	// a^{1-log_b a} = 0.3536 for (8,4,1).
	var prev float64
	for i, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			d := v - prev
			if d < 0.3 || d > 0.41 {
				t.Errorf("row %d: tailored-gap increment %g, want ~0.354", i, d)
			}
		}
		prev = v
	}
}

func TestA5BoundarySlopesNearWorstCase(t *testing.T) {
	tb, err := Run("A5", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The (2,2,1) iid gaps must grow by roughly 1 per level across the
	// sweep (worst-case-like), unlike E3's flat curves.
	var first, last float64
	var firstK, lastK float64
	count := 0
	for _, row := range tb.Rows {
		if row[0] != "(2,2,1)-regular" {
			continue
		}
		k, err1 := strconv.ParseFloat(row[1], 64)
		g, err2 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if count == 0 {
			first, firstK = g, k
		}
		last, lastK = g, k
		count++
	}
	if count < 3 {
		t.Fatalf("only %d (2,2,1) rows", count)
	}
	slope := (last - first) / (lastK - firstK)
	if slope < 0.6 {
		t.Errorf("a=b iid slope %g, want near-worst-case (>= 0.6)", slope)
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, "E3", smallConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on a dead context returned %v, want context.Canceled", err)
	}
	if _, err := RunAllContext(ctx, smallConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAllContext on a dead context returned %v, want context.Canceled", err)
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	cfg := smallConfig()
	a, err := Run("E1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), "E1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, p := stripMetrics([]*Table{a}), stripMetrics([]*Table{b})
	if !reflect.DeepEqual(s[0], p[0]) {
		t.Error("Run and RunContext disagree for the same (experiment, config)")
	}
}

func TestCacheKey(t *testing.T) {
	cfg := smallConfig()
	k1 := CacheKey("E3", cfg)
	if k2 := CacheKey("E3", cfg); k2 != k1 {
		t.Errorf("CacheKey not deterministic: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("CacheKey length %d, want 64 hex chars", len(k1))
	}
	// Every input the tables depend on must move the key.
	seen := map[string]string{"base": k1}
	for name, k := range map[string]string{
		"id":     CacheKey("E4", cfg),
		"seed":   CacheKey("E3", Config{Seed: cfg.Seed + 1, Trials: cfg.Trials, MaxK: cfg.MaxK}),
		"trials": CacheKey("E3", Config{Seed: cfg.Seed, Trials: cfg.Trials + 1, MaxK: cfg.MaxK}),
		"maxk":   CacheKey("E3", Config{Seed: cfg.Seed, Trials: cfg.Trials, MaxK: cfg.MaxK + 1}),
	} {
		for prev, pk := range seen {
			if k == pk {
				t.Errorf("changing %s collides with %s", name, prev)
			}
		}
		seen[name] = k
	}
	// The context must NOT move the key: it is not part of the result.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if k := CacheKey("E3", cfg.WithContext(ctx)); k != k1 {
		t.Error("attaching a context changed the cache key")
	}
}
