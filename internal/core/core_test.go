package core

import (
	"strconv"
	"strings"
	"testing"
)

// testConfig keeps experiment tests fast; the committed EXPERIMENTS.md
// numbers use DefaultConfig.
func testConfig() Config {
	return Config{Seed: 7, Trials: 4, MaxK: 4}
}

func TestRegistryComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) != 18 {
		t.Fatalf("registered %d experiments, want 18 (E1..E11, A1..A7)", len(exps))
	}
	for i, e := range exps {
		var want string
		if i < 11 {
			want = "E" + strconv.Itoa(i+1)
		} else {
			want = "A" + strconv.Itoa(i-10)
		}
		if e.ID != want {
			t.Errorf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
		if e.Source == "" || e.Summary == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", testConfig()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.Trials = 0
	if _, err := Run("E1", bad); err == nil {
		t.Error("0 trials accepted")
	}
	bad = testConfig()
	bad.MaxK = 2
	if _, err := Run("E1", bad); err == nil {
		t.Error("tiny MaxK accepted")
	}
	bad = testConfig()
	bad.MaxK = 15
	if _, err := Run("E1", bad); err == nil {
		t.Error("huge MaxK accepted")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	tables, err := RunAll(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 18 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", tb.ID)
		}
		if len(tb.Header) == 0 {
			t.Errorf("%s has no header", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: row width %d != header width %d", tb.ID, len(row), len(tb.Header))
			}
		}
		out := tb.Format()
		if !strings.Contains(out, tb.ID) || !strings.Contains(out, tb.Header[0]) {
			t.Errorf("%s: Format output missing pieces", tb.ID)
		}
	}
}

func TestE1ExactLogFactor(t *testing.T) {
	tb, err := Run("E1", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Column 5 (pot/n^1.5) must equal column 6 (expected k+1).
	for _, row := range tb.Rows {
		got, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatal(err)
		}
		want, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("k=%s: pot ratio %g != expected %g", row[0], got, want)
		}
	}
}

func TestE2DichotomyInNote(t *testing.T) {
	tb, err := Run("E2", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every family's measured class must match the theorem's.
	for _, clause := range strings.Split(tb.Note, " | ") {
		if !strings.Contains(clause, "->") {
			continue
		}
		parts := strings.SplitN(clause, "->", 2)
		tail := parts[1] // " Θ(log n) (theorem: Θ(log n))"
		var measured, expected string
		if i := strings.Index(tail, "(theorem:"); i >= 0 {
			measured = strings.TrimSpace(tail[:i])
			expected = strings.TrimSpace(strings.TrimSuffix(tail[i+len("(theorem:"):], ")"))
		}
		if measured == "" || expected == "" {
			t.Fatalf("unparseable note clause: %q", clause)
		}
		if measured != expected {
			t.Errorf("dichotomy mismatch: %q", clause)
		}
	}
}

func TestE8AlignedGapIsExact(t *testing.T) {
	tb, err := Run("E8", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		aligned, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		full, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if aligned != full {
			t.Errorf("k=%s: aligned gap %g != full gap %g", row[0], aligned, full)
		}
	}
}

func TestE9ScanAlwaysOne(t *testing.T) {
	tb, err := Run("E9", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, row := range tb.Rows {
		if row[4] != "1" {
			t.Errorf("dim=%s: MM-Scan completed %s multiplies, want 1", row[0], row[4])
		}
		inp, err := strconv.Atoi(row[5])
		if err != nil {
			t.Fatal(err)
		}
		if inp < prev {
			t.Errorf("dim=%s: MM-InPlace count %d decreased from %d", row[0], inp, prev)
		}
		prev = inp
	}
}

func TestE10NoViolations(t *testing.T) {
	tb, err := Run("E10", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][1] != "0" {
		t.Errorf("No-Catch-up violations: %s", tb.Rows[0][1])
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tb := &Table{ID: "X", Title: "t", Header: []string{"a", "bbbb"}}
	tb.AddRow("long-cell", 1)
	out := tb.Format()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("format too short: %q", out)
	}
	// Header and row lines must be aligned to the same width per column.
	if len(lines[1]) < len("long-cell") {
		t.Error("separator shorter than widest cell")
	}
}

func TestFormatTSV(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "b"}, Note: "hello"}
	tb.AddRow(1, 2.5)
	out := tb.FormatTSV()
	if !strings.Contains(out, "a\tb\n") || !strings.Contains(out, "1\t2.500\n") {
		t.Errorf("tsv output wrong: %q", out)
	}
	if !strings.Contains(out, "# note: hello") {
		t.Errorf("note missing: %q", out)
	}
}

func TestA3ThresholdSharp(t *testing.T) {
	tb, err := Run("A3", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Gap at the largest size per c: must be < 2.5 for c < 1 and exactly
	// k+1 at c = 1.
	byC := map[string][]float64{}
	var order []string
	for _, row := range tb.Rows {
		c := row[0]
		if _, seen := byC[c]; !seen {
			order = append(order, c)
		}
		g, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		byC[c] = append(byC[c], g)
	}
	for _, c := range order {
		gaps := byC[c]
		last := gaps[len(gaps)-1]
		if c == "1.00" {
			if last < 4 {
				t.Errorf("c=1: top gap %g, want the log gap", last)
			}
		} else if last > 2.5 {
			t.Errorf("c=%s: top gap %g, want < 2.5", c, last)
		}
	}
}

func TestA6SpreadSlopeMatchesPrediction(t *testing.T) {
	cfg := testConfig()
	cfg.MaxK = 6
	tb, err := Run("A6", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tailored-adversary column: consecutive differences must be near
	// a^{1-log_b a} = 0.3536 for (8,4,1).
	var prev float64
	for i, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			d := v - prev
			if d < 0.3 || d > 0.41 {
				t.Errorf("row %d: tailored-gap increment %g, want ~0.354", i, d)
			}
		}
		prev = v
	}
}

func TestA5BoundarySlopesNearWorstCase(t *testing.T) {
	tb, err := Run("A5", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The (2,2,1) iid gaps must grow by roughly 1 per level across the
	// sweep (worst-case-like), unlike E3's flat curves.
	var first, last float64
	var firstK, lastK float64
	count := 0
	for _, row := range tb.Rows {
		if row[0] != "(2,2,1)-regular" {
			continue
		}
		k, err1 := strconv.ParseFloat(row[1], 64)
		g, err2 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if count == 0 {
			first, firstK = g, k
		}
		last, lastK = g, k
		count++
	}
	if count < 3 {
		t.Fatalf("only %d (2,2,1) rows", count)
	}
	slope := (last - first) / (lastK - firstK)
	if slope < 0.6 {
		t.Errorf("a=b iid slope %g, want near-worst-case (>= 0.6)", slope)
	}
}
