package core

import (
	"fmt"

	"repro/internal/gep"
	"repro/internal/paging"
	"repro/internal/trace"
)

// A4 replays the paper's MM-Scan vs MM-InPlace contrast on a second real
// algorithm family it names: the Gaussian Elimination Paradigm,
// instantiated as Floyd–Warshall all-pairs shortest paths. The copying
// (not-in-place) GEP is (8,4,1)-regular in blocks; the in-place I-GEP is
// (8,4,0). Both compute identical real shortest paths (tested), and their
// traces replay against the adversarial profile matched to the copying
// variant.

func init() {
	register(Experiment{
		ID:      "A4",
		Source:  "Theorem 2 applied to GEP ([17]'s Gaussian elimination paradigm)",
		Summary: "Floyd–Warshall via GEP: the copying variant starves on its worst-case profile while the in-place variant completes many instances",
		Run:     runA4,
	})
}

func runA4(cfg Config) (*Table, error) {
	const bw = 8
	t := &Table{
		ID:     "A4",
		Title:  "GEP/Floyd–Warshall on the copying variant's worst-case profile (B=8 words/block)",
		Header: []string{"vertices", "profile boxes", "profile IOs", "copying GEP", "in-place GEP"},
	}
	dims := []int{32, 64, 128}
	if cfg.MaxK >= 7 {
		dims = append(dims, 256)
	}
	const reps = 10
	for _, dim := range dims {
		wc, err := gep.WorstCaseProfile(dim, bw)
		if err != nil {
			return nil, err
		}
		boxes := wc.Boxes()
		count := func(tr *trace.Trace) (int, error) {
			f := paging.NewSquareFinisher(boxes)
			trace.ReplayRepeat(tr, f, reps, tr.MaxBlock()+1)
			if err := f.Err(); err != nil {
				return 0, err
			}
			return int(f.Served()) / tr.Len(), nil
		}
		scanTr, err := gep.TraceFWScan(dim, bw)
		if err != nil {
			return nil, err
		}
		inpTr, err := gep.TraceFWInPlace(dim, bw)
		if err != nil {
			return nil, err
		}
		scanCount, err := count(scanTr)
		if err != nil {
			return nil, err
		}
		inpCount, err := count(inpTr)
		if err != nil {
			return nil, err
		}
		inpCell := fmt.Sprintf("%d", inpCount)
		if inpCount >= reps {
			inpCell = fmt.Sprintf(">=%d (workload exhausted)", reps)
		}
		t.AddRow(dim, wc.Len(), wc.Duration(), scanCount, inpCell)
	}
	t.Note = "the MM-Scan story generalises to the paper's other named family: the copying GEP is pinned at 1-2 instances per profile while the in-place I-GEP — whose single-matrix working set is a fraction of the profile's boxes — finishes every instance offered. Same dichotomy, different real algorithm (and the shortest-path outputs of both variants are verified equal in the unit suite)."
	return t, nil
}
