package core

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/paging"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// This file implements the trace/paging-backed experiments: E9 (MM-Scan vs
// MM-InPlace on the worst-case profile), E10 (the No-Catch-up Lemma), and
// E11 (DAM-model sanity: MM-Scan's I/O complexity under fixed LRU).

func init() {
	register(Experiment{
		ID:      "E9",
		Source:  "Section 3 (MM-Scan vs MM-InPlace)",
		Summary: "On MM-Scan's worst-case profile, MM-Scan completes exactly 1 multiply while MM-InPlace completes Ω(log(N/B)) of them",
		Run:     runE9,
	})
	register(Experiment{
		ID:      "E10",
		Source:  "Lemma 2 (No-Catch-up)",
		Summary: "Randomised check: starting a square sequence earlier in a reference trace never finishes later",
		Run:     runE10,
	})
	register(Experiment{
		ID:      "E11",
		Source:  "Section 3 (DAM optimality of MM-Scan)",
		Summary: "Fixed-cache LRU replay of the MM-Scan trace: misses scale as Θ(N^{3/2}/(√M·B))",
		Run:     runE11,
	})
}

func runE9(cfg Config) (*Table, error) {
	const bw = 8
	t := &Table{
		ID:     "E9",
		Title:  "Multiplies completed within MM-Scan's worst-case profile (B=8 words/block)",
		Header: []string{"dim", "N words", "profile boxes", "profile IOs", "MM-Scan", "MM-InPlace"},
	}
	dims := []int{32, 64, 128, 256}
	if cfg.MaxK >= 7 {
		dims = append(dims, 512)
	}
	if cfg.MaxK >= 8 {
		// Only reachable above the seed config: nothing on this path is
		// materialized — traces are re-emitted per repetition and the
		// worst-case profile is streamed — so these rungs cost MBs where a
		// materialized repeat would have needed ~12 GB (dim 1024) to well
		// past a TB (dim 4096). dim 4096's profile alone would be ~1.4e8
		// boxes materialized; the odometer stream keeps it O(log dim).
		dims = append(dims, 1024)
	}
	if cfg.MaxK >= 9 {
		dims = append(dims, 2048)
	}
	if cfg.MaxK >= 10 {
		dims = append(dims, 4096)
	}
	var lastScan, lastInp int
	firstInp := 0
	for i, dim := range dims {
		boxSrc, nBoxes, duration, err := matrix.WorstCaseBoxStream(dim, bw)
		if err != nil {
			return nil, err
		}
		// Enough repetitions to comfortably exceed the profile's capacity for
		// both algorithms at every size. The repetitions are streamed into
		// the square finisher with fresh address ranges per rep (the
		// RepeatTraceFresh semantics), never materialized; with idle engine
		// workers the replay runs as square-partitioned shards, with output
		// identical to the serial replay by construction.
		reps := 12
		if dim >= 1024 {
			reps = 16
		}
		count := func(emit func(trace.Sink) error) (int, error) {
			c := &trace.CountingSink{}
			if err := emit(c); err != nil {
				return 0, err
			}
			served, err := paging.ServedEmitRepeatParallel(emit, c.Refs, c.MaxBlock,
				boxSrc, nBoxes, reps, c.MaxBlock+1, paging.DefaultShards())
			if err != nil {
				return 0, err
			}
			return int(served / c.Refs), nil
		}
		scanCount, err := count(func(s trace.Sink) error { return matrix.EmitMulScan(dim, bw, s) })
		if err != nil {
			return nil, err
		}
		inpCount, err := count(func(s trace.Sink) error { return matrix.EmitMulInPlace(dim, bw, s) })
		if err != nil {
			return nil, err
		}
		t.AddRow(dim, dim*dim, nBoxes, duration, scanCount, inpCount)
		lastScan, lastInp = scanCount, inpCount
		if i == 0 {
			firstInp = inpCount
		}
	}
	t.Note = fmt.Sprintf("MM-Scan stays at %d multiply per profile; MM-InPlace grows from %d to %d — one extra multiply per doubling of dim, the Ω(log(N/B)) shape.", lastScan, firstInp, lastInp)
	return t, nil
}

func runE10(cfg Config) (*Table, error) {
	rng := xrand.New(cfg.Seed ^ 0x10)
	trials := cfg.Trials * 100
	// Derive every trial's inputs serially — the RNG call order is part of
	// the determinism contract — then evaluate the trials on the engine
	// pool. Each start-pair replay halts at the finisher's served boundary
	// (the Stopper early stop), so a trial costs O(references served), not
	// O(trace suffix).
	type e10Trial struct {
		tr        *trace.Trace
		boxes     []int64
		i, iPrime int
	}
	ts := make([]e10Trial, trials)
	for trial := range ts {
		refs := 20 + rng.Intn(1500)
		b := &trace.Builder{}
		for i := 0; i < refs; i++ {
			b.Access(rng.Int63n(48))
		}
		tr := b.Build()
		nBoxes := 1 + rng.Intn(8)
		boxes := make([]int64, nBoxes)
		for i := range boxes {
			boxes[i] = 1 + rng.Int63n(24)
		}
		i := rng.Intn(refs)
		iPrime := rng.Intn(i + 1)
		ts[trial] = e10Trial{tr: tr, boxes: boxes, i: i, iPrime: iPrime}
	}
	violated := make([]bool, trials)
	g := engine.NewGroup()
	if err := g.Map(trials, func(trial, _ int) error {
		tl := ts[trial]
		endLate, err := paging.SquareRunFrom(tl.tr, tl.i, tl.boxes)
		if err != nil {
			return err
		}
		endEarly, err := paging.SquareRunFrom(tl.tr, tl.iPrime, tl.boxes)
		if err != nil {
			return err
		}
		violated[trial] = endEarly > endLate
		return nil
	}); err != nil {
		return nil, err
	}
	violations := 0
	for _, v := range violated {
		if v {
			violations++
		}
	}
	t := &Table{
		ID:     "E10",
		Title:  "No-Catch-up Lemma: delayed starts never finish earlier",
		Header: []string{"randomised trials", "violations"},
	}
	t.AddRow(trials, violations)
	if violations > 0 {
		t.Note = "VIOLATIONS FOUND — the square-cache semantics break Lemma 2!"
	} else {
		t.Note = "no counterexample: for every sampled trace, square sequence, and start pair i' <= i, the earlier start finished no later."
	}
	return t, nil
}

func runE11(cfg Config) (*Table, error) {
	const bw = 8
	dim := 128
	tr, err := matrix.TraceMulScan(dim, bw)
	if err != nil {
		return nil, err
	}
	nWords := float64(dim * dim)
	t := &Table{
		ID:     "E11",
		Title:  "DAM sanity: MM-Scan trace under fixed-capacity LRU (dim 128, B=8)",
		Header: []string{"M (blocks)", "LRU misses", "OPT misses", "LRU/OPT", "misses·√(M·B)·B/N^1.5"},
	}
	var logM, logMiss []float64
	for _, m := range []int64{16, 32, 64, 128, 256, 512, 1024} {
		lru, err := paging.RunLRUFixed(tr, m)
		if err != nil {
			return nil, err
		}
		opt, err := paging.RunOPTFixed(tr, m)
		if err != nil {
			return nil, err
		}
		mWords := float64(m * bw)
		konst := float64(lru) * math.Sqrt(mWords) * bw / math.Pow(nWords, 1.5)
		t.AddRow(m, lru, opt, float64(lru)/float64(opt), konst)
		// Below the tall-cache threshold the cache cannot even hold a base
		// case's working set and every access misses; only the scaling
		// regime enters the exponent fit.
		if lru < int64(tr.Len()) {
			logM = append(logM, math.Log2(float64(m)))
			logMiss = append(logMiss, math.Log2(float64(lru)))
		}
	}
	fit, err := stats.LinearFit(logM, logMiss)
	if err != nil {
		return nil, err
	}
	t.Note = fmt.Sprintf("log-log slope of misses vs M = %.3f over the tall-cache regime (theory: -0.5, i.e. misses = Θ(N^1.5/(√M·B))); thrash-capped rows (misses = trace length) are excluded from the fit.", fit.Beta)
	return t, nil
}
