package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// TestSeedTablesGolden regenerates every registered experiment table at the
// seed configuration (the one EXPERIMENTS.md and BENCH_baseline.json were
// produced with) and compares the concatenated TSV renderings against a
// committed golden file. This is the determinism contract made executable:
// any refactor of the trace pipeline, the paging kernels, or the engine
// must leave these bytes untouched. Regenerate intentionally with
//
//	go test ./internal/core/ -run TestSeedTablesGolden -update
func TestSeedTablesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full seed-config run; skipped under -short")
	}
	tables, err := RunAll(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tbl := range tables {
		sb.WriteString(tbl.FormatTSV())
		sb.WriteByte('\n')
	}
	got := sb.String()

	golden := filepath.Join("testdata", "seed_tables.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		// Locate the first diverging table for a readable failure.
		gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("seed-config tables drifted at line %d:\n got: %s\nwant: %s", i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("seed-config tables drifted in length: got %d lines, want %d", len(gotLines), len(wantLines))
	}
}
