package core

import (
	"encoding/json"
	"fmt"
	"time"
)

// SnapshotSchemaVersion identifies the JSON layout emitted by cadaptive
// -format json. Bump it on any breaking change to Snapshot, Table, or
// Metrics field names so committed BENCH_*.json files stay interpretable.
const SnapshotSchemaVersion = 1

// Snapshot is the versioned, machine-readable result of a run — the format
// committed as BENCH_*.json to track the perf trajectory. Rows are carried
// as the same formatted strings the text output prints, so a snapshot
// round-trips losslessly: unmarshalling and re-formatting reproduces the
// byte-identical tables.
type Snapshot struct {
	SchemaVersion int    `json:"schema_version"`
	GeneratedAt   string `json:"generated_at,omitempty"` // RFC 3339; empty in deterministic comparisons
	Config        Config `json:"config"`
	// TotalWallSeconds is the wall time of the whole run, which on a
	// multicore box is less than the sum of per-experiment wall times.
	TotalWallSeconds float64  `json:"total_wall_seconds"`
	Experiments      []*Table `json:"experiments"`
}

// NewSnapshot assembles a snapshot from a run's tables. The timestamp is
// injected by the caller rather than read here — this package produces the
// bodies that golden files and the service's content-addressed cache
// compare byte-for-byte, so it must never touch the wall clock itself. A
// zero generatedAt omits the field entirely (deterministic snapshots).
func NewSnapshot(cfg Config, tables []*Table, totalWall time.Duration, generatedAt time.Time) *Snapshot {
	gen := ""
	if !generatedAt.IsZero() {
		gen = generatedAt.UTC().Format(time.RFC3339)
	}
	return &Snapshot{
		SchemaVersion:    SnapshotSchemaVersion,
		GeneratedAt:      gen,
		Config:           cfg,
		TotalWallSeconds: totalWall.Seconds(),
		Experiments:      tables,
	}
}

// MarshalIndentJSON renders the snapshot as indented JSON with a trailing
// newline, ready to write to a BENCH_*.json file or stdout.
func (s *Snapshot) MarshalIndentJSON() ([]byte, error) {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// ParseSnapshot unmarshals and version-checks a snapshot.
func ParseSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("core: invalid snapshot: %w", err)
	}
	if s.SchemaVersion != SnapshotSchemaVersion {
		return nil, fmt.Errorf("core: snapshot schema version %d, this build reads %d",
			s.SchemaVersion, SnapshotSchemaVersion)
	}
	return &s, nil
}
