package core

import (
	"fmt"

	"repro/internal/adaptivity"
	"repro/internal/paging"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/smoothing"
	"repro/internal/sorting"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// A5 probes the boundary the paper explicitly leaves open ("We leave the
// case of a = b for future work"): does i.i.d. smoothing close the gap for
// a = b, c = 1 algorithms (two-way merge sort, classic FFT)?
//
// The measured answer is no — and that is consistent with the theory: the
// paper's proof needs |a − b| >= Ω(1), and footnote 3 observes that a = b,
// c = 1 algorithms are already Θ(log(M/B)) from optimal in the DAM model,
// so no memory-profile distribution can rescue them.

func init() {
	register(Experiment{
		ID:      "A5",
		Source:  "Footnote 3 + the a = b future-work case",
		Summary: "i.i.d. smoothing does NOT close the gap at the a = b boundary (merge-sort-shaped algorithms)",
		Run:     runA5,
	})
}

func runA5(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "A5",
		Title:  "The a = b boundary: i.i.d. smoothing vs the worst case",
		Header: []string{"family", "k", "n", "iid mean gap", "ci95", "worst-case gap"},
	}
	dist, err := xrand.NewUniform(4, 64)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed ^ 0xa5)
	var notes []string
	for _, spec := range []regular.Spec{regular.MustSpec(2, 2, 1), regular.MustSpec(4, 4, 1)} {
		// Comparable sizes across b: sweep k so n spans a few orders.
		var ks, means []float64
		maxK := cfg.MaxK
		if maxK < 8 {
			maxK = 8 // at least three sweep points regardless of MaxK
		}
		if spec.B == 2 {
			maxK *= 2 // match the 4^k sizes in magnitude
		}
		for k := 4; k <= maxK; k += 2 {
			n := profile.Pow(spec.B, k)
			gaps, err := adaptivity.GapOnDist(spec, n, dist, rng.Uint64(), cfg.Trials)
			if err != nil {
				return nil, err
			}
			s := stats.Summarize(gaps)
			t.AddRow(spec.String(), k, n, s.Mean, s.CI95(), fmt.Sprintf("%d", k+1))
			ks = append(ks, float64(k))
			means = append(means, s.Mean)
		}
		fit, err := stats.LinearFit(ks, means)
		if err != nil {
			return nil, err
		}
		notes = append(notes, fmt.Sprintf("%v: iid slope %+.3f/level (worst case +1.0)", spec, fit.Beta))
	}

	// The real algorithm at this boundary: two-way merge sort. Count sorts
	// completed within its matched worst-case profile, ordered vs shuffled.
	const bw = 4
	for _, n := range []int{1 << 10, 1 << 12} {
		wc, err := sorting.WorstCaseProfile(n, bw)
		if err != nil {
			return nil, err
		}
		tr, err := sorting.TraceMergeSort(n, bw)
		if err != nil {
			return nil, err
		}
		const reps = 8
		// Stream the fresh-address repetitions straight into the square
		// finisher for each profile — the repeated trace is never built.
		countSorts := func(boxes []int64) (int, error) {
			f := paging.NewSquareFinisher(boxes)
			trace.ReplayRepeat(tr, f, reps, tr.MaxBlock()+1)
			if err := f.Err(); err != nil {
				return 0, err
			}
			return int(f.Served()), nil
		}
		endOrdered, err := countSorts(wc.Boxes())
		if err != nil {
			return nil, err
		}
		sh := smoothing.Shuffle(wc, rng)
		endShuffled, err := countSorts(sh.Boxes())
		if err != nil {
			return nil, err
		}
		t.AddRow("real merge sort (trace)", "-", n,
			fmt.Sprintf("shuffled profile: %d sorts", endShuffled/tr.Len()),
			"-",
			fmt.Sprintf("ordered profile: %d sorts", endOrdered/tr.Len()))
	}

	t.Note = joinNotes(notes) + " — unlike the a > b case (E3), shuffling the boxes barely moves the a = b gap: smoothing cannot rescue merge-sort-shaped algorithms, matching footnote 3's DAM-level obstruction."
	return t, nil
}
