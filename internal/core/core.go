// Package core is the public face of the reproduction: it wires the
// substrates (profiles, the symbolic executor, the paging/trace backend,
// smoothing operators, real algorithms) into the eleven named experiments
// E1–E11 that regenerate the paper's figure and theorem-level claims, and
// formats their results as tables.
//
// Every experiment is deterministic in (Config.Seed, Config.Trials,
// Config.MaxK); EXPERIMENTS.md records the expected shapes.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Config parameterises an experiment run.
type Config struct {
	// Seed drives all randomness; same seed, same tables.
	Seed uint64
	// Trials is the Monte-Carlo repetition count where sampling is needed.
	Trials int
	// MaxK is the largest problem-size exponent: problems run up to
	// n = b^MaxK (4^MaxK for the matrix-shaped experiments).
	MaxK int
}

// DefaultConfig returns the configuration the committed EXPERIMENTS.md
// numbers were produced with.
func DefaultConfig() Config {
	return Config{Seed: 20200715, Trials: 20, MaxK: 7}
}

func (c Config) validate() error {
	if c.Trials < 1 {
		return fmt.Errorf("core: trials %d < 1", c.Trials)
	}
	if c.MaxK < 3 {
		return fmt.Errorf("core: maxK %d < 3 (experiments need at least a few sizes)", c.MaxK)
	}
	if c.MaxK > 9 {
		return fmt.Errorf("core: maxK %d > 9 (worst-case profiles above 4^9 do not fit in memory)", c.MaxK)
	}
	return nil
}

// Table is a formatted experiment result.
type Table struct {
	ID     string
	Title  string
	Note   string // provenance, fitted slopes, pass/fail summary
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells (converted with %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Note)
	}
	return sb.String()
}

// FormatTSV renders the table as tab-separated values (header row first,
// note as a trailing #-comment) for downstream plotting.
func (t *Table) FormatTSV() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s — %s\n", t.ID, t.Title)
	sb.WriteString(strings.Join(t.Header, "\t"))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, "\t"))
		sb.WriteByte('\n')
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "# note: %s\n", t.Note)
	}
	return sb.String()
}

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID      string
	Source  string // the paper element it reproduces
	Summary string
	Run     func(Config) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("core: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Experiments lists the registered experiments in ID order.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware: E2 before E10.
		return experimentOrder(out[i].ID) < experimentOrder(out[j].ID)
	})
	return out
}

func experimentOrder(id string) int {
	var n int
	if strings.HasPrefix(id, "A") {
		fmt.Sscanf(id, "A%d", &n)
		return 100 + n // ablations sort after the paper experiments
	}
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e, ok := registry[id]
	if !ok {
		ids := make([]string, 0, len(registry))
		for _, ex := range Experiments() {
			ids = append(ids, ex.ID)
		}
		return nil, fmt.Errorf("core: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
	}
	return e.Run(cfg)
}

// RunAll executes every experiment in order.
func RunAll(cfg Config) ([]*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var out []*Table
	for _, e := range Experiments() {
		t, err := e.Run(cfg)
		if err != nil {
			return out, fmt.Errorf("core: %s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}
