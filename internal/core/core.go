// Package core is the public face of the reproduction: it wires the
// substrates (profiles, the symbolic executor, the paging/trace backend,
// smoothing operators, real algorithms) into the eleven named experiments
// E1–E11 that regenerate the paper's figure and theorem-level claims, and
// formats their results as tables.
//
// Every experiment is deterministic in (Config.Seed, Config.Trials,
// Config.MaxK); EXPERIMENTS.md records the expected shapes. Experiments
// execute on the shared parallel engine (internal/engine): a full run fans
// out across experiments, and the Monte-Carlo experiments fan out further
// across (size, trial) cells with xrand.Split-derived per-cell seeds, so
// the formatted text output is byte-identical for any worker count.
package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/engine"
)

// Config parameterises an experiment run.
type Config struct {
	// Seed drives all randomness; same seed, same tables.
	Seed uint64 `json:"seed"`
	// Trials is the Monte-Carlo repetition count where sampling is needed.
	Trials int `json:"trials"`
	// MaxK is the largest problem-size exponent: problems run up to
	// n = b^MaxK (4^MaxK for the matrix-shaped experiments).
	MaxK int `json:"max_k"`

	// ctx, when set, cancels the run: engine fan-outs stop claiming cells
	// once it expires. It is carried inside Config (like http.Request's
	// context) because experiment Run functions take only a Config; it is
	// never serialised and does not participate in the result — two runs
	// with equal exported fields produce identical tables.
	ctx context.Context
}

// WithContext returns a copy of c carrying ctx. The cadaptived service uses
// it to thread request deadlines into experiment fan-outs.
func (c Config) WithContext(ctx context.Context) Config {
	c.ctx = ctx
	return c
}

// Context returns the run's context (never nil).
func (c Config) Context() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// DefaultConfig returns the configuration the committed EXPERIMENTS.md
// numbers were produced with.
func DefaultConfig() Config {
	return Config{Seed: 20200715, Trials: 20, MaxK: 7}
}

// ConfigError reports an invalid Config field by name, so callers (the
// cadaptive CLI in particular) can point at the flag that caused it.
type ConfigError struct {
	Field string // "Trials" or "MaxK"
	Msg   string
}

func (e *ConfigError) Error() string { return "core: " + e.Msg }

// Validate checks the configuration, returning a *ConfigError naming the
// offending field when it is invalid.
func (c Config) Validate() error {
	if c.Trials < 1 {
		return &ConfigError{Field: "Trials", Msg: fmt.Sprintf("trials %d < 1", c.Trials)}
	}
	if c.MaxK < 4 {
		// The slope-fit experiments sweep k = 3..MaxK and need >= 2 sizes.
		return &ConfigError{Field: "MaxK", Msg: fmt.Sprintf("maxK %d < 4 (experiments fit slopes over k = 3..maxK and need at least two sizes)", c.MaxK)}
	}
	if c.MaxK > 10 {
		// The streamed experiments (E9 and friends) pull their profiles from
		// limit streams and scale to 4^10; everything that materializes a
		// worst-case profile clamps itself to k <= 9 via clampMaterializedK.
		return &ConfigError{Field: "MaxK", Msg: fmt.Sprintf("maxK %d > 10 (only the streamed experiments scale past 4^9, and nothing is gated above 4^10)", c.MaxK)}
	}
	return nil
}

// clampMaterializedK caps MaxK for experiments that materialize worst-case
// profiles or traces: above k = 9 those structures do not fit in memory, so
// such runners take the k <= 9 prefix of the sweep instead of failing. The
// streamed experiments (which pull boxes from limit streams) ignore this and
// honour MaxK up to the Validate cap of 10.
func clampMaterializedK(cfg Config) Config {
	if cfg.MaxK > 9 {
		cfg.MaxK = 9
	}
	return cfg
}

// Metrics records how an experiment executed on the engine. It is
// deliberately excluded from Format and FormatTSV so that text output
// stays byte-identical across worker counts; the JSON snapshot carries it.
type Metrics struct {
	// WallSeconds is the experiment's wall-clock time.
	WallSeconds float64 `json:"wall_seconds"`
	// Cells is the number of engine cells the experiment executed (0 for
	// experiments that run entirely serially).
	Cells int64 `json:"cells"`
	// BusySeconds is cell execution time summed across workers.
	BusySeconds float64 `json:"busy_seconds"`
	// Workers is the engine's concurrency bound during the run.
	Workers int `json:"workers"`
	// Utilisation is BusySeconds / (WallSeconds × Workers) — the fraction
	// of the worker-seconds the run had available that its cells actually
	// used. Serial sections and scheduling overhead lower it.
	Utilisation float64 `json:"utilisation"`
}

// Table is a formatted experiment result.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Note   string     `json:"note,omitempty"` // provenance, fitted slopes, pass/fail summary
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Metrics is filled by Run/RunAll and the engine-backed runners; it is
	// not part of the formatted text.
	Metrics Metrics `json:"metrics"`
}

// AddRow appends a row of cells (converted with %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Note)
	}
	return sb.String()
}

// FormatTSV renders the table as tab-separated values (header row first,
// note as a trailing #-comment) for downstream plotting.
func (t *Table) FormatTSV() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s — %s\n", t.ID, t.Title)
	sb.WriteString(strings.Join(t.Header, "\t"))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, "\t"))
		sb.WriteByte('\n')
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "# note: %s\n", t.Note)
	}
	return sb.String()
}

// ErrUnknownExperiment marks run requests whose ID is malformed or not
// registered; callers (the HTTP service) match it with errors.Is to choose
// a 404 over a 400.
var ErrUnknownExperiment = errors.New("unknown experiment")

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID      string
	Source  string // the paper element it reproduces
	Summary string
	Run     func(Config) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, _, err := ParseID(e.ID); err != nil {
		panic("core: invalid experiment ID " + e.ID)
	}
	if _, dup := registry[e.ID]; dup {
		panic("core: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// ParseID parses an experiment ID of the form E<n> (paper experiments) or
// A<n> (ablations), n >= 1. Malformed IDs — "Axe", a bare "A", "E07x" —
// are rejected rather than silently parsed as 0, leading zeros ("A07") are
// rejected rather than aliased onto "A7", and over-long digit strings are
// rejected before they can overflow n. Accepted IDs round-trip exactly:
// fmt.Sprintf("%c%d", kind, n) == id.
func ParseID(id string) (kind byte, n int, err error) {
	if len(id) < 2 || (id[0] != 'E' && id[0] != 'A') {
		return 0, 0, fmt.Errorf("core: malformed experiment ID %q (want E<n> or A<n>)", id)
	}
	if id[1] == '0' {
		return 0, 0, fmt.Errorf("core: malformed experiment ID %q (no leading zeros)", id)
	}
	if len(id) > 7 {
		// 6 digits is far beyond any registered experiment and keeps the
		// accumulator a safe distance from overflow on 32-bit ints.
		return 0, 0, fmt.Errorf("core: malformed experiment ID %q (too long)", id)
	}
	for i := 1; i < len(id); i++ {
		if id[i] < '0' || id[i] > '9' {
			return 0, 0, fmt.Errorf("core: malformed experiment ID %q (want E<n> or A<n>)", id)
		}
		n = n*10 + int(id[i]-'0')
	}
	if n < 1 {
		return 0, 0, fmt.Errorf("core: malformed experiment ID %q (numbering starts at 1)", id)
	}
	return id[0], n, nil
}

// Lookup returns the registered experiment with the given ID, reporting
// whether it exists. It is the cheap existence check front-ends use to
// reject unknown IDs before committing resources to a run.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Experiments lists the registered experiments in ID order.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e) //lint:ignore maporder out is sorted by ID immediately below
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware: E2 before E10.
		return experimentOrder(out[i].ID) < experimentOrder(out[j].ID)
	})
	return out
}

func experimentOrder(id string) int {
	kind, n, err := ParseID(id)
	if err != nil {
		// register() guarantees registry IDs parse; any malformed ID sorts
		// last so it is at least visible.
		return 1 << 20
	}
	if kind == 'A' {
		return 100 + n // ablations sort after the paper experiments
	}
	return n
}

// knownIDs returns every registered ID in display order, for error texts.
func knownIDs() string {
	ids := make([]string, 0, len(registry))
	for _, ex := range Experiments() {
		ids = append(ids, ex.ID)
	}
	return strings.Join(ids, ", ")
}

// Run executes the experiment with the given ID and records its Metrics
// (wall time, engine cells, utilisation) on the returned table.
func Run(id string, cfg Config) (*Table, error) {
	return RunContext(context.Background(), id, cfg)
}

// RunContext is the run-by-ID entry point shared by the cadaptive CLI and
// the cadaptived service — both go through it, so their results cannot
// drift. ctx cancellation propagates into the experiment's engine fan-outs:
// in-flight cells finish, queued cells never start, and the error is
// ctx.Err().
func RunContext(ctx context.Context, id string, cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, _, err := ParseID(id); err != nil {
		return nil, fmt.Errorf("core: %w %q: %v (have %s)", ErrUnknownExperiment, id, err, knownIDs())
	}
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("core: %w %q (have %s)", ErrUnknownExperiment, id, knownIDs())
	}
	return runTimed(e, cfg.WithContext(ctx))
}

// CacheKey returns the content address of a run's result: a hex SHA-256
// over the snapshot schema version, the experiment ID, and every Config
// field the tables depend on (seed, trials, maxK) — nothing else, because
// experiments are deterministic pure functions of exactly those inputs
// (worker count and scheduling only move wall time). Equal keys therefore
// mean byte-identical tables, which is what makes result caching sound;
// the schema version is mixed in so cached bytes from an older JSON layout
// can never be served by a newer build.
func CacheKey(id string, cfg Config) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("cadaptive/v%d|%s|seed=%d|trials=%d|maxk=%d",
		SnapshotSchemaVersion, id, cfg.Seed, cfg.Trials, cfg.MaxK)))
	return hex.EncodeToString(h[:])
}

// runTimed executes one experiment and fills in its metrics. Each
// experiment accounts against its own engine group (set up by the runner),
// so per-experiment cell counts stay meaningful even when RunAll executes
// many experiments concurrently on the shared pool.
func runTimed(e Experiment, cfg Config) (*Table, error) {
	if err := cfg.Context().Err(); err != nil {
		return nil, err // dead on arrival: don't start the run at all
	}
	workers := engine.Shared().Workers()
	start := time.Now() //lint:ignore notime engine metrics timing, excluded from formatted tables and normalized out of goldens
	t, err := e.Run(cfg)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds() //lint:ignore notime engine metrics timing, excluded from formatted tables and normalized out of goldens
	t.Metrics.WallSeconds = wall
	t.Metrics.Workers = workers
	if wall > 0 {
		t.Metrics.Utilisation = t.Metrics.BusySeconds / (wall * float64(workers))
	}
	return t, nil
}

// RunAll executes every experiment, fanning out across experiments on the
// shared engine pool. Tables come back in ID order regardless of which
// experiment finished first, and their contents are byte-identical to a
// serial run; only the Metrics differ with the worker count.
func RunAll(cfg Config) ([]*Table, error) {
	return RunAllContext(context.Background(), cfg)
}

// RunAllContext is RunAll with cancellation threaded into the fan-out
// across experiments (and from there into each experiment's own cells).
func RunAllContext(ctx context.Context, cfg Config) ([]*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.WithContext(ctx)
	exps := Experiments()
	out := make([]*Table, len(exps))
	g := engine.NewGroup().WithContext(ctx)
	err := g.Map(len(exps), func(i, _ int) error {
		t, err := runTimed(exps[i], cfg)
		if err != nil {
			return fmt.Errorf("core: %s: %w", exps[i].ID, err)
		}
		out[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
