package core

import (
	"fmt"
	"math"

	"repro/internal/adaptivity"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/stats"
)

// This file implements E1 (Figure 1: the worst-case profile) and E2
// (Theorem 2: the adaptivity dichotomy by (a,b,c)).

func init() {
	register(Experiment{
		ID:      "E1",
		Source:  "Figure 1 / Section 3",
		Summary: "Construct the recursive worst-case profile M_{8,4}(n) for MM-Scan and verify its potential is Θ(n^{3/2}·log n)",
		Run:     runE1,
	})
	register(Experiment{
		ID:      "E2",
		Source:  "Theorem 2",
		Summary: "Adaptivity dichotomy: (8,4,1) suffers a Θ(log n) gap on its worst-case profile; a<b or c<1 stay O(1)",
		Run:     runE2,
	})
}

func runE1(cfg Config) (*Table, error) {
	cfg = clampMaterializedK(cfg)
	t := &Table{
		ID:     "E1",
		Title:  "Worst-case profile M_{8,4}(n): the Figure-1 construction",
		Header: []string{"k", "n=4^k", "boxes", "duration(IOs)", "potential", "pot/n^1.5", "expected"},
	}
	e := regular.MMScanSpec.Exponent()
	for k := 1; k <= cfg.MaxK; k++ {
		n := profile.Pow(4, k)
		wc, err := profile.WorstCase(8, 4, n)
		if err != nil {
			return nil, err
		}
		pot := wc.Potential(e)
		analytic, err := profile.WorstCasePotential(8, 4, n)
		if err != nil {
			return nil, err
		}
		if math.Abs(pot-analytic) > 1e-6*analytic {
			return nil, fmt.Errorf("E1: materialised potential %g != analytic %g at n=%d", pot, analytic, n)
		}
		t.AddRow(k, n, wc.Len(), wc.Duration(), pot, pot/math.Pow(float64(n), e), fmt.Sprintf("%d", k+1))
	}
	t.Note = "pot/n^1.5 = log_4(n)+1 exactly: the profile carries a full log-factor of excess potential that MM-Scan cannot convert into progress."
	return t, nil
}

// e2Case is one algorithm family of Theorem 2's dichotomy.
type e2Case struct {
	label    string
	spec     regular.Spec
	profA    int64 // worst-case profile constants (the MM-Scan adversary)
	profB    int64
	useTrace bool // c < 1 needs the ground-truth trace backend
}

func runE2(cfg Config) (*Table, error) {
	cfg = clampMaterializedK(cfg)
	cases := []e2Case{
		{"(8,4,1) MM-Scan", regular.MMScanSpec, 8, 4, false},
		{"(7,4,1) Strassen-shaped", regular.StrassenSpec, 7, 4, false},
		{"(4,2,1) LCS/DP", regular.LCSSpec, 4, 2, false},
		{"(2,4,1) a<b", regular.MustSpec(2, 4, 1), 2, 4, false},
		{"(8,4,0) MM-InPlace", regular.MMInPlaceSpec, 8, 4, true},
		{"(4,4,1) a=b (boundary)", regular.MustSpec(4, 4, 1), 4, 4, false},
	}
	t := &Table{
		ID:     "E2",
		Title:  "Theorem 2: gap on the worst-case profile, by algorithm family",
		Header: []string{"family", "k", "n", "potential gap", "op gap"},
	}
	var notes []string
	for _, c := range cases {
		maxK := cfg.MaxK
		if c.useTrace && maxK > 7 {
			maxK = 7 // trace backend materialises T(n) references
		}
		// For a < b the paper's footnote applies the operation-based
		// efficiency reading (the algorithm runs in linear time, so every
		// box's I/O-time is fully used); the base-case potential reading
		// is the criterion for a >= b.
		opBased := c.spec.A < c.spec.B
		var ks, gaps []float64
		for k := 2; k <= maxK; k++ {
			n := profile.Pow(c.profB, k)
			wc, err := profile.WorstCase(c.profA, c.profB, n)
			if err != nil {
				return nil, err
			}
			var res adaptivity.RunResult
			if c.useTrace {
				src, err := profile.NewSliceSource(wc)
				if err != nil {
					return nil, err
				}
				res, err = adaptivity.MeasureTrace(c.spec, n, src, 0)
				if err != nil {
					return nil, err
				}
			} else {
				var err error
				res, err = adaptivity.GapOnProfile(c.spec, n, wc)
				if err != nil {
					return nil, err
				}
			}
			ks = append(ks, float64(k))
			if opBased {
				gaps = append(gaps, res.OpGap())
			} else {
				gaps = append(gaps, res.Gap())
			}
			t.AddRow(c.label, k, n, res.Gap(), res.OpGap())
		}
		growth, fit, err := stats.ClassifyGrowth(ks, gaps, 0.15)
		if err != nil {
			return nil, err
		}
		// Expected class per Theorem 2.
		expect := "Θ(log n)"
		if c.spec.Adaptive() {
			expect = "O(1)"
		}
		metric := "potential"
		if opBased {
			metric = "op (footnote-4 reading for a<b)"
		}
		notes = append(notes, fmt.Sprintf("%s [%s]: slope %.3f/level -> %s (theorem: %s)", c.label, metric, fit.Beta, growth, expect))
	}
	t.Note = joinNotes(notes)
	return t, nil
}

func joinNotes(notes []string) string {
	out := ""
	for i, n := range notes {
		if i > 0 {
			out += " | "
		}
		out += n
	}
	return out
}
