package core

import (
	"fmt"
	"math"

	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/stats"
)

// A6 probes the scan-hiding direction of Lincoln et al. [40], which the
// paper positions as the pre-existing (but complex and overhead-laden)
// alternative to smoothing: restructuring the algorithm so scans hide
// inside the recursion. Its first step — splitting every scan into a equal
// pieces, one after each child (Definition 2 allows it) — is executable
// here via the spread-scan executor mode.
//
// The quantitative prediction: against the adversary *tailored to the
// spread layout* (one box per scan piece), each level wastes a·(m/a)^e
// instead of m^e potential, shrinking the log-gap's slope by the factor
// a^{e-1} (≈2.83 for (8,4,1)) but not eliminating it; full scan-hiding has
// to recurse the idea all the way down.

func init() {
	register(Experiment{
		ID:      "A6",
		Source:  "Related work: scan-hiding (Lincoln et al. [40])",
		Summary: "One level of scan-spreading shrinks the worst-case gap's slope by a^{log_b a - 1} but leaves it logarithmic",
		Run:     runA6,
	})
}

// spreadAdversary builds the worst-case profile tailored to the spread-scan
// layout: recursively, each of the a child profiles is followed by a box
// exactly the size of that slot's scan piece (matching the executor's
// segment arithmetic; zero-length pieces get no box).
func spreadAdversary(spec regular.Spec, n int64) (*profile.SquareProfile, error) {
	var boxes []int64
	var build func(m int64)
	build = func(m int64) {
		if m == 1 {
			boxes = append(boxes, 1)
			return
		}
		total := spec.ScanLen(m)
		part := total / spec.A
		for i := int64(1); i <= spec.A; i++ {
			build(m / spec.B)
			seg := part
			if i == spec.A {
				seg += total % spec.A
			}
			if seg > 0 {
				boxes = append(boxes, seg)
			}
		}
	}
	build(n)
	return profile.New(boxes)
}

func runA6(cfg Config) (*Table, error) {
	cfg = clampMaterializedK(cfg)
	spec := regular.MMScanSpec
	t := &Table{
		ID:     "A6",
		Title:  "Scan-spreading (one level of scan-hiding) vs the adversary",
		Header: []string{"k", "n", "canonical alg on M_{8,4}", "spread alg on M_{8,4}", "spread alg on tailored adversary"},
	}
	var ks, tailored []float64
	maxK := cfg.MaxK
	for k := 3; k <= maxK; k++ {
		n := profile.Pow(4, k)
		wc, err := profile.WorstCase(8, 4, n)
		if err != nil {
			return nil, err
		}

		run := func(spread bool, prof *profile.SquareProfile) (float64, error) {
			e, err := regular.NewExec(spec, n)
			if err != nil {
				return 0, err
			}
			if spread {
				if err := e.SetSpreadScans(true); err != nil {
					return 0, err
				}
			}
			if err := e.SetStrictScans(true); err != nil {
				return 0, err
			}
			src, err := profile.NewSliceSource(prof)
			if err != nil {
				return 0, err
			}
			var pot float64
			maxBoxes := int64(spec.IOCost(n)) + 1
			err = e.Run(src.Next, maxBoxes, func(box, _ int64) {
				pot += spec.BoundedPotential(box, n)
			})
			if err != nil {
				return 0, err
			}
			return pot / spec.Potential(n), nil
		}

		canonical, err := run(false, wc)
		if err != nil {
			return nil, err
		}
		spreadOnWC, err := run(true, wc)
		if err != nil {
			return nil, err
		}
		adv, err := spreadAdversary(spec, n)
		if err != nil {
			return nil, err
		}
		spreadOnAdv, err := run(true, adv)
		if err != nil {
			return nil, err
		}
		t.AddRow(k, n, canonical, spreadOnWC, spreadOnAdv)
		ks = append(ks, float64(k))
		tailored = append(tailored, spreadOnAdv)
	}
	fit, err := stats.LinearFit(ks, tailored)
	if err != nil {
		return nil, err
	}
	predicted := 1 / math.Pow(float64(spec.A), spec.Exponent()-1)
	t.Note = fmt.Sprintf("tailored-adversary slope %+.3f/level vs the canonical +1.0 — close to the predicted a^{1-log_b a} = %.3f: one level of scan-spreading divides the log-gap's constant by ~%.1f but cannot remove it; full scan-hiding must recurse the transformation, which is exactly why [40] is complex and why the paper's smoothing result is attractive.",
		fit.Beta, predicted, 1/predicted)
	return t, nil
}
