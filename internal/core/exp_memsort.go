package core

import (
	"math"

	"repro/internal/memsort"
	"repro/internal/profile"
	"repro/internal/sharedcache"
	"repro/internal/smoothing"
	"repro/internal/xrand"
)

// A7 quantifies the paper's motivating trade-off from the other side:
// Barve–Vitter-style *explicit* memory adaptation — the approach whose
// complexity the paper's cache-oblivious programme is designed to avoid —
// versus the oblivious two-way merge sort of footnote 3. Under the
// standard entropy accounting (an I/O in a fan-in-f merge does log₂f units
// of the n·log₂n total), the explicit sorter's advantage is exactly the
// Θ(log M̄) DAM-level factor, and it persists on every profile family —
// including the shuffled ones that rescue the a > b algorithms in E3.

func init() {
	register(Experiment{
		ID:      "A7",
		Source:  "Related work (Barve–Vitter) + footnote 3",
		Summary: "Explicitly memory-adaptive sorting beats oblivious two-way merge sort by exactly the Θ(log M) DAM factor, on every profile family",
		Run:     runA7,
	})
}

func runA7(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "A7",
		Title:  "Memory-adaptive vs oblivious sorting (entropy accounting, n = 2^16 blocks)",
		Header: []string{"profile", "mean box", "adaptive IOs", "oblivious IOs", "speedup", "log2(mean box)"},
	}
	n := int64(1 << 16)
	rng := xrand.New(cfg.Seed ^ 0xa7)

	profiles := make(map[string]*profile.SquareProfile)
	var order []string
	add := func(name string, p *profile.SquareProfile) {
		profiles[name] = p
		order = append(order, name)
	}

	add("constant[64]", profile.MustNew([]int64{64}))
	add("constant[4096]", profile.MustNew([]int64{4096}))

	wc, err := profile.WorstCase(8, 4, profile.Pow(4, 6))
	if err != nil {
		return nil, err
	}
	add("M_{8,4}(4^6)", wc)
	add("shuffle(M_{8,4})", smoothing.Shuffle(wc, rng))

	// Winner-take-all contention, as the introduction describes.
	allocs, err := sharedcache.Simulate(sharedcache.Config{
		CacheBlocks: 4096,
		Horizon:     1 << 17,
		Policy:      sharedcache.WinnerTakeAll,
		FlushPeriod: 4096,
		Processes: []sharedcache.Process{
			{Name: "sorter", Arrive: 0, Depart: 1 << 17, Demand: 2048},
			{Name: "rival", Arrive: 0, Depart: 1 << 17, Demand: 2048},
		},
	}, rng)
	if err != nil {
		return nil, err
	}
	saw, err := profile.Squarize(allocs[0].M)
	if err != nil {
		return nil, err
	}
	add("winner-take-all (sharedcache)", saw)

	for _, name := range order {
		p := profiles[name]
		adaptive, oblivious, ratio, err := memsort.Speedup(n, p)
		if err != nil {
			return nil, err
		}
		// Duration-weighted mean box size (the I/O-time average the sorter
		// actually experiences).
		var dur, weighted float64
		for _, b := range p.Boxes() {
			dur += float64(b)
			weighted += float64(b) * float64(b)
		}
		meanBox := weighted / dur
		t.AddRow(name, meanBox, adaptive.IOs, oblivious.IOs, ratio, math.Log2(meanBox))
	}
	t.Note = "the speedup is the Θ(log M) DAM obstruction of footnote 3, realised: exactly log2(box) on constant profiles, and the duration-weighted log-average in general (the skewed M_{8,4} rows sit below log2 of the mean because most of their I/O-time is in size-1 boxes... precisely: the speedup equals the duration-weighted mean of log2(box)). It is untouched by shuffling (compare the two M_{8,4} rows): profile smoothing rescues a > b algorithms (E3) but cannot buy back the fan-in an a = b algorithm never uses; only explicit adaptation (with its programming burden — the paper's motivation) collects it."
	return t, nil
}
