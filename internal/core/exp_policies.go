package core

import (
	"fmt"

	"repro/internal/adaptivity"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/paging"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// This file implements the adaptive-policy experiments unlocked by the
// ReplacementPolicy registry: E12 (adaptivity gap by replacement policy —
// ROADMAP's "does Theorem 1's smoothing survive for adaptive policies?"
// question, with ARC/2Q from Consuegra et al.'s family replayed live
// against worst-case and i.i.d.-smoothed profiles) and E13 (the empirical
// smoothness curve Δfaults vs Δcapacity per Reineke & Salinger, "On the
// Smoothness of Paging Algorithms", across every registered policy).

func init() {
	register(Experiment{
		ID:      "E12",
		Source:  "ROADMAP: adaptive policies (Consuegra et al.) × Theorem 1",
		Summary: "Adaptivity gap of live ARC/2Q/LRU/FIFO kernels vs OPT and the square bound, on M_{8,4}(n) and under i.i.d. smoothing",
		Run:     runE12,
	})
	register(Experiment{
		ID:      "E13",
		Source:  "Reineke & Salinger (smoothness of paging)",
		Summary: "Empirical smoothness curve: fault-count sensitivity to capacity changes (Δfaults per Δcapacity, and Belady-anomaly sweep) across all registered policies",
		Run:     runE13,
	})
}

// e12KMax caps E12's sizes: every cell replays the materialized-scale
// MM-Scan reference stream through a live kernel (and "opt" materializes
// the trace outright), so k = 6 (n = 4096, T(n) = 262144 references) keeps
// the policy × trial grid affordable.
const e12KMax = 6

func runE12(cfg Config) (*Table, error) {
	cfg = clampMaterializedK(cfg)
	spec := regular.MMScanSpec
	kMin, kMax := 3, cfg.MaxK
	if kMax > e12KMax {
		kMax = e12KMax
	}
	policies := paging.ReplayNames()

	t := &Table{
		ID:     "E12",
		Title:  "Adaptivity gap by replacement policy: live kernels vs the square bound, worst-case and i.i.d.-smoothed",
		Header: []string{"policy", "k", "n", "worst-case gap", "iid mean gap", "iid ci95"},
	}

	// Worst-case part: M_{8,4}(n) replayed deterministically (cycled when a
	// thrashing kernel needs more boxes than the profile holds) — serial,
	// one run per (policy, size).
	wcs, err := worstCases(kMin, kMax)
	if err != nil {
		return nil, err
	}
	wcGaps := make([][]float64, len(policies))
	for p, pol := range policies {
		wcGaps[p] = make([]float64, kMax-kMin+1)
		for k := kMin; k <= kMax; k++ {
			src, err := profile.NewSliceSource(wcs[k])
			if err != nil {
				return nil, err
			}
			res, err := adaptivity.MeasureTracePolicy(spec, profile.Pow(4, k), pol, src, 0)
			if err != nil {
				return nil, fmt.Errorf("E12 %s k=%d: %w", pol, k, err)
			}
			wcGaps[p][k-kMin] = res.Gap()
		}
	}

	// i.i.d. part: box sizes drawn from the worst-case profile's own box
	// distribution (Theorem 1's strongest test) — one engine cell per
	// (policy, size, trial), laid out row-major.
	dists := make(map[int]xrand.Dist, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		d, err := xrand.WorstCaseBoxDist(8, 4, profile.Pow(4, k))
		if err != nil {
			return nil, err
		}
		dists[k] = d
	}
	type cell struct{ p, k, trial int }
	var cells []cell
	for p := range policies {
		for k := kMin; k <= kMax; k++ {
			for trial := 0; trial < cfg.Trials; trial++ {
				cells = append(cells, cell{p, k, trial})
			}
		}
	}
	g := engine.NewGroup().WithContext(cfg.Context())
	gaps := make([]float64, len(cells))
	if err := g.Map(len(cells), func(i, _ int) error {
		c := cells[i]
		rng := xrand.New(xrand.Split(cfg.Seed, "E12", int64(c.p), int64(c.k), int64(c.trial)))
		src := profile.FuncSource(func() int64 { return dists[c.k].Sample(rng) })
		res, err := adaptivity.MeasureTracePolicy(spec, profile.Pow(4, c.k), policies[c.p], src, 0)
		if err != nil {
			return fmt.Errorf("E12 %s k=%d trial %d: %w", policies[c.p], c.k, c.trial, err)
		}
		gaps[i] = res.Gap()
		return nil
	}); err != nil {
		return nil, err
	}

	var notes []string
	idx := 0
	for p, pol := range policies {
		var wcCurve gapCurve
		for k := kMin; k <= kMax; k++ {
			kGaps := gaps[idx : idx+cfg.Trials]
			idx += cfg.Trials
			wcCurve.add(k, []float64{wcGaps[p][k-kMin]})
			s := stats.Summarize(kGaps)
			t.AddRow(pol, k, profile.Pow(4, k), wcGaps[p][k-kMin], s.Mean, s.CI95())
		}
		fit, err := wcCurve.slope()
		if err != nil {
			return nil, err
		}
		notes = append(notes, fmt.Sprintf("%s: worst-case slope %+.3f/level", pol, fit.Beta))
	}
	notes = append(notes, "square is the paper's cleared-cache discretisation and pays the full log gap on its tailored adversary (slope exactly +1.0/level); the live kernels — classical and adaptive alike — carry state across box boundaries, so the clear-per-box trick never bites and their realized gaps stay Θ(1) on the same profile, and i.i.d. smoothing keeps every policy flat (Theorem 1's shape).")
	t.Note = joinNotes(notes)
	finishMetrics(t, g)
	return t, nil
}

// e13Sweep is the contiguous capacity range each policy's fault curve is
// traced over; the grid rows and the anomaly sweep both read from it.
const (
	e13SweepLo = int64(8)
	e13SweepHi = int64(136)
)

func runE13(cfg Config) (*Table, error) {
	const bw = 8
	dims := []int{64}
	if cfg.MaxK >= 6 {
		dims = append(dims, 128)
	}
	policies := append(paging.PolicyNames(), paging.OPTReplayName)
	gridMs := []int64{16, 32, 64, 128}

	t := &Table{
		ID:     "E13",
		Title:  "Empirical smoothness: MM-Scan trace fault counts vs capacity (B=8 words/block)",
		Header: []string{"dim", "policy", "M (blocks)", "faults", "Δfaults(M+1)", "Δfaults(M+8)"},
	}

	// One fault curve per (dim, policy): faults at every capacity in the
	// sweep, computed as engine cells over the shared read-only traces.
	nM := int(e13SweepHi - e13SweepLo + 1)
	traces := make([]*traceCurve, len(dims))
	for di, dim := range dims {
		tr, err := matrix.TraceMulScan(dim, bw)
		if err != nil {
			return nil, err
		}
		traces[di] = &traceCurve{tr: tr, faults: make([][]int64, len(policies))}
		for p := range policies {
			traces[di].faults[p] = make([]int64, nM)
		}
	}
	type cell struct{ di, p, mi int }
	var cells []cell
	for di := range dims {
		for p := range policies {
			for mi := 0; mi < nM; mi++ {
				cells = append(cells, cell{di, p, mi})
			}
		}
	}
	g := engine.NewGroup().WithContext(cfg.Context())
	if err := g.Map(len(cells), func(i, _ int) error {
		c := cells[i]
		m := e13SweepLo + int64(c.mi)
		faults, err := paging.RunPolicyFixed(policies[c.p], traces[c.di].tr, m)
		if err != nil {
			return err
		}
		traces[c.di].faults[c.p][c.mi] = faults
		return nil
	}); err != nil {
		return nil, err
	}

	var notes []string
	for di, dim := range dims {
		for p, pol := range policies {
			curve := traces[di].faults[p]
			for _, m := range gridMs {
				i := int(m - e13SweepLo)
				t.AddRow(dim, pol, m, curve[i], curve[i]-curve[i+1], curve[i]-curve[i+8])
			}
			// Belady-anomaly sweep: the largest single-step fault *increase*
			// under one extra block of capacity. LRU and OPT are monotone
			// (stack property / optimality), so anything positive there is a
			// kernel bug; FIFO and the adaptive policies may legitimately
			// show one.
			var anomaly int64
			for i := 0; i+1 < nM; i++ {
				if d := curve[i+1] - curve[i]; d > anomaly {
					anomaly = d
				}
			}
			notes = append(notes, fmt.Sprintf("dim %d %s: max anomaly %+d faults/+1 block", dim, pol, anomaly))
			if anomaly > 0 && (pol == "lru" || pol == paging.OPTReplayName) {
				return nil, fmt.Errorf("E13: %s shows a Belady anomaly (%d) at dim %d — stack policies are monotone", pol, anomaly, dim)
			}
		}
	}
	notes = append(notes, fmt.Sprintf("Δfaults(M+x) = faults(M) − faults(M+x) over M ∈ [%d, %d]: the discrete smoothness curve of Reineke & Salinger; anomaly > 0 means more capacity cost faults (Belady's anomaly).", e13SweepLo, e13SweepHi))
	t.Note = joinNotes(notes)
	finishMetrics(t, g)
	return t, nil
}

// traceCurve bundles one dim's shared trace with its per-policy fault
// curves over the E13 sweep.
type traceCurve struct {
	tr     *trace.Trace
	faults [][]int64
}
