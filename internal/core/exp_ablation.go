package core

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/paging"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Ablations beyond the paper's claims:
//
//	A1 — the paper's concluding open question asks whether *randomised
//	     algorithms* can defeat worst-case profiles. The natural first
//	     candidate — randomising the order of the a subproblems at every
//	     node — is tested against M_{8,4}(n).
//	A2 — validates the square-profile reduction the whole model rests on:
//	     a dynamic-capacity LRU on raw profiles vs the square-semantics
//	     cache on their inner-square reductions.
//	A3 — sweeps the scan exponent c to locate the adaptivity threshold
//	     (Theorem 2 puts it exactly at c = 1 for a > b).

func init() {
	register(Experiment{
		ID:      "A1",
		Source:  "Conclusion (open question: randomised algorithms)",
		Summary: "Randomising each node's subproblem order does not escape the worst-case profile",
		Run:     runA1,
	})
	register(Experiment{
		ID:      "A2",
		Source:  "Definition 1 / the square-profile reduction of [5]",
		Summary: "Raw-profile LRU cost vs inner-square-profile square-cache cost agree within a small constant",
		Run:     runA2,
	})
	register(Experiment{
		ID:      "A3",
		Source:  "Theorem 2 (the role of c)",
		Summary: "Gap on M_{8,4} as the scan exponent c sweeps 0..1: the log gap appears only at c = 1",
		Run:     runA3,
	})
}

func runA1(cfg Config) (*Table, error) {
	cfg = clampMaterializedK(cfg)
	spec := regular.MMScanSpec
	t := &Table{
		ID:     "A1",
		Title:  "Randomised subproblem order vs the worst-case profile (trace backend)",
		Header: []string{"workload", "size", "metric", "canonical", "randomised mean", "ci95"},
	}
	rng := xrand.New(cfg.Seed ^ 0xa1)
	maxK := cfg.MaxK
	if maxK > 6 {
		maxK = 6 // trace cost is Θ(n^{3/2}) per trial
	}
	trials := cfg.Trials
	if trials > 8 {
		trials = 8
	}

	// Part 1: the synthetic canonical trace, where same-slot siblings share
	// their entire working set.
	var ks, means []float64
	for k := 3; k <= maxK; k++ {
		n := profile.Pow(4, k)
		wc, err := profile.WorstCase(8, 4, n)
		if err != nil {
			return nil, err
		}
		// gapOf streams a generated trace straight into the square cache —
		// the trace is never materialized.
		gapOf := func(emit func(trace.Sink) error) (float64, error) {
			src, err := profile.NewSliceSource(wc)
			if err != nil {
				return 0, err
			}
			q := paging.NewSquareStream(src, 0)
			q.Reserve(n - 1)
			if err := emit(q); err != nil {
				return 0, err
			}
			st, err := q.Finish()
			if err != nil {
				return 0, err
			}
			var pot float64
			for _, s := range st {
				pot += spec.BoundedPotential(s.Size, n)
			}
			return pot / spec.Potential(n), nil
		}

		canon, err := gapOf(func(s trace.Sink) error {
			return regular.EmitSynthetic(spec, n, s)
		})
		if err != nil {
			return nil, err
		}
		var gaps []float64
		for trial := 0; trial < trials; trial++ {
			g, err := gapOf(func(s trace.Sink) error {
				return regular.EmitSyntheticShuffled(spec, n, rng, s)
			})
			if err != nil {
				return nil, err
			}
			gaps = append(gaps, g)
		}
		s := stats.Summarize(gaps)
		t.AddRow("synthetic (full sibling overlap)", fmt.Sprintf("n=4^%d", k), "gap", canon, s.Mean, s.CI95())
		ks = append(ks, float64(k))
		means = append(means, s.Mean)
	}
	fit, err := stats.LinearFit(ks, means)
	if err != nil {
		return nil, err
	}

	// Part 2: the real MM-Scan trace, where consecutive products share at
	// most one input quadrant.
	const bw = 8
	for _, dim := range []int{32, 64, 128} {
		wc, err := matrix.WorstCaseProfile(dim, bw)
		if err != nil {
			return nil, err
		}
		boxes := wc.Boxes()
		multiplies := func(tr *trace.Trace) (float64, error) {
			f := paging.NewSquareFinisher(boxes)
			trace.ReplayRepeat(tr, f, 8, tr.MaxBlock()+1)
			if err := f.Err(); err != nil {
				return 0, err
			}
			return float64(int(f.Served()) / tr.Len()), nil
		}
		canonTr, err := matrix.TraceMulScan(dim, bw)
		if err != nil {
			return nil, err
		}
		canon, err := multiplies(canonTr)
		if err != nil {
			return nil, err
		}
		var counts []float64
		for trial := 0; trial < trials; trial++ {
			tr, err := matrix.TraceMulScanShuffled(dim, bw, rng)
			if err != nil {
				return nil, err
			}
			c, err := multiplies(tr)
			if err != nil {
				return nil, err
			}
			counts = append(counts, c)
		}
		s := stats.Summarize(counts)
		t.AddRow("real MM-Scan", fmt.Sprintf("dim=%d", dim), "multiplies", canon, s.Mean, s.CI95())
	}

	t.Note = fmt.Sprintf("the answer to the paper's open question is workload-dependent: with full working-set overlap between same-slot siblings, random order lets boxes serve several siblings and the gap collapses to O(1) (slope %+.3f/level vs the canonical +1.0); but for real MM-Scan — whose products write distinct temporaries — random order still completes exactly the canonical number of multiplies on the adversary's profile. Order randomisation alone does not defeat M_{a,b}.", fit.Beta)
	return t, nil
}

func runA2(cfg Config) (*Table, error) {
	spec := regular.MMScanSpec
	n := profile.Pow(4, 6)
	tr, err := regular.SyntheticTrace(spec, n)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed ^ 0xa2)

	t := &Table{
		ID:     "A2",
		Title:  "Square-profile reduction: raw-profile LRU vs inner-square square-cache (canonical (8,4,1) trace, n=4^6)",
		Header: []string{"raw profile", "LRU misses (raw)", "square boxes", "square-cache IOs", "IO ratio"},
	}
	const horizon = 1 << 21
	rawProfiles := []struct {
		name string
		m    []int64
	}{}
	saw, err := profile.Sawtooth(16, 1024, 4096, horizon)
	if err != nil {
		return nil, err
	}
	rawProfiles = append(rawProfiles, struct {
		name string
		m    []int64
	}{"sawtooth[16..1024]", saw})
	walk, err := profile.RandomWalk(rng, 256, 16, 1024, 32, horizon)
	if err != nil {
		return nil, err
	}
	rawProfiles = append(rawProfiles, struct {
		name string
		m    []int64
	}{"walk[16..1024]", walk})
	con, err := profile.Constant(256, horizon)
	if err != nil {
		return nil, err
	}
	rawProfiles = append(rawProfiles, struct {
		name string
		m    []int64
	}{"constant[256]", con})

	var worstRatio float64
	for _, rp := range rawProfiles {
		lruMisses, err := paging.RunLRUProfile(tr, rp.m)
		if err != nil {
			return nil, err
		}
		sq, err := profile.Squarize(rp.m)
		if err != nil {
			return nil, err
		}
		src, err := profile.NewSliceSource(sq)
		if err != nil {
			return nil, err
		}
		st, err := paging.SquareRun(tr, src, 0)
		if err != nil {
			return nil, err
		}
		sqIOs := paging.TotalIOs(st)
		ratio := float64(sqIOs) / float64(lruMisses)
		if r := maxf(ratio, 1/ratio); r > worstRatio {
			worstRatio = r
		}
		t.AddRow(rp.name, lruMisses, sq.Len(), sqIOs, ratio)
	}
	t.Note = fmt.Sprintf("worst-case disagreement factor %.2f — the inner-square reduction costs within a small constant of the raw dynamic-capacity LRU, supporting the model's w.l.o.g. square-profile convention.", worstRatio)
	return t, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func runA3(cfg Config) (*Table, error) {
	cfg = clampMaterializedK(cfg)
	t := &Table{
		ID:     "A3",
		Title:  "Scan-exponent sweep: trace-backed gap of (8,4,c) on M_{8,4}(n)",
		Header: []string{"c", "k", "n", "gap"},
	}
	maxK := cfg.MaxK
	if maxK > 6 {
		maxK = 6
	}
	var notes []string
	for _, c := range []float64{0, 0.25, 0.5, 0.75, 1} {
		spec, err := regular.NewSpec(8, 4, c)
		if err != nil {
			return nil, err
		}
		var ks, gaps []float64
		for k := 3; k <= maxK; k++ {
			n := profile.Pow(4, k)
			wc, err := profile.WorstCase(8, 4, n)
			if err != nil {
				return nil, err
			}
			src, err := profile.NewSliceSource(wc)
			if err != nil {
				return nil, err
			}
			q := paging.NewSquareStream(src, 0)
			q.Reserve(n - 1)
			if err := regular.EmitSynthetic(spec, n, q); err != nil {
				return nil, err
			}
			st, err := q.Finish()
			if err != nil {
				return nil, err
			}
			var pot float64
			for _, s := range st {
				pot += spec.BoundedPotential(s.Size, n)
			}
			gap := pot / spec.Potential(n)
			t.AddRow(fmt.Sprintf("%.2f", c), k, n, gap)
			ks = append(ks, float64(k))
			gaps = append(gaps, gap)
		}
		fit, err := stats.LinearFit(ks, gaps)
		if err != nil {
			return nil, err
		}
		notes = append(notes, fmt.Sprintf("c=%.2f: slope %+.3f/level", c, fit.Beta))
	}
	t.Note = joinNotes(notes) + " — the logarithmic growth switches on at c = 1, exactly where Theorem 2 places the threshold."
	return t, nil
}
