package core

import (
	"fmt"
	"math"

	"repro/internal/adaptivity"
	"repro/internal/engine"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/xrand"
)

// This file implements E4 (Lemma 3's identities) and E5 (the Equation 6–8
// recurrence structure).

func init() {
	register(Experiment{
		ID:      "E4",
		Source:  "Lemma 3",
		Summary: "q = p = Pr[|□|>=n]·f(n/4); subproblem and scan box-count formulas match simulation",
		Run:     runE4,
	})
	register(Experiment{
		ID:      "E5",
		Source:  "Equations 3, 6-8",
		Summary: "Stopping-time recurrence: f(n)/f(n/4) vs 8·m_{n/4}/m_n, the Π f/f' product, and the normalised stopping time f·m_n/n^{3/2}",
		Run:     runE5,
	})
}

func runE4(cfg Config) (*Table, error) {
	spec := regular.MMScanSpec
	uni, err := xrand.NewUniform(8, 128)
	if err != nil {
		return nil, err
	}
	tp, err := xrand.NewTwoPoint(4, 1024, 0.03)
	if err != nil {
		return nil, err
	}
	pl, err := xrand.NewPowerLaw(4, 6, 0.9)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "E4",
		Title:  "Lemma 3: the stopping-time identities under i.i.d. boxes",
		Header: []string{"distribution", "n", "f(n/4)", "p", "q", "q se", "f' formula", "f' measured", "scan formula", "scan measured"},
	}
	// Lemma-3 Monte Carlo needs many trials for the q estimate; scale the
	// configured trial count up since individual trials are cheap at these
	// sizes. The nine (distribution, n) checks are independent, so they fan
	// out on the engine with Split-derived seeds (CheckLemma3 itself fans
	// its trials out further; the engine nests without deadlock).
	trials := cfg.Trials * 150
	dists := []xrand.Dist{uni, tp, pl}
	ns := []int64{64, 256, 1024}
	results := make([]adaptivity.Lemma3Result, len(dists)*len(ns))
	g := engine.NewGroup().WithContext(cfg.Context())
	if err := g.Map(len(results), func(i, _ int) error {
		d, n := dists[i/len(ns)], ns[i%len(ns)]
		seed := xrand.Split(cfg.Seed, "E4", int64(i/len(ns)), n)
		res, err := adaptivity.CheckLemma3(spec, n, d, seed, trials)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	}); err != nil {
		return nil, err
	}
	var worstQErr float64
	for i, res := range results {
		t.AddRow(dists[i/len(ns)].Name(), ns[i%len(ns)], res.FChild, res.P, res.Q, res.QSE,
			res.SubBoxesFormula, res.SubBoxesMeasured,
			res.ScanBoxesPredicted, res.ScanBoxesMeasured)
		if e := math.Abs(res.Q - res.P); e > worstQErr {
			worstQErr = e
		}
	}
	t.Note = fmt.Sprintf("max |q - p| = %.4f across all rows (lemma: q = p exactly); f' formula Σ(1-p)^{i-1}f(n/4) matches measurement; the scan column is a Θ-level prediction (constants unspecified by the lemma).", worstQErr)
	finishMetrics(t, g)
	return t, nil
}

func runE5(cfg Config) (*Table, error) {
	spec := regular.MMScanSpec
	uni, err := xrand.NewUniform(4, 64)
	if err != nil {
		return nil, err
	}
	var sizes []int64
	for k := 2; k <= cfg.MaxK; k++ {
		sizes = append(sizes, profile.Pow(4, k))
	}
	points, product, err := adaptivity.CheckRecurrence(spec, sizes, uni, cfg.Seed^0xe5, cfg.Trials*10, 4)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E5",
		Title:  "Equations 3 & 6-8: the semi-inductive recurrence under Σ = uniform[4,64]",
		Header: []string{"n", "f(n)", "f'(n)", "m_n", "f/f(n/4) [Eq6]", "f'/f(n/4) [Eq7]", "8·m_{n/4}/m_n", "f·m_n/n^1.5", "Eq9 regime"},
	}
	eq7Violations := 0
	for _, p := range points {
		lhs, lhs7, rhs := "-", "-", "-"
		if p.RatioLHS > 0 {
			lhs = fmt.Sprintf("%.3f", p.RatioLHS)
			lhs7 = fmt.Sprintf("%.3f", p.RatioEq7)
			rhs = fmt.Sprintf("%.3f", p.RatioRHS)
			if p.Eq9Holds && p.RatioEq7 > p.RatioRHS*1.02 {
				eq7Violations++
			}
		}
		t.AddRow(p.N, p.F, p.FPrime, p.MN, lhs, lhs7, rhs, p.GapBound, p.Eq9Holds)
	}
	t.Note = fmt.Sprintf("Equation 6 can exceed the bound (scans) — that is exactly why the paper works with f'; Equation 7 holds in the Eq-9 regime (%d violations). Π f/f' over all sizes = %.3f (Equation 8: bounded by a constant); f·m_n/n^1.5 is the Equation-3 quantity — bounded ⇔ cache-adaptive in expectation.", eq7Violations, product)
	return t, nil
}
