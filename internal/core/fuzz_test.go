package core

import (
	"fmt"
	"testing"
)

// FuzzParseID hammers the experiment-ID parser with hostile input. The
// invariants: it never panics; an accepted ID has kind E or A and n >= 1;
// and acceptance is canonical — re-rendering (kind, n) reproduces the input
// byte-for-byte, so no two distinct strings alias onto one experiment
// (leading zeros and overflowed digit strings used to break this).
func FuzzParseID(f *testing.F) {
	for _, seed := range []string{
		"E1", "E11", "A7", "all",
		"", "E", "A", "Axe", "e3", "A07", "E-1", "E0",
		"E18446744073709551617", // would overflow a naive accumulator
		"A999999", "E3x", "EE3", "É3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, id string) {
		kind, n, err := ParseID(id)
		if err != nil {
			return // rejection is always fine; not panicking is the point
		}
		if kind != 'E' && kind != 'A' {
			t.Fatalf("ParseID(%q) accepted kind %q", id, kind)
		}
		if n < 1 {
			t.Fatalf("ParseID(%q) accepted n = %d", id, n)
		}
		if rendered := fmt.Sprintf("%c%d", kind, n); rendered != id {
			t.Fatalf("ParseID(%q) = (%c, %d) is not canonical: renders as %q", id, kind, n, rendered)
		}
	})
}
