// Package fft implements the radix-2 fast Fourier transform — the paper's
// other named a = b example (footnote 3: "classic (i.e., not
// cache-oblivious) FFT ... cannot be optimal DAM algorithms").
//
// The recursive radix-2 FFT on m points splits into two half-size
// transforms (even and odd indices) plus a Θ(m) butterfly combine: in
// blocks that is (2,2,1)-regular — a = b = 2, c = 1 — squarely on the
// boundary the paper leaves to future work and ablation A5 measures. (The
// *optimal* cache-oblivious FFT is the √n-way four-step algorithm of
// Frigo et al.; the radix-2 recursion here is deliberately the classic
// non-optimal one, because that is the algorithm family the footnote
// talks about.)
//
// The numeric implementation is tested against a naive O(n²) DFT and by
// inverse round-trips; the traced variant feeds the paging substrate.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/trace"
)

// Forward computes the discrete Fourier transform of xs (length a power of
// two) with the recursive radix-2 algorithm.
func Forward(xs []complex128) ([]complex128, error) {
	n := len(xs)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	out := make([]complex128, n)
	copy(out, xs)
	scratch := make([]complex128, n)
	rec(out, scratch, -1)
	return out, nil
}

// Inverse computes the inverse DFT (normalised by 1/n).
func Inverse(xs []complex128) ([]complex128, error) {
	n := len(xs)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	out := make([]complex128, n)
	copy(out, xs)
	scratch := make([]complex128, n)
	rec(out, scratch, +1)
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// rec transforms xs in place using scratch; sign is the exponent's sign
// (-1 forward, +1 inverse).
func rec(xs, scratch []complex128, sign float64) {
	n := len(xs)
	if n == 1 {
		return
	}
	h := n / 2
	// Split scan: deal evens and odds into scratch halves.
	for i := 0; i < h; i++ {
		scratch[i] = xs[2*i]
		scratch[h+i] = xs[2*i+1]
	}
	copy(xs, scratch)
	rec(xs[:h], scratch[:h], sign)
	rec(xs[h:], scratch[h:], sign)
	// Butterfly combine scan.
	for i := 0; i < h; i++ {
		w := cmplx.Exp(complex(0, sign*2*math.Pi*float64(i)/float64(n)))
		e, o := xs[i], xs[h+i]
		scratch[i] = e + w*o
		scratch[h+i] = e - w*o
	}
	copy(xs, scratch)
}

// NaiveDFT is the O(n²) reference transform.
func NaiveDFT(xs []complex128) []complex128 {
	n := len(xs)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += xs[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// fftBaseLen is the traced recursion's cutoff in words.
const fftBaseLen = 8

// TraceFFT emits the block trace of the radix-2 FFT on n complex points
// (power of two) with blockWords points per block. The data lives at word
// offset 0 and the scratch at offset n; a subproblem on [off, off+m)
// touches its array blocks and scratch blocks during the split and combine
// scans — the (2,2,1) shape in blocks.
func TraceFFT(n int, blockWords int64) (*trace.Trace, error) {
	b := &trace.Builder{}
	if err := EmitFFT(n, blockWords, b); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// EmitFFT streams the radix-2 FFT trace into s without materializing it.
func EmitFFT(n int, blockWords int64, s trace.Sink) error {
	if n < fftBaseLen || n&(n-1) != 0 {
		return fmt.Errorf("fft: traced transform needs power-of-two length >= %d, got %d", fftBaseLen, n)
	}
	if blockWords < 1 {
		return fmt.Errorf("fft: block size %d < 1", blockWords)
	}
	g := &fftTraceGen{s: s, bw: blockWords, scratchBase: int64(n)}
	g.rec(0, int64(n))
	return nil
}

type fftTraceGen struct {
	s           trace.Sink
	bw          int64
	scratchBase int64
}

func (g *fftTraceGen) touch(off, words int64) {
	first := off / g.bw
	last := (off + words - 1) / g.bw
	g.s.AccessRange(first, last-first+1)
}

func (g *fftTraceGen) rec(off, m int64) {
	if m <= fftBaseLen {
		g.touch(off, m)
		g.s.EndLeaf()
		return
	}
	h := m / 2
	// Split scan: read array, write scratch, copy back.
	g.touch(off, m)
	g.touch(g.scratchBase+off, m)
	g.touch(off, m)
	g.rec(off, h)
	g.rec(off+h, h)
	// Butterfly combine scan.
	g.touch(off, m)
	g.touch(g.scratchBase+off, m)
	g.touch(off, m)
}
