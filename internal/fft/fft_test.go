package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func approxEqual(a, b []complex128, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}

func randomSignal(src *xrand.Source, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(2*src.Float64()-1, 2*src.Float64()-1)
	}
	return out
}

func TestForwardValidation(t *testing.T) {
	if _, err := Forward(make([]complex128, 12)); err == nil {
		t.Error("length 12 accepted")
	}
	if _, err := Forward(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Inverse(make([]complex128, 3)); err == nil {
		t.Error("inverse length 3 accepted")
	}
}

func TestForwardMatchesNaive(t *testing.T) {
	src := xrand.New(61)
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		xs := randomSignal(src, n)
		fast, err := Forward(xs)
		if err != nil {
			t.Fatal(err)
		}
		slow := NaiveDFT(xs)
		if !approxEqual(fast, slow, 1e-9*float64(n)) {
			t.Errorf("n=%d: FFT differs from naive DFT", n)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	src := xrand.New(67)
	for _, n := range []int{4, 64, 1024} {
		xs := randomSignal(src, n)
		fwd, err := Forward(xs)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Inverse(fwd)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEqual(back, xs, 1e-9*float64(n)) {
			t.Errorf("n=%d: inverse(forward(x)) != x", n)
		}
	}
}

func TestImpulseResponse(t *testing.T) {
	// The DFT of a unit impulse is all ones.
	xs := make([]complex128, 8)
	xs[0] = 1
	out, err := Forward(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestConstantSignal(t *testing.T) {
	// The DFT of a constant is an impulse at bin 0 of height n.
	n := 16
	xs := make([]complex128, n)
	for i := range xs {
		xs[i] = 1
	}
	out, err := Forward(xs)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(out[0]-complex(float64(n), 0)) > 1e-9 {
		t.Errorf("bin 0 = %v, want %d", out[0], n)
	}
	for i := 1; i < n; i++ {
		if cmplx.Abs(out[i]) > 1e-9 {
			t.Errorf("bin %d = %v, want 0", i, out[i])
		}
	}
}

// Property: Parseval — Σ|x|² = (1/n)Σ|X|², plus linearity.
func TestParsevalProperty(t *testing.T) {
	check := func(seed uint32, sizeSel uint8) bool {
		n := []int{8, 16, 64}[int(sizeSel)%3]
		src := xrand.New(uint64(seed))
		xs := randomSignal(src, n)
		X, err := Forward(xs)
		if err != nil {
			return false
		}
		var timeE, freqE float64
		for i := range xs {
			timeE += real(xs[i])*real(xs[i]) + imag(xs[i])*imag(xs[i])
			freqE += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		return math.Abs(timeE-freqE/float64(n)) < 1e-9*float64(n)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceFFTValidation(t *testing.T) {
	if _, err := TraceFFT(12, 4); err == nil {
		t.Error("non-power accepted")
	}
	if _, err := TraceFFT(4, 4); err == nil {
		t.Error("below base accepted")
	}
	if _, err := TraceFFT(64, 0); err == nil {
		t.Error("block 0 accepted")
	}
}

func TestTraceFFTShape(t *testing.T) {
	tr, err := TraceFFT(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 2^levels leaves, levels = log2(256/8) = 5.
	if tr.Leaves() != 32 {
		t.Errorf("leaves = %d, want 32", tr.Leaves())
	}
	// Footprint: data + scratch = 2n/B blocks.
	if got := tr.DistinctBlocks(); got != 128 {
		t.Errorf("distinct = %d, want 128", got)
	}
}
