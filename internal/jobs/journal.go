// Package jobs is cadaptived's durable batch layer: a job is a batch spec
// (experiment IDs × seed range × maxk sweep) decomposed into per-cell work
// items, scheduled with weighted round-robin fairness across jobs, retried
// per cell with capped deterministic backoff, and journaled so that a crash
// loses only the cells that had not yet completed.
//
// Durability model. The journal is a single append-only file of CRC-framed
// records, one fsync'd record per *completed* cell plus job-lifecycle
// records (created / per-cell poison / terminal status). Replay tolerates a
// torn tail — a crash mid-write loses at most the record being written,
// never the file — and duplicate cell records are idempotent (last wins),
// so retries and re-submissions are free. Recovery cost is proportional to
// the work the crash actually destroyed, the same "pay only for what the
// adversary took" shape the paper's cache-adaptive analysis formalizes.
package jobs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/fault"
)

// Record kinds. The payload is always kind + three length-prefixed fields
// (a, b, c); unused fields are empty. A uniform shape keeps replay a single
// loop and lets the fuzzer reach every branch from raw bytes.
const (
	// recJobCreated: a = job ID, c = normalized spec JSON.
	recJobCreated byte = 1
	// recCellDone: a = cell cache key, c = result body. Global, not
	// per-job: cells are content-addressed, so any job can reuse them.
	recCellDone byte = 2
	// recCellPoisoned: a = job ID, b = cell cache key, c = error text.
	recCellPoisoned byte = 3
	// recJobTerminal: a = job ID, b = terminal status string.
	recJobTerminal byte = 4
)

// Frame layout: [u32 LE payload length][u32 LE CRC-32 (IEEE) of payload]
// [payload]. Payload: [kind u8][u32 LE len(a)][a][u32 LE len(b)][b]
// [u32 LE len(c)][c].
const (
	frameHeader = 8
	// minPayload is kind + three u32 length prefixes with empty fields.
	minPayload = 1 + 3*4
	// maxPayload bounds a single record so a corrupt length prefix cannot
	// make replay attempt a multi-gigabyte read.
	maxPayload = 1 << 28
)

// journalFile is the fixed file name inside the jobs directory.
const journalFile = "jobs.journal"

var (
	errJournalClosed = errors.New("jobs: journal closed")
	// errRecordTooLarge rejects oversized appends up front: replay refuses
	// any frame whose declared length exceeds maxPayload, so writing one
	// would poison the journal tail — the next OpenJournal would stop at
	// the oversized frame and truncate away every valid record after it.
	errRecordTooLarge = errors.New("jobs: journal record exceeds max payload")
)

// Journal is the append side: a single file descriptor, one fsync per
// record by default, writes serialized by mu. The scratch buffer is reused
// so the steady-state append path does not allocate (see the //lint:hotpath
// contract on appendRecord).
type Journal struct {
	mu sync.Mutex
	//lint:guardedby mu
	f *os.File
	//lint:guardedby mu
	buf []byte
	//lint:guardedby mu
	closed bool
	// nosync skips the per-record fsync; only the allocation test sets it
	// (fsync cost would swamp AllocsPerRun, and durability is not what that
	// test measures).
	nosync bool
}

// record is one parsed journal record; the byte slices alias the replay
// buffer, so consumers copy what they keep.
type record struct {
	kind    byte
	a, b, c []byte
}

// Replay is what a journal's surviving records add up to: completed cell
// bodies (content-addressed, shared across jobs) and per-job lifecycle
// state, in journal order.
type Replay struct {
	// Bodies maps cell cache key → result body; duplicate records are
	// idempotent, last wins.
	Bodies map[string][]byte
	// Jobs lists every journaled job in creation order.
	Jobs []*ReplayedJob
	// TornBytes is how much trailing garbage replay dropped (0 for a clean
	// file); Open truncates it away so future appends land on a frame
	// boundary.
	TornBytes int64
}

// ReplayedJob is one job reconstructed from the journal.
type ReplayedJob struct {
	ID       string
	SpecJSON []byte
	// Poisoned maps cell cache key → the error text that exhausted its
	// retry budget.
	Poisoned map[string]string
	// Terminal is the recorded end state ("completed", "partial",
	// "cancelled") or "" if the job was still running at the crash.
	Terminal string
}

// OpenJournal opens (creating as needed) dir's journal, replays it, and
// truncates any torn tail so the file ends on a valid frame boundary.
func OpenJournal(dir string) (*Journal, *Replay, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobs: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: open journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobs: read journal: %w", err)
	}
	recs, valid := replayBytes(data)
	if valid < len(data) {
		// Torn or corrupt tail: cut it off now so the next append produces a
		// parseable file instead of burying a good record behind garbage.
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("jobs: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobs: seek journal: %w", err)
	}
	rep := buildReplay(recs)
	rep.TornBytes = int64(len(data) - valid)
	return &Journal{f: f}, rep, nil
}

// replayBytes parses data record by record and returns the parsed records
// plus the byte offset of the last valid frame boundary. A short frame, an
// over-long or under-short declared length, a CRC mismatch, or an
// unparseable payload all stop the scan there — everything before the stop
// is trusted (each record carries its own CRC), everything after is not,
// because frame boundaries downstream of corruption cannot be recovered.
func replayBytes(data []byte) ([]record, int) {
	var recs []record
	off := 0
	for {
		rest := data[off:]
		if len(rest) < frameHeader {
			break
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n < minPayload || n > maxPayload {
			break
		}
		if len(rest)-frameHeader < int(n) {
			break
		}
		payload := rest[frameHeader : frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		rec, ok := parsePayload(payload)
		if !ok {
			break
		}
		recs = append(recs, rec)
		off += frameHeader + int(n)
	}
	return recs, off
}

// parsePayload decodes kind + three length-prefixed fields, requiring the
// payload to be consumed exactly and the kind to be known.
func parsePayload(p []byte) (record, bool) {
	rec := record{kind: p[0]}
	if rec.kind < recJobCreated || rec.kind > recJobTerminal {
		return record{}, false
	}
	rest := p[1:]
	fields := [3][]byte{}
	for i := range fields {
		if len(rest) < 4 {
			return record{}, false
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint32(len(rest)) < n {
			return record{}, false
		}
		fields[i] = rest[:n]
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return record{}, false
	}
	rec.a, rec.b, rec.c = fields[0], fields[1], fields[2]
	return rec, true
}

// buildReplay folds parsed records into the Replay summary. Unknown job IDs
// in poison/terminal records are ignored (they can only appear if a
// torn-tail truncation removed the creation record on an earlier
// generation's file — stale but harmless); duplicate creation records keep
// the first.
func buildReplay(recs []record) *Replay {
	rep := &Replay{Bodies: map[string][]byte{}}
	byID := map[string]*ReplayedJob{}
	for _, rec := range recs {
		switch rec.kind {
		case recJobCreated:
			id := string(rec.a)
			if byID[id] != nil {
				continue
			}
			j := &ReplayedJob{
				ID:       id,
				SpecJSON: append([]byte(nil), rec.c...),
				Poisoned: map[string]string{},
			}
			byID[id] = j
			rep.Jobs = append(rep.Jobs, j)
		case recCellDone:
			rep.Bodies[string(rec.a)] = append([]byte(nil), rec.c...)
		case recCellPoisoned:
			if j := byID[string(rec.a)]; j != nil {
				j.Poisoned[string(rec.b)] = string(rec.c)
			}
		case recJobTerminal:
			if j := byID[string(rec.a)]; j != nil {
				j.Terminal = string(rec.b)
			}
		}
	}
	return rep
}

// appendRecord frames one record into the reusable scratch buffer, writes
// it, and (unless nosync) fsyncs — one durable record per call, so a crash
// at any point loses at most the record being written. This is the
// steady-state hot path of a running batch (once per completed cell); it
// must not allocate.
//
//lint:hotpath
func (j *Journal) appendRecord(kind byte, a, b string, c []byte) error {
	//lint:ignore hotpath fault.Fire's armed path allocates (error construction); disarmed it is one atomic load, and chaos runs are not steady state
	if err := fault.Fire(fault.PointJobsJournal); err != nil {
		return err
	}
	// Mirror replay's frame bound on the write side: an append replay would
	// reject must fail here (sentinel error, no alloc) rather than land on
	// disk and silently orphan every record behind it on the next start.
	if minPayload+len(a)+len(b)+len(c) > maxPayload {
		return errRecordTooLarge
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errJournalClosed
	}
	buf := j.buf[:0]
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = append(buf, kind)
	buf = appendU32(buf, uint32(len(a)))
	buf = append(buf, a...)
	buf = appendU32(buf, uint32(len(b)))
	buf = append(buf, b...)
	buf = appendU32(buf, uint32(len(c)))
	buf = append(buf, c...)
	payload := buf[frameHeader:]
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	j.buf = buf
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("jobs: journal write: %w", err)
	}
	if !j.nosync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("jobs: journal sync: %w", err)
		}
	}
	return nil
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// AppendJobCreated records a new job and its normalized spec.
func (j *Journal) AppendJobCreated(id string, specJSON []byte) error {
	return j.appendRecord(recJobCreated, id, "", specJSON)
}

// AppendCell records a completed cell's body under its cache key.
func (j *Journal) AppendCell(key string, body []byte) error {
	return j.appendRecord(recCellDone, key, "", body)
}

// AppendPoison records that a cell exhausted its retry budget for jobID.
func (j *Journal) AppendPoison(jobID, key, errText string) error {
	return j.appendRecord(recCellPoisoned, jobID, key, []byte(errText))
}

// AppendTerminal records a job's end state.
func (j *Journal) AppendTerminal(jobID, status string) error {
	return j.appendRecord(recJobTerminal, jobID, status, nil)
}

// Close syncs and closes the journal; further appends fail with a closed
// error. Close writes no terminal records — a job interrupted by shutdown
// stays resumable.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if !j.nosync {
		if err := j.f.Sync(); err != nil {
			j.f.Close()
			return fmt.Errorf("jobs: journal close sync: %w", err)
		}
	}
	return j.f.Close()
}

// abandon closes the file descriptor without syncing or marking records —
// the closest an in-process test can get to SIGKILL. Because every append
// already fsync'd its own record, abandon loses nothing that was journaled.
func (j *Journal) abandon() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	j.f.Close()
}
