package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// Job terminal statuses. A job is "running" until every cell reaches a
// terminal state; it degrades to "partial" — not "failed" — when some cells
// poisoned, because the other cells' tables are still good science.
const (
	JobRunning   = "running"
	JobCompleted = "completed"
	JobPartial   = "partial"
	JobCancelled = "cancelled"
)

// CellState is one work item's lifecycle position.
type CellState uint8

const (
	CellPending CellState = iota
	CellRunning
	CellDone
	CellPoisoned
	CellCancelled
)

func (s CellState) String() string {
	switch s {
	case CellPending:
		return "pending"
	case CellRunning:
		return "running"
	case CellDone:
		return "done"
	case CellPoisoned:
		return "poisoned"
	case CellCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("CellState(%d)", uint8(s))
}

var (
	// ErrTooManyJobs is returned by Submit when MaxJobs jobs are already
	// active; the service maps it to 503 + Retry-After.
	ErrTooManyJobs = errors.New("jobs: too many active jobs")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("jobs: manager closed")
)

// CellRunner executes one cell and returns its result body. The service
// wires this to its cached run path, so batch cells share the
// content-addressed cache, the singleflight, and the admission queue with
// interactive requests.
type CellRunner func(ctx context.Context, id string, cfg core.Config) ([]byte, error)

// Options configures a Manager. The zero value of each field selects its
// default.
type Options struct {
	// Dir is the journal directory; "" runs volatile (no durability).
	Dir string
	// MaxJobs bounds concurrently active (non-terminal) jobs; Submit sheds
	// beyond it. Default 8.
	MaxJobs int
	// MaxCellsPerJob bounds a single spec's grid. Default 4096.
	MaxCellsPerJob int
	// Retries is the per-cell attempt budget before the cell is poisoned.
	// Default 3.
	Retries int
	// CellConcurrency bounds batch cells in flight across all jobs.
	// Default 2.
	CellConcurrency int
	// PerJobConcurrency bounds one job's cells in flight, so a single wide
	// job cannot monopolize the batch slots. Default: CellConcurrency.
	PerJobConcurrency int
	// BaseDelay/MaxDelay shape the capped exponential retry backoff.
	// Defaults 50ms / 2s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the deterministic per-cell backoff jitter streams, the
	// same discipline as the service client's. Default: the core default
	// seed.
	Seed uint64
	// Sleep is the backoff/pacing sleeper; tests inject an instant one.
	// Default time.Sleep.
	Sleep func(time.Duration)
	// Run executes one cell. Required.
	Run CellRunner
	// Transient classifies runner errors that should be retried without
	// consuming the cell's attempt budget (admission sheds). Default: none.
	Transient func(error) bool
	// Pool is the engine pool whose idle capacity gates dispatch; batch
	// work must not starve interactive Maps of recruits. Default:
	// engine.Shared().
	Pool *engine.Pool
	// PoolReserve is how many pool tokens dispatch leaves free for
	// interactive work; 0 selects the default of 1, negative means no
	// reserve.
	PoolReserve int
}

func (o Options) withDefaults() Options {
	if o.MaxJobs == 0 {
		o.MaxJobs = 8
	}
	if o.MaxCellsPerJob == 0 {
		o.MaxCellsPerJob = 4096
	}
	if o.Retries == 0 {
		o.Retries = 3
	}
	if o.CellConcurrency == 0 {
		o.CellConcurrency = 2
	}
	if o.PerJobConcurrency == 0 {
		o.PerJobConcurrency = o.CellConcurrency
	}
	if o.BaseDelay == 0 {
		o.BaseDelay = 50 * time.Millisecond
	}
	if o.MaxDelay == 0 {
		o.MaxDelay = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = core.DefaultConfig().Seed
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.Pool == nil {
		o.Pool = engine.Shared()
	}
	switch {
	case o.PoolReserve == 0:
		o.PoolReserve = 1
	case o.PoolReserve < 0:
		o.PoolReserve = 0
	}
	return o
}

// cellState is one work item plus its runtime state; all mutable fields are
// guarded by the owning Job's mu.
type cellState struct {
	Cell
	state    CellState
	attempts int
	body     []byte
	errMsg   string
}

// Job is one submitted batch. Immutable identity fields are set at
// construction; everything mutable sits behind mu. Lock order is always
// Manager.mu before Job.mu, never the reverse.
type Job struct {
	id     string
	weight int
	spec   Spec
	total  int // len(cells), immutable after construction
	ctx    context.Context
	cancel context.CancelFunc
	// done closes when the job is settled: terminal status and no cell
	// still in flight.
	done chan struct{}

	mu sync.Mutex
	//lint:guardedby mu
	cells []cellState
	//lint:guardedby mu
	queue []int // pending cell indices, dispatch order
	//lint:guardedby mu
	status string
	//lint:guardedby mu
	running int
	//lint:guardedby mu
	credit int // weighted-round-robin credit left in the current cycle
	//lint:guardedby mu
	settled bool
}

// anyPoisonedLocked reports whether any cell exhausted its retries.
//
//lint:locked mu
func (j *Job) anyPoisonedLocked() bool {
	for i := range j.cells {
		if j.cells[i].state == CellPoisoned {
			return true
		}
	}
	return false
}

// CellStatus is one cell's externally visible state.
type CellStatus struct {
	Experiment string          `json:"experiment"`
	Seed       uint64          `json:"seed"`
	Trials     int             `json:"trials"`
	MaxK       int             `json:"maxk"`
	Key        string          `json:"key"`
	State      string          `json:"state"`
	Attempts   int             `json:"attempts,omitempty"`
	Error      string          `json:"error,omitempty"`
	Table      json.RawMessage `json:"table,omitempty"`
}

// Status is a job snapshot: the counts load balancers and CLIs poll, plus
// (on request) per-cell detail with the completed cells' tables — partial
// results stream out while the job still runs.
type Status struct {
	ID        string       `json:"id"`
	Status    string       `json:"status"`
	Weight    int          `json:"weight"`
	Total     int          `json:"total"`
	Completed int          `json:"completed"`
	Poisoned  int          `json:"poisoned"`
	Cancelled int          `json:"cancelled"`
	Running   int          `json:"running"`
	Pending   int          `json:"pending"`
	Cells     []CellStatus `json:"cells,omitempty"`
}

// statusLocked assembles a snapshot; bodies are aliased, not copied — they
// are write-once after a cell completes.
//
//lint:locked mu
func (j *Job) statusLocked(withCells bool) *Status {
	st := &Status{ID: j.id, Status: j.status, Weight: j.weight, Total: len(j.cells)}
	for i := range j.cells {
		c := &j.cells[i]
		switch c.state {
		case CellDone:
			st.Completed++
		case CellPoisoned:
			st.Poisoned++
		case CellCancelled:
			st.Cancelled++
		case CellRunning:
			st.Running++
		default:
			st.Pending++
		}
		if !withCells {
			continue
		}
		cs := CellStatus{
			Experiment: c.Experiment,
			Seed:       c.Config.Seed,
			Trials:     c.Config.Trials,
			MaxK:       c.Config.MaxK,
			Key:        c.Key,
			State:      c.state.String(),
			Attempts:   c.attempts,
			Error:      c.errMsg,
		}
		if c.state == CellDone {
			cs.Table = json.RawMessage(c.body)
		}
		st.Cells = append(st.Cells, cs)
	}
	return st
}

// Ledger is the jobs conservation snapshot for /metrics. At drain
// (InFlight == Pending == 0) the cells ledger conserves:
// CellsSubmitted == CellsCompleted + CellsPoisoned + CellsCancelled.
type Ledger struct {
	JobsSubmitted int64 `json:"submitted"`
	JobsActive    int64 `json:"active"`
	JobsCompleted int64 `json:"completed"`
	JobsPartial   int64 `json:"partial"`
	JobsCancelled int64 `json:"cancelled"`

	CellsSubmitted int64 `json:"cells_submitted"`
	CellsCompleted int64 `json:"cells_completed"`
	CellsPoisoned  int64 `json:"cells_poisoned"`
	CellsCancelled int64 `json:"cells_cancelled"`
	CellsInFlight  int64 `json:"cells_in_flight"`
	CellsPending   int64 `json:"cells_pending"`

	Retries          int64 `json:"retries"`
	TransientSheds   int64 `json:"transient_sheds"`
	JournalErrors    int64 `json:"journal_errors"`
	SchedFaults      int64 `json:"sched_faults"`
	JournalTornBytes int64 `json:"journal_torn_bytes"`
}

// Manager owns the jobs: admission, the weighted-round-robin scheduler, the
// retry/poison machinery, and the journal.
type Manager struct {
	opts    Options
	ctx     context.Context
	cancel  context.CancelFunc
	journal *Journal
	// wake (1-buffered) kicks the scheduler; slots is the global
	// cell-concurrency semaphore — dispatch sends, completion receives, and
	// Close acquires every slot as its drain barrier.
	wake  chan struct{}
	slots chan struct{}

	mu sync.Mutex
	//lint:guardedby mu
	jobs map[string]*Job
	//lint:guardedby mu
	order []*Job // submission order; the round-robin ring
	//lint:guardedby mu
	seq int
	//lint:guardedby mu
	rr int // round-robin cursor into order
	//lint:guardedby mu
	closed bool

	jobsSubmitted  atomic.Int64
	jobsActive     atomic.Int64
	jobsCompleted  atomic.Int64
	jobsPartial    atomic.Int64
	jobsCancelled  atomic.Int64
	cellsSubmitted atomic.Int64
	cellsCompleted atomic.Int64
	cellsPoisoned  atomic.Int64
	cellsCancelled atomic.Int64
	cellsInFlight  atomic.Int64
	cellsPending   atomic.Int64
	retries        atomic.Int64
	transientSheds atomic.Int64
	journalErrs    atomic.Int64
	schedFaults    atomic.Int64
	tornBytes      atomic.Int64
}

// Open builds a Manager, replays the journal when Dir is set (resuming any
// non-terminal jobs with their journaled cells pre-completed), and starts
// the scheduler.
func Open(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if opts.Run == nil {
		return nil, errors.New("jobs: Options.Run is required")
	}
	m := &Manager{
		opts:  opts,
		wake:  make(chan struct{}, 1),
		slots: make(chan struct{}, opts.CellConcurrency),
		jobs:  map[string]*Job{},
	}
	m.ctx, m.cancel = context.WithCancel(context.Background())
	if opts.Dir != "" {
		j, rep, err := OpenJournal(opts.Dir)
		if err != nil {
			return nil, err
		}
		m.journal = j
		m.tornBytes.Store(rep.TornBytes)
		m.restore(rep)
	}
	go m.schedule()
	m.kick()
	return m, nil
}

// restore rebuilds jobs from a journal replay: journaled cells are
// pre-marked done with their bodies attached, poisoned cells keep their
// error text, and everything else re-enters the queue — restart recomputes
// only the work the crash actually destroyed.
func (m *Manager) restore(rep *Replay) {
	for _, rj := range rep.Jobs {
		var spec Spec
		if err := json.Unmarshal(rj.SpecJSON, &spec); err != nil {
			m.journalErrs.Add(1)
			continue
		}
		norm, err := spec.normalize(m.opts.MaxCellsPerJob)
		if err != nil {
			// The journaled spec no longer validates (e.g. an experiment
			// retired across versions): drop the job rather than the journal.
			m.journalErrs.Add(1)
			continue
		}
		j := m.newJob(rj.ID, norm)
		var pending []int
		j.mu.Lock()
		for i := range j.cells {
			c := &j.cells[i]
			if body, ok := rep.Bodies[c.Key]; ok {
				c.state = CellDone
				c.body = body
				m.cellsCompleted.Add(1)
				continue
			}
			if msg, ok := rj.Poisoned[c.Key]; ok {
				c.state = CellPoisoned
				c.errMsg = msg
				c.attempts = m.opts.Retries
				m.cellsPoisoned.Add(1)
				continue
			}
			if rj.Terminal != "" {
				c.state = CellCancelled
				m.cellsCancelled.Add(1)
				continue
			}
			pending = append(pending, i)
		}
		j.queue = pending
		terminal := rj.Terminal
		if terminal == "" && len(pending) == 0 {
			// Crash landed between the last cell record and the terminal
			// record: finish the bookkeeping now.
			if j.anyPoisonedLocked() {
				terminal = JobPartial
			} else {
				terminal = JobCompleted
			}
			m.appendTerminal(j.id, terminal)
		}
		if terminal != "" {
			j.status = terminal
			j.settled = true
			close(j.done)
		}
		j.mu.Unlock()

		m.jobsSubmitted.Add(1)
		m.cellsSubmitted.Add(int64(j.total))
		m.cellsPending.Add(int64(len(pending)))
		switch terminal {
		case "":
			m.jobsActive.Add(1)
		case JobCompleted:
			m.jobsCompleted.Add(1)
		case JobPartial:
			m.jobsPartial.Add(1)
		default:
			m.jobsCancelled.Add(1)
		}

		m.mu.Lock()
		m.jobs[j.id] = j
		m.order = append(m.order, j)
		if n, err := strconv.Atoi(trimJobPrefix(j.id)); err == nil && n > m.seq {
			m.seq = n
		}
		m.mu.Unlock()
	}
}

// trimJobPrefix strips the "j" ID prefix for sequence recovery.
func trimJobPrefix(id string) string {
	if len(id) > 0 && id[0] == 'j' {
		return id[1:]
	}
	return id
}

func (m *Manager) newJob(id string, spec Spec) *Job {
	specCells := spec.cells()
	cells := make([]cellState, len(specCells))
	queue := make([]int, len(specCells))
	for i, c := range specCells {
		cells[i].Cell = c
		queue[i] = i
	}
	j := &Job{
		id:     id,
		weight: spec.Weight,
		spec:   spec,
		total:  len(specCells),
		done:   make(chan struct{}),
		cells:  cells,
		queue:  queue,
		status: JobRunning,
		credit: spec.Weight,
	}
	j.ctx, j.cancel = context.WithCancel(m.ctx)
	return j
}

// Submit validates and admits a job, journals its creation, and wakes the
// scheduler. It returns immediately with the job's initial status.
func (m *Manager) Submit(spec Spec) (*Status, error) {
	norm, err := spec.normalize(m.opts.MaxCellsPerJob)
	if err != nil {
		return nil, err
	}
	specJSON, err := json.Marshal(norm)
	if err != nil {
		return nil, fmt.Errorf("jobs: marshal spec: %w", err)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if m.jobsActive.Load() >= int64(m.opts.MaxJobs) {
		m.mu.Unlock()
		return nil, ErrTooManyJobs
	}
	// Incremented under m.mu so concurrent Submits cannot all pass the
	// admission check above and overshoot MaxJobs; decrements elsewhere are
	// lock-free, which only ever frees capacity early.
	m.jobsActive.Add(1)
	m.seq++
	id := "j" + strconv.Itoa(m.seq)
	j := m.newJob(id, norm)
	m.jobs[id] = j
	m.order = append(m.order, j)
	m.mu.Unlock()

	m.jobsSubmitted.Add(1)
	m.cellsSubmitted.Add(int64(j.total))
	m.cellsPending.Add(int64(j.total))
	if m.journal != nil {
		if jerr := m.journal.AppendJobCreated(id, specJSON); jerr != nil {
			// Graceful degradation: the job still runs, it just cannot be
			// resumed after a crash. Counted, not fatal.
			m.journalErrs.Add(1)
		}
	}
	m.kick()
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(false), nil
}

// Status snapshots one job; withCells includes per-cell detail and the
// completed cells' tables.
func (m *Manager) Status(id string, withCells bool) (*Status, bool) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(withCells), true
}

// List snapshots every job in submission order, without cell detail.
func (m *Manager) List() []*Status {
	m.mu.Lock()
	jobs := make([]*Job, len(m.order))
	copy(jobs, m.order)
	m.mu.Unlock()
	out := make([]*Status, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		out = append(out, j.statusLocked(false))
		j.mu.Unlock()
	}
	return out
}

// Wait returns a channel that closes when the job settles (terminal status
// and no cell still in flight).
func (m *Manager) Wait(id string) (<-chan struct{}, bool) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return nil, false
	}
	return j.done, true
}

// Cancel moves a running job to cancelled: pending cells are cancelled
// immediately, in-flight cells are interrupted via the job's context, and
// the cancellation is journaled so a restart does not resurrect the job.
// Cancelling a terminal job is a no-op returning its status.
func (m *Manager) Cancel(id string) (*Status, bool) {
	m.mu.Lock()
	j := m.jobs[id]
	m.mu.Unlock()
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	if j.status != JobRunning {
		defer j.mu.Unlock()
		return j.statusLocked(false), true
	}
	j.status = JobCancelled
	for _, ci := range j.queue {
		j.cells[ci].state = CellCancelled
		m.cellsCancelled.Add(1)
		m.cellsPending.Add(-1)
	}
	j.queue = nil
	settle := j.running == 0 && !j.settled
	if settle {
		j.settled = true
	}
	st := j.statusLocked(false)
	j.mu.Unlock()
	if settle {
		close(j.done)
	}
	j.cancel()
	m.jobsActive.Add(-1)
	m.jobsCancelled.Add(1)
	m.appendTerminal(id, JobCancelled)
	m.kick()
	return st, true
}

// Ledger snapshots the jobs conservation counters.
func (m *Manager) Ledger() Ledger {
	return Ledger{
		JobsSubmitted: m.jobsSubmitted.Load(),
		JobsActive:    m.jobsActive.Load(),
		JobsCompleted: m.jobsCompleted.Load(),
		JobsPartial:   m.jobsPartial.Load(),
		JobsCancelled: m.jobsCancelled.Load(),

		CellsSubmitted: m.cellsSubmitted.Load(),
		CellsCompleted: m.cellsCompleted.Load(),
		CellsPoisoned:  m.cellsPoisoned.Load(),
		CellsCancelled: m.cellsCancelled.Load(),
		CellsInFlight:  m.cellsInFlight.Load(),
		CellsPending:   m.cellsPending.Load(),

		Retries:          m.retries.Load(),
		TransientSheds:   m.transientSheds.Load(),
		JournalErrors:    m.journalErrs.Load(),
		SchedFaults:      m.schedFaults.Load(),
		JournalTornBytes: m.tornBytes.Load(),
	}
}

// Close drains the manager: no new dispatches, in-flight cells get until
// ctx expires to finish (their results still journal), then everything is
// hard-cancelled and the journal closes. Close never writes terminal
// records — interrupted jobs stay resumable, which is the whole point.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.kick()
	// Acquiring every slot is the drain barrier: each in-flight cell holds
	// one until it finishes, and dispatch (which must acquire before
	// launching) finds the scheduler refusing new work.
	held := 0
	for held < cap(m.slots) {
		select {
		case m.slots <- struct{}{}:
			held++
		case <-ctx.Done():
			held = cap(m.slots) // give up waiting; hard-cancel below
		}
	}
	m.cancel()
	if m.journal != nil {
		return m.journal.Close()
	}
	return nil
}

// kick nudges the scheduler; the 1-buffered channel coalesces bursts.
func (m *Manager) kick() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// appendTerminal journals a terminal record, counting (not propagating)
// failures: journal loss degrades durability, never liveness.
func (m *Manager) appendTerminal(id, status string) {
	if m.journal == nil {
		return
	}
	if err := m.journal.AppendTerminal(id, status); err != nil {
		m.journalErrs.Add(1)
	}
}

// Scheduler pacing when it cannot make progress for reasons a wake-up
// cannot fix (armed jobs.sched fault, busy engine pool).
const schedPause = 2 * time.Millisecond

// schedule is the single scheduler goroutine: it sleeps on the wake channel
// and drains dispatchable cells. An injected jobs.sched panic is contained
// here and the scheduler relaunches itself, so a chaos storm can never
// wedge dispatch permanently.
func (m *Manager) schedule() {
	defer func() {
		if r := recover(); r != nil {
			m.schedFaults.Add(1)
			if m.ctx.Err() == nil {
				m.opts.Sleep(schedPause)
				m.kick()
				go m.schedule()
			}
		}
	}()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-m.wake:
		}
		m.dispatchLoop()
	}
}

// dispatchLoop launches cells until slots, work, or pool capacity run out.
func (m *Manager) dispatchLoop() {
	for {
		if m.ctx.Err() != nil {
			return
		}
		if err := fault.Fire(fault.PointJobsSched); err != nil {
			m.schedFaults.Add(1)
			m.opts.Sleep(schedPause)
			continue
		}
		select {
		case m.slots <- struct{}{}:
		default:
			return // all cell slots busy; a completion will kick us
		}
		j, ci, spec, ok := m.nextDispatch()
		if !ok {
			<-m.slots
			return // nothing dispatchable; a submit/completion will kick us
		}
		release, ok := m.opts.Pool.TryToken(m.opts.PoolReserve)
		if !ok {
			// Engine pool busy with interactive work: put the cell back and
			// retry shortly — batch only consumes idle capacity.
			m.requeue(j, ci)
			<-m.slots
			m.opts.Sleep(schedPause)
			continue
		}
		m.cellsPending.Add(-1)
		m.cellsInFlight.Add(1)
		go m.runCell(j, ci, spec, release)
	}
}

// nextDispatch picks the next cell under weighted round-robin: the cursor
// walks the submission ring, each job spends up to `weight` credits before
// the cursor moves on, and jobs that are terminal, drained, or at their
// per-job concurrency bound are skipped (with their credit refreshed for
// the next cycle).
func (m *Manager) nextDispatch() (*Job, int, Cell, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, 0, Cell{}, false
	}
	n := len(m.order)
	for scanned := 0; scanned < n; scanned++ {
		if m.rr >= n {
			m.rr = 0
		}
		j := m.order[m.rr]
		j.mu.Lock()
		if j.status == JobRunning && len(j.queue) > 0 && j.running < m.opts.PerJobConcurrency {
			ci := j.queue[0]
			j.queue = j.queue[1:]
			j.cells[ci].state = CellRunning
			j.running++
			j.credit--
			if j.credit <= 0 {
				j.credit = j.weight
				m.rr++
			}
			spec := j.cells[ci].Cell
			j.mu.Unlock()
			return j, ci, spec, true
		}
		j.credit = j.weight
		j.mu.Unlock()
		m.rr++
	}
	return nil, 0, Cell{}, false
}

// requeue undoes a dispatch that could not launch (pool busy): the cell
// returns to the front of its job's queue.
func (m *Manager) requeue(j *Job, ci int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cells[ci].state == CellRunning {
		j.cells[ci].state = CellPending
		j.running--
		j.queue = append([]int{ci}, j.queue...)
	}
}

// runCell is one cell's worker: the attempt loop, then journaling, state
// commit, and terminal detection. It owns one concurrency slot and one pool
// token for its whole duration.
func (m *Manager) runCell(j *Job, ci int, spec Cell, release func()) {
	defer func() {
		release()
		<-m.slots
		m.kick()
	}()
	state, body, errMsg, attempts := m.attemptLoop(j, spec)

	// Journal before the in-memory commit: by the time Status reports the
	// cell done, it is durable. Journal failures degrade gracefully — the
	// result stays live in memory and in the service cache, it just gets
	// recomputed after a crash.
	if m.journal != nil {
		switch state {
		case CellDone:
			if err := m.journal.AppendCell(spec.Key, body); err != nil {
				m.journalErrs.Add(1)
			}
		case CellPoisoned:
			if err := m.journal.AppendPoison(j.id, spec.Key, errMsg); err != nil {
				m.journalErrs.Add(1)
			}
		}
	}

	m.cellsInFlight.Add(-1)

	// A cell cancelled by manager shutdown — not by its job — was merely
	// interrupted: put it back in the queue instead of resolving it, and
	// above all write no terminal record. A killed process must leave the
	// job looking exactly like a crash did, so restart resumes it.
	if state == CellCancelled && m.ctx.Err() != nil {
		j.mu.Lock()
		if j.status == JobRunning {
			j.cells[ci].state = CellPending
			j.queue = append([]int{ci}, j.queue...)
			j.running--
			j.mu.Unlock()
			m.cellsPending.Add(1)
			return
		}
		j.mu.Unlock()
	}

	switch state {
	case CellDone:
		m.cellsCompleted.Add(1)
	case CellPoisoned:
		m.cellsPoisoned.Add(1)
	default:
		m.cellsCancelled.Add(1)
	}

	terminal := ""
	j.mu.Lock()
	c := &j.cells[ci]
	c.state = state
	c.attempts = attempts
	c.body = body
	c.errMsg = errMsg
	j.running--
	if j.status == JobRunning && j.running == 0 && len(j.queue) == 0 {
		if j.anyPoisonedLocked() {
			j.status = JobPartial
		} else {
			j.status = JobCompleted
		}
		terminal = j.status
	}
	settle := j.status != JobRunning && j.running == 0 && !j.settled
	if settle {
		j.settled = true
	}
	j.mu.Unlock()
	if settle {
		close(j.done)
	}
	if terminal != "" {
		m.jobsActive.Add(-1)
		if terminal == JobPartial {
			m.jobsPartial.Add(1)
		} else {
			m.jobsCompleted.Add(1)
		}
		m.appendTerminal(j.id, terminal)
	}
}

// attemptLoop runs one cell to a terminal state: success, poison after the
// attempt budget, or cancellation. Transient errors (admission sheds, as
// classified by Options.Transient) retry with backoff without consuming the
// budget; real failures consume it. Panics in the runner are contained per
// attempt and count as real failures.
func (m *Manager) attemptLoop(j *Job, spec Cell) (CellState, []byte, string, int) {
	failures := 0
	waits := 0
	for {
		if j.ctx.Err() != nil {
			return CellCancelled, nil, "", failures
		}
		body, err := m.attempt(j.ctx, spec)
		if err == nil {
			return CellDone, body, "", failures + 1
		}
		if j.ctx.Err() != nil {
			return CellCancelled, nil, "", failures
		}
		if m.opts.Transient != nil && m.opts.Transient(err) {
			m.transientSheds.Add(1)
			waits++
			m.sleepBackoff(spec.Key, waits)
			continue
		}
		failures++
		if failures >= m.opts.Retries {
			return CellPoisoned, nil, err.Error(), failures
		}
		m.retries.Add(1)
		m.sleepBackoff(spec.Key, failures)
	}
}

// attempt executes the runner once with panic containment and the jobs.cell
// injection point in front, so chaos storms exercise exactly the retry
// paths production failures would.
func (m *Manager) attempt(ctx context.Context, spec Cell) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: cell %s seed=%d maxk=%d panicked: %v",
				spec.Experiment, spec.Config.Seed, spec.Config.MaxK, r)
		}
	}()
	if ferr := fault.Fire(fault.PointJobsCell); ferr != nil {
		return nil, ferr
	}
	return m.opts.Run(ctx, spec.Experiment, spec.Config)
}

// sleepBackoff sleeps the capped exponential backoff for a cell's n-th
// consecutive setback, jittered into [0.5, 1)× by a deterministic stream
// split per (seed, cell, n) — the same discipline as the service client's
// retry jitter, so a chaos replay at a fixed seed schedules identically.
func (m *Manager) sleepBackoff(key string, n int) {
	d := m.opts.BaseDelay
	for i := 1; i < n && d < m.opts.MaxDelay; i++ {
		d *= 2
	}
	if d > m.opts.MaxDelay {
		d = m.opts.MaxDelay
	}
	src := xrand.New(xrand.Split(m.opts.Seed, "jobs/backoff/"+key, int64(n)))
	m.opts.Sleep(time.Duration((0.5 + 0.5*src.Float64()) * float64(d)))
}
