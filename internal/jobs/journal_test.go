package jobs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func journalPath(dir string) string { return filepath.Join(dir, journalFile) }

// mustAppend writes one record of each caller-chosen shape, failing the test
// on error; journal appends are fsync'd, so the file on disk is always
// current afterwards.
func mustAppend(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("append: %v", err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rep, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if len(rep.Jobs) != 0 || len(rep.Bodies) != 0 || rep.TornBytes != 0 {
		t.Fatalf("fresh journal replay not empty: %+v", rep)
	}
	spec := []byte(`{"experiments":["E1"],"seed_count":2}`)
	mustAppend(t, j.AppendJobCreated("j1", spec))
	mustAppend(t, j.AppendCell("key1", []byte("body1")))
	mustAppend(t, j.AppendPoison("j1", "key2", "boom"))
	mustAppend(t, j.AppendTerminal("j1", JobPartial))
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rep2, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if rep2.TornBytes != 0 {
		t.Fatalf("clean file reports torn bytes: %d", rep2.TornBytes)
	}
	if got := rep2.Bodies["key1"]; !bytes.Equal(got, []byte("body1")) {
		t.Fatalf("body round-trip: got %q", got)
	}
	if len(rep2.Jobs) != 1 {
		t.Fatalf("jobs: got %d, want 1", len(rep2.Jobs))
	}
	rj := rep2.Jobs[0]
	if rj.ID != "j1" || !bytes.Equal(rj.SpecJSON, spec) {
		t.Fatalf("job round-trip: %+v", rj)
	}
	if rj.Poisoned["key2"] != "boom" {
		t.Fatalf("poison round-trip: %+v", rj.Poisoned)
	}
	if rj.Terminal != JobPartial {
		t.Fatalf("terminal round-trip: %q", rj.Terminal)
	}
}

// buildTestJournal writes a few records and returns the file bytes plus the
// record boundary offsets (file size after each append).
func buildTestJournal(t *testing.T) (data []byte, bounds []int64) {
	t.Helper()
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	appends := []func() error{
		func() error { return j.AppendJobCreated("j1", []byte(`{"experiments":["E1"]}`)) },
		func() error { return j.AppendCell("cell-a", []byte("alpha")) },
		func() error { return j.AppendCell("cell-b", []byte("beta")) },
		func() error { return j.AppendPoison("j1", "cell-c", "gamma failed") },
		func() error { return j.AppendTerminal("j1", JobPartial) },
	}
	for _, ap := range appends {
		mustAppend(t, ap())
		fi, err := os.Stat(journalPath(dir))
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		bounds = append(bounds, fi.Size())
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err = os.ReadFile(journalPath(dir))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return data, bounds
}

// TestJournalTruncatedTailProperty checks every possible torn tail: for each
// prefix of a valid journal, replay must (a) never panic, (b) stop at a true
// frame boundary no later than the cut, (c) recover exactly the records whose
// frames survived whole, and (d) be stable — replaying the valid prefix again
// reproduces the same parse.
func TestJournalTruncatedTailProperty(t *testing.T) {
	data, bounds := buildTestJournal(t)
	full, validFull := replayBytes(data)
	if validFull != len(data) {
		t.Fatalf("intact journal parsed to %d of %d bytes", validFull, len(data))
	}
	if len(full) != len(bounds) {
		t.Fatalf("intact journal parsed %d records, want %d", len(full), len(bounds))
	}
	for n := 0; n <= len(data); n++ {
		recs, valid := replayBytes(data[:n])
		if valid > n {
			t.Fatalf("prefix %d: valid offset %d beyond cut", n, valid)
		}
		// The surviving records must be exactly those whose frames fit in n.
		want := 0
		for _, b := range bounds {
			if int64(n) >= b {
				want++
			}
		}
		if len(recs) != want {
			t.Fatalf("prefix %d: got %d records, want %d", n, len(recs), want)
		}
		if want > 0 && valid != int(bounds[want-1]) {
			t.Fatalf("prefix %d: valid offset %d, want boundary %d", n, valid, bounds[want-1])
		}
		for i, rec := range recs {
			if rec.kind != full[i].kind || !bytes.Equal(rec.a, full[i].a) ||
				!bytes.Equal(rec.b, full[i].b) || !bytes.Equal(rec.c, full[i].c) {
				t.Fatalf("prefix %d: record %d diverges from intact parse", n, i)
			}
		}
		recs2, valid2 := replayBytes(data[:valid])
		if valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("prefix %d: reparse of valid prefix unstable (%d/%d vs %d/%d)",
				n, valid2, len(recs2), valid, len(recs))
		}
	}
}

// TestJournalOpenTruncatesTornTail proves a torn write is dropped, not fatal:
// Open on a file cut mid-record truncates to the last good boundary, reports
// the loss, and appends land cleanly afterwards.
func TestJournalOpenTruncatesTornTail(t *testing.T) {
	data, bounds := buildTestJournal(t)
	cut := int(bounds[2]) + 5 // mid-way through the 4th record's frame
	dir := t.TempDir()
	if err := os.WriteFile(journalPath(dir), data[:cut], 0o644); err != nil {
		t.Fatalf("write torn file: %v", err)
	}
	j, rep, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal on torn file: %v", err)
	}
	if rep.TornBytes != int64(cut)-bounds[2] {
		t.Fatalf("TornBytes = %d, want %d", rep.TornBytes, int64(cut)-bounds[2])
	}
	if len(rep.Bodies) != 2 || rep.Jobs[0].Terminal != "" {
		t.Fatalf("torn replay wrong: bodies=%d terminal=%q", len(rep.Bodies), rep.Jobs[0].Terminal)
	}
	fi, err := os.Stat(journalPath(dir))
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if fi.Size() != bounds[2] {
		t.Fatalf("torn tail not truncated: size %d, want %d", fi.Size(), bounds[2])
	}
	// Append after the truncation: the new record must parse on reopen.
	mustAppend(t, j.AppendCell("cell-d", []byte("delta")))
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, rep2, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if rep2.TornBytes != 0 {
		t.Fatalf("reopen after repair reports torn bytes: %d", rep2.TornBytes)
	}
	if got := rep2.Bodies["cell-d"]; !bytes.Equal(got, []byte("delta")) {
		t.Fatalf("post-repair append lost: %q", got)
	}
}

// TestJournalDuplicateCellLastWins: duplicate cell records are idempotent and
// the latest body wins, so retried appends and re-submissions are harmless.
func TestJournalDuplicateCellLastWins(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	mustAppend(t, j.AppendCell("k", []byte("first")))
	mustAppend(t, j.AppendCell("k", []byte("second")))
	mustAppend(t, j.AppendCell("k", []byte("third")))
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, rep, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if got := rep.Bodies["k"]; !bytes.Equal(got, []byte("third")) {
		t.Fatalf("duplicate cell replay: got %q, want last write", got)
	}
}

// TestJournalCorruptionStopsScan: a bit flip inside a record fails its CRC
// and replay refuses everything from there on — frame boundaries downstream
// of corruption cannot be trusted, even if later records happen to be intact.
func TestJournalCorruptionStopsScan(t *testing.T) {
	data, bounds := buildTestJournal(t)
	corrupt := append([]byte(nil), data...)
	corrupt[bounds[1]+frameHeader+2] ^= 0xff // inside record 3's payload
	recs, valid := replayBytes(corrupt)
	if len(recs) != 2 {
		t.Fatalf("corrupt scan returned %d records, want 2", len(recs))
	}
	if valid != int(bounds[1]) {
		t.Fatalf("corrupt scan valid offset %d, want %d", valid, bounds[1])
	}
}

// TestJournalOversizedRecordRejected: an append whose payload exceeds the
// frame bound must fail up front — replay refuses such frames, so writing
// one would make the next OpenJournal truncate it *and every valid record
// appended after it*. The oversized body is never touched, so the 256MiB
// slice stays zero-page-backed and cheap.
func TestJournalOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	huge := make([]byte, maxPayload) // + kind/length framing pushes past the bound
	if err := j.AppendCell("big", huge); err != errRecordTooLarge {
		t.Fatalf("oversized append: got %v, want errRecordTooLarge", err)
	}
	// The journal is still usable and the file still replays cleanly.
	mustAppend(t, j.AppendCell("after", []byte("ok")))
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, rep, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if rep.TornBytes != 0 {
		t.Fatalf("torn bytes after rejected append: %d", rep.TornBytes)
	}
	if got := rep.Bodies["after"]; !bytes.Equal(got, []byte("ok")) {
		t.Fatalf("record after rejected append lost: %q", got)
	}
	if _, ok := rep.Bodies["big"]; ok {
		t.Fatal("oversized record landed on disk")
	}
}

// TestJournalAppendAfterClose: appends on a closed journal fail loudly rather
// than writing to a dead descriptor, and Close is idempotent.
func TestJournalAppendAfterClose(t *testing.T) {
	j, _, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.AppendCell("k", nil); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
