package jobs

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// frame encodes one record the way appendRecord does, for building fuzz
// seeds without touching the filesystem.
func frame(kind byte, a, b, c []byte) []byte {
	payload := []byte{kind}
	for _, f := range [][]byte{a, b, c} {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(f)))
		payload = append(payload, f...)
	}
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// FuzzJournalReplay throws raw bytes at the replay parser. Invariants: no
// panic ever; the reported valid offset is a real frame boundary inside the
// input; reparsing the valid prefix is stable (same records, same offset);
// and buildReplay folds whatever parsed without panicking.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a journal at all"))
	valid := frame(recJobCreated, []byte("j1"), nil, []byte(`{"experiments":["E1"]}`))
	valid = append(valid, frame(recCellDone, []byte("key1"), nil, []byte("body"))...)
	valid = append(valid, frame(recCellPoisoned, []byte("j1"), []byte("key2"), []byte("boom"))...)
	valid = append(valid, frame(recJobTerminal, []byte("j1"), []byte(JobPartial), nil)...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	corrupt := append([]byte(nil), valid...)
	corrupt[9] ^= 0x40 // payload bit flip in the first record
	f.Add(corrupt)
	// A frame whose declared length overruns the buffer, and one declaring
	// an absurd length that must not trigger a giant allocation.
	f.Add(frame(recCellDone, []byte("k"), nil, bytes.Repeat([]byte("x"), 64))[:20])
	huge := binary.LittleEndian.AppendUint32(nil, uint32(maxPayload))
	huge = binary.LittleEndian.AppendUint32(huge, 0)
	f.Add(huge)
	// Unknown kind and trailing-garbage payloads must stop the scan.
	f.Add(frame(99, []byte("a"), nil, nil))
	f.Add(frame(recCellDone, []byte("a"), nil, append([]byte("b"), 0, 0, 0)))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := replayBytes(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d outside [0,%d]", valid, len(data))
		}
		recs2, valid2 := replayBytes(data[:valid])
		if valid2 != valid {
			t.Fatalf("reparse moved the boundary: %d -> %d", valid, valid2)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("reparse record count changed: %d -> %d", len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i].kind != recs2[i].kind || !bytes.Equal(recs[i].a, recs2[i].a) ||
				!bytes.Equal(recs[i].b, recs2[i].b) || !bytes.Equal(recs[i].c, recs2[i].c) {
				t.Fatalf("reparse record %d differs", i)
			}
		}
		rep := buildReplay(recs)
		if rep == nil || rep.Bodies == nil {
			t.Fatal("buildReplay returned nil maps")
		}
	})
}
