package jobs

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func TestSpecNormalizeDefaults(t *testing.T) {
	def := core.DefaultConfig()
	got, err := Spec{Experiments: []string{"E1"}}.normalize(4096)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if got.SeedStart != def.Seed || got.SeedCount != 1 || got.Trials != def.Trials ||
		got.MaxKMax != def.MaxK || got.MaxKMin != def.MaxK || got.Weight != 1 {
		t.Fatalf("defaults: %+v (core default %+v)", got, def)
	}
	if n := len(got.cells()); n != 1 {
		t.Fatalf("default spec yields %d cells, want 1", n)
	}
}

func TestSpecNormalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		max  int
	}{
		{"no experiments", Spec{}, 4096},
		{"unknown experiment", Spec{Experiments: []string{"E999"}}, 4096},
		{"duplicate experiment", Spec{Experiments: []string{"E1", "E1"}}, 4096},
		{"negative seed count", Spec{Experiments: []string{"E1"}, SeedCount: -1}, 4096},
		{"inverted maxk range", Spec{Experiments: []string{"E1"}, MaxKMin: 5, MaxKMax: 4}, 4096},
		{"weight too large", Spec{Experiments: []string{"E1"}, Weight: maxWeight + 1}, 4096},
		{"negative weight", Spec{Experiments: []string{"E1"}, Weight: -1}, 4096},
		{"over the cell cap", Spec{Experiments: []string{"E1"}, SeedCount: 10}, 9},
		{"invalid corner config", Spec{Experiments: []string{"E1"}, Trials: -1}, 4096},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.normalize(tc.max); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("want ErrBadSpec, got %v", err)
			}
		})
	}
	// The unknown-experiment rejection must also unwrap to the core sentinel,
	// so the service maps it to 404 like /v1/run does.
	_, err := Spec{Experiments: []string{"E999"}}.normalize(4096)
	if !errors.Is(err, core.ErrUnknownExperiment) {
		t.Fatalf("unknown experiment should wrap core.ErrUnknownExperiment: %v", err)
	}
}

// TestSpecCellsCanonicalOrder pins the enumeration order (experiment, then
// seed offset, then maxk) and the content addresses: journal replay, status
// indices, and the /v1/run cache must all agree on cell identity.
func TestSpecCellsCanonicalOrder(t *testing.T) {
	spec, err := Spec{
		Experiments: []string{"E1", "E3"},
		SeedStart:   10, SeedCount: 2,
		Trials:  2,
		MaxKMin: 4, MaxKMax: 5,
	}.normalize(4096)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	cells := spec.cells()
	if len(cells) != 8 {
		t.Fatalf("cell count: %d, want 8", len(cells))
	}
	i := 0
	for _, id := range []string{"E1", "E3"} {
		for seed := uint64(10); seed <= 11; seed++ {
			for k := 4; k <= 5; k++ {
				c := cells[i]
				if c.Experiment != id || c.Config.Seed != seed || c.Config.MaxK != k || c.Config.Trials != 2 {
					t.Fatalf("cell %d out of canonical order: %+v", i, c)
				}
				if want := core.CacheKey(id, c.Config); c.Key != want {
					t.Fatalf("cell %d key %s, want the /v1/run cache key %s", i, c.Key, want)
				}
				i++
			}
		}
	}
}
