package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
)

func instantSleep(time.Duration) {}

// testOpts is the base manager configuration for unit tests: tight backoff,
// an injected instant sleeper, and a private 1-worker pool so TryToken always
// trivially succeeds (its zero-capacity token bucket path) regardless of what
// other tests do to the shared pool.
func testOpts(run CellRunner) Options {
	return Options{
		Retries:         2,
		CellConcurrency: 2,
		BaseDelay:       time.Microsecond,
		MaxDelay:        time.Microsecond,
		Sleep:           instantSleep,
		Run:             run,
		Pool:            engine.New(1),
	}
}

// spec4 is the standard 4-cell grid: 2 seeds × maxk {3,4} of E1 at 2 trials.
func spec4() Spec {
	return Spec{Experiments: []string{"E1"}, SeedStart: 11, SeedCount: 2, Trials: 2, MaxKMin: 4, MaxKMax: 5}
}

// echoBody is the deterministic stub result for a cell.
func echoBody(id string, cfg core.Config) []byte {
	return []byte(fmt.Sprintf("%s/%d/%d/%d", id, cfg.Seed, cfg.Trials, cfg.MaxK))
}

func echoRunner(_ context.Context, id string, cfg core.Config) ([]byte, error) {
	return echoBody(id, cfg), nil
}

func waitSettled(t *testing.T, m *Manager, id string) *Status {
	t.Helper()
	ch, ok := m.Wait(id)
	if !ok {
		t.Fatalf("Wait(%s): unknown job", id)
	}
	select {
	case <-ch:
	case <-time.After(30 * time.Second):
		st, _ := m.Status(id, false)
		t.Fatalf("job %s did not settle: %+v", id, st)
	}
	st, ok := m.Status(id, true)
	if !ok {
		t.Fatalf("Status(%s): unknown job", id)
	}
	return st
}

func closeManager(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// checkConservation asserts the drained-ledger invariant: every submitted
// cell is accounted for exactly once and nothing is still moving.
func checkConservation(t *testing.T, l Ledger) {
	t.Helper()
	if l.CellsInFlight != 0 || l.CellsPending != 0 {
		t.Fatalf("ledger not drained: in_flight=%d pending=%d", l.CellsInFlight, l.CellsPending)
	}
	if got := l.CellsCompleted + l.CellsPoisoned + l.CellsCancelled; got != l.CellsSubmitted {
		t.Fatalf("cells ledger does not conserve: %d completed + %d poisoned + %d cancelled != %d submitted",
			l.CellsCompleted, l.CellsPoisoned, l.CellsCancelled, l.CellsSubmitted)
	}
	if got := l.JobsCompleted + l.JobsPartial + l.JobsCancelled + l.JobsActive; got != l.JobsSubmitted {
		t.Fatalf("jobs ledger does not conserve: %d+%d+%d+%d != %d submitted",
			l.JobsCompleted, l.JobsPartial, l.JobsCancelled, l.JobsActive, l.JobsSubmitted)
	}
}

func TestJobRunsToCompletion(t *testing.T) {
	m, err := Open(testOpts(echoRunner))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(spec4())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.Total != 4 || st.Status != JobRunning {
		t.Fatalf("initial status: %+v", st)
	}
	fin := waitSettled(t, m, st.ID)
	if fin.Status != JobCompleted || fin.Completed != 4 || fin.Poisoned != 0 {
		t.Fatalf("final status: %+v", fin)
	}
	for _, c := range fin.Cells {
		if c.State != "done" {
			t.Fatalf("cell %s state %q", c.Key, c.State)
		}
		want := echoBody("E1", core.Config{Seed: c.Seed, Trials: c.Trials, MaxK: c.MaxK})
		if string(c.Table) != string(want) {
			t.Fatalf("cell %s body %q, want %q", c.Key, c.Table, want)
		}
	}
	l := m.Ledger()
	checkConservation(t, l)
	if l.CellsSubmitted != 4 || l.CellsCompleted != 4 || l.JobsCompleted != 1 {
		t.Fatalf("ledger: %+v", l)
	}
}

// TestRetryThenPoisonDegradesToPartial: one cell fails deterministically
// every attempt; it burns its budget, poisons, and the job lands "partial"
// with every other cell's table intact.
func TestRetryThenPoisonDegradesToPartial(t *testing.T) {
	run := func(ctx context.Context, id string, cfg core.Config) ([]byte, error) {
		if cfg.Seed == 11 && cfg.MaxK == 4 {
			return nil, errors.New("boom: synthetic cell failure")
		}
		return echoRunner(ctx, id, cfg)
	}
	m, err := Open(testOpts(run))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(spec4())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	fin := waitSettled(t, m, st.ID)
	if fin.Status != JobPartial || fin.Completed != 3 || fin.Poisoned != 1 {
		t.Fatalf("final status: %+v", fin)
	}
	for _, c := range fin.Cells {
		if c.Seed == 11 && c.MaxK == 4 {
			if c.State != "poisoned" || c.Attempts != 2 || c.Error == "" {
				t.Fatalf("poisoned cell: %+v", c)
			}
		} else if c.State != "done" {
			t.Fatalf("healthy cell %s state %q", c.Key, c.State)
		}
	}
	l := m.Ledger()
	checkConservation(t, l)
	if l.Retries != 1 || l.JobsPartial != 1 {
		t.Fatalf("ledger: retries=%d partial=%d", l.Retries, l.JobsPartial)
	}
}

// TestTransientErrorsDoNotConsumeBudget: admission sheds (as classified by
// Options.Transient) retry forever without burning attempts — with a budget
// of 1, five consecutive sheds would poison instantly if they counted.
func TestTransientErrorsDoNotConsumeBudget(t *testing.T) {
	shed := errors.New("synthetic overload")
	var sheds atomic.Int32
	run := func(ctx context.Context, id string, cfg core.Config) ([]byte, error) {
		if cfg.Seed == 11 && cfg.MaxK == 4 && sheds.Add(1) <= 5 {
			return nil, shed
		}
		return echoRunner(ctx, id, cfg)
	}
	opts := testOpts(run)
	opts.Retries = 1
	opts.Transient = func(err error) bool { return errors.Is(err, shed) }
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(spec4())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	fin := waitSettled(t, m, st.ID)
	if fin.Status != JobCompleted || fin.Completed != 4 {
		t.Fatalf("final status: %+v", fin)
	}
	l := m.Ledger()
	checkConservation(t, l)
	if l.TransientSheds != 5 || l.CellsPoisoned != 0 {
		t.Fatalf("ledger: sheds=%d poisoned=%d", l.TransientSheds, l.CellsPoisoned)
	}
}

// TestCancelInterruptsAndConserves: cancelling a running job cancels pending
// cells immediately, interrupts in-flight cells via context, settles, and the
// ledger still conserves. A second cancel is an idempotent no-op.
func TestCancelInterruptsAndConserves(t *testing.T) {
	block := func(ctx context.Context, id string, cfg core.Config) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	m, err := Open(testOpts(block))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(spec4())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for m.Ledger().CellsInFlight < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("cells never dispatched: %+v", m.Ledger())
		}
		time.Sleep(time.Millisecond)
	}
	cst, ok := m.Cancel(st.ID)
	if !ok || cst.Status != JobCancelled {
		t.Fatalf("Cancel: ok=%v %+v", ok, cst)
	}
	fin := waitSettled(t, m, st.ID)
	if fin.Status != JobCancelled || fin.Cancelled != 4 || fin.Completed != 0 {
		t.Fatalf("final status: %+v", fin)
	}
	again, ok := m.Cancel(st.ID)
	if !ok || again.Status != JobCancelled {
		t.Fatalf("second Cancel: ok=%v %+v", ok, again)
	}
	l := m.Ledger()
	checkConservation(t, l)
	if l.JobsCancelled != 1 || l.CellsCancelled != 4 {
		t.Fatalf("ledger: %+v", l)
	}
}

// TestSubmitSheddingAndClose: MaxJobs bounds active jobs with ErrTooManyJobs,
// bad specs are rejected before admission, and Submit after Close fails with
// ErrClosed.
func TestSubmitSheddingAndClose(t *testing.T) {
	block := func(ctx context.Context, id string, cfg core.Config) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	opts := testOpts(block)
	opts.MaxJobs = 1
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st, err := m.Submit(spec4())
	if err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	if _, err := m.Submit(spec4()); !errors.Is(err, ErrTooManyJobs) {
		t.Fatalf("over-admission error: %v", err)
	}
	if _, err := m.Submit(Spec{Experiments: []string{"nope"}}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bad spec error: %v", err)
	}
	if _, ok := m.Cancel(st.ID); !ok {
		t.Fatal("Cancel: unknown job")
	}
	waitSettled(t, m, st.ID)
	if _, err := m.Submit(spec4()); err != nil {
		t.Fatalf("Submit after cancel freed the slot: %v", err)
	}
	closeManager(t, m)
	if _, err := m.Submit(spec4()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
	if lst := m.List(); len(lst) != 2 {
		t.Fatalf("List: %d jobs, want 2", len(lst))
	}
}

// TestWeightedRoundRobinOrder pins the scheduler's fairness discipline: with
// one global slot the execution order equals the dispatch order, and a
// weight-2 job is offered two cells for every one a weight-1 job gets.
func TestWeightedRoundRobinOrder(t *testing.T) {
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []uint64
	run := func(ctx context.Context, id string, cfg core.Config) ([]byte, error) {
		<-gate
		mu.Lock()
		order = append(order, cfg.Seed)
		mu.Unlock()
		return echoBody(id, cfg), nil
	}
	opts := testOpts(run)
	opts.CellConcurrency = 1
	opts.PerJobConcurrency = 1
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	a, err := m.Submit(Spec{Experiments: []string{"E1"}, SeedStart: 100, SeedCount: 3, Trials: 2, MaxKMin: 4, MaxKMax: 4, Weight: 1})
	if err != nil {
		t.Fatalf("Submit A: %v", err)
	}
	b, err := m.Submit(Spec{Experiments: []string{"E1"}, SeedStart: 200, SeedCount: 6, Trials: 2, MaxKMin: 4, MaxKMax: 4, Weight: 2})
	if err != nil {
		t.Fatalf("Submit B: %v", err)
	}
	close(gate)
	waitSettled(t, m, a.ID)
	waitSettled(t, m, b.ID)
	mu.Lock()
	got := append([]uint64(nil), order...)
	mu.Unlock()
	want := []uint64{100, 200, 201, 101, 202, 203, 102, 204, 205}
	if len(got) != len(want) {
		t.Fatalf("executed %d cells, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order diverges at %d: got %v, want %v", i, got, want)
		}
	}
}

// killForTest simulates SIGKILL as closely as an in-process test can:
// hard-cancel every context, wait for in-flight cells to vacate their slots,
// and drop the journal descriptor without syncing and without writing any
// terminal record. Because each append fsync'd itself, nothing journaled is
// lost.
func (m *Manager) killForTest() {
	m.cancel()
	for i := 0; i < cap(m.slots); i++ {
		m.slots <- struct{}{}
	}
	if m.journal != nil {
		m.journal.abandon()
	}
}

// TestKillRestartResume is the crash-safety proof for the stub runner: kill
// the manager mid-sweep with exactly two cells journaled, restart on the same
// directory, and the resumed run must execute exactly the two missing cells
// and converge to the same per-cell bodies as an uninterrupted run.
func TestKillRestartResume(t *testing.T) {
	dir := t.TempDir()

	// Phase 1: first two cells complete, everything after blocks until the
	// kill's context cancellation releases it.
	var calls atomic.Int32
	blockAfter2 := func(ctx context.Context, id string, cfg core.Config) ([]byte, error) {
		if calls.Add(1) > 2 {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return echoBody(id, cfg), nil
	}
	opts := testOpts(blockAfter2)
	opts.Dir = dir
	m1, err := Open(opts)
	if err != nil {
		t.Fatalf("Open phase 1: %v", err)
	}
	st, err := m1.Submit(spec4())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, _ := m1.Status(st.ID, false)
		if cur.Completed == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached 2 completed cells: %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	doneBefore := map[string]bool{}
	withCells, _ := m1.Status(st.ID, true)
	for _, c := range withCells.Cells {
		if c.State == "done" {
			doneBefore[c.Key] = true
		}
	}
	m1.killForTest()

	// Phase 2: restart on the same directory with a runner that records what
	// it actually executes.
	var mu sync.Mutex
	executed := map[string]bool{}
	recording := func(ctx context.Context, id string, cfg core.Config) ([]byte, error) {
		mu.Lock()
		executed[core.CacheKey(id, cfg)] = true
		mu.Unlock()
		return echoBody(id, cfg), nil
	}
	opts2 := testOpts(recording)
	opts2.Dir = dir
	m2, err := Open(opts2)
	if err != nil {
		t.Fatalf("Open phase 2: %v", err)
	}
	defer closeManager(t, m2)
	resumed, ok := m2.Status(st.ID, false)
	if !ok {
		t.Fatalf("job %s not resumed from journal", st.ID)
	}
	if resumed.Completed != 2 {
		t.Fatalf("resume pre-marked %d cells done, want 2", resumed.Completed)
	}
	fin := waitSettled(t, m2, st.ID)
	if fin.Status != JobCompleted || fin.Completed != 4 {
		t.Fatalf("resumed final status: %+v", fin)
	}

	// Exactly the un-journaled cells re-ran; the journaled two did not.
	mu.Lock()
	defer mu.Unlock()
	if len(executed) != 2 {
		t.Fatalf("resume executed %d cells, want exactly the 2 missing: %v", len(executed), keysOf(executed))
	}
	for key := range executed {
		if doneBefore[key] {
			t.Fatalf("resume recomputed already-journaled cell %s", key)
		}
	}
	// Byte-identity with an uninterrupted run: every cell's body equals the
	// deterministic stub output, whether it came from the journal or a rerun.
	for _, c := range fin.Cells {
		want := echoBody("E1", core.Config{Seed: c.Seed, Trials: c.Trials, MaxK: c.MaxK})
		if string(c.Table) != string(want) {
			t.Fatalf("cell %s body %q, want %q", c.Key, c.Table, want)
		}
	}
	l := m2.Ledger()
	checkConservation(t, l)
	if l.CellsSubmitted != 4 || l.CellsCompleted != 4 || l.JobsCompleted != 1 {
		t.Fatalf("resumed ledger: %+v", l)
	}
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// realCellRunner runs the actual experiment and marshals its table with
// zeroed Metrics, the canonical body for byte-identity comparisons (Metrics
// carry wall-clock noise by design).
func realCellRunner(ctx context.Context, id string, cfg core.Config) ([]byte, error) {
	tab, err := core.RunContext(ctx, id, cfg)
	if err != nil {
		return nil, err
	}
	tab.Metrics = core.Metrics{}
	return json.Marshal(tab)
}

// TestResumeIdentityAcrossWorkerCounts is the end-to-end identity proof with
// the real experiment runner: a run interrupted at 4 engine workers and
// resumed must produce tables byte-identical to a direct serial computation
// at 1 worker — crash recovery and engine parallelism both invisible in the
// results.
func TestResumeIdentityAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiment cells")
	}
	spec := Spec{Experiments: []string{"E1"}, SeedStart: 7, SeedCount: 2, Trials: 2, MaxKMin: 4, MaxKMax: 5}
	norm, err := spec.normalize(4096)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}

	// Reference: direct, serial, uninterrupted.
	engine.SetSharedWorkers(1)
	defer engine.SetSharedWorkers(0)
	want := map[string][]byte{}
	for _, cell := range norm.cells() {
		body, err := realCellRunner(context.Background(), cell.Experiment, cell.Config)
		if err != nil {
			t.Fatalf("reference run %s: %v", cell.Key, err)
		}
		want[cell.Key] = body
	}

	// Interrupted run at a different worker count.
	engine.SetSharedWorkers(4)
	dir := t.TempDir()
	var calls atomic.Int32
	gated := func(ctx context.Context, id string, cfg core.Config) ([]byte, error) {
		if calls.Add(1) > 2 {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return realCellRunner(ctx, id, cfg)
	}
	opts := testOpts(gated)
	opts.Dir = dir
	m1, err := Open(opts)
	if err != nil {
		t.Fatalf("Open phase 1: %v", err)
	}
	st, err := m1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, _ := m1.Status(st.ID, false)
		if cur.Completed == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached 2 completed cells: %+v", cur)
		}
		time.Sleep(time.Millisecond)
	}
	m1.killForTest()

	var reruns atomic.Int32
	counting := func(ctx context.Context, id string, cfg core.Config) ([]byte, error) {
		reruns.Add(1)
		return realCellRunner(ctx, id, cfg)
	}
	opts2 := testOpts(counting)
	opts2.Dir = dir
	m2, err := Open(opts2)
	if err != nil {
		t.Fatalf("Open phase 2: %v", err)
	}
	defer closeManager(t, m2)
	fin := waitSettled(t, m2, st.ID)
	if fin.Status != JobCompleted || fin.Completed != 4 {
		t.Fatalf("resumed final status: %+v", fin)
	}
	if n := reruns.Load(); n != 2 {
		t.Fatalf("resume recomputed %d cells, want only the 2 the kill destroyed", n)
	}
	for _, c := range fin.Cells {
		if string(c.Table) != string(want[c.Key]) {
			t.Fatalf("cell %s table diverges from uninterrupted serial run:\n got %s\nwant %s",
				c.Key, c.Table, want[c.Key])
		}
	}
}

// TestJournalFaultsDegradeGracefully arms the jobs.journal fault point at
// probability 1: every append fails, the failures are counted, and the job
// still completes — journal loss costs durability, never liveness.
func TestJournalFaultsDegradeGracefully(t *testing.T) {
	if _, err := fault.Enable(42, "jobs.journal:error:1"); err != nil {
		t.Fatalf("fault.Enable: %v", err)
	}
	defer fault.Disable()
	opts := testOpts(echoRunner)
	opts.Dir = t.TempDir()
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(spec4())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	fin := waitSettled(t, m, st.ID)
	if fin.Status != JobCompleted || fin.Completed != 4 {
		t.Fatalf("final status: %+v", fin)
	}
	l := m.Ledger()
	checkConservation(t, l)
	// created + 4 cells + terminal all failed to journal.
	if l.JournalErrors != 6 {
		t.Fatalf("journal errors: %d, want 6", l.JournalErrors)
	}
}

// TestSchedulerFaultsContained arms jobs.sched with panics: the scheduler
// goroutine must contain them, relaunch itself, and still drain the job.
func TestSchedulerFaultsContained(t *testing.T) {
	if _, err := fault.Enable(7, "jobs.sched:panic:0.5"); err != nil {
		t.Fatalf("fault.Enable: %v", err)
	}
	defer fault.Disable()
	m, err := Open(testOpts(echoRunner))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, err := m.Submit(spec4())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	fin := waitSettled(t, m, st.ID)
	if fin.Status != JobCompleted || fin.Completed != 4 {
		t.Fatalf("final status under sched chaos: %+v", fin)
	}
	if m.Ledger().SchedFaults == 0 {
		t.Fatal("sched faults armed at p=0.5 but none recorded")
	}
}

// TestRestoreFinalizesCrashBeforeTerminal covers the crash window between the
// last cell record and the terminal record: restore must finish the
// bookkeeping, marking the job terminal without re-running anything.
func TestRestoreFinalizesCrashBeforeTerminal(t *testing.T) {
	dir := t.TempDir()
	spec, err := spec4().normalize(4096)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	specJSON, _ := json.Marshal(spec)
	j, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	mustAppend(t, j.AppendJobCreated("j1", specJSON))
	for _, cell := range spec.cells() {
		mustAppend(t, j.AppendCell(cell.Key, echoBody(cell.Experiment, cell.Config)))
	}
	// No terminal record: the "crash" hit right here.
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	ran := atomic.Int32{}
	run := func(ctx context.Context, id string, cfg core.Config) ([]byte, error) {
		ran.Add(1)
		return echoRunner(ctx, id, cfg)
	}
	opts := testOpts(run)
	opts.Dir = dir
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer closeManager(t, m)
	st, ok := m.Status("j1", false)
	if !ok {
		t.Fatal("job not restored")
	}
	if st.Status != JobCompleted || st.Completed != 4 {
		t.Fatalf("restore did not finalize: %+v", st)
	}
	waitSettled(t, m, "j1")
	if ran.Load() != 0 {
		t.Fatalf("finalized job re-ran %d cells", ran.Load())
	}
	l := m.Ledger()
	checkConservation(t, l)
	if l.JobsCompleted != 1 || l.JobsActive != 0 {
		t.Fatalf("ledger: %+v", l)
	}
}
