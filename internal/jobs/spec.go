package jobs

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrBadSpec marks submissions rejected for shape or content; the service
// maps it to 400.
var ErrBadSpec = errors.New("jobs: bad spec")

// maxWeight bounds weighted-round-robin weights so one tenant cannot buy
// effectively-exclusive scheduling with a giant number.
const maxWeight = 64

// Spec is a batch job: the cross product of experiment IDs, a contiguous
// seed range, and a maxk sweep, all at one trial count. Zero-valued
// optional fields take the defaults of core.DefaultConfig (and SeedCount=1,
// MaxKMin=MaxKMax, Weight=1).
type Spec struct {
	Experiments []string `json:"experiments"`
	SeedStart   uint64   `json:"seed_start,omitempty"`
	SeedCount   int      `json:"seed_count,omitempty"`
	Trials      int      `json:"trials,omitempty"`
	MaxKMin     int      `json:"maxk_min,omitempty"`
	MaxKMax     int      `json:"maxk_max,omitempty"`
	// Weight is the job's weighted-round-robin share (1..64, default 1): a
	// weight-3 job is offered three cells for every one a weight-1 job gets
	// while both have work pending.
	Weight int `json:"weight,omitempty"`
}

// Cell is one work item of a job: a single (experiment, config) run,
// content-addressed by the same cache key the /v1/run path uses, which is
// what makes journal replay, result-cache hits, and duplicate submissions
// all line up on the same identity.
type Cell struct {
	Experiment string
	Config     core.Config
	Key        string
}

// normalize fills defaults and validates, returning the canonical spec that
// is journaled. The normalized form is what restore re-expands, so default
// changes in later versions cannot silently re-shape an old journal's jobs.
func (s Spec) normalize(maxCells int) (Spec, error) {
	def := core.DefaultConfig()
	if s.SeedStart == 0 {
		s.SeedStart = def.Seed
	}
	if s.SeedCount == 0 {
		s.SeedCount = 1
	}
	if s.Trials == 0 {
		s.Trials = def.Trials
	}
	if s.MaxKMax == 0 {
		s.MaxKMax = def.MaxK
	}
	if s.MaxKMin == 0 {
		s.MaxKMin = s.MaxKMax
	}
	if s.Weight == 0 {
		s.Weight = 1
	}
	if len(s.Experiments) == 0 {
		return Spec{}, fmt.Errorf("%w: needs at least one experiment", ErrBadSpec)
	}
	seen := map[string]bool{}
	for _, id := range s.Experiments {
		if _, ok := core.Lookup(id); !ok {
			return Spec{}, fmt.Errorf("%w: %w %q", ErrBadSpec, core.ErrUnknownExperiment, id)
		}
		if seen[id] {
			return Spec{}, fmt.Errorf("%w: duplicate experiment %q", ErrBadSpec, id)
		}
		seen[id] = true
	}
	if s.SeedCount < 0 {
		return Spec{}, fmt.Errorf("%w: seed_count %d < 0", ErrBadSpec, s.SeedCount)
	}
	if s.MaxKMin > s.MaxKMax {
		return Spec{}, fmt.Errorf("%w: maxk_min %d > maxk_max %d", ErrBadSpec, s.MaxKMin, s.MaxKMax)
	}
	if s.Weight < 1 || s.Weight > maxWeight {
		return Spec{}, fmt.Errorf("%w: weight %d outside [1,%d]", ErrBadSpec, s.Weight, maxWeight)
	}
	// Validate the extreme configs; every cell's config is one of these
	// fields' combinations, so corner validity covers the grid.
	for _, k := range []int{s.MaxKMin, s.MaxKMax} {
		cfg := core.Config{Seed: s.SeedStart, Trials: s.Trials, MaxK: k}
		if err := cfg.Validate(); err != nil {
			return Spec{}, fmt.Errorf("%w: %w", ErrBadSpec, err)
		}
	}
	n := len(s.Experiments) * s.SeedCount * (s.MaxKMax - s.MaxKMin + 1)
	if n == 0 {
		return Spec{}, fmt.Errorf("%w: spec yields zero cells", ErrBadSpec)
	}
	if n > maxCells {
		return Spec{}, fmt.Errorf("%w: %d cells exceeds the per-job cap %d", ErrBadSpec, n, maxCells)
	}
	return s, nil
}

// cells enumerates the job's work items in the canonical order (experiment,
// then seed offset, then maxk) — deterministic, so journal replay, status
// reports, and streamed tables all agree on cell indices.
func (s Spec) cells() []Cell {
	out := make([]Cell, 0, len(s.Experiments)*s.SeedCount*(s.MaxKMax-s.MaxKMin+1))
	for _, id := range s.Experiments {
		for off := 0; off < s.SeedCount; off++ {
			for k := s.MaxKMin; k <= s.MaxKMax; k++ {
				cfg := core.Config{Seed: s.SeedStart + uint64(off), Trials: s.Trials, MaxK: k}
				out = append(out, Cell{Experiment: id, Config: cfg, Key: core.CacheKey(id, cfg)})
			}
		}
	}
	return out
}
