package jobs

import (
	"bytes"
	"testing"
)

// TestJournalAppendAllocs is the dynamic evidence behind appendRecord's
// //lint:hotpath annotation: the steady-state append path (scratch buffer
// warmed, fsync disabled so the measurement sees the framing code, not the
// kernel) performs zero allocations per record.
//
// allocguard:Journal.appendRecord
func TestJournalAppendAllocs(t *testing.T) {
	j, _, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	defer j.Close()
	j.nosync = true
	body := bytes.Repeat([]byte("x"), 512)
	if err := j.AppendCell("warm-key-0123456789abcdef", body); err != nil {
		t.Fatalf("warm-up append: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := j.AppendCell("warm-key-0123456789abcdef", body); err != nil {
			t.Fatalf("append: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("appendRecord allocates %.1f per record; the hot path must not allocate", allocs)
	}
}
