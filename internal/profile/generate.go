package profile

import (
	"fmt"

	"repro/internal/xrand"
)

// This file contains generators for raw (non-square) memory profiles m(t) —
// the scenarios the paper's introduction motivates — plus the reduction
// from an arbitrary profile to a square profile (Definition 1, following
// the inner-square construction of Bender et al. 2016).

// Constant returns a profile fixed at m blocks for length steps.
func Constant(m int64, length int) ([]int64, error) {
	if m < 1 {
		return nil, fmt.Errorf("profile: constant size %d < 1", m)
	}
	if length < 0 {
		return nil, fmt.Errorf("profile: negative length %d", length)
	}
	out := make([]int64, length)
	for i := range out {
		out[i] = m
	}
	return out, nil
}

// Sawtooth models the winner-take-all phenomenon from the paper's
// introduction: a process's cache allocation slowly grows from minM to maxM
// (as it wins residency) and then crashes back down to minM (a periodic
// flush). The allocation grows linearly over period steps, then drops.
func Sawtooth(minM, maxM int64, period, length int) ([]int64, error) {
	if minM < 1 || maxM < minM {
		return nil, fmt.Errorf("profile: sawtooth range [%d,%d] invalid", minM, maxM)
	}
	if period < 1 {
		return nil, fmt.Errorf("profile: sawtooth period %d < 1", period)
	}
	if length < 0 {
		return nil, fmt.Errorf("profile: negative length %d", length)
	}
	out := make([]int64, length)
	span := maxM - minM
	for t := range out {
		phase := t % period
		out[t] = minM + span*int64(phase)/int64(period)
	}
	return out, nil
}

// RandomWalk returns a profile performing a bounded lazy random walk: at
// each step the size stays, grows by up to step, or shrinks by up to step,
// clamped to [minM, maxM]. This mimics cache allocations drifting as
// co-running processes come and go. Note the CA model itself allows growth
// of at most one block per I/O; Squarize absorbs any raw profile either way.
func RandomWalk(src *xrand.Source, start, minM, maxM, step int64, length int) ([]int64, error) {
	if minM < 1 || maxM < minM {
		return nil, fmt.Errorf("profile: walk range [%d,%d] invalid", minM, maxM)
	}
	if start < minM || start > maxM {
		return nil, fmt.Errorf("profile: walk start %d outside [%d,%d]", start, minM, maxM)
	}
	if step < 1 {
		return nil, fmt.Errorf("profile: walk step %d < 1", step)
	}
	if length < 0 {
		return nil, fmt.Errorf("profile: negative length %d", length)
	}
	out := make([]int64, length)
	cur := start
	for t := range out {
		out[t] = cur
		delta := src.Int63n(2*step+1) - step
		cur += delta
		if cur < minM {
			cur = minM
		}
		if cur > maxM {
			cur = maxM
		}
	}
	return out, nil
}

// Squarize converts an arbitrary memory profile m (size in blocks at each
// I/O step; all entries >= 1) into a square profile using the greedy
// inner-square construction: starting at step t, take the largest X such
// that m(t') >= X for all t' in [t, t+X), emit a box of size X, and advance
// by X steps. Prior work shows the inner square profile approximates the
// original up to constant-factor resource augmentation.
//
// If the tail of the profile cannot fit a full inner square (fewer steps
// remain than the height available), Squarize emits a final box of size
// equal to the number of remaining steps (never exceeding the minimum
// height over those steps), so the square profile always covers exactly
// len(m) I/O steps... except when the remaining heights are smaller than
// the remaining length, in which case the greedy rule already applies. The
// covering invariant (sum of box sizes == len(m)) is tested.
func Squarize(m []int64) (*SquareProfile, error) {
	for i, v := range m {
		if v < 1 {
			return nil, fmt.Errorf("profile: m(%d) = %d < 1", i, v)
		}
	}
	var boxes []int64
	t := 0
	for t < len(m) {
		// Grow X while the next X steps all have height >= X.
		// Invariant: minH is the minimum of m[t:t+x].
		x := int64(1)
		minH := m[t]
		for {
			// Candidate next size x+1 requires x+1 steps available and
			// min height over them >= x+1.
			next := x + 1
			if t+int(next) > len(m) {
				break
			}
			h := minH
			if mh := m[t+int(next)-1]; mh < h {
				h = mh
			}
			if h < next {
				break
			}
			minH = h
			x = next
		}
		// Clamp to remaining steps so the square profile covers exactly the
		// same time span.
		if rem := int64(len(m) - t); x > rem {
			x = rem
		}
		boxes = append(boxes, x)
		t += int(x)
	}
	return &SquareProfile{boxes: boxes}, nil
}
