package profile

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadTSV feeds the TSV profile parser hostile input — the format is an
// interchange surface (profilegen emits it, mmtrace and cadaptive consume
// it), so it must never trust what it reads. Invariants: no panics; every
// accepted profile has only positive box sizes (the SquareProfile
// invariant every consumer relies on); and accepted profiles round-trip
// losslessly through WriteTSV.
func FuzzReadTSV(f *testing.F) {
	for _, seed := range []string{
		"4\n2\n1\n",
		"0\t8\n1\t4\n",
		"# comment\n\n  3 \n",
		"9223372036854775807\n",
		"9223372036854775808\n", // one past MaxInt64
		"-3\n", "0\n", "1\t2\t3\n",
		"1e3\n", "0x10\n", "³\n", "NaN\n",
		"5\r\n7\r\n", // CRLF: Fields splits, ParseInt must see clean digits
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ReadTSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics and bad profiles are not
		}
		for i := 0; i < p.Len(); i++ {
			if p.Box(i) < 1 {
				t.Fatalf("ReadTSV accepted box %d with size %d", i, p.Box(i))
			}
		}
		var buf bytes.Buffer
		if err := p.WriteTSV(&buf); err != nil {
			t.Fatalf("WriteTSV on accepted profile: %v", err)
		}
		back, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("re-reading written profile: %v", err)
		}
		if !reflect.DeepEqual(back.Boxes(), p.Boxes()) {
			t.Fatalf("round trip changed boxes: %v -> %v", p.Boxes(), back.Boxes())
		}
	})
}
