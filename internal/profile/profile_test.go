package profile

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewValidates(t *testing.T) {
	if _, err := New([]int64{1, 0, 2}); err == nil {
		t.Error("zero box accepted")
	}
	if _, err := New([]int64{1, -3}); err == nil {
		t.Error("negative box accepted")
	}
	if _, err := New(nil); err != nil {
		t.Errorf("empty profile rejected: %v", err)
	}
}

func TestNewCopiesInput(t *testing.T) {
	in := []int64{3, 4}
	p, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = 99
	if p.Box(0) != 3 {
		t.Error("profile aliased caller slice")
	}
	out := p.Boxes()
	out[1] = 77
	if p.Box(1) != 4 {
		t.Error("Boxes leaked internal slice")
	}
}

func TestBasicAccounting(t *testing.T) {
	p := MustNew([]int64{1, 4, 16, 4})
	if p.Len() != 4 {
		t.Errorf("Len = %d", p.Len())
	}
	if p.Duration() != 25 {
		t.Errorf("Duration = %d, want 25", p.Duration())
	}
	if p.MaxBox() != 16 || p.MinBox() != 1 {
		t.Errorf("Max/Min = %d/%d", p.MaxBox(), p.MinBox())
	}
	// Potential with e = 1.5: 1 + 8 + 64 + 8 = 81.
	if got := p.Potential(1.5); math.Abs(got-81) > 1e-9 {
		t.Errorf("Potential = %g, want 81", got)
	}
	// Bounded at n = 4: 1 + 8 + 8 + 8 = 25.
	if got := p.BoundedPotential(4, 1.5); math.Abs(got-25) > 1e-9 {
		t.Errorf("BoundedPotential = %g, want 25", got)
	}
	h := p.SizeHistogram()
	if h[4] != 2 || h[1] != 1 || h[16] != 1 {
		t.Errorf("histogram wrong: %v", h)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := MustNew([]int64{2, 3})
	q := p.Clone()
	q.boxes[0] = 9
	if p.Box(0) != 2 {
		t.Error("clone shares storage")
	}
}

func TestSliceSourceCycles(t *testing.T) {
	p := MustNew([]int64{5, 7, 9})
	s, err := NewSliceSource(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 7, 9, 5, 7, 9, 5}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("box %d = %d, want %d", i, got, w)
		}
	}
	if s.Emitted() != len(want) {
		t.Errorf("Emitted = %d, want %d", s.Emitted(), len(want))
	}
}

func TestSliceSourceRejectsEmpty(t *testing.T) {
	if _, err := NewSliceSource(MustNew(nil)); err == nil {
		t.Error("empty profile stream accepted")
	}
}

func TestPowLog(t *testing.T) {
	if Pow(4, 0) != 1 || Pow(4, 3) != 64 {
		t.Error("Pow wrong")
	}
	if Log(1, 4) != 0 || Log(64, 4) != 3 {
		t.Error("Log wrong")
	}
	if !IsPowerOf(64, 4) || IsPowerOf(48, 4) || IsPowerOf(0, 4) {
		t.Error("IsPowerOf wrong")
	}
}

func TestWorstCaseSmall(t *testing.T) {
	// M_{2,2}(2) = [M(1), M(1), box 2] = [1, 1, 2].
	p, err := WorstCase(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 1, 2}
	got := p.Boxes()
	if len(got) != len(want) {
		t.Fatalf("boxes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boxes = %v, want %v", got, want)
		}
	}

	// M_{2,2}(4) = [1,1,2, 1,1,2, 4].
	p, err = WorstCase(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	want = []int64{1, 1, 2, 1, 1, 2, 4}
	got = p.Boxes()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boxes = %v, want %v", got, want)
		}
	}
}

func TestWorstCaseCountAndPotential(t *testing.T) {
	for _, tc := range []struct{ a, b, n int64 }{
		{8, 4, 1}, {8, 4, 4}, {8, 4, 64}, {8, 4, 1024},
		{2, 2, 256}, {4, 2, 64}, {3, 2, 128},
	} {
		p, err := WorstCase(tc.a, tc.b, tc.n)
		if err != nil {
			t.Fatalf("WorstCase(%v): %v", tc, err)
		}
		count, err := WorstCaseBoxCount(tc.a, tc.b, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if int64(p.Len()) != count {
			t.Errorf("M_{%d,%d}(%d): len %d, analytic count %d", tc.a, tc.b, tc.n, p.Len(), count)
		}
		e := math.Log(float64(tc.a)) / math.Log(float64(tc.b))
		wantPot, err := WorstCasePotential(tc.a, tc.b, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Potential(e); math.Abs(got-wantPot) > 1e-6*wantPot {
			t.Errorf("M_{%d,%d}(%d): potential %g, analytic %g", tc.a, tc.b, tc.n, got, wantPot)
		}
	}
}

func TestWorstCaseLogFactor(t *testing.T) {
	// Potential / n^{log_b a} must equal log_b n + 1 exactly — the log gap.
	const a, b = 8, 4
	e := math.Log(8) / math.Log(4) // 1.5
	for k := 0; k <= 6; k++ {
		n := Pow(b, k)
		p, err := WorstCase(a, b, n)
		if err != nil {
			t.Fatal(err)
		}
		ratio := p.Potential(e) / math.Pow(float64(n), e)
		if math.Abs(ratio-float64(k+1)) > 1e-6 {
			t.Errorf("n=4^%d: potential ratio %g, want %d", k, ratio, k+1)
		}
	}
}

func TestWorstCaseValidation(t *testing.T) {
	if _, err := WorstCase(8, 4, 48); err == nil {
		t.Error("non-power n accepted")
	}
	if _, err := WorstCase(8, 1, 4); err == nil {
		t.Error("b=1 accepted")
	}
	if _, err := WorstCase(0, 4, 4); err == nil {
		t.Error("a=0 accepted")
	}
	// Too-large instance must be refused, not OOM.
	if _, err := WorstCase(8, 4, Pow(4, 12)); err == nil {
		t.Error("gigantic instance accepted")
	}
}

func TestWorstCaseSourceMatchesMaterialised(t *testing.T) {
	for _, tc := range []struct{ a, b, n int64 }{
		{8, 4, 256}, {2, 2, 64}, {4, 2, 32},
	} {
		p, err := WorstCase(tc.a, tc.b, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewWorstCaseSource(tc.a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < p.Len(); i++ {
			if got, want := src.Next(), p.Box(i); got != want {
				t.Fatalf("M_{%d,%d}: stream box %d = %d, materialised %d", tc.a, tc.b, i, got, want)
			}
		}
		// The limit profile continues: next box must be a leaf (size 1),
		// since M(n) is a prefix of M(nb) whose next element starts M(n)'s
		// second copy.
		if got := src.Next(); got != 1 {
			t.Errorf("box after M(n) prefix = %d, want 1", got)
		}
	}
}

func TestWorstCaseSourceRejectsA1(t *testing.T) {
	if _, err := NewWorstCaseSource(1, 2); err == nil {
		t.Error("a=1 limit stream accepted")
	}
}

func TestConstant(t *testing.T) {
	m, err := Constant(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m {
		if v != 8 {
			t.Fatal("constant profile not constant")
		}
	}
	if _, err := Constant(0, 5); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := Constant(2, -1); err == nil {
		t.Error("negative length accepted")
	}
}

func TestSawtoothShape(t *testing.T) {
	m, err := Sawtooth(10, 100, 50, 150)
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != 10 {
		t.Errorf("start = %d, want 10", m[0])
	}
	if m[49] <= m[1] {
		t.Error("sawtooth not growing within period")
	}
	if m[50] != 10 {
		t.Errorf("crash at period boundary: m[50] = %d, want 10", m[50])
	}
	for t2, v := range m {
		if v < 10 || v > 100 {
			t.Fatalf("m[%d] = %d outside range", t2, v)
		}
	}
	if _, err := Sawtooth(10, 5, 50, 10); err == nil {
		t.Error("max<min accepted")
	}
	if _, err := Sawtooth(1, 5, 0, 10); err == nil {
		t.Error("period 0 accepted")
	}
}

func TestRandomWalkBounds(t *testing.T) {
	src := xrand.New(5)
	m, err := RandomWalk(src, 50, 10, 100, 7, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m {
		if v < 10 || v > 100 {
			t.Fatalf("m[%d] = %d escaped bounds", i, v)
		}
	}
	if _, err := RandomWalk(src, 5, 10, 100, 7, 10); err == nil {
		t.Error("start below min accepted")
	}
}

func TestSquarizeConstant(t *testing.T) {
	m, _ := Constant(4, 16)
	p, err := Squarize(m)
	if err != nil {
		t.Fatal(err)
	}
	// Constant 4 for 16 steps → four boxes of size 4.
	if p.Len() != 4 {
		t.Fatalf("boxes = %v", p.Boxes())
	}
	for _, b := range p.Boxes() {
		if b != 4 {
			t.Fatalf("boxes = %v, want all 4s", p.Boxes())
		}
	}
}

func TestSquarizeRejectsNonPositive(t *testing.T) {
	if _, err := Squarize([]int64{3, 0, 3}); err == nil {
		t.Error("m(t)=0 accepted")
	}
}

// Property: Squarize output (1) covers exactly len(m) steps, (2) every box
// fits under the profile: for box starting at t with size X, m(t') >= X for
// all t' in the box, and (3) is maximal in the greedy sense (box could not
// be one larger).
func TestSquarizeInvariants(t *testing.T) {
	src := xrand.New(77)
	check := func(seed uint32, n uint8) bool {
		length := int(n)%200 + 1
		local := xrand.New(uint64(seed))
		m := make([]int64, length)
		for i := range m {
			m[i] = 1 + local.Int63n(40)
		}
		p, err := Squarize(m)
		if err != nil {
			return false
		}
		t0 := 0
		for _, x := range p.Boxes() {
			if t0+int(x) > length {
				return false // overruns
			}
			minH := int64(1 << 62)
			for _, h := range m[t0 : t0+int(x)] {
				if h < minH {
					minH = h
				}
			}
			if minH < x {
				return false // box pokes above profile
			}
			// Greedy maximality: extending to x+1 must be impossible.
			if t0+int(x) < length {
				extMin := minH
				if h := m[t0+int(x)]; h < extMin {
					extMin = h
				}
				if extMin >= x+1 {
					return false // greedy should have grown
				}
			}
			t0 += int(x)
		}
		return t0 == length
	}
	cfg := &quick.Config{MaxCount: 300, Rand: nil}
	_ = src
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSquarizeSawtooth(t *testing.T) {
	m, _ := Sawtooth(4, 256, 300, 1200)
	p, err := Squarize(m)
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration() != 1200 {
		t.Errorf("duration %d, want 1200", p.Duration())
	}
	if p.MaxBox() < 32 {
		t.Errorf("expected large inner squares under the ramp, max = %d", p.MaxBox())
	}
}
