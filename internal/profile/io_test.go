package profile

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestTSVRoundTrip(t *testing.T) {
	p := MustNew([]int64{1, 4, 16, 4, 1})
	var buf bytes.Buffer
	if err := p.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != p.Len() {
		t.Fatalf("round trip changed length: %d -> %d", p.Len(), q.Len())
	}
	for i := 0; i < p.Len(); i++ {
		if p.Box(i) != q.Box(i) {
			t.Fatalf("box %d: %d -> %d", i, p.Box(i), q.Box(i))
		}
	}
}

func TestReadTSVFormats(t *testing.T) {
	in := `# a comment
7

0	3
12
`
	p, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{7, 3, 12}
	if p.Len() != len(want) {
		t.Fatalf("boxes = %v", p.Boxes())
	}
	for i, w := range want {
		if p.Box(i) != w {
			t.Fatalf("boxes = %v, want %v", p.Boxes(), want)
		}
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"1\t2\t3\n", // too many fields
		"abc\n",     // not a number
		"0\n",       // size < 1
		"-4\n",      // negative
	}
	for _, in := range cases {
		if _, err := ReadTSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadTSVEmpty(t *testing.T) {
	p, err := ReadTSV(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 0 {
		t.Error("empty input produced boxes")
	}
}

// Property: WriteTSV/ReadTSV round-trips arbitrary profiles.
func TestTSVRoundTripProperty(t *testing.T) {
	check := func(seed uint32, nRaw uint8) bool {
		src := xrand.New(uint64(seed))
		n := int(nRaw)%100 + 1
		boxes := make([]int64, n)
		for i := range boxes {
			boxes[i] = 1 + src.Int63n(1<<40)
		}
		p := MustNew(boxes)
		var buf bytes.Buffer
		if err := p.WriteTSV(&buf); err != nil {
			return false
		}
		q, err := ReadTSV(&buf)
		if err != nil || q.Len() != p.Len() {
			return false
		}
		for i := 0; i < p.Len(); i++ {
			if p.Box(i) != q.Box(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
