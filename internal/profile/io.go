package profile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file provides the TSV interchange format the command-line tools
// share: one box per line, either "size" or "index<TAB>size"; blank lines
// and #-comments are ignored. profilegen emits it; mmtrace and cadaptive
// can consume it, so captured or hand-crafted profiles round-trip through
// every tool.

// WriteTSV writes the profile as "index<TAB>size" lines.
func (p *SquareProfile) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, b := range p.boxes {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", i, b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses a profile from TSV: each non-blank, non-comment line is
// either a bare box size or "index<TAB>size" (the index is ignored; order
// is the line order).
func ReadTSV(r io.Reader) (*SquareProfile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var boxes []int64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var sizeField string
		switch len(fields) {
		case 1:
			sizeField = fields[0]
		case 2:
			sizeField = fields[1]
		default:
			return nil, fmt.Errorf("profile: line %d has %d fields, want 1 or 2", lineNo, len(fields))
		}
		size, err := strconv.ParseInt(sizeField, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("profile: line %d: %v", lineNo, err)
		}
		if size < 1 {
			return nil, fmt.Errorf("profile: line %d: box size %d < 1", lineNo, size)
		}
		boxes = append(boxes, size)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &SquareProfile{boxes: boxes}, nil
}
