package profile_test

import (
	"fmt"

	"repro/internal/profile"
)

// The Figure-1 worst-case profile: a copies of M(n/b) followed by one box
// of size n.
func ExampleWorstCase() {
	p, err := profile.WorstCase(2, 2, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Boxes())
	// Output: [1 1 2 1 1 2 4]
}

// The infinite limit profile streams M_{a,b} box by box.
func ExampleWorstCaseSource() {
	src, err := profile.NewWorstCaseSource(2, 2)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 7; i++ {
		fmt.Print(src.Next(), " ")
	}
	fmt.Println()
	// Output: 1 1 2 1 1 2 4
}

// Squarize reduces an arbitrary memory profile m(t) to a square profile
// with the greedy inner-square construction.
func ExampleSquarize() {
	m := []int64{3, 3, 3, 1, 2, 2}
	p, err := profile.Squarize(m)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Boxes())
	// Output: [3 1 2]
}

// BoundedPotential is the left-hand side of the paper's efficiency
// criterion (Equation 2).
func ExampleSquareProfile_BoundedPotential() {
	p := profile.MustNew([]int64{1, 4, 16})
	// exponent log_4 8 = 1.5; clamp at n = 4.
	fmt.Printf("%.0f\n", p.BoundedPotential(4, 1.5))
	// Output: 17
}
