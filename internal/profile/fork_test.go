package profile

import "testing"

// drainFork checks the ForkAt contract at one offset: a fork at `box` must
// continue exactly like a fresh instance that already emitted `box` boxes.
func drainFork(t *testing.T, name string, fresh, fork Source, box int64, probe int) {
	t.Helper()
	for i := int64(0); i < box; i++ {
		fresh.Next()
	}
	for i := 0; i < probe; i++ {
		want, got := fresh.Next(), fork.Next()
		if got != want {
			t.Fatalf("%s: ForkAt(%d) box %d = %d, want %d", name, box, box+int64(i), got, want)
		}
	}
}

func TestSliceSourceForkAt(t *testing.T) {
	p := MustNew([]int64{4, 1, 9, 2, 7})
	for _, box := range []int64{0, 1, 4, 5, 13, 100} {
		fresh, _ := NewSliceSource(p)
		src, _ := NewSliceSource(p)
		drainFork(t, "SliceSource", fresh, src.ForkAt(box), box, 12)
	}
}

func TestSliceSourceForkAtLeavesCursorAlone(t *testing.T) {
	p := MustNew([]int64{4, 1, 9})
	src, _ := NewSliceSource(p)
	src.Next()
	src.ForkAt(100)
	if got := src.Next(); got != 1 {
		t.Fatalf("ForkAt advanced the receiver cursor: next = %d, want 1", got)
	}
}

func TestBoxesSourceForkAt(t *testing.T) {
	boxes := []int64{3, 3, 8, 1}
	for _, box := range []int64{0, 2, 4, 7, 41} {
		fresh, _ := NewBoxesSource(boxes)
		src, _ := NewBoxesSource(boxes)
		drainFork(t, "BoxesSource", fresh, src.ForkAt(box), box, 10)
	}
}

func TestWorstCaseSourceForkAt(t *testing.T) {
	// Offsets chosen to land on leaves, mid-closer-group (right after the
	// a^2- and a^3-aligned leaves), and far out.
	for _, box := range []int64{0, 1, 8, 9, 10, 72, 73, 74, 75, 584, 10_000} {
		fresh, err := NewWorstCaseSource(8, 4)
		if err != nil {
			t.Fatal(err)
		}
		src, _ := NewWorstCaseSource(8, 4)
		drainFork(t, "WorstCaseSource", fresh, src.ForkAt(box), box, 20)
	}
}

func TestWorstCaseSourceForkAtExhaustive(t *testing.T) {
	// Every offset in a prefix long enough to cover three closer levels.
	for box := int64(0); box < 700; box++ {
		fresh, _ := NewWorstCaseSource(2, 2)
		src, _ := NewWorstCaseSource(2, 2)
		drainFork(t, "WorstCaseSource(2,2)", fresh, src.ForkAt(box), box, 8)
	}
}

func TestOdometerSourceForkAtExhaustive(t *testing.T) {
	closer := func(level int) int64 { return int64(level) * 100 }
	for box := int64(0); box < 700; box++ {
		fresh, err := NewOdometerSource(3, 7, closer)
		if err != nil {
			t.Fatal(err)
		}
		src, _ := NewOdometerSource(3, 7, closer)
		drainFork(t, "OdometerSource", fresh, src.ForkAt(box), box, 8)
	}
}

func TestOdometerSourceMatchesWorstCaseSource(t *testing.T) {
	// With leafBox = 1 and closer(j) = b^j the odometer is exactly the
	// M_{a,b} limit stream.
	w, err := NewWorstCaseSource(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pow := func(level int) int64 {
		size := int64(1)
		for i := 0; i < level; i++ {
			size *= 4
		}
		return size
	}
	o, err := NewOdometerSource(8, 1, pow)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		want, got := w.Next(), o.Next()
		if got != want {
			t.Fatalf("box %d: odometer %d, want M_{8,4} %d", i, got, want)
		}
	}
}

func TestOdometerSourceValidates(t *testing.T) {
	if _, err := NewOdometerSource(1, 1, func(int) int64 { return 1 }); err == nil {
		t.Fatal("a = 1 accepted")
	}
	if _, err := NewOdometerSource(4, 0, func(int) int64 { return 1 }); err == nil {
		t.Fatal("leaf box 0 accepted")
	}
}

func TestForksAreIndependent(t *testing.T) {
	// Draining one fork must not disturb another of the same receiver.
	src, _ := NewWorstCaseSource(8, 4)
	a := src.ForkAt(9)
	b := src.ForkAt(9)
	for i := 0; i < 100; i++ {
		a.Next()
	}
	fresh, _ := NewWorstCaseSource(8, 4)
	drainFork(t, "independent fork", fresh, b, 9, 20)
}
