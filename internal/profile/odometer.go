package profile

import "fmt"

// OdometerSource generalises the WorstCaseSource odometer to arbitrary box
// sizes: it emits leaf boxes of size leafBox, and after the t-th leaf
// (1-based) one closing box of size closer(j) for each j = 1..v_a(t), where
// v_a(t) counts the trailing zero digits of t in base a. With leafBox = 1
// and closer(j) = b^j this is exactly the limit profile M_{a,b}; with the
// sizes of a concrete recursion's merge scans it streams that algorithm's
// Figure-1 worst-case profile without materialising it — the finite profile
// for a height-L recursion is precisely the stream's first
// (a^{L+1}-1)/(a-1) boxes, since the level-L closer after leaf a^L is the
// root box and no deeper closer appears before it.
//
// closer must be pure (same j, same size): ForkAt reconstructs pending
// closers from the digit structure and relies on it.
type OdometerSource struct {
	a       int64
	leafBox int64
	closer  func(level int) int64
	leaf    int64   // leaves emitted so far
	pending []int64 // closing boxes owed after the current leaf, in order
}

// NewOdometerSource validates the shape constants and returns the stream.
func NewOdometerSource(a, leafBox int64, closer func(level int) int64) (*OdometerSource, error) {
	if a < 2 {
		return nil, fmt.Errorf("profile: odometer needs a >= 2 (a = %d never closes level boxes)", a)
	}
	if leafBox < 1 {
		return nil, fmt.Errorf("profile: odometer leaf box size %d < 1", leafBox)
	}
	return &OdometerSource{a: a, leafBox: leafBox, closer: closer}, nil
}

// Next returns the next box of the stream.
func (o *OdometerSource) Next() int64 {
	if len(o.pending) > 0 {
		box := o.pending[0]
		o.pending = o.pending[1:]
		return box
	}
	o.leaf++
	// Queue the level-closing boxes owed after this leaf.
	t := o.leaf
	j := 1
	for t%o.a == 0 {
		o.pending = append(o.pending, o.closer(j))
		t /= o.a
		j++
	}
	return o.leafBox
}

// emittedThrough returns how many boxes the stream emits through the end of
// leaf t's group: t leaf boxes plus one closer after every a^j-th leaf,
// i.e. t + Σ_{j>=1} ⌊t/a^j⌋.
func (o *OdometerSource) emittedThrough(t int64) int64 {
	total := t
	for p := o.a; p <= t; p *= o.a {
		total += t / p
		if p > t/o.a {
			break // next p would overflow past t anyway
		}
	}
	return total
}

// ForkAt returns an independent source positioned after box boxes,
// reconstructing the odometer state in O(log^2 box) from the digit
// structure exactly as WorstCaseSource.ForkAt does.
func (o *OdometerSource) ForkAt(box int64) Source {
	if box < 0 {
		box = 0
	}
	// Binary search the largest t with emittedThrough(t) <= box; each group
	// emits at least one box, so t <= box bounds the search.
	lo, hi := int64(0), box
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if o.emittedThrough(mid) <= box {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	f := &OdometerSource{a: o.a, leafBox: o.leafBox, closer: o.closer}
	f.leaf = lo
	if r := box - o.emittedThrough(lo); r > 0 {
		// r boxes into leaf lo+1's group: the leaf box and r-1 of its
		// closers are consumed; closers r..v remain pending.
		f.leaf = lo + 1
		t := f.leaf
		j := int64(1)
		for t%o.a == 0 {
			if j >= r {
				f.pending = append(f.pending, o.closer(int(j)))
			}
			t /= o.a
			j++
		}
	}
	return f
}

var _ ForkableSource = (*OdometerSource)(nil)
