// Package profile implements memory profiles for the cache-adaptive (CA)
// model.
//
// A memory profile m(t) gives the size of cache, in blocks, after the t-th
// I/O. Prior work (Bender et al. 2014/2016) shows that for cache-oblivious
// algorithms it suffices — up to constant-factor resource augmentation — to
// consider *square profiles* (Definition 1 of the paper): step functions
// where each step ("box", "square") is exactly as long as it is tall. A box
// of size X keeps memory at X blocks for X I/O steps, and with the
// w.l.o.g. convention that cache is cleared at each box boundary, a box of
// size X serves exactly X distinct blocks.
//
// This package provides:
//
//   - SquareProfile: a finite sequence of boxes with potential accounting;
//   - Source: possibly-infinite box streams (i.i.d. draws, cyclic repeats,
//     the infinite worst-case limit profile M_{a,b});
//   - WorstCase: the adversarial profile M_{a,b}(n) from Section 3 /
//     Figure 1, built recursively as a copies of M_{a,b}(n/b) followed by a
//     single box of size n;
//   - Squarize: the inner-square reduction from an arbitrary profile m(t) to
//     a square profile;
//   - generators for the paper's motivating scenarios (winner-take-all
//     sawtooth, random walk, constant).
package profile

import (
	"fmt"
	"math"
)

// SquareProfile is a finite square memory profile: an ordered sequence of
// boxes, each recorded by its size in blocks. Box i has height Box(i) blocks
// and duration Box(i) I/O steps.
type SquareProfile struct {
	boxes []int64
}

// New validates the box sizes (all must be >= 1) and wraps them in a
// SquareProfile. The slice is copied; the caller keeps ownership of boxes.
func New(boxes []int64) (*SquareProfile, error) {
	for i, b := range boxes {
		if b < 1 {
			return nil, fmt.Errorf("profile: box %d has non-positive size %d", i, b)
		}
	}
	cp := make([]int64, len(boxes))
	copy(cp, boxes)
	return &SquareProfile{boxes: cp}, nil
}

// MustNew is New for statically known-good inputs; it panics on error and is
// intended for tests and examples.
func MustNew(boxes []int64) *SquareProfile {
	p, err := New(boxes)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the number of boxes.
func (p *SquareProfile) Len() int { return len(p.boxes) }

// Box returns the size of the i-th box (0-indexed).
func (p *SquareProfile) Box(i int) int64 { return p.boxes[i] }

// Boxes returns a copy of the box sizes.
func (p *SquareProfile) Boxes() []int64 {
	cp := make([]int64, len(p.boxes))
	copy(cp, p.boxes)
	return cp
}

// AppendBoxes appends the profile's box sizes to dst and returns the
// extended slice — the reusable-buffer alternative to Boxes.
func (p *SquareProfile) AppendBoxes(dst []int64) []int64 {
	return append(dst, p.boxes...)
}

// Duration returns the total number of I/O steps covered by the profile
// (the sum of box sizes, since each box of size X lasts X steps).
func (p *SquareProfile) Duration() int64 {
	var d int64
	for _, b := range p.boxes {
		d += b
	}
	return d
}

// Potential returns the total potential Σ_i |□_i|^e of the profile, where
// e = log_b a for the algorithm under consideration (Lemma 1: ρ(|□|) =
// Θ(|□|^{log_b a}); we use the clean form |□|^e with constant 1).
func (p *SquareProfile) Potential(e float64) float64 {
	var total float64
	for _, b := range p.boxes {
		total += math.Pow(float64(b), e)
	}
	return total
}

// BoundedPotential returns Σ_i min(n, |□_i|)^e — the left-hand side of the
// efficiency criterion in Equation 2 of the paper. Unlike Potential, it is
// insensitive to the size of an over-large final box.
func (p *SquareProfile) BoundedPotential(n int64, e float64) float64 {
	var total float64
	for _, b := range p.boxes {
		if b > n {
			b = n
		}
		total += math.Pow(float64(b), e)
	}
	return total
}

// Clone returns a deep copy of the profile.
func (p *SquareProfile) Clone() *SquareProfile {
	return &SquareProfile{boxes: p.Boxes()}
}

// MaxBox returns the largest box size (0 for an empty profile).
func (p *SquareProfile) MaxBox() int64 {
	var m int64
	for _, b := range p.boxes {
		if b > m {
			m = b
		}
	}
	return m
}

// MinBox returns the smallest box size (0 for an empty profile).
func (p *SquareProfile) MinBox() int64 {
	if len(p.boxes) == 0 {
		return 0
	}
	m := p.boxes[0]
	for _, b := range p.boxes[1:] {
		if b < m {
			m = b
		}
	}
	return m
}

// SizeHistogram returns a map from box size to multiplicity.
func (p *SquareProfile) SizeHistogram() map[int64]int64 {
	h := make(map[int64]int64)
	for _, b := range p.boxes {
		h[b]++
	}
	return h
}

// String summarises the profile without dumping every box.
func (p *SquareProfile) String() string {
	return fmt.Sprintf("SquareProfile{boxes=%d, duration=%d, max=%d}",
		p.Len(), p.Duration(), p.MaxBox())
}

// ---------------------------------------------------------------------------
// Sources: possibly-infinite streams of boxes.

// Source yields an unbounded stream of box sizes. The CA model defines
// adaptivity over infinite profiles; executors pull boxes until the
// algorithm completes.
type Source interface {
	// Next returns the size (>= 1) of the next box.
	Next() int64
}

// ForkableSource is a Source whose box sequence is re-derivable from any
// offset: ForkAt(box) returns an independent Source positioned as if Next
// had already been called box times on a fresh instance. Forks never share
// mutable state with the receiver or each other, so they may be consumed
// concurrently. This is the contract that makes square-partitioned replay
// parallelizable — each shard forks the profile source at its starting box
// instead of threading one cursor through every shard in order.
//
// ForkAt positions relative to the source's initial state, not its current
// cursor; stateless deterministic sequences (a cycled profile, the
// worst-case limit stream) satisfy that naturally, while genuinely
// stateful sources (FuncSource closures over an RNG) cannot and simply do
// not implement the interface, which routes them to the serial path.
type ForkableSource interface {
	Source
	// ForkAt returns an independent Source positioned after `box` boxes.
	ForkAt(box int64) Source
}

// SliceSource cycles through a fixed profile forever. Cycling (rather than
// terminating) matches the "infinite square-profile" framing: the common use
// is a profile known to be long enough for the run, with the cycle as a
// safety net that keeps the stream total.
type SliceSource struct {
	boxes   []int64
	pos     int
	emitted int
}

// NewSliceSource returns a Source cycling over p's boxes. p must be
// non-empty.
func NewSliceSource(p *SquareProfile) (*SliceSource, error) {
	if p.Len() == 0 {
		return nil, fmt.Errorf("profile: cannot stream an empty profile")
	}
	return &SliceSource{boxes: p.Boxes()}, nil
}

// Next returns the next box, cycling back to the start at the end.
func (s *SliceSource) Next() int64 {
	b := s.boxes[s.pos]
	s.pos++
	s.emitted++
	if s.pos == len(s.boxes) {
		s.pos = 0
	}
	return b
}

// Emitted reports how many boxes have been emitted so far (across cycles).
func (s *SliceSource) Emitted() int { return s.emitted }

// ForkAt returns an independent source positioned after box boxes of the
// cycled sequence. The box slice is shared (it is never mutated), so forks
// are cheap and safe to consume concurrently.
func (s *SliceSource) ForkAt(box int64) Source {
	if box < 0 {
		box = 0
	}
	return &SliceSource{boxes: s.boxes, pos: int(box % int64(len(s.boxes))), emitted: int(box)}
}

// FuncSource adapts a function to the Source interface.
type FuncSource func() int64

// Next calls the underlying function.
func (f FuncSource) Next() int64 { return f() }

// BoxesSource cycles over a raw box slice without copying it — the
// allocation-light counterpart of SliceSource for the experiment engine's
// per-trial hot loops, where the slice lives in a per-worker scratch
// buffer. The caller guarantees every size is >= 1 and must not mutate the
// slice while the source is in use.
type BoxesSource struct {
	boxes []int64
	pos   int
}

// NewBoxesSource returns a Source cycling over boxes. boxes must be
// non-empty.
func NewBoxesSource(boxes []int64) (*BoxesSource, error) {
	if len(boxes) == 0 {
		return nil, fmt.Errorf("profile: cannot stream an empty box slice")
	}
	return &BoxesSource{boxes: boxes}, nil
}

// Next returns the next box, cycling back to the start at the end.
func (s *BoxesSource) Next() int64 {
	b := s.boxes[s.pos]
	s.pos++
	if s.pos == len(s.boxes) {
		s.pos = 0
	}
	return b
}

// Rebind points the source at a new slice and rewinds it, so one
// BoxesSource can serve every trial a worker runs. Rebinding invalidates
// outstanding ForkAt forks (they keep cycling the old slice).
func (s *BoxesSource) Rebind(boxes []int64) error {
	if len(boxes) == 0 {
		return fmt.Errorf("profile: cannot stream an empty box slice")
	}
	s.boxes = boxes
	s.pos = 0
	return nil
}

// ForkAt returns an independent source positioned after box boxes of the
// cycled sequence. The slice is shared with the receiver; the usual
// BoxesSource no-mutation contract extends to every fork.
func (s *BoxesSource) ForkAt(box int64) Source {
	if box < 0 {
		box = 0
	}
	return &BoxesSource{boxes: s.boxes, pos: int(box % int64(len(s.boxes)))}
}

var (
	_ ForkableSource = (*SliceSource)(nil)
	_ ForkableSource = (*BoxesSource)(nil)
)
