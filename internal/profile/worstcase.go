package profile

import (
	"fmt"
	"math"
)

// This file implements the canonical worst-case profile M_{a,b}(n) from
// Section 3 (Figure 1) and the "Robustness of Worst-Case Profiles" section.
//
// M_{a,b}(n) is defined recursively: M_{a,b}(n) is a copies of M_{a,b}(n/b)
// followed by a single box of size n, bottoming out at a single box of size
// 1 (block units, B = 1, per the paper's Section 4 simplification — the
// recursion "continues down to squares of Θ(B) blocks").
//
// The canonical (a,b,1)-regular algorithm A_n requires the entirety of
// M_{a,b}(n) to complete: every leaf of the recursion is completed by
// exactly one size-1 box, and every scan of size b^j is completed by exactly
// one size-b^j box — the profile gives the algorithm a large cache precisely
// when it is doing a scan and cannot exploit it. One checks inductively that
// M_{a,b}(n) has total potential n^{log_b a}·(log_b n + 1), a log factor
// above the Θ(n^{log_b a}) an optimally adaptive execution needs, which is
// what makes M_{a,b} a worst-case profile (Theorem 2).

// ValidateAB checks the structural constants of an (a,b,·)-regular
// construction: a >= 1 branching, b >= 2 shrinkage.
func ValidateAB(a, b int64) error {
	if b < 2 {
		return fmt.Errorf("profile: b = %d must be >= 2", b)
	}
	if a < 1 {
		return fmt.Errorf("profile: a = %d must be >= 1", a)
	}
	return nil
}

// IsPowerOf reports whether n is a non-negative power of base (base >= 2).
func IsPowerOf(n, base int64) bool {
	if base < 2 || n < 1 {
		return false
	}
	for n%base == 0 {
		n /= base
	}
	return n == 1
}

// Log returns log_base(n) for n an exact power of base. It is the caller's
// responsibility (checked in validated constructors) that n is a power.
func Log(n, base int64) int {
	k := 0
	for n > 1 {
		n /= base
		k++
	}
	return k
}

// Pow returns base^k as int64. It panics on overflow, which in this
// repository always indicates an experiment sized beyond the simulator's
// design range rather than a recoverable condition.
func Pow(base int64, k int) int64 {
	r := int64(1)
	for i := 0; i < k; i++ {
		if r > math.MaxInt64/base {
			panic(fmt.Sprintf("profile: %d^%d overflows int64", base, k))
		}
		r *= base
	}
	return r
}

// WorstCaseBoxCount returns the number of boxes in M_{a,b}(n) without
// materialising it: boxes(n) satisfies boxes(1) = 1 and
// boxes(n) = a·boxes(n/b) + 1, i.e. (a^{k+1}-1)/(a-1) for n = b^k (and k+1
// when a = 1).
func WorstCaseBoxCount(a, b, n int64) (int64, error) {
	if err := ValidateAB(a, b); err != nil {
		return 0, err
	}
	if !IsPowerOf(n, b) && n != 1 {
		return 0, fmt.Errorf("profile: n = %d is not a power of b = %d", n, b)
	}
	k := Log(n, b)
	count := int64(1)
	for i := 0; i < k; i++ {
		if count > (math.MaxInt64-1)/a {
			return 0, fmt.Errorf("profile: M_{%d,%d}(%d) has too many boxes for int64", a, b, n)
		}
		count = a*count + 1
	}
	return count, nil
}

// WorstCasePotential returns the exact total potential of M_{a,b}(n) under
// exponent e = log_b a: Σ_{j=0..k} a^{k-j}·(b^j)^e = (k+1)·a^k, where
// n = b^k. This closed form is what experiment E1 checks the materialised
// profile against.
func WorstCasePotential(a, b, n int64) (float64, error) {
	if err := ValidateAB(a, b); err != nil {
		return 0, err
	}
	if !IsPowerOf(n, b) && n != 1 {
		return 0, fmt.Errorf("profile: n = %d is not a power of b = %d", n, b)
	}
	k := Log(n, b)
	return float64(k+1) * math.Pow(float64(a), float64(k)), nil
}

// WorstCase materialises M_{a,b}(n). n must be a power of b. The profile has
// (a^{k+1}-1)/(a-1) boxes for n = b^k; the constructor refuses sizes whose
// box count exceeds maxBoxes (2^31) to keep accidental OOMs impossible —
// use WorstCaseSource for streaming access to larger instances.
func WorstCase(a, b, n int64) (*SquareProfile, error) {
	const maxBoxes = int64(1) << 31
	count, err := WorstCaseBoxCount(a, b, n)
	if err != nil {
		return nil, err
	}
	if count > maxBoxes {
		return nil, fmt.Errorf("profile: M_{%d,%d}(%d) would have %d boxes; stream it with WorstCaseSource instead", a, b, n, count)
	}
	boxes := make([]int64, 0, count)
	boxes = appendWorstCase(boxes, a, b, n)
	return &SquareProfile{boxes: boxes}, nil
}

// appendWorstCase appends the boxes of M_{a,b}(n) to dst.
func appendWorstCase(dst []int64, a, b, n int64) []int64 {
	if n <= 1 {
		return append(dst, 1)
	}
	for i := int64(0); i < a; i++ {
		dst = appendWorstCase(dst, a, b, n/b)
	}
	return append(dst, n)
}

// WorstCaseSource streams the infinite limit profile M_{a,b} — the limit of
// M_{a,b}(n) as n → ∞, which is well defined because M_{a,b}(n) is a prefix
// of M_{a,b}(n·b).
//
// The stream has a simple odometer structure: it emits size-1 leaf boxes,
// and after the t-th leaf (1-based) it emits one box of size b^j for each
// j = 1..v_a(t), where v_a(t) is the number of trailing zero digits of t in
// base a — i.e. a box of size b^j follows every a^j-th leaf, closing the
// j-th recursion level.
type WorstCaseSource struct {
	a, b    int64
	leaf    int64   // leaves emitted so far
	pending []int64 // scan boxes owed after the current leaf, in order
}

// NewWorstCaseSource validates (a,b) and returns the infinite limit-profile
// stream.
func NewWorstCaseSource(a, b int64) (*WorstCaseSource, error) {
	if err := ValidateAB(a, b); err != nil {
		return nil, err
	}
	if a < 2 {
		return nil, fmt.Errorf("profile: limit profile needs a >= 2 (a = 1 never closes level boxes)")
	}
	return &WorstCaseSource{a: a, b: b}, nil
}

// Next returns the next box of M_{a,b}.
func (w *WorstCaseSource) Next() int64 {
	if len(w.pending) > 0 {
		box := w.pending[0]
		w.pending = w.pending[1:]
		return box
	}
	w.leaf++
	// Queue the level-closing boxes owed after this leaf.
	t := w.leaf
	size := w.b
	for t%w.a == 0 {
		w.pending = append(w.pending, size)
		t /= w.a
		size *= w.b
	}
	return 1
}

// emittedThrough returns how many boxes the stream emits through the end of
// leaf t's group: t leaf boxes plus one size-b^j closer after every a^j-th
// leaf, i.e. t + Σ_{j>=1} ⌊t/a^j⌋.
func (w *WorstCaseSource) emittedThrough(t int64) int64 {
	total := t
	for p := w.a; p <= t; p *= w.a {
		total += t / p
		if p > t/w.a {
			break // next p would overflow past t anyway
		}
	}
	return total
}

// ForkAt returns an independent source positioned after box boxes of the
// limit profile, reconstructing the odometer state in O(log^2 box) from the
// digit structure: the largest leaf t with emittedThrough(t) <= box locates
// the group the cursor is in, and the remainder picks how many of that
// group's closing boxes are still pending.
func (w *WorstCaseSource) ForkAt(box int64) Source {
	if box < 0 {
		box = 0
	}
	// Binary search the largest t with emittedThrough(t) <= box; each group
	// emits at least one box, so t <= box bounds the search.
	lo, hi := int64(0), box
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if w.emittedThrough(mid) <= box {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	f := &WorstCaseSource{a: w.a, b: w.b, leaf: lo}
	if r := box - w.emittedThrough(lo); r > 0 {
		// r boxes into leaf lo+1's group: the leaf box and r-1 of its
		// closers are consumed; closers b^r..b^v remain pending.
		f.leaf = lo + 1
		t := f.leaf
		size := w.b
		j := int64(1)
		for t%w.a == 0 {
			if j >= r {
				f.pending = append(f.pending, size)
			}
			t /= w.a
			size *= w.b
			j++
		}
	}
	return f
}

var _ ForkableSource = (*WorstCaseSource)(nil)
