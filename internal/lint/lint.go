package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DirectiveCheck is the pseudo-check name under which the driver reports
// malformed //lint: comments. It is not suppressible and not listed in
// Analyzers(): a broken suppression must always surface.
const DirectiveCheck = "directive"

// Diagnostic is one finding, positioned for file:line:col reporting.
//
// Anchor is an optional second position a suppression directive may attach
// to. The flow-aware checks use it to tie a finding back to the
// declaration it is *about*: lockguard reports an unguarded access at the
// access site but anchors it at the guarded field's declaration, so one
// //lint:ignore on the field line can waive every finding for that field
// instead of scattering directives across call sites.
type Diagnostic struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"-"`
	Anchor  token.Position `json:"-"`
	Message string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one check: a name for directives and CLI filters, a one-line
// doc string, and a Run function that inspects a type-checked package
// through its Pass and reports findings.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package. Mod is the whole
// module when the package was loaded through LoadModule, or nil for
// single-package loads (LoadDir, the testdata harness); module-aware
// analyzers (hotpath's call-graph walk) degrade to package-local analysis
// when it is absent.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Mod      *Module

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportfAnchored records a finding at pos that a suppression directive at
// anchor (a related declaration) also covers.
func (p *Pass) ReportfAnchored(pos, anchor token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Anchor:  p.Fset.Position(anchor),
		Message: fmt.Sprintf(format, args...),
	})
}

// Result is the outcome of running analyzers over one package: the findings
// that survived suppression, and the ones an //lint:ignore directive
// absorbed (kept visible so tests — and curious humans — can audit what is
// being suppressed and why).
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  []Diagnostic
}

// Scope restricts where a check runs, as module-relative package paths
// ("internal/core"; "" is the module root). A package is in scope when its
// path is at or below one of Only (or Only is empty) and not at or below
// any of Exclude. Matching is path-segment-aware: "internal/core" covers
// "internal/core/sub" but not "internal/corex".
type Scope struct {
	Only    []string
	Exclude []string
}

// Matches reports whether the module-relative package path rel is in scope.
func (s Scope) Matches(rel string) bool {
	for _, p := range s.Exclude {
		if pathHasPrefix(rel, p) {
			return false
		}
	}
	if len(s.Only) == 0 {
		return true
	}
	for _, p := range s.Only {
		if pathHasPrefix(rel, p) {
			return true
		}
	}
	return false
}

func pathHasPrefix(path, prefix string) bool {
	if prefix == "" || path == prefix {
		return true
	}
	return strings.HasPrefix(path, prefix+"/")
}

// RunPackage runs every analyzer (filtered by scopes, keyed by analyzer
// name; a missing entry means "everywhere") over pkg and partitions the
// findings by the package's //lint:ignore directives. Malformed //lint:
// comments are reported under DirectiveCheck regardless of scope and are
// never suppressible.
func RunPackage(pkg *Package, analyzers []*Analyzer, scopes map[string]Scope) Result {
	var directives []ignoreDirective
	var res Result
	for _, f := range pkg.Files {
		ds, malformed := collectDirectives(pkg.Fset, f)
		directives = append(directives, ds...)
		res.Diagnostics = append(res.Diagnostics, malformed...)
	}

	for _, a := range analyzers {
		if scope, ok := scopes[a.Name]; ok && !scope.Matches(pkg.Rel) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Mod:      pkg.Mod,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if suppressed(directives, d) {
				res.Suppressed = append(res.Suppressed, d)
			} else {
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
	}
	sortDiagnostics(res.Diagnostics)
	sortDiagnostics(res.Suppressed)
	return res
}

func suppressed(directives []ignoreDirective, d Diagnostic) bool {
	for _, dir := range directives {
		if dir.file == d.Pos.Filename && dir.suppresses(d.Check, d.Pos.Line) {
			return true
		}
		if d.Anchor.IsValid() && dir.file == d.Anchor.Filename && dir.suppresses(d.Check, d.Anchor.Line) {
			return true
		}
	}
	return false
}

// sortDiagnostics orders findings deterministically: by file, line, column,
// check, message. The driver's own output must obviously not depend on map
// or scheduling order.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
