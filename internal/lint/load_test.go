package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

const fixtureModule = "testdata/module"

// TestLoadModuleFixture pins the module loader's contract on the fixture
// module: both packages load in dependency order, share one FileSet, carry
// the Mod back-pointer, and module-internal imports resolve to the same
// *types.Package instance (object identity is what lets hotpath's index
// look up cross-package callees).
func TestLoadModuleFixture(t *testing.T) {
	mod, err := LoadModule(fixtureModule)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "example/fix" {
		t.Fatalf("module path %q, want example/fix", mod.Path)
	}
	if len(mod.Pkgs) != 2 {
		t.Fatalf("%d packages, want 2", len(mod.Pkgs))
	}
	a, b := mod.Lookup("pkga"), mod.Lookup("pkgb")
	if a == nil || b == nil {
		t.Fatalf("missing fixture packages: pkga=%v pkgb=%v", a, b)
	}
	if a.Mod != mod || b.Mod != mod {
		t.Error("packages do not point back at their module")
	}
	if a.Fset != mod.Fset || b.Fset != mod.Fset {
		t.Error("packages do not share the module FileSet")
	}
	for _, imp := range a.Types.Imports() {
		if imp.Path() == "example/fix/pkgb" && imp != b.Types {
			t.Error("pkga's import of pkgb is not the checked instance: object identity broken")
		}
	}
}

// TestHotPathCrossPackage runs hotpath over the fixture module: the
// allocation inside pkgb.Grow must surface in pkga's pass at the call
// edge, and the call to the independently-annotated pkgb.Hot must not.
func TestHotPathCrossPackage(t *testing.T) {
	mod, err := LoadModule(fixtureModule)
	if err != nil {
		t.Fatal(err)
	}
	a := mod.Lookup("pkga")
	res := RunPackage(a, []*Analyzer{HotPath}, nil)
	if len(res.Suppressed) != 0 {
		t.Errorf("unexpected suppressions: %v", res.Suppressed)
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("%d diagnostics, want exactly 1 (the Grow call edge): %v", len(res.Diagnostics), res.Diagnostics)
	}
	d := res.Diagnostics[0]
	if !strings.Contains(d.Message, "Access") || !strings.Contains(d.Message, "pkgb.Grow") || !strings.Contains(d.Message, "make") {
		t.Errorf("cross-package finding lost its root/callee/site classification: %s", d)
	}
	if filepath.Base(d.Pos.Filename) != "pkga.go" {
		t.Errorf("cross-package finding reported in %s, want the call edge in pkga.go", d.Pos.Filename)
	}

	// pkgb's own pass must stay clean: Grow is not annotated there, and
	// Hot allocates nothing.
	bres := RunPackage(mod.Lookup("pkgb"), []*Analyzer{HotPath}, nil)
	if len(bres.Diagnostics) != 0 {
		t.Errorf("pkgb pass reported %v; cross-package sites must not double-report", bres.Diagnostics)
	}
}

// TestLoadModuleCached pins the memoization contract: same absolute root,
// same *Module instance.
func TestLoadModuleCached(t *testing.T) {
	m1, err := LoadModuleCached(fixtureModule)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModuleCached(fixtureModule)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("LoadModuleCached returned distinct modules for one root")
	}
	abs, err := filepath.Abs(fixtureModule)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := LoadModuleCached(abs)
	if err != nil {
		t.Fatal(err)
	}
	if m3 != m1 {
		t.Error("relative and absolute spellings of one root missed the cache")
	}
}

// BenchmarkLoadModuleSharedImporter measures a module load through the
// process-wide stdlib importer (steady state: stdlib already checked).
// Compare against BenchmarkLoadModuleFreshImporter, which rebuilds the
// stdlib importer every load — the pre-cache behavior, where every
// cadaptivelint invocation path re-checked fmt/sync/sort from source.
func BenchmarkLoadModuleSharedImporter(b *testing.B) {
	if _, err := LoadModule(fixtureModule); err != nil { // warm the stdlib cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadModule(fixtureModule); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadModuleFreshImporter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := loadModuleWith(fixtureModule, freshStdImporter()); err != nil {
			b.Fatal(err)
		}
	}
}
