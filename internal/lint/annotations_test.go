package lint

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseAnnotation(t *testing.T) {
	cases := []struct {
		text string
		ann  Annotation
		ok   bool
	}{
		{"//lint:hotpath", Annotation{Kind: AnnHotPath}, true},
		{"//lint:guardedby mu", Annotation{Kind: AnnGuardedBy, Args: []string{"mu"}}, true},
		{"//lint:guardedby sharedMu", Annotation{Kind: AnnGuardedBy, Args: []string{"sharedMu"}}, true},
		{"//lint:locked mu", Annotation{Kind: AnnLocked, Args: []string{"mu"}}, true},
		{"//lint:locked mu,other", Annotation{Kind: AnnLocked, Args: []string{"mu", "other"}}, true},
		{"//lint:guardedby\tmu", Annotation{Kind: AnnGuardedBy, Args: []string{"mu"}}, true},

		{"//lint:hotpath extra", Annotation{}, false}, // hotpath takes no args
		{"//lint:hotpathX", Annotation{}, false},      // glued verb
		{"//lint:guardedby", Annotation{}, false},     // missing guard
		{"//lint:guardedby mu extra", Annotation{}, false},
		{"//lint:guardedby s.mu", Annotation{}, false}, // dotted paths rejected
		{"//lint:guardedby 9mu", Annotation{}, false},  // not an identifier
		{"//lint:locked", Annotation{}, false},
		{"//lint:locked mu,", Annotation{}, false},             // trailing comma
		{"//lint:locked ,mu", Annotation{}, false},             // leading comma
		{"//lint:locked mu other", Annotation{}, false},        // two args, not a list
		{"//lint:ignore errcheck reason", Annotation{}, false}, // ignore is not an annotation
		{"// lint:hotpath", Annotation{}, false},               // space before marker
		{"//lint: hotpath", Annotation{}, false},               // space after marker
		{"//lint:typo whatever", Annotation{}, false},
		{"not a comment", Annotation{}, false},
		{"", Annotation{}, false},
	}
	for _, c := range cases {
		ann, ok := ParseAnnotation(c.text)
		if ok != c.ok {
			t.Errorf("ParseAnnotation(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !reflect.DeepEqual(ann, c.ann) {
			t.Errorf("ParseAnnotation(%q) = %+v, want %+v", c.text, ann, c.ann)
		}
	}
}

// FuzzParseAnnotation mirrors the ignore-directive fuzzer: malformed input
// must degrade to the zero Annotation with ok == false — never a panic,
// never a partial parse that could half-apply a concurrency or allocation
// contract.
func FuzzParseAnnotation(f *testing.F) {
	for _, seed := range []string{
		"//lint:hotpath",
		"//lint:guardedby mu",
		"//lint:guardedby sharedMu",
		"//lint:locked mu",
		"//lint:locked mu,other",
		"//lint:hotpath extra",
		"//lint:hotpathX",
		"//lint:guardedby",
		"//lint:guardedby s.mu",
		"//lint:locked mu,",
		"//lint:locked ,mu",
		"//lint:ignore errcheck reason",
		"// lint:hotpath",
		"//lint: hotpath",
		"//lint:guardedby μu",
		"//lint:locked mu\x00",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		ann, ok := ParseAnnotation(text)
		if !ok {
			if ann.Kind != "" || ann.Args != nil {
				t.Fatalf("ParseAnnotation(%q): partial results %+v despite !ok", text, ann)
			}
			return
		}
		if !strings.HasPrefix(text, directivePrefix) {
			t.Fatalf("ParseAnnotation(%q): accepted text outside the //lint: namespace", text)
		}
		switch ann.Kind {
		case AnnHotPath:
			if ann.Args != nil {
				t.Fatalf("ParseAnnotation(%q): hotpath with args %v", text, ann.Args)
			}
		case AnnGuardedBy:
			if len(ann.Args) != 1 {
				t.Fatalf("ParseAnnotation(%q): guardedby with %d guards", text, len(ann.Args))
			}
		case AnnLocked:
			if len(ann.Args) == 0 {
				t.Fatalf("ParseAnnotation(%q): locked with no guards would assert nothing", text)
			}
		default:
			t.Fatalf("ParseAnnotation(%q): unknown kind %q", text, ann.Kind)
		}
		for _, g := range ann.Args {
			if !validGuardName(g) {
				t.Fatalf("ParseAnnotation(%q): invalid guard name %q accepted", text, g)
			}
		}
		// An accepted annotation must never also be an ignore directive:
		// the two grammars partition the namespace.
		if _, _, isIgnore := ParseIgnoreDirective(text); isIgnore {
			t.Fatalf("ParseAnnotation(%q): text parses as both annotation and ignore directive", text)
		}
	})
}
