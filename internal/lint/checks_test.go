package lint

import "testing"

// One testdata package per shipped check; the harness asserts both the
// expected diagnostics and the expected suppressions inline.

func TestNoRand(t *testing.T)    { runTestdata(t, NoRand, "norand") }
func TestNoTime(t *testing.T)    { runTestdata(t, NoTime, "notime") }
func TestErrCheck(t *testing.T)  { runTestdata(t, ErrCheck, "errcheck") }
func TestMapOrder(t *testing.T)  { runTestdata(t, MapOrder, "maporder") }
func TestMutexCopy(t *testing.T) { runTestdata(t, MutexCopy, "mutexcopy") }
func TestNoRecover(t *testing.T) { runTestdata(t, NoRecover, "norecover") }
func TestLockGuard(t *testing.T) { runTestdata(t, LockGuard, "lockguard") }
func TestHotPath(t *testing.T)   { runTestdata(t, HotPath, "hotpath") }

// TestAnalyzersRegistry keeps the registry aligned with the shipped checks
// and their documented names (the names are load-bearing: scopes and
// //lint:ignore directives key off them).
func TestAnalyzersRegistry(t *testing.T) {
	want := []string{"errcheck", "hotpath", "lockguard", "maporder", "mutexcopy", "norand", "norecover", "notime"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("%d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d named %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
		if a.Name == DirectiveCheck {
			t.Errorf("analyzer %q collides with the driver's directive pseudo-check", a.Name)
		}
	}
	scopes := DefaultScopes()
	for name := range scopes {
		found := false
		for _, a := range got {
			if a.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("DefaultScopes entry %q names no analyzer", name)
		}
	}
}

// TestScopeMatches pins the path-segment-aware prefix semantics.
func TestScopeMatches(t *testing.T) {
	cases := []struct {
		scope Scope
		rel   string
		want  bool
	}{
		{Scope{}, "internal/core", true},
		{Scope{Only: []string{"internal/core"}}, "internal/core", true},
		{Scope{Only: []string{"internal/core"}}, "internal/core/sub", true},
		{Scope{Only: []string{"internal/core"}}, "internal/corex", false},
		{Scope{Only: []string{"internal/core"}}, "cmd/cadaptive", false},
		{Scope{Exclude: []string{"internal/xrand"}}, "internal/xrand", false},
		{Scope{Exclude: []string{"internal/xrand"}}, "internal/xrandom", true},
		{Scope{Only: []string{""}}, "anything/at/all", true},
		{Scope{Only: []string{"internal"}, Exclude: []string{"internal/lint"}}, "internal/lint/sub", false},
	}
	for _, c := range cases {
		if got := c.scope.Matches(c.rel); got != c.want {
			t.Errorf("Scope{Only:%v Exclude:%v}.Matches(%q) = %v, want %v",
				c.scope.Only, c.scope.Exclude, c.rel, got, c.want)
		}
	}
}
