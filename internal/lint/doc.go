// Package lint is a self-contained static-analysis driver for this
// repository, built on the standard library only (go/parser, go/ast,
// go/types, go/token — no golang.org/x/tools). It exists because the
// reproduction's scientific claims rest on byte-identical, seed-reproducible
// experiment tables, and the invariants that guarantee that property
// (seeded randomness only, no wall-clock values in result bodies, no
// silently discarded parse errors, no map-iteration-ordered output, no
// copied locks) are exactly the kind of thing reviewer memory forgets.
//
// The driver loads the whole module once (parsing every non-test package
// and type-checking it against a source importer), runs a set of Analyzers
// over each requested package, and reports Diagnostics with file:line
// positions. Findings can be suppressed inline at the offending line with
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// placed on the same line or the line directly above. The reason is
// mandatory: a directive without one is malformed, and malformed
// //lint: comments are themselves reported (they never silently suppress).
//
// The checks shipped here are deliberately repo-specific; see analyzers.go
// for the set and DESIGN.md ("Determinism invariants") for why each exists.
package lint
