package lint

import "strconv"

// NoRand forbids math/rand and math/rand/v2. Every experiment's claim of
// seed-reproducibility depends on all randomness flowing through
// internal/xrand's explicitly seeded SplitMix64 streams; a single global
// math/rand call silently breaks byte-identical tables. The default scope
// exempts internal/xrand itself, which is the one place allowed to own a
// generator.
var NoRand = &Analyzer{
	Name: "norand",
	Doc:  "forbid math/rand imports; randomness must flow through seeded internal/xrand streams",
	Run:  runNoRand,
}

func runNoRand(p *Pass) {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s: all randomness must come from seeded internal/xrand sources", path)
			}
		}
	}
}
