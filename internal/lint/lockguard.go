package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockGuard reports accesses to annotated fields and package variables
// that are not provably made under their guarding mutex.
//
// A struct field (or package var) annotated //lint:guardedby mu may only
// be read or written where the access is preceded on every path, within
// the same function, by mu.Lock() or mu.RLock() on the same base path —
// or where the enclosing function is annotated //lint:locked mu, asserting
// its callers hold the lock.
//
// The analysis is a straight-line held-lock-set simulation, not a full
// CFG: branches fork a copy of the held set and rejoin by intersecting
// the branches that can fall through (a branch ending in return or panic
// never reaches the join, so unlock-and-return-early does not drop the
// lock for the code after the branch), loop bodies are checked against
// the loop-entry set, and function
// literals start from an empty set (they may run on another goroutine or
// after the frame returns). defer mu.Unlock() does not release the lock
// for the remainder of the body — that is exactly the semantics the
// pattern exists for. Known false-negative shapes are documented in
// DESIGN.md: lock identity is matched by rendered base path (aliasing two
// names for one shard defeats it), //lint:locked matches the guard by
// name regardless of which instance the caller locked, and accesses from
// other packages to exported guarded fields are not seen (each package's
// pass only knows its own annotations).
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "accesses to //lint:guardedby fields must hold the named mutex",
	Run:  runLockGuard,
}

// guardSpec records one guarded variable: the guard's name, the position
// of the guarded declaration (findings anchor there, so one //lint:ignore
// on the declaration line waives every access finding for it), and
// whether the variable is package-level rather than a struct field.
type guardSpec struct {
	guard  string
	anchor token.Pos
	pkgVar bool
}

func runLockGuard(pass *Pass) {
	guarded := collectGuards(pass)
	if len(guarded) == 0 {
		return
	}
	ls := &lockState{pass: pass, guarded: guarded}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ls.locked = map[string]bool{}
			for _, ann := range funcAnnotations(fn) {
				if ann.Kind == AnnLocked {
					for _, g := range ann.Args {
						ls.locked[g] = true
					}
				}
			}
			ls.stmt(fn.Body, lockSet{})
		}
	}
}

// collectGuards resolves every //lint:guardedby annotation in the package
// to the *types.Var it guards, validating that the named guard exists and
// is a sync.Mutex or sync.RWMutex (directly or behind a pointer).
func collectGuards(pass *Pass) map[*types.Var]guardSpec {
	guarded := map[*types.Var]guardSpec{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, ann := range fieldAnnotations(field.Doc, field.Comment) {
					if ann.Kind != AnnGuardedBy {
						continue
					}
					guard := ann.Args[0]
					if len(field.Names) == 0 {
						pass.Reportf(field.Pos(), "//lint:guardedby on an embedded field is not supported; name the field")
						continue
					}
					if !structHasMutex(pass.Info, st, guard) {
						pass.Reportf(field.Pos(), "//lint:guardedby %s: no sync.Mutex/RWMutex field %q in this struct", guard, guard)
						continue
					}
					for _, name := range field.Names {
						if v, ok := pass.Info.Defs[name].(*types.Var); ok {
							guarded[v] = guardSpec{guard: guard, anchor: field.Pos()}
						}
					}
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				doc := vs.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				for _, ann := range fieldAnnotations(doc, vs.Comment) {
					if ann.Kind != AnnGuardedBy {
						continue
					}
					guard := ann.Args[0]
					gobj, _ := pass.Pkg.Scope().Lookup(guard).(*types.Var)
					if gobj == nil || !isMutexType(gobj.Type()) {
						pass.Reportf(vs.Pos(), "//lint:guardedby %s: no package-level sync.Mutex/RWMutex var %q", guard, guard)
						continue
					}
					for _, name := range vs.Names {
						if v, ok := pass.Info.Defs[name].(*types.Var); ok {
							guarded[v] = guardSpec{guard: guard, anchor: vs.Pos(), pkgVar: true}
						}
					}
				}
			}
		}
	}
	return guarded
}

func structHasMutex(info *types.Info, st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				if tv, ok := info.Types[f.Type]; ok {
					return isMutexType(tv.Type)
				}
			}
		}
	}
	return false
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex, directly
// or behind one level of pointer.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockSet is the set of held locks, keyed by rendered path: "sh.mu" for a
// field guard reached through base sh, "sharedMu" for a package-level
// guard.
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func intersectLocks(a, b lockSet) lockSet {
	out := lockSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// lockState carries one function's simulation: the package-wide guarded
// map plus the //lint:locked guard names of the current function.
type lockState struct {
	pass    *Pass
	guarded map[*types.Var]guardSpec
	locked  map[string]bool
}

// stmt simulates s starting from held. It returns the held set after s
// and whether every path through s terminates (return or panic): a
// terminated branch contributes nothing to a join — its held set can
// never reach the statement after the branch, so e.g. the ubiquitous
// "unlock-and-return early, keep going locked otherwise" pattern does not
// poison the post-branch set.
func (ls *lockState) stmt(s ast.Stmt, held lockSet) (lockSet, bool) {
	switch s := s.(type) {
	case nil:
		return held, false
	case *ast.BlockStmt:
		return ls.stmtList(s.List, held)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(ls.pass.Info, call) {
			held = ls.expr(s.X, held)
			return held, true
		}
		return ls.expr(s.X, held), false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = ls.expr(e, held)
		}
		for _, e := range s.Lhs {
			held = ls.expr(e, held)
		}
		return held, false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						held = ls.expr(e, held)
					}
				}
			}
		}
		return held, false
	case *ast.IfStmt:
		held, _ = ls.stmt(s.Init, held)
		held = ls.expr(s.Cond, held)
		j := newJoin()
		then, tterm := ls.stmt(s.Body, held.clone())
		j.add(then, tterm)
		if s.Else != nil {
			other, oterm := ls.stmt(s.Else, held.clone())
			j.add(other, oterm)
		} else {
			j.add(held, false) // condition false: fall through untouched
		}
		return j.result(held)
	case *ast.ForStmt:
		held, _ = ls.stmt(s.Init, held)
		if s.Cond != nil {
			held = ls.expr(s.Cond, held)
		}
		body, bterm := ls.stmt(s.Body, held.clone())
		if !bterm {
			body, _ = ls.stmt(s.Post, body)
			return intersectLocks(held, body), false
		}
		return held, false // body always returns: only the 0-iteration path continues
	case *ast.RangeStmt:
		held = ls.expr(s.X, held)
		if s.Key != nil {
			held = ls.expr(s.Key, held)
		}
		if s.Value != nil {
			held = ls.expr(s.Value, held)
		}
		body, bterm := ls.stmt(s.Body, held.clone())
		if !bterm {
			return intersectLocks(held, body), false
		}
		return held, false
	case *ast.SwitchStmt:
		held, _ = ls.stmt(s.Init, held)
		if s.Tag != nil {
			held = ls.expr(s.Tag, held)
		}
		j := newJoin()
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			branch := held.clone()
			for _, e := range cc.List {
				branch = ls.expr(e, branch)
			}
			branch, term := ls.stmtList(cc.Body, branch)
			j.add(branch, term)
		}
		if !hasDefault {
			j.add(held, false) // no case matched: fall through untouched
		}
		return j.result(held)
	case *ast.TypeSwitchStmt:
		held, _ = ls.stmt(s.Init, held)
		held, _ = ls.stmt(s.Assign, held)
		j := newJoin()
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			branch, term := ls.stmtList(cc.Body, held.clone())
			j.add(branch, term)
		}
		if !hasDefault {
			j.add(held, false)
		}
		return j.result(held)
	case *ast.SelectStmt:
		j := newJoin()
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			branch, _ := ls.stmt(cc.Comm, held.clone())
			branch, term := ls.stmtList(cc.Body, branch)
			j.add(branch, term)
		}
		if !hasDefault && len(s.Body.List) == 0 {
			j.add(held, false)
		}
		return j.result(held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = ls.expr(e, held)
		}
		return held, true
	case *ast.SendStmt:
		held = ls.expr(s.Chan, held)
		return ls.expr(s.Value, held), false
	case *ast.IncDecStmt:
		return ls.expr(s.X, held), false
	case *ast.GoStmt:
		ls.deferredCall(s.Call, held)
		return held, false
	case *ast.DeferStmt:
		ls.deferredCall(s.Call, held)
		return held, false
	case *ast.LabeledStmt:
		return ls.stmt(s.Stmt, held)
	default:
		// BranchStmt, EmptyStmt: no expressions, no lock effects. break/
		// continue/goto are deliberately NOT termination — their target is
		// unknown to this straight-line pass, so letting their set join
		// keeps the analysis conservative (over-reporting, never silent).
		return held, false
	}
}

// stmtList folds a statement sequence; statements after a terminating one
// are unreachable and skipped.
func (ls *lockState) stmtList(list []ast.Stmt, held lockSet) (lockSet, bool) {
	for _, st := range list {
		var term bool
		held, term = ls.stmt(st, held)
		if term {
			return held, true
		}
	}
	return held, false
}

// join accumulates the branch results of a control-flow fork:
// intersection over the branches that can actually fall through.
type join struct {
	set  lockSet
	live bool
}

func newJoin() *join { return &join{} }

func (j *join) add(s lockSet, terminated bool) {
	if terminated {
		return
	}
	if !j.live {
		j.set, j.live = s, true
		return
	}
	j.set = intersectLocks(j.set, s)
}

// result returns the joined set; when every branch terminated, execution
// never reaches past the fork, so the pre-fork set (fallback) is as good
// as any and the fork reports terminated.
func (j *join) result(fallback lockSet) (lockSet, bool) {
	if !j.live {
		return fallback, true
	}
	return j.set, false
}

// isPanicCall reports whether call is the builtin panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// deferredCall checks a go/defer call's accesses against the current held
// set without applying lock effects: defer mu.Unlock() releases at frame
// exit, not here, and a spawned goroutine's locking helps nobody on this
// path.
func (ls *lockState) deferredCall(call *ast.CallExpr, held lockSet) {
	if sel, kind := ls.lockOp(call); sel != nil && kind != "" {
		ls.expr(sel.X, held.clone())
		return
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		ls.funcLit(fl)
	} else {
		ls.expr(call.Fun, held.clone())
	}
	for _, a := range call.Args {
		ls.expr(a, held.clone())
	}
}

// expr checks every guarded access in e against held and applies
// Lock/Unlock effects in evaluation order, returning the updated set.
func (ls *lockState) expr(e ast.Expr, held lockSet) lockSet {
	switch e := e.(type) {
	case nil:
		return held
	case *ast.Ident:
		ls.checkIdent(e, held)
		return held
	case *ast.SelectorExpr:
		ls.checkSelector(e, held)
		return ls.expr(e.X, held)
	case *ast.CallExpr:
		if sel, kind := ls.lockOp(e); sel != nil {
			held = ls.expr(sel.X, held)
			key, ok := renderPath(sel.X)
			if !ok {
				return held
			}
			switch kind {
			case "Lock", "RLock":
				held = held.clone()
				held[key] = true
			case "Unlock", "RUnlock":
				held = held.clone()
				delete(held, key)
			}
			return held
		}
		held = ls.expr(e.Fun, held)
		for _, a := range e.Args {
			held = ls.expr(a, held)
		}
		return held
	case *ast.FuncLit:
		ls.funcLit(e)
		return held
	case *ast.ParenExpr:
		return ls.expr(e.X, held)
	case *ast.StarExpr:
		return ls.expr(e.X, held)
	case *ast.UnaryExpr:
		return ls.expr(e.X, held)
	case *ast.BinaryExpr:
		held = ls.expr(e.X, held)
		return ls.expr(e.Y, held)
	case *ast.IndexExpr:
		held = ls.expr(e.X, held)
		return ls.expr(e.Index, held)
	case *ast.IndexListExpr:
		held = ls.expr(e.X, held)
		for _, i := range e.Indices {
			held = ls.expr(i, held)
		}
		return held
	case *ast.SliceExpr:
		held = ls.expr(e.X, held)
		held = ls.expr(e.Low, held)
		held = ls.expr(e.High, held)
		return ls.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		return ls.expr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				// Struct-literal keys are field names, not reads; map keys
				// are real expressions, but an Ident key resolving to a
				// field is never flagged (checkIdent only knows package
				// vars), so walking both is safe.
				held = ls.expr(kv.Key, held)
				held = ls.expr(kv.Value, held)
				continue
			}
			held = ls.expr(el, held)
		}
		return held
	case *ast.KeyValueExpr:
		held = ls.expr(e.Key, held)
		return ls.expr(e.Value, held)
	default:
		// Type expressions, literals: nothing to check.
		return held
	}
}

// funcLit analyzes a function literal's body from an EMPTY held set: the
// closure may run on another goroutine or after every lock here is gone.
// The literal inherits the surrounding //lint:locked assertion only if
// that is re-stated — it deliberately is not, because the assertion is
// about the declared function's callers.
func (ls *lockState) funcLit(fl *ast.FuncLit) {
	saved := ls.locked
	ls.locked = map[string]bool{}
	ls.stmt(fl.Body, lockSet{})
	ls.locked = saved
}

// lockOp reports whether call is mu.Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the selector and method name.
func (ls *lockState) lockOp(call *ast.CallExpr) (*ast.SelectorExpr, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	tv, ok := ls.pass.Info.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return nil, ""
	}
	return sel, sel.Sel.Name
}

// checkSelector flags a guarded-field access not covered by the held set
// or the function's //lint:locked assertion.
func (ls *lockState) checkSelector(sel *ast.SelectorExpr, held lockSet) {
	s, ok := ls.pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	spec, ok := ls.guarded[v]
	if !ok || spec.pkgVar {
		return
	}
	if ls.locked[spec.guard] {
		return
	}
	base, rendered := renderPath(sel.X)
	if rendered && held[base+"."+spec.guard] {
		return
	}
	if !rendered {
		base = "<expr>"
	}
	ls.pass.ReportfAnchored(sel.Sel.Pos(), spec.anchor,
		"%s is guarded by %q: access does not hold %s.%s (lock it first or annotate the function //lint:locked %s)",
		v.Name(), spec.guard, base, spec.guard, spec.guard)
}

// checkIdent flags a guarded package-var access not covered by the held
// set or the function's //lint:locked assertion.
func (ls *lockState) checkIdent(id *ast.Ident, held lockSet) {
	v, ok := ls.pass.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	spec, ok := ls.guarded[v]
	if !ok || !spec.pkgVar {
		return
	}
	if ls.locked[spec.guard] || held[spec.guard] {
		return
	}
	ls.pass.ReportfAnchored(id.Pos(), spec.anchor,
		"%s is guarded by %q: access does not hold %s (lock it first or annotate the function //lint:locked %s)",
		v.Name(), spec.guard, spec.guard, spec.guard)
}

// renderPath renders an lvalue-ish path ("sh", "c.shards[i]", "(*p).mu")
// to a canonical string for lock-identity matching. Calls and anything
// else whose identity cannot be read off the syntax are unrenderable;
// an unrenderable lock target is simply not recorded (conservative: the
// access side then fails), and an unrenderable access base reports.
func renderPath(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := renderPath(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return renderPath(e.X)
	case *ast.StarExpr:
		return renderPath(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return renderPath(e.X)
		}
		return "", false
	case *ast.IndexExpr:
		base, ok := renderPath(e.X)
		idx, ok2 := renderPath(e.Index)
		if ok && ok2 {
			return base + "[" + idx + "]", true
		}
		return "", false
	case *ast.BasicLit:
		return e.Value, true
	default:
		return "", false
	}
}
