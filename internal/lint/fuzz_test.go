package lint

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseIgnoreDirective drives arbitrary comment text through the
// suppression-directive parser. The contract under fuzzing is the safety
// property the whole gate rests on: malformed input must degrade to "not a
// suppression" (ok == false, no partial results) — never to a panic and
// never to a directive with an empty check list or empty reason, either of
// which could silently widen what gets suppressed.
func FuzzParseIgnoreDirective(f *testing.F) {
	for _, seed := range []string{
		"//lint:ignore norand seeded baseline",
		"//lint:ignore errcheck,maporder both fine here",
		"//lint:ignore notime metrics timing",
		"//lint:ignore a-b_2 reason with several words",
		"//lint:ignore",
		"//lint:ignore norand",
		"//lint:ignorenorand reason",
		"//lint:ignore ,norand reason",
		"//lint:ignore nor&and reason",
		"//lint:ignore errcheck,,maporder reason",
		"// lint:ignore norand reason",
		"/*lint:ignore norand reason*/",
		"//lint:ignore\tnorand\treason",
		"//lint:ignore \x00 reason",
		"//lint:ignore норанд причина",
		"//lint:ignore norand ",
		"lint:ignore norand reason",
		"",
		// Annotation verbs share the //lint: namespace: none of these may
		// parse as an ignore directive, however the mutator mangles them.
		"//lint:ignore lockguard approximate counter, torn reads acceptable",
		"//lint:ignore hotpath one-time geometric growth, amortized",
		"//lint:guardedby mu",
		"//lint:locked mu,other",
		"//lint:hotpath",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		checks, reason, ok := ParseIgnoreDirective(text)
		if !ok {
			if checks != nil || reason != "" {
				t.Fatalf("ParseIgnoreDirective(%q): partial results %v/%q despite !ok", text, checks, reason)
			}
			return
		}
		if len(checks) == 0 {
			t.Fatalf("ParseIgnoreDirective(%q): ok with empty check list would suppress nothing — or everything", text)
		}
		for _, c := range checks {
			if c == "" || strings.ContainsAny(c, ", \t") || !validCheckName(c) {
				t.Fatalf("ParseIgnoreDirective(%q): invalid check token %q accepted", text, c)
			}
		}
		if strings.TrimSpace(reason) == "" {
			t.Fatalf("ParseIgnoreDirective(%q): ok with blank reason %q", text, reason)
		}
		if !strings.HasPrefix(text, "//lint:ignore") {
			t.Fatalf("ParseIgnoreDirective(%q): accepted text outside the directive namespace", text)
		}
		if !utf8.ValidString(reason) && utf8.ValidString(text) {
			t.Fatalf("ParseIgnoreDirective(%q): invented invalid UTF-8 in reason %q", text, reason)
		}
		// A well-formed directive must actually suppress its own checks and
		// nothing else, on exactly its own and the following line.
		d := ignoreDirective{checks: checks, line: 7}
		for _, c := range checks {
			if !d.suppresses(c, 7) || !d.suppresses(c, 8) {
				t.Fatalf("ParseIgnoreDirective(%q): parsed directive fails to suppress %q", text, c)
			}
			if d.suppresses(c, 6) || d.suppresses(c, 9) {
				t.Fatalf("ParseIgnoreDirective(%q): directive for %q leaks beyond its two lines", text, c)
			}
		}
	})
}
