package lint

import (
	"go/ast"
	"go/types"
)

// NoRecover flags `go func(...) {...}(...)` goroutine literals that cannot
// recover a panic. An unrecovered panic in any goroutine kills the whole
// process — for cadaptived that means every queued run, the result cache,
// and the listener die because one background task hit a nil map. The
// engine and service contain panics at their boundaries (engine.runCell,
// the HTTP recovery middleware, the singleflight wrapper); this check
// keeps ad-hoc goroutines from quietly opting out of that failure model.
//
// A literal counts as protected when it defers recovery:
//
//   - defer func() { ... recover() ... }()
//   - defer helper()   where helper is a same-package function whose body
//     calls recover
//   - defer recover()  (legal, if inadvisable: the value is lost)
//
// Deliberately panic-free claim loops and goroutines whose panics are
// contained further down (as in engine.Map, where runCell wraps every
// cell) carry a //lint:ignore norecover annotation saying so. Named
// functions launched with `go fn()` are not flagged: fn owns its own
// panic policy and is checkable at its declaration.
var NoRecover = &Analyzer{
	Name: "norecover",
	Doc:  "forbid goroutine literals without deferred panic recovery in server/engine packages",
	Run:  runNoRecover,
}

func runNoRecover(p *Pass) {
	// Same-package function declarations by object, so a deferred call to a
	// local helper can be followed to its body.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !p.goroutineRecovers(lit, decls) {
				p.Reportf(g.Pos(), "goroutine literal without panic recovery: an unrecovered panic here kills the process; defer a recover (or annotate why a panic is impossible)")
			}
			return true
		})
	}
}

// goroutineRecovers reports whether the goroutine literal defers a recover
// in its own frame. Defers inside nested function literals run in those
// frames and cannot stop a panic unwinding this one, so the walk does not
// descend into them (except into the deferred call itself).
func (p *Pass) goroutineRecovers(lit *ast.FuncLit, decls map[types.Object]*ast.FuncDecl) bool {
	protected := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if protected {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested frame's defers don't protect this one
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		switch fn := d.Call.Fun.(type) {
		case *ast.FuncLit:
			if p.containsRecover(fn.Body) {
				protected = true
			}
		case *ast.Ident:
			if p.isBuiltinRecover(fn) {
				protected = true // defer recover()
			} else if obj := p.Info.Uses[fn]; obj != nil {
				if fd, ok := decls[obj]; ok && p.containsRecover(fd.Body) {
					protected = true
				}
			}
		case *ast.SelectorExpr:
			if obj := p.Info.Uses[fn.Sel]; obj != nil {
				if fd, ok := decls[obj]; ok && p.containsRecover(fd.Body) {
					protected = true
				}
			}
		}
		return true
	})
	return protected
}

// containsRecover reports whether node calls the builtin recover anywhere
// (including in nested literals: a deferred helper may itself defer).
func (p *Pass) containsRecover(node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && p.isBuiltinRecover(id) {
				found = true
			}
		}
		return true
	})
	return found
}

// isBuiltinRecover reports whether id resolves to the predeclared recover
// (not a local function that happens to share the name).
func (p *Pass) isBuiltinRecover(id *ast.Ident) bool {
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "recover"
}
