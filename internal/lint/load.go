package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one parsed, type-checked, non-test package of the module.
// Mod points back at the module that loaded it (nil under LoadDir), so
// module-aware analyzers can walk call edges into sibling packages.
type Package struct {
	Path  string // full import path, e.g. "repro/internal/core"
	Rel   string // module-relative path, "" for the module root
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Mod   *Module
}

// Module is the whole repository, loaded once. All packages share one
// FileSet and one (caching) source importer for the standard library.
type Module struct {
	Root string // absolute module root directory
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // dependency order, then by path
}

// Lookup returns the package with the given module-relative path.
func (m *Module) Lookup(rel string) *Package {
	for _, p := range m.Pkgs {
		if p.Rel == rel {
			return p
		}
	}
	return nil
}

// LoadModule parses and type-checks every non-test package under root
// (which must contain go.mod). Directories named testdata or vendor,
// hidden directories, and _-prefixed directories are skipped — testdata
// packages deliberately contain the violations the checks hunt for.
func LoadModule(root string) (*Module, error) {
	return loadModuleWith(root, stdImporter())
}

// loadModuleWith is LoadModule with an explicit stdlib importer, split out
// so the loader benchmark can measure the shared importer against a fresh
// one per load (the pre-cache behavior).
func loadModuleWith(root string, std types.Importer) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	mod := &Module{Root: root, Path: modPath, Fset: fset}

	type parsed struct {
		pkg     *Package
		imports map[string]bool // module-internal imports only
	}
	byPath := map[string]*parsed{}

	err = filepath.WalkDir(root, func(dir string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if dir != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, perr := parseDir(fset, dir)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(root, dir)
		if rerr != nil {
			return rerr
		}
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		importPath := modPath
		if rel != "" {
			importPath = modPath + "/" + rel
		}
		p := &parsed{
			pkg:     &Package{Path: importPath, Rel: rel, Dir: dir, Fset: fset, Files: files},
			imports: map[string]bool{},
		}
		for _, f := range files {
			for _, imp := range f.Imports {
				path, uerr := strconv.Unquote(imp.Path.Value)
				if uerr != nil {
					continue
				}
				if path == modPath || strings.HasPrefix(path, modPath+"/") {
					p.imports[path] = true
				}
			}
		}
		byPath[importPath] = p
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Type-check in dependency order so module-internal imports resolve to
	// already-checked packages. Import cycles cannot occur in compilable Go;
	// if one sneaks in (the tree is broken), fail with the remainder listed.
	checked := map[string]*types.Package{}
	imp := &moduleImporter{
		checked: checked,
		source:  std,
	}
	order := make([]string, 0, len(byPath))
	for path := range byPath {
		order = append(order, path) //lint:ignore maporder order is sorted immediately below
	}
	sort.Strings(order)
	for len(order) > 0 {
		progress := false
		var remaining []string
		for _, path := range order {
			p := byPath[path]
			ready := true
			for dep := range p.imports {
				if _, ok := checked[dep]; !ok {
					if _, internal := byPath[dep]; internal {
						ready = false
						break
					}
				}
			}
			if !ready {
				remaining = append(remaining, path)
				continue
			}
			if err := typeCheck(p.pkg, imp); err != nil {
				return nil, err
			}
			p.pkg.Mod = mod
			checked[path] = p.pkg.Types
			mod.Pkgs = append(mod.Pkgs, p.pkg)
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("lint: import cycle or missing dependency among %s", strings.Join(remaining, ", "))
		}
		order = remaining
	}
	return mod, nil
}

// LoadDir parses and type-checks the single package in dir against the
// standard library only. The analyzer test harness uses it to load
// testdata packages that the module walk deliberately skips.
func LoadDir(dir string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg := &Package{
		Path:  files[0].Name.Name,
		Rel:   files[0].Name.Name,
		Dir:   dir,
		Fset:  fset,
		Files: files,
	}
	imp := &moduleImporter{
		checked: map[string]*types.Package{},
		source:  stdImporter(),
	}
	if err := typeCheck(pkg, imp); err != nil {
		return nil, err
	}
	return pkg, nil
}

// stdImporter returns the process-wide standard-library source importer.
// Building one is the expensive part of a load — it parses and checks
// every stdlib package the module touches from source — so all loads in a
// process share one instance, and repeat imports hit its internal cache.
// It owns a dedicated FileSet: stdlib positions are never rendered in
// diagnostics (analyzers only report positions of module AST nodes), so
// divorcing them from the module FileSet is safe.
func stdImporter() types.Importer {
	stdImpOnce.Do(func() {
		stdImp = &lockedImporter{imp: freshStdImporter()}
	})
	return stdImp
}

var (
	stdImpOnce sync.Once
	stdImp     types.Importer
)

// freshStdImporter builds an uncached stdlib source importer with its own
// FileSet. The loader benchmark uses it directly to measure what every
// load used to pay before stdImporter existed.
func freshStdImporter() types.Importer {
	return importer.ForCompiler(token.NewFileSet(), "source", nil)
}

// lockedImporter serializes Import calls: the go/importer source importer
// caches internally but is not documented as safe for concurrent use.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.imp.Import(path)
}

// LoadModuleCached memoizes LoadModule by absolute root path, so a driver
// that resolves several package patterns against the same module (the
// cadaptivelint CLI with ./... plus explicit paths) type-checks the tree
// once per process instead of once per pattern. Errors are memoized too:
// a broken tree fails the same way for every caller.
func LoadModuleCached(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modCacheMu.Lock()
	defer modCacheMu.Unlock()
	if e, ok := modCache[abs]; ok {
		return e.mod, e.err
	}
	mod, err := LoadModule(abs)
	modCache[abs] = modCacheEntry{mod: mod, err: err}
	return mod, err
}

type modCacheEntry struct {
	mod *Module
	err error
}

var (
	modCacheMu sync.Mutex
	modCache   = map[string]modCacheEntry{}
)

// parseDir parses the non-test Go files of dir (with comments, which the
// suppression directives live in), sorted by file name for determinism.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("lint: %s holds two packages (%s and %s); build-tagged dirs are not supported", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	return files, nil
}

// typeCheck populates pkg.Types and pkg.Info.
func typeCheck(pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := &types.Config{Importer: imp}
	tpkg, err := cfg.Check(pkg.Path, pkg.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// moduleImporter resolves module-internal imports to packages this run
// already type-checked, and everything else (the standard library — the
// module has no external dependencies) through the caching source importer.
type moduleImporter struct {
	checked map[string]*types.Package
	source  types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.checked[path]; ok {
		return p, nil
	}
	return m.source.Import(path)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mp := strings.TrimSpace(rest)
			mp = strings.Trim(mp, `"`)
			if mp != "" {
				return mp, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}
