package lint

// Analyzers returns every shipped check, in reporting-name order.
// lockguard and hotpath are annotation-driven: they are no-ops in
// packages that carry no //lint:guardedby / //lint:hotpath annotations,
// so they need no scope entries.
func Analyzers() []*Analyzer {
	return []*Analyzer{ErrCheck, HotPath, LockGuard, MapOrder, MutexCopy, NoRand, NoRecover, NoTime}
}

// DefaultScopes is the repository policy for where each check applies,
// keyed by check name with module-relative package paths. Checks without
// an entry run everywhere.
//
//   - norand runs everywhere except internal/xrand, the one package allowed
//     to own a generator (it wraps SplitMix64 and hands out seeded streams).
//   - norecover runs in the long-lived-process packages — the commands and
//     the engine/service layers beneath them — where one goroutine's
//     unrecovered panic kills cadaptived (or a mid-run CLI) outright.
//     Library and experiment code is excluded: it runs inside engine.Map,
//     whose runCell already contains cell panics.
//   - notime runs only in the result-producing packages: internal/core
//     builds the tables that golden files and BENCH_*.json snapshots are
//     compared against, and internal/service persists bodies in the
//     content-addressed cache. Timing/metrics code inside them must carry
//     //lint:ignore notime annotations.
func DefaultScopes() map[string]Scope {
	return map[string]Scope{
		"norand":    {Exclude: []string{"internal/xrand"}},
		"norecover": {Only: []string{"cmd", "internal/engine", "internal/jobs", "internal/service"}},
		"notime":    {Only: []string{"internal/core", "internal/jobs", "internal/service"}},
	}
}
