package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// HotPath reports definite allocation sites reachable from functions
// annotated //lint:hotpath, walking the static call graph within the
// module.
//
// The sites it classifies: new, make, &composite-literal, append inside a
// loop (growth without preallocated capacity), string<->[]byte/[]rune
// conversions, function literals (closure allocation), and interface
// boxing — passing or converting a concrete non-pointer-shaped value to
// an interface. Constants and nil never box; pointers, channels, maps,
// and funcs are pointer-shaped and box allocation-free.
//
// The walk stops at three documented boundaries (false-negative shapes,
// see DESIGN.md): calls into the standard library, dynamic calls
// (interface methods, function values), and callees that are themselves
// annotated //lint:hotpath — the latter are independently checked where
// they are declared, so the contract composes instead of double-reporting.
// Allocation sites inside same-package callees are reported at the site;
// sites inside other packages' callees are reported at the call edge in
// the current package, because a suppression must live in the package
// whose pass reports the finding.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "no definite allocation sites reachable from //lint:hotpath functions",
	Run:  runHotPath,
}

// indexedFunc is one module function the call-graph walk can enter.
type indexedFunc struct {
	decl    *ast.FuncDecl
	pkg     *types.Package
	info    *types.Info
	fset    *token.FileSet
	hotpath bool // annotated itself: a walk boundary
}

// funcIndex maps every declared function in scope to its body, keyed by
// the types object (shared across packages because LoadModule resolves
// module-internal imports to already-checked packages).
type funcIndex map[types.Object]*indexedFunc

var (
	funcIndexMu    sync.Mutex
	funcIndexCache = map[*Module]funcIndex{}
)

// buildFuncIndex indexes every FuncDecl the walk may enter: the whole
// module when the package was loaded through LoadModule, else just the
// current package (the testdata harness loads packages standalone).
// Module indexes are memoized — every package's pass shares one.
func buildFuncIndex(pass *Pass) funcIndex {
	if pass.Mod == nil {
		idx := funcIndex{}
		indexPackage(idx, pass.Fset, pass.Files, pass.Info, pass.Pkg)
		return idx
	}
	funcIndexMu.Lock()
	defer funcIndexMu.Unlock()
	if idx, ok := funcIndexCache[pass.Mod]; ok {
		return idx
	}
	idx := funcIndex{}
	for _, p := range pass.Mod.Pkgs {
		indexPackage(idx, p.Fset, p.Files, p.Info, p.Types)
	}
	funcIndexCache[pass.Mod] = idx
	return idx
}

func indexPackage(idx funcIndex, fset *token.FileSet, files []*ast.File, info *types.Info, pkg *types.Package) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := info.Defs[fn.Name]
			if obj == nil {
				continue
			}
			hot := false
			for _, ann := range funcAnnotations(fn) {
				if ann.Kind == AnnHotPath {
					hot = true
				}
			}
			idx[obj] = &indexedFunc{decl: fn, pkg: pkg, info: info, fset: fset, hotpath: hot}
		}
	}
}

func runHotPath(pass *Pass) {
	idx := buildFuncIndex(pass)
	w := &hotWalker{
		pass:     pass,
		idx:      idx,
		visited:  map[types.Object]bool{},
		reported: map[token.Pos]bool{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fn.Name]
			ixf, ok := idx[obj]
			if !ok || !ixf.hotpath {
				continue
			}
			w.walk(obj, funcDisplayName(fn))
		}
	}
}

// hotWalker carries one package pass's BFS over the call graph. visited
// is shared across roots: a helper reached from two hot paths is checked
// once, and its findings name the first root that reached it (roots are
// processed in file order, so attribution is deterministic).
type hotWalker struct {
	pass     *Pass
	idx      funcIndex
	visited  map[types.Object]bool
	reported map[token.Pos]bool
}

type hotEdge struct {
	obj      types.Object
	root     string    // display name of the annotated root
	callSite token.Pos // edge position in the pass's package, NoPos for the root itself
}

func (w *hotWalker) walk(rootObj types.Object, rootName string) {
	queue := []hotEdge{{obj: rootObj, root: rootName}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if w.visited[e.obj] {
			continue
		}
		w.visited[e.obj] = true
		ixf := w.idx[e.obj]
		if ixf == nil {
			continue
		}
		queue = append(queue, w.checkBody(ixf, e)...)
	}
}

// checkBody scans one function body for allocation sites and returns the
// call edges to enqueue. samePkg tells whether findings may be reported
// at their own position (same package as the pass) or must be folded back
// onto the call edge that left the package.
func (w *hotWalker) checkBody(ixf *indexedFunc, e hotEdge) []hotEdge {
	samePkg := ixf.pkg == w.pass.Pkg
	var edges []hotEdge
	body := ixf.decl.Body
	fnName := funcDisplayName(ixf.decl)

	report := func(pos token.Pos, class string) {
		if samePkg {
			if w.reported[pos] {
				return
			}
			w.reported[pos] = true
			if e.callSite == token.NoPos && fnName == e.root {
				w.pass.Reportf(pos, "allocation on hot path %s: %s", e.root, class)
			} else {
				w.pass.Reportf(pos, "allocation on hot path %s (in %s): %s", e.root, fnName, class)
			}
			return
		}
		// Foreign package: report at the call edge in the pass's package,
		// where a //lint:ignore can actually cover it.
		if w.reported[e.callSite] {
			return
		}
		w.reported[e.callSite] = true
		w.pass.Reportf(e.callSite, "allocation on hot path %s: call into %s.%s reaches %s at %s",
			e.root, ixf.pkg.Name(), fnName, class, ixf.fset.Position(pos))
	}

	var loopDepth int
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			ast.Inspect(loopBody(n), scan)
			loopDepth--
			// Init/Cond/Post/X run outside (or once per iteration —
			// conservative either way); walk them at current depth.
			for _, sub := range loopHeader(n) {
				if sub != nil {
					ast.Inspect(sub, scan)
				}
			}
			return false
		case *ast.FuncLit:
			report(n.Pos(), "closure allocation (func literal)")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal")
				}
			}
		case *ast.CallExpr:
			w.checkCall(ixf, n, loopDepth, report)
			if edge := w.callEdge(ixf, n, e); edge != nil {
				edges = append(edges, *edge)
			}
		}
		return true
	}
	ast.Inspect(body, scan)
	return edges
}

// checkCall classifies one call expression: builtin allocators,
// string conversions, and interface boxing of its arguments.
func (w *hotWalker) checkCall(ixf *indexedFunc, call *ast.CallExpr, loopDepth int, report func(token.Pos, string)) {
	info := ixf.info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				report(call.Pos(), "new")
			case "make":
				report(call.Pos(), "make")
			case "append":
				if loopDepth > 0 {
					report(call.Pos(), "append inside loop (growth without preallocated cap)")
				}
			}
			return
		}
	}
	// Type conversions: string <-> []byte / []rune copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		if argTV, ok := info.Types[call.Args[0]]; ok {
			if stringByteConversion(to, argTV.Type) {
				report(call.Pos(), "string<->[]byte conversion")
			}
		}
		return
	}
	// Interface boxing at the call site: a concrete non-pointer-shaped,
	// non-constant argument passed to an interface parameter.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call)
		if pt == nil {
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Value != nil || atv.IsNil() {
			continue // constants and nil never box
		}
		at := atv.Type
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		report(arg.Pos(), fmt.Sprintf("interface boxing of %s argument", at.String()))
	}
}

// callEdge resolves call to a module function the walk should enter, or
// nil for boundaries: builtins, dynamic calls, the standard library, and
// callees independently checked under their own //lint:hotpath.
func (w *hotWalker) callEdge(ixf *indexedFunc, call *ast.CallExpr, e hotEdge) *hotEdge {
	fn := calleeFunc(ixf.info, call)
	if fn == nil {
		return nil
	}
	target, ok := w.idx[types.Object(fn)]
	if !ok || target.hotpath {
		return nil
	}
	site := e.callSite
	if ixf.pkg == w.pass.Pkg {
		// The edge leaves from the pass's package: record this call site
		// as the anchor for findings in foreign callees.
		site = call.Pos()
	}
	return &hotEdge{obj: types.Object(fn), root: e.root, callSite: site}
}

func loopBody(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.ForStmt:
		return n.Body
	case *ast.RangeStmt:
		return n.Body
	}
	return nil
}

func loopHeader(n ast.Node) []ast.Node {
	switch n := n.(type) {
	case *ast.ForStmt:
		out := []ast.Node{}
		if n.Init != nil {
			out = append(out, n.Init)
		}
		if n.Cond != nil {
			out = append(out, n.Cond)
		}
		if n.Post != nil {
			out = append(out, n.Post)
		}
		return out
	case *ast.RangeStmt:
		return []ast.Node{n.X}
	}
	return nil
}

// callSignature returns the signature of the called function or method,
// nil when the callee is a builtin or a type conversion.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// paramTypeAt returns the type of the parameter receiving argument i,
// unrolling variadics; nil for f(slice...) pass-through.
func paramTypeAt(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		if call.Ellipsis != token.NoPos {
			return nil // passing an existing slice through: no per-element boxing here
		}
		last := params.At(params.Len() - 1).Type()
		if s, ok := last.(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// pointerShaped reports whether values of t fit in a pointer word and box
// into interfaces without allocating: pointers, channels, maps, funcs,
// unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// stringByteConversion reports whether converting from -> to copies
// between string and []byte/[]rune.
func stringByteConversion(to, from types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Byte || b.Kind() == types.Uint8 ||
		b.Kind() == types.Rune || b.Kind() == types.Int32
}

// funcDisplayName renders "Name" for functions and "Recv.Name" for
// methods, pointer receivers stripped.
func funcDisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
			continue
		case *ast.ParenExpr:
			t = tt.X
			continue
		case *ast.IndexExpr: // generic receiver
			t = tt.X
			continue
		}
		break
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}
