package lint

import (
	"go/ast"
	"strings"
)

// The flow-aware checks are driven by three annotation verbs in the
// //lint: namespace (no space after "//", matching //go: directives and
// //lint:ignore):
//
//	//lint:guardedby <mutex>          on a struct field or package var:
//	                                  accesses must hold the named mutex
//	//lint:locked <mutex>[,<mutex>]   on a function: the named mutexes are
//	                                  held throughout its body
//	//lint:hotpath                    on a function: no definite allocation
//	                                  sites in it or its module callees
//
// Like ignore directives, a //lint: comment that *tries* to be one of
// these but is malformed — missing or extra arguments, a non-identifier
// guard name — is reported under DirectiveCheck rather than silently
// skipped, so a typo can never quietly disable a contract.
const (
	AnnGuardedBy = "guardedby"
	AnnLocked    = "locked"
	AnnHotPath   = "hotpath"
)

// Annotation is one parsed //lint:guardedby, //lint:locked, or
// //lint:hotpath comment.
type Annotation struct {
	Kind string   // AnnGuardedBy, AnnLocked, or AnnHotPath
	Args []string // guard names; nil for hotpath
}

// ParseAnnotation parses the raw text of a single comment (including its
// "//" marker). ok reports whether text is a well-formed annotation; on
// ok == false the returned Annotation is the zero value — no partial
// results, mirroring ParseIgnoreDirective, so a broken annotation can
// never half-apply.
func ParseAnnotation(text string) (ann Annotation, ok bool) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return Annotation{}, false
	}
	verb, args := splitVerb(rest)
	switch verb {
	case AnnHotPath:
		if len(args) != 0 {
			return Annotation{}, false // hotpath takes no arguments
		}
		return Annotation{Kind: AnnHotPath}, true
	case AnnGuardedBy:
		if len(args) != 1 || !validGuardName(args[0]) {
			return Annotation{}, false
		}
		return Annotation{Kind: AnnGuardedBy, Args: args}, true
	case AnnLocked:
		if len(args) != 1 {
			return Annotation{}, false
		}
		var guards []string
		for _, g := range strings.Split(args[0], ",") {
			if !validGuardName(g) {
				return Annotation{}, false
			}
			guards = append(guards, g)
		}
		return Annotation{Kind: AnnLocked, Args: guards}, true
	default:
		return Annotation{}, false
	}
}

// splitVerb splits the post-"//lint:" remainder into the directive verb
// and its whitespace-separated arguments. The verb ends at the first
// whitespace; "//lint:hotpathX" yields verb "hotpathX", which no case
// matches, so it falls through to the generic malformed-directive report.
func splitVerb(rest string) (verb string, args []string) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", nil
	}
	// Reject "//lint: hotpath" (space between marker and verb): Fields
	// would hide the gap, so check the raw remainder starts with the verb.
	if !strings.HasPrefix(rest, fields[0]) {
		return "", nil
	}
	return fields[0], fields[1:]
}

// validGuardName reports whether s is a plain Go identifier — the only
// shape a guard reference may take. Dotted paths are deliberately not
// allowed: a guard lives in the same struct (for fields), the same
// package (for vars), or on the same receiver (for //lint:locked).
func validGuardName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		b := s[i]
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_':
		case b >= '0' && b <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// annotationsIn parses every annotation in a comment group. Malformed
// //lint: comments are skipped here — collectDirectives already reported
// them — so analyzers act only on well-formed annotations.
func annotationsIn(cg *ast.CommentGroup) []Annotation {
	if cg == nil {
		return nil
	}
	var anns []Annotation
	for _, c := range cg.List {
		if ann, ok := ParseAnnotation(c.Text); ok {
			anns = append(anns, ann)
		}
	}
	return anns
}

// funcAnnotations returns the annotations attached to a function
// declaration through its doc comment group.
func funcAnnotations(fn *ast.FuncDecl) []Annotation {
	return annotationsIn(fn.Doc)
}

// fieldAnnotations returns the annotations attached to a struct field or
// ValueSpec: the doc group above it and the trailing comment on its line.
func fieldAnnotations(doc, comment *ast.CommentGroup) []Annotation {
	return append(annotationsIn(doc), annotationsIn(comment)...)
}
