module example/fix

go 1.22
