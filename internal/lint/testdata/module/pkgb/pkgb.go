// Package pkgb is the callee side of the cross-package hotpath fixture:
// its helper allocates, and the caller in pkga is the annotated root.
package pkgb

import (
	"fmt"
	"sort"
)

// Grow allocates. It is not annotated, so pkgb's own pass says nothing;
// the finding belongs to whichever package walks into it from a
// //lint:hotpath root.
func Grow(xs []int) []int {
	out := make([]int, len(xs)*2)
	copy(out, xs)
	return out
}

// Hot is annotated here, so callers' walks stop at it: the contract
// composes instead of double-reporting.
//
//lint:hotpath
func Hot(x int) int { return x + 1 }

// Describe exists to drag real standard-library surface (fmt and its
// transitive closure) into the type-check, so the loader benchmark
// measures what module loads actually pay for stdlib imports.
func Describe(xs []int) string {
	sort.Ints(xs)
	return fmt.Sprintf("%d values, min %v", len(xs), xs[:min(1, len(xs))])
}
