// Package pkga is the caller side of the cross-package hotpath fixture.
package pkga

import "example/fix/pkgb"

// Access is a hot path that leaks an allocation through a cross-package
// call: the finding must be reported here, at the call edge, because a
// suppression can only live in the package whose pass reports it.
//
//lint:hotpath
func Access(xs []int) []int {
	return pkgb.Grow(xs)
}

// Composed calls an independently-annotated hot path: no finding.
//
//lint:hotpath
func Composed(x int) int {
	return pkgb.Hot(x)
}
