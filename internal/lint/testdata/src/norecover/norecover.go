// Package norecover exercises the norecover check: goroutine literals must
// defer panic recovery (directly, via a local helper, or via defer
// recover()), nested-frame defers don't count, and annotated panic-free
// loops are suppressed.
package norecover

import "fmt"

func handlePanic() {
	if r := recover(); r != nil {
		fmt.Println("recovered:", r)
	}
}

// noRecoverHere shares a name shape with recovery helpers but recovers
// nothing; deferring it must not count.
func noRecoverHere() {
	fmt.Println("cleanup")
}

func bad() {
	go func() { // want "goroutine literal without panic recovery"
		fmt.Println("boom-prone")
	}()
}

func badDeferWithoutRecover() {
	go func() { // want "goroutine literal without panic recovery"
		defer noRecoverHere()
		fmt.Println("still boom-prone")
	}()
}

func badNestedFrameOnly() {
	go func() { // want "goroutine literal without panic recovery"
		// The inner literal's defer runs in the inner frame; a panic in the
		// outer loop below still unwinds unrecovered.
		inner := func() {
			defer handlePanic()
			fmt.Println("inner work")
		}
		inner()
		fmt.Println("outer work")
	}()
}

func okInlineRecover() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				fmt.Println("recovered:", r)
			}
		}()
		fmt.Println("work")
	}()
}

func okHelperRecover() {
	go func() {
		defer handlePanic()
		fmt.Println("work")
	}()
}

func okDeferBuiltinRecover() {
	go func() {
		defer recover() // legal, if inadvisable: the panic value is lost
		fmt.Println("work")
	}()
}

func okNamedFunction() {
	// Named functions own their panic policy; only literals are flagged.
	go noRecoverHere()
}

func okAnnotated() {
	//lint:ignore norecover sends one value on a buffered channel; no panicking operation
	go func() { // suppressed "goroutine literal without panic recovery"
		ch := make(chan int, 1)
		ch <- 1
	}()
}
