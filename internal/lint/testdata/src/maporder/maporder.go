// Package maporder exercises the maporder check: order-sensitive sinks
// inside range-over-map bodies are flagged; iteration over sorted key
// slices and order-insensitive accumulation are not.
package maporder

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

func leaky(m map[string]int, w io.Writer) string {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "Fprintf inside range over map"
	}
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "WriteString inside range over map"
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // want "append to out .declared outside the loop."
	}
	enc := json.NewEncoder(w)
	for k := range m {
		enc.Encode(k) // want "Encode inside range over map"
	}
	return sb.String() + strings.Join(out, ",")
}

func fine(m map[string]int, w io.Writer) {
	keys := make([]string, 0, len(m))
	for k := range m {
		//lint:ignore maporder keys is sorted before any order-sensitive use
		keys = append(keys, k) // suppressed "append to keys"
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k, m[k]) // ok: ranging a sorted slice
	}
	total := 0
	for _, v := range m {
		total += v // ok: order-insensitive accumulation
	}
	for k, v := range m {
		pair := make([]string, 0, 2)
		pair = append(pair, k, fmt.Sprint(v)) // ok: pair is loop-local
		_ = pair
	}
	fmt.Fprintln(w, total)
}
