// Package notime exercises the notime check: wall-clock reads are
// forbidden in result-producing packages, type-only uses of package time
// are fine, and annotated metrics timing is suppressed.
package notime

import (
	"fmt"
	"time"
	clock "time"
)

func stamp() string {
	return time.Now().String() // want "time.Now in a result-producing package"
}

func age(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in a result-producing package"
}

func remaining(t0 clock.Time) clock.Duration {
	return clock.Until(t0) // want "time.Until in a result-producing package"
}

// okTypesOnly uses package time for types and constants only.
func okTypesOnly(d time.Duration) time.Duration {
	return d + 3*time.Second
}

// Now is a local function; calling it must not be confused with time.Now.
func Now() int { return 42 }

func okLocalNow() {
	fmt.Println(Now())
}

func metricsTimed() time.Duration {
	//lint:ignore notime metrics-only timing, never serialized into results
	start := time.Now() // suppressed "time.Now in a result-producing package"
	//lint:ignore notime metrics-only timing, never serialized into results
	return time.Since(start) // suppressed "time.Since in a result-producing package"
}
