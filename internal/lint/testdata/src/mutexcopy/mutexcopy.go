// Package mutexcopy exercises the mutexcopy check: by-value copies of
// lock-bearing structs (directly or through nesting and arrays) are
// flagged; pointers, composite literals and annotated constructor-style
// moves are not.
package mutexcopy

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type nested struct {
	inner guarded
}

func (g *guarded) bump() {
	g.mu.Lock() // ok: method call through pointer receiver
	g.n++
	g.mu.Unlock()
}

func byValueParam(g guarded) int { // want "guarded passed by value contains a lock"
	return g.n
}

func okPointerParam(g *guarded) int {
	return g.n
}

func byValueRecv(g guarded) {} // want "passed by value contains a lock"

func assigns(a *guarded, arr *[2]nested) *guarded {
	b := *a     // want "assignment copies guarded by value"
	c := arr[0] // want "assignment copies nested by value"
	var d = b.n + c.inner.n
	fresh := guarded{n: d} // ok: composite literal constructs a fresh value
	return &fresh
}

func returnsCopy(g *guarded) guarded { // want "guarded passed by value contains a lock"
	return *g // want "return copies guarded by value"
}

func callsCopy(g *guarded) {
	use(*g) // want "call argument copies guarded by value"
}

func use(v interface{}) {}

func ranges(xs []guarded) int {
	total := 0
	for _, x := range xs { // want "range copies guarded by value"
		total += x.n
	}
	for i := range xs { // ok: indexing leaves the locks in place
		total += xs[i].n
	}
	return total
}

//lint:ignore mutexcopy the zero value is moved before any lock is ever taken
func makeGuarded() guarded { // suppressed "passed by value contains a lock"
	return guarded{} // ok: composite literal
}

func news() *guarded {
	keep(new(guarded)) // ok: new(T)'s argument is a type, nothing is copied
	return new(guarded)
}

func keep(*guarded) {}
