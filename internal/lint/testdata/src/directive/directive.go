// Package directive holds malformed //lint: comments. Every one of them
// must be reported by the driver (they can never silently suppress), and
// the violation below a malformed directive must still fire.
package directive

import "strconv"

//lint:ignore
func missingEverything() {}

func missingReason(s string) {
	//lint:ignore errcheck
	strconv.Atoi(s)
}

//lint:ignoreerrcheck glued marker is not a directive
func gluedMarker() {}

//lint:typo errcheck unknown verbs are malformed too
func unknownVerb() {}

//lint:ignore err!check bad characters in the check list
func badCheckName() {}

//lint:ignore errcheck,,maporder empty element poisons the whole list
func emptyListElement() {}

//lint:guardedby annotation verbs with missing arguments are malformed
func guardedByNoArg() {}

//lint:guardedby mu extra words are malformed too
func guardedByExtra() {}

//lint:hotpath takes-no-arguments
func hotpathWithArg() {}

//lint:locked mu, trailing comma poisons the guard list
func lockedTrailingComma() {}

//lint:locked 9mu
func lockedBadIdent() {} // guard names must be identifiers: leading digit is malformed

type okAnnotations struct {
	mu struct{} // not a real mutex, but well-formedness is all this package tests
	//lint:hotpath
	_ int
}

//lint:hotpath
func wellFormedHotpath() {} // ok: well-formed annotations are not malformed directives

//lint:locked mu,other
func wellFormedLocked() {} // ok
