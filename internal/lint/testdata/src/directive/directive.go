// Package directive holds malformed //lint: comments. Every one of them
// must be reported by the driver (they can never silently suppress), and
// the violation below a malformed directive must still fire.
package directive

import "strconv"

//lint:ignore
func missingEverything() {}

func missingReason(s string) {
	//lint:ignore errcheck
	strconv.Atoi(s)
}

//lint:ignoreerrcheck glued marker is not a directive
func gluedMarker() {}

//lint:typo errcheck unknown verbs are malformed too
func unknownVerb() {}

//lint:ignore err!check bad characters in the check list
func badCheckName() {}

//lint:ignore errcheck,,maporder empty element poisons the whole list
func emptyListElement() {}
