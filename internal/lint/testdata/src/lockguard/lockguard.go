// Package lockguard exercises the lockguard check: accesses to
// //lint:guardedby fields must be dominated by Lock/RLock on the same
// base path, or live in a function annotated //lint:locked.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	//lint:guardedby mu
	n    int
	hits int // unguarded: free to race, lockguard says nothing
}

func (c *counter) good() {
	c.mu.Lock()
	c.n++ // ok: lock held
	c.mu.Unlock()
	c.hits++ // ok: not guarded
}

func (c *counter) bad() {
	c.n++ // want "n is guarded by .mu.: access does not hold c.mu"
}

func (c *counter) afterUnlock() {
	c.mu.Lock()
	c.n = 1 // ok
	c.mu.Unlock()
	c.n = 2 // want "access does not hold c.mu"
}

// lockedHelper asserts its callers hold mu, the pattern for *Locked
// helper methods.
//
//lint:locked mu
func (c *counter) lockedHelper() {
	c.n++ // ok: function is annotated //lint:locked mu
}

func (c *counter) maybeReleased(b bool) {
	c.mu.Lock()
	if b {
		c.mu.Unlock()
	}
	c.n++ // want "access does not hold c.mu"
	if !b {
		c.mu.Unlock()
	}
}

func (c *counter) bothBranchesLock(b bool) {
	if b {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	c.n++ // ok: every branch locked
	c.mu.Unlock()
}

func (c *counter) deferredUnlock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++ // ok: defer releases at exit, not here
}

func (c *counter) closureEscapes() {
	c.mu.Lock()
	f := func() {
		c.n++ // want "access does not hold c.mu"
	}
	f()
	c.mu.Unlock()
}

func (c *counter) goroutine() {
	c.mu.Lock()
	go func() {
		c.n++ // want "access does not hold c.mu"
	}()
	c.mu.Unlock()
}

func (c *counter) loopBody(k int) {
	for i := 0; i < k; i++ {
		c.mu.Lock()
		c.n++ // ok: locked on this iteration's path
		c.mu.Unlock()
	}
	c.n = 0 // want "access does not hold c.mu"
}

type rw struct {
	mu sync.RWMutex
	//lint:guardedby mu
	data []int
}

func (r *rw) read(i int) int {
	r.mu.RLock()
	v := r.data[i] // ok: read lock counts as held
	r.mu.RUnlock()
	return v
}

type trailing struct {
	mu sync.Mutex
	m  map[string]int //lint:guardedby mu
}

func (t *trailing) get(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[k] // ok
}

func (t *trailing) put(k string, v int) {
	t.m[k] = v // want "m is guarded by .mu."
}

type statRacy struct {
	mu sync.Mutex
	//lint:guardedby mu
	races int //lint:ignore lockguard approximate counter, torn reads acceptable and documented
}

func (s *statRacy) peek() int {
	return s.races // suppressed "races is guarded by .mu."
}

type broken struct {
	//lint:guardedby nosuch
	x int // want "no sync.Mutex/RWMutex field .nosuch. in this struct"
}

func (b *broken) use() int { return b.x }

var globalMu sync.Mutex

//lint:guardedby globalMu
var global int

func readGlobal() int {
	globalMu.Lock()
	v := global // ok
	globalMu.Unlock()
	return v
}

func badGlobal() int {
	return global // want "global is guarded by .globalMu.: access does not hold globalMu"
}

//lint:locked globalMu
func lockedGlobal() int {
	return global // ok: asserted held by callers
}

// earlyReturn is the canonical cache shape: branches that unlock and
// return do not reach the code after the branch, so they must not drop
// the lock from the fall-through path.
func (c *counter) earlyReturn(hit bool) int {
	c.mu.Lock()
	if hit {
		v := c.n // ok: still locked here
		c.mu.Unlock()
		return v
	}
	c.n++ // ok: the early-return branch never reaches this point
	c.mu.Unlock()
	return 0
}

func (c *counter) switchEarlyReturn(state int) int {
	c.mu.Lock()
	switch state {
	case 0:
		c.mu.Unlock()
		return -1
	case 1:
		v := c.n // ok: locked
		c.mu.Unlock()
		return v
	default:
		// fall through holding the lock
	}
	c.n++ // ok: both returning cases terminated
	c.mu.Unlock()
	return c.hits
}

func (c *counter) panicPath(bad bool) {
	c.mu.Lock()
	if bad {
		c.mu.Unlock()
		panic("bad")
	}
	c.n++ // ok: the panicking branch never falls through
	c.mu.Unlock()
}

func (c *counter) unlockNoReturn(miss bool) {
	c.mu.Lock()
	if miss {
		c.mu.Unlock() // no return: this branch DOES fall through unlocked
	}
	c.n++ // want "access does not hold c.mu"
}

func (c *counter) switchNoDefault(state int) {
	c.mu.Lock()
	switch state {
	case 0:
		c.n++ // ok: locked
		c.mu.Unlock()
		return
	}
	c.n = 0 // ok: the only case returned, fall-through path still holds mu
	c.mu.Unlock()
}

func (c *counter) deadTail() int {
	c.mu.Lock()
	if c.n > 0 { // ok: locked
		c.mu.Unlock()
		return 1
	}
	c.mu.Unlock()
	return 0
}
