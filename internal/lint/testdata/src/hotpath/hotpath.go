// Package hotpath exercises the hotpath check: functions annotated
// //lint:hotpath (and their statically-resolved module callees) must
// contain no definite allocation sites.
package hotpath

type ring struct {
	buf  []int
	head int
}

//lint:hotpath
func (r *ring) Push(v int) {
	if r.head == len(r.buf) {
		r.grow()
	}
	r.buf[r.head] = v
	r.head++
}

// grow is not annotated itself: the walk from Push enters it and reports
// at the allocation site, naming the root.
func (r *ring) grow() {
	nb := make([]int, 2*len(r.buf)+1) // want "allocation on hot path ring.Push .in ring.grow.: make"
	copy(nb, r.buf)
	r.buf = nb
}

//lint:hotpath
func news() *ring {
	return new(ring) // want "allocation on hot path news: new"
}

//lint:hotpath
func comp() *ring {
	return &ring{} // want "allocation on hot path comp: &composite literal"
}

func consume(x interface{}) {}

//lint:hotpath
func boxes(v int) {
	consume(v) // want "interface boxing of int argument"
}

//lint:hotpath
func noBoxPointer(p *ring) {
	consume(p) // ok: pointer-shaped values box without allocating
}

//lint:hotpath
func noBoxConst() {
	consume(42)  // ok: constants never box
	consume(nil) // ok: nil never boxes
}

//lint:hotpath
func appends(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want "append inside loop"
	}
	return out
}

//lint:hotpath
func appendOnce(xs []int, v int) []int {
	return append(xs, v) // ok: single append outside any loop
}

//lint:hotpath
func str(b []byte) string {
	return string(b) // want "string<->..byte conversion"
}

//lint:hotpath
func closure(n int) func() int {
	return func() int { return n } // want "closure allocation"
}

//lint:hotpath
func warmup() {
	//lint:ignore hotpath one-time geometric growth, amortized O(1) per access
	_ = make([]int, 8) // suppressed "make"
}

//lint:hotpath
func composedCaller(r *ring, v int) {
	r.Push(v) // ok: Push is hotpath itself, independently checked
}

type iface interface{ M() }

//lint:hotpath
func dyn(i iface) {
	i.M() // ok: dynamic dispatch is a documented walk boundary
}

// coldPath is unannotated and unreachable from any root: never checked.
func coldPath() []int {
	return make([]int, 4)
}
