// Package norand exercises the norand check: math/rand in either
// generation is forbidden; the annotated import is the escape hatch.
package norand

import (
	"fmt"
	"math/rand"          // want "import of math/rand: all randomness must come from seeded internal/xrand sources"
	mrand "math/rand/v2" // want "import of math/rand/v2"
	//lint:ignore norand baseline generator for comparing distributions in tests
	orand "math/rand" // suppressed "import of math/rand"
)

func use() {
	fmt.Println(rand.Int(), mrand.IntN(3), orand.Int())
}
