// Package errcheck exercises the errcheck check: discarded errors from the
// fmt scan family, strconv parsers, io.Writer.Write and json marshalling
// are flagged; infallible builders and annotated discards are not.
package errcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func scans(s string) int {
	var x int
	fmt.Sscanf(s, "%d", &x)                            // want "result of fmt.Sscanf discarded"
	n, _ := fmt.Sscanf(s, "%d", &x)                    // want "error from fmt.Sscanf assigned to _"
	if _, err := fmt.Sscanf(s, "%d", &x); err != nil { // ok: error checked
		return 0
	}
	return n + x
}

func parses(s string) int64 {
	v, _ := strconv.Atoi(s)               // want "error from strconv.Atoi assigned to _"
	strconv.Atoi(s)                       // want "result of strconv.Atoi discarded"
	w, err := strconv.ParseInt(s, 10, 64) // ok: error checked
	if err != nil {
		return 0
	}
	return w + int64(v)
}

func writes(w io.Writer, f *os.File, data []byte) int {
	w.Write(data) // want "result of .io.Writer..Write discarded"
	f.Write(data) // want "os.File..Write discarded"
	var sb strings.Builder
	sb.Write(data) // ok: strings.Builder.Write never fails
	var buf bytes.Buffer
	buf.Write(data)       // ok: bytes.Buffer.Write never fails
	n, _ := f.Write(data) // want "os.File..Write assigned to _"
	defer f.Write(data)   // want "discarded by defer"
	return n + sb.Len() + buf.Len()
}

func marshals(v interface{}, w io.Writer) []byte {
	json.Marshal(v)         // want "result of encoding/json.Marshal discarded"
	b, _ := json.Marshal(v) // want "error from encoding/json.Marshal assigned to _"
	enc := json.NewEncoder(w)
	enc.Encode(v)      // want "Encoder..Encode discarded"
	go json.Marshal(v) // want "discarded by go statement"
	//lint:ignore errcheck best-effort debug dump, failure is acceptable here
	json.Marshal(v) // suppressed "result of encoding/json.Marshal discarded"
	return b
}
