package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full form is
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// No space is allowed between "//" and "lint:ignore" (matching the
// convention of //go: directives), and the reason is mandatory.
const ignorePrefix = "//lint:ignore"

// directivePrefix is the namespace every lint comment must live in. A
// comment starting with this prefix that does not parse as a valid ignore
// directive is reported as a diagnostic instead of being silently skipped,
// so a typo can never disable a check without anyone noticing.
const directivePrefix = "//lint:"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	checks []string // check names this directive suppresses
	reason string
	file   string
	line   int // line the directive comment starts on
}

// suppresses reports whether the directive applies to a diagnostic of the
// given check at the given line. A directive covers its own line (trailing
// comment) and the line directly below (directive on a line of its own).
func (d ignoreDirective) suppresses(check string, line int) bool {
	if line != d.line && line != d.line+1 {
		return false
	}
	for _, c := range d.checks {
		if c == check {
			return true
		}
	}
	return false
}

// ParseIgnoreDirective parses the raw text of a single comment (including
// its "//" marker). It returns the suppressed check names and the
// mandatory reason, with ok reporting whether text is a well-formed
// directive. Malformed input — a missing reason, an empty or malformed
// check list, a block comment, stray whitespace inside the marker — yields
// ok == false and never panics: a broken directive must degrade to "not a
// suppression", not to a silent global one.
func ParseIgnoreDirective(text string) (checks []string, reason string, ok bool) {
	if !strings.HasPrefix(text, ignorePrefix) {
		return nil, "", false
	}
	rest := text[len(ignorePrefix):]
	// The marker must be followed by whitespace: "//lint:ignoreX" is not a
	// directive (it is reported as a malformed //lint: comment instead).
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return nil, "", false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, "", false // no check list, or no reason
	}
	for _, c := range strings.Split(fields[0], ",") {
		if !validCheckName(c) {
			return nil, "", false
		}
		checks = append(checks, c)
	}
	return checks, strings.Join(fields[1:], " "), true
}

// validCheckName reports whether s could name a check: non-empty ASCII
// letters, digits, '_' or '-'. Anything else (including an empty element
// from a stray comma) invalidates the whole directive.
func validCheckName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		b := s[i]
		switch {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z',
			b >= '0' && b <= '9', b == '_', b == '-':
		default:
			return false
		}
	}
	return true
}

// collectDirectives walks a file's comments, returning its well-formed
// ignore directives and a diagnostic for every malformed //lint: comment.
// Well-formed annotations (//lint:guardedby, //lint:locked, //lint:hotpath)
// are recognized and skipped here — the lockguard and hotpath analyzers
// read them straight off the AST — while malformed variants of any verb
// are reported like every other broken //lint: comment.
func collectDirectives(fset *token.FileSet, f *ast.File) (ds []ignoreDirective, malformed []Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			checks, reason, ok := ParseIgnoreDirective(c.Text)
			if !ok {
				if _, isAnn := ParseAnnotation(c.Text); isAnn {
					continue
				}
				malformed = append(malformed, Diagnostic{
					Check:   DirectiveCheck,
					Pos:     pos,
					Message: "malformed //lint: directive (want //lint:ignore <check>[,<check>] <reason>, //lint:guardedby <mutex>, //lint:locked <mutex>[,<mutex>], or //lint:hotpath): " + c.Text,
				})
				continue
			}
			ds = append(ds, ignoreDirective{
				checks: checks,
				reason: reason,
				file:   pos.Filename,
				line:   pos.Line,
			})
		}
	}
	return ds, malformed
}
