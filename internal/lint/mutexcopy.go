package lint

import (
	"go/ast"
	"go/types"
)

// MutexCopy flags by-value copies of values whose type (transitively,
// through struct fields and arrays) contains a sync.Mutex, sync.RWMutex,
// sync.WaitGroup, sync.Once or sync.Cond. The service's result cache and
// metrics are intrusive mutex-bearing structs; copying one silently forks
// the lock from the state it guards, which is a data race that -race only
// catches if the copy happens to be exercised under contention. go vet has
// a copylocks pass too — this one runs in the same gate as the
// repo-specific checks so the whole invariant set fails closed together.
var MutexCopy = &Analyzer{
	Name: "mutexcopy",
	Doc:  "forbid by-value copies of structs containing sync.Mutex/RWMutex/WaitGroup/Once/Cond",
	Run:  runMutexCopy,
}

// lockTypes are the sync types that must never be copied after first use.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

func runMutexCopy(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(p, n.Recv, n.Type)
			case *ast.FuncLit:
				checkFuncSig(p, nil, n.Type)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkCopyExpr(p, rhs, "assignment")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopyExpr(p, v, "variable initialization")
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkCopyExpr(p, r, "return")
				}
			case *ast.CallExpr:
				if isBuiltinAppend(p.Info, n) {
					return true // append's first arg is the slice itself
				}
				for _, arg := range n.Args {
					checkCopyExpr(p, arg, "call argument")
				}
			case *ast.RangeStmt:
				if id, ok := n.Value.(*ast.Ident); ok && id.Name == "_" {
					return true // discarded, nothing escapes the copy
				}
				if n.Value != nil {
					if t := p.Info.TypeOf(n.Value); t != nil && containsLock(t, nil) {
						p.Reportf(n.Value.Pos(), "range copies %s by value: element contains a lock; iterate by index or use pointers", types.TypeString(t, types.RelativeTo(p.Pkg)))
					}
				}
			}
			return true
		})
	}
}

// checkFuncSig flags by-value lock-bearing receivers, parameters and
// results in a function signature.
func checkFuncSig(p *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	for _, fl := range []*ast.FieldList{recv, ft.Params, ft.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			t := p.Info.TypeOf(field.Type)
			if t != nil && containsLock(t, nil) {
				p.Reportf(field.Type.Pos(), "%s passed by value contains a lock; use a pointer", types.TypeString(t, types.RelativeTo(p.Pkg)))
			}
		}
	}
}

// checkCopyExpr flags expr when evaluating it copies an existing
// lock-bearing value. Composite literals and calls construct fresh values
// (a fresh zero lock is fine to move); reading an existing variable,
// field, element or dereference is a copy.
func checkCopyExpr(p *Pass, expr ast.Expr, context string) {
	e := ast.Unparen(expr)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	if tv, ok := p.Info.Types[e]; ok && tv.IsType() {
		return // a type argument (new(T)) names the type, it copies nothing
	}
	t := p.Info.TypeOf(e)
	if t == nil || !containsLock(t, nil) {
		return
	}
	// Selecting a method value (m.Lock) types as a func, not the struct,
	// so no special-casing is needed; plain package names type as nil.
	p.Reportf(expr.Pos(), "%s copies %s by value, forking its lock from the state it guards; use a pointer", context, types.TypeString(t, types.RelativeTo(p.Pkg)))
}

// containsLock reports whether t transitively holds one of the sync lock
// types by value. seen guards against recursive named types.
func containsLock(t types.Type, seen map[*types.Named]bool) bool {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return true
		}
		if seen[t] {
			return false
		}
		if seen == nil {
			seen = map[*types.Named]bool{}
		}
		seen[t] = true
		return containsLock(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLock(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(t.Elem(), seen)
	}
	return false
}
