package lint

import (
	"go/ast"
	"go/types"
)

// NoTime forbids reading the wall clock in result-producing packages. A
// time.Now that leaks into a table, a cached body, or golden JSON makes
// two runs of the same seed differ, which breaks the content-addressed
// result cache and every byte-identical-output test. The default scope
// restricts this check to internal/core and internal/service; genuine
// timing/metrics code inside them must carry an explicit
// //lint:ignore notime annotation.
var NoTime = &Analyzer{
	Name: "notime",
	Doc:  "forbid time.Now/Since/Until in result-producing packages (inject a clock, or annotate timing code)",
	Run:  runNoTime,
}

// clockFuncs are the package time functions that read the wall clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runNoTime(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !clockFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s in a result-producing package: inject the timestamp or clock from the caller, or annotate metrics code with //lint:ignore notime <reason>", sel.Sel.Name)
			return true
		})
	}
}
