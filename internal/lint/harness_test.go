package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"
)

// expectRe extracts `want "regex"` and `suppressed "regex"` assertions from
// testdata comments. A want must be matched by a surviving diagnostic on
// its line; a suppressed must be matched by a directive-absorbed one.
var expectRe = regexp.MustCompile(`(want|suppressed) "((?:[^"\\]|\\.)*)"`)

type expectation struct {
	kind    string // "want" or "suppressed"
	pattern string
	file    string
	line    int
	matched bool
}

// runTestdata loads testdata/src/<pkgdir>, runs the analyzer unscoped, and
// checks the result against the package's inline expectations — both that
// every annotated diagnostic fires and that every annotated suppression
// actually absorbed one.
func runTestdata(t *testing.T, a *Analyzer, pkgdir string) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", pkgdir))
	if err != nil {
		t.Fatal(err)
	}
	res := RunPackage(pkg, []*Analyzer{a}, nil)

	var exps []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range expectRe.FindAllStringSubmatch(c.Text, -1) {
					exps = append(exps, &expectation{
						kind:    m[1],
						pattern: m[2],
						file:    pos.Filename,
						line:    pos.Line,
					})
				}
			}
		}
	}

	match := func(kind string, ds []Diagnostic) {
		for _, d := range ds {
			found := false
			for _, e := range exps {
				if e.matched || e.kind != kind || e.file != d.Pos.Filename || e.line != d.Pos.Line {
					continue
				}
				ok, err := regexp.MatchString(e.pattern, d.Message)
				if err != nil {
					t.Errorf("%s:%d: bad expectation regexp %q: %v", e.file, e.line, e.pattern, err)
					continue
				}
				if ok {
					e.matched = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("unexpected %s diagnostic: %s", kind, d)
			}
		}
	}
	match("want", res.Diagnostics)
	match("suppressed", res.Suppressed)
	for _, e := range exps {
		if !e.matched {
			t.Errorf("%s:%d: expected %s diagnostic matching %q never fired", e.file, e.line, e.kind, e.pattern)
		}
	}
}

// TestHarnessSelfCheck guards the harness against the silent-green failure
// mode: a package with expectations but a broken loader or analyzer must
// fail, not pass vacuously.
func TestHarnessSelfCheck(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "norand"))
	if err != nil {
		t.Fatal(err)
	}
	res := RunPackage(pkg, []*Analyzer{NoRand}, nil)
	if len(res.Diagnostics) == 0 || len(res.Suppressed) == 0 {
		t.Fatalf("norand testdata produced %d diagnostics / %d suppressed; the harness would be vacuous",
			len(res.Diagnostics), len(res.Suppressed))
	}
	for _, d := range res.Diagnostics {
		if d.Check != "norand" {
			t.Errorf("unexpected check %q in single-analyzer run: %s", d.Check, d)
		}
	}
	var _ fmt.Stringer = res.Diagnostics[0] // Diagnostic must keep printing as file:line:col
}
