package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheck flags discarded error returns from the call families that have
// already bitten this repository: the fmt scan functions (PR 1 shipped an
// unchecked Sscanf that parsed malformed experiment IDs as 0), strconv
// parsers (same zero-value failure mode), io.Writer.Write, and the
// encoding/json marshal/encode family. It flags both a bare call statement
// (every result dropped) and an assignment that sends the error result to
// the blank identifier; a genuinely infallible discard takes a
// //lint:ignore errcheck with its justification.
//
// Writes to *strings.Builder and *bytes.Buffer are exempt: both document
// that their Write methods never return a non-nil error.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "forbid discarding errors from fmt scans, strconv parsers, io.Writer.Write, and json marshalling",
	Run:  runErrCheck,
}

// watchedStdFuncs maps package path -> function names whose error result
// must be checked.
var watchedStdFuncs = map[string]map[string]bool{
	"fmt": {
		"Sscan": true, "Sscanf": true, "Sscanln": true,
		"Fscan": true, "Fscanf": true, "Fscanln": true,
	},
	"strconv": {
		"Atoi": true, "ParseInt": true, "ParseUint": true,
		"ParseFloat": true, "ParseBool": true, "ParseComplex": true,
		"Unquote": true,
	},
	"encoding/json": {
		"Marshal": true, "MarshalIndent": true, "Unmarshal": true,
		// Methods on Encoder/Decoder resolve to the same package path.
		"Encode": true, "Decode": true,
	},
}

// infallibleWriters are receiver types whose Write methods are documented
// to always return a nil error.
var infallibleWriters = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

func runErrCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, bad := watchedCall(p.Info, call); bad {
						p.Reportf(call.Pos(), "result of %s discarded: the error must be checked", name)
					}
				}
			case *ast.GoStmt:
				if name, bad := watchedCall(p.Info, n.Call); bad {
					p.Reportf(n.Call.Pos(), "result of %s discarded by go statement: the error must be checked", name)
				}
			case *ast.DeferStmt:
				if name, bad := watchedCall(p.Info, n.Call); bad {
					p.Reportf(n.Call.Pos(), "result of %s discarded by defer: the error must be checked", name)
				}
			case *ast.AssignStmt:
				checkAssign(p, n)
			case *ast.ValueSpec:
				checkValueSpec(p, n)
			}
			return true
		})
	}
}

// checkAssign flags `v, _ := strconv.Atoi(s)`-shaped statements: a single
// watched call on the right whose final (error) result lands in the blank
// identifier. When every result is blank (`_, _ = f()`) the message says
// so — that shape discards the value too, not just the error.
func checkAssign(p *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(as.Lhs) < 1 {
		return
	}
	name, bad := watchedCall(p.Info, call)
	if !bad {
		return
	}
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	if allBlankExprs(as.Lhs) {
		p.Reportf(call.Pos(), "all results of %s discarded: the error must be checked", name)
		return
	}
	p.Reportf(call.Pos(), "error from %s assigned to _: the error must be checked", name)
}

// checkValueSpec flags the declaration forms of the same discard:
// `var v, _ = strconv.Atoi(s)` and `var _, _ = strconv.Atoi(s)` slipped
// past checkAssign because a var declaration is a ValueSpec, not an
// AssignStmt.
func checkValueSpec(p *Pass, vs *ast.ValueSpec) {
	if len(vs.Values) != 1 || len(vs.Names) < 1 {
		return
	}
	call, ok := vs.Values[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, bad := watchedCall(p.Info, call)
	if !bad {
		return
	}
	if vs.Names[len(vs.Names)-1].Name != "_" {
		return
	}
	all := true
	for _, n := range vs.Names {
		if n.Name != "_" {
			all = false
			break
		}
	}
	if all {
		p.Reportf(call.Pos(), "all results of %s discarded: the error must be checked", name)
		return
	}
	p.Reportf(call.Pos(), "error from %s assigned to _: the error must be checked", name)
}

// allBlankExprs reports whether every expression is the blank identifier.
func allBlankExprs(es []ast.Expr) bool {
	for _, e := range es {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// watchedCall resolves call's callee and reports whether discarding its
// error is forbidden, returning a display name for the message.
func watchedCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if names, ok := watchedStdFuncs[fn.Pkg().Path()]; ok && names[fn.Name()] {
		return fn.FullName(), true
	}
	if isWriterWrite(fn) {
		if recv := receiverTypeName(fn); infallibleWriters[recv] {
			return "", false
		}
		return fn.FullName(), true
	}
	return "", false
}

// calleeFunc resolves the static callee of a call, or nil for indirect
// calls, conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isWriterWrite reports whether fn has the exact io.Writer.Write shape:
// a method named Write taking ([]byte) and returning (int, error).
func isWriterWrite(fn *types.Func) bool {
	if fn.Name() != "Write" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	slice, ok := sig.Params().At(0).Type().(*types.Slice)
	if !ok || !types.Identical(slice.Elem(), types.Typ[types.Byte]) {
		return false
	}
	if b, ok := sig.Results().At(0).Type().(*types.Basic); !ok || b.Kind() != types.Int {
		return false
	}
	named, ok := sig.Results().At(1).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// receiverTypeName returns the "pkg.Type" name of fn's receiver base type,
// or "" when it has none.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}
