package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestHotpathAllocConsistency pins the contract between the //lint:hotpath
// annotations and the allocation measurements that justify them: every
// hotpath-annotated function must be covered by an AllocsPerRun(...)==0
// test in its package, declared with an //allocguard:<name> marker on the
// test, and every marker must name a function that still carries the
// annotation. Either direction drifting — an annotation without a
// measurement, or a stale marker after an annotation was removed — fails
// here, so the static claim and the dynamic evidence cannot diverge.
//
// The scan is purely syntactic (no type checking): non-test files
// contribute hotpath names rendered as funcDisplayName does
// ("Recv.Name" / "Name"), _test.go files contribute //allocguard: markers
// from the doc comments of test functions whose bodies call AllocsPerRun.
func TestHotpathAllocConsistency(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	type pkgSets struct {
		hotpath map[string]bool
		guarded map[string]bool
	}
	pkgs := map[string]*pkgSets{}
	sets := func(dir string) *pkgSets {
		if pkgs[dir] == nil {
			pkgs[dir] = &pkgSets{hotpath: map[string]bool{}, guarded: map[string]bool{}}
		}
		return pkgs[dir]
	}

	fset := token.NewFileSet()
	walkErr := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Lint fixtures carry deliberate annotation violations and no
			// alloc tests; they are inputs to the analyzers, not subjects of
			// the repository-wide contract.
			if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		dir := filepath.Dir(path)
		if strings.HasSuffix(path, "_test.go") {
			collectAllocGuards(t, f, sets(dir).guarded)
			return nil
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, ann := range funcAnnotations(fn) {
				if ann.Kind == AnnHotPath {
					sets(dir).hotpath[funcDisplayName(fn)] = true
				}
			}
		}
		return nil
	})
	if walkErr != nil {
		t.Fatal(walkErr)
	}

	dirs := make([]string, 0, len(pkgs))
	for dir := range pkgs {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		rel, _ := filepath.Rel(root, dir)
		s := pkgs[dir]
		for _, name := range sortedKeys(s.hotpath) {
			if !s.guarded[name] {
				t.Errorf("%s: %s is annotated //lint:hotpath but no _test.go in the package has an '//allocguard:%s' marker on an AllocsPerRun test", rel, name, name)
			}
		}
		for _, name := range sortedKeys(s.guarded) {
			if !s.hotpath[name] {
				t.Errorf("%s: stale '//allocguard:%s' marker: no //lint:hotpath function of that name in the package", rel, name)
			}
		}
	}
}

// collectAllocGuards harvests //allocguard: markers from the doc comments of
// functions in a test file, requiring the marked function's body to
// actually call AllocsPerRun — a marker on a test that measures nothing
// would make the contract vacuous.
func collectAllocGuards(t *testing.T, f *ast.File, into map[string]bool) {
	t.Helper()
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		var names []string
		for _, c := range fn.Doc.List {
			// gofmt normalizes the marker to "// allocguard:<name>" (the
			// name's capital letter keeps it from qualifying as a //tool:
			// directive); accept the unspaced spelling too.
			rest, found := strings.CutPrefix(c.Text, "// allocguard:")
			if !found {
				rest, found = strings.CutPrefix(c.Text, "//allocguard:")
			}
			if !found {
				continue
			}
			name := strings.TrimSpace(rest)
			if name == "" || len(strings.Fields(name)) != 1 {
				t.Errorf("%s: malformed marker %q (want // allocguard:<name>)", fn.Name.Name, c.Text)
				continue
			}
			names = append(names, name)
		}
		if len(names) == 0 {
			continue
		}
		if !callsAllocsPerRun(fn) {
			t.Errorf("%s carries //allocguard: markers but never calls testing.AllocsPerRun", fn.Name.Name)
			continue
		}
		for _, n := range names {
			into[n] = true
		}
	}
}

func callsAllocsPerRun(fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "AllocsPerRun" {
			found = true
			return false
		}
		return !found
	})
	return found
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
