package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags range-over-map loops whose bodies produce ordered output:
// writing to an io.Writer (or builder), feeding JSON encoding, or
// appending to a slice declared outside the loop. Go randomizes map
// iteration order on purpose, so any of these turns a deterministic
// experiment into one whose bytes shuffle between runs — the exact drift
// class the CLI/server shared-entry work in PR 2 existed to kill. The fix
// is to collect keys, sort, and iterate the sorted slice; a loop that is
// provably order-insensitive (e.g. the slice is sorted immediately after)
// documents that with //lint:ignore maporder.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid order-sensitive output (writers, JSON, escaping appends) inside range-over-map bodies",
	Run:  runMapOrder,
}

// orderedSinkFuncs are package functions whose call inside a map-range body
// makes iteration order observable.
var orderedSinkFuncs = map[string]map[string]bool{
	"fmt": {
		"Fprint": true, "Fprintf": true, "Fprintln": true,
		"Print": true, "Printf": true, "Println": true,
	},
	"encoding/json": {"Marshal": true, "MarshalIndent": true, "Encode": true},
}

// orderedSinkMethods are method names that emit bytes in call order on any
// receiver (io.Writer implementations, strings.Builder, bytes.Buffer).
var orderedSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(p, rng)
			return true
		})
	}
}

func checkMapRangeBody(p *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, sink := orderedSink(p.Info, n); sink {
				p.Reportf(n.Pos(), "%s inside range over map: iteration order is nondeterministic; sort the keys first", name)
			}
		case *ast.AssignStmt:
			checkEscapingAppend(p, rng, n)
		}
		return true
	})
}

// checkEscapingAppend flags `out = append(out, ...)` where out is declared
// outside the range statement: the appended order — and therefore whatever
// out is later used for — follows map iteration order.
func checkEscapingAppend(p *Pass, rng *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(p.Info, call) || i >= len(as.Lhs) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := p.Info.ObjectOf(id)
		if obj == nil {
			continue
		}
		if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
			p.Reportf(call.Pos(), "append to %s (declared outside the loop) inside range over map: element order is nondeterministic; sort the keys first or sort %s afterwards", id.Name, id.Name)
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderedSink reports whether call writes ordered output, with a display
// name for the message.
func orderedSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if names, ok := orderedSinkFuncs[fn.Pkg().Path()]; ok && names[fn.Name()] {
		return fn.FullName(), true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && orderedSinkMethods[fn.Name()] {
		return fn.FullName(), true
	}
	return "", false
}
