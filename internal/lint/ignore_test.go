package lint

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseIgnoreDirective(t *testing.T) {
	cases := []struct {
		text   string
		checks []string
		reason string
		ok     bool
	}{
		{"//lint:ignore norand seeded baseline", []string{"norand"}, "seeded baseline", true},
		{"//lint:ignore errcheck,maporder both are fine here", []string{"errcheck", "maporder"}, "both are fine here", true},
		{"//lint:ignore notime    metrics   timing  ", []string{"notime"}, "metrics timing", true},
		{"//lint:ignore a-b_2 reason words", []string{"a-b_2"}, "reason words", true},

		{"//lint:ignore", nil, "", false},                                    // nothing at all
		{"//lint:ignore norand", nil, "", false},                             // reason is mandatory
		{"//lint:ignore    ", nil, "", false},                                // whitespace only
		{"//lint:ignorenorand reason", nil, "", false},                       // glued marker
		{"//lint:ignore norand,,errcheck r", nil, "", false},                 // empty list element
		{"//lint:ignore ,norand r", nil, "", false},                          // leading comma
		{"//lint:ignore nor&and reason", nil, "", false},                     // bad check character
		{"//lint:ignore \x00 reason", nil, "", false},                        // control bytes
		{"// lint:ignore norand reason", nil, "", false},                     // space before marker
		{"//nolint:ignore norand reason", nil, "", false},                    // wrong namespace
		{"/*lint:ignore norand reason*/", nil, "", false},                    // block comments don't count
		{"//lint:ignore\tnorand reason", []string{"norand"}, "reason", true}, // tab after marker is fine
	}
	for _, c := range cases {
		checks, reason, ok := ParseIgnoreDirective(c.text)
		if ok != c.ok {
			t.Errorf("ParseIgnoreDirective(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			if checks != nil || reason != "" {
				t.Errorf("ParseIgnoreDirective(%q) returned %v/%q despite !ok", c.text, checks, reason)
			}
			continue
		}
		if !reflect.DeepEqual(checks, c.checks) || reason != c.reason {
			t.Errorf("ParseIgnoreDirective(%q) = %v, %q; want %v, %q", c.text, checks, reason, c.checks, c.reason)
		}
	}
}

func TestDirectiveSuppressesLines(t *testing.T) {
	d := ignoreDirective{checks: []string{"norand", "errcheck"}, line: 10, file: "f.go"}
	for _, c := range []struct {
		check string
		line  int
		want  bool
	}{
		{"norand", 10, true},   // trailing on the offending line
		{"norand", 11, true},   // directive on the line above
		{"errcheck", 11, true}, // any listed check
		{"norand", 12, false},  // two lines below: out of range
		{"norand", 9, false},   // directives never look upward
		{"notime", 11, false},  // unlisted check
	} {
		if got := d.suppresses(c.check, c.line); got != c.want {
			t.Errorf("suppresses(%q, %d) = %v, want %v", c.check, c.line, got, c.want)
		}
	}
}

// TestMalformedDirectivesAreReported runs the driver over a package of
// malformed //lint: comments: each must surface as a DirectiveCheck
// diagnostic, and the violation sitting under one of them must still fire
// — a broken directive degrades to "not a suppression", never to a silent
// one.
func TestMalformedDirectivesAreReported(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "directive"))
	if err != nil {
		t.Fatal(err)
	}
	res := RunPackage(pkg, []*Analyzer{ErrCheck}, nil)
	if len(res.Suppressed) != 0 {
		t.Errorf("malformed directives suppressed %d diagnostics: %v", len(res.Suppressed), res.Suppressed)
	}
	var malformed, errchecks int
	for _, d := range res.Diagnostics {
		switch d.Check {
		case DirectiveCheck:
			malformed++
			if !strings.Contains(d.Message, "malformed //lint: directive") {
				t.Errorf("unexpected directive message: %s", d)
			}
		case "errcheck":
			errchecks++
		default:
			t.Errorf("unexpected check %q: %s", d.Check, d)
		}
	}
	if malformed != 11 {
		t.Errorf("%d malformed-directive diagnostics, want 11 (one per bad comment)", malformed)
	}
	if errchecks != 1 {
		t.Errorf("%d errcheck diagnostics, want 1 (the Atoi under a reason-less directive must still fire)", errchecks)
	}
}
