package sorting

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestMergeSortKnown(t *testing.T) {
	cases := [][]int64{
		{},
		{1},
		{2, 1},
		{3, 1, 2},
		{5, 4, 3, 2, 1},
		{1, 1, 1},
		{7, 3, 7, 1, 3},
	}
	for _, in := range cases {
		out := MergeSort(in)
		if !IsSorted(out) {
			t.Errorf("MergeSort(%v) = %v not sorted", in, out)
		}
		if len(out) != len(in) {
			t.Errorf("length changed: %v -> %v", in, out)
		}
	}
}

func TestMergeSortDoesNotMutateInput(t *testing.T) {
	in := []int64{3, 1, 2}
	_ = MergeSort(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("input mutated")
	}
}

func TestMergeSortMatchesStdlib(t *testing.T) {
	src := xrand.New(41)
	for _, n := range []int{10, 100, 1000, 4096} {
		in := RandomSlice(n, 1000, src)
		got := MergeSort(in)
		want := append([]int64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: mismatch at %d", n, i)
			}
		}
	}
}

// Property: output sorted, same multiset (checked via sum and length plus
// sorted-equality with stdlib).
func TestMergeSortProperty(t *testing.T) {
	check := func(raw []int16) bool {
		in := make([]int64, len(raw))
		for i, v := range raw {
			in[i] = int64(v)
		}
		got := MergeSort(in)
		want := append([]int64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceMergeSortValidation(t *testing.T) {
	if _, err := TraceMergeSort(12, 4); err == nil {
		t.Error("non-power accepted")
	}
	if _, err := TraceMergeSort(4, 4); err == nil {
		t.Error("below base accepted")
	}
	if _, err := TraceMergeSort(64, 0); err == nil {
		t.Error("block 0 accepted")
	}
}

func TestTraceMergeSortShape(t *testing.T) {
	tr, err := TraceMergeSort(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 2^levels leaves, levels = log2(256/8) = 5.
	if tr.Leaves() != 32 {
		t.Errorf("leaves = %d, want 32", tr.Leaves())
	}
	// Footprint: array + buffer = 2n words = 2·256/4 = 128 blocks.
	if got := tr.DistinctBlocks(); got != 128 {
		t.Errorf("distinct = %d, want 128", got)
	}
}

func TestWorstCaseProfileShape(t *testing.T) {
	if _, err := WorstCaseProfile(12, 4); err == nil {
		t.Error("non-power accepted")
	}
	if _, err := WorstCaseProfile(64, 0); err == nil {
		t.Error("block 0 accepted")
	}
	p, err := WorstCaseProfile(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Recursive structure: 2^levels leaf boxes (size 2) and merge boxes of
	// size 2·m/4 per level; levels = log2(64/8) = 3 → 8 leaves, 7 merges.
	if p.Len() != 15 {
		t.Errorf("boxes = %d, want 15", p.Len())
	}
	h := p.SizeHistogram()
	if h[2] != 8 { // leaf boxes: ceil(8/4) = 2
		t.Errorf("leaf boxes %d, want 8 (histogram %v)", h[2], h)
	}
	if h[32] != 1 { // top merge: 2·64/4
		t.Errorf("top merge boxes %d, want 1 (histogram %v)", h[32], h)
	}
}

func TestIsSortedEdge(t *testing.T) {
	if !IsSorted(nil) || !IsSorted([]int64{5}) {
		t.Error("trivial slices not sorted")
	}
	if IsSorted([]int64{2, 1}) {
		t.Error("descending pair reported sorted")
	}
}
