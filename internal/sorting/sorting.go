// Package sorting implements two-way merge sort — the paper's footnote-3
// example of the a = b boundary: merge sort is (2,2,1)-regular in blocks
// (two half-size subproblems plus a linear merge), and with a = b, c = 1 no
// algorithm can be optimally cache-adaptive because such algorithms are
// already a Θ(log(M/B)) factor from optimal in the DAM model. The paper
// explicitly leaves a = b smoothing for future work; the traced variant
// here supplies the executable boundary case for experiment A5.
package sorting

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// MergeSort returns a sorted copy of xs using top-down two-way merge sort.
func MergeSort(xs []int64) []int64 {
	out := make([]int64, len(xs))
	copy(out, xs)
	buf := make([]int64, len(xs))
	mergeSortRec(out, buf)
	return out
}

func mergeSortRec(xs, buf []int64) {
	if len(xs) <= 1 {
		return
	}
	h := len(xs) / 2
	mergeSortRec(xs[:h], buf[:h])
	mergeSortRec(xs[h:], buf[h:])
	// Merge into buf, copy back: the linear scan.
	i, j, k := 0, h, 0
	for i < h && j < len(xs) {
		if xs[i] <= xs[j] {
			buf[k] = xs[i]
			i++
		} else {
			buf[k] = xs[j]
			j++
		}
		k++
	}
	for i < h {
		buf[k] = xs[i]
		i++
		k++
	}
	for j < len(xs) {
		buf[k] = xs[j]
		j++
		k++
	}
	copy(xs, buf)
}

// IsSorted reports whether xs is non-decreasing.
func IsSorted(xs []int64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// RandomSlice returns n values uniform in [0, bound).
func RandomSlice(n int, bound int64, src *xrand.Source) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = src.Int63n(bound)
	}
	return out
}

// sortBaseLen is the traced recursion's cutoff in words.
const sortBaseLen = 8

// TraceMergeSort emits the block trace of merge-sorting n words (power of
// two, >= sortBaseLen) with blockWords words per block. The array lives at
// word offset 0 and the merge buffer at offset n; a subproblem on
// [off, off+m) touches its ⌈m/B⌉ array blocks and, when merging, the
// matching buffer blocks — the (2,2,1) shape in blocks.
func TraceMergeSort(n int, blockWords int64) (*trace.Trace, error) {
	b := &trace.Builder{}
	if err := EmitMergeSort(n, blockWords, b); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// EmitMergeSort streams the merge-sort trace into s without materializing
// it.
func EmitMergeSort(n int, blockWords int64, s trace.Sink) error {
	if n < sortBaseLen || n&(n-1) != 0 {
		return fmt.Errorf("sorting: traced sort needs power-of-two length >= %d, got %d", sortBaseLen, n)
	}
	if blockWords < 1 {
		return fmt.Errorf("sorting: block size %d < 1", blockWords)
	}
	g := &sortTraceGen{s: s, bw: blockWords, bufBase: int64(n)}
	g.rec(0, int64(n))
	return nil
}

type sortTraceGen struct {
	s       trace.Sink
	bw      int64
	bufBase int64
}

func (g *sortTraceGen) touch(off, words int64) {
	first := off / g.bw
	last := (off + words - 1) / g.bw
	g.s.AccessRange(first, last-first+1)
}

func (g *sortTraceGen) rec(off, m int64) {
	if m <= sortBaseLen {
		g.touch(off, m)
		g.s.EndLeaf()
		return
	}
	h := m / 2
	g.rec(off, h)
	g.rec(off+h, h)
	// The merge: read both halves, write the buffer, copy back.
	g.touch(off, m)
	g.touch(g.bufBase+off, m)
	g.touch(off, m)
}

// WorstCaseProfile builds the adversarial profile matched to
// TraceMergeSort, Figure-1 style: recursively two copies of the half-size
// profile followed by one box the size of a merge's distinct footprint
// (array chunk + buffer chunk = 2·⌈m/B⌉ blocks); base cases get a box of
// their ⌈m/B⌉-block footprint.
func WorstCaseProfile(n int, blockWords int64) (*profile.SquareProfile, error) {
	if n < sortBaseLen || n&(n-1) != 0 {
		return nil, fmt.Errorf("sorting: profile needs power-of-two length >= %d, got %d", sortBaseLen, n)
	}
	if blockWords < 1 {
		return nil, fmt.Errorf("sorting: block size %d < 1", blockWords)
	}
	var boxes []int64
	var build func(m int64)
	build = func(m int64) {
		if m <= sortBaseLen {
			boxes = append(boxes, (m+blockWords-1)/blockWords)
			return
		}
		build(m / 2)
		build(m / 2)
		boxes = append(boxes, 2*((m+blockWords-1)/blockWords))
	}
	build(int64(n))
	return profile.New(boxes)
}
