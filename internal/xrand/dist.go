package xrand

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a probability distribution over positive integer box sizes
// (measured in blocks). The cache-adaptive smoothing theorem (Theorem 1)
// holds for an arbitrary distribution Σ over box sizes, so experiments
// exercise several qualitatively different families.
type Dist interface {
	// Sample draws one box size using src.
	Sample(src *Source) int64
	// TailProb returns Pr[X >= x]. Lemma 3's quantity p is
	// Pr[|box| >= n]·f(n/4), so the exact tail must be computable.
	TailProb(x int64) float64
	// Mean returns E[X].
	Mean() float64
	// MeanBoundedPow returns E[min(X, n)^e] — the "average n-bounded
	// potential" m_n of the paper (with e = log_b a). Exact, not sampled.
	MeanBoundedPow(n int64, e float64) float64
	// Name identifies the distribution in tables.
	Name() string
}

// ---------------------------------------------------------------------------
// Uniform distribution over {lo, ..., hi}.

// Uniform is the discrete uniform distribution on the integer interval
// [Lo, Hi].
type Uniform struct {
	Lo, Hi int64
}

// NewUniform validates and returns a Uniform distribution.
func NewUniform(lo, hi int64) (Uniform, error) {
	if lo < 1 || hi < lo {
		return Uniform{}, fmt.Errorf("xrand: uniform bounds [%d,%d] invalid (need 1 <= lo <= hi)", lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

func (u Uniform) Sample(src *Source) int64 {
	return u.Lo + src.Int63n(u.Hi-u.Lo+1)
}

func (u Uniform) TailProb(x int64) float64 {
	if x <= u.Lo {
		return 1
	}
	if x > u.Hi {
		return 0
	}
	return float64(u.Hi-x+1) / float64(u.Hi-u.Lo+1)
}

func (u Uniform) Mean() float64 { return float64(u.Lo+u.Hi) / 2 }

func (u Uniform) MeanBoundedPow(n int64, e float64) float64 {
	total := 0.0
	count := float64(u.Hi - u.Lo + 1)
	for v := u.Lo; v <= u.Hi; v++ {
		total += math.Pow(float64(min64(v, n)), e)
	}
	return total / count
}

func (u Uniform) Name() string { return fmt.Sprintf("uniform[%d,%d]", u.Lo, u.Hi) }

// ---------------------------------------------------------------------------
// Two-point distribution: small boxes with probability 1-p, huge boxes with
// probability p. This is the adversarially-flavoured member of the family —
// almost all boxes are useless, but occasionally a giant one arrives.

// TwoPoint takes value Small with probability 1-PBig and Big with
// probability PBig.
type TwoPoint struct {
	Small, Big int64
	PBig       float64
}

// NewTwoPoint validates and returns a TwoPoint distribution.
func NewTwoPoint(small, big int64, pBig float64) (TwoPoint, error) {
	if small < 1 || big < small {
		return TwoPoint{}, fmt.Errorf("xrand: two-point values (%d,%d) invalid", small, big)
	}
	if pBig < 0 || pBig > 1 {
		return TwoPoint{}, fmt.Errorf("xrand: two-point pBig=%g out of [0,1]", pBig)
	}
	return TwoPoint{Small: small, Big: big, PBig: pBig}, nil
}

func (t TwoPoint) Sample(src *Source) int64 {
	if src.Float64() < t.PBig {
		return t.Big
	}
	return t.Small
}

func (t TwoPoint) TailProb(x int64) float64 {
	switch {
	case x <= t.Small:
		return 1
	case x <= t.Big:
		return t.PBig
	default:
		return 0
	}
}

func (t TwoPoint) Mean() float64 {
	return (1-t.PBig)*float64(t.Small) + t.PBig*float64(t.Big)
}

func (t TwoPoint) MeanBoundedPow(n int64, e float64) float64 {
	return (1-t.PBig)*math.Pow(float64(min64(t.Small, n)), e) +
		t.PBig*math.Pow(float64(min64(t.Big, n)), e)
}

func (t TwoPoint) Name() string {
	return fmt.Sprintf("twopoint{%d,%d;p=%.3g}", t.Small, t.Big, t.PBig)
}

// ---------------------------------------------------------------------------
// Power-law distribution on powers of base: Pr[X = base^k] ∝ base^{-alpha·k},
// k = 0..KMax. Heavy-tailed box sizes stress the large-box analysis while
// staying exactly representable.

// PowerLaw samples base^k with geometric weights.
type PowerLaw struct {
	Base  int64
	KMax  int
	Alpha float64

	probs []float64 // Pr[k], computed once
	cum   []float64 // cumulative
}

// NewPowerLaw validates parameters and precomputes the pmf.
func NewPowerLaw(base int64, kMax int, alpha float64) (*PowerLaw, error) {
	if base < 2 {
		return nil, fmt.Errorf("xrand: power-law base %d < 2", base)
	}
	if kMax < 0 {
		return nil, fmt.Errorf("xrand: power-law kMax %d < 0", kMax)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("xrand: power-law alpha %g <= 0", alpha)
	}
	p := &PowerLaw{Base: base, KMax: kMax, Alpha: alpha}
	total := 0.0
	raw := make([]float64, kMax+1)
	for k := 0; k <= kMax; k++ {
		raw[k] = math.Pow(float64(base), -alpha*float64(k))
		total += raw[k]
	}
	p.probs = make([]float64, kMax+1)
	p.cum = make([]float64, kMax+1)
	acc := 0.0
	for k := range raw {
		p.probs[k] = raw[k] / total
		acc += p.probs[k]
		p.cum[k] = acc
	}
	return p, nil
}

func (p *PowerLaw) Sample(src *Source) int64 {
	u := src.Float64()
	k := sort.SearchFloat64s(p.cum, u)
	if k > p.KMax {
		k = p.KMax
	}
	return ipow(p.Base, k)
}

func (p *PowerLaw) TailProb(x int64) float64 {
	tail := 0.0
	for k := 0; k <= p.KMax; k++ {
		if ipow(p.Base, k) >= x {
			tail += p.probs[k]
		}
	}
	return tail
}

func (p *PowerLaw) Mean() float64 {
	m := 0.0
	for k := 0; k <= p.KMax; k++ {
		m += p.probs[k] * float64(ipow(p.Base, k))
	}
	return m
}

func (p *PowerLaw) MeanBoundedPow(n int64, e float64) float64 {
	m := 0.0
	for k := 0; k <= p.KMax; k++ {
		m += p.probs[k] * math.Pow(float64(min64(ipow(p.Base, k), n)), e)
	}
	return m
}

func (p *PowerLaw) Name() string {
	return fmt.Sprintf("powerlaw{b=%d,kmax=%d,a=%.2g}", p.Base, p.KMax, p.Alpha)
}

// ---------------------------------------------------------------------------
// Empirical distribution over an explicit multiset of sizes — used to model
// "take the adversarial profile's boxes and shuffle them": sampling i.i.d.
// from the empirical distribution of the adversary's own box sizes.

// Empirical is the empirical distribution of Sizes (sampled with
// replacement).
type Empirical struct {
	sizes []int64 // sorted ascending
	name  string
}

// NewEmpirical copies sizes (which must be non-empty and positive) into an
// empirical distribution.
func NewEmpirical(name string, sizes []int64) (*Empirical, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("xrand: empirical distribution needs at least one size")
	}
	cp := make([]int64, len(sizes))
	copy(cp, sizes)
	for _, v := range cp {
		if v < 1 {
			return nil, fmt.Errorf("xrand: empirical size %d < 1", v)
		}
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return &Empirical{sizes: cp, name: name}, nil
}

func (e *Empirical) Sample(src *Source) int64 {
	return e.sizes[src.Intn(len(e.sizes))]
}

func (e *Empirical) TailProb(x int64) float64 {
	// First index with size >= x.
	i := sort.Search(len(e.sizes), func(i int) bool { return e.sizes[i] >= x })
	return float64(len(e.sizes)-i) / float64(len(e.sizes))
}

func (e *Empirical) Mean() float64 {
	total := 0.0
	for _, v := range e.sizes {
		total += float64(v)
	}
	return total / float64(len(e.sizes))
}

func (e *Empirical) MeanBoundedPow(n int64, ex float64) float64 {
	total := 0.0
	for _, v := range e.sizes {
		total += math.Pow(float64(min64(v, n)), ex)
	}
	return total / float64(len(e.sizes))
}

func (e *Empirical) Name() string {
	if e.name != "" {
		return e.name
	}
	return fmt.Sprintf("empirical{n=%d}", len(e.sizes))
}

// Len reports the number of samples backing the empirical distribution.
func (e *Empirical) Len() int { return len(e.sizes) }

// ---------------------------------------------------------------------------

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// ipow returns base^k for small non-negative k with int64 math.
func ipow(base int64, k int) int64 {
	r := int64(1)
	for i := 0; i < k; i++ {
		r *= base
	}
	return r
}
