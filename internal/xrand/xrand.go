// Package xrand provides a small, deterministic, seedable random number
// generator and the handful of distributions the cache-adaptive experiments
// need. Everything in this repository that consumes randomness takes an
// explicit *xrand.Source so that every experiment is reproducible from a
// single uint64 seed.
//
// The core generator is SplitMix64 (Steele, Lea, Flood 2014): a tiny,
// statistically strong 64-bit generator whose state is a single word. It is
// also used to derive independent child streams (Split), which lets parallel
// trials each own a private generator without locking.
package xrand

import "math"

// Source is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; derive one Source per goroutine with Split.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds give independent
// streams for all practical purposes (the output function is a strong
// mixer).
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives a new, statistically independent Source from s, advancing s.
// This is the supported way to hand generators to parallel workers.
func (s *Source) Split() *Source {
	// Mix the child seed through one extra round so that sequential splits
	// do not produce correlated initial states.
	return &Source{state: mix(s.Uint64() ^ 0x9e3779b97f4a7c15)}
}

// Split (the package-level function) derives a deterministic, statistically
// independent seed for the cell named by (id, parts...) under the root
// seed. It is the seeding scheme of the parallel experiment engine: a cell
// identified by, say, ("E3", distribution, k, trial) always receives the
// same seed regardless of how many workers run or in what order cells are
// scheduled, which is what makes parallel output byte-identical to serial.
//
// Unlike (*Source).Split, no generator state is consumed: the derivation is
// a pure function of its arguments.
func Split(seed uint64, id string, parts ...int64) uint64 {
	h := mix(seed ^ 0x243f6a8885a308d3) // 2^62·π — domain-separate from raw seeds
	h = mix(h ^ uint64(len(id)))
	for i := 0; i < len(id); i++ {
		h = mix(h ^ uint64(id[i])*0x100000001b3)
	}
	for _, p := range parts {
		h = mix((h + 0x9e3779b97f4a7c15) ^ uint64(p))
	}
	return h
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand, because a zero range is always a caller bug.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(s.boundedUint64(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n).
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n called with n <= 0")
	}
	return int64(s.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire-style
// rejection to avoid modulo bias.
func (s *Source) boundedUint64(n uint64) uint64 {
	// Threshold below which values would be biased.
	t := (-n) % n
	for {
		v := s.Uint64()
		if v >= t {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 random mantissa bits.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n) via Fisher–Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles p in place (Fisher–Yates).
func (s *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function, exactly like
// math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from the geometric distribution with success
// probability p in (0, 1]: the number of failures before the first success
// (support {0, 1, 2, ...}).
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	u := s.Float64()
	// Avoid log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Exp returns an exponentially distributed sample with rate 1.
func (s *Source) Exp() float64 {
	u := s.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(u)
}

// Norm returns a standard normal sample (Box–Muller; one value per call,
// deliberately simple over fast).
func (s *Source) Norm() float64 {
	u1 := s.Float64()
	if u1 == 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
