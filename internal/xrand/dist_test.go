package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleTail estimates Pr[X >= x] by sampling.
func sampleTail(t *testing.T, d Dist, x int64, trials int) float64 {
	t.Helper()
	s := New(1234)
	hits := 0
	for i := 0; i < trials; i++ {
		if d.Sample(s) >= x {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}

// sampleMeanBoundedPow estimates E[min(X,n)^e] by sampling.
func sampleMeanBoundedPow(t *testing.T, d Dist, n int64, e float64, trials int) float64 {
	t.Helper()
	s := New(987)
	total := 0.0
	for i := 0; i < trials; i++ {
		v := d.Sample(s)
		if v > n {
			v = n
		}
		total += math.Pow(float64(v), e)
	}
	return total / float64(trials)
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*math.Max(1, math.Abs(b)) }

func TestUniformValidation(t *testing.T) {
	if _, err := NewUniform(0, 5); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := NewUniform(5, 4); err == nil {
		t.Error("hi<lo accepted")
	}
	if _, err := NewUniform(1, 1); err != nil {
		t.Errorf("degenerate uniform rejected: %v", err)
	}
}

func TestUniformMoments(t *testing.T) {
	u, err := NewUniform(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := u.Mean(), 34.0; got != want {
		t.Errorf("mean = %g, want %g", got, want)
	}
	if got := sampleTail(t, u, 32, 100000); !approxEq(got, u.TailProb(32), 0.05) {
		t.Errorf("sampled tail %g vs analytic %g", got, u.TailProb(32))
	}
	if got := sampleMeanBoundedPow(t, u, 16, 1.5, 100000); !approxEq(got, u.MeanBoundedPow(16, 1.5), 0.02) {
		t.Errorf("sampled m_n %g vs analytic %g", got, u.MeanBoundedPow(16, 1.5))
	}
}

func TestUniformTailEdges(t *testing.T) {
	u, _ := NewUniform(4, 64)
	if u.TailProb(4) != 1 {
		t.Error("TailProb at lo should be 1")
	}
	if u.TailProb(1) != 1 {
		t.Error("TailProb below lo should be 1")
	}
	if u.TailProb(65) != 0 {
		t.Error("TailProb above hi should be 0")
	}
	if u.TailProb(64) <= 0 {
		t.Error("TailProb at hi should be positive")
	}
}

func TestTwoPointValidation(t *testing.T) {
	if _, err := NewTwoPoint(0, 5, 0.5); err == nil {
		t.Error("small=0 accepted")
	}
	if _, err := NewTwoPoint(8, 4, 0.5); err == nil {
		t.Error("big<small accepted")
	}
	if _, err := NewTwoPoint(4, 8, 1.5); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestTwoPointMoments(t *testing.T) {
	tp, err := NewTwoPoint(4, 1024, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.99*4 + 0.01*1024
	if !approxEq(tp.Mean(), wantMean, 1e-12) {
		t.Errorf("mean %g want %g", tp.Mean(), wantMean)
	}
	if got := sampleTail(t, tp, 1024, 200000); !approxEq(got, 0.01, 0.15) {
		t.Errorf("sampled tail at big %g want ~0.01", got)
	}
	if tp.TailProb(4) != 1 || tp.TailProb(5) != 0.01 || tp.TailProb(2000) != 0 {
		t.Errorf("tail probs wrong: %g %g %g", tp.TailProb(4), tp.TailProb(5), tp.TailProb(2000))
	}
}

func TestPowerLawValidation(t *testing.T) {
	if _, err := NewPowerLaw(1, 4, 0.5); err == nil {
		t.Error("base=1 accepted")
	}
	if _, err := NewPowerLaw(4, -1, 0.5); err == nil {
		t.Error("kMax<0 accepted")
	}
	if _, err := NewPowerLaw(4, 4, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
}

func TestPowerLawSupport(t *testing.T) {
	p, err := NewPowerLaw(4, 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s := New(31)
	for i := 0; i < 10000; i++ {
		v := p.Sample(s)
		// Must be a power of 4 between 1 and 4^5.
		ok := false
		for k := int64(1); k <= 1024; k *= 4 {
			if v == k {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("sample %d not a power of 4 in range", v)
		}
	}
}

func TestPowerLawMomentsAgree(t *testing.T) {
	p, err := NewPowerLaw(4, 6, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if got := sampleTail(t, p, 64, 200000); !approxEq(got, p.TailProb(64), 0.05) {
		t.Errorf("tail: sampled %g analytic %g", got, p.TailProb(64))
	}
	if got := sampleMeanBoundedPow(t, p, 256, 1.5, 200000); !approxEq(got, p.MeanBoundedPow(256, 1.5), 0.05) {
		t.Errorf("m_n: sampled %g analytic %g", got, p.MeanBoundedPow(256, 1.5))
	}
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical("x", nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewEmpirical("x", []int64{3, 0}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestEmpiricalMatchesMultiset(t *testing.T) {
	sizes := []int64{1, 1, 4, 16, 16, 16, 64, 256}
	e, err := NewEmpirical("test", sizes)
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != len(sizes) {
		t.Fatalf("Len = %d", e.Len())
	}
	// Tail at 16 = 5/8.
	if got, want := e.TailProb(16), 5.0/8.0; got != want {
		t.Errorf("TailProb(16) = %g want %g", got, want)
	}
	wantMean := (1.0 + 1 + 4 + 16 + 16 + 16 + 64 + 256) / 8.0
	if !approxEq(e.Mean(), wantMean, 1e-12) {
		t.Errorf("mean %g want %g", e.Mean(), wantMean)
	}
	if got := sampleTail(t, e, 64, 100000); !approxEq(got, 2.0/8.0, 0.05) {
		t.Errorf("sampled tail %g want 0.25", got)
	}
}

func TestEmpiricalDoesNotAliasInput(t *testing.T) {
	sizes := []int64{5, 6, 7}
	e, err := NewEmpirical("alias", sizes)
	if err != nil {
		t.Fatal(err)
	}
	sizes[0] = 9999
	if e.TailProb(9999) != 0 {
		t.Error("empirical aliased caller slice")
	}
}

// Property: for any Dist, TailProb is non-increasing and MeanBoundedPow is
// non-decreasing in n and bounded by Mean^... sanity invariants.
func TestDistInvariants(t *testing.T) {
	u, _ := NewUniform(2, 200)
	tp, _ := NewTwoPoint(4, 4096, 0.05)
	pl, _ := NewPowerLaw(2, 10, 0.6)
	em, _ := NewEmpirical("e", []int64{3, 9, 27, 81})
	dists := []Dist{u, tp, pl, em}

	for _, d := range dists {
		check := func(a, b uint16) bool {
			x, y := int64(a)+1, int64(b)+1
			if x > y {
				x, y = y, x
			}
			if d.TailProb(x) < d.TailProb(y) {
				return false // tail must be non-increasing
			}
			if d.MeanBoundedPow(x, 1.5) > d.MeanBoundedPow(y, 1.5)+1e-9 {
				return false // bounded moment must be non-decreasing in n
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", d.Name(), err)
		}
	}
}

func TestDistNamesNonEmpty(t *testing.T) {
	u, _ := NewUniform(1, 2)
	tp, _ := NewTwoPoint(1, 2, 0.5)
	pl, _ := NewPowerLaw(2, 2, 1)
	em, _ := NewEmpirical("", []int64{1})
	for _, d := range []Dist{u, tp, pl, em} {
		if d.Name() == "" {
			t.Errorf("%T has empty name", d)
		}
	}
}
