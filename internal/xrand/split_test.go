package xrand

import "testing"

func TestSplitDeterministic(t *testing.T) {
	a := Split(42, "E3", 1, 5, 9)
	b := Split(42, "E3", 1, 5, 9)
	if a != b {
		t.Fatalf("same cell gave different seeds: %x vs %x", a, b)
	}
}

func TestSplitSeparatesCells(t *testing.T) {
	seen := map[uint64][]int64{}
	for d := int64(0); d < 4; d++ {
		for k := int64(3); k <= 9; k++ {
			for trial := int64(0); trial < 50; trial++ {
				s := Split(20200715, "E3", d, k, trial)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and %v both gave %x",
						d, k, trial, prev, s)
				}
				seen[s] = []int64{d, k, trial}
			}
		}
	}
}

func TestSplitSeparatesIDsAndSeeds(t *testing.T) {
	if Split(1, "E3", 4) == Split(1, "E6", 4) {
		t.Error("different experiment IDs gave the same seed")
	}
	if Split(1, "E3", 4) == Split(2, "E3", 4) {
		t.Error("different root seeds gave the same seed")
	}
	if Split(1, "E3") == Split(1, "E3", 0) {
		t.Error("arity is not part of the cell identity")
	}
	// The streams the derived seeds open should be uncorrelated at the
	// cheapest level of scrutiny: distinct first outputs.
	x := New(Split(7, "exp", 0)).Uint64()
	y := New(Split(7, "exp", 1)).Uint64()
	if x == y {
		t.Error("adjacent cells produced identical first draws")
	}
}
