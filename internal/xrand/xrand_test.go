package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first output")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d count %d too far from expected %.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(9)
	sum := 0.0
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += s.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	check := func(n uint8) bool {
		size := int(n%50) + 1
		p := s.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	s := New(17)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		p := s.Perm(n)
		counts[p[0]]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("perm[0]=%d count %d far from %.0f", v, c, want)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(19)
	const p, trials = 0.25, 100000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += s.Geometric(p)
	}
	mean := float64(sum) / trials
	want := (1 - p) / p // mean of failures-before-success
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("geometric mean %.3f, want ~%.3f", mean, want)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(23)
	const trials = 200000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %.4f not ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %.4f not ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(29)
	const trials = 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += s.Exp()
	}
	if mean := sum / trials; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean %.4f not ~1", mean)
	}
}
