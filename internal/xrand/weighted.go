package xrand

import (
	"fmt"
	"math"
	"sort"
)

// Weighted is a distribution over explicit (value, weight) pairs. It is the
// exact representation of the box-size multiset of a worst-case profile
// M_{a,b}(n) — sizes b^j with multiplicity a^{k-j} — without materialising
// the profile, which lets the "sample i.i.d. from the adversary's own box
// sizes" experiment scale to sizes whose profiles would not fit in memory.
type Weighted struct {
	values []int64   // ascending
	probs  []float64 // normalised weights, aligned with values
	cum    []float64 // cumulative probabilities
	name   string
}

// NewWeighted validates and normalises the pairs. Values must be positive
// and distinct; weights must be positive.
func NewWeighted(name string, values []int64, weights []float64) (*Weighted, error) {
	if len(values) == 0 || len(values) != len(weights) {
		return nil, fmt.Errorf("xrand: weighted needs matching non-empty values/weights, got %d/%d", len(values), len(weights))
	}
	type pair struct {
		v int64
		w float64
	}
	pairs := make([]pair, len(values))
	var total float64
	for i := range values {
		if values[i] < 1 {
			return nil, fmt.Errorf("xrand: weighted value %d < 1", values[i])
		}
		if weights[i] <= 0 || math.IsInf(weights[i], 0) || math.IsNaN(weights[i]) {
			return nil, fmt.Errorf("xrand: weighted weight %g invalid", weights[i])
		}
		pairs[i] = pair{values[i], weights[i]}
		total += weights[i]
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	for i := 1; i < len(pairs); i++ {
		if pairs[i].v == pairs[i-1].v {
			return nil, fmt.Errorf("xrand: weighted value %d duplicated", pairs[i].v)
		}
	}
	w := &Weighted{name: name}
	acc := 0.0
	for _, p := range pairs {
		w.values = append(w.values, p.v)
		prob := p.w / total
		w.probs = append(w.probs, prob)
		acc += prob
		w.cum = append(w.cum, acc)
	}
	// Guard against floating-point shortfall at the top.
	w.cum[len(w.cum)-1] = 1
	return w, nil
}

// WorstCaseBoxDist returns the exact box-size distribution of M_{a,b}(n):
// Pr[b^j] ∝ a^{k-j} for j = 0..k, n = b^k. Sampling i.i.d. from it is the
// "shuffle the adversary's boxes" smoothing at unbounded scale.
func WorstCaseBoxDist(a, b, n int64) (*Weighted, error) {
	if b < 2 || a < 1 {
		return nil, fmt.Errorf("xrand: invalid (a,b) = (%d,%d)", a, b)
	}
	k := 0
	for m := n; m > 1; m /= b {
		if m%b != 0 {
			return nil, fmt.Errorf("xrand: n = %d not a power of b = %d", n, b)
		}
		k++
	}
	values := make([]int64, 0, k+1)
	weights := make([]float64, 0, k+1)
	size := int64(1)
	for j := 0; j <= k; j++ {
		values = append(values, size)
		weights = append(weights, math.Pow(float64(a), float64(k-j)))
		if j < k {
			size *= b
		}
	}
	return NewWeighted(fmt.Sprintf("wcboxes{a=%d,b=%d,n=%d}", a, b, n), values, weights)
}

func (w *Weighted) Sample(src *Source) int64 {
	u := src.Float64()
	i := sort.SearchFloat64s(w.cum, u)
	if i >= len(w.values) {
		i = len(w.values) - 1
	}
	return w.values[i]
}

func (w *Weighted) TailProb(x int64) float64 {
	i := sort.Search(len(w.values), func(i int) bool { return w.values[i] >= x })
	tail := 0.0
	for ; i < len(w.values); i++ {
		tail += w.probs[i]
	}
	return tail
}

func (w *Weighted) Mean() float64 {
	m := 0.0
	for i, v := range w.values {
		m += w.probs[i] * float64(v)
	}
	return m
}

func (w *Weighted) MeanBoundedPow(n int64, e float64) float64 {
	m := 0.0
	for i, v := range w.values {
		m += w.probs[i] * math.Pow(float64(min64(v, n)), e)
	}
	return m
}

func (w *Weighted) Name() string {
	if w.name != "" {
		return w.name
	}
	return fmt.Sprintf("weighted{k=%d}", len(w.values))
}
