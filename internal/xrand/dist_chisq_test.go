package xrand

import (
	"math"
	"testing"
)

// Chi-square goodness-of-fit tests for the box-size samplers. cadaptivelint
// makes xrand the only randomness source in the repository, so the
// distributions feeding every Monte-Carlo experiment deserve direct
// statistical scrutiny, not just moment spot-checks. All tests run under
// fixed seeds, so they are deterministic: the thresholds are p = 0.001
// critical values, checked once, and a passing seed passes forever.

// chiSquareCrit maps degrees of freedom to the p = 0.001 upper critical
// value of the chi-square distribution.
var chiSquareCrit = map[int]float64{
	1:  10.828,
	3:  16.266,
	7:  24.322,
	9:  27.877,
	10: 29.588,
	15: 37.697,
}

// chiSquare returns the statistic for observed counts against expected
// probabilities over n draws. Bins with expected count below ~5 make the
// statistic unreliable, so the caller must bin accordingly.
func chiSquare(t *testing.T, obs []int, probs []float64, n int) float64 {
	t.Helper()
	if len(obs) != len(probs) {
		t.Fatalf("%d observed bins, %d probabilities", len(obs), len(probs))
	}
	stat := 0.0
	for i, o := range obs {
		exp := probs[i] * float64(n)
		if exp < 5 {
			t.Fatalf("bin %d expects only %.2f draws; rebin", i, exp)
		}
		d := float64(o) - exp
		stat += d * d / exp
	}
	return stat
}

func TestUniformSamplerChiSquare(t *testing.T) {
	u, err := NewUniform(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32000
	src := New(101)
	obs := make([]int, 16)
	probs := make([]float64, 16)
	for i := range probs {
		probs[i] = 1.0 / 16
	}
	for i := 0; i < n; i++ {
		v := u.Sample(src)
		if v < 1 || v > 16 {
			t.Fatalf("sample %d outside [1,16]", v)
		}
		obs[v-1]++
	}
	if stat := chiSquare(t, obs, probs, n); stat > chiSquareCrit[15] {
		t.Errorf("uniform[1,16] chi-square %.2f > %.2f (df=15, p=0.001)", stat, chiSquareCrit[15])
	}
}

func TestTwoPointSamplerChiSquare(t *testing.T) {
	tp, err := NewTwoPoint(2, 1024, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	src := New(202)
	obs := make([]int, 2)
	for i := 0; i < n; i++ {
		switch tp.Sample(src) {
		case 2:
			obs[0]++
		case 1024:
			obs[1]++
		default:
			t.Fatal("two-point sampler produced a third value")
		}
	}
	probs := []float64{1 - tp.PBig, tp.PBig}
	if stat := chiSquare(t, obs, probs, n); stat > chiSquareCrit[1] {
		t.Errorf("two-point chi-square %.2f > %.2f (df=1, p=0.001)", stat, chiSquareCrit[1])
	}
}

func TestGeometricSamplerChiSquare(t *testing.T) {
	const (
		p = 0.3
		n = 30000
	)
	src := New(303)
	// Bins 0..9 individually, one tail bin for >= 10: pmf p(1-p)^k.
	const bins = 10
	obs := make([]int, bins+1)
	probs := make([]float64, bins+1)
	tail := 1.0
	for k := 0; k < bins; k++ {
		probs[k] = p * math.Pow(1-p, float64(k))
		tail -= probs[k]
	}
	probs[bins] = tail
	mean, m2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		g := src.Geometric(p)
		if g < 0 {
			t.Fatalf("negative geometric sample %d", g)
		}
		if g >= bins {
			obs[bins]++
		} else {
			obs[g]++
		}
		mean += float64(g)
		m2 += float64(g) * float64(g)
	}
	if stat := chiSquare(t, obs, probs, n); stat > chiSquareCrit[10] {
		t.Errorf("geometric(%.1f) chi-square %.2f > %.2f (df=10, p=0.001)", p, stat, chiSquareCrit[10])
	}
	mean /= n
	variance := m2/n - mean*mean
	wantMean := (1 - p) / p
	wantVar := (1 - p) / (p * p)
	if math.Abs(mean-wantMean) > 0.05*wantMean {
		t.Errorf("geometric sample mean %.3f, want %.3f ±5%%", mean, wantMean)
	}
	if math.Abs(variance-wantVar) > 0.10*wantVar {
		t.Errorf("geometric sample variance %.3f, want %.3f ±10%%", variance, wantVar)
	}
}

func TestPowerLawSamplerChiSquare(t *testing.T) {
	pl, err := NewPowerLaw(2, 7, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40000
	src := New(404)
	// Pr[X = 2^k] through the public tail: TailProb(2^k) - TailProb(2^k+1).
	obs := make([]int, 8)
	probs := make([]float64, 8)
	for k := 0; k <= 7; k++ {
		x := int64(1) << k
		probs[k] = pl.TailProb(x) - pl.TailProb(x+1)
	}
	for i := 0; i < n; i++ {
		v := pl.Sample(src)
		k := 0
		for x := int64(1); x < v; x <<= 1 {
			k++
		}
		if int64(1)<<k != v || k > 7 {
			t.Fatalf("power-law sample %d is not a power of 2 within kmax", v)
		}
		obs[k]++
	}
	if stat := chiSquare(t, obs, probs, n); stat > chiSquareCrit[7] {
		t.Errorf("power-law chi-square %.2f > %.2f (df=7, p=0.001)", stat, chiSquareCrit[7])
	}
}

// TestSamplersMatchDeclaredMoments cross-checks every Dist family's
// sampler against its own exact Mean and MeanBoundedPow — the m_n
// "average n-bounded potential" of Lemma 3, so a drifting sampler would
// corrupt exactly the quantity the paper's bound is computed from.
func TestSamplersMatchDeclaredMoments(t *testing.T) {
	pl, err := NewPowerLaw(4, 5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := NewEmpirical("mix", []int64{1, 1, 2, 3, 5, 8, 13, 21, 34, 55})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := NewUniform(3, 47)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := NewTwoPoint(1, 4096, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	const (
		n     = 200000
		bound = int64(64) // n-bound for MeanBoundedPow
		e     = 1.585     // log2(3), the E2/E3 exponent regime
	)
	for i, d := range []Dist{uni, tp, pl, emp} {
		src := New(505 + uint64(i))
		sum, sumBounded := 0.0, 0.0
		for j := 0; j < n; j++ {
			v := d.Sample(src)
			if d.TailProb(v) <= 0 {
				t.Fatalf("%s: sampled %d but TailProb says it is impossible", d.Name(), v)
			}
			sum += float64(v)
			sumBounded += math.Pow(float64(min64(v, bound)), e)
		}
		gotMean, wantMean := sum/n, d.Mean()
		if math.Abs(gotMean-wantMean) > 0.05*wantMean {
			t.Errorf("%s: sample mean %.4f, declared Mean %.4f", d.Name(), gotMean, wantMean)
		}
		gotPow, wantPow := sumBounded/n, d.MeanBoundedPow(bound, e)
		if math.Abs(gotPow-wantPow) > 0.05*wantPow {
			t.Errorf("%s: sampled m_n %.4f, declared MeanBoundedPow %.4f", d.Name(), gotPow, wantPow)
		}
	}
}
