package xrand

import (
	"math"
	"testing"
)

func TestWeightedValidation(t *testing.T) {
	if _, err := NewWeighted("x", nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewWeighted("x", []int64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewWeighted("x", []int64{0}, []float64{1}); err == nil {
		t.Error("value 0 accepted")
	}
	if _, err := NewWeighted("x", []int64{1}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewWeighted("x", []int64{1}, []float64{math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
	if _, err := NewWeighted("x", []int64{3, 3}, []float64{1, 1}); err == nil {
		t.Error("duplicate values accepted")
	}
}

func TestWeightedMoments(t *testing.T) {
	// Pr[1] = 0.5, Pr[4] = 0.25, Pr[16] = 0.25.
	w, err := NewWeighted("w", []int64{1, 4, 16}, []float64{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w.Mean(), 0.5*1+0.25*4+0.25*16; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %g, want %g", got, want)
	}
	if got, want := w.TailProb(4), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("tail(4) = %g, want %g", got, want)
	}
	if got, want := w.TailProb(1), 1.0; got != want {
		t.Errorf("tail(1) = %g", got)
	}
	if got := w.TailProb(17); got != 0 {
		t.Errorf("tail(17) = %g", got)
	}
	// m_n at n=4, e=1.5: 0.5·1 + 0.25·8 + 0.25·8 = 4.5.
	if got := w.MeanBoundedPow(4, 1.5); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("m_4 = %g, want 4.5", got)
	}
}

func TestWeightedSamplingMatchesPMF(t *testing.T) {
	w, _ := NewWeighted("w", []int64{2, 8, 32}, []float64{6, 3, 1})
	src := New(55)
	counts := map[int64]int{}
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[w.Sample(src)]++
	}
	wantFrac := map[int64]float64{2: 0.6, 8: 0.3, 32: 0.1}
	for v, frac := range wantFrac {
		got := float64(counts[v]) / trials
		if math.Abs(got-frac) > 0.01 {
			t.Errorf("Pr[%d] sampled %.3f, want %.3f", v, got, frac)
		}
	}
}

func TestWorstCaseBoxDist(t *testing.T) {
	// M_{8,4}(64): sizes 1,4,16,64 with multiplicities 512,64,8,1.
	w, err := WorstCaseBoxDist(8, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	total := 512.0 + 64 + 8 + 1
	if got, want := w.TailProb(4), 73.0/total; math.Abs(got-want) > 1e-12 {
		t.Errorf("tail(4) = %g, want %g", got, want)
	}
	if got, want := w.TailProb(64), 1.0/total; math.Abs(got-want) > 1e-12 {
		t.Errorf("tail(64) = %g, want %g", got, want)
	}
	if _, err := WorstCaseBoxDist(8, 4, 48); err == nil {
		t.Error("non-power n accepted")
	}
	if _, err := WorstCaseBoxDist(8, 1, 4); err == nil {
		t.Error("b=1 accepted")
	}
}

func TestWorstCaseBoxDistMatchesMaterialisedProfile(t *testing.T) {
	// The analytic distribution must equal the empirical distribution of
	// the materialised profile's boxes. (Uses the multiplicity counts
	// directly to stay independent of the profile package.)
	w, _ := WorstCaseBoxDist(2, 2, 16) // sizes 1,2,4,8,16 mult 16,8,4,2,1
	e, _ := NewEmpirical("m", []int64{
		1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
		2, 2, 2, 2, 2, 2, 2, 2,
		4, 4, 4, 4,
		8, 8,
		16,
	})
	for _, x := range []int64{1, 2, 3, 4, 8, 16, 17} {
		if a, b := w.TailProb(x), e.TailProb(x); math.Abs(a-b) > 1e-12 {
			t.Errorf("tail(%d): weighted %g vs empirical %g", x, a, b)
		}
	}
	if math.Abs(w.Mean()-e.Mean()) > 1e-12 {
		t.Errorf("means differ: %g vs %g", w.Mean(), e.Mean())
	}
	if math.Abs(w.MeanBoundedPow(4, 1)-e.MeanBoundedPow(4, 1)) > 1e-12 {
		t.Error("bounded moments differ")
	}
}
