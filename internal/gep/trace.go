package gep

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/trace"
)

// Traced GEP variants, mirroring internal/matrix's MM pair.
//
// Layout: the distance matrix lives in block-recursive (Morton) order at
// word offset 0, so every d×d octant is ⌈d²/B⌉ contiguous blocks. The
// in-place recursion touches only the three octants per call — (8,4,0) in
// blocks. The not-in-place variant additionally materialises its U and V
// operands into stack-allocated temporaries before recursing (the copying
// formulation of GEP), adding a Θ(d²/B) scan per call — (8,4,1) in blocks,
// which is where the paper's Theorem 2 puts it in the gap.

type gepTraceGen struct {
	s          trace.Sink
	blockWords int64
	allocTop   int64
}

func (g *gepTraceGen) touch(off, words int64) {
	first := off / g.blockWords
	last := (off + words - 1) / g.blockWords
	g.s.AccessRange(first, last-first+1)
}

func validateGEPTraceArgs(dim int, blockWords int64) error {
	if dim < 1 || dim&(dim-1) != 0 {
		return fmt.Errorf("gep: traced recursion needs power-of-two dimension, got %d", dim)
	}
	if dim < gepBaseDim {
		return fmt.Errorf("gep: traced recursion needs dimension >= %d, got %d", gepBaseDim, dim)
	}
	if blockWords < 1 {
		return fmt.Errorf("gep: block size %d < 1", blockWords)
	}
	return nil
}

// octant returns the Morton word offset of octant (qi,qj) of the d×d
// region at off.
func octant(off, d, qi, qj int64) int64 {
	h := d / 2
	return off + (2*qi+qj)*h*h
}

// TraceFWInPlace emits the block trace of the in-place I-GEP
// Floyd–Warshall on a dim-vertex graph.
func TraceFWInPlace(dim int, blockWords int64) (*trace.Trace, error) {
	b := &trace.Builder{}
	if err := EmitFWInPlace(dim, blockWords, b); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// EmitFWInPlace streams the in-place I-GEP trace into s.
func EmitFWInPlace(dim int, blockWords int64, s trace.Sink) error {
	if err := validateGEPTraceArgs(dim, blockWords); err != nil {
		return err
	}
	g := &gepTraceGen{s: s, blockWords: blockWords}
	g.inPlace(0, 0, 0, int64(dim))
	return nil
}

func (g *gepTraceGen) leafCase(xOff, uOff, vOff, d int64) {
	g.touch(uOff, d*d)
	g.touch(vOff, d*d)
	g.touch(xOff, d*d)
	g.s.EndLeaf()
}

// inPlace mirrors fwRec's 8-call schedule.
func (g *gepTraceGen) inPlace(xOff, uOff, vOff, d int64) {
	if d <= gepBaseDim {
		g.leafCase(xOff, uOff, vOff, d)
		return
	}
	for _, c := range gepSchedule(xOff, uOff, vOff, d) {
		g.inPlace(c.x, c.u, c.v, d/2)
	}
}

// gepSchedule returns the 8 octant calls of fwRec in order.
func gepSchedule(xOff, uOff, vOff, d int64) []struct{ x, u, v int64 } {
	o := func(off, qi, qj int64) int64 { return octant(off, d, qi, qj) }
	return []struct{ x, u, v int64 }{
		{o(xOff, 0, 0), o(uOff, 0, 0), o(vOff, 0, 0)},
		{o(xOff, 0, 1), o(uOff, 0, 0), o(vOff, 0, 1)},
		{o(xOff, 1, 0), o(uOff, 1, 0), o(vOff, 0, 0)},
		{o(xOff, 1, 1), o(uOff, 1, 0), o(vOff, 0, 1)},
		{o(xOff, 1, 1), o(uOff, 1, 1), o(vOff, 1, 1)},
		{o(xOff, 1, 0), o(uOff, 1, 1), o(vOff, 1, 0)},
		{o(xOff, 0, 1), o(uOff, 0, 1), o(vOff, 1, 1)},
		{o(xOff, 0, 0), o(uOff, 0, 1), o(vOff, 1, 0)},
	}
}

// TraceFWScan emits the block trace of the copying (not-in-place) GEP:
// before the recursive calls of each level, the U and V operands are
// copied into stack-allocated temporaries (read source, write temp — the
// Θ(d²/B) scan), and the recursion consumes the copies. This is the
// (8,4,1)-regular formulation.
func TraceFWScan(dim int, blockWords int64) (*trace.Trace, error) {
	b := &trace.Builder{}
	if err := EmitFWScan(dim, blockWords, b); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// EmitFWScan streams the copying-GEP trace into s.
func EmitFWScan(dim int, blockWords int64, s trace.Sink) error {
	if err := validateGEPTraceArgs(dim, blockWords); err != nil {
		return err
	}
	d := int64(dim)
	g := &gepTraceGen{s: s, blockWords: blockWords, allocTop: d * d}
	g.scan(0, 0, 0, d)
	return nil
}

func (g *gepTraceGen) scan(xOff, uOff, vOff, d int64) {
	if d <= gepBaseDim {
		g.leafCase(xOff, uOff, vOff, d)
		return
	}
	// Copy U and V into temporaries: the level's linear scan.
	uCopy := g.allocTop
	vCopy := uCopy + d*d
	g.allocTop = vCopy + d*d
	g.touch(uOff, d*d)
	g.touch(uCopy, d*d)
	g.touch(vOff, d*d)
	g.touch(vCopy, d*d)

	for _, c := range gepSchedule(xOff, uCopy, vCopy, d) {
		// X octants stay in the original matrix; U/V come from the copies.
		g.scan(c.x, c.u, c.v, d/2)
	}
	g.allocTop = uCopy
}

// WorstCaseProfile builds the Figure-1-style adversarial profile matched
// to TraceFWScan: recursively, one box the size of the level's copy scan
// (4·d²/B blocks: read U, write U', read V, write V') placed *before*
// eight copies of the profile for d/2 (the scan is upfront here), with the
// base case getting a box of the base kernel's footprint.
func WorstCaseProfile(dim int, blockWords int64) (*profile.SquareProfile, error) {
	if err := validateGEPTraceArgs(dim, blockWords); err != nil {
		return nil, err
	}
	var boxes []int64
	var build func(d int64)
	build = func(d int64) {
		if d <= gepBaseDim {
			boxes = append(boxes, 3*((d*d+blockWords-1)/blockWords))
			return
		}
		boxes = append(boxes, 4*d*d/blockWords)
		for i := 0; i < 8; i++ {
			build(d / 2)
		}
	}
	build(int64(dim))
	return profile.New(boxes)
}
