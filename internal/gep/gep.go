// Package gep implements the Gaussian Elimination Paradigm (Chowdhury &
// Ramachandran) instantiated for Floyd–Warshall all-pairs shortest paths —
// one of the algorithm families the paper places in the logarithmic gap
// ("Gaussian elimination [17]" with a > b, c = 1).
//
// Two numeric implementations are provided and tested against each other:
// the classic triple-loop Floyd–Warshall, and the cache-oblivious
// divide-and-conquer (I-GEP) recursion — eight half-size subproblems per
// level over the matrix octants. Traced variants mirror the MM-Scan /
// MM-InPlace pair: the in-place recursion is (8,4,0)-shaped in blocks,
// while the not-in-place variant — which materialises its U and V operands
// per call, adding a Θ(d²/B) copy scan — is (8,4,1)-shaped and suffers the
// paper's worst-case profile exactly as MM-Scan does.
package gep

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Graph is a dense distance matrix: Dist[i][j] is the edge weight from i
// to j, with math.Inf(1) for absent edges and 0 on the diagonal.
type Graph struct {
	n    int
	dist []float64
}

// NewGraph returns an n-vertex graph with no edges (infinite distances,
// zero diagonal).
func NewGraph(n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("gep: %d vertices", n)
	}
	g := &Graph{n: n, dist: make([]float64, n*n)}
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.dist[i*n+j] = inf
			}
		}
	}
	return g, nil
}

// NewRandomGraph returns an n-vertex graph where each ordered pair gets an
// edge with probability p and uniform weight in [1, 10).
func NewRandomGraph(n int, p float64, src *xrand.Source) (*Graph, error) {
	g, err := NewGraph(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && src.Float64() < p {
				g.dist[i*n+j] = 1 + 9*src.Float64()
			}
		}
	}
	return g, nil
}

// Dim returns the number of vertices.
func (g *Graph) Dim() int { return g.n }

// At returns the current distance estimate from i to j.
func (g *Graph) At(i, j int) float64 { return g.dist[i*g.n+j] }

// Set assigns the distance from i to j.
func (g *Graph) Set(i, j int, v float64) { g.dist[i*g.n+j] = v }

// Clone deep-copies the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, dist: make([]float64, len(g.dist))}
	copy(c.dist, g.dist)
	return c
}

// EqualApprox reports elementwise agreement within eps (Inf == Inf).
func (g *Graph) EqualApprox(o *Graph, eps float64) bool {
	if g.n != o.n {
		return false
	}
	for i := range g.dist {
		a, b := g.dist[i], o.dist[i]
		if math.IsInf(a, 1) && math.IsInf(b, 1) {
			continue
		}
		if math.Abs(a-b) > eps {
			return false
		}
	}
	return true
}

// FloydWarshall runs the classic O(n³) triple loop in place.
func FloydWarshall(g *Graph) {
	n := g.n
	d := g.dist
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i*n+k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if alt := dik + d[k*n+j]; alt < d[i*n+j] {
					d[i*n+j] = alt
				}
			}
		}
	}
}

// gview is a square window into a graph's distance matrix.
type gview struct {
	g    *Graph
	r, c int
	d    int
}

func (v gview) at(i, j int) float64 { return v.g.dist[(v.r+i)*v.g.n+(v.c+j)] }
func (v gview) min(i, j int, x float64) {
	if x < v.g.dist[(v.r+i)*v.g.n+(v.c+j)] {
		v.g.dist[(v.r+i)*v.g.n+(v.c+j)] = x
	}
}

func (v gview) quad(qi, qj int) gview {
	h := v.d / 2
	return gview{g: v.g, r: v.r + qi*h, c: v.c + qj*h, d: h}
}

// gepBaseDim is the recursion cutoff of the divide-and-conquer variant.
const gepBaseDim = 8

// FloydWarshallRec runs the cache-oblivious I-GEP recursion in place. The
// vertex count must be a power of two (pad with isolated vertices
// otherwise; they cannot shorten any path).
func FloydWarshallRec(g *Graph) error {
	if g.n&(g.n-1) != 0 {
		return fmt.Errorf("gep: recursive Floyd-Warshall needs power-of-two vertices, got %d", g.n)
	}
	all := gview{g: g, d: g.n}
	fwRec(all, all, all)
	return nil
}

// fwRec computes X[i][j] = min over the k-range shared by U's columns and
// V's rows of X[i][j], U[i][k] + V[k][j], with the Floyd–Warshall
// interleaving that makes the in-place recursion correct (the classical
// 8-call octant schedule: forward over the first half of k, then backward
// over the second).
func fwRec(x, u, v gview) {
	if x.d <= gepBaseDim {
		fwBase(x, u, v)
		return
	}
	x11, x12, x21, x22 := x.quad(0, 0), x.quad(0, 1), x.quad(1, 0), x.quad(1, 1)
	u11, u12, u21, u22 := u.quad(0, 0), u.quad(0, 1), u.quad(1, 0), u.quad(1, 1)
	v11, v12, v21, v22 := v.quad(0, 0), v.quad(0, 1), v.quad(1, 0), v.quad(1, 1)

	fwRec(x11, u11, v11)
	fwRec(x12, u11, v12)
	fwRec(x21, u21, v11)
	fwRec(x22, u21, v12)

	fwRec(x22, u22, v22)
	fwRec(x21, u22, v21)
	fwRec(x12, u12, v22)
	fwRec(x11, u12, v21)
}

// fwBase is the base-case kernel: the k-loop must be outermost for the
// in-place update to be correct.
func fwBase(x, u, v gview) {
	for k := 0; k < x.d; k++ {
		for i := 0; i < x.d; i++ {
			uik := u.at(i, k)
			if math.IsInf(uik, 1) {
				continue
			}
			for j := 0; j < x.d; j++ {
				x.min(i, j, uik+v.at(k, j))
			}
		}
	}
}
