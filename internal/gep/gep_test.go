package gep

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/paging"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(0); err == nil {
		t.Error("0 vertices accepted")
	}
	g, err := NewGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0, 0) != 0 || !math.IsInf(g.At(0, 1), 1) {
		t.Error("fresh graph wrong")
	}
}

func TestFloydWarshallKnown(t *testing.T) {
	// 0 -> 1 (1), 1 -> 2 (2), 0 -> 2 (10): shortest 0->2 is 3.
	g, _ := NewGraph(4)
	g.Set(0, 1, 1)
	g.Set(1, 2, 2)
	g.Set(0, 2, 10)
	FloydWarshall(g)
	if g.At(0, 2) != 3 {
		t.Errorf("dist(0,2) = %g, want 3", g.At(0, 2))
	}
	if !math.IsInf(g.At(2, 0), 1) {
		t.Error("unreachable pair became finite")
	}
}

func TestRecursiveMatchesClassic(t *testing.T) {
	src := xrand.New(33)
	for _, n := range []int{8, 16, 32, 64} {
		for trial := 0; trial < 4; trial++ {
			g, err := NewRandomGraph(n, 0.25, src)
			if err != nil {
				t.Fatal(err)
			}
			classic := g.Clone()
			FloydWarshall(classic)
			rec := g.Clone()
			if err := FloydWarshallRec(rec); err != nil {
				t.Fatal(err)
			}
			if !rec.EqualApprox(classic, 1e-9) {
				t.Fatalf("n=%d trial=%d: recursive FW differs from classic", n, trial)
			}
		}
	}
}

func TestRecursiveNeedsPowerOfTwo(t *testing.T) {
	g, _ := NewGraph(12)
	if err := FloydWarshallRec(g); err == nil {
		t.Error("n=12 accepted")
	}
}

// Property: FW results satisfy the triangle inequality and are idempotent.
func TestFWProperties(t *testing.T) {
	check := func(seed uint32, pRaw uint8) bool {
		src := xrand.New(uint64(seed))
		p := 0.1 + float64(pRaw%5)*0.15
		g, err := NewRandomGraph(16, p, src)
		if err != nil {
			return false
		}
		FloydWarshall(g)
		// Triangle inequality: d(i,j) <= d(i,k) + d(k,j).
		for i := 0; i < 16; i++ {
			for j := 0; j < 16; j++ {
				for k := 0; k < 16; k++ {
					if g.At(i, j) > g.At(i, k)+g.At(k, j)+1e-9 {
						return false
					}
				}
			}
		}
		// Idempotence.
		again := g.Clone()
		FloydWarshall(again)
		return again.EqualApprox(g, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := TraceFWScan(12, 8); err == nil {
		t.Error("non-power dim accepted")
	}
	if _, err := TraceFWInPlace(4, 8); err == nil {
		t.Error("tiny dim accepted")
	}
	if _, err := TraceFWScan(64, 0); err == nil {
		t.Error("block 0 accepted")
	}
}

func TestTraceShapes(t *testing.T) {
	const dim, bw = 64, 8
	inp, err := TraceFWInPlace(dim, bw)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := TraceFWScan(dim, bw)
	if err != nil {
		t.Fatal(err)
	}
	// Both perform 8^levels base cases.
	want := int64(512) // levels = log2(64/8) = 3 -> 8^3
	if inp.Leaves() != want || scan.Leaves() != want {
		t.Errorf("leaves: inplace %d, scan %d, want %d", inp.Leaves(), scan.Leaves(), want)
	}
	// The in-place variant touches exactly the matrix: dim²/B blocks.
	if got := inp.DistinctBlocks(); got != int64(dim*dim)/bw {
		t.Errorf("in-place distinct %d, want %d", got, int64(dim*dim)/bw)
	}
	// The copying variant touches strictly more (the temporaries).
	if scan.DistinctBlocks() <= inp.DistinctBlocks() {
		t.Error("scan variant should touch more blocks")
	}
	if scan.Len() <= inp.Len() {
		t.Error("scan variant trace should be longer")
	}
}

// The paper's MM-Scan/MM-InPlace contrast, replayed on GEP: on the
// adversarial profile matched to the copying variant, the in-place GEP
// completes more Floyd–Warshall instances.
func TestGEPScanVsInPlaceOnWorstCase(t *testing.T) {
	const dim, bw = 64, 8
	wc, err := WorstCaseProfile(dim, bw)
	if err != nil {
		t.Fatal(err)
	}
	boxes := wc.Boxes()
	count := func(build func(int, int64) (*trace.Trace, error)) int {
		tr, err := build(dim, bw)
		if err != nil {
			t.Fatal(err)
		}
		// Fresh instances: shift each repetition's blocks.
		stride := tr.MaxBlock() + 1
		b := &trace.Builder{}
		for r := int64(0); r < 10; r++ {
			for i := 0; i < tr.Len(); i++ {
				b.Access(tr.Block(i) + r*stride)
				if tr.EndsLeaf(i) {
					b.EndLeaf()
				}
			}
		}
		rep := b.Build()
		end, err := paging.SquareRunFrom(rep, 0, boxes)
		if err != nil {
			t.Fatal(err)
		}
		return end / tr.Len()
	}
	scanCount := count(TraceFWScan)
	inpCount := count(TraceFWInPlace)
	if inpCount <= scanCount {
		t.Errorf("in-place GEP completed %d vs copying GEP's %d; expected strictly more", inpCount, scanCount)
	}
}
