package regular

import (
	"testing"

	"repro/internal/xrand"
)

func TestSpreadScansUnitBoxCost(t *testing.T) {
	// Spreading the scan moves work around but performs every access: with
	// size-1 boxes the total box count must still be T(n).
	spec := MMScanSpec
	n := int64(256)
	e := mustExec(t, spec, n)
	if err := e.SetSpreadScans(true); err != nil {
		t.Fatal(err)
	}
	for !e.Done() {
		e.Step(1)
	}
	if got, want := float64(e.BoxesUsed()), spec.IOCost(n); got != want {
		t.Errorf("unit boxes with spread scans: %g, want %g", got, want)
	}
	if e.LeavesDone() != e.TotalLeaves() {
		t.Errorf("leaves %d of %d", e.LeavesDone(), e.TotalLeaves())
	}
}

func TestSpreadScansValidation(t *testing.T) {
	e := mustExec(t, MMScanSpec, 16)
	e.Step(1)
	if err := e.SetSpreadScans(true); err == nil {
		t.Error("SetSpreadScans accepted mid-run")
	}
	e2, err := NewExecWithPolicy(MMScanSpec, 16, func(node, size int64) int64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.SetSpreadScans(true); err == nil {
		t.Error("spread scans accepted alongside a policy")
	}
	e3 := mustExec(t, MMScanSpec, 16)
	if err := e3.SetSkipRootScan(true); err != nil {
		t.Fatal(err)
	}
	if err := e3.SetSpreadScans(true); err == nil {
		t.Error("spread scans accepted alongside skip-root-scan")
	}
}

func TestSpreadScansHugeBoxStillCompletes(t *testing.T) {
	e := mustExec(t, MMScanSpec, 256)
	if err := e.SetSpreadScans(true); err != nil {
		t.Fatal(err)
	}
	if p := e.Step(1 << 30); p != e.TotalLeaves() || !e.Done() {
		t.Errorf("huge box: progress %d done %v", p, e.Done())
	}
}

// Property: spread-scan executions complete with full progress on random
// box streams and never use more unit work than T(n) worth of boxes of any
// size mix... (weaker sanity: completion + progress accounting).
func TestSpreadScansRandomRuns(t *testing.T) {
	spec := MMScanSpec
	for _, n := range []int64{16, 64, 256, 1024} {
		rng := xrand.New(uint64(n))
		e := mustExec(t, spec, n)
		if err := e.SetSpreadScans(true); err != nil {
			t.Fatal(err)
		}
		var total int64
		for !e.Done() {
			total += e.Step(1 + rng.Int63n(2*n))
		}
		if total != e.TotalLeaves() {
			t.Errorf("n=%d: progress %d of %d", n, total, e.TotalLeaves())
		}
	}
}

// The upfront-scan policy: each problem's whole scan runs before its first
// child. With unit boxes the cost is unchanged; with a problem-sized box at
// the very start, the box lands in the root's upfront scan.
func TestUpfrontScanPolicy(t *testing.T) {
	spec := MMScanSpec
	n := int64(64)
	upfront := func(node, size int64) int64 { return 0 }
	e, err := NewExecWithPolicy(spec, n, upfront)
	if err != nil {
		t.Fatal(err)
	}
	for !e.Done() {
		e.Step(1)
	}
	if got, want := float64(e.BoxesUsed()), spec.IOCost(n); got != want {
		t.Errorf("unit boxes with upfront scans: %g, want %g", got, want)
	}

	// Strict scans + a box smaller than the root landing in the root's
	// upfront scan: advances the scan only.
	e2, err := NewExecWithPolicy(spec, n, upfront)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.SetStrictScans(true); err != nil {
		t.Fatal(err)
	}
	if p := e2.Step(16); p != 0 {
		t.Errorf("box in upfront root scan made progress %d", p)
	}
	// 16 of 64 scan accesses done; three more such boxes finish the scan,
	// leaving execution at the first child.
	e2.Step(16)
	e2.Step(16)
	e2.Step(16)
	if p := e2.Step(16); p != 64 { // the size-16 first child has 8^2 = 64 leaves
		t.Errorf("first post-scan box progress %d, want 64", p)
	}
}

// The paper notes that bad profiles put their boxes at the end "because
// all (a,b,1)-regular algorithms with upfront scans can be converted to an
// equivalent algorithm where the scans are at the end". The naive
// upfront adversary — box(m) before each recursive group — illustrates
// why the conversion matters: the box lands at the first child's start,
// where completing the child is budget-valid, so each level loses exactly
// one child's worth of waste. The measured gap follows the exact law
// (k+1) - (k-1)/a: smaller than the end-scan adversary's k+1, but still
// Θ(log n).
func TestUpfrontScanWorstCase(t *testing.T) {
	spec := MMScanSpec
	upfront := func(node, size int64) int64 { return 0 }
	for k := 2; k <= 5; k++ {
		n := int64(1)
		for i := 0; i < k; i++ {
			n *= 4
		}
		// Tailored profile: recursively, box(m) BEFORE the a child
		// profiles (mirroring scan-at-slot-0).
		var boxes []int64
		var build func(m int64)
		build = func(m int64) {
			if m == 1 {
				boxes = append(boxes, 1)
				return
			}
			boxes = append(boxes, m)
			for i := int64(0); i < spec.A; i++ {
				build(m / 4)
			}
		}
		build(n)

		e, err := NewExecWithPolicy(spec, n, upfront)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetStrictScans(true); err != nil {
			t.Fatal(err)
		}
		var pot float64
		i := 0
		for !e.Done() {
			box := boxes[i%len(boxes)]
			i++
			pot += spec.BoundedPotential(box, n)
			e.Step(box)
		}
		gap := pot / spec.Potential(n)
		want := float64(k+1) - float64(k-1)/float64(spec.A)
		if gap < want-0.01 || gap > want+0.01 {
			t.Errorf("k=%d: upfront-scan adversary gap %g, want (k+1)-(k-1)/a = %g", k, gap, want)
		}
	}
}

// Property: every (policy-mode, strictness) combination completes with full
// progress on random box streams.
func TestPolicyCombinationsComplete(t *testing.T) {
	spec := MMScanSpec
	n := int64(256)
	policies := []ScanPolicy{
		nil,
		func(node, size int64) int64 { return 0 },
		func(node, size int64) int64 { return (node % (spec.A + 1)) },
	}
	for pi, pol := range policies {
		for _, strict := range []bool{false, true} {
			e, err := NewExecWithPolicy(spec, n, pol)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.SetStrictScans(strict); err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(uint64(pi)*2 + 1)
			var total int64
			for !e.Done() {
				total += e.Step(1 + rng.Int63n(2*n))
			}
			if total != e.TotalLeaves() {
				t.Errorf("policy %d strict=%v: progress %d of %d", pi, strict, total, e.TotalLeaves())
			}
		}
	}
}
