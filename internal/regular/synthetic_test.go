package regular

import (
	"testing"

	"repro/internal/paging"
	"repro/internal/profile"
	"repro/internal/xrand"
)

func TestSyntheticTraceShape(t *testing.T) {
	for _, tc := range []struct {
		spec Spec
		n    int64
	}{
		{MMScanSpec, 64}, {MMInPlaceSpec, 64}, {LCSSpec, 32}, {MustSpec(3, 2, 1), 64},
	} {
		tr, err := SyntheticTrace(tc.spec, tc.n)
		if err != nil {
			t.Fatalf("%v: %v", tc.spec, err)
		}
		if got, want := float64(tr.Len()), tc.spec.IOCost(tc.n); got != want {
			t.Errorf("%v n=%d: trace len %g, want T(n)=%g", tc.spec, tc.n, got, want)
		}
		if got, want := float64(tr.Leaves()), tc.spec.LeafCount(tc.n); got != want {
			t.Errorf("%v n=%d: leaves %g, want %g", tc.spec, tc.n, got, want)
		}
		// Definition 2: a problem of size n accesses exactly Θ(n) distinct
		// blocks; the canonical generator achieves exactly n.
		if got := tr.DistinctBlocks(); got != tc.n {
			t.Errorf("%v n=%d: distinct blocks %d, want %d", tc.spec, tc.n, got, tc.n)
		}
	}
}

func TestSyntheticTraceValidation(t *testing.T) {
	if _, err := SyntheticTrace(MMScanSpec, 48); err == nil {
		t.Error("non-power size accepted")
	}
	if _, err := SyntheticTrace(MMScanSpec, profile.Pow(4, 15)); err == nil {
		t.Error("huge trace accepted")
	}
}

// The canonical worst-case profile must behave identically in the symbolic
// model and in the trace/paging model: every size-1 box completes exactly
// one leaf, every larger box serves exactly one scan and completes nothing,
// and the profile is consumed exactly.
func TestWorstCaseProfileTraceAgreement(t *testing.T) {
	for _, tc := range []struct {
		spec Spec
		n    int64
	}{
		{MMScanSpec, 64}, {MustSpec(2, 2, 1), 64}, {MustSpec(4, 2, 1), 32},
	} {
		tr, err := SyntheticTrace(tc.spec, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		wc, err := profile.WorstCase(tc.spec.A, tc.spec.B, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		src, err := profile.NewSliceSource(wc)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := paging.SquareRun(tr, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(stats) != wc.Len() {
			t.Fatalf("%v n=%d: used %d boxes, profile has %d", tc.spec, tc.n, len(stats), wc.Len())
		}
		for i, s := range stats {
			if s.Size == 1 && s.Leaves != 1 {
				t.Fatalf("%v: leaf box %d completed %d leaves", tc.spec, i, s.Leaves)
			}
			if s.Size > 1 && s.Leaves != 0 {
				t.Fatalf("%v: scan box %d (size %d) completed %d leaves", tc.spec, i, s.Size, s.Leaves)
			}
			if s.IOs != s.Size {
				t.Fatalf("%v: box %d used %d of %d I/Os (worst-case profile must be exact)", tc.spec, i, s.IOs, s.Size)
			}
		}
		if paging.TotalLeaves(stats) != tr.Leaves() {
			t.Fatalf("%v: leaves %d of %d", tc.spec, paging.TotalLeaves(stats), tr.Leaves())
		}
	}
}

// A single box of size n must complete the whole problem in both models.
func TestSingleBoxTraceAgreement(t *testing.T) {
	spec := MMScanSpec
	n := int64(64)
	tr, err := SyntheticTrace(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := profile.NewSliceSource(profile.MustNew([]int64{n}))
	stats, err := paging.SquareRun(tr, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Leaves != tr.Leaves() {
		t.Fatalf("stats = %+v, want single box with all %d leaves", stats, tr.Leaves())
	}
}

// Cross-validation under constant box sizes: the number of boxes the trace
// model needs is within a small constant factor of the symbolic model's
// (the paper's simplified caching model is w.l.o.g. up to constants).
func TestConstantBoxCrossValidation(t *testing.T) {
	spec := MMScanSpec
	n := int64(256)
	tr, err := SyntheticTrace(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, boxSize := range []int64{1, 4, 16, 64, 256} {
		// Symbolic.
		e, err := NewExec(spec, n)
		if err != nil {
			t.Fatal(err)
		}
		for !e.Done() {
			e.Step(boxSize)
		}
		symBoxes := e.BoxesUsed()

		// Trace-based.
		src, _ := profile.NewSliceSource(profile.MustNew([]int64{boxSize}))
		stats, err := paging.SquareRun(tr, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		traceBoxes := int64(len(stats))

		lo, hi := symBoxes/4, symBoxes*4
		if traceBoxes < lo || traceBoxes > hi {
			t.Errorf("box size %d: trace model used %d boxes, symbolic %d (outside 4x band)",
				boxSize, traceBoxes, symBoxes)
		}
	}
}

// Cross-validation under i.i.d. random box sizes: symbolic and trace
// backends must agree on boxes-to-complete within the model's constant
// slack.
func TestIIDBoxCrossValidation(t *testing.T) {
	spec := MMScanSpec
	n := int64(256)
	tr, err := SyntheticTrace(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 2, 3} {
		// Symbolic.
		rng1 := xrand.New(seed)
		e, err := NewExec(spec, n)
		if err != nil {
			t.Fatal(err)
		}
		for !e.Done() {
			e.Step(4 + rng1.Int63n(61))
		}
		symBoxes := e.BoxesUsed()

		// Trace-based, same box stream.
		rng2 := xrand.New(seed)
		src := profile.FuncSource(func() int64 { return 4 + rng2.Int63n(61) })
		stats, err := paging.SquareRun(tr, src, 0)
		if err != nil {
			t.Fatal(err)
		}
		traceBoxes := int64(len(stats))
		if traceBoxes < symBoxes/4 || traceBoxes > symBoxes*4 {
			t.Errorf("seed %d: trace %d boxes vs symbolic %d (outside 4x band)", seed, traceBoxes, symBoxes)
		}
	}
}
