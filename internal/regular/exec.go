package regular

import (
	"fmt"
	"math"
)

// ScanPolicy decides where a problem's linear scan is performed within its
// recursion: the scan of the problem identified by node (see NodeChild for
// the numbering) and size runs after the returned number of children, a
// value in [0, a] — 0 places the scan up front, a at the end (the canonical
// placement). Definition 2 allows all of these: "parts of the scan may be
// performed before, between, and after recursive calls". For scans split
// into several pieces, see SetSpreadScans.
//
// The policy must be a pure function of (node, size): the executor
// consults it several times per problem (once per segment boundary), so a
// stateful policy would see an unspecified call sequence.
//
// A nil policy means canonical end-of-problem scans.
type ScanPolicy func(node, size int64) int64

// NodeRoot is the node ID of the root problem.
const NodeRoot int64 = 1

// NodeChild returns the node ID of the i-th child (1-based, i in [1, a]) of
// node under the a-ary heap numbering used by the executor and by aligned
// profile constructions.
func NodeChild(node, a, i int64) int64 {
	return a*(node-1) + i + 1
}

// frame is one level of the execution stack. The stack's frames, root
// outwards, are the chain of in-progress problems: frame i+1 is the child
// of frame i currently executing, and childrenDone counts frame i's
// children fully completed before it.
//
// A frame's scan is divided into segments by the executor's layout (one
// contiguous segment at a policy-chosen slot by default; a piece after
// every child with spread scans). The innermost (top) frame encodes the
// current position:
//   - segRemaining > 0: execution is inside the scan segment at slot
//     childrenDone;
//   - otherwise childrenDone < A: execution sits at the *start* of the
//     frame's next child — and therefore also at the start of the chain of
//     descendants whose execution begins without an intervening scan
//     segment.
type frame struct {
	node         int64
	size         int64
	childrenDone int64
	segRemaining int64 // accesses left in the current scan segment
	scanLeft     int64 // scan accesses not yet performed across all segments
}

// Exec symbolically executes the canonical (a,b,c)-regular algorithm on a
// problem of n blocks against a stream of boxes, under the simplified
// caching model described in the package comment. It never materialises the
// recursion tree: state is a stack of at most log_b n + 1 frames.
//
// Exec is not safe for concurrent use.
type Exec struct {
	spec   Spec
	n      int64
	policy ScanPolicy
	// spreadScans splits every problem's scan into a equal pieces, one
	// performed after each child (remainder after the last) — the first
	// step of the scan-hiding transformation of Lincoln et al. [40], used
	// by ablation A6. Mutually exclusive with a non-nil policy.
	spreadScans bool
	// skipRootScan stops execution when the root's last child completes,
	// before the root scan. This measures the paper's f'(n) — the expected
	// number of boxes to complete a problem excluding its final scan. It is
	// only meaningful with canonical scan placement and is rejected
	// otherwise.
	skipRootScan bool
	// strictScans changes the in-scan rule: a box that reaches the end of a
	// scan segment stops there instead of completing the enclosing problem
	// of its own size. The default (lax) rule is the paper's Section-4
	// model and is budget-exact for canonical end-of-problem scans, where
	// "the rest of the problem" after the scan is nothing, and ancestor
	// completion is covered by the ancestor's working set. With mid-problem
	// scan placements, lax over-credits boxes whose scan's blocks are
	// disjoint from the blocks of the children that follow (MM-Scan's merge
	// scan writes output quadrants the later products do not reuse);
	// strictScans models those algorithms and is what the
	// box-order-perturbation worst-case witness requires.
	strictScans bool

	stack      []frame
	done       bool
	leavesDone int64 // total base cases completed
	boxesUsed  int64 // boxes consumed (Step calls while running)
}

// NewExec validates the problem size and returns a fresh executor with
// canonical (end-of-problem) scan placement, positioned at the start of the
// root problem.
func NewExec(spec Spec, n int64) (*Exec, error) {
	return NewExecWithPolicy(spec, n, nil)
}

// NewExecWithPolicy is NewExec with an explicit scan-placement policy.
func NewExecWithPolicy(spec Spec, n int64, policy ScanPolicy) (*Exec, error) {
	if _, err := NewSpec(spec.A, spec.B, spec.C); err != nil {
		return nil, err
	}
	if !spec.ValidSize(n) {
		return nil, fmt.Errorf("regular: problem size %d is not a power of b = %d", n, spec.B)
	}
	// Guard leaf-count overflow: a^k must fit comfortably in int64 (node
	// IDs are bounded by roughly the leaf count as well).
	if k := spec.Levels(n); float64(k)*math.Log(float64(spec.A)) > 62*math.Log(2) {
		return nil, fmt.Errorf("regular: problem size %d has too many leaves for int64 accounting", n)
	}
	e := &Exec{spec: spec, n: n, policy: policy}
	e.Reset()
	return e, nil
}

// segmentAt returns the length of the scan segment of a size-`size` problem
// at slot (= number of children completed so far). Slots run 0..a; the
// canonical layout puts the whole scan at the policy slot (default a), the
// spread layout 1/a of it after each child with the remainder after the
// last.
func (e *Exec) segmentAt(node, size, slot int64) int64 {
	if e.skipRootScan && node == NodeRoot {
		return 0 // the f' measurement: the root performs no scan
	}
	total := e.spec.ScanLen(size)
	if total == 0 {
		return 0
	}
	if e.spreadScans {
		if slot == 0 {
			return 0
		}
		part := total / e.spec.A
		if slot == e.spec.A {
			return part + total%e.spec.A
		}
		return part
	}
	at := e.spec.A
	if e.policy != nil {
		at = e.policy(node, size)
		if at < 0 || at > e.spec.A {
			panic(fmt.Sprintf("regular: scan policy returned %d outside [0,%d] for node %d", at, e.spec.A, node))
		}
	}
	if slot == at {
		return total
	}
	return 0
}

// newFrame initialises a frame at the start of its problem, entering the
// slot-0 scan segment if the layout has one.
func (e *Exec) newFrame(node, size int64) frame {
	f := frame{node: node, size: size, scanLeft: e.spec.ScanLen(size)}
	f.segRemaining = e.segmentAt(node, size, 0)
	return f
}

// Reset returns the executor to the start of the root problem.
func (e *Exec) Reset() {
	e.stack = e.stack[:0]
	e.done = false
	e.leavesDone = 0
	e.boxesUsed = 0
	if e.n == 1 {
		// Degenerate root: a single base case.
		e.stack = append(e.stack, frame{node: NodeRoot, size: 1})
		return
	}
	root := e.newFrame(NodeRoot, e.n)
	if e.skipRootScan {
		root.scanLeft = 0
		root.segRemaining = 0
	}
	e.stack = append(e.stack, root)
	e.normalise()
}

// SetSkipRootScan configures the executor to finish when the root's final
// subproblem completes, omitting the root scan (the f' measurement). Must
// be called before the first Step, and requires canonical scan placement.
func (e *Exec) SetSkipRootScan(skip bool) error {
	if e.boxesUsed != 0 {
		return fmt.Errorf("regular: SetSkipRootScan after execution started")
	}
	if skip && (e.policy != nil || e.spreadScans) {
		return fmt.Errorf("regular: skip-root-scan requires canonical scan placement")
	}
	e.skipRootScan = skip
	e.Reset()
	return nil
}

// SetStrictScans switches the in-scan rule (see the strictScans field for
// the model it captures). Must be called before the first Step.
func (e *Exec) SetStrictScans(strict bool) error {
	if e.boxesUsed != 0 {
		return fmt.Errorf("regular: SetStrictScans after execution started")
	}
	e.strictScans = strict
	return nil
}

// SetSpreadScans switches every problem's scan to the per-child spread
// layout (see the spreadScans field). Must be called before the first Step
// and is mutually exclusive with a scan policy.
func (e *Exec) SetSpreadScans(spread bool) error {
	if e.boxesUsed != 0 {
		return fmt.Errorf("regular: SetSpreadScans after execution started")
	}
	if spread && e.policy != nil {
		return fmt.Errorf("regular: spread scans are mutually exclusive with a scan policy")
	}
	if spread && e.skipRootScan {
		return fmt.Errorf("regular: spread scans are incompatible with skip-root-scan")
	}
	e.spreadScans = spread
	e.Reset()
	return nil
}

// Spec returns the (a,b,c) specification the executor runs.
func (e *Exec) Spec() Spec { return e.spec }

// N returns the problem size in blocks.
func (e *Exec) N() int64 { return e.n }

// Done reports whether the root problem has completed.
func (e *Exec) Done() bool { return e.done }

// LeavesDone returns the number of base cases completed so far.
func (e *Exec) LeavesDone() int64 { return e.leavesDone }

// BoxesUsed returns the number of boxes consumed so far.
func (e *Exec) BoxesUsed() int64 { return e.boxesUsed }

// TotalLeaves returns the number of base cases in the whole problem.
func (e *Exec) TotalLeaves() int64 { return e.spec.leafCountInt(e.spec.Levels(e.n)) }

// Step feeds one box of the given size to the execution and returns the
// progress the box makes (base cases completed at least partly within it).
// Steps after completion consume nothing and return 0.
func (e *Exec) Step(box int64) int64 {
	if e.done {
		return 0
	}
	if box < 1 {
		// A degenerate box serves nothing; profiles are validated
		// elsewhere, so this is belt-and-braces.
		return 0
	}
	e.boxesUsed++

	// Degenerate single-leaf problem.
	if e.n == 1 {
		e.leavesDone = 1
		e.done = true
		return 1
	}

	target := e.spec.FloorPow(box)
	if target > e.n {
		target = e.n
	}

	for {
		top := &e.stack[len(e.stack)-1]
		if top.segRemaining > 0 {
			m := top.size
			if !e.strictScans && target >= m {
				// The scan's position lies inside the ancestor problems of
				// sizes m, m·b, ..., n; the box completes the one of size
				// target.
				return e.completeWithProgress(e.frameIndexOfSize(target))
			}
			// The box begins in a scan segment of a problem larger than
			// itself: it advances min(box, remaining segment) accesses and
			// completes no base cases.
			adv := box
			if adv > top.segRemaining {
				adv = top.segRemaining
			}
			top.segRemaining -= adv
			top.scanLeft -= adv
			if top.segRemaining == 0 {
				e.normalise()
			}
			return 0
		}

		// At the start of the next child of the top frame.
		childSize := top.size / e.spec.B
		switch {
		case target > childSize:
			// The position lies strictly inside the ancestor problems of
			// sizes top.size, ..., n. Complete the ancestor of size target.
			return e.completeWithProgress(e.frameIndexOfSize(target))
		case target == childSize:
			// The box completes the child as a unit.
			progress := e.spec.leafCountInt(e.spec.Levels(childSize))
			e.leavesDone += progress
			top.childrenDone++
			top.segRemaining = e.segmentAt(top.node, top.size, top.childrenDone)
			e.normalise()
			return progress
		default:
			// target < childSize (hence childSize > 1): descend into the
			// child and re-examine. The child's execution may begin with
			// its own scan segment (upfront placement) or with its first
			// grandchild; the loop handles both.
			childIdx := top.childrenDone + 1 // 1-based
			node := NodeChild(top.node, e.spec.A, childIdx)
			e.stack = append(e.stack, e.newFrame(node, childSize))
		}
	}
}

// completeWithProgress completes the subtree rooted at stack index idx
// (including any remaining scan segments inside it) and returns the base
// cases that completion finishes.
func (e *Exec) completeWithProgress(idx int) int64 {
	progress := e.remainingLeaves(idx)
	e.leavesDone += progress
	if idx == 0 {
		e.done = true
		e.stack = e.stack[:1]
		return progress
	}
	e.stack = e.stack[:idx]
	top := &e.stack[idx-1]
	top.childrenDone++
	top.segRemaining = e.segmentAt(top.node, top.size, top.childrenDone)
	e.normalise()
	return progress
}

// frameIndexOfSize returns the index of the stack frame with the given
// size. Sizes on the stack are n, n/b, ..., top.size, so for any target
// power of b in [top.size, n] the frame exists.
func (e *Exec) frameIndexOfSize(size int64) int {
	depth := e.spec.Levels(e.n) - e.spec.Levels(size)
	if depth < 0 || depth >= len(e.stack) {
		panic(fmt.Sprintf("regular: no frame of size %d on stack (depth %d, stack %d)",
			size, depth, len(e.stack)))
	}
	return depth
}

// remainingLeaves counts the base cases not yet completed in the subtree
// rooted at stack index idx.
func (e *Exec) remainingLeaves(idx int) int64 {
	var rem int64
	for i := idx; i < len(e.stack); i++ {
		f := e.stack[i]
		pending := e.spec.A - f.childrenDone
		if i < len(e.stack)-1 {
			pending-- // the active child is accounted for by deeper frames
		}
		rem += pending * e.spec.leafCountInt(e.spec.Levels(f.size)-1)
	}
	return rem
}

// normalise restores the position invariant after progress: it completes
// frames whose children and scan are all done (propagating to parents) and
// stops at a frame that is either inside a scan segment or has a next
// child to start.
func (e *Exec) normalise() {
	for {
		top := &e.stack[len(e.stack)-1]
		if top.segRemaining > 0 {
			return // position: inside a scan segment
		}
		if top.childrenDone < e.spec.A {
			return // position: start of next child
		}
		if top.scanLeft > 0 {
			// All children done but scan accesses remain with no segment
			// open: only possible if the layout is inconsistent.
			panic(fmt.Sprintf("regular: frame %d finished children with %d scan accesses unplaced", top.node, top.scanLeft))
		}
		// Frame complete.
		if len(e.stack) == 1 {
			e.done = true
			return
		}
		e.stack = e.stack[:len(e.stack)-1]
		parent := &e.stack[len(e.stack)-1]
		parent.childrenDone++
		parent.segRemaining = e.segmentAt(parent.node, parent.size, parent.childrenDone)
	}
}

// Run consumes boxes from next until completion (or until maxBoxes boxes
// have been consumed, to bound adversarial stalls; 0 means no bound),
// invoking visit — if non-nil — with each box size and the progress it made.
// Using a visitor keeps multi-million-box runs allocation-free.
func (e *Exec) Run(next func() int64, maxBoxes int64, visit func(box, progress int64)) error {
	for !e.done {
		if maxBoxes > 0 && e.boxesUsed >= maxBoxes {
			return fmt.Errorf("regular: execution exceeded %d boxes", maxBoxes)
		}
		b := next()
		if b < 1 {
			return fmt.Errorf("regular: box source produced size %d", b)
		}
		p := e.Step(b)
		if visit != nil {
			visit(b, p)
		}
	}
	return nil
}

// RunCollect is Run with the per-box sizes and progress gathered into
// slices, for tests and small experiments.
func (e *Exec) RunCollect(next func() int64, maxBoxes int64) (boxes, progress []int64, err error) {
	err = e.Run(next, maxBoxes, func(b, p int64) {
		boxes = append(boxes, b)
		progress = append(progress, p)
	})
	return boxes, progress, err
}
