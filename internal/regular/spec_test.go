package regular

import (
	"math"
	"testing"
)

func TestNewSpecValidation(t *testing.T) {
	cases := []struct {
		a, b int64
		c    float64
		ok   bool
	}{
		{8, 4, 1, true},
		{8, 4, 0, true},
		{2, 4, 1, true},
		{1, 2, 0.5, true},
		{8, 1, 1, false},  // b too small
		{0, 4, 1, false},  // a too small
		{8, 4, -1, false}, // c below range
		{8, 4, 2, false},  // c above range (paper: no known c > 1 algorithms)
	}
	for _, tc := range cases {
		_, err := NewSpec(tc.a, tc.b, tc.c)
		if (err == nil) != tc.ok {
			t.Errorf("NewSpec(%d,%d,%g): err = %v, want ok=%v", tc.a, tc.b, tc.c, err, tc.ok)
		}
	}
}

func TestExponent(t *testing.T) {
	if got := MMScanSpec.Exponent(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("(8,4,1) exponent = %g, want 1.5", got)
	}
	if got := LCSSpec.Exponent(); math.Abs(got-2) > 1e-12 {
		t.Errorf("(4,2,1) exponent = %g, want 2", got)
	}
	if got := StrassenSpec.Exponent(); math.Abs(got-math.Log(7)/math.Log(4)) > 1e-12 {
		t.Errorf("(7,4,1) exponent = %g", got)
	}
}

func TestAdaptiveRule(t *testing.T) {
	// Theorem 2: adaptive iff c < 1 or a < b.
	cases := []struct {
		s    Spec
		want bool
	}{
		{MMScanSpec, false},          // (8,4,1): the gap
		{MMInPlaceSpec, true},        // (8,4,0): c < 1
		{StrassenSpec, false},        // (7,4,1): the gap
		{LCSSpec, false},             // (4,2,1): the gap
		{MustSpec(2, 4, 1), true},    // a < b
		{MustSpec(4, 4, 1), false},   // a = b boundary (merge-sort-like)
		{MustSpec(8, 4, 0.9), true},  // c < 1
		{MustSpec(16, 4, 0.5), true}, // c < 1 even with huge a
	}
	for _, tc := range cases {
		if got := tc.s.Adaptive(); got != tc.want {
			t.Errorf("%v Adaptive = %v, want %v", tc.s, got, tc.want)
		}
	}
}

func TestValidSizeLevels(t *testing.T) {
	s := MMScanSpec
	if !s.ValidSize(1) || !s.ValidSize(4) || !s.ValidSize(1024) {
		t.Error("powers of 4 rejected")
	}
	if s.ValidSize(0) || s.ValidSize(48) || s.ValidSize(-4) {
		t.Error("non-powers accepted")
	}
	if s.Levels(1) != 0 || s.Levels(64) != 3 {
		t.Error("Levels wrong")
	}
}

func TestLeafCount(t *testing.T) {
	s := MMScanSpec
	// 8^3 leaves for n = 4^3.
	if got := s.LeafCount(64); got != 512 {
		t.Errorf("LeafCount(64) = %g, want 512", got)
	}
	if got := s.leafCountInt(3); got != 512 {
		t.Errorf("leafCountInt(3) = %d, want 512", got)
	}
}

func TestScanLen(t *testing.T) {
	if got := MMScanSpec.ScanLen(64); got != 64 {
		t.Errorf("c=1 scan = %d, want 64", got)
	}
	if got := MMInPlaceSpec.ScanLen(64); got != 1 {
		t.Errorf("c=0 scan = %d, want 1", got)
	}
	if got := MMScanSpec.ScanLen(1); got != 0 {
		t.Errorf("base case scan = %d, want 0", got)
	}
	half := MustSpec(8, 4, 0.5)
	if got := half.ScanLen(64); got != 8 {
		t.Errorf("c=0.5 scan of 64 = %d, want 8", got)
	}
}

func TestIOCost(t *testing.T) {
	// T(1)=1; T(4) = 8·1 + 4 = 12; T(16) = 8·12 + 16 = 112.
	s := MMScanSpec
	if got := s.IOCost(1); got != 1 {
		t.Errorf("T(1) = %g", got)
	}
	if got := s.IOCost(4); got != 12 {
		t.Errorf("T(4) = %g, want 12", got)
	}
	if got := s.IOCost(16); got != 112 {
		t.Errorf("T(16) = %g, want 112", got)
	}
}

func TestFloorPow(t *testing.T) {
	s := MMScanSpec // b = 4
	cases := []struct{ x, want int64 }{
		{1, 1}, {2, 1}, {3, 1}, {4, 4}, {5, 4}, {15, 4}, {16, 16}, {100, 64},
		{0, 1}, {-7, 1},
	}
	for _, tc := range cases {
		if got := s.FloorPow(tc.x); got != tc.want {
			t.Errorf("FloorPow(%d) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestPotential(t *testing.T) {
	s := MMScanSpec
	if got := s.Potential(16); math.Abs(got-64) > 1e-9 {
		t.Errorf("ρ(16) = %g, want 64", got)
	}
	if got := s.BoundedPotential(256, 16); math.Abs(got-64) > 1e-9 {
		t.Errorf("bounded ρ(256; n=16) = %g, want 64", got)
	}
	if got := s.BoundedPotential(4, 16); math.Abs(got-8) > 1e-9 {
		t.Errorf("bounded ρ(4; n=16) = %g, want 8", got)
	}
}
