package regular_test

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/regular"
)

// A box the size of the whole problem completes it in one step; unit boxes
// pay the full serial I/O cost T(n) = a·T(n/b) + n^c.
func ExampleExec_Step() {
	spec := regular.MMScanSpec // (8,4,1)
	e, err := regular.NewExec(spec, 64)
	if err != nil {
		panic(err)
	}
	progress := e.Step(64)
	fmt.Println("one big box:", progress, "of", e.TotalLeaves(), "base cases")

	e.Reset()
	for !e.Done() {
		e.Step(1)
	}
	fmt.Println("unit boxes:", e.BoxesUsed(), "=", spec.IOCost(64))
	// Output:
	// one big box: 512 of 512 base cases
	// unit boxes: 960 = 960
}

// On the worst-case profile every box makes its minimum possible progress:
// leaf boxes complete one base case, scan boxes complete none.
func ExampleExec_Run() {
	spec := regular.MMScanSpec
	n := int64(16)
	wc, err := profile.WorstCase(8, 4, n)
	if err != nil {
		panic(err)
	}
	src, err := profile.NewSliceSource(wc)
	if err != nil {
		panic(err)
	}
	e, err := regular.NewExec(spec, n)
	if err != nil {
		panic(err)
	}
	var wasted int
	err = e.Run(src.Next, 0, func(box, progress int64) {
		if progress == 0 {
			wasted++
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d of %d boxes made no progress\n", wasted, e.BoxesUsed())
	// Output: 9 of 73 boxes made no progress
}

// Theorem 2's rule: adaptive iff c < 1 or a < b.
func ExampleSpec_Adaptive() {
	fmt.Println(regular.MMScanSpec, regular.MMScanSpec.Adaptive())
	fmt.Println(regular.MMInPlaceSpec, regular.MMInPlaceSpec.Adaptive())
	// Output:
	// (8,4,1)-regular false
	// (8,4,0)-regular true
}
