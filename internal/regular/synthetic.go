package regular

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/xrand"
)

// SyntheticTrace generates an explicit block-reference trace for the
// canonical (a,b,c)-regular algorithm on a problem of n blocks.
//
// Addressing scheme: the problem of size m occupies the block range
// [off, off+m). Its a children each have size m/b; child i occupies the
// slot range [off + (i mod b)·(m/b), ·+m/b) — with a > b, children reuse
// slots, modelling the data reuse that makes a > b algorithms cache-size
// sensitive (e.g. MM-Scan's eight quadrant products over four quadrants).
// The final scan touches the first ScanLen(m) blocks of the problem's
// range (all m blocks when c = 1). Base cases access their single block
// and mark a leaf completion.
//
// The trace therefore references exactly m distinct blocks for a problem of
// size m (the Θ(n) distinct-blocks property of Definition 2), and its
// length equals Spec.IOCost(n).
func SyntheticTrace(spec Spec, n int64) (*trace.Trace, error) {
	if err := validateSynthetic(spec, n); err != nil {
		return nil, err
	}
	if cost := spec.IOCost(n); cost > 1<<28 {
		return nil, fmt.Errorf("regular: synthetic trace for n = %d would have %.3g references; too large", n, cost)
	}
	b := &trace.Builder{}
	emitSynthetic(b, spec, n, 0)
	return b.Build(), nil
}

// EmitSynthetic streams the canonical trace into s without materializing
// it. Unlike SyntheticTrace it has no reference-count ceiling: the
// consumer's memory is bounded by its own state (O(n) for the paging
// sinks), not by the trace length, so problem sizes whose materialized
// trace would not fit in memory stream fine. If s implements trace.Stopper
// the emission is abandoned at subproblem granularity once s stops
// consuming — the prefix emitted before the stop is unchanged, so a
// stopper-aware sink sees exactly the same stream as a plain one.
func EmitSynthetic(spec Spec, n int64, s trace.Sink) error {
	if err := validateSynthetic(spec, n); err != nil {
		return err
	}
	emitSynthetic(s, spec, n, 0)
	return nil
}

func validateSynthetic(spec Spec, n int64) error {
	if _, err := NewSpec(spec.A, spec.B, spec.C); err != nil {
		return err
	}
	if !spec.ValidSize(n) {
		return fmt.Errorf("regular: problem size %d is not a power of b = %d", n, spec.B)
	}
	return nil
}

func emitSynthetic(s trace.Sink, spec Spec, m, off int64) {
	st, _ := s.(trace.Stopper)
	emitSyntheticRec(s, st, spec, m, off)
}

func emitSyntheticRec(s trace.Sink, st trace.Stopper, spec Spec, m, off int64) {
	if st != nil && st.Stopped() {
		return
	}
	if m == 1 {
		s.Access(off)
		s.EndLeaf()
		return
	}
	child := m / spec.B
	for i := int64(0); i < spec.A; i++ {
		slot := i % spec.B
		emitSyntheticRec(s, st, spec, child, off+slot*child)
	}
	s.AccessRange(off, spec.ScanLen(m))
}

// SyntheticTraceShuffled is SyntheticTrace with the a subproblems of every
// node executed in an independent uniformly random order — the natural
// first candidate for the paper's open question about randomised
// algorithms defeating worst-case profiles. Each child keeps its data slot
// (slot = original index mod b), so only the execution order is
// randomised, exactly as a randomised divide-and-conquer would behave.
func SyntheticTraceShuffled(spec Spec, n int64, rng *xrand.Source) (*trace.Trace, error) {
	if err := validateSynthetic(spec, n); err != nil {
		return nil, err
	}
	if cost := spec.IOCost(n); cost > 1<<28 {
		return nil, fmt.Errorf("regular: synthetic trace for n = %d would have %.3g references; too large", n, cost)
	}
	b := &trace.Builder{}
	emitSyntheticShuffled(b, spec, n, 0, rng)
	return b.Build(), nil
}

// EmitSyntheticShuffled streams the shuffled canonical trace into s, with
// no reference-count ceiling (see EmitSynthetic).
func EmitSyntheticShuffled(spec Spec, n int64, rng *xrand.Source, s trace.Sink) error {
	if err := validateSynthetic(spec, n); err != nil {
		return err
	}
	emitSyntheticShuffled(s, spec, n, 0, rng)
	return nil
}

func emitSyntheticShuffled(s trace.Sink, spec Spec, m, off int64, rng *xrand.Source) {
	if m == 1 {
		s.Access(off)
		s.EndLeaf()
		return
	}
	child := m / spec.B
	order := rng.Perm(int(spec.A))
	for _, i := range order {
		slot := int64(i) % spec.B
		emitSyntheticShuffled(s, spec, child, off+slot*child, rng)
	}
	s.AccessRange(off, spec.ScanLen(m))
}
