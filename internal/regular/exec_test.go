package regular

import (
	"testing"
	"testing/quick"

	"repro/internal/profile"
	"repro/internal/xrand"
)

func mustExec(t *testing.T, spec Spec, n int64) *Exec {
	t.Helper()
	e, err := NewExec(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewExecValidation(t *testing.T) {
	if _, err := NewExec(MMScanSpec, 48); err == nil {
		t.Error("non-power size accepted")
	}
	if _, err := NewExec(MMScanSpec, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewExec(Spec{A: 8, B: 1, C: 1}, 4); err == nil {
		t.Error("invalid spec accepted")
	}
	// 8^40 leaves would overflow int64 accounting.
	if _, err := NewExec(MMScanSpec, profile.Pow(4, 21)); err == nil {
		t.Error("overflow-sized problem accepted")
	}
}

func TestSingleLeafProblem(t *testing.T) {
	e := mustExec(t, MMScanSpec, 1)
	if p := e.Step(1); p != 1 {
		t.Errorf("progress = %d, want 1", p)
	}
	if !e.Done() || e.LeavesDone() != 1 || e.BoxesUsed() != 1 {
		t.Errorf("state after leaf: done=%v leaves=%d boxes=%d", e.Done(), e.LeavesDone(), e.BoxesUsed())
	}
	if p := e.Step(100); p != 0 {
		t.Error("Step after done made progress")
	}
}

func TestHugeBoxCompletesInstantly(t *testing.T) {
	e := mustExec(t, MMScanSpec, 256)
	p := e.Step(1 << 40)
	if !e.Done() {
		t.Fatal("huge box did not complete problem")
	}
	if p != e.TotalLeaves() {
		t.Errorf("progress = %d, want all %d leaves", p, e.TotalLeaves())
	}
}

func TestExactBoxCompletes(t *testing.T) {
	e := mustExec(t, MMScanSpec, 256)
	if p := e.Step(256); p != e.TotalLeaves() || !e.Done() {
		t.Errorf("box of exactly n: progress=%d done=%v", p, e.Done())
	}
}

func TestUnitBoxesCostEqualsIOCost(t *testing.T) {
	// With size-1 boxes, every access needs its own box: boxes used must be
	// exactly T(n) = a·T(n/b) + n^c, and with skip-root-scan exactly
	// T(n) - ScanLen(n).
	for _, spec := range []Spec{MMScanSpec, MMInPlaceSpec, LCSSpec, MustSpec(3, 2, 1)} {
		n := profile.Pow(spec.B, 3)
		e := mustExec(t, spec, n)
		for !e.Done() {
			e.Step(1)
		}
		if got, want := float64(e.BoxesUsed()), spec.IOCost(n); got != want {
			t.Errorf("%v n=%d: unit boxes used %g, want T(n)=%g", spec, n, got, want)
		}
		if e.LeavesDone() != e.TotalLeaves() {
			t.Errorf("%v: leaves %d of %d", spec, e.LeavesDone(), e.TotalLeaves())
		}

		e2 := mustExec(t, spec, n)
		if err := e2.SetSkipRootScan(true); err != nil {
			t.Fatal(err)
		}
		for !e2.Done() {
			e2.Step(1)
		}
		if got, want := float64(e2.BoxesUsed()), spec.IOCost(n)-float64(spec.ScanLen(n)); got != want {
			t.Errorf("%v n=%d: f' unit boxes %g, want %g", spec, n, got, want)
		}
	}
}

func TestSetSkipRootScanAfterStart(t *testing.T) {
	e := mustExec(t, MMScanSpec, 16)
	e.Step(1)
	if err := e.SetSkipRootScan(true); err == nil {
		t.Error("SetSkipRootScan accepted mid-run")
	}
}

func TestChildSizedBoxes(t *testing.T) {
	// Boxes of size n/b: each completes one child of the root; then b boxes
	// finish the root scan (c=1). Total = a + b boxes.
	spec := MMScanSpec
	n := int64(256)
	e := mustExec(t, spec, n)
	child := n / spec.B
	boxes := int64(0)
	for !e.Done() {
		p := e.Step(child)
		boxes++
		if boxes <= spec.A {
			if p != e.TotalLeaves()/spec.A {
				t.Fatalf("box %d progress %d, want %d", boxes, p, e.TotalLeaves()/spec.A)
			}
		} else if p != 0 {
			t.Fatalf("scan box %d made progress %d", boxes, p)
		}
	}
	if boxes != spec.A+spec.B {
		t.Errorf("boxes used = %d, want %d", boxes, spec.A+spec.B)
	}
}

func TestWorstCaseProfileIsExactFit(t *testing.T) {
	// M_{a,b}(n) completes the canonical algorithm exactly at the profile's
	// last box, with leaf boxes making progress 1 and scan boxes progress 0.
	for _, tc := range []struct {
		spec Spec
		n    int64
	}{
		{MMScanSpec, 256},
		{MustSpec(2, 2, 1), 64},
		{MustSpec(4, 2, 1), 32},
		{MustSpec(3, 2, 1), 128},
	} {
		p, err := profile.WorstCase(tc.spec.A, tc.spec.B, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		e := mustExec(t, tc.spec, tc.n)
		for i := 0; i < p.Len(); i++ {
			if e.Done() {
				t.Fatalf("%v n=%d: finished early at box %d of %d", tc.spec, tc.n, i, p.Len())
			}
			box := p.Box(i)
			prog := e.Step(box)
			if box == 1 && prog != 1 {
				t.Fatalf("%v: leaf box %d progress %d, want 1", tc.spec, i, prog)
			}
			if box > 1 && prog != 0 {
				t.Fatalf("%v: scan box %d (size %d) progress %d, want 0", tc.spec, i, box, prog)
			}
		}
		if !e.Done() {
			t.Fatalf("%v n=%d: profile exhausted but not done", tc.spec, tc.n)
		}
		if e.LeavesDone() != e.TotalLeaves() {
			t.Fatalf("%v: leaves %d of %d", tc.spec, e.LeavesDone(), e.TotalLeaves())
		}
	}
}

func TestBoxBetweenPowersRoundsDown(t *testing.T) {
	// A box of size 5 at the start of a 256-problem (b=4) completes the
	// leftmost descendant of size 4 — same as a box of size 4.
	e1 := mustExec(t, MMScanSpec, 256)
	e2 := mustExec(t, MMScanSpec, 256)
	p1 := e1.Step(5)
	p2 := e2.Step(4)
	if p1 != p2 || p1 != 8 { // 8 leaves in a size-4 subproblem
		t.Errorf("size-5 box progress %d, size-4 box progress %d, want 8", p1, p2)
	}
}

func TestScanAdvanceSemantics(t *testing.T) {
	// Drive a (8,4,1) problem of size 16 to its root scan with child-sized
	// boxes, then feed small boxes through the scan.
	spec := MMScanSpec
	e := mustExec(t, spec, 16)
	for i := int64(0); i < spec.A; i++ {
		if p := e.Step(4); p != 8 {
			t.Fatalf("child box progress %d", p)
		}
	}
	// Root scan has 16 accesses; boxes of size 4 (< 16) advance 4 each.
	for i := 0; i < 4; i++ {
		if e.Done() {
			t.Fatal("finished before scan done")
		}
		if p := e.Step(4); p != 0 {
			t.Fatalf("scan box progress %d", p)
		}
	}
	if !e.Done() {
		t.Error("scan of 16 not finished by 4 boxes of size 4")
	}
}

func TestScanCompletedByLargeBox(t *testing.T) {
	// A box >= the scanning problem's size completes the problem (rest of
	// scan included).
	spec := MMScanSpec
	e := mustExec(t, spec, 16)
	for i := int64(0); i < spec.A; i++ {
		e.Step(4)
	}
	e.Step(4) // 4 accesses into the 16-access root scan
	if p := e.Step(16); p != 0 || !e.Done() {
		t.Errorf("large box in scan: progress=%d done=%v", p, e.Done())
	}
}

func TestRunCollect(t *testing.T) {
	e := mustExec(t, MMScanSpec, 64)
	src := profile.FuncSource(func() int64 { return 16 })
	boxes, prog, err := e.RunCollect(src.Next, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(boxes) != len(prog) {
		t.Fatal("length mismatch")
	}
	var total int64
	for _, p := range prog {
		total += p
	}
	if total != e.TotalLeaves() {
		t.Errorf("total progress %d, want %d", total, e.TotalLeaves())
	}
}

func TestRunMaxBoxesGuard(t *testing.T) {
	e := mustExec(t, MMScanSpec, 1024)
	err := e.Run(func() int64 { return 1 }, 10, nil)
	if err == nil {
		t.Error("maxBoxes guard did not trip")
	}
}

func TestRunRejectsBadSource(t *testing.T) {
	e := mustExec(t, MMScanSpec, 16)
	if err := e.Run(func() int64 { return 0 }, 0, nil); err == nil {
		t.Error("zero-size box accepted")
	}
}

// Property: for any spec in the experiment family and any random box
// stream, the execution completes with total progress equal to the leaf
// count, never exceeds stack depth log_b n + 1 implicitly (would panic), and
// per-box progress is bounded by ρ(min(box, n)) with rounding slack — a box
// can never make more progress than (a/b)·its bounded potential... we use
// the crude sound bound progress <= leaves(min(box↓·b, n)).
func TestRandomRunInvariants(t *testing.T) {
	specs := []Spec{MMScanSpec, MMInPlaceSpec, LCSSpec, StrassenSpec, MustSpec(3, 2, 1), MustSpec(2, 4, 0.5)}
	rng := xrand.New(2024)
	check := func(seed uint32, specIdx uint8, kRaw uint8) bool {
		spec := specs[int(specIdx)%len(specs)]
		k := int(kRaw)%4 + 1
		n := profile.Pow(spec.B, k)
		e, err := NewExec(spec, n)
		if err != nil {
			return false
		}
		local := xrand.New(uint64(seed))
		var total int64
		for !e.Done() {
			box := 1 + local.Int63n(2*n)
			p := e.Step(box)
			// Sound upper bound on progress of one box.
			capSize := spec.FloorPow(box) * spec.B
			if capSize > n {
				capSize = n
			}
			if float64(p) > spec.LeafCount(capSize) {
				return false
			}
			total += p
		}
		return total == e.TotalLeaves()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	_ = rng
}

// Property: monotonicity — prepending a useless (size-1) box never lets the
// execution finish in fewer subsequent boxes (executor-level analogue of
// the No-Catch-up Lemma's intuition).
func TestPrependedBoxMonotonic(t *testing.T) {
	check := func(seed uint32, kRaw uint8) bool {
		k := int(kRaw)%4 + 2
		n := profile.Pow(4, k)
		mk := func(delay bool) int64 {
			e, err := NewExec(MMScanSpec, n)
			if err != nil {
				return -1
			}
			local := xrand.New(uint64(seed))
			if delay {
				e.Step(1)
			}
			for !e.Done() {
				e.Step(1 + local.Int63n(2*n))
			}
			return e.BoxesUsed()
		}
		plain := mk(false)
		delayed := mk(true)
		if plain < 0 || delayed < 0 {
			return false
		}
		// The delayed run consumed one extra (useless) box and then the
		// same stream; it can finish at most one box later in stream terms,
		// i.e. delayed <= plain + 1 always, and delayed >= ... it must not
		// finish in strictly fewer total boxes than the plain run.
		return delayed >= plain
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestResetReusesExecutor(t *testing.T) {
	e := mustExec(t, MMScanSpec, 64)
	for !e.Done() {
		e.Step(7)
	}
	first := e.BoxesUsed()
	e.Reset()
	if e.Done() || e.BoxesUsed() != 0 || e.LeavesDone() != 0 {
		t.Fatal("Reset did not clear state")
	}
	for !e.Done() {
		e.Step(7)
	}
	if e.BoxesUsed() != first {
		t.Errorf("deterministic rerun used %d boxes, first run %d", e.BoxesUsed(), first)
	}
}
