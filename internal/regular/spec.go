// Package regular implements the (a,b,c)-regular algorithm framework of
// Definition 2 and the paper's Section-4 simplified execution model.
//
// An (a,b,c)-regular algorithm on a problem of size n blocks recurses on
// exactly a subproblems of size n/b until the Θ(1)-block base case, and the
// only other work in a non-base-case subproblem is a linear scan of size
// N^c/B (here, with the paper's B = 1 convention, n^c block accesses). Its
// I/O complexity satisfies T(n) = a·T(n/b) + Θ(1 + n^c).
//
// The package's centrepiece is Exec, a symbolic executor that runs the
// canonical (a,b,c)-regular algorithm against a stream of memory-profile
// boxes under the simplified caching model the paper proves is w.l.o.g.:
//
//   - a box of size s that begins at the start of a subproblem (and hence of
//     all of that subproblem's leftmost descendants) completes exactly the
//     enclosing/descendant problem of size min(s↓, n) on the current chain,
//     where s↓ is s rounded down to a power of b, and goes no further;
//   - a box of size s that begins inside the scan of a problem of size
//     greater than s advances min(s, remaining scan) accesses;
//   - a box of size s that begins inside the scan of a problem of size
//     m <= s completes the ancestor problem of size min(s↓, n).
//
// Progress of a box is the number of base cases (recursion leaves) it
// completes; scan-only boxes make zero progress, which is exactly how the
// worst-case profile M_{a,b} wastes potential.
package regular

import (
	"fmt"
	"math"
)

// Spec identifies an (a,b,c)-regular algorithm by its recurrence constants.
type Spec struct {
	A int64   // number of subproblems per level (a >= 1)
	B int64   // problem-size shrink factor (b >= 2)
	C float64 // scan exponent, in [0, 1]
}

// NewSpec validates the constants of Definition 2.
func NewSpec(a, b int64, c float64) (Spec, error) {
	if b < 2 {
		return Spec{}, fmt.Errorf("regular: b = %d must be >= 2", b)
	}
	if a < 1 {
		return Spec{}, fmt.Errorf("regular: a = %d must be >= 1", a)
	}
	if c < 0 || c > 1 {
		return Spec{}, fmt.Errorf("regular: c = %g must lie in [0,1]", c)
	}
	return Spec{A: a, B: b, C: c}, nil
}

// MustSpec is NewSpec for statically known-good constants; it panics on
// error.
func MustSpec(a, b int64, c float64) Spec {
	s, err := NewSpec(a, b, c)
	if err != nil {
		panic(err)
	}
	return s
}

// Exponent returns log_b a, the exponent governing both the leaf count
// n^{log_b a} and the box potential ρ(|□|) = Θ(|□|^{log_b a}) (Lemma 1).
func (s Spec) Exponent() float64 {
	return math.Log(float64(s.A)) / math.Log(float64(s.B))
}

// Adaptive reports whether the algorithm is worst-case cache-adaptive by
// Theorem 2's rule: optimal (a,b,c)-regular algorithms are adaptive iff
// c < 1 or a < b; with c = 1 and a >= b they are Θ(log_b n) from optimal.
func (s Spec) Adaptive() bool {
	return s.C < 1 || s.A < s.B
}

// ValidSize reports whether n is a legal problem size for the symbolic
// executor (a positive power of b, or 1).
func (s Spec) ValidSize(n int64) bool {
	if n < 1 {
		return false
	}
	for n%s.B == 0 {
		n /= s.B
	}
	return n == 1
}

// Levels returns log_b n for a valid size n.
func (s Spec) Levels(n int64) int {
	k := 0
	for n > 1 {
		n /= s.B
		k++
	}
	return k
}

// LeafCount returns the exact number of base cases in a problem of size n
// (a^{log_b n}), as a float64 to sidestep overflow for large instances; for
// the experiment sizes used here the value is exactly representable.
func (s Spec) LeafCount(n int64) float64 {
	return math.Pow(float64(s.A), float64(s.Levels(n)))
}

// leafCountInt returns a^k as int64; callers guarantee no overflow (problem
// sizes are validated against int64 limits in NewExec).
func (s Spec) leafCountInt(k int) int64 {
	r := int64(1)
	for i := 0; i < k; i++ {
		r *= s.A
	}
	return r
}

// ScanLen returns the length of the scan at the end of a problem of size n:
// ceil(n^c) accesses (n accesses when c = 1, a single access when c = 0).
// Base cases (n = 1) have no scan.
func (s Spec) ScanLen(n int64) int64 {
	if n <= 1 {
		return 0
	}
	return int64(math.Ceil(math.Pow(float64(n), s.C)))
}

// IOCost returns the total number of accesses T(n) of the canonical
// algorithm: T(1) = 1 and T(n) = a·T(n/b) + ScanLen(n).
func (s Spec) IOCost(n int64) float64 {
	if n <= 1 {
		return 1
	}
	return float64(s.A)*s.IOCost(n/s.B) + float64(s.ScanLen(n))
}

// Potential returns ρ(|□|) = |□|^{log_b a} with unit constant (Lemma 1).
// Clamp to the problem size yourself when evaluating Equation 2; see
// BoundedPotential.
func (s Spec) Potential(box int64) float64 {
	return math.Pow(float64(box), s.Exponent())
}

// BoundedPotential returns min(n, |□|)^{log_b a}, the per-box term of the
// efficiency criterion in Equation 2.
func (s Spec) BoundedPotential(box, n int64) float64 {
	if box > n {
		box = n
	}
	return math.Pow(float64(box), s.Exponent())
}

// FloorPow rounds s' down to the largest power of b that is <= x (minimum
// 1). The simplified model uses power-of-b box sizes; general sizes are
// rounded down for completion decisions, which only weakens boxes and so
// keeps the efficiency criterion conservative.
func (s Spec) FloorPow(x int64) int64 {
	if x < 1 {
		return 1
	}
	p := int64(1)
	for p <= x/s.B {
		p *= s.B
	}
	return p
}

// String renders the spec the way the paper writes it.
func (s Spec) String() string {
	return fmt.Sprintf("(%d,%d,%g)-regular", s.A, s.B, s.C)
}

// Common specs used throughout the experiments.
var (
	// MMScanSpec is MM-Scan, the canonical non-adaptive algorithm:
	// divide-and-conquer matrix multiplication with a merging scan,
	// T(N) = 8T(N/4) + Θ(N/B).
	MMScanSpec = Spec{A: 8, B: 4, C: 1}
	// MMInPlaceSpec is MM-InPlace, the (8,4,0)-regular variant that adds
	// elementary products into the output immediately and needs no merge
	// scan. It is optimally cache-adaptive.
	MMInPlaceSpec = Spec{A: 8, B: 4, C: 0}
	// StrassenSpec is Strassen's algorithm viewed over problem size in
	// blocks of the input (7 subproblems of one quarter the words),
	// (7,4,1)-regular: a = 7 > b = 4, c = 1 — in the logarithmic gap.
	StrassenSpec = Spec{A: 7, B: 4, C: 1}
	// LCSSpec is the cache-oblivious dynamic-programming recursion for
	// LCS/edit-distance over an n-block problem: 4 quadrant subproblems of
	// half the side... expressed in problem-size blocks it is (4,2,1) with
	// a = 4 > b = 2, c = 1.
	LCSSpec = Spec{A: 4, B: 2, C: 1}
)
