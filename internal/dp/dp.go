// Package dp implements the cache-oblivious dynamic-programming kernels the
// paper cites as (a,b,c)-regular algorithms in the logarithmic gap: longest
// common subsequence and edit distance (Chowdhury–Ramachandran style).
//
// Both are computed two ways: the classic row-by-row DP (the reference),
// and a boundary-passing divide-and-conquer over the DP table — four
// quadrant subproblems on half-length strings plus Θ(n) boundary work,
// i.e. the (4,2,1)-regular recursion (problem size in blocks halves, four
// subproblems, linear scan): a = 4 > b = 2 and c = 1, squarely inside the
// paper's gap. A traced variant (trace.go) feeds the paging substrate.
package dp

import (
	"fmt"
)

// LCSLength returns the length of the longest common subsequence of x and
// y, by the classic dynamic program (two rolling rows, O(|x|·|y|) time).
func LCSLength(x, y string) int {
	if len(x) == 0 || len(y) == 0 {
		return 0
	}
	prev := make([]int, len(y)+1)
	cur := make([]int, len(y)+1)
	for i := 1; i <= len(x); i++ {
		for j := 1; j <= len(y); j++ {
			switch {
			case x[i-1] == y[j-1]:
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(y)]
}

// EditDistance returns the Levenshtein distance between x and y (unit
// costs), by the classic dynamic program.
func EditDistance(x, y string) int {
	prev := make([]int, len(y)+1)
	cur := make([]int, len(y)+1)
	for j := 0; j <= len(y); j++ {
		prev[j] = j
	}
	for i := 1; i <= len(x); i++ {
		cur[0] = i
		for j := 1; j <= len(y); j++ {
			cost := 1
			if x[i-1] == y[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost // substitute / match
			if d := prev[j] + 1; d < best {
				best = d // delete
			}
			if d := cur[j-1] + 1; d < best {
				best = d // insert
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[len(y)]
}

// dpRule is the cell update of a grid DP: given the three neighbour values
// and the two characters, produce the cell value.
type dpRule func(diag, up, left int, xc, yc byte) int

func lcsRule(diag, up, left int, xc, yc byte) int {
	if xc == yc {
		return diag + 1
	}
	if up >= left {
		return up
	}
	return left
}

func editRule(diag, up, left int, xc, yc byte) int {
	cost := 1
	if xc == yc {
		cost = 0
	}
	best := diag + cost
	if d := up + 1; d < best {
		best = d
	}
	if d := left + 1; d < best {
		best = d
	}
	return best
}

// boundary is the DP state crossing into a block: the block [i0,i1)×[j0,j1)
// is determined by the values D[i0-1][j0-1..j1-1] (top, length cols+1) and
// D[i0..i1-1][j0-1] (left, length rows). Solving the block yields its
// bottom row D[i1-1][j0-1..j1-1] and right column D[i0..i1-1][j1-1], which
// seed the neighbouring blocks.
type boundary struct {
	top  []int // length cols+1: includes the corner D[i0-1][j0-1]
	left []int // length rows
}

// solveBlockBase computes a block of the DP directly, returning the bottom
// boundary (same shape as the input boundary but for the block's far
// edges).
func solveBlockBase(rule dpRule, x, y string, in boundary) boundary {
	rows, cols := len(in.left), len(in.top)-1
	// cur[j] spans j0-1..j1-1 (cols+1 entries).
	cur := make([]int, cols+1)
	copy(cur, in.top)
	right := make([]int, rows)
	for i := 0; i < rows; i++ {
		diag := cur[0]
		cur[0] = in.left[i]
		for j := 1; j <= cols; j++ {
			newDiag := cur[j]
			cur[j] = rule(diag, newDiag, cur[j-1], x[i], y[j-1])
			diag = newDiag
		}
		right[i] = cur[cols]
	}
	return boundary{top: cur, left: right}
}

// baseLen is the divide-and-conquer cutoff (strings at or below this length
// are solved directly).
const baseLen = 8

// solveBlockRec is the boundary-passing quadrant recursion. It requires
// len(x) == len(y) for simplicity of the quadrant split (the public
// entry points pad internally when needed... they don't: they require
// power-of-two equal lengths and document it).
func solveBlockRec(rule dpRule, x, y string, in boundary) boundary {
	n := len(x)
	if n <= baseLen {
		return solveBlockBase(rule, x, y, in)
	}
	h := n / 2
	x1, x2 := x[:h], x[h:]
	y1, y2 := y[:h], y[h:]

	// Quadrants: Q11 = (x1,y1), Q12 = (x1,y2), Q21 = (x2,y1), Q22 = (x2,y2).
	q11 := solveBlockRec(rule, x1, y1, boundary{top: in.top[:h+1], left: in.left[:h]})

	topQ12 := make([]int, h+1)
	topQ12[0] = in.top[h]
	copy(topQ12[1:], in.top[h+1:])
	q12 := solveBlockRec(rule, x1, y2, boundary{top: topQ12, left: q11.left})

	topQ21 := make([]int, h+1)
	topQ21[0] = in.left[h-1]
	copy(topQ21[1:], q11.top[1:])
	q21 := solveBlockRec(rule, x2, y1, boundary{top: topQ21, left: in.left[h:]})

	topQ22 := make([]int, h+1)
	topQ22[0] = q11.top[h]
	copy(topQ22[1:], q12.top[1:])
	q22 := solveBlockRec(rule, x2, y2, boundary{top: topQ22, left: q21.left})

	// Stitch the output boundary: bottom row = q21.top ++ q22.top[1:],
	// right column = q12.left ++ q22.left. This concatenation is the Θ(n)
	// "scan" of the (4,2,1) recursion.
	bottom := make([]int, n+1)
	copy(bottom, q21.top)
	copy(bottom[h+1:], q22.top[1:])
	right := make([]int, n)
	copy(right, q12.left)
	copy(right[h:], q22.left)
	return boundary{top: bottom, left: right}
}

func validateRecArgs(x, y string) error {
	if len(x) != len(y) {
		return fmt.Errorf("dp: recursive solver needs equal lengths, got %d and %d", len(x), len(y))
	}
	if len(x) == 0 || len(x)&(len(x)-1) != 0 {
		return fmt.Errorf("dp: recursive solver needs a power-of-two length, got %d", len(x))
	}
	return nil
}

// LCSLengthRecursive computes LCSLength(x, y) with the boundary-passing
// quadrant recursion. It requires equal power-of-two lengths (pad inputs
// with distinct sentinels if needed; sentinels that match nothing leave
// the LCS unchanged).
func LCSLengthRecursive(x, y string) (int, error) {
	if err := validateRecArgs(x, y); err != nil {
		return 0, err
	}
	n := len(x)
	in := boundary{top: make([]int, n+1), left: make([]int, n)}
	out := solveBlockRec(lcsRule, x, y, in)
	return out.top[n], nil
}

// EditDistanceRecursive computes EditDistance(x, y) with the quadrant
// recursion; same length constraints as LCSLengthRecursive.
func EditDistanceRecursive(x, y string) (int, error) {
	if err := validateRecArgs(x, y); err != nil {
		return 0, err
	}
	n := len(x)
	in := boundary{top: make([]int, n+1), left: make([]int, n)}
	for j := 0; j <= n; j++ {
		in.top[j] = j
	}
	for i := 0; i < n; i++ {
		in.left[i] = i + 1
	}
	out := solveBlockRec(editRule, x, y, in)
	return out.top[n], nil
}
