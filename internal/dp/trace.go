package dp

import (
	"fmt"

	"repro/internal/trace"
)

// TraceLCS emits the block-reference trace of the quadrant LCS/edit
// recursion on strings of xLen characters (power of two), with blockWords
// characters (or boundary entries) per block.
//
// Layout: X occupies words [0, n), Y words [n, 2n); boundary vectors come
// from a stack allocator above them, allocated per recursive call and
// released on exit, mirroring a real implementation. A subproblem on
// string halves of length m touches Θ(m/B) blocks of X, Y, and boundary —
// the Θ(n) distinct-blocks property — and each base-case block marks a
// leaf. The per-call boundary stitch is the linear scan: Θ(m/B) contiguous
// accesses, making the kernel (4,2,1)-regular in blocks.
func TraceLCS(xLen int, blockWords int64) (*trace.Trace, error) {
	b := &trace.Builder{}
	if err := EmitLCS(xLen, blockWords, b); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// EmitLCS streams the LCS trace into s without materializing it.
func EmitLCS(xLen int, blockWords int64, s trace.Sink) error {
	if xLen < 1 || xLen&(xLen-1) != 0 {
		return fmt.Errorf("dp: traced kernel needs power-of-two length, got %d", xLen)
	}
	if xLen < baseLen {
		return fmt.Errorf("dp: traced kernel needs length >= %d, got %d", baseLen, xLen)
	}
	if blockWords < 1 {
		return fmt.Errorf("dp: block size %d < 1", blockWords)
	}
	g := &lcsTraceGen{s: s, bw: blockWords, allocTop: 2 * int64(xLen)}
	g.rec(0, int64(xLen), int64(xLen))
	return nil
}

type lcsTraceGen struct {
	s        trace.Sink
	bw       int64
	allocTop int64
}

func (g *lcsTraceGen) touch(off, words int64) {
	first := off / g.bw
	last := (off + words - 1) / g.bw
	g.s.AccessRange(first, last-first+1)
}

// rec traces the subproblem on X[xOff..xOff+m) and the aligned Y range
// (whose words live at n + same offsets; using xOff for both keeps the
// bookkeeping simple and the footprint faithful).
func (g *lcsTraceGen) rec(xOff, m, n int64) {
	if m <= baseLen {
		// Base case: stream the X and Y chunks and a boundary buffer.
		g.touch(xOff, m)
		g.touch(n+xOff, m)
		bnd := g.allocTop
		g.allocTop += 2 * m
		g.touch(bnd, 2*m)
		g.allocTop = bnd
		g.s.EndLeaf()
		return
	}
	h := m / 2
	// Boundary vectors for the four quadrants (2m words), stack-allocated.
	bnd := g.allocTop
	g.allocTop += 2 * m

	// Q11 (x1,y1), Q12 (x1,y2), Q21 (x2,y1), Q22 (x2,y2): quadrants reuse
	// the two string halves pairwise — the a > b data reuse.
	g.rec(xOff, h, n)
	g.rec(xOff, h, n) // x1 with y2 (same X half; Y tracked via same offsets)
	g.rec(xOff+h, h, n)
	g.rec(xOff+h, h, n)

	// Boundary stitch: the linear scan over the 2m-word boundary.
	g.touch(bnd, 2*m)
	g.allocTop = bnd
}
