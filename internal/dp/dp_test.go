package dp

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/paging"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/xrand"
)

func TestLCSKnown(t *testing.T) {
	cases := []struct {
		x, y string
		want int
	}{
		{"", "", 0},
		{"abc", "", 0},
		{"", "abc", 0},
		{"abcde", "ace", 3},
		{"abc", "abc", 3},
		{"abc", "def", 0},
		{"AGGTAB", "GXTXAYB", 4},
		{"aaaa", "aa", 2},
	}
	for _, tc := range cases {
		if got := LCSLength(tc.x, tc.y); got != tc.want {
			t.Errorf("LCS(%q,%q) = %d, want %d", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestEditDistanceKnown(t *testing.T) {
	cases := []struct {
		x, y string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
	}
	for _, tc := range cases {
		if got := EditDistance(tc.x, tc.y); got != tc.want {
			t.Errorf("edit(%q,%q) = %d, want %d", tc.x, tc.y, got, tc.want)
		}
	}
}

func randomString(src *xrand.Source, n int, alpha string) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alpha[src.Intn(len(alpha))])
	}
	return sb.String()
}

func TestRecursiveValidation(t *testing.T) {
	if _, err := LCSLengthRecursive("abc", "abcd"); err == nil {
		t.Error("unequal lengths accepted")
	}
	if _, err := LCSLengthRecursive("abc", "abd"); err == nil {
		t.Error("non-power length accepted")
	}
	if _, err := EditDistanceRecursive("", ""); err == nil {
		t.Error("empty accepted")
	}
}

func TestRecursiveMatchesClassic(t *testing.T) {
	src := xrand.New(17)
	for _, n := range []int{8, 16, 32, 64, 128} {
		for trial := 0; trial < 5; trial++ {
			x := randomString(src, n, "abcd")
			y := randomString(src, n, "abcd")
			wantLCS := LCSLength(x, y)
			gotLCS, err := LCSLengthRecursive(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if gotLCS != wantLCS {
				t.Errorf("n=%d: recursive LCS %d, classic %d (x=%q y=%q)", n, gotLCS, wantLCS, x, y)
			}
			wantED := EditDistance(x, y)
			gotED, err := EditDistanceRecursive(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if gotED != wantED {
				t.Errorf("n=%d: recursive edit %d, classic %d (x=%q y=%q)", n, gotED, wantED, x, y)
			}
		}
	}
}

// Property: recursive solvers agree with the classics on arbitrary seeds,
// and the classic invariants hold: LCS <= n, edit >= |len difference| (0
// here), LCS(x,x) = n, edit(x,x) = 0.
func TestDPProperties(t *testing.T) {
	check := func(seed uint32, sizeSel uint8) bool {
		n := []int{8, 16, 32}[int(sizeSel)%3]
		src := xrand.New(uint64(seed))
		x := randomString(src, n, "ab")
		y := randomString(src, n, "ab")
		l, err := LCSLengthRecursive(x, y)
		if err != nil || l != LCSLength(x, y) || l > n {
			return false
		}
		d, err := EditDistanceRecursive(x, y)
		if err != nil || d != EditDistance(x, y) {
			return false
		}
		// Duality for equal-length binary strings: d >= n - l... in fact
		// edit distance with substitutions satisfies d <= n - l + ... keep
		// the universally true bounds:
		if d < 0 || d > n {
			return false
		}
		if LCSLength(x, x) != n || EditDistance(x, x) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceLCSValidation(t *testing.T) {
	if _, err := TraceLCS(12, 4); err == nil {
		t.Error("non-power length accepted")
	}
	if _, err := TraceLCS(4, 4); err == nil {
		t.Error("length below base accepted")
	}
	if _, err := TraceLCS(64, 0); err == nil {
		t.Error("block size 0 accepted")
	}
}

func TestTraceLCSShape(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		tr, err := TraceLCS(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		// 4^levels leaves with levels = log2(n/base).
		levels := 0
		for m := n; m > baseLen; m /= 2 {
			levels++
		}
		want := int64(1)
		for i := 0; i < levels; i++ {
			want *= 4
		}
		if tr.Leaves() != want {
			t.Errorf("n=%d: leaves %d, want %d", n, tr.Leaves(), want)
		}
		// Footprint linear in n: X + Y + boundary stack, all Θ(n) words.
		if tr.DistinctBlocks() > int64(8*n)/4 {
			t.Errorf("n=%d: footprint %d blocks too large", n, tr.DistinctBlocks())
		}
	}
}

// Cross-validation: the LCS kernel trace behaves like its (4,2,1) symbolic
// counterpart — boxes-to-complete under constant box sizes agree within the
// model's constant slack. (The symbolic problem size is the kernel's block
// footprint rounded to a power of 2.)
func TestTraceLCSCrossValidatesSymbolic(t *testing.T) {
	const m, bw = 256, 4
	tr, err := TraceLCS(m, bw)
	if err != nil {
		t.Fatal(err)
	}
	// Problem size in blocks for the symbolic (4,2,1) model: the kernel's
	// string length in blocks (X drives the recursion; Y and boundaries are
	// constant-factor companions).
	nBlocks := int64(m / bw)
	spec := regular.LCSSpec
	e, err := regular.NewExec(spec, nBlocks)
	if err != nil {
		t.Fatal(err)
	}
	const box = 16
	for !e.Done() {
		e.Step(box)
	}
	symBoxes := e.BoxesUsed()

	src, err := profile.NewSliceSource(profile.MustNew([]int64{box}))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := paging.SquareRun(tr, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	traceBoxes := int64(len(stats))
	// The kernel's constants stack against the canonical model's: each dp
	// base case touches ~6 blocks (X chunk + Y chunk + boundary, each
	// block-rounded) where the canonical model's leaf touches 1, and the
	// boundary temporaries add further footprint. The agreement claim is
	// therefore order-of-magnitude: the backends must stay within the
	// product of those documented constants (32x), which still catches any
	// structural divergence.
	if traceBoxes < symBoxes/32 || traceBoxes > symBoxes*32 {
		t.Errorf("trace %d boxes vs symbolic %d (outside 32x band)", traceBoxes, symBoxes)
	}
}
