// Package sharedcache simulates the scenario the paper's introduction
// motivates: several processes sharing one cache, each seeing its
// allocation fluctuate as the others start, stop, and change their
// demands. The simulator produces the raw per-process memory profiles
// m_p(t) that the inner-square reduction (profile.Squarize) turns into the
// square profiles the cache-adaptive machinery consumes.
//
// Three allocation policies are modelled:
//
//   - EvenSplit: the cache is divided equally among the processes active
//     at each step — the baseline partitioning of Intel CAT-style manual
//     control.
//   - Proportional: each active process gets a share proportional to its
//     current demand — an idealised demand-aware allocator.
//   - WinnerTakeAll: one process's share grows toward the whole cache (the
//     residency imbalance of Dice et al. the paper cites) until a periodic
//     flush resets everyone to the floor — the "slowly grow, abruptly
//     crash" profile of the introduction.
package sharedcache

import (
	"fmt"

	"repro/internal/xrand"
)

// Policy selects the allocation rule.
type Policy int

// Policies.
const (
	EvenSplit Policy = iota
	Proportional
	WinnerTakeAll
)

func (p Policy) String() string {
	switch p {
	case EvenSplit:
		return "even-split"
	case Proportional:
		return "proportional"
	case WinnerTakeAll:
		return "winner-take-all"
	default:
		return "unknown"
	}
}

// Process describes one tenant of the shared cache.
type Process struct {
	Name   string
	Arrive int // first active step (inclusive)
	Depart int // last active step (exclusive); <= horizon
	// Demand is the process's desired cache in blocks; under Proportional
	// it weights the split. Must be >= 1.
	Demand int64
}

// Config describes a simulation.
type Config struct {
	CacheBlocks int64 // total shared cache, in blocks
	Horizon     int   // steps to simulate
	Policy      Policy
	// FlushPeriod applies to WinnerTakeAll: every FlushPeriod steps the
	// winner's accumulated share is flushed back to the floor.
	FlushPeriod int
	// DemandJitter, if positive, multiplies each process's demand each step
	// by a uniform factor in [1/DemandJitter, DemandJitter] (resampled per
	// step), modelling phase changes.
	DemandJitter int64
	Processes    []Process
}

func (c *Config) validate() error {
	if c.CacheBlocks < 1 {
		return fmt.Errorf("sharedcache: cache %d blocks", c.CacheBlocks)
	}
	if c.Horizon < 1 {
		return fmt.Errorf("sharedcache: horizon %d", c.Horizon)
	}
	if len(c.Processes) == 0 {
		return fmt.Errorf("sharedcache: no processes")
	}
	if c.Policy == WinnerTakeAll && c.FlushPeriod < 1 {
		return fmt.Errorf("sharedcache: winner-take-all needs FlushPeriod >= 1")
	}
	for i, p := range c.Processes {
		if p.Demand < 1 {
			return fmt.Errorf("sharedcache: process %d demand %d", i, p.Demand)
		}
		if p.Arrive < 0 || p.Depart <= p.Arrive {
			return fmt.Errorf("sharedcache: process %d lifetime [%d,%d) invalid", i, p.Arrive, p.Depart)
		}
	}
	return nil
}

// Allocation holds one process's view of the simulation: its allocation in
// blocks at each step of its active window.
type Allocation struct {
	Process Process
	// M[t] is the allocation at absolute step Process.Arrive + t.
	M []int64
}

// Simulate runs the allocator and returns one Allocation per process (in
// input order). Invariants (tested): at every step the active allocations
// sum to at most CacheBlocks and every active process holds >= 1 block.
func Simulate(cfg Config, rng *xrand.Source) ([]Allocation, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	out := make([]Allocation, len(cfg.Processes))
	for i, p := range cfg.Processes {
		out[i] = Allocation{Process: p}
	}
	// Winner-take-all state: the winner's current share fraction numerator.
	winnerShare := int64(0)
	for t := 0; t < cfg.Horizon; t++ {
		var active []int
		for i, p := range cfg.Processes {
			if t >= p.Arrive && t < p.Depart {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			continue
		}
		demands := make([]int64, len(active))
		var totalDemand int64
		for j, i := range active {
			d := cfg.Processes[i].Demand
			if cfg.DemandJitter > 1 {
				num := 1 + rng.Int63n(cfg.DemandJitter)
				den := 1 + rng.Int63n(cfg.DemandJitter)
				d = max64(1, d*num/den)
			}
			demands[j] = d
			totalDemand += d
		}

		allocs := make([]int64, len(active))
		switch cfg.Policy {
		case EvenSplit:
			share := cfg.CacheBlocks / int64(len(active))
			for j := range allocs {
				allocs[j] = max64(1, share)
			}
		case Proportional:
			for j := range allocs {
				allocs[j] = max64(1, cfg.CacheBlocks*demands[j]/totalDemand)
			}
		case WinnerTakeAll:
			// The winner (process with the largest jittered demand this
			// step) grows by one share-step per step; a flush resets it.
			if t%cfg.FlushPeriod == 0 {
				winnerShare = 0
			}
			if winnerShare < cfg.CacheBlocks {
				winnerShare += max64(1, cfg.CacheBlocks/int64(cfg.FlushPeriod))
			}
			if winnerShare > cfg.CacheBlocks {
				winnerShare = cfg.CacheBlocks
			}
			wj := 0
			for j := range demands {
				if demands[j] > demands[wj] {
					wj = j
				}
			}
			floor := max64(1, (cfg.CacheBlocks-winnerShare)/int64(len(active)))
			for j := range allocs {
				if j == wj {
					allocs[j] = max64(1, winnerShare)
				} else {
					allocs[j] = floor
				}
			}
		default:
			return nil, fmt.Errorf("sharedcache: unknown policy %d", cfg.Policy)
		}

		// Clamp the total to the cache size, trimming the largest holders
		// first (the floor guarantees stay intact because trimming stops at
		// 1 block).
		trimToBudget(allocs, cfg.CacheBlocks)
		for j, i := range active {
			out[i].M = append(out[i].M, allocs[j])
		}
	}
	return out, nil
}

// trimToBudget reduces allocations until their sum fits the budget,
// repeatedly decrementing the current maximum (never below 1).
func trimToBudget(allocs []int64, budget int64) {
	var sum int64
	for _, a := range allocs {
		sum += a
	}
	for sum > budget {
		// Find the max and shave the overshoot off it (bounded below).
		mi := 0
		for j := range allocs {
			if allocs[j] > allocs[mi] {
				mi = j
			}
		}
		if allocs[mi] <= 1 {
			return // cannot trim further; budget < len(allocs) blocks
		}
		cut := sum - budget
		if cut > allocs[mi]-1 {
			cut = allocs[mi] - 1
		}
		allocs[mi] -= cut
		sum -= cut
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
