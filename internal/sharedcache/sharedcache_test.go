package sharedcache

import (
	"testing"
	"testing/quick"

	"repro/internal/profile"
	"repro/internal/xrand"
)

func baseConfig() Config {
	return Config{
		CacheBlocks: 1024,
		Horizon:     2000,
		Policy:      EvenSplit,
		FlushPeriod: 500,
		Processes: []Process{
			{Name: "a", Arrive: 0, Depart: 2000, Demand: 400},
			{Name: "b", Arrive: 300, Depart: 1500, Demand: 700},
			{Name: "c", Arrive: 800, Depart: 2000, Demand: 100},
		},
	}
}

func TestValidation(t *testing.T) {
	bad := baseConfig()
	bad.CacheBlocks = 0
	if _, err := Simulate(bad, xrand.New(1)); err == nil {
		t.Error("cache 0 accepted")
	}
	bad = baseConfig()
	bad.Processes = nil
	if _, err := Simulate(bad, xrand.New(1)); err == nil {
		t.Error("no processes accepted")
	}
	bad = baseConfig()
	bad.Processes[0].Depart = bad.Processes[0].Arrive
	if _, err := Simulate(bad, xrand.New(1)); err == nil {
		t.Error("empty lifetime accepted")
	}
	bad = baseConfig()
	bad.Policy = WinnerTakeAll
	bad.FlushPeriod = 0
	if _, err := Simulate(bad, xrand.New(1)); err == nil {
		t.Error("WTA without flush period accepted")
	}
}

func checkInvariants(t *testing.T, cfg Config, allocs []Allocation) {
	t.Helper()
	// Reconstruct per-step totals.
	totals := make([]int64, cfg.Horizon)
	for _, a := range allocs {
		if len(a.M) != a.Process.Depart-a.Process.Arrive && a.Process.Depart <= cfg.Horizon {
			t.Fatalf("%s: %d samples for lifetime [%d,%d)", a.Process.Name, len(a.M), a.Process.Arrive, a.Process.Depart)
		}
		for i, m := range a.M {
			if m < 1 {
				t.Fatalf("%s: allocation %d at step %d", a.Process.Name, m, a.Process.Arrive+i)
			}
			totals[a.Process.Arrive+i] += m
		}
	}
	for step, total := range totals {
		if total > cfg.CacheBlocks {
			t.Fatalf("step %d: allocations total %d > cache %d", step, total, cfg.CacheBlocks)
		}
	}
}

func TestInvariantsAllPolicies(t *testing.T) {
	for _, pol := range []Policy{EvenSplit, Proportional, WinnerTakeAll} {
		cfg := baseConfig()
		cfg.Policy = pol
		cfg.DemandJitter = 3
		allocs, err := Simulate(cfg, xrand.New(7))
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		checkInvariants(t, cfg, allocs)
	}
}

func TestEvenSplitShares(t *testing.T) {
	cfg := baseConfig()
	allocs, err := Simulate(cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Before b arrives, a has the whole cache; while a and b share, each
	// has half.
	a := allocs[0]
	if a.M[0] != 1024 {
		t.Errorf("solo allocation %d, want 1024", a.M[0])
	}
	if a.M[400] != 512 {
		t.Errorf("two-way allocation %d, want 512", a.M[400])
	}
	if a.M[900] != 341 {
		t.Errorf("three-way allocation %d, want 341", a.M[900])
	}
}

func TestWinnerTakeAllSawtooth(t *testing.T) {
	cfg := baseConfig()
	cfg.Policy = WinnerTakeAll
	cfg.FlushPeriod = 200
	allocs, err := Simulate(cfg, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// The winner's allocation must hit (or approach) the full cache within
	// each flush period and crash afterwards: check the max over a period
	// is large and the value right after a flush boundary is small.
	b := allocs[1] // highest demand once active
	var peak int64
	for _, m := range b.M[:200] {
		if m > peak {
			peak = m
		}
	}
	if peak < cfg.CacheBlocks/2 {
		t.Errorf("winner never grew: peak %d", peak)
	}
	// Immediately after a flush (absolute step 1000 => index 700 in b's
	// window), the share is near the floor.
	if b.M[700] > cfg.CacheBlocks/4 {
		t.Errorf("allocation %d right after flush, want small", b.M[700])
	}
}

func TestProportionalFollowsDemand(t *testing.T) {
	cfg := baseConfig()
	cfg.Policy = Proportional
	allocs, err := Simulate(cfg, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// While a (demand 400) and b (demand 700) are both active (and c is
	// not), b holds more.
	aAt, bAt := allocs[0].M[400], allocs[1].M[100]
	if bAt <= aAt {
		t.Errorf("proportional: b=%d not above a=%d", bAt, aAt)
	}
}

// The generated profiles feed the square reduction without error.
func TestProfilesSquarize(t *testing.T) {
	cfg := baseConfig()
	cfg.Policy = WinnerTakeAll
	allocs, err := Simulate(cfg, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range allocs {
		p, err := profile.Squarize(a.M)
		if err != nil {
			t.Fatalf("%s: %v", a.Process.Name, err)
		}
		if p.Duration() != int64(len(a.M)) {
			t.Errorf("%s: square profile covers %d of %d steps", a.Process.Name, p.Duration(), len(a.M))
		}
	}
}

// Property: invariants hold for random configurations.
func TestInvariantsProperty(t *testing.T) {
	check := func(seed uint32, cacheRaw uint16, polRaw uint8) bool {
		src := xrand.New(uint64(seed))
		cache := int64(cacheRaw)%2000 + 10
		cfg := Config{
			CacheBlocks:  cache,
			Horizon:      300,
			Policy:       Policy(polRaw % 3),
			FlushPeriod:  50,
			DemandJitter: 2,
		}
		nProcs := 1 + src.Intn(5)
		for i := 0; i < nProcs; i++ {
			arrive := src.Intn(250)
			cfg.Processes = append(cfg.Processes, Process{
				Name:   "p",
				Arrive: arrive,
				Depart: arrive + 1 + src.Intn(300-arrive),
				Demand: 1 + src.Int63n(cache),
			})
		}
		allocs, err := Simulate(cfg, src)
		if err != nil {
			return false
		}
		totals := make([]int64, cfg.Horizon)
		for _, a := range allocs {
			for i, m := range a.M {
				if m < 1 {
					return false
				}
				totals[a.Process.Arrive+i] += m
			}
		}
		for _, total := range totals {
			if total > cfg.CacheBlocks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
