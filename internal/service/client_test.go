package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// newTestClient wires a Client to srv with instant, recorded sleeps.
func newTestClient(srv *httptest.Server, slept *[]time.Duration) *Client {
	c := NewClient(srv.URL)
	c.HTTPClient = srv.Client()
	c.sleep = func(d time.Duration) { *slept = append(*slept, d) }
	return c
}

// TestSleepCtxCancellation: a cancelled context must interrupt a backoff
// sleep promptly — WaitJob backs off up to MaxDelay between polls, and a
// Ctrl-C'd CLI should not serve out the remaining delay first.
func TestSleepCtxCancellation(t *testing.T) {
	c := NewClient("http://unused") // default real time.Sleep
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := c.sleepCtx(ctx, 10*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("sleepCtx: got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; backoff sleep was not interrupted", elapsed)
	}
	// An already-cancelled context short-circuits without sleeping at all.
	if err := c.sleepCtx(ctx, 10*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("sleepCtx on dead ctx: got %v", err)
	}
}

func TestClientRetriesShedThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "overloaded"})
			return
		}
		writeJSON(w, http.StatusOK, RunResponse{Experiment: "E1", Key: "k", Table: []byte(`{"ok":true}`)})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newTestClient(srv, &slept)
	resp, err := c.Run(context.Background(), "E1", core.DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// writeJSON re-indents the envelope, so compare the table structurally.
	if resp.Experiment != "E1" || !strings.Contains(string(resp.Table), `"ok": true`) {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	// Both retries followed a 503 with Retry-After: 1, which must floor the
	// jittered backoff (otherwise well under a second) at one second.
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (%v)", len(slept), slept)
	}
	for i, d := range slept {
		if d < time.Second {
			t.Errorf("sleep %d = %v, want >= 1s (Retry-After floor)", i, d)
		}
	}
}

func TestClientNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad seed"})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newTestClient(srv, &slept)
	_, err := c.Run(context.Background(), "E1", core.DefaultConfig())
	if err == nil || !strings.Contains(err.Error(), "status 400") {
		t.Fatalf("err = %v, want status 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (4xx must not retry)", got)
	}
	if len(slept) != 0 {
		t.Fatalf("client slept %v before a non-retryable failure", slept)
	}
}

func TestClientExhaustsAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "overloaded"})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newTestClient(srv, &slept)
	c.MaxAttempts = 3
	_, err := c.Run(context.Background(), "E1", core.DefaultConfig())
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryError", err)
	}
	if re.Attempts != 3 || re.LastStatus != http.StatusServiceUnavailable {
		t.Fatalf("RetryError = %+v, want 3 attempts ending in 503", re)
	}
	// A terminal all-sheds failure is overload, recognizably.
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("errors.Is(err, ErrOverloaded) = false for %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestClientRetriesTransportError(t *testing.T) {
	// A server that dies after its first (failed) response: point the client
	// at a closed listener, then nothing ever succeeds — transport errors
	// must be retried MaxAttempts times, not returned on first contact.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close()

	var slept []time.Duration
	c := NewClient(url)
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	c.MaxAttempts = 3
	_, err := c.Experiments(context.Background())
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetryError", err)
	}
	if re.Attempts != 3 || re.LastStatus != 0 || re.LastErr == nil {
		t.Fatalf("RetryError = %+v, want 3 transport-failed attempts", re)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
}

func TestClientBackoffDeterministicBySeed(t *testing.T) {
	delays := func(seed uint64) []time.Duration {
		c := NewClient("http://unused")
		c.Seed = seed
		var out []time.Duration
		for attempt := 1; attempt <= 5; attempt++ {
			out = append(out, c.backoff(attempt, 0))
		}
		return out
	}
	a, b := delays(42), delays(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	other := delays(43)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical delay sequences %v", a)
	}
	// Shape: jitter keeps each delay in [half, full] of the capped
	// exponential step.
	steps := []time.Duration{100, 200, 400, 800, 1600}
	for i, d := range a {
		full := steps[i] * time.Millisecond
		if d < full/2 || d > full {
			t.Errorf("attempt %d delay %v outside [%v, %v]", i+1, d, full/2, full)
		}
	}
}

func TestClientExperiments(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/experiments" || r.Method != http.MethodGet {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		writeJSON(w, http.StatusOK, struct {
			Experiments []ExperimentInfo `json:"experiments"`
		}{[]ExperimentInfo{{ID: "E1", Source: "fig 1", Summary: "s"}}})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newTestClient(srv, &slept)
	exps, err := c.Experiments(context.Background())
	if err != nil {
		t.Fatalf("Experiments: %v", err)
	}
	if len(exps) != 1 || exps[0].ID != "E1" {
		t.Fatalf("exps = %+v", exps)
	}
}

func TestClientAgainstRealServer(t *testing.T) {
	// End-to-end through a real Server: two identical runs, second is a hit,
	// bodies byte-identical.
	s, err := New(Options{Addr: "127.0.0.1:0", MaxConcurrentRuns: 2, CacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var slept []time.Duration
	c := newTestClient(srv, &slept)
	cfg := core.DefaultConfig()
	cfg.Seed, cfg.Trials, cfg.MaxK = 7, 2, 4
	first, err := c.Run(context.Background(), "E1", cfg)
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	second, err := c.Run(context.Background(), "E1", cfg)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags: first %v second %v, want false/true", first.Cached, second.Cached)
	}
	if string(first.Table) != string(second.Table) {
		t.Fatalf("cached table bytes differ from fresh run")
	}
}
