package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/xrand"
)

// Client is the retrying HTTP client for cadaptived, used by the
// `cadaptive -server=URL` remote mode and the chaos suite. It retries
// transport errors and 5xx responses with capped exponential backoff and
// *deterministic* jitter: the jitter stream is an xrand source derived
// from Seed, so two clients with the same seed issue the same delay
// sequence — chaos runs stay replayable even through their retry timing.
// A server-provided Retry-After (seconds) raises the next delay to at
// least what the server asked for.
//
// Retrying is sound here in a way it often isn't elsewhere: POST /v1/run
// is idempotent by construction (results are content-addressed pure
// functions), so a retried request can only return the same bytes.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per request (default 5; min 1).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100ms); successive
	// delays double, capped at MaxDelay (default 5s), each scaled by a
	// deterministic jitter factor in [0.5, 1).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the jitter stream (any fixed value gives a replayable
	// delay sequence).
	Seed uint64

	// sleep is time.Sleep, injectable so tests retry instantly.
	sleep func(time.Duration)
	// jitter is lazily derived from Seed; guarded by the single-goroutine
	// contract below.
	jitter *xrand.Source
}

// NewClient returns a Client with defaults. A Client is not safe for
// concurrent use (its jitter stream is stateful); storms use one Client
// per goroutine with distinct seeds.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:     baseURL,
		HTTPClient:  http.DefaultClient,
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    5 * time.Second,
		sleep:       time.Sleep,
	}
}

// RetryError is the terminal failure after MaxAttempts: it keeps the last
// status and body so callers can distinguish "server kept shedding" from
// "experiment is broken".
type RetryError struct {
	Attempts   int
	LastStatus int // 0 when the last failure was a transport error
	LastErr    error
	LastBody   string

	// retryAfter carries the last response's Retry-After between attempts.
	retryAfter time.Duration
}

func (e *RetryError) Error() string {
	if e.LastErr != nil {
		return fmt.Sprintf("service client: %d attempts failed, last: %v", e.Attempts, e.LastErr)
	}
	return fmt.Sprintf("service client: %d attempts failed, last status %d: %s", e.Attempts, e.LastStatus, e.LastBody)
}

func (e *RetryError) Unwrap() error { return e.LastErr }

// Run POSTs one run request and retries until a non-retryable status
// arrives or MaxAttempts is exhausted. 2xx decodes into a RunResponse; 4xx
// fails immediately (the request itself is wrong); 5xx and transport
// errors back off and retry.
func (c *Client) Run(ctx context.Context, id string, cfg core.Config) (*RunResponse, error) {
	reqBody, err := json.Marshal(struct {
		Experiment string      `json:"experiment"`
		Config     core.Config `json:"config"`
	}{id, cfg})
	if err != nil {
		return nil, err
	}
	var out RunResponse
	err = c.retry(ctx, func() (*http.Response, error) {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/run", bytes.NewReader(reqBody))
		if rerr != nil {
			return nil, rerr
		}
		req.Header.Set("Content-Type", "application/json")
		return c.httpClient().Do(req)
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Experiments fetches GET /v1/experiments with the same retry policy.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	var out struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}
	err := c.retry(ctx, func() (*http.Response, error) {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/experiments", nil)
		if rerr != nil {
			return nil, rerr
		}
		return c.httpClient().Do(req)
	}, &out)
	if err != nil {
		return nil, err
	}
	return out.Experiments, nil
}

// SubmitJob POSTs a batch spec to /v1/jobs and returns the accepted job's
// initial status. Retrying a submission that actually landed creates a
// second job, but its cells are content-addressed: the duplicate resolves
// from the cache, so over-submission costs bookkeeping, not compute.
func (c *Client) SubmitJob(ctx context.Context, spec jobs.Spec) (*jobs.Status, error) {
	reqBody, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var out jobs.Status
	err = c.retry(ctx, func() (*http.Response, error) {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(reqBody))
		if rerr != nil {
			return nil, rerr
		}
		req.Header.Set("Content-Type", "application/json")
		return c.httpClient().Do(req)
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches GET /v1/jobs/{id}; withTables includes per-cell detail and
// the completed cells' tables.
func (c *Client) Job(ctx context.Context, id string, withTables bool) (*jobs.Status, error) {
	url := c.BaseURL + "/v1/jobs/" + id
	if !withTables {
		url += "?tables=0"
	}
	var out jobs.Status
	err := c.retry(ctx, func() (*http.Response, error) {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if rerr != nil {
			return nil, rerr
		}
		return c.httpClient().Do(req)
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// CancelJob DELETEs /v1/jobs/{id} and returns the post-cancel status.
// Cancellation is idempotent server-side, so retries are safe.
func (c *Client) CancelJob(ctx context.Context, id string) (*jobs.Status, error) {
	var out jobs.Status
	err := c.retry(ctx, func() (*http.Response, error) {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/jobs/"+id, nil)
		if rerr != nil {
			return nil, rerr
		}
		return c.httpClient().Do(req)
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls GET /v1/jobs/{id} (without tables) until the job leaves
// "running" or ctx expires, pacing polls with the client's deterministic
// backoff discipline capped at MaxDelay.
func (c *Client) WaitJob(ctx context.Context, id string) (*jobs.Status, error) {
	for poll := 1; ; poll++ {
		st, err := c.Job(ctx, id, false)
		if err != nil {
			return nil, err
		}
		if st.Status != jobs.JobRunning {
			return st, nil
		}
		if err := c.sleepCtx(ctx, c.backoff(poll, 0)); err != nil {
			return st, err
		}
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// retry drives one logical request to completion: issue, classify, back
// off, repeat. On success the body is decoded into out.
func (c *Client) retry(ctx context.Context, do func() (*http.Response, error), out any) error {
	attempts := c.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	last := &RetryError{}
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleepCtx(ctx, c.backoff(attempt, last.retryAfter)); err != nil {
				return err
			}
		}
		last.Attempts = attempt + 1

		resp, err := do()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err() // cancelled, not a server failure
			}
			last.LastErr, last.LastStatus, last.LastBody, last.retryAfter = err, 0, "", 0
			continue // transport errors are always retryable
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			last.LastErr, last.LastStatus, last.retryAfter = rerr, resp.StatusCode, 0
			continue
		}
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			if err := json.Unmarshal(body, out); err != nil {
				return fmt.Errorf("service client: decoding %d response: %w", resp.StatusCode, err)
			}
			return nil
		case resp.StatusCode >= 500:
			// Server-side failure (including 503 shed and 504 timeout):
			// retryable. Honor Retry-After when the server set one.
			last.LastErr, last.LastStatus, last.LastBody = nil, resp.StatusCode, string(body)
			last.retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			continue
		default:
			// 4xx: the request itself is invalid; retrying cannot help.
			return fmt.Errorf("service client: status %d: %s", resp.StatusCode, body)
		}
	}
	return last
}

// backoff computes the delay before the given attempt (attempt >= 1):
// BaseDelay·2^(attempt-1), capped at MaxDelay, scaled by a deterministic
// jitter factor in [0.5, 1), and floored at the server's Retry-After.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	base := c.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := c.MaxDelay
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	if c.jitter == nil {
		c.jitter = xrand.New(xrand.Split(c.Seed, "service/client-jitter"))
	}
	d = time.Duration(float64(d) * (0.5 + 0.5*c.jitter.Float64()))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

func (c *Client) sleepFn() func(time.Duration) {
	if c.sleep != nil {
		return c.sleep
	}
	return time.Sleep
}

// sleepCtx runs one backoff sleep concurrently with ctx cancellation, so a
// cancelled context interrupts the wait immediately instead of serving out
// the full delay (up to MaxDelay). The sleep itself — injectable by tests —
// runs on a helper goroutine; on cancellation it finishes in the background,
// which is harmless for time.Sleep and instant for test fakes.
func (c *Client) sleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sleep := c.sleepFn()
	done := make(chan struct{})
	//lint:ignore norecover time.Sleep and the test fakes (slice append, no-op) perform no panicking operation; close of a local channel closed nowhere else cannot panic
	go func() {
		sleep(d)
		close(done)
	}()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
		return nil
	}
}

// parseRetryAfter reads the integer-seconds form of Retry-After (the only
// form this server emits); anything else falls back to pure backoff.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Is makes errors.Is(err, ErrOverloaded) true on terminal RetryErrors
// whose last response was a shed, so callers can tell sustained overload
// apart from real failures without parsing bodies.
func (e *RetryError) Is(target error) bool {
	return target == ErrOverloaded && e.LastStatus == http.StatusServiceUnavailable
}
