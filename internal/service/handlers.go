package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/jobs"
)

// runRequest is the POST /v1/run body. Absent config fields keep the
// defaults the committed EXPERIMENTS.md numbers were produced with, so
// {"experiment":"E3"} alone is a valid request.
type runRequest struct {
	Experiment string      `json:"experiment"`
	Config     core.Config `json:"config"`
}

// RunResponse is the POST /v1/run reply. Table carries the experiment's
// versioned Table JSON verbatim — the same bytes whether the run was fresh,
// coalesced onto a concurrent identical run, or replayed from the cache;
// only the envelope's cached/coalesced markers differ.
type RunResponse struct {
	SchemaVersion int             `json:"schema_version"`
	Key           string          `json:"key"` // content address (core.CacheKey)
	Cached        bool            `json:"cached"`
	Coalesced     bool            `json:"coalesced,omitempty"`
	Experiment    string          `json:"experiment"`
	Config        core.Config     `json:"config"`
	Table         json.RawMessage `json:"table"`
}

// errorResponse is every non-2xx body. Field names the offending config
// field (JSON name) when the error is a typed core.ConfigError.
type errorResponse struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

// jsonFieldForConfigField maps ConfigError.Field to the request's JSON
// field, the service-side analogue of the CLI's field → flag map.
var jsonFieldForConfigField = map[string]string{
	"Seed":   "seed",
	"Trials": "trials",
	"MaxK":   "max_k",
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore errcheck the client is gone if encoding to it fails; nothing to do
	_ = enc.Encode(v)
}

// writeError maps an error onto a status and a typed body.
func writeError(w http.ResponseWriter, err error) {
	resp := errorResponse{Error: err.Error()}
	status := http.StatusInternalServerError
	var ce *core.ConfigError
	switch {
	case errors.As(err, &ce):
		status = http.StatusBadRequest
		resp.Field = jsonFieldForConfigField[ce.Field]
	case errors.Is(err, core.ErrUnknownExperiment):
		status = http.StatusNotFound
	case errors.Is(err, jobs.ErrBadSpec):
		status = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded), errors.Is(err, jobs.ErrTooManyJobs):
		// Shed by the bounded admission queue (or the jobs admission bound):
		// tell well-behaved clients when to come back instead of letting
		// them hammer a loaded server.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, jobs.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The requester went away while queued or coalesced; the status is
		// for the log's benefit only.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// handleRun serves POST /v1/run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	// Chaos: the handler-level injection point fires before any request
	// state exists, so a panic here proves the recovery middleware alone
	// keeps the process alive; errors map to a plain 500.
	if err := fault.Fire(fault.PointServiceHandler); err != nil {
		writeError(w, err)
		return
	}
	req := runRequest{Config: core.DefaultConfig()}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid request body: " + err.Error()})
		return
	}
	if req.Experiment == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: `missing "experiment"`})
		return
	}
	// Validate up front so malformed requests fail fast with a field name
	// instead of consuming a semaphore slot.
	if err := req.Config.Validate(); err != nil {
		writeError(w, err)
		return
	}
	if _, ok := core.Lookup(req.Experiment); !ok {
		writeError(w, fmt.Errorf("%w %q", core.ErrUnknownExperiment, req.Experiment))
		return
	}

	body, key, oc, err := s.runCached(r.Context(), req.Experiment, req.Config)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{
		SchemaVersion: core.SnapshotSchemaVersion,
		Key:           key,
		Cached:        oc == outcomeHit,
		Coalesced:     oc == outcomeCoalesced,
		Experiment:    req.Experiment,
		Config:        req.Config,
		Table:         body,
	})
}

// ExperimentInfo is one GET /v1/experiments row, mirroring `cadaptive -list`.
type ExperimentInfo struct {
	ID      string `json:"id"`
	Source  string `json:"source"`
	Summary string `json:"summary"`
}

// handleExperiments serves GET /v1/experiments.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	exps := core.Experiments()
	out := make([]ExperimentInfo, len(exps))
	for i, e := range exps {
		out[i] = ExperimentInfo{ID: e.ID, Source: e.Source, Summary: e.Summary}
	}
	writeJSON(w, http.StatusOK, struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}{out})
}

// handleJobSubmit serves POST /v1/jobs: validate, admit, journal, return
// 202 with the job's initial status — the cells run in the background.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "invalid job spec: " + err.Error()})
		return
	}
	st, err := s.jobs.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleJobList serves GET /v1/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []*jobs.Status `json:"jobs"`
	}{s.jobs.List()})
}

// handleJobGet serves GET /v1/jobs/{id}: progress counts plus per-cell
// detail with the completed cells' tables — partial results stream out
// while the job still runs. ?tables=0 omits the cell detail.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	withCells := r.URL.Query().Get("tables") != "0"
	st, ok := s.jobs.Status(r.PathValue("id"), withCells)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobCancel serves DELETE /v1/jobs/{id}: pending cells cancel
// immediately, in-flight cells are interrupted, and the cancellation is
// journaled so a restart does not resurrect the job.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job " + r.PathValue("id")})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleHealthz serves GET /healthz. Once Shutdown has begun it answers
// 503 "draining" so load balancers stop routing to this instance while its
// in-flight runs finish. The body carries the admission queue depth and
// the active batch-job count so load balancers can shed proportionally
// *before* requests start bouncing off the 503 admission path.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, body := http.StatusOK, "ok"
	if s.Draining() {
		status, body = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, status, struct {
		Status     string `json:"status"`
		QueueDepth int64  `json:"queue_depth"`
		ActiveJobs int64  `json:"active_jobs"`
	}{body, s.met.queued.Load(), s.jobs.Ledger().JobsActive})
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK,
		s.met.snapshot(s.cache.stats(), s.opts, s.workers(), s.Draining(), s.jobs.Ledger()))
}
