package service

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// resultCache is the service's content-addressed result store: rendered
// result bodies keyed by core.CacheKey hashes, bounded by an LRU policy
// (same intrusive map + doubly-linked-list shape as internal/paging.LRU,
// but over opaque byte slices), with singleflight de-duplication so that
// concurrent identical requests run the underlying experiment exactly once.
//
// Because experiments are deterministic pure functions of the hashed
// inputs, a cached body is not an approximation of a fresh run — it is
// byte-identical to one, so the cache can serve it forever; eviction exists
// only to bound memory.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*cacheEntry
	head     *cacheEntry // most recently used
	tail     *cacheEntry // least recently used
	inflight map[string]*flight
}

type cacheEntry struct {
	key        string
	body       []byte
	prev, next *cacheEntry
}

// flight is one in-progress computation of a key. Followers block on done
// and then read body/err; both are written exactly once, before close.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// outcome says how a do call was served, for the /metrics counters.
type outcome int

const (
	outcomeHit       outcome = iota // served from the cache
	outcomeMiss                     // ran the computation (and filled the cache)
	outcomeCoalesced                // waited on another caller's identical run
	outcomeShed                     // rejected at admission: queue full, never ran
)

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		entries:  make(map[string]*cacheEntry),
		inflight: make(map[string]*flight),
	}
}

// len reports the number of cached bodies.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// do returns the body for key, computing it with fn on a miss. Exactly one
// caller per key runs fn at a time; concurrent callers for the same key
// coalesce onto that run and share its result. Errors are returned to every
// coalesced caller but never cached — the next request retries. The
// returned body is shared and must not be mutated.
//
// ctx bounds only the *waiting* of a coalesced caller; the computation
// itself runs under the leader's context, because its result is shared.
func (c *resultCache) do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, outcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.moveToFront(e)
		c.mu.Unlock()
		return e.body, outcomeHit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.body, outcomeCoalesced, f.err
		case <-ctx.Done():
			return nil, outcomeCoalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	// Contain fn panics here, at the singleflight boundary: if the panic
	// escaped, the deferred cleanup below would never run, the in-flight
	// entry would leak, and every future caller of this key would block
	// forever on a flight that can no longer complete. Converting to an
	// error instead fails this request (and its coalesced followers) while
	// the key stays retryable.
	func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("service: run for key %s panicked: %v\n%s", key, r, debug.Stack())
			}
		}()
		f.body, f.err = fn()
	}()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insert(key, f.body)
	}
	c.mu.Unlock()
	close(f.done)
	return f.body, outcomeMiss, f.err
}

// insert adds a body at the front, evicting from the tail past capacity.
// Callers hold c.mu.
func (c *resultCache) insert(key string, body []byte) {
	if e, ok := c.entries[key]; ok {
		// Possible if an entry was evicted and recomputed concurrently;
		// both computations produced identical bytes, keep the fresh ones.
		e.body = body
		c.moveToFront(e)
		return
	}
	e := &cacheEntry{key: key, body: body}
	c.entries[key] = e
	c.pushFront(e)
	for len(c.entries) > c.capacity {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.key)
	}
}

func (c *resultCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *resultCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *resultCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
