package service

import (
	"context"
	"fmt"
	"math/bits"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/paging"
)

// shardedCache is the service's content-addressed result store: rendered
// result bodies keyed by core.CacheKey hashes, spread over N independent
// shards so concurrent requests for different keys never contend on one
// mutex. Each shard owns its own lock, its own singleflight table, and its
// own eviction policy — a paging.EvictionPolicy, which means the
// dense-remapped LRU/FIFO kernels the simulator measures are the exact
// engines that order production evictions.
//
// Because experiments are deterministic pure functions of the hashed
// inputs, a cached body is not an approximation of a fresh run — it is
// byte-identical to one, so the cache could serve it forever; eviction
// exists only to bound memory (an entry-count bound and a bytes bound, the
// sum of body lengths) and TTL exists only for operators who want an upper
// bound on replay age. With stale-while-revalidate enabled, a body past
// its TTL but inside the SWR window is served as-is while a single
// background refresh recomputes it through the shard's singleflight.
type shardedCache struct {
	cfg       cacheConfig
	shardBits uint // log2(len(shards))
	disabled  bool // entry or bytes bound of 0: singleflight only, no storing
	shards    []*cacheShard
}

// cacheConfig fixes a shardedCache's shape. The service's Options maps
// onto it in New; tests build it directly.
type cacheConfig struct {
	// shards is the shard count; it is rounded up to a power of two so
	// shard selection is a bit shift of the key's top bits.
	shards int
	// maxEntries and maxBytes bound the whole cache (they are split evenly
	// across shards, rounded up). Either being 0 disables caching: do()
	// still collapses concurrent identical runs, but nothing is stored —
	// the successor semantics of the old capacity<=0 behaviour, where
	// insert immediately evicted the entry it had just added.
	maxEntries int64
	maxBytes   int64
	// ttl bounds an entry's age; 0 means entries never expire. swr extends
	// ttl with a stale-while-revalidate window: a body older than ttl but
	// younger than ttl+swr is served stale while one background refresh
	// recomputes it.
	ttl time.Duration
	swr time.Duration
	// policy names the per-shard eviction policy — any registered
	// replacement kernel ("lru", "fifo", "arc", "2q"; see
	// paging.PolicyNames).
	policy string
	// clock is the injected time source for TTL bookkeeping. Required when
	// ttl > 0; never called otherwise.
	clock func() time.Time
}

// cacheShard is one lock's worth of the cache. Entries are indexed two
// ways: by key for lookup, and by a dense int64 ID for the eviction
// policy, whose kernels want the compact universes the paging package is
// built around. IDs are recycled through a free list, so the dense side
// stays as small as the shard's peak entry count.
type cacheShard struct {
	mu sync.Mutex
	//lint:guardedby mu
	entries map[string]*cacheEntry
	//lint:guardedby mu
	byID []*cacheEntry
	//lint:guardedby mu
	freeIDs []int64
	//lint:guardedby mu
	policy paging.EvictionPolicy
	//lint:guardedby mu
	bytes int64 // sum of resident body lengths
	//lint:guardedby mu
	inflight map[string]*flight

	maxEntries int64
	maxBytes   int64

	// Per-shard counters, aggregated into /metrics. Atomics because hits/
	// misses/coalesced are recorded by the server after do() returns,
	// outside the shard lock.
	hits        atomic.Int64
	misses      atomic.Int64
	coalesced   atomic.Int64
	staleServed atomic.Int64
	refreshes   atomic.Int64
	evictions   atomic.Int64
	expired     atomic.Int64
}

type cacheEntry struct {
	key     string
	id      int64 // dense policy ID
	body    []byte
	expires time.Time // zero when TTL is disabled
}

// flight is one in-progress computation of a key — a leader's run or a
// stale-while-revalidate refresh. Followers block on done and then read
// body/err; both are written exactly once, before close.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// outcome says how a do call was served, for the /metrics counters.
type outcome int

const (
	outcomeHit       outcome = iota // served from the cache (fresh or stale-while-revalidate)
	outcomeMiss                     // ran the computation (and filled the cache)
	outcomeCoalesced                // waited on another caller's identical run
	outcomeShed                     // rejected at admission: queue full, never ran
)

func newShardedCache(cfg cacheConfig) (*shardedCache, error) {
	if cfg.shards < 1 {
		return nil, fmt.Errorf("service: cache shards %d < 1", cfg.shards)
	}
	if cfg.maxEntries < 0 || cfg.maxBytes < 0 {
		return nil, fmt.Errorf("service: negative cache bound (entries %d, bytes %d)", cfg.maxEntries, cfg.maxBytes)
	}
	if cfg.ttl < 0 || cfg.swr < 0 {
		return nil, fmt.Errorf("service: negative cache TTL/SWR (%v, %v)", cfg.ttl, cfg.swr)
	}
	if cfg.swr > 0 && cfg.ttl == 0 {
		return nil, fmt.Errorf("service: stale-while-revalidate window %v without a TTL", cfg.swr)
	}
	if cfg.ttl > 0 && cfg.clock == nil {
		return nil, fmt.Errorf("service: cache TTL %v requires an injected clock", cfg.ttl)
	}
	if cfg.policy == "" {
		cfg.policy = "lru"
	}
	// Power-of-two shard count: selection is then a shift of the key's top
	// bits, and every key maps to exactly one shard by construction.
	n := 1 << uint(bits.Len(uint(cfg.shards-1)))
	c := &shardedCache{
		cfg:       cfg,
		shardBits: uint(bits.TrailingZeros(uint(n))),
		disabled:  cfg.maxEntries == 0 || cfg.maxBytes == 0,
		shards:    make([]*cacheShard, n),
	}
	perEntries := (cfg.maxEntries + int64(n) - 1) / int64(n)
	perBytes := (cfg.maxBytes + int64(n) - 1) / int64(n)
	for i := range c.shards {
		pol, err := paging.NewPolicy(cfg.policy)
		if err != nil {
			return nil, err
		}
		c.shards[i] = &cacheShard{
			entries:    make(map[string]*cacheEntry),
			inflight:   make(map[string]*flight),
			policy:     pol,
			maxEntries: perEntries,
			maxBytes:   perBytes,
		}
	}
	return c, nil
}

// shardFor routes a key to its shard: the top shardBits bits of the
// SHA-256 the key spells in hex. Routing is a pure function of the key —
// no state, no locks — so the same key always lands on the same shard and
// two concurrent requests for it always meet in the same singleflight
// table. Keys that are not 64-char hex (tests, future key schemes) fall
// back to an FNV-1a hash of the raw string, keeping the same pure-function
// guarantee.
func (c *shardedCache) shardFor(key string) int {
	if c.shardBits == 0 {
		return 0
	}
	h, ok := hexPrefix64(key)
	if !ok {
		h = fnv1a(key)
	}
	return int(h >> (64 - c.shardBits))
}

// hexPrefix64 parses the first 16 hex digits of key as a big-endian
// uint64 — the top 64 bits of a SHA-256 rendered in hex.
func hexPrefix64(key string) (uint64, bool) {
	if len(key) < 16 {
		return 0, false
	}
	var h uint64
	for i := 0; i < 16; i++ {
		var d uint64
		switch ch := key[i]; {
		case ch >= '0' && ch <= '9':
			d = uint64(ch - '0')
		case ch >= 'a' && ch <= 'f':
			d = uint64(ch-'a') + 10
		case ch >= 'A' && ch <= 'F':
			d = uint64(ch-'A') + 10
		default:
			return 0, false
		}
		h = h<<4 | d
	}
	return h, true
}

func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// len reports the number of cached bodies across all shards.
func (c *shardedCache) len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// record folds a request outcome into its key's shard counters. Sheds are
// admission-level and belong to the server's metrics, not to a shard.
func (c *shardedCache) record(key string, oc outcome) {
	sh := c.shards[c.shardFor(key)]
	switch oc {
	case outcomeHit:
		sh.hits.Add(1)
	case outcomeMiss:
		sh.misses.Add(1)
	case outcomeCoalesced:
		sh.coalesced.Add(1)
	}
}

// freshness classifies an entry against the injected clock.
type freshness int

const (
	fresh         freshness = iota // inside TTL (or TTL disabled): serve it
	staleServable                  // past TTL, inside the SWR window: serve stale, refresh once
	expired                        // past TTL+SWR: treat as absent
)

func (c *shardedCache) freshnessOf(e *cacheEntry) freshness {
	if c.cfg.ttl == 0 {
		return fresh
	}
	now := c.cfg.clock()
	if now.Before(e.expires) {
		return fresh
	}
	if c.cfg.swr > 0 && now.Before(e.expires.Add(c.cfg.swr)) {
		return staleServable
	}
	return expired
}

// do returns the body for key, computing it with fn on a miss. Exactly one
// caller per key runs fn at a time; concurrent callers for the same key
// coalesce onto that run and share its result. Errors are returned to every
// coalesced caller but never cached — the next request retries. The
// returned body is shared and must not be mutated.
//
// ctx bounds only the *waiting* of a coalesced caller; the computation
// itself runs under the leader's context, because its result is shared.
func (c *shardedCache) do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, outcome, error) {
	sh := c.shards[c.shardFor(key)]
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		switch c.freshnessOf(e) {
		case fresh:
			sh.policy.Touch(e.id)
			body := e.body
			sh.mu.Unlock()
			return body, outcomeHit, nil
		case staleServable:
			sh.policy.Touch(e.id)
			body := e.body
			if _, running := sh.inflight[key]; !running {
				f := &flight{done: make(chan struct{})}
				sh.inflight[key] = f
				sh.refreshes.Add(1)
				go c.refresh(sh, key, f, fn)
			}
			sh.staleServed.Add(1)
			sh.mu.Unlock()
			return body, outcomeHit, nil
		default: // expired
			sh.removeLocked(e)
			sh.expired.Add(1)
		}
	}
	if f, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		select {
		case <-f.done:
			return f.body, outcomeCoalesced, f.err
		case <-ctx.Done():
			return nil, outcomeCoalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	sh.inflight[key] = f
	sh.mu.Unlock()

	f.body, f.err = runContained(key, fn)

	sh.mu.Lock()
	delete(sh.inflight, key)
	if f.err == nil {
		c.insertLocked(sh, key, f.body)
	}
	sh.mu.Unlock()
	close(f.done)
	return f.body, outcomeMiss, f.err
}

// refresh is the stale-while-revalidate background run: it recomputes key
// through the same flight mechanism a leader uses, so concurrent callers
// whose entry vanished mid-refresh coalesce onto it, and exactly one
// recomputation runs no matter how many stale hits observed the expiry.
// Panics inside fn are contained by runContained; the surrounding code
// performs no panicking operations, so the process stays alive.
func (c *shardedCache) refresh(sh *cacheShard, key string, f *flight, fn func() ([]byte, error)) {
	f.body, f.err = runContained(key, fn)
	sh.mu.Lock()
	delete(sh.inflight, key)
	if f.err == nil {
		c.insertLocked(sh, key, f.body) // replaces the stale body, resets expiry
	}
	sh.mu.Unlock()
	close(f.done)
}

// runContained runs fn with panic containment at the singleflight
// boundary: if the panic escaped, the flight cleanup would never run, the
// in-flight entry would leak, and every future caller of this key would
// block forever on a flight that can no longer complete. Converting to an
// error instead fails this request (and its coalesced followers) while
// the key stays retryable.
func runContained(key string, fn func() ([]byte, error)) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: run for key %s panicked: %v\n%s", key, r, debug.Stack())
		}
	}()
	return fn()
}

// expiry stamps a fill time against the TTL; the zero time means "never".
func (c *shardedCache) expiry() time.Time {
	if c.cfg.ttl == 0 {
		return time.Time{}
	}
	return c.cfg.clock().Add(c.cfg.ttl)
}

// insertLocked adds (or refreshes) a body and evicts past the shard's
// bounds. Callers hold sh.mu. The entry just inserted is never the
// eviction victim: a body too large to ever fit is simply not cached, and
// the overflow loop stops before reaching the newest entry.
//
//lint:locked mu
func (c *shardedCache) insertLocked(sh *cacheShard, key string, body []byte) {
	if c.disabled {
		return
	}
	n := int64(len(body))
	if e, ok := sh.entries[key]; ok {
		// Possible if an entry was evicted and recomputed concurrently, or
		// refreshed by stale-while-revalidate; both computations produced
		// equivalent bytes, keep the fresh ones and the fresh expiry.
		if n > sh.maxBytes {
			sh.removeLocked(e) // grew past what this shard may ever hold
			return
		}
		sh.bytes += n - int64(len(e.body))
		e.body = body
		e.expires = c.expiry()
		sh.policy.Touch(e.id)
		sh.evictOverflowLocked(e.id)
		return
	}
	if n > sh.maxBytes {
		return // can never fit; caching it would evict everything for nothing
	}
	e := &cacheEntry{key: key, body: body, expires: c.expiry()}
	if k := len(sh.freeIDs); k > 0 {
		e.id = sh.freeIDs[k-1]
		sh.freeIDs = sh.freeIDs[:k-1]
		sh.byID[e.id] = e
	} else {
		e.id = int64(len(sh.byID))
		sh.byID = append(sh.byID, e)
	}
	sh.entries[key] = e
	sh.policy.Insert(e.id)
	sh.bytes += n
	sh.evictOverflowLocked(e.id)
}

// evictOverflowLocked evicts policy victims until both bounds hold again,
// never evicting the entry identified by keep. Callers hold sh.mu.
//
//lint:locked mu
func (sh *cacheShard) evictOverflowLocked(keep int64) {
	for sh.bytes > sh.maxBytes || int64(len(sh.entries)) > sh.maxEntries {
		v := sh.policy.Victim()
		if v == keep {
			// Segmented policies (ARC, 2Q) can nominate the just-inserted
			// entry while older residents remain — a fresh insert sits in
			// the probation segment, which is exactly where those policies
			// evict from first. Lift it out, take the next victim, and put
			// it back (a fresh insert's position is re-created exactly by
			// Insert, so the policy state is unchanged).
			sh.policy.Remove(keep)
			v = sh.policy.Victim()
			sh.policy.Insert(keep)
		}
		if v < 0 {
			return
		}
		sh.removeLocked(sh.byID[v])
		sh.evictions.Add(1)
	}
}

// removeLocked forgets an entry everywhere: key map, dense index, policy,
// bytes ledger. Callers hold sh.mu.
//
//lint:locked mu
func (sh *cacheShard) removeLocked(e *cacheEntry) {
	delete(sh.entries, e.key)
	sh.policy.Remove(e.id)
	sh.bytes -= int64(len(e.body))
	sh.byID[e.id] = nil
	sh.freeIDs = append(sh.freeIDs, e.id)
}

// cacheStats is a point-in-time aggregate view of the cache for /metrics.
type cacheStats struct {
	Hits, Misses, Coalesced int64
	StaleServed, Refreshes  int64
	Evictions, Expired      int64
	Entries                 int
	Bytes                   int64
	Shards                  []shardStats
}

// shardStats is one shard's slice of cacheStats.
type shardStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Coalesced   int64 `json:"coalesced"`
	StaleServed int64 `json:"stale_served"`
	Refreshes   int64 `json:"refreshes"`
	Evictions   int64 `json:"evictions"`
	Expired     int64 `json:"expired"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
}

// stats snapshots every shard. The totals are sums of the per-shard
// counters — the same numbers, so the conservation invariant the chaos
// suite asserts (hits+misses+coalesced+sheds == requests) survives
// sharding by construction.
func (c *shardedCache) stats() cacheStats {
	var s cacheStats
	s.Shards = make([]shardStats, len(c.shards))
	for i, sh := range c.shards {
		st := &s.Shards[i]
		st.Hits = sh.hits.Load()
		st.Misses = sh.misses.Load()
		st.Coalesced = sh.coalesced.Load()
		st.StaleServed = sh.staleServed.Load()
		st.Refreshes = sh.refreshes.Load()
		st.Evictions = sh.evictions.Load()
		st.Expired = sh.expired.Load()
		sh.mu.Lock()
		st.Entries = len(sh.entries)
		st.Bytes = sh.bytes
		sh.mu.Unlock()
		s.Hits += st.Hits
		s.Misses += st.Misses
		s.Coalesced += st.Coalesced
		s.StaleServed += st.StaleServed
		s.Refreshes += st.Refreshes
		s.Evictions += st.Evictions
		s.Expired += st.Expired
		s.Entries += st.Entries
		s.Bytes += st.Bytes
	}
	return s
}
