package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// BenchmarkShardedCacheLoad measures do() throughput under goroutine
// contention at different shard counts — the tentpole's reason to exist.
// SetParallelism(32) puts 32 goroutines per GOMAXPROCS on the cache (the
// spec's 16–64 band on a 1-CPU host), hammering a hot working set of 64
// keys with a ~97% hit rate so the measured path is the lock handoff, not
// the fill. BENCH_pr7.json records the results; on a 1-CPU container the
// shard win is lock-convoy relief, not parallel speedup, so the curve is
// expected to be modest there (see the JSON's note).
func BenchmarkShardedCacheLoad(b *testing.B) {
	const nKeys = 64
	keys := make([]string, nKeys)
	bodies := make([][]byte, nKeys)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("bench-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
		bodies[i] = make([]byte, 256)
	}
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			// Entry bound well above nKeys: the global bound splits into
			// per-shard bounds, and hash skew over 64 keys would otherwise
			// overflow the fuller shards and turn the benchmark into an
			// eviction-churn measurement instead of a lock one.
			c, err := newShardedCache(cacheConfig{
				shards: shards, maxEntries: 16 * nKeys, maxBytes: 1 << 30,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var seq atomic.Uint64
			b.SetParallelism(32)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Per-goroutine stride over the key space: every goroutine
				// touches every key, so shards only help if the locks do.
				i := seq.Add(1)
				for pb.Next() {
					i++
					k := int(i % nKeys)
					_, _, err := c.do(ctx, keys[k], func() ([]byte, error) {
						return bodies[k], nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// TestServiceTablesIdenticalAcrossShardCounts backs BENCH_pr7.json's
// tables_identical_across_shard_counts claim: the shard count is a pure
// performance knob — the same experiment at shards 1, 4, and 16 produces
// byte-identical tables up to the measured timing metrics.
func TestServiceTablesIdenticalAcrossShardCounts(t *testing.T) {
	normalize := func(raw []byte) string {
		var tb core.Table
		if err := json.Unmarshal(raw, &tb); err != nil {
			t.Fatalf("response table is not a valid core.Table: %v", err)
		}
		tb.Metrics = core.Metrics{}
		out, err := json.Marshal(&tb)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	cfg := core.DefaultConfig()
	cfg.Seed, cfg.Trials, cfg.MaxK = 11, 2, 4

	var want string
	for _, shards := range []int{1, 4, 16} {
		s, err := New(Options{Addr: "127.0.0.1:0", CacheEntries: 16, CacheShards: shards})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(s.Handler())
		c := NewClient(srv.URL)
		c.HTTPClient = srv.Client()
		resp, err := c.Run(context.Background(), "E1", cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		srv.Close()
		got := normalize(resp.Table)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("shards=%d: table differs from shards=1 baseline", shards)
		}
	}
}
