// Package service implements cadaptived, the long-running HTTP front-end
// over the experiment engine. It turns the one-shot CLI reproduction into a
// query service: clients POST (experiment, config, seed) and get back the
// same versioned Table JSON the CLI emits, served from a content-addressed
// result cache whenever the identical run has been computed before.
//
// The design leans entirely on PR 1's determinism guarantee: every
// experiment is a pure function of (schema version, experiment ID, seed,
// trials, maxK), so a canonical hash of those inputs (core.CacheKey) is a
// sound address for the result bytes. On top of that the server adds
// singleflight de-duplication (concurrent identical requests run once), a
// semaphore bounding how many distinct experiments execute at a time,
// per-run timeouts threaded as context cancellation into engine.Map, and
// graceful shutdown that drains in-flight runs.
//
// Failure model. The server is built to degrade, never die: a panic
// anywhere in request handling is contained by recovery middleware (500,
// counted in /metrics), a panic inside a run is contained at the
// singleflight boundary so coalesced waiters get an error instead of a
// deadlock, and when every run slot is busy a bounded admission queue
// sheds the overflow with 503 + Retry-After instead of queueing without
// limit. The injection points of internal/fault are compiled into these
// exact paths, so the chaos suite exercises the same code production runs.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/jobs"
)

// ErrOverloaded is returned (and mapped to 503 + Retry-After) when every
// run slot is busy and the admission queue is full: the request is shed
// immediately instead of waiting unboundedly. Deterministic clients
// (Client) back off and retry on it.
var ErrOverloaded = errors.New("service: overloaded (run queue full)")

// Options configures a Server. The zero value of any field selects its
// default.
type Options struct {
	// Addr is the listen address for ListenAndServe (default ":8344").
	Addr string
	// CacheEntries bounds the result cache's entry count (default 512,
	// split across shards). A negative value disables caching entirely —
	// requests still coalesce through singleflight, but nothing is stored.
	// (The zero value must keep meaning "default", so "off" is the
	// negative opt-in, mirroring RunTimeout; the cadaptived flag spells it
	// `-cache 0` and maps it here.)
	CacheEntries int
	// CacheBytes bounds the sum of cached body lengths (default 64 MiB,
	// split across shards). Bodies, not entries, are what memory is spent
	// on — a dim-4096 E9 table is ~1000× an E1 smoke table. Negative
	// disables caching, exactly as for CacheEntries.
	CacheBytes int64
	// CacheShards is the shard count, rounded up to a power of two
	// (default: the smallest power of two >= 4×GOMAXPROCS). Each shard has
	// its own mutex, singleflight table and eviction policy, so requests
	// for different keys contend only 1/Nth as often.
	CacheShards int
	// CachePolicy names the per-shard eviction policy: any registered
	// paging kernel ("lru" — the default — "fifo", "arc", "2q"; see
	// paging.PolicyNames), promoted from simulator to engine.
	CachePolicy string
	// CacheTTL bounds a cached body's age; 0 (the default) means entries
	// never expire, which is sound because bodies are pure functions of
	// their key. Operators cap replay age anyway when schema migrations or
	// disk forensics matter.
	CacheTTL time.Duration
	// CacheSWR is the stale-while-revalidate window past CacheTTL: a body
	// older than TTL but younger than TTL+SWR is served stale while a
	// single background refresh recomputes it. Requires CacheTTL > 0.
	CacheSWR time.Duration
	// Clock injects the time source for TTL bookkeeping (default wall
	// clock). Tests drive expiry deterministically through it; nothing
	// else in the server reads time through Options.
	Clock func() time.Time
	// MaxConcurrentRuns bounds how many distinct experiment runs execute at
	// once (default 2). Each run already fans out across the shared engine
	// pool internally, so a small bound keeps the pool from thrashing
	// between unrelated requests.
	MaxConcurrentRuns int
	// MaxQueuedRuns bounds how many runs may *wait* for a slot beyond
	// MaxConcurrentRuns (default 32). When the queue is full, further run
	// requests are shed with 503 + Retry-After rather than queued without
	// limit — a loaded server must stay answerable.
	MaxQueuedRuns int
	// RunTimeout bounds a single experiment run. It is threaded as context
	// cancellation into the engine fan-out; a run that exceeds it returns
	// 504 and is not cached. Zero selects the 60s default; a negative
	// value means "no timeout" — runs are unbounded (an explicit opt-in,
	// because the zero value must keep meaning "default", not "forever").
	RunTimeout time.Duration
	// JobsDir is the batch-jobs journal directory; "" (the default) runs
	// jobs volatile — they work, but do not survive a restart.
	JobsDir string
	// MaxJobs bounds concurrently active batch jobs; submissions beyond it
	// are shed 503. Default 8; negative rejects every submission.
	MaxJobs int
	// JobRetries is the per-cell attempt budget before a batch cell is
	// poisoned and its job degrades to "partial". Default 3.
	JobRetries int
	// JobConcurrency bounds batch cells in flight across all jobs; batch
	// work shares the run admission queue with interactive requests, so
	// this caps how much of that queue background work may occupy.
	// Default 2.
	JobConcurrency int
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = ":8344"
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 512
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 64 << 20
	}
	if o.CacheShards == 0 {
		o.CacheShards = 4 * runtime.GOMAXPROCS(0)
	}
	if o.CachePolicy == "" {
		o.CachePolicy = "lru"
	}
	if o.Clock == nil {
		o.Clock = time.Now //lint:ignore notime default TTL clock; results never read it, and tests inject a fake
	}
	if o.MaxConcurrentRuns == 0 {
		o.MaxConcurrentRuns = 2
	}
	if o.MaxQueuedRuns == 0 {
		o.MaxQueuedRuns = 32
	}
	if o.RunTimeout == 0 {
		o.RunTimeout = 60 * time.Second
	}
	if o.MaxJobs == 0 {
		o.MaxJobs = 8
	}
	if o.JobRetries == 0 {
		o.JobRetries = 3
	}
	if o.JobConcurrency == 0 {
		o.JobConcurrency = 2
	}
	return o
}

// Server is the cadaptived HTTP service.
type Server struct {
	opts     Options
	cache    *shardedCache
	sem      chan struct{} // bounds concurrent experiment runs
	met      metrics
	jobs     *jobs.Manager
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped in recovery middleware
	http     *http.Server
	draining atomic.Bool // set before http.Server.Shutdown begins

	// runFn is core.RunContext; tests swap in controllable runs.
	runFn func(ctx context.Context, id string, cfg core.Config) (*core.Table, error)
}

// New validates opts and assembles a server (not yet listening).
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.MaxConcurrentRuns < 1 {
		return nil, fmt.Errorf("service: MaxConcurrentRuns %d < 1", opts.MaxConcurrentRuns)
	}
	if opts.MaxQueuedRuns < 1 {
		return nil, fmt.Errorf("service: MaxQueuedRuns %d < 1 (shedding needs at least one queue slot)", opts.MaxQueuedRuns)
	}
	if opts.CacheShards < 1 {
		return nil, fmt.Errorf("service: CacheShards %d < 1", opts.CacheShards)
	}
	// Negative bounds are the "caching off" opt-in; the cache constructor
	// spells off as 0 and rejects negatives, so clamp here.
	entries, bytes := int64(opts.CacheEntries), opts.CacheBytes
	if entries < 0 || bytes < 0 {
		entries, bytes = 0, 0
	}
	cache, err := newShardedCache(cacheConfig{
		shards:     opts.CacheShards,
		maxEntries: entries,
		maxBytes:   bytes,
		ttl:        opts.CacheTTL,
		swr:        opts.CacheSWR,
		policy:     opts.CachePolicy,
		clock:      opts.Clock,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:  opts,
		cache: cache,
		sem:   make(chan struct{}, opts.MaxConcurrentRuns),
		runFn: core.RunContext,
	}
	// Batch cells run through the exact cached path interactive requests
	// use: they share the content-addressed cache, the singleflight, and
	// the bounded admission queue, so duplicate submissions and retried
	// cells are free, and admission sheds surface to the jobs layer as
	// transient (retry without burning the cell's attempt budget).
	jm, err := jobs.Open(jobs.Options{
		Dir:             opts.JobsDir,
		MaxJobs:         opts.MaxJobs,
		Retries:         opts.JobRetries,
		CellConcurrency: opts.JobConcurrency,
		Transient:       func(err error) bool { return errors.Is(err, ErrOverloaded) },
		Run: func(ctx context.Context, id string, cfg core.Config) ([]byte, error) {
			body, _, _, err := s.runCached(ctx, id, cfg)
			return body, err
		},
	})
	if err != nil {
		return nil, err
	}
	s.jobs = jm
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.handler = s.withRecovery(s.mux)
	s.http = &http.Server{Addr: opts.Addr, Handler: s.handler}
	return s, nil
}

// Handler exposes the route table — wrapped in the panic-isolating
// middleware, exactly as ListenAndServe serves it (httptest servers,
// embedding).
func (s *Server) Handler() http.Handler { return s.handler }

// withRecovery is the outermost middleware: a panic anywhere below it —
// handler code, encoding, an injected service.handler fault — becomes a
// 500 with a JSON body and a bumped panic counter, never a dead process.
// net/http would recover a handler panic too, but by killing the
// connection mid-response; this keeps the reply well-formed for clients
// that retry on status codes.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.met.panics.Add(1)
				// If the handler already wrote a header this WriteHeader is
				// superfluous (logged by net/http, harmless); the common
				// panic-before-write case gets a clean 500.
				writeJSON(w, http.StatusInternalServerError, errorResponse{
					Error: fmt.Sprintf("internal error: panic: %v", rec),
				})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// ListenAndServe serves on Options.Addr until Shutdown or failure.
func (s *Server) ListenAndServe() error { return s.http.ListenAndServe() }

// Serve serves on l until Shutdown or failure.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Shutdown marks the server draining (so /healthz flips to 503 and load
// balancers stop routing here), then stops accepting new connections and
// blocks until every in-flight request — including the experiment run
// inside it — completes, or ctx expires. Runs are never killed by
// shutdown: their handlers finish and their results land in the cache
// before Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Drain the batch layer first: no new cells dispatch, in-flight cells
	// get the remaining budget to finish and journal. Close writes no
	// terminal records, so interrupted jobs resume on the next start —
	// shutdown is indistinguishable from a crash as far as the journal is
	// concerned, by design.
	jerr := s.jobs.Close(ctx)
	if err := s.http.Shutdown(ctx); err != nil {
		return err
	}
	return jerr
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// acquireRunSlot admits one run through the bounded queue + semaphore.
// A free slot is taken immediately; otherwise the caller waits in the
// admission queue — unless it is full, in which case the request is shed
// with ErrOverloaded. Returns a release func on success.
func (s *Server) acquireRunSlot(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	default:
	}
	if q := s.met.queued.Add(1); q > int64(s.opts.MaxQueuedRuns) {
		s.met.queued.Add(-1)
		return nil, fmt.Errorf("%w: %d runs in flight, %d queued", ErrOverloaded, len(s.sem), s.opts.MaxQueuedRuns)
	}
	defer s.met.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// runCached computes (or replays) the result body for one run request.
// reqCtx bounds queueing and coalesced waiting; the run itself executes
// under the server's RunTimeout, detached from the individual client,
// because its result is shared by every present and future request for the
// same key.
//
// Accounting contract (asserted by the chaos suite): every call increments
// requests and exactly one of hits / misses / coalesced / sheds, so
// hits + misses + coalesced + sheds == requests at every quiescent point.
func (s *Server) runCached(reqCtx context.Context, id string, cfg core.Config) ([]byte, string, outcome, error) {
	s.met.requests.Add(1)
	key := core.CacheKey(id, cfg)
	body, oc, err := s.cache.do(reqCtx, key, func() ([]byte, error) {
		release, aerr := s.acquireRunSlot(reqCtx)
		if aerr != nil {
			return nil, aerr
		}
		defer release()

		if ferr := fault.Fire(fault.PointServiceRun); ferr != nil {
			return nil, ferr
		}

		s.met.runsStarted.Add(1)
		s.met.inFlight.Add(1)
		defer s.met.inFlight.Add(-1)

		// RunTimeout <= 0 means unbounded (Options documents the opt-in);
		// either way the run is detached from the individual client,
		// because its result is shared.
		runCtx := context.WithoutCancel(reqCtx)
		if s.opts.RunTimeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(runCtx, s.opts.RunTimeout)
			defer cancel()
		}
		t, err := s.runFn(runCtx, id, cfg)
		if err != nil {
			s.met.runsFailed.Add(1)
			return nil, err
		}
		if ferr := fault.Fire(fault.PointServiceCache); ferr != nil {
			s.met.runsFailed.Add(1)
			return nil, ferr
		}
		s.met.recordRun(t)
		return json.Marshal(t)
	})
	if oc == outcomeMiss && errors.Is(err, ErrOverloaded) {
		oc = outcomeShed // the leader was shed at admission, it never ran
	}
	// Sheds are admission-level and live in the server ledger; everything
	// else is attributed to the key's shard, whose counters /metrics sums
	// back into the conserved totals.
	if oc == outcomeShed {
		s.met.sheds.Add(1)
	} else {
		s.cache.record(key, oc)
	}
	return body, key, oc, err
}

// Workers reports the engine worker bound, for /metrics.
func (s *Server) workers() int { return engine.Shared().Workers() }
