// Package service implements cadaptived, the long-running HTTP front-end
// over the experiment engine. It turns the one-shot CLI reproduction into a
// query service: clients POST (experiment, config, seed) and get back the
// same versioned Table JSON the CLI emits, served from a content-addressed
// result cache whenever the identical run has been computed before.
//
// The design leans entirely on PR 1's determinism guarantee: every
// experiment is a pure function of (schema version, experiment ID, seed,
// trials, maxK), so a canonical hash of those inputs (core.CacheKey) is a
// sound address for the result bytes. On top of that the server adds
// singleflight de-duplication (concurrent identical requests run once), a
// semaphore bounding how many distinct experiments execute at a time,
// per-run timeouts threaded as context cancellation into engine.Map, and
// graceful shutdown that drains in-flight runs.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// Options configures a Server. The zero value of any field selects its
// default.
type Options struct {
	// Addr is the listen address for ListenAndServe (default ":8344").
	Addr string
	// CacheEntries bounds the result cache (default 512 entries).
	CacheEntries int
	// MaxConcurrentRuns bounds how many distinct experiment runs execute at
	// once (default 2). Each run already fans out across the shared engine
	// pool internally, so a small bound keeps the pool from thrashing
	// between unrelated requests; excess requests queue on the semaphore.
	MaxConcurrentRuns int
	// RunTimeout bounds a single experiment run (default 60s). It is
	// threaded as context cancellation into the engine fan-out; a run that
	// exceeds it returns 504 and is not cached.
	RunTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = ":8344"
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 512
	}
	if o.MaxConcurrentRuns == 0 {
		o.MaxConcurrentRuns = 2
	}
	if o.RunTimeout == 0 {
		o.RunTimeout = 60 * time.Second
	}
	return o
}

// Server is the cadaptived HTTP service.
type Server struct {
	opts  Options
	cache *resultCache
	sem   chan struct{} // bounds concurrent experiment runs
	met   metrics
	mux   *http.ServeMux
	http  *http.Server

	// runFn is core.RunContext; tests swap in controllable runs.
	runFn func(ctx context.Context, id string, cfg core.Config) (*core.Table, error)
}

// New validates opts and assembles a server (not yet listening).
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.CacheEntries < 1 {
		return nil, fmt.Errorf("service: CacheEntries %d < 1", opts.CacheEntries)
	}
	if opts.MaxConcurrentRuns < 1 {
		return nil, fmt.Errorf("service: MaxConcurrentRuns %d < 1", opts.MaxConcurrentRuns)
	}
	if opts.RunTimeout < 0 {
		return nil, fmt.Errorf("service: negative RunTimeout %v", opts.RunTimeout)
	}
	s := &Server{
		opts:  opts,
		cache: newResultCache(opts.CacheEntries),
		sem:   make(chan struct{}, opts.MaxConcurrentRuns),
		runFn: core.RunContext,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.http = &http.Server{Addr: opts.Addr, Handler: s.mux}
	return s, nil
}

// Handler exposes the route table (httptest servers, embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on Options.Addr until Shutdown or failure.
func (s *Server) ListenAndServe() error { return s.http.ListenAndServe() }

// Serve serves on l until Shutdown or failure.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// Shutdown stops accepting new connections and blocks until every in-flight
// request — including the experiment run inside it — completes, or ctx
// expires. Runs are never killed by shutdown: their handlers finish and
// their results land in the cache before Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error { return s.http.Shutdown(ctx) }

// runCached computes (or replays) the result body for one run request.
// reqCtx bounds queueing and coalesced waiting; the run itself executes
// under the server's RunTimeout, detached from the individual client,
// because its result is shared by every present and future request for the
// same key.
func (s *Server) runCached(reqCtx context.Context, id string, cfg core.Config) ([]byte, string, outcome, error) {
	key := core.CacheKey(id, cfg)
	body, oc, err := s.cache.do(reqCtx, key, func() ([]byte, error) {
		select {
		case s.sem <- struct{}{}:
		case <-reqCtx.Done():
			return nil, reqCtx.Err()
		}
		defer func() { <-s.sem }()

		s.met.runsStarted.Add(1)
		s.met.inFlight.Add(1)
		defer s.met.inFlight.Add(-1)

		runCtx, cancel := context.WithTimeout(context.WithoutCancel(reqCtx), s.opts.RunTimeout)
		defer cancel()
		t, err := s.runFn(runCtx, id, cfg)
		if err != nil {
			s.met.runsFailed.Add(1)
			return nil, err
		}
		s.met.recordRun(t)
		return json.Marshal(t)
	})
	s.met.record(oc)
	return body, key, oc, err
}

// Workers reports the engine worker bound, for /metrics.
func (s *Server) workers() int { return engine.Shared().Workers() }
