package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/jobs"
)

// chaosSpec arms every injection point the request path crosses: handler
// panics (contained by middleware), run errors and engine-cell panics
// (contained by runCell), and cache-stage faults including latency. The
// probabilities are high enough that a 60-request storm reliably sees
// faults of each kind, low enough that retries converge fast.
const chaosSpec = "service.handler:panic:0.15," +
	"service.run:error:0.15," +
	"service.run:latency:0.5:5ms," + // holds the run slot, so the admission queue actually fills
	"engine.cell:panic:0.02," +
	"service.cache:error:0.10," +
	"service.cache:latency:0.20:2ms," +
	// The batch layer's own blast radii: cell attempts failing (consumes
	// retry budget, may poison), journal appends failing (job proceeds
	// volatile, counted), and scheduler-loop panics (contained, loop
	// restarted).
	"jobs.cell:error:0.10," +
	"jobs.journal:error:0.05," +
	"jobs.sched:panic:0.05"

// TestChaosStorm is the capstone for the failure model: a deterministic
// fault storm of concurrent requests against a real Server, driven through
// retrying clients. It asserts the schedule-independent invariants — the
// exact fault placement varies with goroutine interleaving, but these must
// hold for every schedule:
//
//   - the process survives (any escaped panic fails the test run outright)
//   - no deadlock: every request completes (the test finishing is the proof;
//     a wedged singleflight key would hang a client forever)
//   - every response has a valid status: 200 or a 5xx with a JSON error body
//   - the metrics ledger conserves: hits + misses + coalesced + sheds ==
//     requests, and the admission queue drains to depth 0
//   - retried results are byte-identical to a fault-free run up to the
//     measured timing metrics: faults can delay an answer, never corrupt one
func TestChaosStorm(t *testing.T) {
	const (
		stormGoroutines = 12
		requestsPerG    = 5
		// 7 distinct cache keys; repeats exercise hits and coalescing. Being
		// coprime with requestsPerG, the first wave of 12 goroutines spreads
		// over all 7 keys at once — more concurrent distinct keys than run
		// slot + queue (1 + 4), so the admission queue genuinely sheds.
		configs = 7
	)

	cfgFor := func(i int) (string, core.Config) {
		cfg := core.DefaultConfig()
		cfg.Seed, cfg.Trials, cfg.MaxK = uint64(7+i%configs), 2, 4
		return "E1", cfg
	}

	// normalize strips the one run-dependent part of a table body — the
	// engine timing metrics, measured wall clock — leaving exactly the
	// deterministic content the cache key promises. (Within one server the
	// raw bytes are stable because the cache replays them; across the
	// baseline and chaos servers only the normalized form can match.)
	normalize := func(raw []byte) string {
		var tb core.Table
		if err := json.Unmarshal(raw, &tb); err != nil {
			t.Fatalf("response table is not a valid core.Table: %v", err)
		}
		tb.Metrics = core.Metrics{}
		out, err := json.Marshal(&tb)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}

	// Fault-free baseline bodies (normalized), one per distinct config.
	baseline := make(map[uint64]string)
	{
		s, err := New(Options{Addr: "127.0.0.1:0", MaxConcurrentRuns: 2, CacheEntries: 16})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(s.Handler())
		c := NewClient(srv.URL)
		c.HTTPClient = srv.Client()
		c.sleep = func(time.Duration) {}
		for i := 0; i < configs; i++ {
			id, cfg := cfgFor(i)
			resp, err := c.Run(context.Background(), id, cfg)
			if err != nil {
				t.Fatalf("baseline run %d: %v", i, err)
			}
			baseline[cfg.Seed] = normalize(resp.Table)
		}
		srv.Close()
	}

	if _, err := fault.Enable(1234, chaosSpec); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()

	// A small queue in front of few run slots makes real sheds likely under
	// 12 concurrent clients while conservation still has to balance. Four
	// cache shards put the storm on the sharded paths for real: keys spread
	// over shards, so singleflight tables, eviction policies, and the
	// per-shard counters all run concurrently under the fault spec.
	// JobsDir arms the journal for real, so jobs.journal faults hit actual
	// fsync'd appends and the jobs ledger is fed by the same durable path
	// production uses.
	s, err := New(Options{Addr: "127.0.0.1:0", MaxConcurrentRuns: 1, MaxQueuedRuns: 4, CacheEntries: 16, CacheShards: 4, JobsDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var (
		mu       sync.Mutex
		statuses = map[int]int{} // terminal RetryError statuses, by code
		failures []string
		jobIDs   []string
	)
	var wg sync.WaitGroup
	for g := 0; g < stormGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("storm goroutine %d panicked: %v", g, r))
					mu.Unlock()
				}
			}()
			c := NewClient(srv.URL)
			c.HTTPClient = srv.Client()
			c.Seed = uint64(g) // deterministic, distinct jitter stream per client
			c.MaxAttempts = 8
			c.sleep = func(time.Duration) {} // retry instantly; latency faults still sleep server-side
			// Every third client also submits a batch job over the same 7
			// storm keys, so batch cells and interactive requests contend
			// for the same admission queue, singleflight, and cache under
			// the fault spec. One job gets cancelled mid-storm to exercise
			// the cancellation arm of the ledger.
			if g%3 == 0 {
				st, err := c.SubmitJob(context.Background(), jobs.Spec{
					Experiments: []string{"E1"},
					SeedStart:   7, SeedCount: configs,
					Trials:  2,
					MaxKMin: 4, MaxKMax: 4,
					Weight: 1 + g%3 + g/3, // distinct WRR weights across jobs
				})
				if err != nil {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("goroutine %d: job submit: %v", g, err))
					mu.Unlock()
				} else {
					mu.Lock()
					jobIDs = append(jobIDs, st.ID)
					mu.Unlock()
					if g == 9 {
						if _, err := c.CancelJob(context.Background(), st.ID); err != nil {
							mu.Lock()
							failures = append(failures, fmt.Sprintf("goroutine %d: job cancel: %v", g, err))
							mu.Unlock()
						}
					}
				}
			}
			for r := 0; r < requestsPerG; r++ {
				id, cfg := cfgFor(g*requestsPerG + r)
				resp, err := c.Run(context.Background(), id, cfg)
				if err != nil {
					// Exhausting retries under heavy faults is legitimate;
					// what it must NOT be is a non-5xx failure.
					if re, ok := err.(*RetryError); ok {
						if re.LastStatus != 0 && re.LastStatus < 500 {
							mu.Lock()
							failures = append(failures, fmt.Sprintf("goroutine %d: terminal non-5xx status %d: %s", g, re.LastStatus, re.LastBody))
							mu.Unlock()
						}
						mu.Lock()
						statuses[re.LastStatus]++
						mu.Unlock()
					} else {
						mu.Lock()
						failures = append(failures, fmt.Sprintf("goroutine %d: unexpected error type %T: %v", g, err, err))
						mu.Unlock()
					}
					continue
				}
				if normalize(resp.Table) != baseline[cfg.Seed] {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("goroutine %d: table for seed %d differs from fault-free baseline", g, cfg.Seed))
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	for _, f := range failures {
		t.Error(f)
	}
	t.Logf("terminal retry-exhausted statuses: %v", statuses)

	// With chaos still armed, a sequential pass with generous retries must
	// converge: errors are never cached, success is (sticky), so every key
	// eventually serves the baseline bytes through the fault storm.
	final := NewClient(srv.URL)
	final.HTTPClient = srv.Client()
	final.Seed = 999
	final.MaxAttempts = 50
	final.sleep = func(time.Duration) {}
	for i := 0; i < configs; i++ {
		id, cfg := cfgFor(i)
		resp, err := final.Run(context.Background(), id, cfg)
		if err != nil {
			t.Fatalf("post-storm run for seed %d never converged: %v", cfg.Seed, err)
		}
		if normalize(resp.Table) != baseline[cfg.Seed] {
			t.Errorf("post-storm table for seed %d differs from fault-free baseline", cfg.Seed)
		}
	}

	// Every storm job must reach a terminal state through the chaos, and its
	// per-job cell counts must account for every cell.
	if len(jobIDs) == 0 {
		t.Fatal("storm submitted no jobs; the batch mix exercised nothing")
	}
	for _, id := range jobIDs {
		wctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		st, err := final.WaitJob(wctx, id)
		cancel()
		if err != nil {
			t.Fatalf("job %s never reached a terminal state: %v", id, err)
		}
		switch st.Status {
		case jobs.JobCompleted, jobs.JobPartial, jobs.JobCancelled:
		default:
			t.Errorf("job %s finished with unexpected status %q", id, st.Status)
		}
	}

	// Terminal job status can precede the last detached cell resolving, so
	// drain is a metrics condition, not a status condition: poll until the
	// jobs ledger shows nothing pending or in flight, then hold it to exact
	// conservation — submitted work is completed, poisoned, or cancelled,
	// never lost, whatever faults fired.
	var jl jobs.Ledger
	for deadline := time.Now().Add(60 * time.Second); ; {
		jl = fetchMetrics(t, srv.URL).Jobs
		if jl.JobsActive == 0 && jl.CellsInFlight == 0 && jl.CellsPending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs ledger never drained: %+v", jl)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if jl.JobsSubmitted != int64(len(jobIDs)) {
		t.Errorf("jobs submitted ledger %d, want %d", jl.JobsSubmitted, len(jobIDs))
	}
	if got := jl.JobsCompleted + jl.JobsPartial + jl.JobsCancelled; got != jl.JobsSubmitted {
		t.Errorf("jobs conservation violated: completed(%d) + partial(%d) + cancelled(%d) = %d, want submitted(%d)",
			jl.JobsCompleted, jl.JobsPartial, jl.JobsCancelled, got, jl.JobsSubmitted)
	}
	if got := jl.CellsCompleted + jl.CellsPoisoned + jl.CellsCancelled; got != jl.CellsSubmitted {
		t.Errorf("cells conservation violated: completed(%d) + poisoned(%d) + cancelled(%d) = %d, want submitted(%d)",
			jl.CellsCompleted, jl.CellsPoisoned, jl.CellsCancelled, got, jl.CellsSubmitted)
	}
	// Completed batch cells were served by the same cached path as the
	// interactive storm, so their tables must equal the baseline bytes.
	for _, id := range jobIDs {
		st, err := final.Job(context.Background(), id, true)
		if err != nil {
			t.Fatalf("job %s final status: %v", id, err)
		}
		if st.Completed+st.Poisoned+st.Cancelled != st.Total || st.Running != 0 || st.Pending != 0 {
			t.Errorf("job %s cell counts do not account for every cell: %+v", id, st)
		}
		for _, cell := range st.Cells {
			if cell.State != jobs.CellDone.String() || len(cell.Table) == 0 {
				continue
			}
			if normalize(cell.Table) != baseline[cell.Seed] {
				t.Errorf("job %s cell seed %d differs from fault-free baseline", id, cell.Seed)
			}
		}
	}
	t.Logf("jobs ledger: %+v", jl)

	// The conservation ledger must balance exactly, whatever the schedule did.
	m := fetchMetrics(t, srv.URL)
	svc, cache := m.Service, m.Cache
	if got := cache.Hits + cache.Misses + cache.Coalesced + svc.Sheds; got != svc.Requests {
		t.Errorf("conservation violated: hits(%d) + misses(%d) + coalesced(%d) + sheds(%d) = %d, want requests(%d)",
			cache.Hits, cache.Misses, cache.Coalesced, svc.Sheds, got, svc.Requests)
	}
	// The totals must be exactly the column sums of the per-shard
	// breakdown — the conserved ledger survives sharding by construction,
	// not by coincidence.
	if len(cache.Shards) != 4 {
		t.Fatalf("shard breakdown has %d entries, want 4", len(cache.Shards))
	}
	var sh shardStats
	for _, st := range cache.Shards {
		sh.Hits += st.Hits
		sh.Misses += st.Misses
		sh.Coalesced += st.Coalesced
	}
	if sh.Hits != cache.Hits || sh.Misses != cache.Misses || sh.Coalesced != cache.Coalesced {
		t.Errorf("shard sums (%d/%d/%d) disagree with totals (%d/%d/%d)",
			sh.Hits, sh.Misses, sh.Coalesced, cache.Hits, cache.Misses, cache.Coalesced)
	}
	if svc.QueueDepth != 0 {
		t.Errorf("admission queue depth %d after storm, want 0", svc.QueueDepth)
	}
	if svc.Requests == 0 {
		t.Error("storm recorded zero requests; the test exercised nothing")
	}
	t.Logf("ledger: requests=%d hits=%d misses=%d coalesced=%d sheds=%d panics=%d",
		svc.Requests, cache.Hits, cache.Misses, cache.Coalesced, svc.Sheds, svc.Panics)

	// The server must still be plainly healthy (not draining, not wedged),
	// and the health body's load figures must agree with the drained state.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after storm: %v", err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz after storm: status %d, want 200", hresp.StatusCode)
	}
	var health struct {
		Status     string `json:"status"`
		QueueDepth int64  `json:"queue_depth"`
		ActiveJobs int64  `json:"active_jobs"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz body is not JSON: %v", err)
	}
	if health.Status != "ok" || health.QueueDepth != 0 || health.ActiveJobs != 0 {
		t.Errorf("healthz after drain: %+v, want status ok with zero queue depth and active jobs", health)
	}
}

// TestChaosSeedDeterminism pins the replayability claim at the fault layer:
// the same (seed, spec) yields identical per-point decision sequences, a
// different seed diverges. (Under concurrency the *schedule* assigns those
// decisions to callers; the sequences themselves are pure.)
func TestChaosSeedDeterminism(t *testing.T) {
	draw := func(seed uint64) []string {
		inj, err := fault.NewInjector(seed, mustParse(t, chaosSpec))
		if err != nil {
			t.Fatal(err)
		}
		var seq []string
		for i := 0; i < 200; i++ {
			for _, pt := range fault.Points() {
				func() {
					defer func() { recover() }() // injected panics are part of the sequence
					if err := inj.Fire(pt); err != nil {
						seq = append(seq, fmt.Sprintf("%d:%s:err", i, pt))
					}
				}()
			}
		}
		return seq
	}
	a, b, c := draw(42), draw(42), draw(43)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("same seed produced different fault sequences")
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Error("different seeds produced identical fault sequences")
	}
}

// fetchMetrics decodes GET /metrics into the snapshot struct.
func fetchMetrics(t *testing.T, baseURL string) metricsSnapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	return m
}

func mustParse(t *testing.T, spec string) []fault.Rule {
	t.Helper()
	rules, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}
