package service

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// metrics aggregates the service's observability counters. Cache and run
// counts are lock-free atomics on the hot path; the engine accumulators
// (float seconds from Table.Metrics) are folded in under a mutex once per
// completed run.
type metrics struct {
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheCoalesced atomic.Int64

	// Degradation counters. requests counts every run request admitted to
	// the cache/run path; sheds counts the ones rejected by the bounded
	// admission queue; panics counts handler panics the recovery middleware
	// contained; queued is the current admission-queue depth (a gauge).
	// Conservation: hits + misses + coalesced + sheds == requests.
	requests atomic.Int64
	sheds    atomic.Int64
	panics   atomic.Int64
	queued   atomic.Int64

	runsStarted   atomic.Int64
	runsCompleted atomic.Int64
	runsFailed    atomic.Int64
	inFlight      atomic.Int64

	mu          sync.Mutex
	cells       int64
	busySeconds float64
	wallSeconds float64
}

// record folds an outcome into the cache counters.
func (m *metrics) record(oc outcome) {
	switch oc {
	case outcomeHit:
		m.cacheHits.Add(1)
	case outcomeMiss:
		m.cacheMisses.Add(1)
	case outcomeCoalesced:
		m.cacheCoalesced.Add(1)
	case outcomeShed:
		m.sheds.Add(1)
	}
}

// recordRun folds one completed run's engine accounting into the totals.
func (m *metrics) recordRun(t *core.Table) {
	m.runsCompleted.Add(1)
	m.mu.Lock()
	m.cells += t.Metrics.Cells
	m.busySeconds += t.Metrics.BusySeconds
	m.wallSeconds += t.Metrics.WallSeconds
	m.mu.Unlock()
}

// metricsSnapshot is the GET /metrics response body.
type metricsSnapshot struct {
	Cache struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Coalesced int64 `json:"coalesced"`
		Entries   int   `json:"entries"`
		Capacity  int   `json:"capacity"`
	} `json:"cache"`
	// Service is the degradation ledger. Requests counts run requests
	// reaching the cache/run path; Sheds the ones rejected 503 by the full
	// admission queue; Panics the handler panics contained by middleware;
	// QueueDepth the runs currently waiting for a slot. At any quiescent
	// point Hits + Misses + Coalesced + Sheds == Requests.
	Service struct {
		Requests      int64 `json:"requests"`
		Sheds         int64 `json:"sheds"`
		Panics        int64 `json:"panics"`
		QueueDepth    int64 `json:"queue_depth"`
		QueueCapacity int   `json:"queue_capacity"`
		Draining      bool  `json:"draining"`
	} `json:"service"`
	Runs struct {
		Started   int64 `json:"started"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		InFlight  int64 `json:"in_flight"`
	} `json:"runs"`
	Engine struct {
		Workers     int     `json:"workers"`
		Cells       int64   `json:"cells_total"`
		BusySeconds float64 `json:"busy_seconds_total"`
		WallSeconds float64 `json:"wall_seconds_total"`
		// Utilisation is cumulative busy worker-seconds over the worker-
		// seconds the completed runs had available — the service-lifetime
		// analogue of Table.Metrics.Utilisation.
		Utilisation float64 `json:"utilisation"`
	} `json:"engine"`
}

// snapshot assembles the exported view.
func (m *metrics) snapshot(cacheEntries, cacheCapacity, workers, queueCapacity int, draining bool) metricsSnapshot {
	var s metricsSnapshot
	s.Cache.Hits = m.cacheHits.Load()
	s.Cache.Misses = m.cacheMisses.Load()
	s.Cache.Coalesced = m.cacheCoalesced.Load()
	s.Cache.Entries = cacheEntries
	s.Cache.Capacity = cacheCapacity
	s.Service.Requests = m.requests.Load()
	s.Service.Sheds = m.sheds.Load()
	s.Service.Panics = m.panics.Load()
	s.Service.QueueDepth = m.queued.Load()
	s.Service.QueueCapacity = queueCapacity
	s.Service.Draining = draining
	s.Runs.Started = m.runsStarted.Load()
	s.Runs.Completed = m.runsCompleted.Load()
	s.Runs.Failed = m.runsFailed.Load()
	s.Runs.InFlight = m.inFlight.Load()
	s.Engine.Workers = workers
	m.mu.Lock()
	s.Engine.Cells = m.cells
	s.Engine.BusySeconds = m.busySeconds
	s.Engine.WallSeconds = m.wallSeconds
	m.mu.Unlock()
	if s.Engine.WallSeconds > 0 && workers > 0 {
		s.Engine.Utilisation = s.Engine.BusySeconds / (s.Engine.WallSeconds * float64(workers))
	}
	return s
}
