package service

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/jobs"
)

// metrics aggregates the service's observability counters. The cache
// outcome counters (hits/misses/coalesced and the TTL/eviction detail)
// live in the shards themselves — per-shard atomics, summed at snapshot
// time — so the hot path never funnels through one shared counter word.
// What remains here is the admission-level ledger (requests, sheds,
// panics, queue depth), the run counts, and the engine accumulators
// (float seconds from Table.Metrics), folded in under a mutex once per
// completed run.
type metrics struct {
	// Degradation counters. requests counts every run request admitted to
	// the cache/run path; sheds counts the ones rejected by the bounded
	// admission queue; panics counts handler panics the recovery middleware
	// contained; queued is the current admission-queue depth (a gauge).
	// Conservation: hits + misses + coalesced + sheds == requests, where
	// the first three are summed over shards.
	requests atomic.Int64
	sheds    atomic.Int64
	panics   atomic.Int64
	queued   atomic.Int64

	runsStarted   atomic.Int64
	runsCompleted atomic.Int64
	runsFailed    atomic.Int64
	inFlight      atomic.Int64

	mu sync.Mutex
	//lint:guardedby mu
	cells int64
	//lint:guardedby mu
	busySeconds float64
	//lint:guardedby mu
	wallSeconds float64
}

// recordRun folds one completed run's engine accounting into the totals.
func (m *metrics) recordRun(t *core.Table) {
	m.runsCompleted.Add(1)
	m.mu.Lock()
	m.cells += t.Metrics.Cells
	m.busySeconds += t.Metrics.BusySeconds
	m.wallSeconds += t.Metrics.WallSeconds
	m.mu.Unlock()
}

// metricsSnapshot is the GET /metrics response body.
type metricsSnapshot struct {
	Cache struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Coalesced int64 `json:"coalesced"`
		// StaleServed counts hits answered with a body past its TTL inside
		// the stale-while-revalidate window; Refreshes counts the
		// background recomputations those hits triggered (at most one in
		// flight per key); Evictions counts bound-pressure removals;
		// Expired counts entries dropped at lookup past TTL+SWR.
		StaleServed int64 `json:"stale_served"`
		Refreshes   int64 `json:"refreshes"`
		Evictions   int64 `json:"evictions"`
		Expired     int64 `json:"expired"`
		Entries     int   `json:"entries"`
		Capacity    int   `json:"capacity"`
		Bytes       int64 `json:"bytes"`
		BytesCap    int64 `json:"bytes_capacity"`
		// Shards is the per-shard breakdown; the totals above are its
		// column sums, so conservation checks can be run per shard too.
		Shards []shardStats `json:"shards"`
	} `json:"cache"`
	// Service is the degradation ledger. Requests counts run requests
	// reaching the cache/run path; Sheds the ones rejected 503 by the full
	// admission queue; Panics the handler panics contained by middleware;
	// QueueDepth the runs currently waiting for a slot. At any quiescent
	// point Hits + Misses + Coalesced + Sheds == Requests.
	Service struct {
		Requests      int64 `json:"requests"`
		Sheds         int64 `json:"sheds"`
		Panics        int64 `json:"panics"`
		QueueDepth    int64 `json:"queue_depth"`
		QueueCapacity int   `json:"queue_capacity"`
		Draining      bool  `json:"draining"`
	} `json:"service"`
	Runs struct {
		Started   int64 `json:"started"`
		Completed int64 `json:"completed"`
		Failed    int64 `json:"failed"`
		InFlight  int64 `json:"in_flight"`
	} `json:"runs"`
	Engine struct {
		Workers     int     `json:"workers"`
		Cells       int64   `json:"cells_total"`
		BusySeconds float64 `json:"busy_seconds_total"`
		WallSeconds float64 `json:"wall_seconds_total"`
		// Utilisation is cumulative busy worker-seconds over the worker-
		// seconds the completed runs had available — the service-lifetime
		// analogue of Table.Metrics.Utilisation.
		Utilisation float64 `json:"utilisation"`
	} `json:"engine"`
	// Jobs is the batch-jobs conservation ledger. At drain
	// (cells_in_flight == cells_pending == 0):
	// cells_submitted == cells_completed + cells_poisoned + cells_cancelled,
	// and submitted == active + completed + partial + cancelled — the jobs
	// analogue of the cache ledger's conservation, asserted by the chaos
	// suite.
	Jobs jobs.Ledger `json:"jobs"`
}

// snapshot assembles the exported view from the shard aggregate and the
// server-level ledgers.
func (m *metrics) snapshot(cs cacheStats, opts Options, workers int, draining bool, jl jobs.Ledger) metricsSnapshot {
	var s metricsSnapshot
	s.Cache.Hits = cs.Hits
	s.Cache.Misses = cs.Misses
	s.Cache.Coalesced = cs.Coalesced
	s.Cache.StaleServed = cs.StaleServed
	s.Cache.Refreshes = cs.Refreshes
	s.Cache.Evictions = cs.Evictions
	s.Cache.Expired = cs.Expired
	s.Cache.Entries = cs.Entries
	s.Cache.Capacity = opts.CacheEntries
	s.Cache.Bytes = cs.Bytes
	s.Cache.BytesCap = opts.CacheBytes
	s.Cache.Shards = cs.Shards
	s.Service.Requests = m.requests.Load()
	s.Service.Sheds = m.sheds.Load()
	s.Service.Panics = m.panics.Load()
	s.Service.QueueDepth = m.queued.Load()
	s.Service.QueueCapacity = opts.MaxQueuedRuns
	s.Service.Draining = draining
	s.Runs.Started = m.runsStarted.Load()
	s.Runs.Completed = m.runsCompleted.Load()
	s.Runs.Failed = m.runsFailed.Load()
	s.Runs.InFlight = m.inFlight.Load()
	s.Engine.Workers = workers
	m.mu.Lock()
	s.Engine.Cells = m.cells
	s.Engine.BusySeconds = m.busySeconds
	s.Engine.WallSeconds = m.wallSeconds
	m.mu.Unlock()
	if s.Engine.WallSeconds > 0 && workers > 0 {
		s.Engine.Utilisation = s.Engine.BusySeconds / (s.Engine.WallSeconds * float64(workers))
	}
	s.Jobs = jl
	return s
}
