package service

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// This file preserves the pre-sharding resultCache as a differential-test
// oracle, the same discipline internal/paging uses for its kernels
// (oracle_test.go there keeps the map/heap policies the array kernels
// replaced). The sharded cache at 1 shard with the LRU policy and an
// unbounded bytes budget must be outcome-identical to this implementation
// on any operation sequence; differential_test.go replays recorded
// sequences against both.

// resultCache is the old single-mutex content-addressed store: one lock,
// one intrusive LRU over opaque byte slices, one singleflight table.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*oracleEntry
	head     *oracleEntry // most recently used
	tail     *oracleEntry // least recently used
	inflight map[string]*flight
}

type oracleEntry struct {
	key        string
	body       []byte
	prev, next *oracleEntry
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		entries:  make(map[string]*oracleEntry),
		inflight: make(map[string]*flight),
	}
}

// len reports the number of cached bodies.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// do returns the body for key, computing it with fn on a miss — the old
// cache's contract, kept bit-for-bit so differential runs are faithful.
func (c *resultCache) do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, outcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.moveToFront(e)
		c.mu.Unlock()
		return e.body, outcomeHit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.body, outcomeCoalesced, f.err
		case <-ctx.Done():
			return nil, outcomeCoalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("service: run for key %s panicked: %v\n%s", key, r, debug.Stack())
			}
		}()
		f.body, f.err = fn()
	}()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insert(key, f.body)
	}
	c.mu.Unlock()
	close(f.done)
	return f.body, outcomeMiss, f.err
}

// insert adds a body at the front, evicting from the tail past capacity.
// Callers hold c.mu. (Note the capacity<=0 bug the sharded successor
// fixes: with capacity 0 this evicts the entry it just added.)
func (c *resultCache) insert(key string, body []byte) {
	if e, ok := c.entries[key]; ok {
		e.body = body
		c.moveToFront(e)
		return
	}
	e := &oracleEntry{key: key, body: body}
	c.entries[key] = e
	c.pushFront(e)
	for len(c.entries) > c.capacity {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.key)
	}
}

func (c *resultCache) pushFront(e *oracleEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *resultCache) unlink(e *oracleEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *resultCache) moveToFront(e *oracleEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
