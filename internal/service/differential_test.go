package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"testing"

	"repro/internal/xrand"
)

// This file is satellite 1: the sharded cache at 1 shard with the LRU
// policy must be outcome-identical to the old single-mutex resultCache
// (kept verbatim in oracle_cache_test.go) on any recorded operation
// sequence — same hit/miss/coalesce outcome per op, same final entry set.
// The bytes bound is held effectively unbounded because the old cache had
// none; bytes-bound behaviour is covered by the property tests instead.

// diffOp is one recorded cache operation: a do() for key with a
// deterministic body.
type diffOp struct {
	key  string
	body []byte
}

// diffKeys builds n realistic keys — 64-char hex SHA-256 strings, like
// core.CacheKey produces — with deterministic bodies derived from xrand.
func diffKeys(seed uint64, n int) []diffOp {
	ops := make([]diffOp, n)
	for i := range ops {
		sum := sha256.Sum256([]byte(fmt.Sprintf("diff-key-%d", i)))
		key := hex.EncodeToString(sum[:])
		rng := xrand.New(xrand.Split(seed, "diff-body", int64(i)))
		body := make([]byte, 1+rng.Intn(64))
		for j := range body {
			body[j] = byte(rng.Uint64())
		}
		ops[i] = diffOp{key: key, body: body}
	}
	return ops
}

// cacheLike is the shared surface of the oracle and the sharded cache.
type cacheLike interface {
	do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, outcome, error)
	len() int
}

// entrySet returns the sorted keys currently cached.
func entrySet(c cacheLike) []string {
	var keys []string
	switch c := c.(type) {
	case *resultCache:
		c.mu.Lock()
		//lint:ignore maporder sorted below
		for k := range c.entries {
			keys = append(keys, k)
		}
		c.mu.Unlock()
	case *shardedCache:
		for _, sh := range c.shards {
			sh.mu.Lock()
			//lint:ignore maporder sorted below
			for k := range sh.entries {
				keys = append(keys, k)
			}
			sh.mu.Unlock()
		}
	}
	sort.Strings(keys)
	return keys
}

// replay runs the recorded sequence sequentially against c and returns the
// outcome trace.
func replay(t *testing.T, c cacheLike, seq []diffOp) []outcome {
	t.Helper()
	trace := make([]outcome, len(seq))
	for i, op := range seq {
		body, oc, err := c.do(context.Background(), op.key, func() ([]byte, error) {
			return op.body, nil
		})
		if err != nil {
			t.Fatalf("op %d (%s): %v", i, op.key[:8], err)
		}
		if string(body) != string(op.body) {
			t.Fatalf("op %d (%s): body mismatch", i, op.key[:8])
		}
		trace[i] = oc
	}
	return trace
}

// TestCacheDifferentialSequential replays a recorded, deterministically
// generated operation sequence — a working set about 4× the capacity, with
// a skewed re-reference pattern so hits, misses, and LRU evictions all
// occur — against the old cache and the new one at 1 shard. The outcome
// traces and final entry sets must match exactly.
func TestCacheDifferentialSequential(t *testing.T) {
	const (
		seed     = 0x7001
		nKeys    = 32
		nOps     = 2000
		capacity = 8
	)
	keys := diffKeys(seed, nKeys)
	rng := xrand.New(xrand.Split(seed, "diff-ops"))
	seq := make([]diffOp, nOps)
	for i := range seq {
		// Skew towards low indices: hot keys re-reference often enough to
		// hit, cold keys churn the LRU tail.
		k := rng.Intn(nKeys)
		if rng.Intn(2) == 0 {
			k = rng.Intn(1 + nKeys/4)
		}
		seq[i] = keys[k]
	}

	oracle := newResultCache(capacity)
	sharded, err := newShardedCache(cacheConfig{
		shards:     1,
		maxEntries: capacity,
		maxBytes:   1 << 40, // effectively unbounded, like the oracle
		policy:     "lru",
	})
	if err != nil {
		t.Fatal(err)
	}

	oracleTrace := replay(t, oracle, seq)
	shardedTrace := replay(t, sharded, seq)

	hits, misses := 0, 0
	for i := range seq {
		if oracleTrace[i] != shardedTrace[i] {
			t.Fatalf("op %d (%s): oracle outcome %d, sharded outcome %d",
				i, seq[i].key[:8], oracleTrace[i], shardedTrace[i])
		}
		if oracleTrace[i] == outcomeHit {
			hits++
		} else {
			misses++
		}
	}
	// The sequence must actually exercise both paths and eviction, or the
	// equivalence is vacuous.
	if hits == 0 || misses <= nKeys {
		t.Fatalf("degenerate sequence: %d hits, %d misses", hits, misses)
	}
	if oracle.len() != capacity || sharded.len() != capacity {
		t.Fatalf("final sizes: oracle %d, sharded %d, want %d", oracle.len(), sharded.len(), capacity)
	}

	oSet, sSet := entrySet(oracle), entrySet(sharded)
	for i := range oSet {
		if oSet[i] != sSet[i] {
			t.Fatalf("final entry sets diverge at %d: oracle %s, sharded %s", i, oSet[i][:8], sSet[i][:8])
		}
	}
}

// TestCacheDifferentialCoalesce choreographs the concurrent path: while a
// gated leader computes a key, followers arrive and must coalesce in both
// implementations; after release, both report exactly one miss and the
// same follower outcomes.
func TestCacheDifferentialCoalesce(t *testing.T) {
	const followers = 4
	key := diffKeys(0x7002, 1)[0]
	for _, c := range []cacheLike{
		newResultCache(4),
		func() cacheLike {
			sc, err := newShardedCache(cacheConfig{shards: 1, maxEntries: 4, maxBytes: 1 << 40})
			if err != nil {
				t.Fatal(err)
			}
			return sc
		}(),
	} {
		started := make(chan struct{})
		release := make(chan struct{})
		leaderOc := make(chan outcome, 1)
		go func() {
			_, oc, _ := c.do(context.Background(), key.key, func() ([]byte, error) {
				close(started)
				<-release
				return key.body, nil
			})
			leaderOc <- oc
		}()
		<-started
		followerOc := make(chan outcome, followers)
		ready := make(chan struct{}, followers)
		for i := 0; i < followers; i++ {
			go func() {
				ready <- struct{}{}
				body, oc, err := c.do(context.Background(), key.key, func() ([]byte, error) {
					t.Error("follower ran the function")
					return nil, nil
				})
				if err != nil || string(body) != string(key.body) {
					t.Errorf("follower: body=%q err=%v", body, err)
				}
				followerOc <- oc
			}()
		}
		for i := 0; i < followers; i++ {
			<-ready
		}
		close(release)
		if oc := <-leaderOc; oc != outcomeMiss {
			t.Errorf("%T leader outcome %d, want miss", c, oc)
		}
		for i := 0; i < followers; i++ {
			// A follower either blocked on the flight (coalesced) or arrived
			// after the fill (hit); both caches expose the same two choices.
			if oc := <-followerOc; oc != outcomeCoalesced && oc != outcomeHit {
				t.Errorf("%T follower outcome %d, want coalesced or hit", c, oc)
			}
		}
		if c.len() != 1 {
			t.Errorf("%T len = %d, want 1", c, c.len())
		}
	}
}
