package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
)

// stubTable fabricates a small deterministic table for a cell, standing in
// for the real experiment so job tests run in microseconds.
func stubTable(id string, cfg core.Config) *core.Table {
	return &core.Table{
		ID:     id,
		Title:  "stub",
		Header: []string{"seed", "maxk"},
		Rows:   [][]string{{fmt.Sprint(cfg.Seed), fmt.Sprint(cfg.MaxK)}},
	}
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// waitJobHTTP polls GET /v1/jobs/{id} until the job leaves "running".
func waitJobHTTP(t *testing.T, ts *httptest.Server, id string) *jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st jobs.Status
		if resp := getJSON(t, ts, "/v1/jobs/"+id+"?tables=0", &st); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
		}
		if st.Status != jobs.JobRunning && st.Running == 0 {
			var full jobs.Status
			getJSON(t, ts, "/v1/jobs/"+id, &full)
			return &full
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running: %+v", id, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServiceJobsEndToEnd drives the whole HTTP surface: submit returns 202
// immediately, progress streams partial tables, the list shows the job, and
// every cell's table round-trips through the shared content-addressed cache.
func TestServiceJobsEndToEnd(t *testing.T) {
	s := newTestServer(t, Options{})
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		return stubTable(id, cfg), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJob(t, ts, `{"experiments":["E1"],"seed_start":21,"seed_count":2,"trials":2,"maxk_min":4,"maxk_max":5}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	if st.ID == "" || st.Total != 4 {
		t.Fatalf("submit status: %+v", st)
	}

	fin := waitJobHTTP(t, ts, st.ID)
	if fin.Status != jobs.JobCompleted || fin.Completed != 4 {
		t.Fatalf("final status: %+v", fin)
	}
	for _, c := range fin.Cells {
		var tab core.Table
		if err := json.Unmarshal(c.Table, &tab); err != nil {
			t.Fatalf("cell %s table does not decode: %v", c.Key, err)
		}
		if tab.ID != "E1" || len(tab.Rows) != 1 {
			t.Fatalf("cell %s table: %+v", c.Key, tab)
		}
	}

	var list struct {
		Jobs []*jobs.Status `json:"jobs"`
	}
	if resp := getJSON(t, ts, "/v1/jobs", &list); resp.StatusCode != http.StatusOK || len(list.Jobs) != 1 {
		t.Fatalf("list: status %d, %d jobs", resp.StatusCode, len(list.Jobs))
	}

	// The batch cells went through runCached: the service ledger must have
	// counted each cell and still conserve.
	m := fetchMetrics(t, ts.URL)
	if m.Service.Requests < 4 {
		t.Fatalf("cells bypassed the cached run path: %d requests", m.Service.Requests)
	}
	if got := m.Cache.Hits + m.Cache.Misses + m.Cache.Coalesced + m.Service.Sheds; got != m.Service.Requests {
		t.Fatalf("service conservation violated by batch cells: %d != %d", got, m.Service.Requests)
	}
	if m.Jobs.CellsCompleted != 4 || m.Jobs.JobsCompleted != 1 {
		t.Fatalf("jobs ledger: %+v", m.Jobs)
	}
}

// TestServiceJobsStatusCodes pins the error mapping: unknown experiment 404
// (consistent with /v1/run), malformed spec 400, unknown job 404, duplicate
// admission beyond MaxJobs 503 with Retry-After.
func TestServiceJobsStatusCodes(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s := newTestServer(t, Options{MaxJobs: -1}) // negative: reject all submissions
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return stubTable(id, cfg), nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, body := postJob(t, ts, `{"experiments":["E999"]}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown experiment: status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJob(t, ts, `{"experiments":["E1"],"maxk_min":9,"maxk_max":5}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("inverted maxk: status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJob(t, ts, `{"experiments":["E1"],"bogus_field":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d: %s", resp.StatusCode, body)
	}
	resp, body := postJob(t, ts, `{"experiments":["E1"],"trials":2,"maxk_max":4}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed submission: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed submission missing Retry-After")
	}
	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/j999"},
		{http.MethodDelete, "/v1/jobs/j999"},
	} {
		r, err := http.NewRequest(req.method, ts.URL+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		rs.Body.Close()
		if rs.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: status %d, want 404", req.method, req.path, rs.StatusCode)
		}
	}
}

// TestServiceJobsCancelHTTP: DELETE interrupts a running job and reports the
// cancelled status; a second DELETE is an idempotent 200.
func TestServiceJobsCancelHTTP(t *testing.T) {
	// Runs are detached from callers by design (results are shared), so a
	// cancelled job's in-flight cells resolve at RunTimeout; keep it tight.
	s := newTestServer(t, Options{RunTimeout: 20 * time.Millisecond})
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, body := postJob(t, ts, `{"experiments":["E1"],"seed_count":4,"trials":2,"maxk_max":4}`)
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	for round := 0; round < 2; round++ {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var got jobs.Status
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || got.Status != jobs.JobCancelled {
			t.Fatalf("cancel round %d: status %d, job %+v", round, resp.StatusCode, got)
		}
	}
	fin := waitJobHTTP(t, ts, st.ID)
	if fin.Status != jobs.JobCancelled || fin.Cancelled != 4 {
		t.Fatalf("final status after cancel: %+v", fin)
	}
}

// TestServiceHealthzReportsLoad: the /healthz body carries the admission
// queue depth and the active batch-job count, so balancers can shed
// proportionally before hitting 503s.
func TestServiceHealthzReportsLoad(t *testing.T) {
	s := newTestServer(t, Options{RunTimeout: 20 * time.Millisecond})
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var idle struct {
		Status     string `json:"status"`
		QueueDepth int64  `json:"queue_depth"`
		ActiveJobs int64  `json:"active_jobs"`
	}
	if resp := getJSON(t, ts, "/healthz", &idle); resp.StatusCode != http.StatusOK {
		t.Fatalf("idle healthz: %d", resp.StatusCode)
	}
	if idle.Status != "ok" || idle.QueueDepth != 0 || idle.ActiveJobs != 0 {
		t.Fatalf("idle healthz body: %+v", idle)
	}

	_, body := postJob(t, ts, `{"experiments":["E1"],"trials":2,"maxk_max":4}`)
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	var busy struct {
		ActiveJobs int64 `json:"active_jobs"`
	}
	getJSON(t, ts, "/healthz", &busy)
	if busy.ActiveJobs != 1 {
		t.Fatalf("active_jobs with one running job: %d", busy.ActiveJobs)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitJobHTTP(t, ts, st.ID)
}

// TestServiceJobsResumeAcrossServers is the service-level crash-resume
// proof: a server with a jobs dir goes down mid-job (drain budget expired,
// so in-flight cells are hard-interrupted and no terminal record is
// written), and a fresh server on the same dir resumes the job, recomputing
// only the cells the first server never journaled.
func TestServiceJobsResumeAcrossServers(t *testing.T) {
	dir := t.TempDir()
	var phase1Calls atomic.Int32
	s1 := newTestServer(t, Options{JobsDir: dir, JobConcurrency: 2, RunTimeout: 100 * time.Millisecond})
	s1.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		if phase1Calls.Add(1) > 2 {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return stubTable(id, cfg), nil
	}
	ts1 := httptest.NewServer(s1.Handler())

	_, body := postJob(t, ts1, `{"experiments":["E1"],"seed_start":31,"seed_count":2,"trials":2,"maxk_min":4,"maxk_max":5}`)
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur jobs.Status
		getJSON(t, ts1, "/v1/jobs/"+st.ID+"?tables=0", &cur)
		if cur.Completed == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("phase 1 never journaled 2 cells: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Shutdown with an already-expired drain budget: the two blocked cells
	// are hard-interrupted, and by design no terminal record is written.
	expired, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_ = s1.Shutdown(expired)
	ts1.Close()

	// The resumed manager starts dispatching inside New, before a test could
	// swap runFn — so the missing cells run the real experiment (E1 at 2
	// trials is cheap), and "recomputed only what the crash destroyed" is
	// asserted through the service ledger: every resumed cell goes through
	// runCached, so s2's request count is exactly the number of reruns.
	s2 := newTestServer(t, Options{JobsDir: dir, JobConcurrency: 2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	var resumed jobs.Status
	if resp := getJSON(t, ts2, "/v1/jobs/"+st.ID+"?tables=0", &resumed); resp.StatusCode != http.StatusOK {
		t.Fatalf("job not resumed: status %d", resp.StatusCode)
	}
	fin := waitJobHTTP(t, ts2, st.ID)
	if fin.Status != jobs.JobCompleted || fin.Completed != 4 {
		t.Fatalf("resumed final status: %+v", fin)
	}
	m := fetchMetrics(t, ts2.URL)
	if m.Service.Requests != 2 {
		t.Fatalf("resume ran %d cells through the service, want exactly the 2 the kill destroyed", m.Service.Requests)
	}
	if m.Jobs.CellsCompleted != 4 || m.Jobs.JobsCompleted != 1 || m.Jobs.CellsInFlight != 0 || m.Jobs.CellsPending != 0 {
		t.Fatalf("resumed jobs ledger: %+v", m.Jobs)
	}
	// The two journaled cells must have survived verbatim: their bodies are
	// the phase-1 stub tables, not real experiment output.
	stubs := 0
	for _, c := range fin.Cells {
		var tab core.Table
		if err := json.Unmarshal(c.Table, &tab); err != nil {
			t.Fatalf("cell %s table does not decode: %v", c.Key, err)
		}
		if tab.Title == "stub" {
			stubs++
		}
	}
	if stubs != 2 {
		t.Fatalf("journal preserved %d phase-1 bodies, want 2", stubs)
	}
}
