package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// smokeConfig matches the cheap config the rest of the suite uses.
func smokeConfig() core.Config {
	return core.Config{Seed: 7, Trials: 2, MaxK: 4}
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp
}

func runBody(cfg core.Config, id string) string {
	return fmt.Sprintf(`{"experiment":%q,"config":{"seed":%d,"trials":%d,"max_k":%d}}`,
		id, cfg.Seed, cfg.Trials, cfg.MaxK)
}

// TestServiceCacheHit drives the real experiment path twice: the first POST
// misses and runs, the second is served from the cache with byte-identical
// table JSON, and /metrics proves it never reached the engine again.
func TestServiceCacheHit(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// E3 rather than E1: it fans out on the engine, so the /metrics engine
	// totals are exercised too.
	body := runBody(smokeConfig(), "E3")
	resp1, data1 := postRun(t, ts, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d: %s", resp1.StatusCode, data1)
	}
	var r1, r2 RunResponse
	if err := json.Unmarshal(data1, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Error("first request claims to be cached")
	}
	if r1.Key != core.CacheKey("E3", smokeConfig()) {
		t.Errorf("key %s is not the content address", r1.Key)
	}

	resp2, data2 := postRun(t, ts, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d: %s", resp2.StatusCode, data2)
	}
	if err := json.Unmarshal(data2, &r2); err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("second identical request was not served from cache")
	}
	if !bytes.Equal(r1.Table, r2.Table) {
		t.Error("cached table bytes differ from the fresh run's")
	}

	var m metricsSnapshot
	getJSON(t, ts, "/metrics", &m)
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Errorf("cache counters hits=%d misses=%d, want 1/1", m.Cache.Hits, m.Cache.Misses)
	}
	if m.Runs.Started != 1 || m.Runs.Completed != 1 {
		t.Errorf("runs started=%d completed=%d, want 1/1 (cache hit must not run)", m.Runs.Started, m.Runs.Completed)
	}
	if m.Cache.Entries != 1 {
		t.Errorf("cache entries = %d, want 1", m.Cache.Entries)
	}
	if m.Engine.Cells <= 0 {
		t.Errorf("engine cells_total = %d, want > 0 after an E3 run", m.Engine.Cells)
	}
}

// TestServiceCLIAndServerTablesIdentical is the no-drift guarantee: the
// table the service returns is byte-identical (modulo run-dependent
// Metrics) to what the CLI's core.RunContext entry point produces for the
// same (experiment, config, seed).
func TestServiceCLIAndServerTablesIdentical(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postRun(t, ts, runBody(smokeConfig(), "E1"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d: %s", resp.StatusCode, data)
	}
	var r RunResponse
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	var served core.Table
	if err := json.Unmarshal(r.Table, &served); err != nil {
		t.Fatal(err)
	}

	direct, err := core.RunContext(context.Background(), "E1", smokeConfig())
	if err != nil {
		t.Fatal(err)
	}

	served.Metrics, direct.Metrics = core.Metrics{}, core.Metrics{}
	if !reflect.DeepEqual(&served, direct) {
		t.Fatalf("server and CLI tables differ:\nserver: %+v\ncli:    %+v", served, *direct)
	}
	a, err := json.Marshal(&served)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("metrics-stripped table JSON not byte-identical:\n%s\n%s", a, b)
	}
}

// TestServiceSingleflightCollapse fires 16 concurrent identical requests at
// a run function that blocks until every request has arrived, then counts:
// the run must execute once, one caller is the miss, 15 coalesce.
func TestServiceSingleflightCollapse(t *testing.T) {
	const clients = 16
	var calls atomic.Int64
	release := make(chan struct{})
	s := newTestServer(t, Options{})
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		calls.Add(1)
		<-release
		return &core.Table{ID: id, Header: []string{"x"}, Rows: [][]string{{"1"}}}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := runBody(smokeConfig(), "E3")
	var wg sync.WaitGroup
	type result struct {
		status int
		resp   RunResponse
	}
	results := make([]result, clients)
	var arrived atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived.Add(1)
			resp, data := postRun(t, ts, body)
			results[i].status = resp.StatusCode
			_ = json.Unmarshal(data, &results[i].resp)
		}(i)
	}
	// Hold the one real run until every client has at least been spawned;
	// followers either coalesce on the flight or hit the cache afterwards —
	// both prove the engine ran once.
	for arrived.Load() < clients {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("run function executed %d times for %d identical requests", got, clients)
	}
	var tables [][]byte
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("client %d: status %d", i, r.status)
		}
		tables = append(tables, r.resp.Table)
	}
	for i := 1; i < len(tables); i++ {
		if !bytes.Equal(tables[0], tables[i]) {
			t.Errorf("client %d received different table bytes", i)
		}
	}
	var m metricsSnapshot
	getJSON(t, ts, "/metrics", &m)
	if m.Cache.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1", m.Cache.Misses)
	}
	if m.Runs.Started != 1 {
		t.Errorf("runs started = %d, want 1", m.Runs.Started)
	}
	if m.Cache.Misses+m.Cache.Coalesced+m.Cache.Hits != clients {
		t.Errorf("outcome counters %d+%d+%d don't cover %d clients",
			m.Cache.Misses, m.Cache.Coalesced, m.Cache.Hits, clients)
	}
}

// TestServiceSemaphoreBoundsConcurrentRuns checks that distinct experiments
// (distinct cache keys, so singleflight does not collapse them) never
// execute concurrently beyond MaxConcurrentRuns.
func TestServiceSemaphoreBoundsConcurrentRuns(t *testing.T) {
	var inRun, maxInRun atomic.Int64
	s := newTestServer(t, Options{MaxConcurrentRuns: 1})
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		cur := inRun.Add(1)
		defer inRun.Add(-1)
		for {
			old := maxInRun.Load()
			if cur <= old || maxInRun.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond) // widen the overlap window
		return &core.Table{ID: id, Header: []string{"x"}, Rows: [][]string{{"1"}}}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6"}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp, data := postRun(t, ts, runBody(smokeConfig(), id))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d: %s", id, resp.StatusCode, data)
			}
		}(id)
	}
	wg.Wait()
	if got := maxInRun.Load(); got > 1 {
		t.Errorf("observed %d concurrent runs, semaphore bound is 1", got)
	}
}

// TestServiceConfigErrors maps malformed requests onto 4xx with the typed
// ConfigError field names; nothing malformed may reach the engine.
func TestServiceConfigErrors(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, Options{})
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		calls.Add(1)
		return nil, fmt.Errorf("must not run")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		body   string
		status int
		field  string
	}{
		{"trials zero", `{"experiment":"E3","config":{"seed":1,"trials":0,"max_k":4}}`, http.StatusBadRequest, "trials"},
		{"maxk too small", `{"experiment":"E3","config":{"seed":1,"trials":2,"max_k":3}}`, http.StatusBadRequest, "max_k"},
		{"maxk too large", `{"experiment":"E3","config":{"seed":1,"trials":2,"max_k":99}}`, http.StatusBadRequest, "max_k"},
		{"unknown experiment", `{"experiment":"E99","config":{"seed":1,"trials":2,"max_k":4}}`, http.StatusNotFound, ""},
		{"malformed id", `{"experiment":"Axe"}`, http.StatusNotFound, ""},
		{"missing experiment", `{"config":{"trials":2,"max_k":4}}`, http.StatusBadRequest, ""},
		{"not json", `{nope`, http.StatusBadRequest, ""},
		{"unknown field", `{"experiment":"E3","confg":{}}`, http.StatusBadRequest, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postRun(t, ts, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			var e errorResponse
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatalf("error body is not JSON: %s", data)
			}
			if e.Error == "" {
				t.Error("empty error message")
			}
			if e.Field != tc.field {
				t.Errorf("field %q, want %q", e.Field, tc.field)
			}
		})
	}
	if calls.Load() != 0 {
		t.Errorf("%d malformed requests reached the run function", calls.Load())
	}

	// Defaulting: absent config fields fall back to DefaultConfig, so a
	// body naming only the experiment is valid (stub keeps it cheap).
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		if cfg != core.DefaultConfig() {
			return nil, fmt.Errorf("config %+v, want defaults", cfg)
		}
		return &core.Table{ID: id, Header: []string{"x"}, Rows: [][]string{{"1"}}}, nil
	}
	resp, data := postRun(t, ts, `{"experiment":"E3"}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("defaulted request failed: %d: %s", resp.StatusCode, data)
	}
}

// TestServiceRunTimeout maps an expired per-run deadline onto 504 and must
// not cache the failure.
func TestServiceRunTimeout(t *testing.T) {
	s := newTestServer(t, Options{RunTimeout: 10 * time.Millisecond})
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		<-ctx.Done() // the engine behaves the same way: Map returns ctx.Err()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postRun(t, ts, runBody(smokeConfig(), "E3"))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, data)
	}
	var m metricsSnapshot
	getJSON(t, ts, "/metrics", &m)
	if m.Runs.Failed != 1 {
		t.Errorf("runs failed = %d, want 1", m.Runs.Failed)
	}
	if m.Cache.Entries != 0 {
		t.Errorf("failed run was cached (%d entries)", m.Cache.Entries)
	}
}

// TestServiceGracefulShutdownDrains starts a slow run, calls Shutdown while
// it is in flight, and checks that Shutdown waits for the run to finish and
// the client still receives its 200.
func TestServiceGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s := newTestServer(t, Options{})
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		close(started)
		<-release
		return &core.Table{ID: id, Header: []string{"x"}, Rows: [][]string{{"1"}}}, nil
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	respc := make(chan *http.Response, 1)
	reqErr := make(chan error, 1)
	go func() {
		resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(runBody(smokeConfig(), "E3")))
		if err != nil {
			reqErr <- err
			return
		}
		respc <- resp
	}()
	<-started // the run is now in flight

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// Shutdown must block while the run drains.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a run was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case resp := <-respc:
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("drained request got %d, want 200", resp.StatusCode)
		}
	case err := <-reqErr:
		t.Fatalf("request failed across shutdown: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("request did not complete after release")
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the run drained")
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

// TestServicePanicIsolatedByMiddleware: a run function that panics must
// surface as a 500 with a JSON body — the process, the listener, and the
// cache key all stay usable, and the singleflight entry is released.
func TestServicePanicIsolatedByMiddleware(t *testing.T) {
	var calls atomic.Int64
	s := newTestServer(t, Options{})
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		if calls.Add(1) == 1 {
			panic("poisoned cell")
		}
		return &core.Table{ID: id, Header: []string{"x"}, Rows: [][]string{{"1"}}}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := runBody(smokeConfig(), "E3")
	resp, data := postRun(t, ts, body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking run: status %d, want 500: %s", resp.StatusCode, data)
	}
	var e errorResponse
	if err := json.Unmarshal(data, &e); err != nil || !strings.Contains(e.Error, "panicked") {
		t.Fatalf("panicking run body %s (err %v), want a JSON error naming the panic", data, err)
	}

	// The key must stay retryable: the second request runs and succeeds.
	resp2, data2 := postRun(t, ts, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry after panic: status %d: %s", resp2.StatusCode, data2)
	}
	if calls.Load() != 2 {
		t.Errorf("run function called %d times, want 2 (panic must not cache or wedge the key)", calls.Load())
	}
}

// TestServiceHandlerPanicCounted drives a panic through the middleware via
// a handler-level injected fault and checks the /metrics panic counter.
func TestServiceHandlerPanicCounted(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := fault.Enable(11, "service.handler:panic:1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	resp, data := postRun(t, ts, runBody(smokeConfig(), "E3"))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, data)
	}
	fault.Disable()

	var m metricsSnapshot
	getJSON(t, ts, "/metrics", &m)
	if m.Service.Panics != 1 {
		t.Errorf("panics counter = %d, want 1", m.Service.Panics)
	}
}

// TestServiceShedsWhenQueueFull fills every run slot and queue slot with
// distinct blocked runs; the next distinct request must be shed 503 with
// Retry-After, counted, and never reach the run function.
func TestServiceShedsWhenQueueFull(t *testing.T) {
	const maxRuns, maxQueue = 1, 2
	started := make(chan string, maxRuns)
	release := make(chan struct{})
	var ran atomic.Int64
	s := newTestServer(t, Options{MaxConcurrentRuns: maxRuns, MaxQueuedRuns: maxQueue})
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		ran.Add(1)
		started <- id
		<-release
		return &core.Table{ID: id, Header: []string{"x"}, Rows: [][]string{{"1"}}}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One running + maxQueue queued, all distinct experiments so nothing
	// coalesces.
	ids := []string{"E1", "E2", "E3"}
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp, data := postRun(t, ts, runBody(smokeConfig(), id))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d: %s", id, resp.StatusCode, data)
			}
		}(id)
	}
	<-started // one run is in flight; the others pile into the queue
	waitForQueueDepth(t, ts, maxQueue)

	// Queue is provably full: this request must shed.
	resp, data := postRun(t, ts, runBody(smokeConfig(), "E4"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow request: status %d, want 503: %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response has no Retry-After header")
	}

	close(release)
	for range ids[1:] {
		<-started
	}
	wg.Wait()

	var m metricsSnapshot
	getJSON(t, ts, "/metrics", &m)
	if m.Service.Sheds != 1 {
		t.Errorf("sheds = %d, want 1", m.Service.Sheds)
	}
	if ran.Load() != int64(len(ids)) {
		t.Errorf("run function executed %d times, want %d (the shed request must not run)", ran.Load(), len(ids))
	}
	if got := m.Cache.Hits + m.Cache.Misses + m.Cache.Coalesced + m.Service.Sheds; got != m.Service.Requests {
		t.Errorf("conservation violated: hits+misses+coalesced+sheds = %d, requests = %d", got, m.Service.Requests)
	}
	if m.Service.QueueDepth != 0 {
		t.Errorf("queue depth = %d after drain, want 0", m.Service.QueueDepth)
	}
}

// waitForQueueDepth polls /metrics until the admission queue holds depth
// waiters (the queue gauge is the only externally observable signal that
// blocked requests have actually reached the semaphore wait).
func waitForQueueDepth(t *testing.T, ts *httptest.Server, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var m metricsSnapshot
		getJSON(t, ts, "/metrics", &m)
		if m.Service.QueueDepth >= int64(depth) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("admission queue never reached depth %d", depth)
}

// TestServiceHealthzDraining: once Shutdown begins, /healthz flips to 503
// "draining" for the rest of the server's life.
func TestServiceHealthzDraining(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s := newTestServer(t, Options{})
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		close(started)
		<-release
		return &core.Table{ID: id, Header: []string{"x"}, Rows: [][]string{{"1"}}}, nil
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /healthz: %d, want 200", resp.StatusCode)
	}

	go func() {
		_, _ = http.Post(url+"/v1/run", "application/json", strings.NewReader(runBody(smokeConfig(), "E3")))
	}()
	<-started // a run is in flight, so Shutdown will block draining it

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// The drain flag flips before http.Server.Shutdown starts closing
	// listeners; while the in-flight run holds Shutdown open, /healthz —
	// exercised through the handler, since fresh connections are already
	// refused — must answer 503 "draining" (keep-alive probes from a load
	// balancer would see the same).
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set after Shutdown began")
		}
		time.Sleep(time.Millisecond)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz status %d, want 503", rec.Code)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&body); err != nil || body.Status != "draining" {
		t.Errorf("draining /healthz body %q (err %v), want \"draining\"", body.Status, err)
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

// TestServiceExperimentsEndpoint mirrors `cadaptive -list`.
func TestServiceExperimentsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var body struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}
	resp := getJSON(t, ts, "/v1/experiments", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	exps := core.Experiments()
	if len(body.Experiments) != len(exps) {
		t.Fatalf("%d experiments listed, core has %d", len(body.Experiments), len(exps))
	}
	for i, e := range exps {
		got := body.Experiments[i]
		if got.ID != e.ID || got.Source != e.Source || got.Summary != e.Summary {
			t.Errorf("entry %d = %+v, want %s/%s/%s", i, got, e.ID, e.Source, e.Summary)
		}
	}
}

func TestServiceHealthz(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var body struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, ts, "/healthz", &body); resp.StatusCode != http.StatusOK || body.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, body)
	}
}

func TestServiceMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: %d, want 405", resp.StatusCode)
	}
}

func TestServiceOptionsValidation(t *testing.T) {
	// Negative cache bounds are the documented "caching disabled" opt-in
	// (mirroring RunTimeout < 0): they must be accepted, and the built
	// cache must store nothing.
	s0, err := New(Options{CacheEntries: -1})
	if err != nil {
		t.Fatalf("CacheEntries -1 (disabled) rejected: %v", err)
	}
	if !s0.cache.disabled {
		t.Error("CacheEntries -1 did not disable caching")
	}
	if s0, err = New(Options{CacheBytes: -1}); err != nil {
		t.Fatalf("CacheBytes -1 (disabled) rejected: %v", err)
	} else if !s0.cache.disabled {
		t.Error("CacheBytes -1 did not disable caching")
	}
	if _, err := New(Options{CacheShards: -1}); err == nil {
		t.Error("negative CacheShards accepted")
	}
	if _, err := New(Options{CachePolicy: "clairvoyant"}); err == nil {
		t.Error("unknown CachePolicy accepted")
	}
	if _, err := New(Options{CacheSWR: time.Second}); err == nil {
		t.Error("CacheSWR without CacheTTL accepted")
	}
	if _, err := New(Options{MaxConcurrentRuns: -2}); err == nil {
		t.Error("negative MaxConcurrentRuns accepted")
	}
	if _, err := New(Options{MaxQueuedRuns: -1}); err == nil {
		t.Error("negative MaxQueuedRuns accepted")
	}
	// RunTimeout < 0 is the documented "no timeout" opt-in; 0 keeps the
	// default. Both must be accepted.
	s, err := New(Options{RunTimeout: -time.Second})
	if err != nil {
		t.Fatalf("RunTimeout -1s (unbounded) rejected: %v", err)
	}
	if s.opts.RunTimeout >= 0 {
		t.Errorf("unbounded RunTimeout was defaulted to %v", s.opts.RunTimeout)
	}
	if s, err = New(Options{}); err != nil || s.opts.RunTimeout != 60*time.Second {
		t.Errorf("zero RunTimeout => %v, %v; want the 60s default", s.opts.RunTimeout, err)
	}
}

// TestServiceUnboundedRunTimeout proves RunTimeout < 0 really is "no
// deadline": the run context the server hands to runFn must have none.
func TestServiceUnboundedRunTimeout(t *testing.T) {
	s := newTestServer(t, Options{RunTimeout: -1})
	deadlines := make(chan bool, 1)
	s.runFn = func(ctx context.Context, id string, cfg core.Config) (*core.Table, error) {
		_, has := ctx.Deadline()
		deadlines <- has
		return &core.Table{ID: id, Header: []string{"x"}, Rows: [][]string{{"1"}}}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, data := postRun(t, ts, runBody(smokeConfig(), "E3")); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if <-deadlines {
		t.Error("run context carries a deadline despite RunTimeout < 0")
	}
}
