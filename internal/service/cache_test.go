package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func mustDo(t *testing.T, c *resultCache, key, val string) outcome {
	t.Helper()
	body, oc, err := c.do(context.Background(), key, func() ([]byte, error) {
		return []byte(val), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if oc != outcomeHit && !bytes.Equal(body, []byte(val)) {
		t.Fatalf("do(%s) = %q, want %q", key, body, val)
	}
	return oc
}

func TestCacheLRUBounded(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if oc := mustDo(t, c, key, key); oc != outcomeMiss {
			t.Errorf("first do(%s): outcome %d, want miss", key, oc)
		}
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want capacity 3", c.len())
	}
	// k0, k1 were evicted in LRU order; k2..k4 survive. Peek at the entries
	// directly: a do() probe would itself reshuffle the LRU order.
	c.mu.Lock()
	for i, want := range []bool{false, false, true, true, true} {
		key := fmt.Sprintf("k%d", i)
		if _, ok := c.entries[key]; ok != want {
			t.Errorf("entry %s present=%v, want %v", key, ok, want)
		}
	}
	c.mu.Unlock()
}

func TestCacheTouchMovesToFront(t *testing.T) {
	c := newResultCache(2)
	mustDo(t, c, "a", "a")
	mustDo(t, c, "b", "b")
	mustDo(t, c, "a", "a") // touch a: b is now LRU
	mustDo(t, c, "c", "c") // evicts b
	if oc := mustDo(t, c, "a", "a"); oc != outcomeHit {
		t.Error("recently touched entry was evicted")
	}
	if oc := mustDo(t, c, "b", "b"); oc != outcomeMiss {
		t.Error("least-recently-used entry survived past capacity")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newResultCache(4)
	boom := errors.New("boom")
	calls := 0
	fn := func() ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return []byte("ok"), nil
	}
	if _, oc, err := c.do(context.Background(), "k", fn); !errors.Is(err, boom) || oc != outcomeMiss {
		t.Fatalf("first do: oc=%d err=%v", oc, err)
	}
	if c.len() != 0 {
		t.Fatal("error was cached")
	}
	body, oc, err := c.do(context.Background(), "k", fn)
	if err != nil || oc != outcomeMiss || string(body) != "ok" {
		t.Fatalf("retry after error: body=%q oc=%d err=%v", body, oc, err)
	}
	if oc := mustDo(t, c, "k", "ok"); oc != outcomeHit {
		t.Error("successful retry was not cached")
	}
}

func TestCacheSingleflightSharesOneRun(t *testing.T) {
	c := newResultCache(4)
	const waiters = 8
	var calls int
	gate := make(chan struct{})
	var wg sync.WaitGroup
	outcomes := make([]outcome, waiters)
	bodies := make([][]byte, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, oc, err := c.do(context.Background(), "k", func() ([]byte, error) {
				calls++ // no mutex needed: singleflight admits one runner
				<-gate
				return []byte("v"), nil
			})
			if err != nil {
				t.Error(err)
			}
			outcomes[i], bodies[i] = oc, body
		}(i)
	}
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times", calls)
	}
	misses := 0
	for i := range outcomes {
		if outcomes[i] == outcomeMiss {
			misses++
		}
		if string(bodies[i]) != "v" {
			t.Errorf("waiter %d got %q", i, bodies[i])
		}
	}
	if misses != 1 {
		t.Errorf("%d misses, want exactly 1 (rest coalesce or hit)", misses)
	}
}

func TestCacheCoalescedWaiterHonoursContext(t *testing.T) {
	c := newResultCache(4)
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, _ = c.do(context.Background(), "k", func() ([]byte, error) {
			close(started)
			<-release
			return []byte("v"), nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, oc, err := c.do(ctx, "k", func() ([]byte, error) {
		t.Error("follower must not run the function")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) || oc != outcomeCoalesced {
		t.Fatalf("cancelled follower: oc=%d err=%v", oc, err)
	}
	close(release)
	<-leaderDone
	// The leader's result still landed in the cache.
	if oc := mustDo(t, c, "k", "v"); oc != outcomeHit {
		t.Error("leader's result missing from cache after follower cancellation")
	}
}
