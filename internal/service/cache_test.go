package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// newTestCache builds a sharded cache with a huge bytes budget so tests
// that only care about entry counts or singleflight aren't perturbed by
// the bytes bound.
func newTestCache(t *testing.T, shards int, entries int64) *shardedCache {
	t.Helper()
	c, err := newShardedCache(cacheConfig{shards: shards, maxEntries: entries, maxBytes: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustDo(t *testing.T, c *shardedCache, key, val string) outcome {
	t.Helper()
	body, oc, err := c.do(context.Background(), key, func() ([]byte, error) {
		return []byte(val), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if oc != outcomeHit && !bytes.Equal(body, []byte(val)) {
		t.Fatalf("do(%s) = %q, want %q", key, body, val)
	}
	return oc
}

func TestCacheLRUBounded(t *testing.T) {
	// One shard so the global entry bound is exactly the shard's bound and
	// the LRU order is a single total order, like the old resultCache.
	c := newTestCache(t, 1, 3)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if oc := mustDo(t, c, key, key); oc != outcomeMiss {
			t.Errorf("first do(%s): outcome %d, want miss", key, oc)
		}
	}
	if c.len() != 3 {
		t.Fatalf("len = %d, want capacity 3", c.len())
	}
	// k0, k1 were evicted in LRU order; k2..k4 survive. Peek at the entries
	// directly: a do() probe would itself reshuffle the LRU order.
	sh := c.shards[0]
	sh.mu.Lock()
	for i, want := range []bool{false, false, true, true, true} {
		key := fmt.Sprintf("k%d", i)
		if _, ok := sh.entries[key]; ok != want {
			t.Errorf("entry %s present=%v, want %v", key, ok, want)
		}
	}
	sh.mu.Unlock()
	if got := sh.evictions.Load(); got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
}

func TestCacheTouchMovesToFront(t *testing.T) {
	c := newTestCache(t, 1, 2)
	mustDo(t, c, "a", "a")
	mustDo(t, c, "b", "b")
	mustDo(t, c, "a", "a") // touch a: b is now LRU
	mustDo(t, c, "c", "c") // evicts b
	if oc := mustDo(t, c, "a", "a"); oc != outcomeHit {
		t.Error("recently touched entry was evicted")
	}
	if oc := mustDo(t, c, "b", "b"); oc != outcomeMiss {
		t.Error("least-recently-used entry survived past capacity")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newTestCache(t, 4, 16)
	boom := errors.New("boom")
	calls := 0
	fn := func() ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return []byte("ok"), nil
	}
	if _, oc, err := c.do(context.Background(), "k", fn); !errors.Is(err, boom) || oc != outcomeMiss {
		t.Fatalf("first do: oc=%d err=%v", oc, err)
	}
	if c.len() != 0 {
		t.Fatal("error was cached")
	}
	body, oc, err := c.do(context.Background(), "k", fn)
	if err != nil || oc != outcomeMiss || string(body) != "ok" {
		t.Fatalf("retry after error: body=%q oc=%d err=%v", body, oc, err)
	}
	if oc := mustDo(t, c, "k", "ok"); oc != outcomeHit {
		t.Error("successful retry was not cached")
	}
}

func TestCacheSingleflightSharesOneRun(t *testing.T) {
	c := newTestCache(t, 4, 16)
	const waiters = 8
	var calls int
	gate := make(chan struct{})
	var wg sync.WaitGroup
	outcomes := make([]outcome, waiters)
	bodies := make([][]byte, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, oc, err := c.do(context.Background(), "k", func() ([]byte, error) {
				calls++ // no mutex needed: singleflight admits one runner
				<-gate
				return []byte("v"), nil
			})
			if err != nil {
				t.Error(err)
			}
			outcomes[i], bodies[i] = oc, body
		}(i)
	}
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times", calls)
	}
	misses := 0
	for i := range outcomes {
		if outcomes[i] == outcomeMiss {
			misses++
		}
		if string(bodies[i]) != "v" {
			t.Errorf("waiter %d got %q", i, bodies[i])
		}
	}
	if misses != 1 {
		t.Errorf("%d misses, want exactly 1 (rest coalesce or hit)", misses)
	}
}

func TestCacheCoalescedWaiterHonoursContext(t *testing.T) {
	c := newTestCache(t, 4, 16)
	started := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, _ = c.do(context.Background(), "k", func() ([]byte, error) {
			close(started)
			<-release
			return []byte("v"), nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, oc, err := c.do(ctx, "k", func() ([]byte, error) {
		t.Error("follower must not run the function")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) || oc != outcomeCoalesced {
		t.Fatalf("cancelled follower: oc=%d err=%v", oc, err)
	}
	close(release)
	<-leaderDone
	// The leader's result still landed in the cache.
	if oc := mustDo(t, c, "k", "v"); oc != outcomeHit {
		t.Error("leader's result missing from cache after follower cancellation")
	}
}

// TestCacheDisabled pins the successor semantics of the old capacity<=0
// bug (satellite 4): a zero entry or bytes bound means "caching disabled",
// not "insert then immediately evict". Every do runs the function, nothing
// is ever stored, and singleflight still works.
func TestCacheDisabled(t *testing.T) {
	for _, cfg := range []cacheConfig{
		{shards: 2, maxEntries: 0, maxBytes: 1 << 20},
		{shards: 2, maxEntries: 16, maxBytes: 0},
	} {
		c, err := newShardedCache(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !c.disabled {
			t.Fatalf("cfg %+v: cache not disabled", cfg)
		}
		calls := 0
		for i := 0; i < 3; i++ {
			body, oc, err := c.do(context.Background(), "k", func() ([]byte, error) {
				calls++
				return []byte("v"), nil
			})
			if err != nil || oc != outcomeMiss || string(body) != "v" {
				t.Fatalf("disabled do %d: body=%q oc=%d err=%v", i, body, oc, err)
			}
		}
		if calls != 3 {
			t.Errorf("fn ran %d times, want 3 (no caching)", calls)
		}
		if c.len() != 0 {
			t.Errorf("disabled cache stored %d entries", c.len())
		}
	}
}

// TestCacheRejectsBadConfig pins constructor validation: negative bounds,
// negative TTL/SWR, SWR without TTL, TTL without a clock, unknown policy,
// and a non-positive shard count are all errors.
func TestCacheRejectsBadConfig(t *testing.T) {
	cases := []cacheConfig{
		{shards: 0, maxEntries: 1, maxBytes: 1},
		{shards: 1, maxEntries: -1, maxBytes: 1},
		{shards: 1, maxEntries: 1, maxBytes: -1},
		{shards: 1, maxEntries: 1, maxBytes: 1, ttl: -1},
		{shards: 1, maxEntries: 1, maxBytes: 1, swr: 1},
		{shards: 1, maxEntries: 1, maxBytes: 1, ttl: 1},
		{shards: 1, maxEntries: 1, maxBytes: 1, policy: "clairvoyant"},
	}
	for _, cfg := range cases {
		if _, err := newShardedCache(cfg); err == nil {
			t.Errorf("cfg %+v: accepted, want error", cfg)
		}
	}
}

// TestCacheShardRounding pins the power-of-two rounding of the shard count.
func TestCacheShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16}, {17, 32},
	} {
		c, err := newShardedCache(cacheConfig{shards: tc.in, maxEntries: 8, maxBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if len(c.shards) != tc.want {
			t.Errorf("shards(%d) = %d, want %d", tc.in, len(c.shards), tc.want)
		}
	}
}
