package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/paging"
	"repro/internal/xrand"
)

// Satellite 2: property tests over randomized operation sequences, plus a
// fuzz target for shard routing. Each property is checked after every
// operation, not just at the end.

// assertBounds fails if any shard exceeds its bytes or entry bound, or if
// its bytes ledger disagrees with the sum of resident body lengths.
func assertBounds(t *testing.T, c *shardedCache) {
	t.Helper()
	for i, sh := range c.shards {
		sh.mu.Lock()
		var sum int64
		for _, e := range sh.entries {
			sum += int64(len(e.body))
		}
		bytes, n := sh.bytes, int64(len(sh.entries))
		maxB, maxE := sh.maxBytes, sh.maxEntries
		sh.mu.Unlock()
		if bytes != sum {
			t.Fatalf("shard %d: bytes ledger %d, actual %d", i, bytes, sum)
		}
		if bytes > maxB {
			t.Fatalf("shard %d: bytes %d > bound %d", i, bytes, maxB)
		}
		if n > maxE {
			t.Fatalf("shard %d: entries %d > bound %d", i, n, maxE)
		}
	}
}

// TestCacheBytesBoundNeverExceeded inserts randomized bodies — including
// some larger than the whole bytes budget — and asserts after every insert
// that no shard exceeds either bound, for every registered eviction policy.
func TestCacheBytesBoundNeverExceeded(t *testing.T) {
	for _, policy := range paging.PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			const maxBytes = 4096
			c, err := newShardedCache(cacheConfig{
				shards: 4, maxEntries: 64, maxBytes: maxBytes, policy: policy,
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(xrand.Split(0x7003, "bytes-bound", int64(len(policy))))
			for i := 0; i < 800; i++ {
				k := rng.Intn(48)
				sum := sha256.Sum256([]byte(fmt.Sprintf("%s-%d", policy, k)))
				key := hex.EncodeToString(sum[:])
				// Body sizes span tiny to beyond the global bound; a body
				// that can never fit must simply not be cached.
				size := rng.Intn(2 * maxBytes)
				_, _, err := c.do(context.Background(), key, func() ([]byte, error) {
					return make([]byte, size), nil
				})
				if err != nil {
					t.Fatal(err)
				}
				assertBounds(t, c)
			}
			// The sequence must have driven the bound, or the property is
			// vacuous.
			if c.stats().Evictions == 0 {
				t.Fatal("no evictions: bytes bound never exercised")
			}
		})
	}
}

// fakeClock is a mutable injected time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// TestCacheTTLNeverServesExpired advances an injected clock through
// randomized fills and lookups; with no SWR window, a body must never be
// served once its TTL has elapsed.
func TestCacheTTLNeverServesExpired(t *testing.T) {
	const ttl = 10 * time.Second
	clk := newFakeClock()
	c, err := newShardedCache(cacheConfig{
		shards: 2, maxEntries: 64, maxBytes: 1 << 20, ttl: ttl, clock: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(xrand.Split(0x7004, "ttl"))
	type fill struct {
		at   time.Time
		gen  int
		body string
	}
	fills := make(map[string]*fill)
	for i := 0; i < 600; i++ {
		clk.Advance(time.Duration(rng.Intn(4000)) * time.Millisecond)
		k := rng.Intn(16)
		sum := sha256.Sum256([]byte(fmt.Sprintf("ttl-%d", k)))
		key := hex.EncodeToString(sum[:])
		last := fills[key]
		gen := 0
		if last != nil {
			gen = last.gen + 1
		}
		fresh := fmt.Sprintf("gen-%d", gen)
		body, oc, err := c.do(context.Background(), key, func() ([]byte, error) {
			return []byte(fresh), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		now := clk.Now()
		switch oc {
		case outcomeHit:
			if last == nil {
				t.Fatalf("op %d: hit on never-filled key", i)
			}
			if age := now.Sub(last.at); age >= ttl {
				t.Fatalf("op %d: served body aged %v past TTL %v", i, age, ttl)
			}
			if string(body) != last.body {
				t.Fatalf("op %d: hit body %q, want %q", i, body, last.body)
			}
		case outcomeMiss:
			fills[key] = &fill{at: now, gen: gen, body: fresh}
		default:
			t.Fatalf("op %d: unexpected outcome %d in sequential run", i, oc)
		}
	}
}

// TestCacheSWRServesStaleThenRefreshes pins the stale-while-revalidate
// contract: past TTL but inside the SWR window, callers get the old bytes
// and outcomeHit while exactly one background refresh runs; once it
// completes, callers get the new bytes.
func TestCacheSWRServesStaleThenRefreshes(t *testing.T) {
	const (
		ttl = 10 * time.Second
		swr = 30 * time.Second
	)
	clk := newFakeClock()
	c, err := newShardedCache(cacheConfig{
		shards: 1, maxEntries: 8, maxBytes: 1 << 20, ttl: ttl, swr: swr, clock: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte("swr-key"))
	key := hex.EncodeToString(sum[:])
	fill := func(val string) ([]byte, outcome) {
		t.Helper()
		body, oc, err := c.do(context.Background(), key, func() ([]byte, error) {
			return []byte(val), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return body, oc
	}
	if _, oc := fill("old"); oc != outcomeMiss {
		t.Fatalf("initial fill outcome %d", oc)
	}
	clk.Advance(ttl + time.Second) // stale, inside SWR

	// Gate the refresh so stale serving is observable while it runs.
	gate := make(chan struct{})
	refreshRuns := 0
	var mu sync.Mutex
	const staleReads = 5
	for i := 0; i < staleReads; i++ {
		body, oc, err := c.do(context.Background(), key, func() ([]byte, error) {
			mu.Lock()
			refreshRuns++
			mu.Unlock()
			<-gate
			return []byte("new"), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if oc != outcomeHit || string(body) != "old" {
			t.Fatalf("stale read %d: body=%q oc=%d, want old bytes as a hit", i, body, oc)
		}
	}
	close(gate)
	// Wait for the single refresh to land (it replaces the body under the
	// shard lock; poll the entry rather than sleeping blind).
	sh := c.shards[c.shardFor(key)]
	deadline := time.Now().Add(5 * time.Second) //lint:ignore notime test-side polling deadline, not cache state
	for {
		sh.mu.Lock()
		e := sh.entries[key]
		refreshed := e != nil && string(e.body) == "new"
		sh.mu.Unlock()
		if refreshed {
			break
		}
		if time.Now().After(deadline) { //lint:ignore notime test-side polling deadline, not cache state
			t.Fatal("refresh never replaced the stale body")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	runs := refreshRuns
	mu.Unlock()
	if runs != 1 {
		t.Fatalf("refresh ran %d times, want exactly 1", runs)
	}
	if body, oc := fill("unused"); oc != outcomeHit || string(body) != "new" {
		t.Fatalf("post-refresh read: body=%q oc=%d, want new bytes as a hit", body, oc)
	}
	st := c.stats()
	if st.StaleServed != staleReads || st.Refreshes != 1 {
		t.Fatalf("stats: stale_served=%d refreshes=%d, want %d and 1", st.StaleServed, st.Refreshes, staleReads)
	}
	// Past TTL+SWR the entry is gone entirely: the next do recomputes.
	clk.Advance(ttl + swr + time.Second)
	if _, oc := fill("newer"); oc != outcomeMiss {
		t.Fatalf("read past TTL+SWR: outcome %d, want miss", oc)
	}
	if c.stats().Expired != 1 {
		t.Fatalf("expired counter = %d, want 1", c.stats().Expired)
	}
}

// TestCacheShardRoutingCovers checks that realistic keys spread over all
// shards and that routing is stable.
func TestCacheShardRoutingCovers(t *testing.T) {
	c, err := newShardedCache(cacheConfig{shards: 16, maxEntries: 16, maxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, len(c.shards))
	for i := 0; i < 10000; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("route-%d", i)))
		key := hex.EncodeToString(sum[:])
		s := c.shardFor(key)
		if s2 := c.shardFor(key); s2 != s {
			t.Fatalf("key %s routed to %d then %d", key[:8], s, s2)
		}
		seen[s]++
	}
	for i, n := range seen {
		if n == 0 {
			t.Errorf("shard %d never selected over 10k keys", i)
		}
	}
}

// FuzzShardRouting: for arbitrary keys (hex or not) routing is
// deterministic, in range, and consistent across repeated calls; for a
// fixed corpus of SHA-256 keys, all shards are reachable (checked in the
// seed-corpus test above — the fuzz body checks the per-key properties).
func FuzzShardRouting(f *testing.F) {
	f.Add("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
	f.Add("E3B0C44298FC1C149AFBF4C8996FB924")
	f.Add("not-hex-at-all")
	f.Add("")
	f.Add("short")
	f.Add("0123456789abcdef")
	caches := make([]*shardedCache, 0, 3)
	for _, n := range []int{1, 4, 16} {
		c, err := newShardedCache(cacheConfig{shards: n, maxEntries: 16, maxBytes: 1 << 20})
		if err != nil {
			f.Fatal(err)
		}
		caches = append(caches, c)
	}
	f.Fuzz(func(t *testing.T, key string) {
		for _, c := range caches {
			s := c.shardFor(key)
			if s < 0 || s >= len(c.shards) {
				t.Fatalf("%d shards: key %q routed out of range: %d", len(c.shards), key, s)
			}
			for i := 0; i < 3; i++ {
				if s2 := c.shardFor(key); s2 != s {
					t.Fatalf("%d shards: key %q routed to %d then %d", len(c.shards), key, s, s2)
				}
			}
		}
	})
}
