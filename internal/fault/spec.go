package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses a -chaos-spec value: comma-separated rules of the form
//
//	<point>:<mode>:<prob>[:<duration>]
//
// where <point> is a known injection point (Points), <mode> is one of
// error | panic | latency, <prob> is a float in [0,1], and <duration> is a
// time.ParseDuration string required by (and only valid for) latency
// rules. Examples:
//
//	engine.cell:panic:0.02
//	service.handler:latency:0.25:5ms,service.run:error:0.1
//
// A point may appear in several rules; they are tried in spec order each
// invocation and the first whose coin lands fires. ParseSpec validates
// shape only; NewInjector validates points and ranges.
func ParseSpec(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("fault: empty chaos spec")
	}
	var rules []Rule
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			return nil, fmt.Errorf("fault: empty rule in spec %q", spec)
		}
		parts := strings.Split(raw, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("fault: rule %q: want <point>:<mode>:<prob>[:<duration>]", raw)
		}
		var mode Mode
		switch parts[1] {
		case "error":
			mode = ModeError
		case "panic":
			mode = ModePanic
		case "latency":
			mode = ModeLatency
		default:
			return nil, fmt.Errorf("fault: rule %q: unknown mode %q (want error, panic or latency)", raw, parts[1])
		}
		prob, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("fault: rule %q: bad probability %q: %v", raw, parts[2], err)
		}
		r := Rule{Point: parts[0], Mode: mode, Prob: prob}
		if len(parts) == 4 {
			if mode != ModeLatency {
				return nil, fmt.Errorf("fault: rule %q: duration is only valid for latency rules", raw)
			}
			d, err := time.ParseDuration(parts[3])
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q: bad duration %q: %v", raw, parts[3], err)
			}
			r.Sleep = d
		} else if mode == ModeLatency {
			return nil, fmt.Errorf("fault: rule %q: latency rules need a duration (e.g. %s:latency:%s:5ms)", raw, parts[0], parts[2])
		}
		rules = append(rules, r)
	}
	return rules, nil
}
