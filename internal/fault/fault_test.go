package fault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// armed builds an injector from a spec or fails the test.
func armed(t *testing.T, seed uint64, spec string) *Injector {
	t.Helper()
	rules, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(seed, rules)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestParseSpec(t *testing.T) {
	good := []string{
		"engine.cell:panic:0.02",
		"service.handler:latency:0.25:5ms",
		"engine.cell:error:1",
		" engine.cell:error:0.5 , service.run:panic:0.1 ",
	}
	for _, s := range good {
		if _, err := ParseSpec(s); err != nil {
			t.Errorf("ParseSpec(%q) = %v, want nil", s, err)
		}
	}
	bad := []string{
		"",
		"engine.cell",
		"engine.cell:panic",
		"engine.cell:explode:0.1",
		"engine.cell:panic:lots",
		"engine.cell:panic:0.1:5ms", // duration on a non-latency rule
		"engine.cell:latency:0.1",   // latency without duration
		"engine.cell:latency:0.1:fast",
		"engine.cell:panic:0.1,,",
		"engine.cell:panic:0.1:5ms:extra",
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", s)
		}
	}
}

func TestNewInjectorValidation(t *testing.T) {
	cases := []Rule{
		{Point: "no.such.point", Mode: ModeError, Prob: 0.5},
		{Point: PointEngineCell, Mode: ModeError, Prob: -0.1},
		{Point: PointEngineCell, Mode: ModeError, Prob: 1.5},
		{Point: PointEngineCell, Mode: ModeLatency, Prob: 0.5}, // no sleep
		{Point: PointEngineCell, Mode: ModeError, Prob: 0.5, Sleep: time.Millisecond},
	}
	for _, r := range cases {
		if _, err := NewInjector(1, []Rule{r}); err == nil {
			t.Errorf("NewInjector accepted %+v, want error", r)
		}
	}
}

// TestFireErrorMode checks the error mode fires at roughly its probability
// and wraps ErrInjected.
func TestFireErrorMode(t *testing.T) {
	inj := armed(t, 42, "engine.cell:error:0.3")
	const n = 10000
	fired := 0
	for i := 0; i < n; i++ {
		if err := inj.Fire(PointEngineCell); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("injected error %v does not wrap ErrInjected", err)
			}
			fired++
		}
	}
	if fired < n*25/100 || fired > n*35/100 {
		t.Errorf("error mode fired %d/%d times, want ~30%%", fired, n)
	}
	st := inj.Stats()
	if len(st) != 1 || st[0].Point != PointEngineCell {
		t.Fatalf("Stats() = %+v, want one entry for %s", st, PointEngineCell)
	}
	if st[0].Calls != n || st[0].Errors != int64(fired) || st[0].Panics != 0 {
		t.Errorf("Stats() = %+v, want calls=%d errors=%d", st[0], n, fired)
	}
}

// TestFireDeterministicBySeed replays the decision stream: same seed, same
// spec, same invocation sequence => identical fire pattern; different seed
// => a different one.
func TestFireDeterministicBySeed(t *testing.T) {
	pattern := func(seed uint64) []bool {
		inj := armed(t, seed, "service.run:error:0.5")
		out := make([]bool, 200)
		for i := range out {
			out[i] = inj.Fire(PointServiceRun) != nil
		}
		return out
	}
	a, b, c := pattern(7), pattern(7), pattern(8)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at invocation %d", i)
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical 200-step decision streams")
	}
}

func TestFirePanicMode(t *testing.T) {
	inj := armed(t, 1, "engine.cell:panic:1")
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok {
			t.Fatalf("recovered %v (%T), want PanicValue", r, r)
		}
		if pv.Point != PointEngineCell {
			t.Errorf("panic point %q, want %q", pv.Point, PointEngineCell)
		}
	}()
	_ = inj.Fire(PointEngineCell)
	t.Fatal("panic mode with probability 1 did not panic")
}

func TestFireLatencyMode(t *testing.T) {
	inj := armed(t, 1, "service.handler:latency:1:10ms")
	start := time.Now()
	if err := inj.Fire(PointServiceHandler); err != nil {
		t.Fatalf("latency mode returned error %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("latency mode slept %v, want >= 10ms", d)
	}
	if st := inj.Stats(); st[0].Latencies != 1 {
		t.Errorf("Stats latencies = %d, want 1", st[0].Latencies)
	}
}

// TestFireUnarmedPointIsNoop: points without rules never fire, and global
// Fire with no injector installed is a no-op.
func TestFireUnarmedPointIsNoop(t *testing.T) {
	inj := armed(t, 1, "engine.cell:error:1")
	for i := 0; i < 100; i++ {
		if err := inj.Fire(PointServiceRun); err != nil {
			t.Fatalf("unarmed point fired: %v", err)
		}
	}

	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable()")
	}
	for i := 0; i < 100; i++ {
		if err := Fire(PointEngineCell); err != nil {
			t.Fatalf("disabled Fire returned %v", err)
		}
	}
}

func TestEnableDisable(t *testing.T) {
	inj, err := Enable(99, "engine.cell:error:1")
	if err != nil {
		t.Fatal(err)
	}
	defer Disable()
	if !Enabled() || Active() != inj {
		t.Fatal("Enable did not install the injector")
	}
	if err := Fire(PointEngineCell); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed Fire = %v, want ErrInjected", err)
	}
	if inj.Seed() != 99 {
		t.Errorf("Seed() = %d, want 99", inj.Seed())
	}
	Disable()
	if err := Fire(PointEngineCell); err != nil {
		t.Fatalf("Fire after Disable = %v, want nil", err)
	}
}

// TestFireConcurrentStreamConservation hammers one point from many
// goroutines: no race (under -race), and calls == sum of decisions taken,
// i.e. the locked stream never loses or double-counts an invocation.
func TestFireConcurrentStreamConservation(t *testing.T) {
	inj := armed(t, 3, "service.run:error:0.4")
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	fired := make([]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if inj.Fire(PointServiceRun) != nil {
					fired[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, f := range fired {
		total += f
	}
	st := inj.Stats()
	if st[0].Calls != goroutines*per {
		t.Errorf("calls = %d, want %d", st[0].Calls, goroutines*per)
	}
	if st[0].Errors != total {
		t.Errorf("stats errors = %d, callers observed %d", st[0].Errors, total)
	}
}

// TestMultiRuleFirstCoinWins: several rules on one point are tried in spec
// order; with the first at probability 1 the second never fires.
func TestMultiRuleFirstCoinWins(t *testing.T) {
	inj := armed(t, 5, "engine.cell:error:1,engine.cell:latency:1:1h")
	done := make(chan error, 1)
	go func() { done <- inj.Fire(PointEngineCell) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("fire = %v, want ErrInjected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fire slept: the 1h latency rule fired despite the error rule at probability 1")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{ModeError: "error", ModePanic: "panic", ModeLatency: "latency", Mode(9): "Mode(9)"} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
	if s := (PanicValue{Point: "x"}).String(); s != "fault: injected panic at x" {
		t.Errorf("PanicValue.String() = %q", s)
	}
	_ = fmt.Stringer(PanicValue{})
}
