// Package fault is the repository's seed-deterministic fault-injection
// layer: named injection points scattered through the engine and the
// cadaptived service that can fire panics, errors, or latency with
// configured probabilities, driven entirely by internal/xrand streams so
// that every chaos run is replayable from a single seed.
//
// Determinism model. Each injection point owns a private xrand stream
// seeded with xrand.Split(chaosSeed, pointName): the *sequence* of
// fire/no-fire decisions a point produces is a pure function of
// (seed, spec), independent of wall clock, process identity, or host.
// Under concurrency the runtime schedule decides which caller consumes
// which decision, so chaos tests assert schedule-independent invariants
// (no process death, token conservation, metrics conservation, eventual
// byte-identical results) rather than "request 7 fails" — the same posture
// the engine takes for result determinism, applied to failure.
//
// Cost model. When no injector is installed, Fire is a single atomic
// pointer load and a predictable branch — cheap enough to leave the calls
// compiled into production binaries, which is the point: the injection
// sites exercised by chaos tests are the exact sites that run in
// production, not a parallel build.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xrand"
)

// Injection point names. Points are dotted paths, coarsest-first
// (package.operation), so specs can be read like a blast-radius table.
const (
	// PointEngineCell fires inside engine.Map immediately before a cell's
	// function runs: an error here is indistinguishable from the cell
	// failing, a panic from the cell's code panicking.
	PointEngineCell = "engine.cell"
	// PointServiceHandler fires at the top of POST /v1/run request
	// handling, before validation — the middleware must contain it.
	PointServiceHandler = "service.handler"
	// PointServiceRun fires inside the admitted run path, after the
	// semaphore is held and before the experiment executes.
	PointServiceRun = "service.run"
	// PointServiceCache fires on the cache-fill path, after a successful
	// run and before its body is returned for insertion.
	PointServiceCache = "service.cache"
	// PointJobsJournal fires at the top of every jobs-journal append, before
	// the record is framed: an error here is indistinguishable from a failed
	// disk write, so it proves the journal's graceful-degradation path (count
	// the miss, keep the in-memory result, recompute after restart).
	PointJobsJournal = "jobs.journal"
	// PointJobsCell fires inside a batch cell attempt, before the cell runner
	// executes — the per-cell retry/poison machinery must contain it.
	PointJobsCell = "jobs.cell"
	// PointJobsSched fires inside the jobs scheduler's dispatch loop; a panic
	// here must not wedge dispatch (the scheduler relaunches itself).
	PointJobsSched = "jobs.sched"
)

// Points lists every injection point compiled into the tree, for -chaos-spec
// validation and documentation.
func Points() []string {
	return []string{
		PointEngineCell,
		PointJobsCell, PointJobsJournal, PointJobsSched,
		PointServiceCache, PointServiceHandler, PointServiceRun,
	}
}

// ErrInjected marks every error produced by the injector; tests and
// middleware match it with errors.Is to tell injected failures from real
// ones.
var ErrInjected = errors.New("fault injected")

// PanicValue is what an injected panic carries, so recovery sites (and the
// humans reading their logs) can tell an injected panic from an organic one.
type PanicValue struct {
	Point string
}

func (v PanicValue) String() string { return "fault: injected panic at " + v.Point }

// Mode is what a rule does when its coin lands.
type Mode int

const (
	ModeError Mode = iota
	ModePanic
	ModeLatency
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeLatency:
		return "latency"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Rule arms one point with one failure mode.
type Rule struct {
	Point string
	Mode  Mode
	// Prob is the per-invocation firing probability in [0, 1].
	Prob float64
	// Sleep is the injected delay for ModeLatency rules.
	Sleep time.Duration
}

// pointState is the per-point runtime: a locked xrand stream (the decision
// sequence) plus observability counters.
type pointState struct {
	mu sync.Mutex
	// src is the decision stream; one draw per armed rule per Fire, in
	// lock order, keeps the sequence deterministic under any schedule.
	//lint:guardedby mu
	src    *xrand.Source
	rules  []Rule // armed before publication, read-only afterwards
	calls  atomic.Int64
	firing [3]atomic.Int64 // indexed by Mode
}

// Injector is an armed set of rules. The zero Injector is invalid; build
// one with NewInjector.
type Injector struct {
	seed   uint64
	spec   string
	points map[string]*pointState
}

// NewInjector arms rules under seed. Every rule's point must be a known
// injection point and its probability in [0, 1]; latency rules need a
// positive sleep.
func NewInjector(seed uint64, rules []Rule) (*Injector, error) {
	known := map[string]bool{}
	for _, p := range Points() {
		known[p] = true
	}
	inj := &Injector{seed: seed, points: map[string]*pointState{}}
	for _, r := range rules {
		if !known[r.Point] {
			return nil, fmt.Errorf("fault: unknown injection point %q (have %s)", r.Point, strings.Join(Points(), ", "))
		}
		if r.Prob < 0 || r.Prob > 1 {
			return nil, fmt.Errorf("fault: %s: probability %g outside [0,1]", r.Point, r.Prob)
		}
		if r.Mode == ModeLatency && r.Sleep <= 0 {
			return nil, fmt.Errorf("fault: %s: latency rule needs a positive duration", r.Point)
		}
		if r.Mode != ModeLatency && r.Sleep != 0 {
			return nil, fmt.Errorf("fault: %s: duration is only valid for latency rules", r.Point)
		}
		ps, ok := inj.points[r.Point]
		if !ok {
			ps = &pointState{src: xrand.New(xrand.Split(seed, "fault/"+r.Point))}
			inj.points[r.Point] = ps
		}
		ps.rules = append(ps.rules, r)
	}
	return inj, nil
}

// Seed returns the chaos seed the injector was armed with.
func (inj *Injector) Seed() uint64 { return inj.seed }

// Fire runs point's decision stream one step and returns the injected
// error, sleeps, or panics. nil means "no fault this time". Most callers
// use the package-level Fire against the process-wide injector; the method
// exists so tests can drive a private injector's streams directly.
func (inj *Injector) Fire(point string) error {
	ps, ok := inj.points[point]
	if !ok {
		return nil
	}
	ps.calls.Add(1)
	// One uniform draw per armed rule, under the point's lock: the decision
	// sequence is the stream's output order, whatever the caller schedule.
	var fired *Rule
	ps.mu.Lock()
	for i := range ps.rules {
		if ps.src.Float64() < ps.rules[i].Prob {
			fired = &ps.rules[i]
			break
		}
	}
	ps.mu.Unlock()
	if fired == nil {
		return nil
	}
	ps.firing[fired.Mode].Add(1)
	switch fired.Mode {
	case ModePanic:
		panic(PanicValue{Point: point})
	case ModeLatency:
		time.Sleep(fired.Sleep)
		return nil
	default:
		return fmt.Errorf("%w at %s", ErrInjected, point)
	}
}

// Stat is one point's observability snapshot.
type Stat struct {
	Point     string
	Calls     int64
	Errors    int64
	Panics    int64
	Latencies int64
}

// Stats reports per-point call and firing counts, sorted by point name.
func (inj *Injector) Stats() []Stat {
	out := make([]Stat, 0, len(inj.points))
	for name, ps := range inj.points {
		out = append(out, Stat{ //lint:ignore maporder out is sorted by point immediately below
			Point:     name,
			Calls:     ps.calls.Load(),
			Errors:    ps.firing[ModeError].Load(),
			Panics:    ps.firing[ModePanic].Load(),
			Latencies: ps.firing[ModeLatency].Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// active is the process-wide injector; nil means disabled and makes every
// Fire a no-op.
var active atomic.Pointer[Injector]

// Enable parses spec (see ParseSpec) and installs the resulting injector
// process-wide, replacing any previous one.
func Enable(seed uint64, spec string) (*Injector, error) {
	rules, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	inj, err := NewInjector(seed, rules)
	if err != nil {
		return nil, err
	}
	inj.spec = spec
	active.Store(inj)
	return inj, nil
}

// Disable removes the process-wide injector; Fire becomes a no-op again.
func Disable() { active.Store(nil) }

// Enabled reports whether a process-wide injector is installed.
func Enabled() bool { return active.Load() != nil }

// Active returns the installed injector (nil when disabled), for stats.
func Active() *Injector { return active.Load() }

// Fire consults the process-wide injector at the named point. With no
// injector installed it is a single atomic load. Otherwise it returns an
// injected error, sleeps an injected latency, panics an injected panic —
// or returns nil, meaning the operation proceeds untouched.
func Fire(point string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.Fire(point)
}
