package adaptivity

import (
	"strings"
	"testing"

	"repro/internal/paging"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/trace"
)

// measureMaterialized is the pre-refactor MeasureTrace: build the full
// trace, then replay it through SquareRun.
func measureMaterialized(spec regular.Spec, tr *trace.Trace, src profile.Source) (RunResult, error) {
	stats, err := paging.SquareRun(tr, src, 0)
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{Spec: spec, N: tr.MaxBlock() + 1, Boxes: int64(len(stats))}
	for _, s := range stats {
		res.BoundedPotential += spec.BoundedPotential(s.Size, res.N)
		res.Progress += s.Leaves
		res.BoxSizeSum += s.Size
	}
	return res, nil
}

// TestMeasureTraceBeyondMaterializationCeiling demonstrates the raised
// size limit the streaming pipeline buys: a (3,2,1)-regular problem of
// n = 2^17 blocks has T(n) = 3^18 − 2^18 ≈ 3.9·10^8 references, beyond
// SyntheticTrace's 2^28 materialization ceiling — the old
// materialize-then-replay MeasureTrace could not run it at all. The
// streaming backend completes it in O(n) memory (a ~1 MB residency array)
// and the result obeys the Theorem 2 shape (gap ≈ log_b n + 1 on the
// worst-case profile, bounded sanity here to keep the check cheap).
func TestMeasureTraceBeyondMaterializationCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("~4·10^8 streamed references; skipped under -short")
	}
	spec := regular.MustSpec(3, 2, 1)
	n := int64(1) << 17

	// The materialized path must refuse this size…
	if _, err := regular.SyntheticTrace(spec, n); err == nil {
		t.Fatal("SyntheticTrace accepted a size past its ceiling; this test no longer demonstrates anything")
	} else if !strings.Contains(err.Error(), "too large") {
		t.Fatalf("SyntheticTrace failed for the wrong reason: %v", err)
	}

	// …while the streaming backend completes it.
	src := profile.FuncSource(func() int64 { return 4096 })
	res, err := MeasureTrace(spec, n, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantLeaves := int64(1)
	for k := int64(0); k < 17; k++ {
		wantLeaves *= 3
	}
	if res.Progress != wantLeaves {
		t.Errorf("completed %d base cases, want 3^17 = %d", res.Progress, wantLeaves)
	}
	if res.Boxes < 1 || res.BoundedPotential <= 0 {
		t.Errorf("degenerate run: boxes=%d potential=%g", res.Boxes, res.BoundedPotential)
	}
	// Constant boxes well below n: the gap must sit between 1 (perfect) and
	// the worst case log_2(n)+1 = 18.
	if g := res.Gap(); g < 1 || g > 18 {
		t.Errorf("gap %.3f outside [1, 18]", g)
	}
}

// TestMeasureTraceStreamingMatchesMaterialized pins the equivalence that
// makes the streaming backend safe: at sizes the materialized path still
// handles, both backends must agree exactly.
func TestMeasureTraceStreamingMatchesMaterialized(t *testing.T) {
	spec := regular.MustSpec(8, 4, 1)
	n := int64(256)
	wc, err := profile.WorstCase(8, 4, n)
	if err != nil {
		t.Fatal(err)
	}
	src1, err := profile.NewSliceSource(wc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureTrace(spec, n, src1, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Materialized reference: build the trace, replay via SquareRun.
	tr, err := regular.SyntheticTrace(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	src2, err := profile.NewSliceSource(wc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := measureMaterialized(spec, tr, src2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Boxes != ref.Boxes || res.Progress != ref.Progress ||
		res.BoxSizeSum != ref.BoxSizeSum || res.BoundedPotential != ref.BoundedPotential {
		t.Fatalf("streaming %+v != materialized %+v", res, ref)
	}
}
