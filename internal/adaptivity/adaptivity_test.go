package adaptivity

import (
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestGapOnWorstCaseProfileIsExactlyLog(t *testing.T) {
	// On M_{a,b}(n) the gap is exactly log_b n + 1 (Theorem 2's log gap,
	// with the profile's exact potential accounting).
	for _, tc := range []struct{ a, b int64 }{{8, 4}, {2, 2}, {4, 2}} {
		spec := regular.MustSpec(tc.a, tc.b, 1)
		for k := 1; k <= 5; k++ {
			n := profile.Pow(tc.b, k)
			wc, err := profile.WorstCase(tc.a, tc.b, n)
			if err != nil {
				t.Fatal(err)
			}
			res, err := GapOnProfile(spec, n, wc)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := res.Gap(), float64(k+1); math.Abs(got-want) > 1e-9 {
				t.Errorf("%v n=%d: gap = %g, want %g", spec, n, got, want)
			}
			if res.Boxes != int64(wc.Len()) {
				t.Errorf("%v n=%d: used %d boxes, profile has %d", spec, n, res.Boxes, wc.Len())
			}
			if float64(res.Progress) != spec.LeafCount(n) {
				t.Errorf("%v n=%d: progress %d", spec, n, res.Progress)
			}
		}
	}
}

func TestGapOnConstantFullBoxes(t *testing.T) {
	// Boxes of exactly size n: gap 1 — perfectly adaptive execution.
	spec := regular.MMScanSpec
	n := int64(256)
	res, err := GapOnProfile(spec, n, profile.MustNew([]int64{n}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Gap()-1) > 1e-9 {
		t.Errorf("gap = %g, want 1", res.Gap())
	}
}

func TestMeasureTraceMatchesSymbolicOnWorstCase(t *testing.T) {
	spec := regular.MMScanSpec
	n := int64(64)
	wc, err := profile.WorstCase(8, 4, n)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := GapOnProfile(spec, n, wc)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := profile.NewSliceSource(wc)
	tr, err := MeasureTrace(spec, n, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sym.Boxes != tr.Boxes {
		t.Errorf("boxes: symbolic %d, trace %d", sym.Boxes, tr.Boxes)
	}
	if sym.Progress != tr.Progress {
		t.Errorf("progress: symbolic %d, trace %d", sym.Progress, tr.Progress)
	}
	if math.Abs(sym.Gap()-tr.Gap()) > 1e-9 {
		t.Errorf("gap: symbolic %g, trace %g", sym.Gap(), tr.Gap())
	}
}

func TestMeasureTracePolicySquareRouting(t *testing.T) {
	// "square" (and "") must hit MeasureTrace itself — identical results,
	// not merely close ones.
	spec := regular.MMScanSpec
	n := int64(64)
	wc, err := profile.WorstCase(8, 4, n)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := profile.NewSliceSource(wc)
	want, err := MeasureTrace(spec, n, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"square", ""} {
		src2, _ := profile.NewSliceSource(wc)
		got, err := MeasureTracePolicy(spec, n, name, src2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("policy %q: %+v, MeasureTrace %+v", name, got, want)
		}
	}
}

func TestMeasureTracePolicyFullBoxes(t *testing.T) {
	// Boxes of exactly size n: the whole working set is fetched in the
	// first box and every policy — live kernel or clairvoyant — stays at
	// gap 1, like the square semantics.
	spec := regular.MMScanSpec
	n := int64(256)
	for _, name := range []string{"lru", "fifo", "arc", "2q", "opt"} {
		src, _ := profile.NewSliceSource(profile.MustNew([]int64{n}))
		res, err := MeasureTracePolicy(spec, n, name, src, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(res.Gap()-1) > 1e-9 {
			t.Errorf("%s: gap = %g, want 1", name, res.Gap())
		}
		if res.Boxes != 1 {
			t.Errorf("%s: used %d boxes, want 1", name, res.Boxes)
		}
	}
}

func TestMeasureTracePolicyUnknownName(t *testing.T) {
	src, _ := profile.NewSliceSource(profile.MustNew([]int64{8}))
	_, err := MeasureTracePolicy(regular.MMScanSpec, 64, "belady-crystal-ball", src, 0)
	if err == nil {
		t.Fatal("unknown policy name accepted")
	}
	for _, name := range []string{"lru", "fifo", "arc", "2q", "opt", "square"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list accepted name %q", err, name)
		}
	}
}

func TestGapOnDistBoundedAndFlat(t *testing.T) {
	// Theorem 1: i.i.d. boxes from any Σ ⇒ gap O(1) in expectation. Check
	// the measured mean gap stays in a modest band and does not grow with n.
	spec := regular.MMScanSpec
	dist, err := xrand.NewUniform(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Measure in the asymptotic regime (the gap has a small-n transient
	// while problems are not yet much larger than the boxes).
	var ks, means []float64
	for k := 4; k <= 7; k++ {
		n := profile.Pow(4, k)
		gaps, err := GapOnDist(spec, n, dist, 42, 12)
		if err != nil {
			t.Fatal(err)
		}
		s := stats.Summarize(gaps)
		if s.Mean > 12 {
			t.Errorf("n=4^%d: mean gap %g suspiciously large", k, s.Mean)
		}
		ks = append(ks, float64(k))
		means = append(means, s.Mean)
	}
	// The worst-case slope would be ~1 per level; adaptive-in-expectation
	// must be far below that.
	fit, err := stats.LinearFit(ks, means)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Beta > 0.3 {
		t.Errorf("gap grows with slope %g per level; expected ~0 (fit %v)", fit.Beta, fit)
	}
}

func TestGapOnDistValidation(t *testing.T) {
	dist, _ := xrand.NewUniform(1, 4)
	if _, err := GapOnDist(regular.MMScanSpec, 16, dist, 1, 0); err == nil {
		t.Error("0 trials accepted")
	}
}

func TestEstimateStoppingTimesPointMass(t *testing.T) {
	// Boxes always exactly n: f(n) = f'(n) = 1.
	spec := regular.MMScanSpec
	n := int64(64)
	dist, _ := xrand.NewUniform(n, n)
	st, err := EstimateStoppingTimes(spec, n, dist, 7, 50)
	if err != nil {
		t.Fatal(err)
	}
	if st.F != 1 || st.FPrime != 1 {
		t.Errorf("f = %g, f' = %g, want 1, 1", st.F, st.FPrime)
	}
}

func TestEstimateStoppingTimesUnitBoxes(t *testing.T) {
	// Boxes always size 1: f(n) = T(n) exactly, f'(n) = T(n) - n.
	spec := regular.MMScanSpec
	n := int64(64)
	dist, _ := xrand.NewUniform(1, 1)
	st, err := EstimateStoppingTimes(spec, n, dist, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := spec.IOCost(n); st.F != want {
		t.Errorf("f = %g, want %g", st.F, want)
	}
	if want := spec.IOCost(n) - float64(n); st.FPrime != want {
		t.Errorf("f' = %g, want %g", st.FPrime, want)
	}
}

func TestEstimateStoppingTimesOrdering(t *testing.T) {
	// f' <= f always (skipping the root scan can only help).
	spec := regular.MMScanSpec
	dist, _ := xrand.NewUniform(2, 100)
	st, err := EstimateStoppingTimes(spec, 256, dist, 11, 40)
	if err != nil {
		t.Fatal(err)
	}
	if st.FPrime > st.F {
		t.Errorf("f' = %g > f = %g", st.FPrime, st.F)
	}
	if st.FSE <= 0 {
		t.Error("FSE not positive with random boxes")
	}
}

func TestCheckLemma3QEqualsP(t *testing.T) {
	// The lemma's headline identity: q = p = Pr[|□| >= n]·f(n/b).
	spec := regular.MMScanSpec
	n := int64(64)
	for _, dist := range []xrand.Dist{
		mustUniform(t, 8, 128),
		mustTwoPoint(t, 4, 256, 0.05),
	} {
		res, err := CheckLemma3(spec, n, dist, 99, 6000)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0 || res.P > 1.0001 {
			t.Errorf("%s: p = %g outside [0,1]", dist.Name(), res.P)
		}
		tol := 4*res.QSE + 0.02
		if math.Abs(res.Q-res.P) > tol {
			t.Errorf("%s: q = %g vs p = %g (tol %g)", dist.Name(), res.Q, res.P, tol)
		}
		// f'(n) must match the closed-form Σ (1-p)^{i-1} f(n/b) within a
		// few percent.
		relErr := math.Abs(res.SubBoxesMeasured-res.SubBoxesFormula) / res.SubBoxesFormula
		if relErr > 0.08 {
			t.Errorf("%s: f' measured %g vs formula %g (rel err %.3f)",
				dist.Name(), res.SubBoxesMeasured, res.SubBoxesFormula, relErr)
		}
	}
}

func TestCheckLemma3NoBigBoxes(t *testing.T) {
	// Distribution that can never produce a >= n box: p = q = 0 and the
	// subproblem formula degenerates to a·f(n/b).
	spec := regular.MMScanSpec
	n := int64(256)
	dist := mustUniform(t, 2, 16)
	res, err := CheckLemma3(spec, n, dist, 5, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 || res.Q != 0 {
		t.Errorf("p = %g, q = %g, want 0, 0", res.P, res.Q)
	}
	if want := float64(spec.A) * res.FChild; math.Abs(res.SubBoxesFormula-want) > 1e-9 {
		t.Errorf("formula %g, want a·f(n/b) = %g", res.SubBoxesFormula, want)
	}
}

func TestCheckLemma3Validation(t *testing.T) {
	dist := mustUniform(t, 1, 8)
	if _, err := CheckLemma3(regular.MMInPlaceSpec, 64, dist, 1, 10); err == nil {
		t.Error("c != 1 accepted")
	}
	if _, err := CheckLemma3(regular.MMScanSpec, 3, dist, 1, 10); err == nil {
		t.Error("n < b accepted")
	}
	if _, err := CheckLemma3(regular.MMScanSpec, 64, dist, 1, 1); err == nil {
		t.Error("1 trial accepted")
	}
}

func TestCheckRecurrence(t *testing.T) {
	spec := regular.MMScanSpec
	dist := mustUniform(t, 4, 64)
	sizes := []int64{16, 64, 256, 1024, 4096}
	points, product, err := CheckRecurrence(spec, sizes, dist, 123, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(sizes) {
		t.Fatalf("points = %d", len(points))
	}
	// Equation 8: the aggregate f/f' product is O(1).
	if product > 8 {
		t.Errorf("Π f/f' = %g, expected bounded by a small constant", product)
	}
	if product < 1 {
		t.Errorf("Π f/f' = %g < 1; f >= f' must force product >= 1", product)
	}
	// Equation 3's normalised stopping time f(n)·m_n/n^e must be O(1):
	// bounded at every size, and plateauing (not growing) once n is well
	// past the box sizes.
	for _, pt := range points {
		if pt.GapBound > 10 {
			t.Errorf("n=%d: f·m_n/n^e = %g too large", pt.N, pt.GapBound)
		}
	}
	last := points[len(points)-1]
	prev := points[len(points)-2]
	if last.GapBound > 1.4*prev.GapBound {
		t.Errorf("normalised stopping time still growing at the top: %g -> %g", prev.GapBound, last.GapBound)
	}
}

func TestCheckRecurrenceValidation(t *testing.T) {
	dist := mustUniform(t, 1, 8)
	if _, _, err := CheckRecurrence(regular.MMInPlaceSpec, []int64{16, 64}, dist, 1, 10, 4); err == nil {
		t.Error("c != 1 accepted")
	}
	if _, _, err := CheckRecurrence(regular.MMScanSpec, []int64{16, 256}, dist, 1, 10, 4); err == nil {
		t.Error("non-consecutive sizes accepted")
	}
	if _, _, err := CheckRecurrence(regular.MMScanSpec, []int64{48}, dist, 1, 10, 4); err == nil {
		t.Error("non-power size accepted")
	}
}

func mustUniform(t *testing.T, lo, hi int64) xrand.Dist {
	t.Helper()
	d, err := xrand.NewUniform(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustTwoPoint(t *testing.T, small, big int64, p float64) xrand.Dist {
	t.Helper()
	d, err := xrand.NewTwoPoint(small, big, p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Parallel trials must be bit-deterministic in the seed: the same call
// twice yields identical per-trial results regardless of scheduling.
func TestGapOnDistDeterministicUnderParallelism(t *testing.T) {
	dist := mustUniform(t, 4, 64)
	a, err := GapOnDist(regular.MMScanSpec, 1024, dist, 77, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GapOnDist(regular.MMScanSpec, 1024, dist, 77, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs across runs: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestEstimateStoppingTimesDeterministicUnderParallelism(t *testing.T) {
	dist := mustUniform(t, 4, 64)
	a, err := EstimateStoppingTimes(regular.MMScanSpec, 1024, dist, 5, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateStoppingTimes(regular.MMScanSpec, 1024, dist, 5, 32)
	if err != nil {
		t.Fatal(err)
	}
	if a.F != b.F || a.FPrime != b.FPrime || a.FSE != b.FSE {
		t.Fatalf("estimates differ across runs: %+v vs %+v", a, b)
	}
}

// Force the engine's worker-pool path (this machine may have GOMAXPROCS=1,
// where the shared pool recruits no helpers) and check that Monte-Carlo
// results do not depend on the worker count.
func TestTrialsDeterministicAcrossWorkers(t *testing.T) {
	defer engine.SetSharedWorkers(0)

	engine.SetSharedWorkers(4)
	dist := mustUniform(t, 4, 64)
	parallelGaps, err := GapOnDist(regular.MMScanSpec, 256, dist, 123, 24)
	if err != nil {
		t.Fatal(err)
	}
	engine.SetSharedWorkers(1)
	serialGaps, err := GapOnDist(regular.MMScanSpec, 256, dist, 123, 24)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serialGaps {
		if serialGaps[i] != parallelGaps[i] {
			t.Fatalf("trial %d: serial %g vs parallel %g", i, serialGaps[i], parallelGaps[i])
		}
	}
}

// The single-trial primitives must agree with their batched counterparts
// and be executor-reuse safe.
func TestGapSampleMatchesExecReuse(t *testing.T) {
	dist := mustUniform(t, 4, 64)
	e, err := regular.NewExec(regular.MMScanSpec, 256)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		seed := xrand.Split(99, "test", int64(trial))
		fresh, err := GapSample(regular.MMScanSpec, 256, dist, seed)
		if err != nil {
			t.Fatal(err)
		}
		reused, err := GapSampleExec(e, dist, seed)
		if err != nil {
			t.Fatal(err)
		}
		if fresh != reused {
			t.Fatalf("trial %d: fresh exec %g vs reused exec %g", trial, fresh, reused)
		}
	}
}

// OpGap — the footnote-4 operation reading — is exactly 1 for an a < b
// algorithm on its worst-case profile (every granted I/O is used) and
// bounded for a > b.
func TestOpGap(t *testing.T) {
	spec := regular.MustSpec(2, 4, 1)
	n := int64(256)
	wc, err := profile.WorstCase(2, 4, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GapOnProfile(spec, n, wc)
	if err != nil {
		t.Fatal(err)
	}
	if g := res.OpGap(); math.Abs(g-1) > 0.05 {
		t.Errorf("a<b op gap = %g, want ~1", g)
	}
}
