// Package adaptivity measures cache-adaptivity: it runs (a,b,c)-regular
// executions against memory profiles and evaluates the paper's efficiency
// criterion.
//
// An execution consuming squares (□_1, ..., □_j) on a problem of size n is
// efficiently cache-adaptive when (Equation 2)
//
//	Σ_{i=1..j} min(n, |□_i|)^{log_b a}  <=  O(n^{log_b a}),
//
// so the package's central quantity is the gap
//
//	gap = Σ min(n, |□_i|)^{log_b a} / n^{log_b a},
//
// which is Θ(1) for adaptive executions and Θ(log_b n) on worst-case
// profiles (Theorem 2). The package also estimates the stopping times f(n)
// and f'(n) of Section 4 and checks Lemma 3 and Equations 6–8 empirically.
//
// Two execution backends are provided: the symbolic executor (faithful to
// the paper's simplified caching model, which the paper states for c = 1)
// and the trace/paging backend (ground truth for any c, including the
// adaptive c < 1 algorithms such as MM-InPlace whose boxes genuinely carry
// leftover budget past scans).
package adaptivity

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/paging"
	"repro/internal/profile"
	"repro/internal/regular"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// RunResult summarises one execution against a box stream.
type RunResult struct {
	Spec             regular.Spec
	N                int64   // problem size in blocks
	Boxes            int64   // boxes consumed until completion
	BoundedPotential float64 // Σ min(n, |□|)^{log_b a}
	Progress         int64   // base cases completed (== total leaves on success)
	BoxSizeSum       int64   // Σ |□| over consumed boxes — the I/O-time the profile granted
}

// Gap returns BoundedPotential / n^{log_b a} — 1 means every box made full
// use of its potential; log_b n + 1 is the worst case.
func (r RunResult) Gap() float64 {
	return r.BoundedPotential / r.Spec.Potential(r.N)
}

// OpGap returns the operation-based efficiency reading (footnote 4 of the
// paper): total box I/O-time granted divided by the algorithm's serial I/O
// cost T(n). For a < b, c = 1 algorithms — which run in linear time
// independent of cache size — this is the quantity that is Θ(1) and makes
// them "trivially cache-adaptive"; the base-case potential reading does
// not apply to them because scans, not base cases, carry their work.
func (r RunResult) OpGap() float64 {
	return float64(r.BoxSizeSum) / r.Spec.IOCost(r.N)
}

// MeasureSymbolic runs the symbolic executor for spec on a problem of n
// blocks against boxes from src, up to maxBoxes (0 = unbounded). The
// symbolic backend implements the paper's simplified caching model, which
// is exact for c = 1; for c < 1 it is pessimistic (boxes are not credited
// with budget left over after short scans) — use MeasureTrace for faithful
// c < 1 numbers.
func MeasureSymbolic(spec regular.Spec, n int64, src profile.Source, maxBoxes int64) (RunResult, error) {
	e, err := regular.NewExec(spec, n)
	if err != nil {
		return RunResult{}, err
	}
	return MeasureSymbolicExec(e, src, maxBoxes)
}

// MeasureSymbolicExec is MeasureSymbolic against a caller-owned executor,
// which is Reset before the run. Engine workers use it to reuse one
// executor's frame stack across every trial of the same (spec, n) instead
// of allocating a fresh executor per cell. Any mode flags set on e
// (strict scans, spread scans, ...) carry over.
func MeasureSymbolicExec(e *regular.Exec, src profile.Source, maxBoxes int64) (RunResult, error) {
	e.Reset()
	spec, n := e.Spec(), e.N()
	res := RunResult{Spec: spec, N: n}
	err := e.Run(src.Next, maxBoxes, func(box, prog int64) {
		res.Boxes++
		res.BoundedPotential += spec.BoundedPotential(box, n)
		res.Progress += prog
		res.BoxSizeSum += box
	})
	if err != nil {
		return res, err
	}
	return res, nil
}

// parallelTraceMinRefs is the stream length below which MeasureTrace does
// not attempt a sharded replay: the parallel path pays a serial planning
// pass over the whole stream, which only amortises on long streams.
const parallelTraceMinRefs = int64(1) << 22

// MeasureTrace streams the canonical synthetic trace for spec on n blocks
// through the square-semantics cache against boxes from src. This is the
// ground-truth backend; it is exact for every c. The trace is never
// materialized — the generator emits straight into the square-cache sink —
// so memory is O(n) (the residency set) rather than Θ(T(n)), and problem
// sizes far beyond SyntheticTrace's materialization ceiling stream fine.
//
// Long streams from a forkable source run as a parallel
// square-partitioned replay on the shared engine pool
// (paging.SquareEmitParallel); the result is byte-identical to the serial
// replay at any worker count, so callers see only the wall-time
// difference. Short streams, non-forkable sources, and saturated pools
// take the plain serial path.
func MeasureTrace(spec regular.Spec, n int64, src profile.Source, maxBoxes int64) (RunResult, error) {
	total := int64(spec.IOCost(n))
	if _, ok := src.(profile.ForkableSource); ok && total >= parallelTraceMinRefs {
		if shards := paging.DefaultShards(); shards > 1 {
			emit := func(s trace.Sink) error { return regular.EmitSynthetic(spec, n, s) }
			stats, err := paging.SquareEmitParallel(emit, total, n-1, src, maxBoxes, shards)
			if err != nil {
				return RunResult{}, err
			}
			return traceResult(spec, n, stats), nil
		}
	}
	q := paging.NewSquareStream(src, maxBoxes)
	q.Reserve(n - 1)
	if err := regular.EmitSynthetic(spec, n, q); err != nil {
		return RunResult{}, err
	}
	stats, err := q.Finish()
	if err != nil {
		return RunResult{}, err
	}
	return traceResult(spec, n, stats), nil
}

// MeasureTracePolicy is MeasureTrace generalised over the replacement
// policy: the canonical synthetic trace for spec streams through the named
// replay — a registered kernel (paging.PolicyNames) replayed live with the
// box profile driving its capacity, "opt" for the clairvoyant box replay,
// or "square" (or "") for the cleared-cache square semantics, which routes
// to MeasureTrace itself. Only the square path shards: the live kernels
// carry state across box boundaries, so a policy replay cannot be forked
// mid-stream — it always runs serially. "opt" needs the future, so its
// trace is materialized (regular.SyntheticTrace's ceiling applies).
func MeasureTracePolicy(spec regular.Spec, n int64, policy string, src profile.Source, maxBoxes int64) (RunResult, error) {
	switch policy {
	case "", paging.SquareReplayName:
		return MeasureTrace(spec, n, src, maxBoxes)
	case paging.OPTReplayName:
		tr, err := regular.SyntheticTrace(spec, n)
		if err != nil {
			return RunResult{}, err
		}
		stats, err := paging.OPTRunBoxes(tr, src, maxBoxes)
		if err != nil {
			return RunResult{}, err
		}
		return traceResult(spec, n, stats), nil
	}
	p, err := paging.NewReplacementPolicy(policy, 1)
	if err != nil {
		return RunResult{}, fmt.Errorf("adaptivity: unknown replay policy %q (have %v)", policy, paging.ReplayNames())
	}
	q := paging.NewPolicyStream(p, src, maxBoxes)
	q.Reserve(n - 1)
	if err := regular.EmitSynthetic(spec, n, q); err != nil {
		return RunResult{}, err
	}
	stats, err := q.Finish()
	if err != nil {
		return RunResult{}, err
	}
	return traceResult(spec, n, stats), nil
}

// traceResult folds a per-box ledger into a RunResult in box order — the
// float accumulation order is part of the byte-identity contract between
// the serial and sharded replays.
func traceResult(spec regular.Spec, n int64, stats []paging.BoxStat) RunResult {
	res := RunResult{Spec: spec, N: n, Boxes: int64(len(stats))}
	for _, s := range stats {
		res.BoundedPotential += spec.BoundedPotential(s.Size, n)
		res.Progress += s.Leaves
		res.BoxSizeSum += s.Size
	}
	return res
}

// GapOnProfile runs spec on n blocks against prof (cycled if the algorithm
// needs more boxes than the profile holds) with the symbolic backend and
// returns the run.
func GapOnProfile(spec regular.Spec, n int64, prof *profile.SquareProfile) (RunResult, error) {
	src, err := profile.NewSliceSource(prof)
	if err != nil {
		return RunResult{}, err
	}
	// The largest sound bound on boxes: every box completes at least one
	// access of the T(n) total, so T(n)+1 boxes always suffice.
	maxBoxes := int64(spec.IOCost(n)) + 1
	return MeasureSymbolic(spec, n, src, maxBoxes)
}

// GapOnBoxesExec is GapOnProfile over a raw box slice (cycled) with a
// caller-owned executor and source — the fully allocation-light form for
// engine workers that perturb profiles into per-worker scratch buffers.
func GapOnBoxesExec(e *regular.Exec, src *profile.BoxesSource, boxes []int64) (RunResult, error) {
	if err := src.Rebind(boxes); err != nil {
		return RunResult{}, err
	}
	maxBoxes := int64(e.Spec().IOCost(e.N())) + 1
	return MeasureSymbolicExec(e, src, maxBoxes)
}

// GapSample runs one Theorem-1 trial — spec on n blocks against i.i.d.
// boxes from dist under the given seed — and returns the trial's gap. It
// is the single-cell primitive the experiment engine fans out across
// (size, trial) cells with xrand.Split-derived seeds.
func GapSample(spec regular.Spec, n int64, dist xrand.Dist, seed uint64) (float64, error) {
	e, err := regular.NewExec(spec, n)
	if err != nil {
		return 0, err
	}
	return GapSampleExec(e, dist, seed)
}

// GapSampleExec is GapSample against a caller-owned executor.
func GapSampleExec(e *regular.Exec, dist xrand.Dist, seed uint64) (float64, error) {
	rng := xrand.New(seed)
	src := profile.FuncSource(func() int64 { return dist.Sample(rng) })
	res, err := MeasureSymbolicExec(e, src, 0)
	if err != nil {
		return 0, err
	}
	return res.Gap(), nil
}

// GapOnDist runs `trials` independent executions of spec on n blocks with
// i.i.d. box sizes from dist (Theorem 1's setting) and returns the per-trial
// gaps. Each trial derives its own generator from seed, so the result is
// deterministic in (seed, trials) even though trials run on all cores.
func GapOnDist(spec regular.Spec, n int64, dist xrand.Dist, seed uint64, trials int) ([]float64, error) {
	if trials < 1 {
		return nil, fmt.Errorf("adaptivity: trials = %d < 1", trials)
	}
	// Derive the per-trial generators serially (the derivation order is
	// part of the contract), then run the trials on the shared engine pool.
	root := xrand.New(seed)
	rngs := make([]*xrand.Source, trials)
	for t := range rngs {
		rngs[t] = root.Split()
	}
	gaps := make([]float64, trials)
	g := engine.NewGroup()
	err := g.Map(trials, func(t, _ int) error {
		rng := rngs[t]
		src := profile.FuncSource(func() int64 { return dist.Sample(rng) })
		res, err := MeasureSymbolic(spec, n, src, 0)
		if err != nil {
			return err
		}
		gaps[t] = res.Gap()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return gaps, nil
}

// StoppingTimes holds Monte-Carlo estimates of the paper's f(n) (expected
// boxes to complete a problem of size n) and f'(n) (same, excluding the
// final scan) under a box-size distribution.
type StoppingTimes struct {
	N        int64
	F        float64 // mean boxes to complete
	FPrime   float64 // mean boxes to complete all subproblems (no root scan)
	FSE      float64 // standard error of F
	FPrimeSE float64
	Trials   int
}

// EstimateStoppingTimes Monte-Carlo estimates f(n) and f'(n) for spec under
// dist. The f and f' estimates use common random numbers (the same box
// stream per trial), which sharpens the f/f' ratio estimate used by the
// Equation 8 check.
func EstimateStoppingTimes(spec regular.Spec, n int64, dist xrand.Dist, seed uint64, trials int) (StoppingTimes, error) {
	if trials < 1 {
		return StoppingTimes{}, fmt.Errorf("adaptivity: trials = %d < 1", trials)
	}
	root := xrand.New(seed)
	trialSeeds := make([]uint64, trials)
	for t := range trialSeeds {
		trialSeeds[t] = root.Uint64()
	}
	fs := make([]float64, trials)
	fps := make([]float64, trials)
	g := engine.NewGroup()
	err := g.Map(trials, func(t, _ int) error {
		f, fp, err := StoppingSample(spec, n, dist, trialSeeds[t])
		if err != nil {
			return err
		}
		fs[t], fps[t] = f, fp
		return nil
	})
	if err != nil {
		return StoppingTimes{}, err
	}
	var sumF, sumF2, sumFp, sumFp2 float64
	for t := 0; t < trials; t++ {
		sumF += fs[t]
		sumF2 += fs[t] * fs[t]
		sumFp += fps[t]
		sumFp2 += fps[t] * fps[t]
	}
	tn := float64(trials)
	st := StoppingTimes{N: n, Trials: trials, F: sumF / tn, FPrime: sumFp / tn}
	if trials > 1 {
		st.FSE = se(sumF, sumF2, tn)
		st.FPrimeSE = se(sumFp, sumFp2, tn)
	}
	return st, nil
}

// StoppingSample runs one common-random-numbers trial of the f/f'
// estimators: the same box stream (seeded by trialSeed) drives one full
// run (f) and one run that skips the root scan (f'). It is the single-cell
// primitive behind EstimateStoppingTimes.
func StoppingSample(spec regular.Spec, n int64, dist xrand.Dist, trialSeed uint64) (f, fPrime float64, err error) {
	rng1 := xrand.New(trialSeed)
	e, err := regular.NewExec(spec, n)
	if err != nil {
		return 0, 0, err
	}
	for !e.Done() {
		e.Step(dist.Sample(rng1))
	}
	f = float64(e.BoxesUsed())

	rng2 := xrand.New(trialSeed)
	ep, err := regular.NewExec(spec, n)
	if err != nil {
		return 0, 0, err
	}
	if err := ep.SetSkipRootScan(true); err != nil {
		return 0, 0, err
	}
	for !ep.Done() {
		ep.Step(dist.Sample(rng2))
	}
	return f, float64(ep.BoxesUsed()), nil
}

func se(sum, sumSq, n float64) float64 {
	mean := sum / n
	variance := (sumSq - n*mean*mean) / (n - 1)
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance / n)
}
