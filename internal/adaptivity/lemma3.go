package adaptivity

import (
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/regular"
	"repro/internal/xrand"
)

// This file empirically checks the combinatorial core of the paper's main
// theorem: Lemma 3 and the semi-inductive recurrence of Equations 6–8.

// Lemma3Result collects the quantities in Lemma 3 for one problem size.
//
// The lemma (stated for a = 8, b = 4 in the paper; checked here for any
// (a,b,1) spec) says: with p = Pr[|□| >= n]·f(n/b),
//
//   - the probability q that the boxes completing the first subproblem
//     include a box of size >= n equals p exactly;
//   - the expected number of boxes to complete all a subproblems is
//     Σ_{i=1..a} (1-p)^{i-1}·f(n/b);
//   - the expected number of additional boxes for the final scan is
//     (1 - Θ(p))·Θ(n)/E[min(|□|, n)].
type Lemma3Result struct {
	Spec   regular.Spec
	N      int64
	Trials int

	FChild float64 // measured f(n/b)
	P      float64 // Pr[|□| >= n] · FChild (the lemma's p)
	Q      float64 // measured probability of a >= n box during the first subproblem
	QSE    float64 // standard error of Q

	SubBoxesFormula  float64 // Σ_{i=1..a} (1-p)^{i-1} · FChild
	SubBoxesMeasured float64 // measured f'(n)

	ScanBoxesMeasured  float64 // measured f(n) - f'(n)
	ScanBoxesPredicted float64 // (1-p̃)·n / E[min(|□|, n)], p̃ = 1-(1-p)^a
}

// CheckLemma3 estimates every quantity in Lemma 3 by Monte Carlo for an
// (a,b,1)-regular spec. It requires c = 1 (the lemma's setting).
func CheckLemma3(spec regular.Spec, n int64, dist xrand.Dist, seed uint64, trials int) (Lemma3Result, error) {
	if spec.C != 1 {
		return Lemma3Result{}, fmt.Errorf("adaptivity: Lemma 3 check requires c = 1, got %v", spec)
	}
	if !spec.ValidSize(n) || n < spec.B {
		return Lemma3Result{}, fmt.Errorf("adaptivity: n = %d must be a power of b >= b", n)
	}
	if trials < 2 {
		return Lemma3Result{}, fmt.Errorf("adaptivity: need >= 2 trials")
	}
	res := Lemma3Result{Spec: spec, N: n, Trials: trials}

	// f(n/b) and q: run the size-n/b subproblem and watch for >= n boxes.
	// Generators are derived serially (the derivation order is part of the
	// determinism contract); the trials themselves fan out on the engine.
	child := n / spec.B
	root := xrand.New(seed)
	rngs := make([]*xrand.Source, trials)
	for t := range rngs {
		rngs[t] = root.Split()
	}
	boxesUsed := make([]int64, trials)
	sawBig := make([]bool, trials)
	g := engine.NewGroup()
	if err := g.Map(trials, func(t, _ int) error {
		rng := rngs[t]
		e, err := regular.NewExec(spec, child)
		if err != nil {
			return err
		}
		for !e.Done() {
			box := dist.Sample(rng)
			e.Step(box)
			if box >= n {
				sawBig[t] = true
			}
		}
		boxesUsed[t] = e.BoxesUsed()
		return nil
	}); err != nil {
		return res, err
	}
	var sumF float64
	var bigBoxTrials int
	for t := 0; t < trials; t++ {
		sumF += float64(boxesUsed[t])
		if sawBig[t] {
			bigBoxTrials++
		}
	}
	res.FChild = sumF / float64(trials)
	res.Q = float64(bigBoxTrials) / float64(trials)
	res.QSE = math.Sqrt(res.Q * (1 - res.Q) / float64(trials))
	res.P = dist.TailProb(n) * res.FChild

	// Σ_{i=1..a} (1-p)^{i-1} f(n/b).
	pow := 1.0
	for i := int64(0); i < spec.A; i++ {
		res.SubBoxesFormula += pow * res.FChild
		pow *= 1 - res.P
	}

	// f(n) and f'(n) on the full problem.
	st, err := EstimateStoppingTimes(spec, n, dist, seed^0x5ca1ab1e, trials)
	if err != nil {
		return res, err
	}
	res.SubBoxesMeasured = st.FPrime
	res.ScanBoxesMeasured = st.F - st.FPrime

	pTilde := 1 - pow // 1 - (1-p)^a
	res.ScanBoxesPredicted = (1 - pTilde) * float64(n) / dist.MeanBoundedPow(n, 1)
	return res, nil
}

// RecurrencePoint holds the Equation 6/7 quantities at one problem size.
type RecurrencePoint struct {
	N        int64
	F        float64 // measured f(n)
	FPrime   float64 // measured f'(n)
	MN       float64 // m_n = E[min(|□|, n)^{log_b a}] (analytic)
	RatioLHS float64 // f(n)/f(n/b) — Equation 6's left side (can exceed the bound: scans)
	RatioEq7 float64 // f'(n)/f(n/b) — Equation 7's left side (the inequality that holds)
	RatioRHS float64 // a·m_{n/b}/m_n — the right side of both
	Eq9Holds bool    // f(n) >= C·n^{log_b a}/m_n (the regime where Eq. 7 applies)
	GapBound float64 // f(n)·m_n / n^{log_b a} — the normalised stopping time; O(1) iff adaptive in expectation (Equation 3)
}

// CheckRecurrence measures f and f' at each size in sizes (ascending powers
// of b) and evaluates the Equation 6–8 quantities. C is the Equation 9
// threshold constant. It returns the per-size points and the product
// Π f(n)/f'(n) over the sizes — Equation 8 asserts this product is O(1).
func CheckRecurrence(spec regular.Spec, sizes []int64, dist xrand.Dist, seed uint64, trials int, c float64) ([]RecurrencePoint, float64, error) {
	if spec.C != 1 {
		return nil, 0, fmt.Errorf("adaptivity: recurrence check requires c = 1, got %v", spec)
	}
	e := spec.Exponent()
	for i, n := range sizes {
		if !spec.ValidSize(n) {
			return nil, 0, fmt.Errorf("adaptivity: size %d not a power of b", n)
		}
		if i > 0 && n != sizes[i-1]*spec.B {
			return nil, 0, fmt.Errorf("adaptivity: sizes must be consecutive powers of b, got %d after %d", n, sizes[i-1])
		}
	}

	// Each size's stopping-time estimate is an independent Monte-Carlo job
	// with its own derived seed, so the sizes fan out on the engine; the
	// ratio pass below chains consecutive points and stays serial.
	ests := make([]StoppingTimes, len(sizes))
	g := engine.NewGroup()
	if err := g.Map(len(sizes), func(i, _ int) error {
		st, err := EstimateStoppingTimes(spec, sizes[i], dist, seed+uint64(i)*7919, trials)
		if err != nil {
			return err
		}
		ests[i] = st
		return nil
	}); err != nil {
		return nil, 0, err
	}

	points := make([]RecurrencePoint, 0, len(sizes))
	product := 1.0
	var prev *RecurrencePoint
	for i, n := range sizes {
		st := ests[i]
		pt := RecurrencePoint{
			N:      n,
			F:      st.F,
			FPrime: st.FPrime,
			MN:     dist.MeanBoundedPow(n, e),
		}
		pt.GapBound = pt.F * pt.MN / math.Pow(float64(n), e)
		pt.Eq9Holds = pt.F >= c*math.Pow(float64(n), e)/pt.MN
		if prev != nil {
			pt.RatioLHS = pt.F / prev.F
			pt.RatioEq7 = pt.FPrime / prev.F
			pt.RatioRHS = float64(spec.A) * prev.MN / pt.MN
		}
		if pt.FPrime > 0 {
			product *= pt.F / pt.FPrime
		}
		points = append(points, pt)
		prev = &points[len(points)-1]
	}
	return points, product, nil
}
