package adaptivity

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/profile"
	"repro/internal/regular"
)

// TestMeasureTraceIdenticalAcrossWorkerCounts pins the MeasureTrace
// determinism contract on a stream long enough to take the sharded path
// (T(n) >= parallelTraceMinRefs): the full RunResult — including the
// float accumulations — must be identical at every worker count.
func TestMeasureTraceIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-reference stream")
	}
	defer engine.SetSharedWorkers(0)
	spec := regular.MMScanSpec
	n := profile.Pow(4, 8) // T(n) ~ 17M refs, past the parallel threshold
	if int64(spec.IOCost(n)) < parallelTraceMinRefs {
		t.Fatalf("test stream too short to exercise the parallel path")
	}
	boxes := []int64{4096, 557, 2048, 31}
	var results []RunResult
	for _, workers := range []int{1, 2, 8} {
		engine.SetSharedWorkers(workers)
		src, err := profile.NewBoxesSource(boxes)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MeasureTrace(spec, n, src, 0)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("MeasureTrace diverges across worker counts:\nworkers=1: %+v\nother:     %+v", results[0], results[i])
		}
	}
}

// TestMeasureTraceShortStreamStaysSerial checks the small-stream guard:
// under the threshold the result must equal the plain serial replay no
// matter how many workers are idle.
func TestMeasureTraceShortStreamStaysSerial(t *testing.T) {
	defer engine.SetSharedWorkers(0)
	spec := regular.MMScanSpec
	n := profile.Pow(4, 4)
	boxes := []int64{64, 7}
	engine.SetSharedWorkers(1)
	src, _ := profile.NewBoxesSource(boxes)
	want, err := MeasureTrace(spec, n, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	engine.SetSharedWorkers(8)
	src, _ = profile.NewBoxesSource(boxes)
	got, err := MeasureTrace(spec, n, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("short-stream result depends on workers: %+v vs %+v", got, want)
	}
}
