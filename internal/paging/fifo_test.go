package paging

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/xrand"
)

func TestFIFOBasics(t *testing.T) {
	f, err := NewFIFO(2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Access(1) {
		t.Error("cold access hit")
	}
	f.Access(2)
	if !f.Access(1) {
		t.Error("resident block missed")
	}
	// FIFO evicts by fetch order: 1 was fetched first, so 3 evicts 1 even
	// though 1 was just touched (the difference from LRU). Probe the
	// survivors first — probing the victim refetches it.
	f.Access(3)
	if !f.Access(2) || !f.Access(3) {
		t.Error("blocks 2 and 3 should have survived")
	}
	if f.Access(1) {
		t.Error("block 1 should have been evicted (oldest fetch)")
	}
}

func TestFIFOValidation(t *testing.T) {
	if _, err := NewFIFO(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	f, _ := NewFIFO(2)
	if err := f.SetCapacity(0); err == nil {
		t.Error("SetCapacity(0) accepted")
	}
}

func TestFIFOShrink(t *testing.T) {
	f, _ := NewFIFO(4)
	for b := int64(0); b < 4; b++ {
		f.Access(b)
	}
	if err := f.SetCapacity(2); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 2 {
		t.Errorf("Len after shrink = %d", f.Len())
	}
	// Oldest fetches (0, 1) go first.
	if f.Access(3) != true || f.Access(2) != true {
		t.Error("newest fetches evicted by shrink")
	}
}

func TestFIFORefetchedBlockNotPrematurelyEvicted(t *testing.T) {
	// Regression for the stale-entry hazard: fetch 1, evict it, refetch it;
	// the stale queue entry must not cause 1 to be evicted as "oldest".
	f, _ := NewFIFO(2)
	f.Access(1) // queue: 1
	f.Access(2) // queue: 1 2
	f.Access(3) // evicts 1; queue: 1 2 3
	f.Access(1) // evicts 2 (oldest live); refetches 1; queue: 1 2 3 1'
	// Now resident = {3, 1}. Next eviction must take 3 (older fetch), not 1.
	f.Access(4)
	if !f.Access(1) {
		t.Error("refetched block evicted via its stale queue entry")
	}
	if f.Access(3) {
		t.Error("block 3 should have been the eviction victim")
	}
}

func TestFIFOSequentialScan(t *testing.T) {
	b := &trace.Builder{}
	b.AccessRange(0, 100)
	tr := b.Build()
	misses, err := RunFIFOFixed(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if misses != 100 {
		t.Errorf("misses = %d, want 100", misses)
	}
}

// Property: OPT <= min(LRU, FIFO) and both >= compulsory misses; counters
// are consistent.
func TestFIFOAgainstOPTProperty(t *testing.T) {
	check := func(seed uint32, refsRaw uint16, capRaw uint8) bool {
		src := xrand.New(uint64(seed))
		refs := int(refsRaw)%1200 + 10
		tr := randomTrace(src, refs, 32)
		capacity := int64(capRaw)%16 + 1
		fifo, err1 := RunFIFOFixed(tr, capacity)
		opt, err2 := RunOPTFixed(tr, capacity)
		if err1 != nil || err2 != nil {
			return false
		}
		return opt <= fifo && fifo >= tr.DistinctBlocks() && fifo <= int64(tr.Len())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOCompactionKeepsCorrectness(t *testing.T) {
	// Exercise the queue-compaction path with a long thrashing trace.
	f, _ := NewFIFO(3)
	src := xrand.New(9)
	shadow := make(map[int64]bool)
	_ = shadow
	for i := 0; i < 200000; i++ {
		f.Access(src.Int63n(64))
		if f.Len() > 3 {
			t.Fatal("capacity exceeded")
		}
	}
	if f.Misses()+f.Hits() != 200000 {
		t.Error("counters inconsistent")
	}
}
