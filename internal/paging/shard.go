package paging

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/profile"
	"repro/internal/trace"
)

// This file implements parallel square-partitioned replay.
//
// The CA model clears the cache at every square boundary, so the state a
// replay carries across a boundary is just (index of the box that starts
// there, index of the reference that starts it). That makes a replay
// embarrassingly parallel *across squares* — provided the boundaries are
// known. Finding them requires simulating residency sequentially, so every
// parallel run here is two passes:
//
//  1. Plan (serial): a stripped-down residency simulation — no BoxStat
//     ledger, no leaf accounting, compact epoch stamps — sweeps the stream
//     once and records a Checkpoint at the first box boundary at or after
//     every cut-stride worth of references.
//  2. Execute (parallel): each shard runs the full kernel over its
//     reference window [cut_k, cut_{k+1}) on the engine pool, with a
//     profile source forked at its starting box (profile.ForkableSource)
//     and the stream slice re-derived via trace.ReplayRange or a windowed
//     re-emission (trace.WindowSink).
//
// Checkpoints are *defined* by the stream content ("the first box boundary
// at global reference >= k·stride"), not by the shard count, and each
// shard's kernel starts from the exact cleared-cache state the serial
// kernel would have at that boundary. Merging the per-shard ledgers in
// shard order therefore reproduces the serial output byte-for-byte at any
// worker count — determinism by construction, pinned by the golden tests
// and FuzzParallelMatchesSerial.
//
// Error parity is by fallback: the planner mirrors the serial kernels'
// validation exactly, and any planner error (invalid box size, maxBoxes
// exceeded) reruns the serial path so partial results and error values are
// identical. Shard execution itself can only fail if a ForkAt fork
// diverges from the sequential source — a contract violation reported as
// an explicit error rather than silently wrong tables.

// Checkpoint marks a square boundary usable as a shard split point: box
// Box starts at global reference index Ref with a cleared cache.
type Checkpoint struct {
	Box int64 // index of the box that starts at Ref (boxes consumed before it)
	Ref int64 // global reference index of the first reference that box serves
}

// DefaultShards picks a shard count for the parallel replay APIs: twice
// the shared engine pool's worker bound (mild oversubscription smooths
// uneven shard costs), or 1 — meaning "stay serial" — when the pool has a
// single worker or no idle token (a saturated pool would run the shards
// serially anyway, so the planning pass would be pure overhead). Shard
// count never affects output, only wall time.
func DefaultShards() int {
	p := engine.Shared()
	if p.Workers() <= 1 || p.Idle() == 0 {
		return 1
	}
	return 2 * p.Workers()
}

// cutStride returns the reference-count spacing between shard cut
// candidates for a stream of totalRefs references.
func cutStride(totalRefs int64, shards int) int64 {
	stride := totalRefs / int64(shards)
	if stride < 1 {
		stride = 1
	}
	return stride
}

// growResident extends an epoch-stamped residency array to cover block.
// Planner and finisher epochs start at 1, so zero-filled growth means
// "not resident" without a fill pass.
func growResident(resident []int64, block int64) []int64 {
	if block < int64(len(resident)) {
		return resident
	}
	n := int64(len(resident)) * 2
	if n <= block {
		n = block + 1
	}
	grown := make([]int64, n)
	copy(grown, resident)
	return grown
}

// ---------------------------------------------------------------------------
// Plan pass: SquareStream semantics.

// squarePlanner replays SquareStream's residency semantics — identical box
// advancement, identical validation — while recording only shard cut
// points. It is a trace.Sink (and Stopper, so emit-based planning stops
// feeding it after an error), and it keeps no per-box ledger: the planning
// pass is deliberately cheaper than the kernel it plans for.
type squarePlanner struct {
	src      profile.Source
	maxBoxes int64
	resident []int64
	epoch    int64
	size     int64 // current box size
	ios      int64 // I/Os consumed from the current box
	closed   int64 // boxes closed so far (== index of the current box)
	started  bool
	refs     int64 // references consumed so far (global index of the next one)
	err      error
	cut      int64 // reference spacing between cut candidates
	nextCut  int64
	cuts     []Checkpoint
}

func newSquarePlanner(src profile.Source, maxBoxes, cut int64) *squarePlanner {
	return &squarePlanner{src: src, maxBoxes: maxBoxes, epoch: 1, cut: cut, nextCut: cut}
}

// Access mirrors SquareStream.Access, recording a Checkpoint at the first
// box boundary at or after each cut-stride of references.
func (p *squarePlanner) Access(block int64) {
	if p.err != nil {
		return
	}
	if !p.started {
		p.started = true
		p.size = p.src.Next()
		if p.size < 1 {
			p.err = fmt.Errorf("paging: box source produced size %d", p.size)
			return
		}
	}
	p.resident = growResident(p.resident, block)
	if p.resident[block] != p.epoch {
		if p.ios == p.size {
			p.closed++
			if p.maxBoxes > 0 && p.closed >= p.maxBoxes {
				p.err = fmt.Errorf("paging: run exceeded %d boxes", p.maxBoxes)
				return
			}
			if p.refs >= p.nextCut {
				p.cuts = append(p.cuts, Checkpoint{Box: p.closed, Ref: p.refs})
				p.nextCut = p.refs + p.cut
			}
			p.epoch++
			p.size = p.src.Next()
			if p.size < 1 {
				p.err = fmt.Errorf("paging: box source produced size %d", p.size)
				return
			}
			p.ios = 0
		}
		p.resident[block] = p.epoch
		p.ios++
	}
	p.refs++
}

// AccessRange plans blocks [lo, lo+count) in order.
func (p *squarePlanner) AccessRange(lo, count int64) {
	for i := int64(0); i < count && p.err == nil; i++ {
		p.Access(lo + i)
	}
}

// EndLeaf is a no-op: leaf attribution is the executors' job.
func (p *squarePlanner) EndLeaf() {}

// Stopped reports whether the planner errored, so emit-based planning
// stops feeding it.
func (p *squarePlanner) Stopped() bool { return p.err != nil }

// bounds returns the shard boundaries: start of stream, every recorded
// cut, end of stream.
func (p *squarePlanner) bounds() []Checkpoint {
	b := make([]Checkpoint, 0, len(p.cuts)+2)
	b = append(b, Checkpoint{})
	b = append(b, p.cuts...)
	return append(b, Checkpoint{Box: p.closed, Ref: p.refs})
}

// ---------------------------------------------------------------------------
// Plan pass: repeated-stream finisher semantics.

// repeatPlanner replays srcFinisher semantics over reps shifted
// repetitions of a base stream using one base-address residency array:
// because repetitions are relocated to disjoint address ranges (stride >
// maxBlock), "resident" is a property of (box, repetition), captured in a
// composite stamp bi·reps + rep + 1. The repeat planner therefore touches
// O(maxBlock) memory where the real replay's working set is
// O(reps·stride), which is what keeps the planning pass cheap on
// E9-class runs. The driver feeds the base stream once per repetition,
// setting rep between feeds.
type repeatPlanner struct {
	src      profile.Source
	nBoxes   int64
	reps     int64
	rep      int64 // current repetition, set by the driver
	resident []int64
	bi       int64 // current box index
	size     int64
	ios      int64
	ref      int64 // global reference index; every pre-done reference is served
	done     bool
	err      error
	cut      int64
	nextCut  int64
	cuts     []Checkpoint
}

func newRepeatPlanner(src profile.Source, nBoxes int64, reps int, maxBlock, cut int64) *repeatPlanner {
	p := &repeatPlanner{src: src, nBoxes: nBoxes, reps: int64(reps), cut: cut, nextCut: cut}
	if maxBlock >= 0 {
		p.resident = growResident(p.resident, maxBlock)
	}
	if nBoxes <= 0 {
		p.done = true
		return p
	}
	p.size = src.Next()
	if p.size < 1 {
		p.err = fmt.Errorf("paging: box size %d invalid", p.size)
	}
	return p
}

// Access mirrors srcFinisher.Access under the composite-stamp encoding.
func (p *repeatPlanner) Access(block int64) {
	if p.done || p.err != nil {
		return
	}
	stamp := p.bi*p.reps + p.rep + 1
	p.resident = growResident(p.resident, block)
	if p.resident[block] == stamp {
		p.ref++
		return
	}
	if p.ios == p.size {
		p.bi++
		if p.bi >= p.nBoxes {
			p.done = true
			return
		}
		p.size = p.src.Next()
		if p.size < 1 {
			p.err = fmt.Errorf("paging: box size %d invalid", p.size)
			return
		}
		if p.ref >= p.nextCut {
			p.cuts = append(p.cuts, Checkpoint{Box: p.bi, Ref: p.ref})
			p.nextCut = p.ref + p.cut
		}
		p.ios = 0
		stamp = p.bi*p.reps + p.rep + 1
	}
	p.resident[block] = stamp
	p.ios++
	p.ref++
}

// AccessRange plans blocks [lo, lo+count) in order.
func (p *repeatPlanner) AccessRange(lo, count int64) {
	for i := int64(0); i < count && !p.done && p.err == nil; i++ {
		p.Access(lo + i)
	}
}

// EndLeaf is a no-op: the finisher semantics ignore leaf markers.
func (p *repeatPlanner) EndLeaf() {}

// Stopped reports whether planning is over (boxes exhausted or errored).
func (p *repeatPlanner) Stopped() bool { return p.done || p.err != nil }

func (p *repeatPlanner) bounds() []Checkpoint {
	b := make([]Checkpoint, 0, len(p.cuts)+2)
	b = append(b, Checkpoint{})
	b = append(b, p.cuts...)
	return append(b, Checkpoint{Box: p.bi, Ref: p.ref})
}

// ---------------------------------------------------------------------------
// Source-pulled finisher.

// srcFinisher is SquareFinisher with its box sequence pulled lazily from a
// profile source instead of a materialised slice — box advancement,
// validation, and served accounting are identical (the equivalence is
// pinned by tests). It exists so shards and streamed profiles never
// materialise box slices: a shard pulls only the boxes its window
// consumes, and a dim-4096-class worst-case profile is never held in
// memory at all.
type srcFinisher struct {
	src      profile.Source
	left     int64 // boxes remaining, including the current one
	resident []int64
	epoch    int64
	size     int64
	ios      int64
	served   int64
	done     bool
	err      error
}

// newSrcFinisher pulls boxes from src, serving at most nBoxes of them. The
// first box is validated eagerly, matching NewSquareFinisher.
func newSrcFinisher(src profile.Source, nBoxes int64) *srcFinisher {
	f := &srcFinisher{src: src, left: nBoxes, epoch: 1}
	if nBoxes <= 0 {
		f.done = true
		return f
	}
	f.size = src.Next()
	if f.size < 1 {
		f.err = fmt.Errorf("paging: box size %d invalid", f.size)
	}
	return f
}

// Reserve pre-sizes the residency array for block IDs up to maxBlock.
func (f *srcFinisher) Reserve(maxBlock int64) {
	f.resident = growResident(f.resident, maxBlock)
}

// Access serves one reference, advancing to the next box when the current
// budget is exhausted; references after the last box ends are unserved.
func (f *srcFinisher) Access(block int64) {
	if f.done || f.err != nil {
		return
	}
	f.resident = growResident(f.resident, block)
	if f.resident[block] == f.epoch {
		f.served++
		return
	}
	if f.ios == f.size {
		f.left--
		if f.left <= 0 {
			f.done = true
			return
		}
		f.size = f.src.Next()
		if f.size < 1 {
			f.err = fmt.Errorf("paging: box size %d invalid", f.size)
			return
		}
		// Fresh square: cache cleared.
		f.epoch++
		f.ios = 0
	}
	f.resident[block] = f.epoch
	f.ios++
	f.served++
}

// AccessRange serves blocks [lo, lo+count) in order.
func (f *srcFinisher) AccessRange(lo, count int64) {
	for i := int64(0); i < count && !f.done && f.err == nil; i++ {
		f.Access(lo + i)
	}
}

// EndLeaf is a no-op: the finisher measures references served.
func (f *srcFinisher) EndLeaf() {}

// Served reports how many stream references the boxes served so far.
func (f *srcFinisher) Served() int64 { return f.served }

// Stopped reports whether further accesses would be ignored.
func (f *srcFinisher) Stopped() bool { return f.done || f.err != nil }

// Err reports the first invalid-box error, if any.
func (f *srcFinisher) Err() error { return f.err }

var (
	_ trace.Sink    = (*squarePlanner)(nil)
	_ trace.Stopper = (*squarePlanner)(nil)
	_ trace.Sink    = (*repeatPlanner)(nil)
	_ trace.Stopper = (*repeatPlanner)(nil)
	_ trace.Sink    = (*srcFinisher)(nil)
	_ trace.Stopper = (*srcFinisher)(nil)
)

// ---------------------------------------------------------------------------
// Execute pass.

// forkAt positions a fork of fsrc at its starting box.
type forkAt func(box int64) profile.Source

// execSquareShards runs one SquareStream per non-empty shard window on the
// engine pool and concatenates the per-box ledgers in shard order. Because
// every checkpoint is a box start, no box spans two shards, and the
// concatenation equals the serial ledger exactly.
func execSquareShards(bounds []Checkpoint, fork forkAt, maxBlock int64, replayRange func(q trace.Sink, lo, hi int64) error) ([]BoxStat, error) {
	shardStats := make([][]BoxStat, len(bounds)-1)
	g := engine.NewGroup()
	err := g.Map(len(bounds)-1, func(k, _ int) error {
		lo, hi := bounds[k].Ref, bounds[k+1].Ref
		if lo >= hi {
			return nil
		}
		// maxBoxes 0: the planning pass already enforced the caller's bound
		// over the whole stream.
		q := NewSquareStream(fork(bounds[k].Box), 0)
		if maxBlock >= 0 {
			q.Reserve(maxBlock)
		}
		if err := replayRange(q, lo, hi); err != nil {
			return err
		}
		st, err := q.Finish()
		if err != nil {
			return fmt.Errorf("paging: parallel shard %d diverged from plan: %v (ForkAt contract violation?)", k, err)
		}
		shardStats[k] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	var stats []BoxStat
	for _, st := range shardStats {
		stats = append(stats, st...)
	}
	return stats, nil
}

// execRepeatShards runs one srcFinisher per non-empty shard window of a
// reps×refsPerRep repeated stream and sums the served counts. Each shard
// rebases its repetitions to start at shift 0 (repetition r of the shard
// replays at shift (r-r1)·stride), so a shard's residency array spans only
// the repetitions its window touches instead of the full reps·stride
// address range.
func execRepeatShards(bounds []Checkpoint, fork forkAt, nBoxes, refsPerRep, stride int64, replayRep func(s trace.Sink, rep, lo, hi int64) error) (int64, error) {
	served := make([]int64, len(bounds)-1)
	g := engine.NewGroup()
	err := g.Map(len(bounds)-1, func(k, _ int) error {
		loRef, hiRef := bounds[k].Ref, bounds[k+1].Ref
		if loRef >= hiRef {
			return nil
		}
		r1 := loRef / refsPerRep
		r2 := (hiRef - 1) / refsPerRep
		f := newSrcFinisher(fork(bounds[k].Box), nBoxes-bounds[k].Box)
		for r := r1; r <= r2; r++ {
			lo := loRef - r*refsPerRep
			if lo < 0 {
				lo = 0
			}
			hi := hiRef - r*refsPerRep
			if hi > refsPerRep {
				hi = refsPerRep
			}
			var s trace.Sink = f
			if shift := (r - r1) * stride; shift != 0 {
				s = trace.OffsetSink{S: f, Shift: shift}
			}
			if err := replayRep(s, r, lo, hi); err != nil {
				return err
			}
		}
		if err := f.Err(); err != nil {
			return fmt.Errorf("paging: parallel repeat shard %d diverged from plan: %v (ForkAt contract violation?)", k, err)
		}
		if f.Served() != hiRef-loRef {
			return fmt.Errorf("paging: parallel repeat shard %d served %d of %d planned references (ForkAt contract violation?)", k, f.Served(), hiRef-loRef)
		}
		served[k] = f.Served()
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, s := range served {
		total += s
	}
	return total, nil
}

// ---------------------------------------------------------------------------
// Public entry points.

// SquareRunParallel is SquareRun split into per-square-range shards
// executed on the shared engine pool. The returned statistics and error
// are byte-identical to SquareRun's at any shard count; shards <= 0 picks
// DefaultShards(). Parallel execution needs a profile.ForkableSource —
// any other source, a single shard, or a planning-pass error falls back to
// the serial path. When src is forkable its own cursor is never advanced
// (all passes consume forks); a non-forkable src is consumed exactly as
// SquareRun consumes it.
func SquareRunParallel(tr *trace.Trace, src profile.Source, maxBoxes int64, shards int) ([]BoxStat, error) {
	fsrc, ok := src.(profile.ForkableSource)
	if !ok {
		return SquareRun(tr, src, maxBoxes)
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	if shards <= 1 || tr.Len() < 2 {
		return SquareRun(tr, fsrc.ForkAt(0), maxBoxes)
	}
	p := newSquarePlanner(fsrc.ForkAt(0), maxBoxes, cutStride(int64(tr.Len()), shards))
	p.resident = growResident(p.resident, tr.MaxBlock())
	for i, n := 0, tr.Len(); i < n && p.err == nil; i++ {
		p.Access(tr.Block(i))
	}
	if p.err != nil {
		// Rerun serially: partial statistics and the error value must match
		// the serial path exactly, and errors are not the case to optimise.
		return SquareRun(tr, fsrc.ForkAt(0), maxBoxes)
	}
	return execSquareShards(p.bounds(), fsrc.ForkAt, tr.MaxBlock(), func(q trace.Sink, lo, hi int64) error {
		trace.ReplayRange(tr, q, int(lo), int(hi))
		return nil
	})
}

// SquareEmitParallel is SquareRunParallel for a generated (never
// materialised) stream: emit must produce the identical reference sequence
// on every call — the standard generator contract — and is invoked once
// for the planning pass and once per shard with a trace.WindowSink
// selecting the shard's slice. totalRefs is the expected stream length; it
// only spaces the shard cuts, so an estimate merely unbalances shards.
// maxBlock pre-sizes residency arrays (pass -1 if unknown). Output is
// byte-identical to emitting into a single SquareStream(src, maxBoxes).
func SquareEmitParallel(emit func(trace.Sink) error, totalRefs, maxBlock int64, src profile.Source, maxBoxes int64, shards int) ([]BoxStat, error) {
	serial := func(s profile.Source) ([]BoxStat, error) {
		q := NewSquareStream(s, maxBoxes)
		if maxBlock >= 0 {
			q.Reserve(maxBlock)
		}
		if err := emit(q); err != nil {
			return nil, err
		}
		return q.Finish()
	}
	fsrc, ok := src.(profile.ForkableSource)
	if !ok {
		return serial(src)
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	if shards <= 1 || totalRefs < 2 {
		return serial(fsrc.ForkAt(0))
	}
	p := newSquarePlanner(fsrc.ForkAt(0), maxBoxes, cutStride(totalRefs, shards))
	if maxBlock >= 0 {
		p.resident = growResident(p.resident, maxBlock)
	}
	if err := emit(p); err != nil {
		return nil, err
	}
	if p.err != nil {
		return serial(fsrc.ForkAt(0))
	}
	return execSquareShards(p.bounds(), fsrc.ForkAt, maxBlock, func(q trace.Sink, lo, hi int64) error {
		return emit(trace.NewWindowSink(q, lo, hi))
	})
}

// ServedRepeatParallel counts the references served when reps shifted
// copies of tr (repetition r at block shift r·stride — the
// RepeatTraceFresh semantics) are replayed against the first nBoxes boxes
// of src under finisher semantics. It is the parallel form of
// NewSquareFinisher + trace.ReplayRepeat, with the box sequence pulled
// from a source so it need never be materialised; the result and error
// match the serial replay exactly at any shard count.
//
// The sharded path additionally requires stride > tr.MaxBlock() (each
// repetition in a fresh address range — the condition under which the
// planner's compact per-repetition stamps are exact); a smaller stride,
// like a non-forkable source, falls back to the serial replay.
func ServedRepeatParallel(tr *trace.Trace, src profile.Source, nBoxes int64, reps int, stride int64, shards int) (int64, error) {
	serial := func(s profile.Source) (int64, error) {
		f := newSrcFinisher(s, nBoxes)
		f.Reserve(tr.MaxBlock())
		trace.ReplayRepeat(tr, f, reps, stride)
		return f.Served(), f.Err()
	}
	fsrc, ok := src.(profile.ForkableSource)
	if !ok {
		return serial(src)
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	refsPerRep := int64(tr.Len())
	if shards <= 1 || reps < 1 || refsPerRep < 1 || stride <= tr.MaxBlock() {
		return serial(fsrc.ForkAt(0))
	}
	p := newRepeatPlanner(fsrc.ForkAt(0), nBoxes, reps, tr.MaxBlock(), cutStride(int64(reps)*refsPerRep, shards))
	for r := 0; r < reps && !p.done && p.err == nil; r++ {
		p.rep = int64(r)
		for i, n := 0, tr.Len(); i < n; i++ {
			p.Access(tr.Block(i))
			if p.done || p.err != nil {
				break
			}
		}
	}
	if p.err != nil {
		return serial(fsrc.ForkAt(0))
	}
	return execRepeatShards(p.bounds(), fsrc.ForkAt, nBoxes, refsPerRep, stride, func(s trace.Sink, rep, lo, hi int64) error {
		trace.ReplayRange(tr, s, int(lo), int(hi))
		return nil
	})
}

// ServedEmitRepeatParallel is ServedRepeatParallel for a generated stream:
// emit replays the base workload (refsPerRep references, block IDs in
// [0, maxBlock]) and must produce the identical sequence on every call.
// The planning pass re-emits the base stream once per repetition into the
// compact planner; each shard re-emits only the repetitions its window
// overlaps, through a trace.WindowSink that clips to the window (the
// emission ahead of a shard's window is skip-counted; the tail after it is
// cut off via the stopper). This is the E9-class primitive at dims whose
// base trace exceeds the materialisation ceiling.
func ServedEmitRepeatParallel(emit func(trace.Sink) error, refsPerRep, maxBlock int64, src profile.Source, nBoxes int64, reps int, stride int64, shards int) (int64, error) {
	serial := func(s profile.Source) (int64, error) {
		f := newSrcFinisher(s, nBoxes)
		f.Reserve(maxBlock)
		for r := 0; r < reps && !f.Stopped(); r++ {
			var sink trace.Sink = f
			if shift := int64(r) * stride; shift != 0 {
				sink = trace.OffsetSink{S: f, Shift: shift}
			}
			if err := emit(sink); err != nil {
				return 0, err
			}
		}
		return f.Served(), f.Err()
	}
	fsrc, ok := src.(profile.ForkableSource)
	if !ok {
		return serial(src)
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	if shards <= 1 || reps < 1 || refsPerRep < 1 || stride <= maxBlock {
		return serial(fsrc.ForkAt(0))
	}
	p := newRepeatPlanner(fsrc.ForkAt(0), nBoxes, reps, maxBlock, cutStride(int64(reps)*refsPerRep, shards))
	for r := 0; r < reps && !p.done && p.err == nil; r++ {
		p.rep = int64(r)
		if err := emit(p); err != nil {
			return 0, err
		}
	}
	if p.err != nil {
		return serial(fsrc.ForkAt(0))
	}
	return execRepeatShards(p.bounds(), fsrc.ForkAt, nBoxes, refsPerRep, stride, func(s trace.Sink, rep, lo, hi int64) error {
		return emit(trace.NewWindowSink(s, lo, hi))
	})
}
