package paging

import (
	"fmt"
)

// TwoQ is the full version of the 2Q replacement policy (Johnson & Shasha,
// VLDB '94) — the scan-resistant alternative to ARC in the adaptive-policy
// family. New blocks enter a small FIFO probation queue A1in; blocks
// evicted from A1in leave ID-only ghosts in A1out; a reference while in
// A1out is the "seen twice, and not just in a correlated burst" signal that
// promotes the block to the main LRU list Am. One-shot scans wash through
// A1in without ever displacing the hot set in Am.
//
// Layout matches the ARC kernel: a dense block-indexed membership byte plus
// intrusive prev/next arrays, three lists (A1in FIFO, A1out ghost FIFO, Am
// LRU), no steady-state allocation, block IDs dense-remapped below 2^31.
//
// Tuning follows the paper's recommendation with the fixed fractions made
// dynamic so capacity changes are honoured: A1in is entitled to
// max(1, Len()/4) slots (equal to the classic Kin = c/4 whenever the cache
// is full) and A1out remembers max(1, capacity/2) ghosts. At
// UnboundedCapacity the kernel never self-evicts, so A1out stays empty and
// the policy degrades to the honest two-queue sLRU analogue: Victim drains
// the probation FIFO before the main list, and Remove is a full forget (no
// ghost — the owning cache recycles IDs, so ID-keyed ghosts would be
// spurious).
type TwoQ struct {
	capacity int64
	where    []uint8
	prev     []int32
	next     []int32
	lists    [3]arcList // indexed by twoQA1in/twoQA1out/twoQAm - 1
	hits     int64
	misses   int64
}

// List indexes for TwoQ.where; twoQNone marks an untracked block.
const (
	twoQNone = uint8(iota)
	twoQA1in
	twoQA1out
	twoQAm
)

// NewTwoQ returns an empty 2Q cache with the given capacity (>= 1).
func NewTwoQ(capacity int64) (*TwoQ, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("paging: 2Q capacity %d < 1", capacity)
	}
	q := &TwoQ{capacity: capacity}
	for i := range q.lists {
		q.lists[i] = arcList{head: nilNode, tail: nilNode}
	}
	return q, nil
}

func init() {
	RegisterPolicy(PolicyInfo{
		Name:    "2q",
		Summary: "two-queue: FIFO probation A1in + ghost A1out gating promotion into the main LRU Am",
		New:     func(capacity int64) (ReplacementPolicy, error) { return NewTwoQ(capacity) },
	})
}

func (q *TwoQ) list(li uint8) *arcList { return &q.lists[li-1] }

// Len reports the number of resident blocks (A1in + Am; ghosts don't count).
func (q *TwoQ) Len() int64 { return q.lists[twoQA1in-1].size + q.lists[twoQAm-1].size }

// Misses reports the number of accesses that required a fetch.
func (q *TwoQ) Misses() int64 { return q.misses }

// Hits reports the number of accesses served from cache.
func (q *TwoQ) Hits() int64 { return q.hits }

// Capacity reports the current capacity.
func (q *TwoQ) Capacity() int64 { return q.capacity }

// Contains reports whether block is resident without recording a hit.
func (q *TwoQ) Contains(block int64) bool {
	if block < 0 || block >= int64(len(q.where)) {
		return false
	}
	w := q.where[block]
	return w == twoQA1in || w == twoQAm
}

// Reserve pre-sizes the dense indexes for block IDs up to maxBlock.
func (q *TwoQ) Reserve(maxBlock int64) { q.ensure(maxBlock) }

// kinDyn is A1in's slot entitlement: a quarter of the *current* occupancy,
// at least one. While the cache is full this equals the classic Kin = c/4;
// tying it to occupancy instead of capacity keeps the rule meaningful in
// external-bound mode, where capacity is unbounded.
func (q *TwoQ) kinDyn() int64 {
	k := q.Len() / 4
	if k < 1 {
		k = 1
	}
	return k
}

// kout is A1out's ghost budget: half the capacity, at least one (the
// paper's Kout = c/2).
func (q *TwoQ) kout() int64 {
	k := q.capacity / 2
	if k < 1 {
		k = 1
	}
	return k
}

// SetCapacity resizes the cache, evicting per the 2Q rule if it shrank and
// trimming the ghost FIFO to the new Kout.
func (q *TwoQ) SetCapacity(capacity int64) error {
	if capacity < 1 {
		return fmt.Errorf("paging: 2Q capacity %d < 1", capacity)
	}
	q.capacity = capacity
	for q.Len() > capacity {
		q.evictOne()
	}
	for q.list(twoQA1out).size > q.kout() {
		q.dropGhostTail()
	}
	return nil
}

// Clear empties the cache and the ghost FIFO (the square-boundary
// convention) without touching the counters.
func (q *TwoQ) Clear() {
	for li := uint8(twoQA1in); li <= twoQAm; li++ {
		for s := q.list(li).head; s != nilNode; {
			nxt := q.next[s]
			q.where[s] = twoQNone
			s = nxt
		}
		*q.list(li) = arcList{head: nilNode, tail: nilNode}
	}
}

// Access touches block, returning true on a hit. On a miss the block is
// fetched — into Am if its ghost is still in A1out (the promotion signal),
// into A1in otherwise — self-evicting per the 2Q rule when the cache is
// full.
//
//lint:hotpath
func (q *TwoQ) Access(block int64) bool {
	q.ensure(block)
	switch q.where[block] {
	case twoQAm:
		// Hit in the main list: standard LRU promotion.
		q.hits++
		q.unlink(block)
		q.pushFront(twoQAm, block)
		return true
	case twoQA1in:
		// Hit in probation: deliberately *not* reordered — repeated
		// references inside one correlated burst shouldn't look hot.
		q.hits++
		return true
	case twoQA1out:
		// Ghost hit: second (uncorrelated) reference — promote into Am.
		q.misses++
		q.unlink(block)
		if q.Len() >= q.capacity {
			q.evictOne()
		}
		q.pushFront(twoQAm, block)
		return false
	}
	// Completely new block: probation.
	q.misses++
	if q.Len() >= q.capacity {
		q.evictOne()
	}
	q.pushFront(twoQA1in, block)
	return false
}

// evictOne frees one resident slot per the 2Q reclaim rule: take A1in's
// oldest while A1in is over its entitlement (remembering it as a ghost),
// otherwise Am's LRU (forgotten outright — Am pages got their chance).
func (q *TwoQ) evictOne() {
	a1in := q.list(twoQA1in)
	if a1in.size > 0 && (a1in.size > q.kinDyn() || q.list(twoQAm).size == 0) {
		old := a1in.tail
		q.unlink(int64(old))
		q.pushFront(twoQA1out, int64(old))
		for q.list(twoQA1out).size > q.kout() {
			q.dropGhostTail()
		}
		return
	}
	if t := q.list(twoQAm).tail; t != nilNode {
		q.unlink(int64(t))
	}
}

// Touch records a hit for the EvictionPolicy surface: Am entries get the
// LRU promotion, and a probation entry is promoted into Am — the
// *simplified* 2Q rule from the same paper. In external-bound mode the
// ghost FIFO never forms (this kernel never self-evicts there), so the
// full version's promote-on-ghost-hit signal cannot fire; promoting on the
// second touch instead is what keeps 2Q a meaningful segmented-LRU rather
// than collapsing into plain FIFO.
func (q *TwoQ) Touch(id int64) {
	if !q.Contains(id) {
		return
	}
	q.unlink(id)
	q.pushFront(twoQAm, id)
}

// Insert admits a new entry for the EvictionPolicy surface: into Am if a
// ghost vouches for it, into probation otherwise, with no eviction — the
// owning cache decides when to evict.
func (q *TwoQ) Insert(id int64) {
	q.ensure(id)
	switch q.where[id] {
	case twoQA1in, twoQAm:
		return
	case twoQA1out:
		q.unlink(id)
		q.pushFront(twoQAm, id)
		return
	}
	q.pushFront(twoQA1in, id)
}

// Victim reports the resident block evictOne would take next — A1in's
// oldest while A1in is over its entitlement, Am's LRU otherwise — or -1
// when empty.
func (q *TwoQ) Victim() int64 {
	a1in := q.list(twoQA1in)
	if a1in.size > 0 && (a1in.size > q.kinDyn() || q.list(twoQAm).size == 0) {
		return int64(a1in.tail)
	}
	if t := q.list(twoQAm).tail; t != nilNode {
		return int64(t)
	}
	if a1in.size > 0 {
		return int64(a1in.tail)
	}
	return -1
}

// Remove forgets an entry entirely — no ghost is recorded, because Remove
// is the external cache's eviction (or an ID about to be recycled), not a
// 2Q reclaim this kernel should learn from. Reports whether the block was
// resident; a stale ghost is dropped silently.
func (q *TwoQ) Remove(id int64) bool {
	if id < 0 || id >= int64(len(q.where)) || q.where[id] == twoQNone {
		return false
	}
	wasResident := q.Contains(id)
	q.unlink(id)
	return wasResident
}

// ensure grows the dense membership and link arrays (geometrically, so
// growth cost amortises to nothing) until block is a valid index.
func (q *TwoQ) ensure(block int64) {
	if block < int64(len(q.where)) {
		return
	}
	n := int64(len(q.where)) * 2
	if n <= block {
		n = block + 1
	}
	//lint:ignore hotpath geometric index growth amortises to O(1) per access and Reserve pre-sizes it away in steady state
	grownWhere := make([]uint8, n)
	copy(grownWhere, q.where)
	q.where = grownWhere
	//lint:ignore hotpath geometric link growth, same amortisation as the membership array above
	grownPrev := make([]int32, n)
	copy(grownPrev, q.prev)
	q.prev = grownPrev
	//lint:ignore hotpath geometric link growth, same amortisation as the membership array above
	grownNext := make([]int32, n)
	copy(grownNext, q.next)
	q.next = grownNext
}

// pushFront links block at the MRU end of list li and marks membership.
func (q *TwoQ) pushFront(li uint8, block int64) {
	l := q.list(li)
	s := int32(block)
	q.prev[s] = nilNode
	q.next[s] = l.head
	if l.head != nilNode {
		q.prev[l.head] = s
	}
	l.head = s
	if l.tail == nilNode {
		l.tail = s
	}
	l.size++
	q.where[block] = li
}

// unlink removes block from whichever list holds it and clears membership.
func (q *TwoQ) unlink(block int64) {
	l := q.list(q.where[block])
	s := int32(block)
	if p := q.prev[s]; p != nilNode {
		q.next[p] = q.next[s]
	} else {
		l.head = q.next[s]
	}
	if n := q.next[s]; n != nilNode {
		q.prev[n] = q.prev[s]
	} else {
		l.tail = q.prev[s]
	}
	l.size--
	q.where[block] = twoQNone
}

// dropGhostTail forgets A1out's oldest ghost.
func (q *TwoQ) dropGhostTail() {
	if t := q.list(twoQA1out).tail; t != nilNode {
		q.unlink(int64(t))
	}
}
