package paging

import (
	"container/heap"
	"fmt"

	"repro/internal/trace"
)

// This file implements Belady's OPT (farthest-in-future) replacement for a
// fixed-size cache. OPT gives the offline-optimal miss count, which the
// DAM-validation experiment uses to confirm that LRU's constant factor on
// our traces is benign (the classical 2-competitiveness with capacity
// augmentation shows up clearly).

// optEntry is a lazily-invalidated heap entry: block with its next use
// position at the time of insertion.
type optEntry struct {
	block   int64
	nextUse int
}

// optHeap is a max-heap on nextUse (farthest next use on top).
type optHeap []optEntry

func (h optHeap) Len() int            { return len(h) }
func (h optHeap) Less(i, j int) bool  { return h[i].nextUse > h[j].nextUse }
func (h optHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *optHeap) Push(x interface{}) { *h = append(*h, x.(optEntry)) }
func (h *optHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RunOPTFixed replays tr through Belady's optimal policy with a fixed
// capacity and returns the miss count.
func RunOPTFixed(tr *trace.Trace, capacity int64) (int64, error) {
	if capacity < 1 {
		return 0, fmt.Errorf("paging: OPT capacity %d < 1", capacity)
	}
	n := tr.Len()
	if n == 0 {
		return 0, nil
	}
	const inf = int(^uint(0) >> 1)

	// nextUse[i] = next position after i referencing the same block.
	nextUse := make([]int, n)
	last := make(map[int64]int, 1024)
	for i := n - 1; i >= 0; i-- {
		blk := tr.Block(i)
		if j, ok := last[blk]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = inf
		}
		last[blk] = i
	}

	resident := make(map[int64]int, capacity) // block -> its current nextUse
	h := &optHeap{}
	var misses int64
	for i := 0; i < n; i++ {
		blk := tr.Block(i)
		if _, ok := resident[blk]; ok {
			resident[blk] = nextUse[i]
			heap.Push(h, optEntry{block: blk, nextUse: nextUse[i]})
			continue
		}
		misses++
		if int64(len(resident)) >= capacity {
			// Evict the resident block with the farthest valid next use,
			// skipping stale heap entries.
			for {
				if h.Len() == 0 {
					return 0, fmt.Errorf("paging: OPT heap exhausted with %d resident", len(resident))
				}
				top := heap.Pop(h).(optEntry)
				cur, ok := resident[top.block]
				if !ok || cur != top.nextUse {
					continue // stale entry
				}
				delete(resident, top.block)
				break
			}
		}
		resident[blk] = nextUse[i]
		heap.Push(h, optEntry{block: blk, nextUse: nextUse[i]})
	}
	return misses, nil
}
