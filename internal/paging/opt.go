package paging

import (
	"fmt"

	"repro/internal/trace"
)

// This file implements Belady's OPT (farthest-in-future) replacement for a
// fixed-size cache. OPT gives the offline-optimal miss count, which the
// DAM-validation experiment uses to confirm that LRU's constant factor on
// our traces is benign (the classical 2-competitiveness with capacity
// augmentation shows up clearly).
//
// Next-use positions are precomputed in a single backward pass over the
// trace using a dense last-seen array, and the farthest-in-future choice is
// a hand-rolled max-heap of packed uint64 keys (nextUse in the high 32
// bits, block in the low 32) — no interface boxing, no per-entry
// allocation. Stale heap entries are invalidated lazily: an entry is live
// iff its nextUse matches the block's current one, which is unambiguous
// because a block's successive next-use positions are distinct (the "never
// used again" sentinel n appears at most once per block). Ties can
// therefore only occur among never-used-again blocks, where the eviction
// choice cannot change the miss count.

// optNever marks "no further use"; as a next-use position it sorts after
// every real index.
const optNever = int32(-1)

// optHeap is a max-heap of packed (nextUse<<32 | block) keys.
type optHeap []uint64

//lint:hotpath
func (h *optHeap) push(x uint64) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p] >= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

//lint:hotpath
func (h *optHeap) pop() uint64 {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r, big := 2*i+1, 2*i+2, i
		if l < n && s[l] > s[big] {
			big = l
		}
		if r < n && s[r] > s[big] {
			big = r
		}
		if big == i {
			break
		}
		s[i], s[big] = s[big], s[i]
		i = big
	}
	return top
}

// RunOPTFixed replays tr through Belady's optimal policy with a fixed
// capacity and returns the miss count.
func RunOPTFixed(tr *trace.Trace, capacity int64) (int64, error) {
	if capacity < 1 {
		return 0, fmt.Errorf("paging: OPT capacity %d < 1", capacity)
	}
	n := tr.Len()
	if n == 0 {
		return 0, nil
	}
	if int64(n) >= 1<<31 || tr.MaxBlock() >= 1<<31 {
		return 0, fmt.Errorf("paging: OPT index overflow (%d refs, max block %d)", n, tr.MaxBlock())
	}

	// nextUse[i] = next position after i referencing the same block; n if
	// the block is never referenced again.
	nextUse := make([]int32, n)
	last := make([]int32, tr.MaxBlock()+1)
	for i := range last {
		last[i] = optNever
	}
	for i := n - 1; i >= 0; i-- {
		blk := tr.Block(i)
		if j := last[blk]; j != optNever {
			nextUse[i] = j
		} else {
			nextUse[i] = int32(n)
		}
		last[blk] = int32(i)
	}

	// curNext[b] = the live heap key's nextUse for resident block b, or
	// optNever when b is absent.
	curNext := last // reuse the backing array; every entry is rewritten below
	for i := range curNext {
		curNext[i] = optNever
	}
	var h optHeap
	var size, misses int64
	for i := 0; i < n; i++ {
		blk := tr.Block(i)
		nu := nextUse[i]
		key := uint64(uint32(nu))<<32 | uint64(uint32(blk))
		if curNext[blk] != optNever {
			curNext[blk] = nu
			h.push(key)
			continue
		}
		misses++
		if size >= capacity {
			// Evict the resident block with the farthest valid next use,
			// skipping stale heap entries.
			for {
				if len(h) == 0 {
					return 0, fmt.Errorf("paging: OPT heap exhausted with %d resident", size)
				}
				top := h.pop()
				b := int64(uint32(top))
				if curNext[b] != int32(top>>32) {
					continue // stale entry
				}
				curNext[b] = optNever
				size--
				break
			}
		}
		curNext[blk] = nu
		size++
		h.push(key)
	}
	return misses, nil
}
