package paging

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/trace"
)

// This file is the streaming half of the square-profile substrate: the
// same CA-model semantics as SquareRun/SquareRunFrom, exposed as
// trace.Sink consumers so generators can replay directly into them without
// materializing the trace. SquareRun and SquareRunFrom (square.go) are
// reimplemented as thin wrappers that trace.Replay into these sinks, so
// the materialized and streaming paths share one implementation and cannot
// drift — which is what keeps streamed experiment tables byte-identical to
// materialized ones.

// SquareStream consumes a reference stream under square semantics against
// boxes drawn from a profile source. Feed it accesses (directly or via
// trace.Replay), then call Finish for the per-box statistics. Memory is
// O(max block ID), independent of stream length.
type SquareStream struct {
	src      profile.Source
	maxBoxes int64
	resident []int64 // epoch-stamped residency: resident[b] == epoch means cached
	epoch    int64
	stats    []BoxStat
	cur      BoxStat
	started  bool
	err      error
	markedAt int64 // cur.Refs total at the last EndLeaf (idempotency)
	refs     int64 // total refs across all boxes, for markedAt
}

// NewSquareStream returns a stream drawing box sizes from src; maxBoxes
// guards against pathological stalls (0 = unbounded).
func NewSquareStream(src profile.Source, maxBoxes int64) *SquareStream {
	return &SquareStream{src: src, maxBoxes: maxBoxes}
}

// Reserve pre-sizes the residency array for block IDs up to maxBlock.
func (q *SquareStream) Reserve(maxBlock int64) { q.ensure(maxBlock) }

// Access serves one block reference under square semantics: first touch of
// a block within a box costs one I/O from the box budget; when the budget
// is exhausted a new box starts with a cleared cache.
//
//lint:hotpath
func (q *SquareStream) Access(block int64) {
	if q.err != nil {
		return
	}
	if !q.started {
		q.started = true
		q.cur = BoxStat{Size: q.src.Next()}
		if q.cur.Size < 1 {
			//lint:ignore hotpath error path: the stream is dead after this, one allocation to say why is fine
			q.err = fmt.Errorf("paging: box source produced size %d", q.cur.Size)
			return
		}
	}
	q.ensure(block)
	if q.resident[block] != q.epoch {
		// Miss: needs an I/O from the current box's budget.
		if q.cur.IOs == q.cur.Size {
			// Budget exhausted: this reference belongs to the next box.
			q.stats = append(q.stats, q.cur)
			if q.maxBoxes > 0 && int64(len(q.stats)) >= q.maxBoxes {
				//lint:ignore hotpath error path: the box guard tripping ends the run
				q.err = fmt.Errorf("paging: run exceeded %d boxes", q.maxBoxes)
				q.started = false
				return
			}
			q.epoch++
			q.cur = BoxStat{Size: q.src.Next()}
			if q.cur.Size < 1 {
				//lint:ignore hotpath error path: the stream is dead after this, one allocation to say why is fine
				q.err = fmt.Errorf("paging: box source produced size %d", q.cur.Size)
				q.started = false
				return
			}
		}
		q.resident[block] = q.epoch
		q.cur.IOs++
	}
	q.cur.Refs++
	q.refs++
}

// AccessRange serves blocks [lo, lo+count) in order.
func (q *SquareStream) AccessRange(lo, count int64) {
	for i := int64(0); i < count; i++ {
		q.Access(lo + i)
	}
}

// EndLeaf credits a base-case completion to the box that served the most
// recent access. Idempotent per access, matching trace.Builder. Once the
// stream has errored it is a no-op: the access the marker belongs to was
// never served (Access returns before counting references on the error
// paths), so there is no box to credit — panicking here would blame the
// generator for a profile/guard error, and crediting would mutate a stale
// box. The panic is reserved for the genuine structural bug of a marker
// before any access on a healthy stream.
func (q *SquareStream) EndLeaf() {
	if q.err != nil {
		return
	}
	if q.refs == 0 {
		panic("paging: EndLeaf before any access")
	}
	if q.markedAt == q.refs {
		return
	}
	q.markedAt = q.refs
	q.cur.Leaves++
}

// Stopped reports whether the stream has errored, so stopper-aware replays
// and generators stop feeding a stream that discards everything anyway.
func (q *SquareStream) Stopped() bool { return q.err != nil }

// Finish closes the final (typically partial) box and returns the per-box
// statistics, or the first error the stream hit. An untouched stream
// returns (nil, nil), matching SquareRun on an empty trace.
func (q *SquareStream) Finish() ([]BoxStat, error) {
	if q.err != nil {
		return q.stats, q.err
	}
	if !q.started {
		return nil, nil
	}
	q.started = false
	q.stats = append(q.stats, q.cur)
	return q.stats, nil
}

func (q *SquareStream) ensure(block int64) {
	if block < int64(len(q.resident)) {
		return
	}
	n := int64(len(q.resident)) * 2
	if n <= block {
		n = block + 1
	}
	//lint:ignore hotpath geometric residency growth amortises to O(1) per access and Reserve pre-sizes it away in steady state
	grown := make([]int64, n)
	copy(grown, q.resident)
	for i := len(q.resident); i < len(grown); i++ {
		grown[i] = -1
	}
	q.resident = grown
}

// SquareFinisher consumes a reference stream against a finite square
// sequence and reports how many references the boxes served — the
// streaming form of SquareRunFrom, and the primitive behind the
// No-Catch-up Lemma check. Once the boxes are exhausted (or a box size is
// invalid) the remaining stream is ignored.
type SquareFinisher struct {
	boxes    []int64
	bi       int
	resident []int64 // epoch-stamped, cleared per box via epoch bump
	epoch    int64
	ios      int64
	served   int64
	done     bool
	err      error
}

// NewSquareFinisher returns a finisher over the given box sizes. The first
// box is validated eagerly so an invalid leading box is reported even for
// an empty stream, matching SquareRunFrom.
func NewSquareFinisher(boxes []int64) *SquareFinisher {
	f := &SquareFinisher{boxes: boxes}
	if len(boxes) == 0 {
		f.done = true
	} else if boxes[0] < 1 {
		f.err = fmt.Errorf("paging: box size %d invalid", boxes[0])
	}
	return f
}

// Reserve pre-sizes the residency array for block IDs up to maxBlock.
func (f *SquareFinisher) Reserve(maxBlock int64) { f.ensure(maxBlock) }

// Access serves one reference, advancing to the next box when the current
// budget is exhausted. References after the last box ends are unserved.
//
//lint:hotpath
func (f *SquareFinisher) Access(block int64) {
	if f.done || f.err != nil {
		return
	}
	f.ensure(block)
	if f.resident[block] == f.epoch {
		f.served++
		return
	}
	if f.ios == f.boxes[f.bi] {
		// Budget exhausted: this reference belongs to the next box.
		f.bi++
		if f.bi >= len(f.boxes) {
			f.done = true
			return
		}
		if f.boxes[f.bi] < 1 {
			//lint:ignore hotpath error path: an invalid box ends the run, one allocation to say why is fine
			f.err = fmt.Errorf("paging: box size %d invalid", f.boxes[f.bi])
			return
		}
		// Fresh square: cache cleared.
		f.epoch++
		f.ios = 0
	}
	f.resident[block] = f.epoch
	f.ios++
	f.served++
}

// AccessRange serves blocks [lo, lo+count) in order.
func (f *SquareFinisher) AccessRange(lo, count int64) {
	for i := int64(0); i < count; i++ {
		f.Access(lo + i)
	}
}

// EndLeaf is a no-op: the finisher measures progress in references served,
// not base cases.
func (f *SquareFinisher) EndLeaf() {}

// Served reports how many stream references the boxes served so far.
func (f *SquareFinisher) Served() int64 { return f.served }

// Done reports whether the boxes are exhausted (further accesses ignored).
func (f *SquareFinisher) Done() bool { return f.done }

// Stopped reports whether further accesses would be ignored — the boxes ran
// out or a box size was invalid. Replay/ReplayRange/ReplayRepeat halt at
// this boundary instead of streaming the rest of the trace into a finisher
// that discards it, which turns the No-Catch-up sweep from quadratic into
// O(refs actually served) per start index.
func (f *SquareFinisher) Stopped() bool { return f.done || f.err != nil }

// Err reports the first invalid-box error, if any.
func (f *SquareFinisher) Err() error { return f.err }

func (f *SquareFinisher) ensure(block int64) {
	if block < int64(len(f.resident)) {
		return
	}
	n := int64(len(f.resident)) * 2
	if n <= block {
		n = block + 1
	}
	//lint:ignore hotpath geometric residency growth amortises to O(1) per access and Reserve pre-sizes it away in steady state
	grown := make([]int64, n)
	copy(grown, f.resident)
	for i := len(f.resident); i < len(grown); i++ {
		grown[i] = -1
	}
	f.resident = grown
}

var (
	_ trace.Sink    = (*SquareStream)(nil)
	_ trace.Sink    = (*SquareFinisher)(nil)
	_ trace.Stopper = (*SquareStream)(nil)
	_ trace.Stopper = (*SquareFinisher)(nil)
)

// cacheAccessor is the shared surface of the policy caches (LRU, FIFO).
type cacheAccessor interface {
	Access(block int64) bool
}

// CacheSink adapts a policy cache into a trace.Sink so generators can
// stream straight into an LRU or FIFO replay (leaf markers are ignored —
// DAM-model replays measure I/Os, not progress).
type CacheSink struct {
	Cache cacheAccessor
}

// Access forwards the reference to the cache, discarding the hit flag.
//
//lint:hotpath
func (s CacheSink) Access(block int64) { s.Cache.Access(block) }

// AccessRange forwards blocks [lo, lo+count) in order.
func (s CacheSink) AccessRange(lo, count int64) {
	for i := int64(0); i < count; i++ {
		s.Cache.Access(lo + i)
	}
}

// EndLeaf is ignored.
func (s CacheSink) EndLeaf() {}

var _ trace.Sink = CacheSink{}
