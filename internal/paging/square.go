// Package paging implements the memory/caching substrates that traces are
// replayed against.
//
// Two substrates matter for the paper:
//
//  1. SquareRun — the cache-adaptive model's square-profile semantics.
//     Prior work (Bender et al. 2014) shows that, w.l.o.g. up to constant
//     factors, one may assume cache is cleared at the start of each square,
//     after which a square of size X serves exactly X distinct blocks: each
//     first touch of a block within a square is one I/O (one unit of time),
//     repeat touches are free, and the square ends after X I/Os.
//
//  2. LRU / FIFO / OPT page replacement with fixed or dynamically changing
//     capacity — the classical DAM-model machinery, used to validate the
//     matrix-multiply I/O complexity (experiment E11) and to sanity-check
//     that the square semantics above are a faithful constant-factor proxy.
package paging

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/trace"
)

// BoxStat records what one memory-profile box accomplished during a square
// run.
type BoxStat struct {
	Size   int64 // box size in blocks (= its duration in I/Os)
	IOs    int64 // I/Os actually consumed (= distinct blocks fetched; < Size only for the final box)
	Leaves int64 // base cases completed within the box
	Refs   int64 // total references served (hits + misses)
}

// SquareRun replays tr against boxes drawn from src under the CA model's
// square semantics and returns per-box statistics. The run ends when the
// trace is exhausted; the final box is typically partial. maxBoxes guards
// against pathological stalls (0 = unbounded).
func SquareRun(tr *trace.Trace, src profile.Source, maxBoxes int64) ([]BoxStat, error) {
	if tr.Len() == 0 {
		return nil, nil
	}
	// Epoch-stamped residency set: resident[b] == epoch means block b was
	// fetched in the current box.
	resident := make([]int64, tr.MaxBlock()+1)
	for i := range resident {
		resident[i] = -1
	}
	epoch := int64(0)

	var stats []BoxStat
	cur := BoxStat{Size: src.Next()}
	if cur.Size < 1 {
		return nil, fmt.Errorf("paging: box source produced size %d", cur.Size)
	}

	for i := 0; i < tr.Len(); i++ {
		blk := tr.Block(i)
		if resident[blk] != epoch {
			// Miss: needs an I/O from the current box's budget.
			if cur.IOs == cur.Size {
				// Budget exhausted: this reference belongs to the next box.
				stats = append(stats, cur)
				if maxBoxes > 0 && int64(len(stats)) >= maxBoxes {
					return stats, fmt.Errorf("paging: run exceeded %d boxes", maxBoxes)
				}
				epoch++
				cur = BoxStat{Size: src.Next()}
				if cur.Size < 1 {
					return stats, fmt.Errorf("paging: box source produced size %d", cur.Size)
				}
			}
			resident[blk] = epoch
			cur.IOs++
		}
		cur.Refs++
		if tr.EndsLeaf(i) {
			cur.Leaves++
		}
	}
	stats = append(stats, cur)
	return stats, nil
}

// SquareRunFrom replays the suffix of tr starting at reference startIdx
// against the finite square sequence boxes, and returns the index of the
// first reference NOT served (tr.Len() if the boxes finish the trace).
// This is the primitive behind the No-Catch-up Lemma check (Lemma 2):
// if boxes started at r_i finish at r_j, then started at any r_{i'} with
// i' < i they finish at some r_{j'} with j' <= j.
func SquareRunFrom(tr *trace.Trace, startIdx int, boxes []int64) (int, error) {
	if startIdx < 0 || startIdx > tr.Len() {
		return 0, fmt.Errorf("paging: start index %d out of range", startIdx)
	}
	resident := make(map[int64]struct{})
	i := startIdx
	for _, size := range boxes {
		if size < 1 {
			return 0, fmt.Errorf("paging: box size %d invalid", size)
		}
		// Fresh square: cache cleared.
		clear(resident)
		var ios int64
		for i < tr.Len() {
			blk := tr.Block(i)
			if _, ok := resident[blk]; !ok {
				if ios == size {
					break // budget exhausted; reference goes to next box
				}
				resident[blk] = struct{}{}
				ios++
			}
			i++
		}
		if i == tr.Len() {
			return i, nil
		}
	}
	return i, nil
}

// TotalLeaves sums leaf completions over box stats.
func TotalLeaves(stats []BoxStat) int64 {
	var n int64
	for _, s := range stats {
		n += s.Leaves
	}
	return n
}

// TotalIOs sums I/Os over box stats.
func TotalIOs(stats []BoxStat) int64 {
	var n int64
	for _, s := range stats {
		n += s.IOs
	}
	return n
}
