// Package paging implements the memory/caching substrates that traces are
// replayed against.
//
// Two substrates matter for the paper:
//
//  1. SquareRun — the cache-adaptive model's square-profile semantics.
//     Prior work (Bender et al. 2014) shows that, w.l.o.g. up to constant
//     factors, one may assume cache is cleared at the start of each square,
//     after which a square of size X serves exactly X distinct blocks: each
//     first touch of a block within a square is one I/O (one unit of time),
//     repeat touches are free, and the square ends after X I/Os.
//
//  2. LRU / FIFO / OPT page replacement with fixed or dynamically changing
//     capacity — the classical DAM-model machinery, used to validate the
//     matrix-multiply I/O complexity (experiment E11) and to sanity-check
//     that the square semantics above are a faithful constant-factor proxy.
package paging

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/trace"
)

// BoxStat records what one memory-profile box accomplished during a square
// run.
type BoxStat struct {
	Size   int64 // box size in blocks (= its duration in I/Os)
	IOs    int64 // I/Os actually consumed (= distinct blocks fetched; < Size only for the final box)
	Leaves int64 // base cases completed within the box
	Refs   int64 // total references served (hits + misses)
}

// SquareRun replays tr against boxes drawn from src under the CA model's
// square semantics and returns per-box statistics. The run ends when the
// trace is exhausted; the final box is typically partial. maxBoxes guards
// against pathological stalls (0 = unbounded).
//
// It is a materialized-trace wrapper around SquareStream (stream.go); the
// two paths share one implementation, so streamed runs are byte-identical
// to materialized ones.
func SquareRun(tr *trace.Trace, src profile.Source, maxBoxes int64) ([]BoxStat, error) {
	q := NewSquareStream(src, maxBoxes)
	q.Reserve(tr.MaxBlock())
	trace.Replay(tr, q)
	return q.Finish()
}

// SquareRunFrom replays the suffix of tr starting at reference startIdx
// against the finite square sequence boxes, and returns the index of the
// first reference NOT served (tr.Len() if the boxes finish the trace).
// This is the primitive behind the No-Catch-up Lemma check (Lemma 2):
// if boxes started at r_i finish at r_j, then started at any r_{i'} with
// i' < i they finish at some r_{j'} with j' <= j.
func SquareRunFrom(tr *trace.Trace, startIdx int, boxes []int64) (int, error) {
	if startIdx < 0 || startIdx > tr.Len() {
		return 0, fmt.Errorf("paging: start index %d out of range", startIdx)
	}
	f := NewSquareFinisher(boxes)
	f.Reserve(tr.MaxBlock())
	trace.ReplayRange(tr, f, startIdx, tr.Len())
	if err := f.Err(); err != nil {
		return 0, err
	}
	return startIdx + int(f.Served()), nil
}

// TotalLeaves sums leaf completions over box stats.
func TotalLeaves(stats []BoxStat) int64 {
	var n int64
	for _, s := range stats {
		n += s.Leaves
	}
	return n
}

// TotalIOs sums I/Os over box stats.
func TotalIOs(stats []BoxStat) int64 {
	var n int64
	for _, s := range stats {
		n += s.IOs
	}
	return n
}
