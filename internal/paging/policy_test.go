package paging

import (
	"testing"

	"repro/internal/xrand"
)

// refPolicy is a deliberately naive reference for the policy adapters: a
// slice of IDs in eviction order, linear-scanned. touchMoves selects LRU
// (touch moves to back) vs FIFO (touch is a no-op).
type refPolicy struct {
	order      []int64
	touchMoves bool
}

func (r *refPolicy) Touch(id int64) {
	if !r.touchMoves {
		return
	}
	for i, v := range r.order {
		if v == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			r.order = append(r.order, id)
			return
		}
	}
}

func (r *refPolicy) Insert(id int64) { r.order = append(r.order, id) }

func (r *refPolicy) Victim() int64 {
	if len(r.order) == 0 {
		return -1
	}
	return r.order[0]
}

func (r *refPolicy) Remove(id int64) bool {
	for i, v := range r.order {
		if v == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return true
		}
	}
	return false
}

func (r *refPolicy) Len() int64 { return int64(len(r.order)) }

// policyRef is the surface a naive reference model implements — the
// EvictionPolicy methods, nothing more.
type policyRef interface {
	Touch(id int64)
	Insert(id int64)
	Victim() int64
	Remove(id int64) bool
	Len() int64
}

// refSegmented is the naive reference for the adaptive kernels' adapter
// mode, where both degrade to a segmented LRU: Insert lands in the
// probation segment, Touch promotes to the protected segment's back, and
// the victim rule is pluggable (ARC drains probation first; 2Q keeps
// probation at its Kin entitlement). Slices are in eviction order:
// index 0 is the oldest.
type refSegmented struct {
	probation []int64
	protected []int64
	// twoQVictim selects the 2Q balance rule (probation evicted only while
	// over max(1, len/4)) instead of ARC's probation-first rule.
	twoQVictim bool
}

func removeID(s []int64, id int64) ([]int64, bool) {
	for i, v := range s {
		if v == id {
			return append(s[:i], s[i+1:]...), true
		}
	}
	return s, false
}

func (r *refSegmented) Touch(id int64) {
	var found bool
	if r.probation, found = removeID(r.probation, id); !found {
		if r.protected, found = removeID(r.protected, id); !found {
			return
		}
	}
	r.protected = append(r.protected, id)
}

func (r *refSegmented) Insert(id int64) { r.probation = append(r.probation, id) }

func (r *refSegmented) Victim() int64 {
	if r.twoQVictim {
		kin := (len(r.probation) + len(r.protected)) / 4
		if kin < 1 {
			kin = 1
		}
		if len(r.probation) > 0 && (len(r.probation) > kin || len(r.protected) == 0) {
			return r.probation[0]
		}
		if len(r.protected) > 0 {
			return r.protected[0]
		}
	}
	if len(r.probation) > 0 {
		return r.probation[0]
	}
	if len(r.protected) > 0 {
		return r.protected[0]
	}
	return -1
}

func (r *refSegmented) Remove(id int64) bool {
	var found bool
	if r.probation, found = removeID(r.probation, id); found {
		return true
	}
	r.protected, found = removeID(r.protected, id)
	return found
}

func (r *refSegmented) Len() int64 { return int64(len(r.probation) + len(r.protected)) }

// newPolicyRef returns the naive reference model for a registered policy's
// adapter (EvictionPolicy) surface, or nil if none is written yet — which
// fails the test, deliberately: registering a policy means writing its
// reference.
func newPolicyRef(name string) policyRef {
	switch name {
	case "lru":
		return &refPolicy{touchMoves: true}
	case "fifo":
		return &refPolicy{}
	case "arc":
		return &refSegmented{}
	case "2q":
		return &refSegmented{twoQVictim: true}
	}
	return nil
}

// TestPolicyMatchesReference drives each registered policy and its naive
// reference through the same random op sequence — insert, touch, remove a
// random resident ID, evict the victim — and checks victim order and
// length agree at every step. Re-insertion after removal is the case that
// exercises the FIFO kernel's stale-slot machinery.
func TestPolicyMatchesReference(t *testing.T) {
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			p, err := NewPolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			ref := newPolicyRef(name)
			if ref == nil {
				t.Fatalf("no reference model for registered policy %q — add one to newPolicyRef", name)
			}
			src := xrand.New(xrand.Split(99, "policy-ref", int64(len(name))))

			resident := map[int64]bool{}
			var ids []int64 // resident IDs, arbitrary order
			pick := func() int64 { return ids[src.Intn(len(ids))] }
			drop := func(id int64) {
				delete(resident, id)
				for i, v := range ids {
					if v == id {
						ids[i] = ids[len(ids)-1]
						ids = ids[:len(ids)-1]
						return
					}
				}
			}

			const universe = 24
			for op := 0; op < 4000; op++ {
				switch k := src.Intn(4); {
				case k == 0 || len(ids) == 0: // insert a non-resident ID
					id := int64(src.Intn(universe))
					for resident[id] {
						id = int64(src.Intn(universe))
					}
					p.Insert(id)
					ref.Insert(id)
					resident[id] = true
					ids = append(ids, id)
				case k == 1: // touch a resident ID
					id := pick()
					p.Touch(id)
					ref.Touch(id)
				case k == 2: // remove a random resident ID
					id := pick()
					got, want := p.Remove(id), ref.Remove(id)
					if got != want {
						t.Fatalf("op %d: Remove(%d) = %v, reference %v", op, id, got, want)
					}
					drop(id)
				default: // evict the policy's victim
					got, want := p.Victim(), ref.Victim()
					if got != want {
						t.Fatalf("op %d: Victim() = %d, reference %d", op, got, want)
					}
					if got >= 0 {
						p.Remove(got)
						ref.Remove(got)
						drop(got)
					}
				}
				if got, want := p.Victim(), ref.Victim(); got != want {
					t.Fatalf("op %d: post-op Victim() = %d, reference %d", op, got, want)
				}
				if got, want := p.Len(), ref.Len(); got != want {
					t.Fatalf("op %d: Len() = %d, reference %d", op, got, want)
				}
			}
		})
	}
}

func TestNewPolicyUnknownName(t *testing.T) {
	if _, err := NewPolicy("belady-crystal-ball"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}

// TestLRUVictimAndRemove pins the kernel-level surface the policy adapter
// rides on: Victim is the tail, Remove unlinks anywhere, and a removed
// block's node is recycled.
func TestLRUVictimAndRemove(t *testing.T) {
	l, err := NewLRU(100)
	if err != nil {
		t.Fatal(err)
	}
	if v := l.Victim(); v != -1 {
		t.Fatalf("empty Victim() = %d, want -1", v)
	}
	if l.Remove(3) {
		t.Fatal("Remove on empty cache reported residency")
	}
	for b := int64(0); b < 4; b++ {
		l.Access(b)
	}
	if v := l.Victim(); v != 0 {
		t.Fatalf("Victim() = %d, want oldest (0)", v)
	}
	l.Access(0) // touch: 1 is now LRU
	if v := l.Victim(); v != 1 {
		t.Fatalf("Victim() after touch = %d, want 1", v)
	}
	if !l.Remove(2) || l.Remove(2) {
		t.Fatal("Remove(2) should succeed exactly once")
	}
	if l.Len() != 3 {
		t.Fatalf("Len() = %d after removing 1 of 4", l.Len())
	}
	// Eviction order now 1, 3, 0.
	for _, w := range []int64{1, 3, 0} {
		v := l.Victim()
		if v != w {
			t.Fatalf("Victim() = %d, want %d", v, w)
		}
		l.Remove(v)
	}
	if l.Len() != 0 || l.Victim() != -1 {
		t.Fatalf("cache not empty after removing all: len=%d victim=%d", l.Len(), l.Victim())
	}
}

// TestFIFOVictimAndRemove covers the stale-slot path: remove mid-ring,
// re-insert the same block, and check the old slot never resurfaces.
func TestFIFOVictimAndRemove(t *testing.T) {
	f, err := NewFIFO(100)
	if err != nil {
		t.Fatal(err)
	}
	if v := f.Victim(); v != -1 {
		t.Fatalf("empty Victim() = %d, want -1", v)
	}
	for b := int64(0); b < 4; b++ {
		f.Access(b)
	}
	f.Access(0) // hit; FIFO order unchanged
	if v := f.Victim(); v != 0 {
		t.Fatalf("Victim() = %d, want fetch-order oldest (0)", v)
	}
	if !f.Remove(1) || f.Remove(1) {
		t.Fatal("Remove(1) should succeed exactly once")
	}
	f.Access(1) // re-insert: now newest; the stale slot for 1 sits mid-ring
	if f.Len() != 4 {
		t.Fatalf("Len() = %d, want 4 after re-insert", f.Len())
	}
	for _, w := range []int64{0, 2, 3, 1} {
		v := f.Victim()
		if v != w {
			t.Fatalf("Victim() = %d, want %d", v, w)
		}
		f.Remove(v)
	}
	if f.Len() != 0 || f.Victim() != -1 {
		t.Fatalf("cache not empty after removing all: len=%d victim=%d", f.Len(), f.Victim())
	}
}
