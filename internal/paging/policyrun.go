package paging

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/trace"
)

// This file is the policy-replay half of the box-profile substrate: the
// same memory profile the square semantics discretise (a box of size X
// grants X I/Os at capacity X), executed against a *live* replacement
// kernel instead of the cleared-cache square idealisation. Under square
// semantics every policy is identical — the cache is emptied at each box
// boundary, so a box of size X serves exactly X distinct blocks no matter
// who picks victims. PolicyStream is what makes policies distinguishable:
// the kernel's state survives box boundaries, SetCapacity applies the new
// box size (evicting per the policy on shrink), and the box charges one
// unit of budget per miss *as the policy replays it*. Experiment E12 runs
// both against the same profile; the spread between a policy's boxes and
// the square bound is exactly the adaptivity gap the paper's potential
// argument controls.

// Reserved replay names: accepted wherever a policy name selects a
// box-profile replay, alongside the kernel registry (PolicyNames).
const (
	// SquareReplayName selects the cleared-cache square semantics
	// (SquareRun) — the paper's upper-bound discretisation, identical for
	// every policy.
	SquareReplayName = "square"
	// OPTReplayName selects Belady's farthest-in-future choice replayed
	// under the box profile (OPTRunBoxes) — the clairvoyant baseline.
	OPTReplayName = "opt"
)

// ReplayNames lists every name PolicyRun accepts: the registered kernels
// plus the reserved "opt" and "square" replays, sorted.
func ReplayNames() []string {
	names := PolicyNames()
	names = append(names, OPTReplayName, SquareReplayName)
	return names
}

// PolicyStream consumes a reference stream through a live ReplacementPolicy
// whose capacity follows boxes drawn from a profile source: entering a box
// of size X resizes the kernel to X (evicting per the policy if it shrank)
// and grants a budget of X misses; the box ends when the budget is spent.
// Unlike SquareStream the cache is never cleared — the kernel's state is
// exactly what persists across profile changes. Feed it accesses (directly
// or via trace.Replay), then call Finish for the per-box statistics.
type PolicyStream struct {
	policy   ReplacementPolicy
	src      profile.Source
	maxBoxes int64
	stats    []BoxStat
	cur      BoxStat
	started  bool
	err      error
	markedAt int64 // cur.Refs total at the last EndLeaf (idempotency)
	refs     int64 // total refs across all boxes, for markedAt
}

// NewPolicyStream returns a stream replaying through policy against box
// sizes from src; maxBoxes guards against pathological stalls (0 =
// unbounded). The policy's starting capacity is irrelevant — the first box
// resizes it.
func NewPolicyStream(policy ReplacementPolicy, src profile.Source, maxBoxes int64) *PolicyStream {
	return &PolicyStream{policy: policy, src: src, maxBoxes: maxBoxes}
}

// Reserve pre-sizes the kernel's dense indexes for block IDs up to maxBlock.
func (q *PolicyStream) Reserve(maxBlock int64) { q.policy.Reserve(maxBlock) }

// openBox draws the next box and resizes the kernel to it.
func (q *PolicyStream) openBox() {
	q.cur = BoxStat{Size: q.src.Next()}
	if q.cur.Size < 1 {
		//lint:ignore hotpath error path: the stream is dead after this, one allocation to say why is fine
		q.err = fmt.Errorf("paging: box source produced size %d", q.cur.Size)
		q.started = false
		return
	}
	if err := q.policy.SetCapacity(q.cur.Size); err != nil {
		q.err = err
		q.started = false
	}
}

// Access serves one block reference: a resident block is a free hit against
// the current box; a miss spends one unit of the box's budget, rolling to
// the next box (and capacity) first when the budget is already spent.
//
//lint:hotpath
func (q *PolicyStream) Access(block int64) {
	if q.err != nil {
		return
	}
	if !q.started {
		q.started = true
		q.openBox()
		if q.err != nil {
			return
		}
	}
	if q.policy.Contains(block) {
		q.policy.Access(block)
		q.cur.Refs++
		q.refs++
		return
	}
	// Miss: needs an I/O from the current box's budget.
	if q.cur.IOs == q.cur.Size {
		// Budget exhausted: this reference belongs to the next box.
		q.stats = append(q.stats, q.cur)
		if q.maxBoxes > 0 && int64(len(q.stats)) >= q.maxBoxes {
			//lint:ignore hotpath error path: the box guard tripping ends the run
			q.err = fmt.Errorf("paging: run exceeded %d boxes", q.maxBoxes)
			q.started = false
			return
		}
		q.openBox()
		if q.err != nil {
			return
		}
	}
	q.policy.Access(block)
	q.cur.IOs++
	q.cur.Refs++
	q.refs++
}

// AccessRange serves blocks [lo, lo+count) in order.
func (q *PolicyStream) AccessRange(lo, count int64) {
	for i := int64(0); i < count; i++ {
		q.Access(lo + i)
	}
}

// EndLeaf credits a base-case completion to the box that served the most
// recent access — the same idempotent convention as SquareStream.EndLeaf.
func (q *PolicyStream) EndLeaf() {
	if q.err != nil {
		return
	}
	if q.refs == 0 {
		panic("paging: EndLeaf before any access")
	}
	if q.markedAt == q.refs {
		return
	}
	q.markedAt = q.refs
	q.cur.Leaves++
}

// Stopped reports whether the stream has errored, so stopper-aware replays
// stop feeding a stream that discards everything anyway.
func (q *PolicyStream) Stopped() bool { return q.err != nil }

// Finish closes the final (typically partial) box and returns the per-box
// statistics, or the first error the stream hit. An untouched stream
// returns (nil, nil), matching SquareStream.
func (q *PolicyStream) Finish() ([]BoxStat, error) {
	if q.err != nil {
		return q.stats, q.err
	}
	if !q.started {
		return nil, nil
	}
	q.started = false
	q.stats = append(q.stats, q.cur)
	return q.stats, nil
}

var (
	_ trace.Sink    = (*PolicyStream)(nil)
	_ trace.Stopper = (*PolicyStream)(nil)
)

// PolicyRun replays tr under the box profile src by name: a registered
// kernel streams through PolicyStream, "square" selects the cleared-cache
// square semantics, and "opt" the clairvoyant box replay. Unknown names
// error with every accepted name listed.
func PolicyRun(name string, tr *trace.Trace, src profile.Source, maxBoxes int64) ([]BoxStat, error) {
	switch name {
	case SquareReplayName:
		return SquareRun(tr, src, maxBoxes)
	case OPTReplayName:
		return OPTRunBoxes(tr, src, maxBoxes)
	}
	p, err := NewReplacementPolicy(name, 1)
	if err != nil {
		return nil, fmt.Errorf("paging: unknown replay policy %q (have %v)", name, ReplayNames())
	}
	q := NewPolicyStream(p, src, maxBoxes)
	q.Reserve(tr.MaxBlock())
	trace.Replay(tr, q)
	return q.Finish()
}

// RunPolicyFixed replays tr at a fixed capacity by name — a registered
// kernel, or "opt" for Belady's baseline — and returns the miss count.
// This is the DAM-model counterpart of PolicyRun, used by the smoothness
// experiment's Δfaults/Δcapacity probes.
func RunPolicyFixed(name string, tr *trace.Trace, capacity int64) (int64, error) {
	if name == OPTReplayName {
		return RunOPTFixed(tr, capacity)
	}
	p, err := NewReplacementPolicy(name, capacity)
	if err != nil {
		return 0, err
	}
	p.Reserve(tr.MaxBlock())
	for i := 0; i < tr.Len(); i++ {
		p.Access(tr.Block(i))
	}
	return p.Misses(), nil
}
