package paging

import (
	"fmt"
)

// ARC is the Adaptive Replacement Cache (Megiddo & Modha), the canonical
// member of the adaptive-policy family analysed for dynamic cache sizes by
// Consuegra et al. ("Analyzing Adaptive Cache Replacement Strategies").
// Resident blocks split into a recency list T1 (seen once recently) and a
// frequency list T2 (seen at least twice); evicted blocks leave ghosts in
// B1/B2, and ghost hits steer the adaptive target p — the share of the
// cache T1 is entitled to — toward whichever list is proving useful.
//
// Layout: each block is in at most one of the four lists, so membership is
// a dense block-indexed byte and the lists are intrusive block-indexed
// prev/next arrays — no nodes, no maps, no steady-state allocation. Block
// IDs are assumed dense-remapped below 2^31 (the same packing assumption
// as the OPT kernel).
//
// Dynamic capacity follows the CA-model generalisation: SetCapacity clamps
// p, demotes resident overflow through the standard REPLACE rule, and trims
// the ghost lists back under the ARC invariants (|T1|+|B1| <= c, total <=
// 2c). At UnboundedCapacity the kernel never self-evicts and serves as an
// EvictionPolicy: with no internal evictions there are no ghosts, p stays
// 0, and the policy degrades to a two-segment LRU (T1 = seen once, T2 =
// seen again; T1 drains first) — the honest adapter-mode semantics, since
// the owning cache recycles IDs and decides evictions itself, which makes
// ID-keyed ghost learning meaningless there.
type ARC struct {
	capacity int64
	p        int64 // adaptive target size for T1, 0 <= p <= capacity
	where    []uint8
	prev     []int32
	next     []int32
	lists    [5]arcList // indexed by arcT1..arcB2; slot arcNone unused
	hits     int64
	misses   int64
}

// List indexes for ARC.where; arcNone marks an untracked block.
const (
	arcNone = uint8(iota)
	arcT1
	arcT2
	arcB1
	arcB2
)

// arcList is one intrusive list: head is the MRU end, tail the LRU end.
type arcList struct {
	head, tail int32
	size       int64
}

// NewARC returns an empty ARC with the given capacity (>= 1).
func NewARC(capacity int64) (*ARC, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("paging: ARC capacity %d < 1", capacity)
	}
	a := &ARC{capacity: capacity}
	for i := range a.lists {
		a.lists[i] = arcList{head: nilNode, tail: nilNode}
	}
	return a, nil
}

func init() {
	RegisterPolicy(PolicyInfo{
		Name:    "arc",
		Summary: "adaptive replacement cache: recency/frequency lists T1/T2 with ghost-steered target p",
		New:     func(capacity int64) (ReplacementPolicy, error) { return NewARC(capacity) },
	})
}

// Len reports the number of resident blocks (T1 + T2; ghosts don't count).
func (a *ARC) Len() int64 { return a.lists[arcT1].size + a.lists[arcT2].size }

// Misses reports the number of accesses that required a fetch.
func (a *ARC) Misses() int64 { return a.misses }

// Hits reports the number of accesses served from cache.
func (a *ARC) Hits() int64 { return a.hits }

// Capacity reports the current capacity.
func (a *ARC) Capacity() int64 { return a.capacity }

// Target reports the adaptive target p for |T1| (exported for tests and
// diagnostics).
func (a *ARC) Target() int64 { return a.p }

// Contains reports whether block is resident without recording a hit.
func (a *ARC) Contains(block int64) bool {
	if block < 0 || block >= int64(len(a.where)) {
		return false
	}
	w := a.where[block]
	return w == arcT1 || w == arcT2
}

// Reserve pre-sizes the dense indexes for block IDs up to maxBlock.
func (a *ARC) Reserve(maxBlock int64) { a.ensure(maxBlock) }

// SetCapacity resizes the cache. Shrinking demotes resident overflow
// through the REPLACE rule and trims the ghost lists back under the ARC
// invariants; p is clamped into [0, capacity].
func (a *ARC) SetCapacity(capacity int64) error {
	if capacity < 1 {
		return fmt.Errorf("paging: ARC capacity %d < 1", capacity)
	}
	a.capacity = capacity
	if a.p > capacity {
		a.p = capacity
	}
	for a.Len() > capacity {
		a.replaceOne(false)
	}
	// |T1| <= capacity now, so overflow of L1 = T1 ∪ B1 is all ghost.
	for a.lists[arcT1].size+a.lists[arcB1].size > capacity {
		a.dropTail(arcB1)
	}
	for a.Len()+a.lists[arcB1].size+a.lists[arcB2].size > 2*capacity {
		if a.lists[arcB2].size > 0 {
			a.dropTail(arcB2)
		} else {
			a.dropTail(arcB1)
		}
	}
	return nil
}

// Clear empties the cache and the ghost lists (the square-boundary
// convention) without touching the counters; p resets with the history.
func (a *ARC) Clear() {
	for li := range a.lists {
		for s := a.lists[li].head; s != nilNode; {
			nxt := a.next[s]
			a.where[s] = arcNone
			s = nxt
		}
		a.lists[li] = arcList{head: nilNode, tail: nilNode}
	}
	a.p = 0
}

// Access touches block, returning true on a hit. On a miss the block is
// fetched, adapting p on ghost hits and self-evicting through REPLACE when
// the cache is full.
//
//lint:hotpath
func (a *ARC) Access(block int64) bool {
	a.ensure(block)
	switch a.where[block] {
	case arcT1, arcT2:
		// Hit: promote to the frequency list's MRU end.
		a.hits++
		a.unlink(block)
		a.pushFront(arcT2, block)
		return true
	case arcB1:
		// Ghost hit in B1: recency was undervalued — grow p.
		a.misses++
		a.p += maxi64(a.lists[arcB2].size/a.lists[arcB1].size, 1)
		if a.p > a.capacity {
			a.p = a.capacity
		}
		a.replace(false)
		a.unlink(block)
		a.pushFront(arcT2, block)
		return false
	case arcB2:
		// Ghost hit in B2: frequency was undervalued — shrink p.
		a.misses++
		a.p -= maxi64(a.lists[arcB1].size/a.lists[arcB2].size, 1)
		if a.p < 0 {
			a.p = 0
		}
		a.replace(true)
		a.unlink(block)
		a.pushFront(arcT2, block)
		return false
	}
	// Completely new block (ARC Case IV).
	a.misses++
	if l1 := a.lists[arcT1].size + a.lists[arcB1].size; l1 >= a.capacity {
		if a.lists[arcB1].size > 0 {
			a.dropTail(arcB1)
			a.replace(false)
		} else {
			// L1 is all resident: evict T1's LRU outright, no ghost (it
			// would overflow B1).
			a.dropTail(arcT1)
		}
	} else if a.Len()+a.lists[arcB1].size+a.lists[arcB2].size >= a.capacity {
		if a.Len()+a.lists[arcB1].size+a.lists[arcB2].size >= 2*a.capacity {
			a.dropTail(arcB2)
		}
		a.replace(false)
	}
	a.pushFront(arcT1, block)
	return false
}

// replace demotes resident blocks into the ghost lists until an insertion
// slot is free — the REPLACE procedure of the ARC paper, generalised to a
// loop so a freshly shrunk capacity is honoured too.
func (a *ARC) replace(inB2 bool) {
	for a.Len() >= a.capacity {
		a.replaceOne(inB2)
	}
}

// replaceOne demotes one resident block: T1's LRU to B1 when T1 exceeds its
// target p (or ties it on a B2 ghost hit), T2's LRU to B2 otherwise.
func (a *ARC) replaceOne(inB2 bool) {
	t1 := a.lists[arcT1].size
	if t1 > 0 && (t1 > a.p || (inB2 && t1 == a.p) || a.lists[arcT2].size == 0) {
		lru := a.lists[arcT1].tail
		a.unlink(int64(lru))
		a.pushFront(arcB1, int64(lru))
		return
	}
	lru := a.lists[arcT2].tail
	a.unlink(int64(lru))
	a.pushFront(arcB2, int64(lru))
}

// Touch records a hit for the EvictionPolicy surface: the resident block
// moves to T2's MRU end, exactly the Access hit path without counters.
func (a *ARC) Touch(id int64) {
	if !a.Contains(id) {
		return
	}
	a.unlink(id)
	a.pushFront(arcT2, id)
}

// Insert admits a new entry for the EvictionPolicy surface: onto T1's MRU
// end, with no eviction — the owning cache decides when to evict. A stale
// ghost under a recycled ID is forgotten first.
func (a *ARC) Insert(id int64) {
	a.ensure(id)
	if a.where[id] != arcNone {
		if a.Contains(id) {
			return
		}
		a.unlink(id)
	}
	a.pushFront(arcT1, id)
}

// Victim reports the resident block replaceOne would demote next — T1's
// LRU while T1 exceeds its target, T2's LRU otherwise — or -1 when empty.
func (a *ARC) Victim() int64 {
	t1 := a.lists[arcT1].size
	if t1 > 0 && (t1 > a.p || a.lists[arcT2].size == 0) {
		return int64(a.lists[arcT1].tail)
	}
	if a.lists[arcT2].size > 0 {
		return int64(a.lists[arcT2].tail)
	}
	return -1
}

// Remove forgets an entry entirely — no ghost is recorded, because Remove
// is the external cache's eviction (or an ID about to be recycled), not a
// policy decision ARC should learn from. Reports whether the block was
// resident; a stale ghost is dropped silently.
func (a *ARC) Remove(id int64) bool {
	if id < 0 || id >= int64(len(a.where)) || a.where[id] == arcNone {
		return false
	}
	wasResident := a.Contains(id)
	a.unlink(id)
	return wasResident
}

// ensure grows the dense membership and link arrays (geometrically, so
// growth cost amortises to nothing) until block is a valid index.
func (a *ARC) ensure(block int64) {
	if block < int64(len(a.where)) {
		return
	}
	n := int64(len(a.where)) * 2
	if n <= block {
		n = block + 1
	}
	//lint:ignore hotpath geometric index growth amortises to O(1) per access and Reserve pre-sizes it away in steady state
	grownWhere := make([]uint8, n)
	copy(grownWhere, a.where)
	a.where = grownWhere
	//lint:ignore hotpath geometric link growth, same amortisation as the membership array above
	grownPrev := make([]int32, n)
	copy(grownPrev, a.prev)
	a.prev = grownPrev
	//lint:ignore hotpath geometric link growth, same amortisation as the membership array above
	grownNext := make([]int32, n)
	copy(grownNext, a.next)
	a.next = grownNext
}

// pushFront links block at the MRU end of list li and marks membership.
func (a *ARC) pushFront(li uint8, block int64) {
	l := &a.lists[li]
	s := int32(block)
	a.prev[s] = nilNode
	a.next[s] = l.head
	if l.head != nilNode {
		a.prev[l.head] = s
	}
	l.head = s
	if l.tail == nilNode {
		l.tail = s
	}
	l.size++
	a.where[block] = li
}

// unlink removes block from whichever list holds it and clears membership.
func (a *ARC) unlink(block int64) {
	l := &a.lists[a.where[block]]
	s := int32(block)
	if p := a.prev[s]; p != nilNode {
		a.next[p] = a.next[s]
	} else {
		l.head = a.next[s]
	}
	if n := a.next[s]; n != nilNode {
		a.prev[n] = a.prev[s]
	} else {
		l.tail = a.prev[s]
	}
	l.size--
	a.where[block] = arcNone
}

// dropTail forgets the LRU entry of list li entirely.
func (a *ARC) dropTail(li uint8) {
	if t := a.lists[li].tail; t != nilNode {
		a.unlink(int64(t))
	}
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
