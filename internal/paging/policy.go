package paging

import (
	"fmt"
	"math"
	"sort"
)

// EvictionPolicy is the pluggable ordering behind a bounded cache: it
// answers "which entry should go next" while the caller owns the entries
// themselves and decides *when* to evict (an entry-count bound, a bytes
// bound, a TTL sweep — whatever the cache's contract is). IDs are small
// dense non-negative integers allocated by the caller, which is exactly
// the dense-remapped universe the array-backed kernels in this package
// are built for; the kernels implement this surface directly, so the
// simulator's replay kernels double as the production result cache's
// eviction engines.
//
// Contract: Insert an ID at most once until it is Removed; Touch only
// resident IDs; Victim returns a resident ID without removing it (-1 when
// empty) and is stable until the next mutation. None of the methods are
// safe for concurrent use — the owning cache holds its own lock.
type EvictionPolicy interface {
	// Touch records a use of a resident entry (a cache hit).
	Touch(id int64)
	// Insert admits a new entry (a cache fill).
	Insert(id int64)
	// Victim reports which resident entry the policy would evict next,
	// or -1 when it tracks none. It does not remove the entry.
	Victim() int64
	// Remove forgets an entry (eviction, invalidation, expiry) and
	// reports whether it was tracked.
	Remove(id int64) bool
	// Len reports how many entries the policy currently tracks.
	Len() int64
}

// ReplacementPolicy is the full streaming kernel contract every registered
// policy implements: the EvictionPolicy surface above (external-bound mode,
// where the owning cache decides when to evict) plus the replay surface
// (the kernel enforces its own — dynamically resizable — capacity, the way
// the cache-adaptive model requires). One array-backed kernel serves both
// modes: constructed at UnboundedCapacity it never self-evicts and the
// caller drives eviction through Victim/Remove; constructed at a finite
// capacity, Access self-evicts per the policy.
//
// Kernels are built for dense-remapped block universes (IDs allocated
// contiguously from 0): memory is O(max block ID seen), every operation is
// O(1) amortised, and the steady state of a Reserved replay performs no
// allocations.
type ReplacementPolicy interface {
	EvictionPolicy
	// Access touches block against the kernel's own capacity, returning
	// true on a hit; on a miss the block is fetched, self-evicting per
	// the policy when the cache is full.
	Access(block int64) bool
	// Contains reports whether block is resident, without recording a
	// hit or perturbing the replacement state.
	Contains(block int64) bool
	// SetCapacity resizes the cache, evicting per the policy if it
	// shrank.
	SetCapacity(capacity int64) error
	// Capacity reports the current capacity.
	Capacity() int64
	// Reserve pre-sizes the dense indexes for block IDs up to maxBlock,
	// so a replay over a known universe allocates nothing in steady
	// state.
	Reserve(maxBlock int64)
	// Clear empties the cache (the square-boundary convention) without
	// touching the counters.
	Clear()
	// Hits reports the number of accesses served from cache.
	Hits() int64
	// Misses reports the number of accesses that required a fetch.
	Misses() int64
}

// UnboundedCapacity is the capacity at which a kernel never self-evicts —
// the external-bound (EvictionPolicy) operating mode, where the owning
// cache calls Victim/Remove when *its* bound trips.
const UnboundedCapacity = int64(math.MaxInt64)

// PolicyInfo describes one registered replacement policy.
type PolicyInfo struct {
	// Name keys the registry; it is what -cache-policy, the experiment
	// tables, and every other by-name surface accept.
	Name string
	// Summary is a one-line description for catalogs and docs.
	Summary string
	// New constructs a kernel with the given capacity (>= 1).
	New func(capacity int64) (ReplacementPolicy, error)
}

// policyRegistry maps policy names to their descriptors. ARC/CAR-family
// policies (Consuegra et al., "Analyzing Adaptive Cache Replacement
// Strategies") register here from their kernel files' init functions.
var policyRegistry = map[string]PolicyInfo{}

// RegisterPolicy adds a policy to the name-keyed registry. It is intended
// for package init time and panics on duplicate or malformed registrations.
func RegisterPolicy(info PolicyInfo) {
	if info.Name == "" || info.New == nil {
		panic("paging: RegisterPolicy needs a name and a constructor")
	}
	if _, dup := policyRegistry[info.Name]; dup {
		panic("paging: duplicate replacement policy " + info.Name)
	}
	policyRegistry[info.Name] = info
}

func init() {
	RegisterPolicy(PolicyInfo{
		Name:    "lru",
		Summary: "least-recently-used: intrusive recency list over a dense node pool",
		New:     func(capacity int64) (ReplacementPolicy, error) { return NewLRU(capacity) },
	})
	RegisterPolicy(PolicyInfo{
		Name:    "fifo",
		Summary: "first-in-first-out: circular fetch-order ring, hits do not reorder",
		New:     func(capacity int64) (ReplacementPolicy, error) { return NewFIFO(capacity) },
	})
}

// NewReplacementPolicy returns a fresh kernel by registry name with the
// given capacity. Unknown names error with the registered names listed.
func NewReplacementPolicy(name string, capacity int64) (ReplacementPolicy, error) {
	info, ok := policyRegistry[name]
	if !ok {
		return nil, fmt.Errorf("paging: unknown eviction policy %q (have %v)", name, PolicyNames())
	}
	return info.New(capacity)
}

// NewPolicy returns a fresh eviction policy by name, operating in
// external-bound mode: the kernel's capacity is pinned at
// UnboundedCapacity so it never self-evicts, and the caller drives
// eviction through Victim/Remove.
func NewPolicy(name string) (EvictionPolicy, error) {
	p, err := NewReplacementPolicy(name, UnboundedCapacity)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// HasPolicy reports whether name is registered.
func HasPolicy(name string) bool {
	_, ok := policyRegistry[name]
	return ok
}

// PolicyNames lists the registered policy names, sorted.
func PolicyNames() []string {
	names := make([]string, 0, len(policyRegistry))
	for name := range policyRegistry {
		names = append(names, name) //lint:ignore maporder names is sorted immediately below
	}
	sort.Strings(names)
	return names
}

// Policies lists the registered policy descriptors, sorted by name.
func Policies() []PolicyInfo {
	infos := make([]PolicyInfo, 0, len(policyRegistry))
	for _, name := range PolicyNames() {
		infos = append(infos, policyRegistry[name])
	}
	return infos
}
