package paging

import (
	"fmt"
	"math"
	"sort"
)

// EvictionPolicy is the pluggable ordering behind a bounded cache: it
// answers "which entry should go next" while the caller owns the entries
// themselves and decides *when* to evict (an entry-count bound, a bytes
// bound, a TTL sweep — whatever the cache's contract is). IDs are small
// dense non-negative integers allocated by the caller, which is exactly
// the dense-remapped universe the array-backed kernels in this package
// are built for; the shipped implementations are thin adapters over them,
// so the simulator's LRU and FIFO kernels double as the production result
// cache's engine.
//
// Contract: Insert an ID at most once until it is Removed; Touch only
// resident IDs; Victim returns a resident ID without removing it (-1 when
// empty) and is stable until the next mutation. None of the methods are
// safe for concurrent use — the owning cache holds its own lock.
type EvictionPolicy interface {
	// Touch records a use of a resident entry (a cache hit).
	Touch(id int64)
	// Insert admits a new entry (a cache fill).
	Insert(id int64)
	// Victim reports which resident entry the policy would evict next,
	// or -1 when it tracks none. It does not remove the entry.
	Victim() int64
	// Remove forgets an entry (eviction, invalidation, expiry) and
	// reports whether it was tracked.
	Remove(id int64) bool
	// Len reports how many entries the policy currently tracks.
	Len() int64
}

// policyFactories maps policy names to constructors. ARC/CAR-family
// policies (Consuegra et al., "Analyzing Adaptive Cache Replacement
// Strategies") slot in here once their kernels land.
var policyFactories = map[string]func() EvictionPolicy{
	"lru":  NewLRUPolicy,
	"fifo": NewFIFOPolicy,
}

// NewPolicy returns a fresh eviction policy by name. The names are the
// kernel names: "lru" and "fifo".
func NewPolicy(name string) (EvictionPolicy, error) {
	mk, ok := policyFactories[name]
	if !ok {
		return nil, fmt.Errorf("paging: unknown eviction policy %q (have %v)", name, PolicyNames())
	}
	return mk(), nil
}

// PolicyNames lists the registered policy names, sorted.
func PolicyNames() []string {
	names := make([]string, 0, len(policyFactories))
	for name := range policyFactories {
		names = append(names, name) //lint:ignore maporder names is sorted immediately below
	}
	sort.Strings(names)
	return names
}

// lruPolicy adapts the dense-remapped LRU kernel. The kernel's capacity is
// pinned at MaxInt64 so it never self-evicts: Access doubles as both Touch
// (hit path: move to front) and Insert (miss path: push front), and the
// caller drives eviction through Victim/Remove.
type lruPolicy struct{ c *LRU }

// NewLRUPolicy returns an EvictionPolicy with least-recently-used order,
// backed by the array kernel in lru.go.
func NewLRUPolicy() EvictionPolicy {
	c, err := NewLRU(math.MaxInt64)
	if err != nil {
		panic("paging: NewLRU(MaxInt64) cannot fail: " + err.Error())
	}
	return &lruPolicy{c}
}

func (p *lruPolicy) Touch(id int64)       { p.c.Access(id) }
func (p *lruPolicy) Insert(id int64)      { p.c.Access(id) }
func (p *lruPolicy) Victim() int64        { return p.c.Victim() }
func (p *lruPolicy) Remove(id int64) bool { return p.c.Remove(id) }
func (p *lruPolicy) Len() int64           { return p.c.Len() }

// fifoPolicy adapts the ring-buffer FIFO kernel the same way. Touch is a
// no-op — not reordering on hits is the definition of FIFO.
type fifoPolicy struct{ c *FIFO }

// NewFIFOPolicy returns an EvictionPolicy with first-in-first-out order,
// backed by the array kernel in fifo.go.
func NewFIFOPolicy() EvictionPolicy {
	c, err := NewFIFO(math.MaxInt64)
	if err != nil {
		panic("paging: NewFIFO(MaxInt64) cannot fail: " + err.Error())
	}
	return &fifoPolicy{c}
}

func (p *fifoPolicy) Touch(int64)          {}
func (p *fifoPolicy) Insert(id int64)      { p.c.Access(id) }
func (p *fifoPolicy) Victim() int64        { return p.c.Victim() }
func (p *fifoPolicy) Remove(id int64) bool { return p.c.Remove(id) }
func (p *fifoPolicy) Len() int64           { return p.c.Len() }
