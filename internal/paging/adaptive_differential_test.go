package paging

import (
	"testing"

	"repro/internal/xrand"
)

// Differential tests for the adaptive kernels: ARC and 2Q must agree
// exactly — per access, not just in aggregate — with the naive slice-backed
// transcriptions of the published pseudocode in oracle_adaptive_test.go,
// under random traces, random capacity schedules, and square-boundary
// Clears.

func residentOf(p ReplacementPolicy, universe int64) map[int64]bool {
	set := map[int64]bool{}
	for b := int64(0); b < universe; b++ {
		if p.Contains(b) {
			set[b] = true
		}
	}
	return set
}

func checkResident(t *testing.T, trial int, p ReplacementPolicy, universe int64, want map[int64]bool) {
	t.Helper()
	got := residentOf(p, universe)
	if len(got) != len(want) {
		t.Fatalf("trial %d: %d resident blocks, oracle %d", trial, len(got), len(want))
	}
	for blk := range got {
		if !want[blk] {
			t.Fatalf("trial %d: block %d resident but not in oracle", trial, blk)
		}
	}
}

func TestARCMatchesOracle(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		src := xrand.New(xrand.Split(50, "arc-diff", int64(trial)))
		universe := 1 + src.Int63n(96)
		tr := localTrace(src, 600, universe)
		sched := randomSchedule(src, tr.Len(), 32)

		capacity := 1 + src.Int63n(24)
		a, err := NewARC(capacity)
		if err != nil {
			t.Fatal(err)
		}
		o := newOracleARC(capacity)
		for i := 0; i < tr.Len(); i++ {
			if c, ok := sched[i]; ok {
				if err := a.SetCapacity(c); err != nil {
					t.Fatal(err)
				}
				o.SetCapacity(c)
			}
			if i%97 == 0 {
				a.Clear()
				o.Clear()
			}
			got, want := a.Access(tr.Block(i)), o.Access(tr.Block(i))
			if got != want {
				t.Fatalf("trial %d, access %d (block %d): hit=%v, oracle %v",
					trial, i, tr.Block(i), got, want)
			}
			if a.Len() != o.Len() {
				t.Fatalf("trial %d, access %d: len %d, oracle %d", trial, i, a.Len(), o.Len())
			}
			if a.Target() != o.p {
				t.Fatalf("trial %d, access %d: target p=%d, oracle %d", trial, i, a.Target(), o.p)
			}
			if a.Len() > a.Capacity() {
				t.Fatalf("trial %d, access %d: %d resident over capacity %d",
					trial, i, a.Len(), a.Capacity())
			}
		}
		if a.Hits() != o.Hits() || a.Misses() != o.Misses() {
			t.Fatalf("trial %d: counters %d/%d, oracle %d/%d",
				trial, a.Hits(), a.Misses(), o.Hits(), o.Misses())
		}
		checkResident(t, trial, a, universe, o.residentSet())
	}
}

func Test2QMatchesOracle(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		src := xrand.New(xrand.Split(51, "2q-diff", int64(trial)))
		universe := 1 + src.Int63n(96)
		tr := localTrace(src, 600, universe)
		sched := randomSchedule(src, tr.Len(), 32)

		capacity := 1 + src.Int63n(24)
		q, err := NewTwoQ(capacity)
		if err != nil {
			t.Fatal(err)
		}
		o := newOracle2Q(capacity)
		for i := 0; i < tr.Len(); i++ {
			if c, ok := sched[i]; ok {
				if err := q.SetCapacity(c); err != nil {
					t.Fatal(err)
				}
				o.SetCapacity(c)
			}
			if i%97 == 0 {
				q.Clear()
				o.Clear()
			}
			got, want := q.Access(tr.Block(i)), o.Access(tr.Block(i))
			if got != want {
				t.Fatalf("trial %d, access %d (block %d): hit=%v, oracle %v",
					trial, i, tr.Block(i), got, want)
			}
			if q.Len() != o.Len() {
				t.Fatalf("trial %d, access %d: len %d, oracle %d", trial, i, q.Len(), o.Len())
			}
			if q.Len() > q.Capacity() {
				t.Fatalf("trial %d, access %d: %d resident over capacity %d",
					trial, i, q.Len(), q.Capacity())
			}
		}
		if q.Hits() != o.Hits() || q.Misses() != o.Misses() {
			t.Fatalf("trial %d: counters %d/%d, oracle %d/%d",
				trial, q.Hits(), q.Misses(), o.Hits(), o.Misses())
		}
		checkResident(t, trial, q, universe, o.residentSet())
	}
}

// FuzzAdaptivePoliciesMatchOracles drives the ARC and 2Q kernels and their
// pseudocode oracles from fuzz-chosen reference strings and capacity
// schedules — the adaptive-policy twin of FuzzKernelsMatchOracles. Bytes
// < 200 are block references (universe of 64); bytes >= 200 retarget the
// capacity first, so the ghost-list trims, p clamps, and Kin/Kout
// rebalancing under dynamic capacity all get exercised.
func FuzzAdaptivePoliciesMatchOracles(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 3, 200, 1, 4, 5, 1}, uint8(3))
	f.Add([]byte{0, 0, 0, 255, 7, 7, 201, 63, 0, 7}, uint8(1))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(9))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 9, 8, 7, 6, 5, 210, 4, 3, 2, 1, 0}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, c uint8) {
		capacity := int64(c%16) + 1
		a, err := NewARC(capacity)
		if err != nil {
			t.Fatal(err)
		}
		oa := newOracleARC(capacity)
		q, err := NewTwoQ(capacity)
		if err != nil {
			t.Fatal(err)
		}
		oq := newOracle2Q(capacity)

		for i, by := range data {
			if by >= 200 {
				nc := int64(by%24) + 1
				if err := a.SetCapacity(nc); err != nil {
					t.Fatal(err)
				}
				oa.SetCapacity(nc)
				if err := q.SetCapacity(nc); err != nil {
					t.Fatal(err)
				}
				oq.SetCapacity(nc)
			}
			blk := int64(by & 63)
			if ga, wa := a.Access(blk), oa.Access(blk); ga != wa {
				t.Fatalf("ARC access %d (block %d): hit=%v, oracle %v", i, blk, ga, wa)
			}
			if a.Target() != oa.p {
				t.Fatalf("ARC access %d: target p=%d, oracle %d", i, a.Target(), oa.p)
			}
			if gq, wq := q.Access(blk), oq.Access(blk); gq != wq {
				t.Fatalf("2Q access %d (block %d): hit=%v, oracle %v", i, blk, gq, wq)
			}
			if a.Len() > a.Capacity() || q.Len() > q.Capacity() {
				t.Fatalf("access %d: resident over capacity (arc %d/%d, 2q %d/%d)",
					i, a.Len(), a.Capacity(), q.Len(), q.Capacity())
			}
		}
		if a.Len() != oa.Len() || a.Hits() != oa.Hits() || a.Misses() != oa.Misses() {
			t.Fatalf("ARC state %d/%d/%d, oracle %d/%d/%d",
				a.Len(), a.Hits(), a.Misses(), oa.Len(), oa.Hits(), oa.Misses())
		}
		if q.Len() != oq.Len() || q.Hits() != oq.Hits() || q.Misses() != oq.Misses() {
			t.Fatalf("2Q state %d/%d/%d, oracle %d/%d/%d",
				q.Len(), q.Hits(), q.Misses(), oq.Len(), oq.Hits(), oq.Misses())
		}
	})
}
