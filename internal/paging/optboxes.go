package paging

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/trace"
)

// OPTRunBoxes replays tr through Belady's farthest-in-future choice while
// the capacity follows boxes drawn from src, mirroring PolicyStream's
// accounting: entering a box of size X resizes the cache to X (evicting
// the farthest-next-use overflow) and grants X misses of budget. It is the
// clairvoyant baseline for the adaptivity-gap-by-policy experiment.
//
// With a *changing* capacity, greedy farthest-in-future is a natural
// baseline rather than a provably optimal schedule — Belady's exchange
// argument needs a fixed capacity. Every online policy still replays
// against strictly less information, so the baseline is an honest floor in
// practice on the repository's traces.
//
// The mechanics are RunOPTFixed's: next-use positions precomputed in one
// backward pass, a packed max-heap with lazy stale invalidation, dense
// arrays throughout.
func OPTRunBoxes(tr *trace.Trace, src profile.Source, maxBoxes int64) ([]BoxStat, error) {
	n := tr.Len()
	if n == 0 {
		return nil, nil
	}
	if int64(n) >= 1<<31 || tr.MaxBlock() >= 1<<31 {
		return nil, fmt.Errorf("paging: OPT index overflow (%d refs, max block %d)", n, tr.MaxBlock())
	}

	// nextUse[i] = next position after i referencing the same block; n if
	// the block is never referenced again.
	nextUse := make([]int32, n)
	last := make([]int32, tr.MaxBlock()+1)
	for i := range last {
		last[i] = optNever
	}
	for i := n - 1; i >= 0; i-- {
		blk := tr.Block(i)
		if j := last[blk]; j != optNever {
			nextUse[i] = j
		} else {
			nextUse[i] = int32(n)
		}
		last[blk] = int32(i)
	}

	// curNext[b] = the live heap key's nextUse for resident block b, or
	// optNever when b is absent.
	curNext := last // reuse the backing array; every entry is rewritten below
	for i := range curNext {
		curNext[i] = optNever
	}

	var h optHeap
	var size int64
	var stats []BoxStat
	cur := BoxStat{Size: src.Next()}
	if cur.Size < 1 {
		return nil, fmt.Errorf("paging: box source produced size %d", cur.Size)
	}
	capacity := cur.Size

	evictFarthest := func() error {
		for {
			if len(h) == 0 {
				return fmt.Errorf("paging: OPT heap exhausted with %d resident", size)
			}
			top := h.pop()
			b := int64(uint32(top))
			if curNext[b] != int32(top>>32) {
				continue // stale entry
			}
			curNext[b] = optNever
			size--
			return nil
		}
	}

	for i := 0; i < n; i++ {
		blk := tr.Block(i)
		nu := nextUse[i]
		key := uint64(uint32(nu))<<32 | uint64(uint32(blk))
		if curNext[blk] != optNever {
			// Hit: free against the box; refresh the next-use key.
			curNext[blk] = nu
			h.push(key)
			cur.Refs++
			continue
		}
		// Miss: needs an I/O from the current box's budget.
		if cur.IOs == cur.Size {
			// Budget exhausted: this reference belongs to the next box.
			stats = append(stats, cur)
			if maxBoxes > 0 && int64(len(stats)) >= maxBoxes {
				return stats, fmt.Errorf("paging: run exceeded %d boxes", maxBoxes)
			}
			cur = BoxStat{Size: src.Next()}
			if cur.Size < 1 {
				return stats, fmt.Errorf("paging: box source produced size %d", cur.Size)
			}
			capacity = cur.Size
		}
		for size >= capacity {
			if err := evictFarthest(); err != nil {
				return stats, err
			}
		}
		curNext[blk] = nu
		size++
		h.push(key)
		cur.IOs++
		cur.Refs++
	}
	stats = append(stats, cur)
	return stats, nil
}
