package paging

import (
	"fmt"

	"repro/internal/trace"
)

// FIFO is a first-in-first-out page cache with dynamically adjustable
// capacity — the other classical marking-free policy, included so the
// DAM-validation experiments can show the usual LRU/FIFO/OPT ordering on
// the repository's traces.
type FIFO struct {
	capacity int64
	resident map[int64]uint64 // block -> fetch sequence number
	queue    []fifoEntry      // fetch order; entries may be stale
	head     int              // index of the oldest possibly-live entry
	seq      uint64
	misses   int64
	hits     int64
}

type fifoEntry struct {
	block int64
	seq   uint64
}

// NewFIFO returns an empty FIFO cache with the given capacity (>= 1).
func NewFIFO(capacity int64) (*FIFO, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("paging: FIFO capacity %d < 1", capacity)
	}
	return &FIFO{capacity: capacity, resident: make(map[int64]uint64)}, nil
}

// Len reports the number of resident blocks.
func (f *FIFO) Len() int64 { return int64(len(f.resident)) }

// Misses reports the number of accesses that required a fetch.
func (f *FIFO) Misses() int64 { return f.misses }

// Hits reports the number of accesses served from cache.
func (f *FIFO) Hits() int64 { return f.hits }

// SetCapacity resizes the cache, evicting oldest blocks if it shrank.
func (f *FIFO) SetCapacity(capacity int64) error {
	if capacity < 1 {
		return fmt.Errorf("paging: FIFO capacity %d < 1", capacity)
	}
	f.capacity = capacity
	for int64(len(f.resident)) > f.capacity {
		f.evict()
	}
	return nil
}

// Access touches block, returning true on a hit. FIFO does not reorder on
// hits — that is the whole difference from LRU.
func (f *FIFO) Access(block int64) bool {
	if _, ok := f.resident[block]; ok {
		f.hits++
		return true
	}
	f.misses++
	if int64(len(f.resident)) >= f.capacity {
		f.evict()
	}
	f.seq++
	f.resident[block] = f.seq
	f.queue = append(f.queue, fifoEntry{block: block, seq: f.seq})
	return false
}

// evict removes the least recently *fetched* resident block, skipping
// stale queue entries (a block evicted and later refetched leaves a dead
// entry behind; the sequence number identifies the live one).
func (f *FIFO) evict() {
	for f.head < len(f.queue) {
		e := f.queue[f.head]
		f.head++
		if cur, ok := f.resident[e.block]; ok && cur == e.seq {
			delete(f.resident, e.block)
			break
		}
	}
	// Compact the dead prefix once it dominates, keeping memory linear in
	// the number of resident blocks rather than total fetches.
	if f.head > 4096 && f.head > len(f.queue)/2 {
		f.queue = append(f.queue[:0:0], f.queue[f.head:]...)
		f.head = 0
	}
}

// RunFIFOFixed replays tr through a FIFO of fixed capacity and returns the
// miss count.
func RunFIFOFixed(tr *trace.Trace, capacity int64) (int64, error) {
	f, err := NewFIFO(capacity)
	if err != nil {
		return 0, err
	}
	for i := 0; i < tr.Len(); i++ {
		f.Access(tr.Block(i))
	}
	return f.Misses(), nil
}
